// Package hyperq_test is the benchmark harness for the paper's evaluation
// (§6). One benchmark per figure plus the ablations DESIGN.md calls out:
//
//	BenchmarkFigure6_*      translation vs execution per workload query
//	BenchmarkFigure7_*      translation stage split
//	BenchmarkMetadataCache  MDI caching on/off (§3.2.3, §6)
//	BenchmarkMaterialization logical (view) vs physical (temp table) (§4.3)
//	BenchmarkResultPivot    row-stream -> column pivot (§4.2)
//	BenchmarkQIPC*          wire encode/decode and compression
//	BenchmarkAblation*      Xformer rules on/off (§3.3)
//
// Run: go test -bench=. -benchmem
package hyperq_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"hyperq/internal/core"
	"hyperq/internal/endpoint"
	"hyperq/internal/gateway"
	"hyperq/internal/mdi"
	"hyperq/internal/pgdb"
	"hyperq/internal/pool"
	"hyperq/internal/qcache"
	"hyperq/internal/qlang/interp"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/taq"
	"hyperq/internal/wire/pgv3"
	"hyperq/internal/wire/qipc"
	"hyperq/internal/workload"
	"hyperq/internal/xc"
	"hyperq/internal/xformer"
)

// ctx for benchmark queries: benchmarks exercise the happy path, no deadline.
var ctx = context.Background()

// benchStack caches one loaded backend per data size across benchmarks.
var benchStacks = map[int]*pgdb.DB{}

func stackFor(b *testing.B, trades int) (*core.Session, core.Backend) {
	b.Helper()
	db, ok := benchStacks[trades]
	if !ok {
		db = pgdb.NewDB()
		loader := core.NewDirectBackend(db)
		if _, err := workload.Setup(context.Background(), loader, taq.Config{Seed: 1, Trades: trades, NumSymbols: 100}); err != nil {
			b.Fatal(err)
		}
		benchStacks[trades] = db
	}
	backend := core.NewDirectBackend(db)
	s := core.NewPlatform().NewSession(backend, core.Config{MDITTL: 5 * time.Minute})
	b.Cleanup(func() { s.Close() })
	return s, backend
}

// BenchmarkFigure6_Translation times pure query translation (the overhead
// Hyper-Q adds) for each workload query.
func BenchmarkFigure6_Translation(b *testing.B) {
	for _, q := range workload.Queries() {
		b.Run(fmt.Sprintf("q%02d", q.ID), func(b *testing.B) {
			s, _ := stackFor(b, 5000)
			if _, _, err := s.Run(ctx, "avgpx: 100.0"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Translate(ctx, q.Q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure6_EndToEnd times full translate+execute per query; with
// BenchmarkFigure6_Translation it yields the Figure 6 ratio.
func BenchmarkFigure6_EndToEnd(b *testing.B) {
	for _, q := range workload.Queries() {
		b.Run(fmt.Sprintf("q%02d", q.ID), func(b *testing.B) {
			s, _ := stackFor(b, 5000)
			if _, _, err := s.Run(ctx, "avgpx: 100.0"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Run(ctx, q.Q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure7_Stages reports the per-stage translation split over the
// whole workload as custom metrics (ns per stage per query).
func BenchmarkFigure7_Stages(b *testing.B) {
	s, _ := stackFor(b, 5000)
	if _, _, err := s.Run(ctx, "avgpx: 100.0"); err != nil {
		b.Fatal(err)
	}
	var agg core.StageTiming
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := workload.TranslateAll(ctx, s)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range ms {
			agg.Add(m.Translation)
		}
	}
	total := float64(agg.Translation())
	if total > 0 {
		b.ReportMetric(100*float64(agg.Parse)/total, "parse%")
		b.ReportMetric(100*float64(agg.Bind)/total, "bind%")
		b.ReportMetric(100*float64(agg.Xform)/total, "optimize%")
		b.ReportMetric(100*float64(agg.Serialize)/total, "serialize%")
	}
}

// BenchmarkMetadataCache compares binding with the metadata cache enabled
// (the paper's experimental setting) vs disabled (every lookup is a catalog
// round trip).
func BenchmarkMetadataCache(b *testing.B) {
	const q = "select Symbol, Price, Close, Sector from trades lj daily lj refdata where Size>2000"
	for _, mode := range []struct {
		name string
		ttl  time.Duration
	}{{"enabled", 5 * time.Minute}, {"disabled", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			db, ok := benchStacks[5000]
			if !ok {
				stackFor(b, 5000)
				db = benchStacks[5000]
			}
			backend := core.NewDirectBackend(db)
			ttl := mode.ttl
			if ttl < 0 {
				ttl = time.Nanosecond // effectively disabled
			}
			s := core.NewPlatform().NewSession(backend, core.Config{MDITTL: ttl})
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Translate(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.MDI().Stats().CatalogRTs)/float64(b.N), "catalogRTs/op")
		})
	}
}

// BenchmarkMaterialization compares physical (temp table) and logical
// (view) materialization of variable assignments (§4.3).
func BenchmarkMaterialization(b *testing.B) {
	const q = "gg: select Price, Size from trades where Symbol=`SYM0001; select max Price from gg"
	for _, mode := range []struct {
		name string
		m    core.Materialization
	}{{"physical_temp_table", core.Physical}, {"logical_view", core.Logical}} {
		b.Run(mode.name, func(b *testing.B) {
			db, ok := benchStacks[5000]
			if !ok {
				stackFor(b, 5000)
				db = benchStacks[5000]
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				backend := core.NewDirectBackend(db)
				s := core.NewPlatform().NewSession(backend, core.Config{Materialization: mode.m})
				if _, _, err := s.Run(ctx, q); err != nil {
					b.Fatal(err)
				}
				s.Close()
			}
		})
	}
}

// BenchmarkResultPivot measures the row-oriented -> column-oriented result
// conversion the paper describes in §4.2 (Hyper-Q buffers the PG v3 rows and
// forms a single QIPC message).
func BenchmarkResultPivot(b *testing.B) {
	for _, rows := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			res := &core.BackendResult{
				Cols: []core.BackendCol{
					{Name: "Symbol", SQLType: "varchar"},
					{Name: "Price", SQLType: "double precision"},
					{Name: "Size", SQLType: "bigint"},
				},
			}
			for i := 0; i < rows; i++ {
				res.Rows = append(res.Rows, []core.Field{
					{Text: "GOOG"}, {Text: "101.25"}, {Text: "400"},
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.ResultToQ(res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQIPCEncodeTable measures serializing a result table into the
// QIPC object format.
func BenchmarkQIPCEncodeTable(b *testing.B) {
	tbl := benchTable(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qipc.EncodeValue(tbl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQIPCDecodeTable measures the reverse direction.
func BenchmarkQIPCDecodeTable(b *testing.B) {
	raw, err := qipc.EncodeValue(benchTable(10000))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := qipc.DecodeValue(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQIPCCompression measures the kx LZ compression on a framed
// message (§3.1: the QIPC protocol includes data compression).
func BenchmarkQIPCCompression(b *testing.B) {
	body, err := qipc.EncodeValue(benchTable(10000))
	if err != nil {
		b.Fatal(err)
	}
	raw := make([]byte, 8+len(body))
	raw[0] = 1
	raw[4] = byte(len(raw))
	raw[5] = byte(len(raw) >> 8)
	raw[6] = byte(len(raw) >> 16)
	copy(raw[8:], body)
	b.Run("compress", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if _, ok := qipc.Compress(raw); !ok {
				b.Fatal("should compress")
			}
		}
	})
	z, _ := qipc.Compress(raw)
	b.Run("decompress", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if _, err := qipc.Decompress(z); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ratio", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = z
		}
		b.ReportMetric(float64(len(raw))/float64(len(z)), "x")
	})
}

// BenchmarkAblationXformer measures translation with individual Xformer
// rules disabled — the design-choice ablations DESIGN.md calls out.
func BenchmarkAblationXformer(b *testing.B) {
	const q = "select Symbol, Price, Close, Sector from trades lj daily lj refdata where Symbol=`SYM0002"
	configs := []struct {
		name string
		cfg  xformer.Config
	}{
		{"all_rules", xformer.Config{}},
		{"no_null_semantics", xformer.Config{DisableNullSemantics: true}},
		{"no_column_pruning", xformer.Config{DisableColumnPruning: true}},
		{"no_ordering", xformer.Config{DisableOrdering: true}},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			db, ok := benchStacks[5000]
			if !ok {
				stackFor(b, 5000)
				db = benchStacks[5000]
			}
			backend := core.NewDirectBackend(db)
			s := core.NewPlatform().NewSession(backend, core.Config{Xformer: c.cfg, MDITTL: 5 * time.Minute})
			defer s.Close()
			var sqlLen int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sql, _, err := s.Translate(ctx, q)
				if err != nil {
					b.Fatal(err)
				}
				sqlLen = len(sql)
			}
			b.ReportMetric(float64(sqlLen), "sql_bytes")
		})
	}
}

// BenchmarkAblationExecutionPruning measures end-to-end execution with and
// without column pruning over the wide table — the §3.3 performance claim.
func BenchmarkAblationExecutionPruning(b *testing.B) {
	const q = "select Symbol, Price, attr_000 from trades lj refdata where Size>4000"
	for _, c := range []struct {
		name string
		cfg  xformer.Config
	}{
		{"pruned", xformer.Config{}},
		{"unpruned", xformer.Config{DisableColumnPruning: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			db, ok := benchStacks[5000]
			if !ok {
				stackFor(b, 5000)
				db = benchStacks[5000]
			}
			backend := core.NewDirectBackend(db)
			s := core.NewPlatform().NewSession(backend, core.Config{Xformer: c.cfg, MDITTL: 5 * time.Minute})
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Run(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTranslationCache compares a cold translation (full
// parse/bind/xform/serialize pipeline every call) against a warm one served
// by the shared query-translation cache — the serving-runtime ablation
// EXPERIMENTS.md records.
func BenchmarkTranslationCache(b *testing.B) {
	const q = "select Symbol, Price, Close, Sector from trades lj daily lj refdata where Size>2000"
	for _, mode := range []struct {
		name    string
		entries int
	}{{"cold_no_cache", 0}, {"warm_cached", 1024}} {
		b.Run(mode.name, func(b *testing.B) {
			db, ok := benchStacks[5000]
			if !ok {
				stackFor(b, 5000)
				db = benchStacks[5000]
			}
			backend := core.NewDirectBackend(db)
			cfg := core.Config{MDITTL: 5 * time.Minute}
			var cache *qcache.Cache
			if mode.entries > 0 {
				cache = qcache.New(mode.entries)
				cfg.Cache = cache
			}
			s := core.NewPlatform().NewSession(backend, cfg)
			defer s.Close()
			// prime the MDI (both modes) and the cache (warm mode)
			if _, _, err := s.Translate(ctx, q); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Translate(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
			if cache != nil {
				b.ReportMetric(float64(cache.Stats().Hits)/float64(b.N), "hits/op")
			}
		})
	}
}

// BenchmarkResultPipelineDirect compares the two result pipelines on the
// typed-result conversion alone: "text" renders every cell to text and
// re-parses it (ResultToQ over the materialized BackendResult), "columnar"
// streams the typed pgdb values into pooled column builders (FeedResult).
func BenchmarkResultPipelineDirect(b *testing.B) {
	stackFor(b, 5000)
	res, err := benchStacks[5000].NewSession().Exec("SELECT * FROM trades")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("text", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.ResultToQ(core.ToBackendResult(res)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("columnar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink := core.GetTableSink()
			if err := core.FeedResult(ctx, res, sink); err != nil {
				b.Fatal(err)
			}
			if sink.Table().Len() != len(res.Rows) {
				b.Fatal("short result")
			}
			sink.Release()
		}
	})
}

// BenchmarkResultPipelinePgv3 compares the result pipelines over the PG v3
// wire: "text" collects DataRows into a materialized result and re-parses it,
// "columnar" decodes each DataRow straight into the pooled builders
// (QueryStream behind Gateway.ExecStream).
func BenchmarkResultPipelinePgv3(b *testing.B) {
	stackFor(b, 5000)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	go pgdb.Serve(context.Background(), l, benchStacks[5000], pgdb.AuthConfig{Method: pgv3.AuthMethodTrust})
	gw, err := gateway.Dial(ctx, l.Addr().String(), "hq", "", "db")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { gw.Close() })
	const q = "SELECT * FROM trades"
	b.Run("text", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			br, err := gw.Exec(ctx, q)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.ResultToQ(br); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("columnar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink := core.GetTableSink()
			if err := gw.ExecStream(ctx, q, sink); err != nil {
				b.Fatal(err)
			}
			if sink.Table().Len() == 0 {
				b.Fatal("empty result")
			}
			sink.Release()
		}
	})
}

// BenchmarkServeTrade measures one select-all round trip through the full
// serving runtime (QIPC endpoint -> compiler -> pooled gateway -> backend)
// under each result path; cmd/benchfig -bench-e2e records the same shape as
// the committed BENCH_e2e.json artifact.
func BenchmarkServeTrade(b *testing.B) {
	const q = "select Symbol, Price, Size from trades"
	for _, mode := range []struct {
		name string
		path core.ResultPath
	}{{"columnar", core.ColumnarPath}, {"text", core.TextPath}} {
		b.Run(mode.name, func(b *testing.B) {
			addr := startServingStack(b, 4, 1024, mode.path)
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { conn.Close() })
			if err := qipc.ClientHandshake(conn, "bench", ""); err != nil {
				b.Fatal(err)
			}
			roundTrip := func() error {
				if err := qipc.WriteMessage(conn, qipc.Sync, qval.CharVec(q)); err != nil {
					return err
				}
				msg, err := qipc.ReadMessage(conn)
				if err != nil {
					return err
				}
				if qe, ok := msg.Value.(*qval.QError); ok {
					return fmt.Errorf("query error: %s", qe.Msg)
				}
				return nil
			}
			if err := roundTrip(); err != nil { // warm the session outside the timer
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := roundTrip(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// startServingStack brings up the full networked serving runtime for
// benchmarks: pgdb over TCP, a bounded gateway pool, a shared translation
// cache and MDI, and the QIPC endpoint, returning its address.
func startServingStack(b *testing.B, poolSize, cacheEntries int, path core.ResultPath) string {
	b.Helper()
	db := pgdb.NewDB()
	loader := core.NewDirectBackend(db)
	data := taq.Generate(taq.Config{Seed: 1, Trades: 5000, NumSymbols: 100})
	for _, tb := range []struct {
		name string
		tbl  *qval.Table
	}{{"trades", data.Trades}, {"quotes", data.Quotes}, {"daily", data.Daily}} {
		if err := core.LoadQTable(context.Background(), loader, tb.name, tb.tbl); err != nil {
			b.Fatal(err)
		}
	}
	pgL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { pgL.Close() })
	go pgdb.Serve(context.Background(), pgL, db, pgdb.AuthConfig{
		Method: pgv3.AuthMethodMD5,
		Users:  map[string]string{"hq": "pw"},
	})

	backendPool := pool.New(pool.Config{
		Size: poolSize,
		Dial: func(ctx context.Context) (pool.Conn, error) {
			return gateway.Dial(ctx, pgL.Addr().String(), "hq", "pw", "db")
		},
		HealthCheck: true,
	})
	b.Cleanup(func() { backendPool.Close() })
	var cache *qcache.Cache
	if cacheEntries > 0 {
		cache = qcache.New(cacheEntries)
	}
	sharedMDI := mdi.New(backendPool.SessionBackend(), mdi.WithTTL(5*time.Minute))

	platform := core.NewPlatform()
	qL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { qL.Close() })
	go endpoint.Serve(context.Background(), qL, endpoint.Config{
		NewHandler: func(creds *qipc.Credentials) (endpoint.Handler, func(), error) {
			session := platform.NewSession(backendPool.SessionBackend(), core.Config{
				MDI:        sharedMDI,
				Cache:      cache,
				ResultPath: path,
			})
			compiler := xc.New(session)
			return endpoint.HandlerFunc(func(ctx context.Context, q string) (qval.Value, error) {
				v, _, err := compiler.HandleQuery(ctx, q)
				return v, err
			}), func() { session.Close() }, nil
		},
	})
	return qL.Addr().String()
}

// BenchmarkConcurrentSessions measures end-to-end throughput of the full
// TCP stack (QIPC endpoint -> cross compiler -> pooled PG v3 gateway ->
// backend) at increasing client fan-in; ns/op is per query across all
// clients.
func BenchmarkConcurrentSessions(b *testing.B) {
	const q = "select mx:max Price, vol:sum Size by Symbol from trades"
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			addr := startServingStack(b, 4, 1024, core.ColumnarPath)
			conns := make([]net.Conn, clients)
			for c := range conns {
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { conn.Close() })
				if err := qipc.ClientHandshake(conn, fmt.Sprintf("app%d", c), ""); err != nil {
					b.Fatal(err)
				}
				conns[c] = conn
			}
			runQueries := func(conn net.Conn, n int) error {
				for i := 0; i < n; i++ {
					if err := qipc.WriteMessage(conn, qipc.Sync, qval.CharVec(q)); err != nil {
						return err
					}
					msg, err := qipc.ReadMessage(conn)
					if err != nil {
						return err
					}
					if qe, ok := msg.Value.(*qval.QError); ok {
						return fmt.Errorf("query error: %s", qe.Msg)
					}
				}
				return nil
			}
			// warm each session once (outside the timed region)
			for _, conn := range conns {
				if err := runQueries(conn, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for c := 0; c < clients; c++ {
				// split b.N queries across the clients
				n := b.N / clients
				if c < b.N%clients {
					n++
				}
				wg.Add(1)
				go func(conn net.Conn, n int) {
					defer wg.Done()
					if err := runQueries(conn, n); err != nil {
						errs <- err
					}
				}(conns[c], n)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkKdbBaselineVsHyperQ compares the same Q query on the in-memory
// kdb+ substrate and through the full Hyper-Q -> SQL stack, quantifying the
// real-time vs historical trade-off the paper's introduction motivates.
func BenchmarkKdbBaselineVsHyperQ(b *testing.B) {
	data := taq.Generate(taq.Config{Seed: 1, Trades: 5000, NumSymbols: 100})
	const q = "select mx:max Price, vol:sum Size by Symbol from trades"
	b.Run("kdb_substrate", func(b *testing.B) {
		in := newInterp(data)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := in.Eval(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hyperq_sql", func(b *testing.B) {
		s, _ := stackFor(b, 5000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := s.Run(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchTable(n int) *qval.Table {
	syms := make(qval.SymbolVec, n)
	prices := make(qval.FloatVec, n)
	sizes := make(qval.LongVec, n)
	for i := 0; i < n; i++ {
		syms[i] = []string{"GOOG", "IBM", "MSFT", "AAPL"}[i%4]
		prices[i] = 100 + float64(i%97)/7
		sizes[i] = int64(100 * (i%17 + 1))
	}
	return qval.NewTable([]string{"Symbol", "Price", "Size"}, []qval.Value{syms, prices, sizes})
}

func newInterp(data *taq.Data) *interp.Interp {
	in := interp.New()
	in.SetGlobal("trades", data.Trades)
	in.SetGlobal("quotes", data.Quotes)
	in.SetGlobal("daily", data.Daily)
	return in
}
