module hyperq

go 1.22
