// Command qdiff is the differential query fuzzer: it generates random typed
// tables and random q-sql queries, runs each query through both the kdb+
// substrate (package interp) and the Hyper-Q → SQL pipeline, and reports
// every divergence (paper §5's side-by-side methodology, automated).
//
//	qdiff -seed 1 -n 10000            # fuzz, exit 1 on any divergence
//	qdiff -seed 1 -n 1000 -shrink     # minimize failures before reporting
//	qdiff -seed 1 -n 1000 -out DIR    # persist reproducers as corpus JSON
//
// The report is JSON on stdout; diagnostics go to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
	"hyperq/internal/sidebyside"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed (same seed, same run)")
	n := flag.Int("n", 1000, "number of queries to generate")
	shrink := flag.Bool("shrink", false, "minimize failing cases before reporting")
	out := flag.String("out", "", "directory to write failing cases as corpus JSON")
	maxRows := flag.Int("maxrows", 0, "max fact-table rows (0 = generator default)")
	execEngine := flag.String("exec", "compiled", "pgdb execution engine under test: compiled, interpreted, or vectorized")
	resultPath := flag.String("result-path", "columnar", "session result pipeline under test: columnar or text")
	shards := flag.Int("shards", 0, "sharded differential mode: compare a single backend against an N-shard scatter-gather cluster (byte-identical QIPC oracle)")
	persistMode := flag.Bool("persist", false, "disk-backed mode: checkpoint every dataset to splayed column files and force each query to fault its segments back from disk")
	persistCompress := flag.Bool("persist-compress", false, "with -persist: checkpoint with compressed column chunks")
	persistMMap := flag.Bool("persist-mmap", false, "with -persist: serve cold reads through memory-mapped column files")
	persistMemBudget := flag.Int64("persist-mem-budget", 0, "with -persist: resident column-byte budget forcing eviction churn (0 = unlimited)")
	index := flag.Bool("index", false, "force-enable secondary indexes and load tables in halves around an index-building probe, so queries run against incrementally-maintained indexes")
	flag.Parse()

	var mode pgdb.ExecMode
	switch *execEngine {
	case "compiled":
		mode = pgdb.ExecCompiled
	case "interpreted":
		mode = pgdb.ExecInterpreted
	case "vectorized":
		mode = pgdb.ExecVectorized
	default:
		fmt.Fprintf(os.Stderr, "qdiff: unknown -exec mode %q (want compiled, interpreted, or vectorized)\n", *execEngine)
		os.Exit(2)
	}
	var path core.ResultPath
	switch *resultPath {
	case "columnar":
		path = core.ColumnarPath
	case "text":
		path = core.TextPath
	default:
		fmt.Fprintf(os.Stderr, "qdiff: unknown -result-path %q (want columnar or text)\n", *resultPath)
		os.Exit(2)
	}

	var persistDir string
	if *persistMode {
		if *shards > 1 {
			fmt.Fprintln(os.Stderr, "qdiff: -persist is incompatible with -shards")
			os.Exit(2)
		}
		dir, err := os.MkdirTemp("", "qdiff-persist-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "qdiff:", err)
			os.Exit(2)
		}
		defer os.RemoveAll(dir)
		persistDir = dir
	}

	rep, err := sidebyside.Fuzz(context.Background(), sidebyside.FuzzConfig{
		Seed:             *seed,
		N:                *n,
		Shrink:           *shrink,
		MaxRows:          *maxRows,
		ExecMode:         mode,
		ResultPath:       path,
		Shards:           *shards,
		PersistDir:       persistDir,
		PersistCompress:  *persistCompress,
		PersistMMap:      *persistMMap,
		PersistMemBudget: *persistMemBudget,
		Index:            *index,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qdiff:", err)
		os.Exit(2)
	}

	if *out != "" {
		for i, c := range rep.Mismatches {
			e := &sidebyside.CorpusEntry{
				Name:   fmt.Sprintf("seed%d-iter%d", c.Seed, c.Iteration),
				Note:   fmt.Sprintf("class=%s found by qdiff -seed %d (iteration %d)", c.Class, c.Seed, c.Iteration),
				Query:  c.Query,
				Tables: c.Tables,
				Shards: *shards,
			}
			if err := sidebyside.WriteCorpusEntry(*out, e); err != nil {
				fmt.Fprintf(os.Stderr, "qdiff: write case %d: %v\n", i, err)
				os.Exit(2)
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "qdiff:", err)
		os.Exit(2)
	}
	if len(rep.Mismatches) > 0 {
		fmt.Fprintf(os.Stderr, "qdiff: %d divergence(s) in %d queries (seed %d)\n",
			len(rep.Mismatches), rep.N, rep.Seed)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "qdiff: %d queries, %d matches (%d as agreeing errors), 0 divergences\n",
		rep.N, rep.Matches, rep.BothError)
}
