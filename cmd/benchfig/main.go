// Command benchfig regenerates the paper's evaluation figures (§6) from the
// reproduction:
//
//	-figure 6   per-query translation time as % of total execution time for
//	            the 25-query Analytical Workload (paper: mean ≈ 0.5%,
//	            max ≈ 4%, outliers at queries 10, 18, 19, 20)
//	-figure 7   split of translation time across stages (parse, bind,
//	            optimize, serialize) relative to total translation (paper:
//	            optimization and serialization dominate)
//	-bench      measure the embedded executor (interpreted vs compiled
//	            engine) over a 100k-row fact table and write BENCH_pgdb.json
//	-bench-shard  measure scatter-gather scaling (single backend vs
//	            1/2/4/8-shard clusters, per-statement -delay modeling data
//	            motion) and write BENCH_shard.json
//
// Absolute numbers differ from the paper's testbed (Greenplum on customer
// hardware vs an embedded engine); the shape of the series is the
// reproduction target. -delay adds artificial backend latency to model a
// networked MPP system.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
	"hyperq/internal/taq"
	"hyperq/internal/workload"
)

func main() {
	figure := flag.Int("figure", 6, "figure to regenerate (6 or 7)")
	bench := flag.Bool("bench", false, "run the pgdb executor benchmarks (interpreted vs compiled vs vectorized) instead of a figure")
	benchE2E := flag.Bool("bench-e2e", false, "run the result-pipeline benchmarks (columnar vs text) instead of a figure")
	benchShard := flag.Bool("bench-shard", false, "run the scatter-gather scaling benchmarks (single backend vs 1/2/4/8-shard clusters) instead of a figure")
	benchPersist := flag.Bool("bench-persist", false, "run the durable-storage benchmarks (WAL append throughput, cold-open pruned scan, evicted-partition reload) instead of a figure")
	benchOut := flag.String("out", "", "output path for -bench / -bench-e2e results (default BENCH_pgdb.json / BENCH_e2e.json)")
	benchRows := flag.Int("bench-rows", 100000, "fact-table size for -bench and -bench-e2e")
	trades := flag.Int("trades", 50000, "trade count of the data set")
	symbols := flag.Int("symbols", 200, "ticker universe size (rows of the reference tables)")
	reps := flag.Int("reps", 3, "repetitions per query (best kept)")
	seed := flag.Int64("seed", 1, "data seed")
	delay := flag.Duration("delay", 2*time.Millisecond, "per-statement backend dispatch latency, modeling the MPP cluster of the paper's testbed (0 disables)")
	shardRowCost := flag.Duration("shard-row-cost", 4*time.Microsecond, "modeled per-row member latency for -bench-shard: each backend's per-statement Delay is its local fact-table rows times this (remote scan + result shipping)")
	flag.Parse()

	if *bench {
		out := *benchOut
		if out == "" {
			out = "BENCH_pgdb.json"
		}
		runBench(out, *benchRows)
		return
	}
	if *benchE2E {
		out := *benchOut
		if out == "" {
			out = "BENCH_e2e.json"
		}
		runBenchE2E(out, *benchRows)
		return
	}
	if *benchShard {
		out := *benchOut
		if out == "" {
			out = "BENCH_shard.json"
		}
		runBenchShard(out, *benchRows, *shardRowCost)
		return
	}
	if *benchPersist {
		out := *benchOut
		if out == "" {
			out = "BENCH_persist.json"
		}
		runBenchPersist(out, *benchRows)
		return
	}

	db := pgdb.NewDB()
	b := core.NewDirectBackend(db)
	b.Delay = *delay
	if _, err := workload.Setup(context.Background(), b, taq.Config{Seed: *seed, Trades: *trades, NumSymbols: *symbols}); err != nil {
		log.Fatalf("setup: %v", err)
	}
	p := core.NewPlatform()
	s := p.NewSession(b, core.Config{MDITTL: 5 * time.Minute})
	defer s.Close()

	ms, err := workload.RunAll(context.Background(), s, *reps)
	if err != nil {
		log.Fatalf("workload: %v", err)
	}
	switch *figure {
	case 6:
		printFigure6(ms)
	case 7:
		printFigure7(ms)
	default:
		fmt.Fprintln(os.Stderr, "unknown figure; use 6 or 7")
		os.Exit(2)
	}
}

func printFigure6(ms []workload.Measurement) {
	fmt.Println("Figure 6 — Efficiency of query translation")
	fmt.Println("query  translation  execution    translation%  bar")
	var sum, max float64
	maxID := 0
	for _, m := range ms {
		share := m.TranslationShare() * 100
		sum += share
		if share > max {
			max, maxID = share, m.Query.ID
		}
		fmt.Printf("%5d  %11v  %9v  %11.2f%%  %s\n",
			m.Query.ID, m.Translation.Translation().Round(time.Microsecond),
			m.Execution.Round(time.Microsecond), share, bar(share, 8))
	}
	fmt.Printf("\nmean translation share: %.2f%%   max: %.2f%% (query %d)\n",
		sum/float64(len(ms)), max, maxID)
	fmt.Println("paper: mean ~0.5%, max ~4%, outliers at queries 10, 18, 19, 20")
}

func printFigure7(ms []workload.Measurement) {
	fmt.Println("Figure 7 — Time consumed by translation stages")
	fmt.Println("query    parse%    bind%  optimize%  serialize%")
	var tp, tb, tx, ts time.Duration
	for _, m := range ms {
		st := m.Translation
		total := st.Translation()
		if total == 0 {
			continue
		}
		tp += st.Parse
		tb += st.Bind
		tx += st.Xform
		ts += st.Serialize
		fmt.Printf("%5d  %7.1f%%  %7.1f%%  %8.1f%%  %9.1f%%\n",
			m.Query.ID,
			pct(st.Parse, total), pct(st.Bind, total),
			pct(st.Xform, total), pct(st.Serialize, total))
	}
	total := tp + tb + tx + ts
	fmt.Printf("\noverall  %7.1f%%  %7.1f%%  %8.1f%%  %9.1f%%\n",
		pct(tp, total), pct(tb, total), pct(tx, total), pct(ts, total))
	fmt.Println("paper: optimization and serialization consume most of the translation time")
}

func pct(d, total time.Duration) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(d) / float64(total)
}

func bar(v float64, perUnit int) string {
	n := int(v * float64(perUnit))
	if n > 60 {
		n = 60
	}
	return strings.Repeat("#", n)
}
