package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"testing"

	"hyperq/internal/pgdb"
)

// BenchEntry is one line of BENCH_pgdb.json: a query shape measured under
// one execution engine. "interpreted" entries are the before numbers,
// "compiled" entries the after numbers of the compile-then-execute engine.
type BenchEntry struct {
	Op          string  `json:"op"`
	Mode        string  `json:"mode"`
	Rows        int     `json:"rows"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	IOBytes     int64   `json:"io_bytes,omitempty"`   // column-file bytes read from disk (0 under mmap: chunks decode zero-copy)
	DiskBytes   int64   `json:"disk_bytes,omitempty"` // total on-disk size of the checkpoint's column files
}

// benchCase is a query shape the executor benchmark measures in both modes.
type benchCase struct {
	op  string
	sql string
}

var pgdbBenchCases = []benchCase{
	{"filter", "SELECT sym, price, size FROM bench_trades WHERE price > 500.0 AND size < 100"},
	{"filter_aggregate", "SELECT sym, count(*), sum(size), avg(price), min(price), max(price) FROM bench_trades WHERE size > 10 GROUP BY sym"},
	{"projection", "SELECT sym, price * 1.0001 + 0.5, size * 2 + 1, CASE WHEN price > 500.0 THEN 'hi' WHEN price > 100.0 THEN 'mid' ELSE 'lo' END FROM bench_trades"},
	{"hash_join", "SELECT t.sym, t.price, s.sector FROM bench_trades t JOIN bench_syms s ON t.sym = s.sym WHERE t.size > 900"},
	{"literal_decode", "SELECT count(*) FROM bench_trades WHERE price > 123.456 AND price < 987.654 AND size <> 17 AND price + 0.125 > 100.001 AND venue < 15"},
	{"group_by_multi", "SELECT sym, venue, count(*), sum(size) FROM bench_trades GROUP BY sym, venue"},
}

var benchSymbols = []string{"GOOG", "IBM", "MSFT", "AAPL", "ORCL", "SAP", "TDC", "HPQ"}

// newBenchDB loads the synthetic executor-benchmark tables: a bench_trades
// fact table of n rows and a small bench_syms dimension. Rows come from a
// fixed LCG, so every run measures identical data.
func newBenchDB(n int) (*pgdb.DB, error) {
	db := pgdb.NewDB()
	s := db.NewSession()
	for _, stmt := range benchLoadStatements(n) {
		if _, err := s.Exec(stmt); err != nil {
			return nil, fmt.Errorf("bench load: %w", err)
		}
	}
	return db, nil
}

// benchLoadStatements generates the DDL and batched INSERTs that build the
// benchmark tables, as replayable SQL — newBenchDB runs them on one embedded
// engine, the shard benchmark routes the identical stream through a
// scatter-gather cluster. Rows come from a fixed LCG, so every run loads
// identical data.
func benchLoadStatements(n int) []string {
	stmts := []string{
		"CREATE TABLE bench_trades (sym varchar, price double precision, size bigint, venue bigint)",
		"CREATE TABLE bench_syms (sym varchar, sector varchar, lot bigint)",
	}
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 17
	}
	var sb strings.Builder
	const chunk = 500
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		sb.Reset()
		sb.WriteString("INSERT INTO bench_trades VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			sym := benchSymbols[next()%uint64(len(benchSymbols))]
			price := 50.0 + float64(next()%100000)/100.0
			size := int64(next()%1000) + 1
			venue := int64(next() % 16)
			if next()%97 == 0 {
				fmt.Fprintf(&sb, "('%s', NULL, %d, %d)", sym, size, venue)
			} else {
				fmt.Fprintf(&sb, "('%s', %g, %d, %d)", sym, price, size, venue)
			}
		}
		stmts = append(stmts, sb.String())
	}
	sectors := []string{"tech", "finance", "industrial"}
	sb.Reset()
	sb.WriteString("INSERT INTO bench_syms VALUES ")
	for i, sym := range benchSymbols {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "('%s', '%s', %d)", sym, sectors[i%len(sectors)], 100*(i+1))
	}
	stmts = append(stmts, sb.String())
	return stmts
}

// measure runs one query under one engine via testing.Benchmark.
func measure(db *pgdb.DB, op, mode, sql string, rows int) BenchEntry {
	s := db.NewSession()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	return BenchEntry{
		Op:          op,
		Mode:        mode,
		Rows:        rows,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runBench measures every benchmark case under all three execution engines
// plus the compiled parallel-scan case, writes the entries to outPath as
// JSON, and prints a per-op speedup table. This backs `make bench` and
// `make bench-storage`, which commit BENCH_pgdb.json as a non-gating
// artifact.
func runBench(outPath string, rows int) {
	db, err := newBenchDB(rows)
	if err != nil {
		log.Fatalf("bench setup: %v", err)
	}
	var entries []BenchEntry
	for _, c := range pgdbBenchCases {
		db.SetExecMode(pgdb.ExecInterpreted)
		before := measure(db, c.op, "interpreted", c.sql, rows)
		db.SetExecMode(pgdb.ExecCompiled)
		after := measure(db, c.op, "compiled", c.sql, rows)
		db.SetExecMode(pgdb.ExecVectorized)
		vec := measure(db, c.op, "vectorized", c.sql, rows)
		entries = append(entries, before, after, vec)
		fmt.Fprintf(os.Stderr, "%-18s interpreted %12.0f ns/op  compiled %12.0f ns/op (%.2fx)  vectorized %12.0f ns/op (%.2fx over compiled)\n",
			c.op, before.NsPerOp, after.NsPerOp, before.NsPerOp/after.NsPerOp,
			vec.NsPerOp, after.NsPerOp/vec.NsPerOp)
	}
	// the -parallel path: same compiled scan, 1 worker vs GOMAXPROCS workers
	parSQL := "SELECT sym, price FROM bench_trades WHERE price > 200.0 AND price < 800.0 AND size > 5"
	db.SetExecMode(pgdb.ExecCompiled)
	db.SetParallelism(1)
	seq := measure(db, "parallel_filter_w1", "compiled", parSQL, rows)
	db.SetParallelism(runtime.GOMAXPROCS(0))
	par := measure(db, fmt.Sprintf("parallel_filter_w%d", db.Parallelism()), "compiled", parSQL, rows)
	db.SetParallelism(1)
	entries = append(entries, seq, par)
	fmt.Fprintf(os.Stderr, "%-18s 1 worker    %12.0f ns/op  %d workers %12.0f ns/op  speedup %.2fx\n",
		"parallel_filter", seq.NsPerOp, runtime.GOMAXPROCS(0), par.NsPerOp, seq.NsPerOp/par.NsPerOp)

	// access-path benches: point lookup, as-of join, and the lazy index
	// build itself, with secondary indexes on vs off, at the base size and
	// at 1M rows (the acceptance scale for the speedup targets)
	sizes := []int{rows}
	if rows != 1_000_000 {
		sizes = append(sizes, 1_000_000)
	}
	for _, n := range sizes {
		entries = append(entries, runIndexBenches(n)...)
	}

	text, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		log.Fatalf("bench encode: %v", err)
	}
	if err := os.WriteFile(outPath, append(text, '\n'), 0o644); err != nil {
		log.Fatalf("bench write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d entries to %s\n", len(entries), outPath)
}

// newIndexBenchDB builds the access-path benchmark tables: a keyed fact
// table of n rows whose k column is a shuffled high-cardinality key (unsorted,
// so only the hash index can avoid a scan) and sym cycles a small universe
// with heavy duplication, plus a 2000-row probe table for as-of joins. Rows
// come from a fixed LCG, so every run measures identical data.
func newIndexBenchDB(n int) (*pgdb.DB, error) {
	db := pgdb.NewDB()
	s := db.NewSession()
	for _, ddl := range []string{
		"CREATE TABLE keyed (k bigint, sym varchar, tm bigint, px double precision)",
		"CREATE TABLE probes (id bigint, sym varchar, tm bigint)",
	} {
		if _, err := s.Exec(ddl); err != nil {
			return nil, fmt.Errorf("index bench load: %w", err)
		}
	}
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 17
	}
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{
			int64(next() % uint64(n)),
			benchSymbols[next()%uint64(len(benchSymbols))],
			int64(next() % uint64(4*n)),
			50.0 + float64(next()%100000)/100.0,
		}
	}
	if err := db.InsertRows("keyed", rows); err != nil {
		return nil, err
	}
	probes := make([][]any, 2000)
	for i := range probes {
		probes[i] = []any{
			int64(i),
			benchSymbols[next()%uint64(len(benchSymbols))],
			int64(next() % uint64(4*n)),
		}
	}
	if err := db.InsertRows("probes", probes); err != nil {
		return nil, err
	}
	return db, nil
}

// asofBenchSQL is the rank-filter shape the fused as-of executor recognizes:
// latest quote at or before each probe's time, per probe row.
const asofBenchSQL = `SELECT id, sym, tm, px FROM (
  SELECT a.id, a.sym, a.tm, b.px,
         ROW_NUMBER() OVER (PARTITION BY a.id ORDER BY b.tm DESC) AS rn
  FROM probes a LEFT JOIN keyed b ON a.sym IS NOT DISTINCT FROM b.sym AND b.tm <= a.tm
) x WHERE rn = 1`

// runIndexBenches measures the index-accelerated paths against their
// scan-only baselines at one table size. Each (op, toggle) pair gets a fresh
// database so resident index state never leaks across entries; index_on
// point lookups are warmed once so the measurement is the steady-state hit,
// while index_build measures exactly the drop-and-rebuild cycle.
func runIndexBenches(n int) []BenchEntry {
	var out []BenchEntry
	pointSQL := fmt.Sprintf("SELECT count(*) FROM keyed WHERE k = %d", n/3)
	run := func(op, mode string, minRows int, warm bool, sql string, pre func(db *pgdb.DB)) BenchEntry {
		db, err := newIndexBenchDB(n)
		if err != nil {
			log.Fatalf("bench setup: %v", err)
		}
		db.SetExecMode(pgdb.ExecVectorized)
		db.SetIndexMinRows(minRows)
		s := db.NewSession()
		if warm {
			if _, err := s.Exec(sql); err != nil {
				log.Fatalf("bench warm: %v", err)
			}
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if pre != nil {
					pre(db)
				}
				if _, err := s.Exec(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
		return BenchEntry{
			Op:          op,
			Mode:        mode,
			Rows:        n,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	report := func(op string, off, on BenchEntry) {
		fmt.Fprintf(os.Stderr, "%-18s %8d rows  index off %12.0f ns/op  index on %12.0f ns/op (%.2fx)\n",
			op, n, off.NsPerOp, on.NsPerOp, off.NsPerOp/on.NsPerOp)
	}

	pointOff := run("point_lookup", "index_off", -1, false, pointSQL, nil)
	pointOn := run("point_lookup", "index_on", 0, true, pointSQL, nil)
	report("point_lookup", pointOff, pointOn)

	asofOff := run("asof_join", "index_off", -1, false, asofBenchSQL, nil)
	asofOn := run("asof_join", "index_on", 0, true, asofBenchSQL, nil)
	report("asof_join", asofOff, asofOn)

	build := run("index_build", "index_on", 0, false, pointSQL, func(db *pgdb.DB) {
		db.DropTableIndexes("keyed")
	})
	fmt.Fprintf(os.Stderr, "%-18s %8d rows  build+lookup %12.0f ns/op\n", "index_build", n, build.NsPerOp)
	return append(out, pointOff, pointOn, asofOff, asofOn, build)
}
