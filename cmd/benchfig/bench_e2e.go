package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"testing"

	"hyperq/internal/core"
	"hyperq/internal/endpoint"
	"hyperq/internal/gateway"
	"hyperq/internal/pgdb"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/taq"
	"hyperq/internal/wire/pgv3"
	"hyperq/internal/wire/qipc"
	"hyperq/internal/xc"
)

// The end-to-end result-pipeline benchmarks behind `make bench-e2e`: each op
// is measured under both result paths, "text" (materialize + re-parse via
// ResultToQ, the fallback) and "columnar" (stream into pooled builders), and
// the entries are committed as BENCH_e2e.json.
//
//	result_pipeline_direct  typed pgdb result -> qval.Table conversion
//	result_pipeline_pgv3    PG v3 wire bytes -> qval.Table via the client
//	serve_trade             full QIPC endpoint round trip for one select-all

const e2eSelectAll = "SELECT sym, price, size, venue FROM bench_trades"

// measureFn wraps testing.Benchmark for one (op, mode) pair.
func measureFn(op, mode string, rows int, fn func(b *testing.B)) BenchEntry {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return BenchEntry{
		Op:          op,
		Mode:        mode,
		Rows:        rows,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchResultPipelineDirect measures the typed-result conversion alone: the
// backend result is computed once, each iteration converts it to a q table.
func benchResultPipelineDirect(res *pgdb.Result, rows int) (text, columnar BenchEntry) {
	text = measureFn("result_pipeline_direct", "text", rows, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ResultToQ(core.ToBackendResult(res)); err != nil {
				b.Fatal(err)
			}
		}
	})
	ctx := context.Background()
	columnar = measureFn("result_pipeline_direct", "columnar", rows, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink := core.GetTableSink()
			if err := core.FeedResult(ctx, res, sink); err != nil {
				b.Fatal(err)
			}
			if sink.Table().Len() != rows {
				b.Fatal("short result")
			}
			sink.Release()
		}
	})
	return text, columnar
}

// frameMsg builds one typed PG v3 message.
func frameMsg(typ byte, body []byte) []byte {
	out := make([]byte, 0, 5+len(body))
	out = append(out, typ)
	out = binary.BigEndian.AppendUint32(out, uint32(len(body)+4))
	return append(out, body...)
}

// pgStream renders a result as the raw PG v3 byte stream a backend would
// send for one simple query: RowDescription, DataRows, CommandComplete,
// ReadyForQuery. Prebuilding it keeps server-side encoding out of the
// measured client pipeline.
func pgStream(res *pgdb.Result) []byte {
	var body []byte
	body = binary.BigEndian.AppendUint16(body, uint16(len(res.Cols)))
	for _, c := range res.Cols {
		body = append(append(body, c.Name...), 0)
		body = binary.BigEndian.AppendUint32(body, 0) // table oid
		body = binary.BigEndian.AppendUint16(body, 0) // attnum
		body = binary.BigEndian.AppendUint32(body, pgv3.OIDForType(c.Type))
		body = binary.BigEndian.AppendUint16(body, 0) // typlen
		body = binary.BigEndian.AppendUint32(body, 0) // typmod
		body = binary.BigEndian.AppendUint16(body, 0) // text format
	}
	stream := frameMsg('T', body)
	for _, row := range res.Rows {
		body = body[:0]
		body = binary.BigEndian.AppendUint16(body, uint16(len(row)))
		for j, v := range row {
			if v == nil {
				body = binary.BigEndian.AppendUint32(body, 0xffffffff)
				continue
			}
			text := pgdb.FormatValue(v, res.Cols[j].Type)
			body = binary.BigEndian.AppendUint32(body, uint32(len(text)))
			body = append(body, text...)
		}
		stream = append(stream, frameMsg('D', body)...)
	}
	stream = append(stream, frameMsg('C', append([]byte(res.Tag), 0))...)
	stream = append(stream, frameMsg('Z', []byte{'I'})...)
	return stream
}

// startReplayServer serves the PG v3 handshake, then answers every query by
// replaying the prebuilt stream verbatim.
func startReplayServer(stream []byte) (addr string, stop func(), err error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				sc := pgv3.NewServerConn(conn)
				defer sc.Close()
				if err := sc.Startup(); err != nil {
					return
				}
				if err := sc.Authenticate(pgv3.AuthMethodTrust, nil); err != nil {
					return
				}
				for {
					if _, err := sc.ReadQuery(); err != nil {
						return
					}
					if _, err := conn.Write(stream); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String(), func() { l.Close() }, nil
}

// benchResultPipelinePgv3 measures the client-side wire pipeline: decode the
// replayed DataRow stream and convert it to a q table, under both paths.
func benchResultPipelinePgv3(res *pgdb.Result, rows int) (text, columnar BenchEntry, err error) {
	addr, stop, err := startReplayServer(pgStream(res))
	if err != nil {
		return text, columnar, err
	}
	defer stop()
	ctx := context.Background()
	gw, err := gateway.Dial(ctx, addr, "bench", "", "bench")
	if err != nil {
		return text, columnar, err
	}
	defer gw.Close()
	text = measureFn("result_pipeline_pgv3", "text", rows, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			br, err := gw.Exec(ctx, e2eSelectAll)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.ResultToQ(br); err != nil {
				b.Fatal(err)
			}
		}
	})
	columnar = measureFn("result_pipeline_pgv3", "columnar", rows, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink := core.GetTableSink()
			if err := gw.ExecStream(ctx, e2eSelectAll, sink); err != nil {
				b.Fatal(err)
			}
			if sink.Table().Len() != rows {
				b.Fatal("short result")
			}
			sink.Release()
		}
	})
	return text, columnar, nil
}

// benchServeTrade measures the full serving stack — QIPC endpoint, cross
// compiler, session, embedded backend — for one select-all round trip per
// iteration, under the given result path.
func benchServeTrade(path core.ResultPath, mode string, trades int) (BenchEntry, error) {
	db := pgdb.NewDB()
	loader := core.NewDirectBackend(db)
	data := taq.Generate(taq.Config{Seed: 1, Trades: trades})
	if err := core.LoadQTable(context.Background(), loader, "trades", data.Trades); err != nil {
		return BenchEntry{}, err
	}
	platform := core.NewPlatform()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return BenchEntry{}, err
	}
	defer l.Close()
	go endpoint.Serve(context.Background(), l, endpoint.Config{
		NewHandler: func(creds *qipc.Credentials) (endpoint.Handler, func(), error) {
			session := platform.NewSession(core.NewDirectBackend(db), core.Config{ResultPath: path})
			compiler := xc.New(session)
			return endpoint.HandlerFunc(func(ctx context.Context, q string) (qval.Value, error) {
				v, _, err := compiler.HandleQuery(ctx, q)
				return v, err
			}), func() { session.Close() }, nil
		},
	})
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		return BenchEntry{}, err
	}
	defer conn.Close()
	if err := qipc.ClientHandshake(conn, "bench", ""); err != nil {
		return BenchEntry{}, err
	}
	const q = "select Symbol, Price, Size from trades"
	roundTrip := func() error {
		if err := qipc.WriteMessage(conn, qipc.Sync, qval.CharVec(q)); err != nil {
			return err
		}
		msg, err := qipc.ReadMessage(conn)
		if err != nil {
			return err
		}
		if qe, ok := msg.Value.(*qval.QError); ok {
			return fmt.Errorf("query error: %s", qe.Msg)
		}
		if msg.Value.Len() != trades {
			return fmt.Errorf("short result: %d rows", msg.Value.Len())
		}
		return nil
	}
	if err := roundTrip(); err != nil { // warm the session outside the timer
		return BenchEntry{}, err
	}
	return measureFn("serve_trade", mode, trades, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := roundTrip(); err != nil {
				b.Fatal(err)
			}
		}
	}), nil
}

// runBenchE2E measures all three ops under both result paths, writes
// BENCH_e2e.json, and prints a text-vs-columnar comparison table. This backs
// `make bench-e2e`; the JSON is committed as a non-gating artifact.
func runBenchE2E(outPath string, rows int) {
	db, err := newBenchDB(rows)
	if err != nil {
		log.Fatalf("bench-e2e setup: %v", err)
	}
	res, err := db.NewSession().Exec(e2eSelectAll)
	if err != nil {
		log.Fatalf("bench-e2e select-all: %v", err)
	}

	report := func(text, columnar BenchEntry) {
		fmt.Fprintf(os.Stderr, "%-24s text %12.0f ns/op %9d allocs  columnar %12.0f ns/op %9d allocs  speedup %.2fx  allocs %.2fx\n",
			text.Op, text.NsPerOp, text.AllocsPerOp, columnar.NsPerOp, columnar.AllocsPerOp,
			text.NsPerOp/columnar.NsPerOp, float64(text.AllocsPerOp)/float64(columnar.AllocsPerOp))
	}

	var entries []BenchEntry
	dText, dCol := benchResultPipelineDirect(res, rows)
	report(dText, dCol)
	entries = append(entries, dText, dCol)

	pText, pCol, err := benchResultPipelinePgv3(res, rows)
	if err != nil {
		log.Fatalf("bench-e2e pgv3: %v", err)
	}
	report(pText, pCol)
	entries = append(entries, pText, pCol)

	const trades = 20000
	sText, err := benchServeTrade(core.TextPath, "text", trades)
	if err != nil {
		log.Fatalf("bench-e2e serve_trade text: %v", err)
	}
	sCol, err := benchServeTrade(core.ColumnarPath, "columnar", trades)
	if err != nil {
		log.Fatalf("bench-e2e serve_trade columnar: %v", err)
	}
	report(sText, sCol)
	entries = append(entries, sText, sCol)

	text, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		log.Fatalf("bench-e2e encode: %v", err)
	}
	if err := os.WriteFile(outPath, append(text, '\n'), 0o644); err != nil {
		log.Fatalf("bench-e2e write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d entries to %s\n", len(entries), outPath)
}
