package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"hyperq/internal/persist"
	"hyperq/internal/pgdb"
)

// The durable-storage benchmarks behind `-bench-persist`: a date-partitioned
// fact table is checkpointed to splayed column files, and the entries
// measure the three costs the persistence layer adds or removes. The
// artifact is committed as BENCH_persist.json.
//
//	wal_append    journaled 500-row INSERT statements under each sync mode
//	              ("none", "batch", "always") — the WAL's write amplification
//	              and group-commit behavior
//	pruned_scan   a single-date aggregate in three states: "memory" (fully
//	              resident, the baseline), "cold_open" (first query after a
//	              restart — zone maps from the manifest prune to one
//	              partition, whose segments fault in from disk), and
//	              "evict_reload" (a 1-byte memory budget evicts every
//	              checkpointed segment after each statement, so every
//	              iteration re-reads the partition from disk)
//	full_scan     the same aggregate without the date filter after a cold
//	              open — the contrast that shows pruning is real: it faults
//	              all partitions instead of one
//	catalog_open  persist.Open on the checkpointed directory — manifest
//	              decode and stub installation only, no column data
var persistBenchDates = []string{
	"2024-07-01", "2024-07-02", "2024-07-03", "2024-07-04",
	"2024-07-05", "2024-07-06", "2024-07-07", "2024-07-08",
}

const persistPrunedSQL = "SELECT count(*), sum(size), min(price), max(price) FROM bench_pt WHERE d = '2024-07-03'"
const persistFullSQL = "SELECT count(*), sum(size), min(price), max(price) FROM bench_pt"

// benchPersistLoadStatements builds the date-partitioned fact table: n rows
// over the 8-day window, dates non-decreasing so the checkpoint splits the
// table into one directory per day. Rows come from the same fixed LCG as
// the executor benchmarks.
func benchPersistLoadStatements(n int) []string {
	stmts := []string{
		"CREATE TABLE bench_pt (d date, sym varchar, price double precision, size bigint)",
	}
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 17
	}
	var sb strings.Builder
	const chunk = 500
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		sb.Reset()
		sb.WriteString("INSERT INTO bench_pt VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			d := persistBenchDates[i*len(persistBenchDates)/n]
			sym := benchSymbols[next()%uint64(len(benchSymbols))]
			price := 50.0 + float64(next()%100000)/100.0
			size := int64(next()%1000) + 1
			fmt.Fprintf(&sb, "('%s', '%s', %g, %d)", d, sym, price, size)
		}
		stmts = append(stmts, sb.String())
	}
	return stmts
}

// buildPersistDir loads the fact table through a journaled database and
// checkpoints it, returning the data directory ready for cold opens.
func buildPersistDir(dir string, rows int) error {
	db := pgdb.NewDB()
	db.SetExecMode(pgdb.ExecVectorized)
	st, err := persist.Open(db, persist.Options{Dir: dir, Sync: persist.SyncNone})
	if err != nil {
		return err
	}
	s := db.NewSession()
	for _, stmt := range benchPersistLoadStatements(rows) {
		if _, err := s.Exec(stmt); err != nil {
			return fmt.Errorf("persist bench load: %w", err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		return fmt.Errorf("persist bench checkpoint: %w", err)
	}
	return st.Close()
}

// measureWALAppend measures journaled 500-row INSERTs under one sync mode.
func measureWALAppend(mode persist.SyncMode, modeName string, rows int) BenchEntry {
	dir, err := os.MkdirTemp("", "bench-wal-")
	if err != nil {
		log.Fatalf("bench-persist: %v", err)
	}
	defer os.RemoveAll(dir)
	db := pgdb.NewDB()
	st, err := persist.Open(db, persist.Options{Dir: dir, Sync: mode})
	if err != nil {
		log.Fatalf("bench-persist wal open: %v", err)
	}
	defer st.Close()
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE bench_wal (a bigint, b double precision, c varchar)"); err != nil {
		log.Fatalf("bench-persist wal ddl: %v", err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO bench_wal VALUES ")
	for i := 0; i < 500; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, %g, 'v%d')", i, float64(i)*1.5, i%7)
	}
	stmt := sb.String()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec(stmt); err != nil {
				panic(fmt.Sprintf("wal_append [%s]: %v", modeName, err))
			}
		}
	})
	return BenchEntry{
		Op:          "wal_append",
		Mode:        modeName,
		Rows:        rows,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// coldOpen opens a fresh database on dir and returns it with its store.
// Parallelism is on for every mode — in-memory scans and fault-in reloads
// both use the engine's segment-granular workers, so the comparison is fair.
func coldOpen(dir string, budget int64) (*pgdb.DB, *persist.Store) {
	db := pgdb.NewDB()
	db.SetExecMode(pgdb.ExecVectorized)
	db.SetParallelism(runtime.NumCPU())
	st, err := persist.Open(db, persist.Options{Dir: dir, MemBudget: budget})
	if err != nil {
		log.Fatalf("bench-persist cold open: %v", err)
	}
	return db, st
}

// measureColdOnce times one operation against a freshly opened database,
// best of reps (the page cache stays warm across reps; what varies is the
// decode work, which is the cost under measurement).
func measureColdOnce(dir, op, sql string, rows, reps int) BenchEntry {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		db, st := coldOpen(dir, 0)
		s := db.NewSession()
		start := time.Now()
		res, err := s.Exec(sql)
		el := time.Since(start)
		st.Close()
		if err != nil {
			log.Fatalf("bench-persist %s: %v", op, err)
		}
		if len(res.Rows) != 1 {
			log.Fatalf("bench-persist %s: unexpected shape", op)
		}
		if el < best {
			best = el
		}
	}
	return BenchEntry{Op: op, Mode: "cold_open", Rows: rows, NsPerOp: float64(best.Nanoseconds())}
}

// The column-projection benchmark: a 10-column fact table where the pruned
// aggregate touches 2 columns (predicate + aggregate input), measured cold
// across the write format (raw vs compressed column files) and the read path
// (pread vs mmap). io_bytes is persist.Stats.BytesRead for the query;
// disk_bytes is the checkpoint's total column-file size. The headline
// contrast is col_projection vs col_projection_full: same table, same
// predicate, but the full-width aggregate faults all 10 columns where the
// 2-column one faults only what it references.
const persistWidePrunedSQL = "SELECT sum(c6) FROM bench_wide WHERE c1 > 500000"
const persistWideFullSQL = "SELECT min(sym), max(d), min(c1), max(c2), sum(c3), sum(c4), min(c5), max(c6), sum(c7), sum(c8) FROM bench_wide WHERE c1 > 500000"

// benchWideLoadStatements builds the wide fact table. Column value shapes
// deliberately span the codec's encodings: sym is low-cardinality (dict), c2
// is sorted (delta), c3/c5/c7 are narrow-range (frame-of-reference), c1/c4/
// c6/c8 are wide-range randoms (bitpacked near raw width or left raw).
func benchWideLoadStatements(n int) []string {
	stmts := []string{
		"CREATE TABLE bench_wide (d date, sym varchar, c1 bigint, c2 bigint, c3 bigint, c4 bigint, c5 bigint, c6 bigint, c7 bigint, c8 bigint)",
	}
	seed := uint64(0x2545f4914f6cdd1d)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 17
	}
	var sb strings.Builder
	const chunk = 500
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		sb.Reset()
		sb.WriteString("INSERT INTO bench_wide VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			d := persistBenchDates[i*len(persistBenchDates)/n]
			sym := benchSymbols[next()%uint64(len(benchSymbols))]
			fmt.Fprintf(&sb, "('%s', '%s', %d, %d, %d, %d, %d, %d, %d, %d)",
				d, sym,
				next()%1000000, // c1: predicate column, ~half the rows pass
				i,              // c2: sorted
				next()%100,     // c3: narrow
				next(),         // c4: wide
				next()%50,      // c5: narrow
				next()%1000000, // c6: aggregate input
				next()%128,     // c7: narrow
				next())         // c8: wide
		}
		stmts = append(stmts, sb.String())
	}
	return stmts
}

// buildWidePersistDir loads and checkpoints bench_wide with the given column
// file format.
func buildWidePersistDir(dir string, rows int, compress bool) error {
	db := pgdb.NewDB()
	db.SetExecMode(pgdb.ExecVectorized)
	st, err := persist.Open(db, persist.Options{Dir: dir, Sync: persist.SyncNone, Compress: compress})
	if err != nil {
		return err
	}
	s := db.NewSession()
	for _, stmt := range benchWideLoadStatements(rows) {
		if _, err := s.Exec(stmt); err != nil {
			return fmt.Errorf("wide bench load: %w", err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		return fmt.Errorf("wide bench checkpoint: %w", err)
	}
	return st.Close()
}

// colFileBytes sums the on-disk size of every column file under dir.
func colFileBytes(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".col") {
			if fi, err := d.Info(); err == nil {
				total += fi.Size()
			}
		}
		return nil
	})
	return total
}

// measureWideCold times one cold run of sql against dir and captures the
// store's I/O counters for that single query. Best-of-reps on time; the I/O
// byte count is identical across reps by construction (same stubs, same
// chunks).
func measureWideCold(dir, op, mode, sql string, rows, reps int, mmap bool) BenchEntry {
	best := time.Duration(1<<63 - 1)
	var ioBytes int64
	for i := 0; i < reps; i++ {
		db := pgdb.NewDB()
		db.SetExecMode(pgdb.ExecVectorized)
		db.SetParallelism(runtime.NumCPU())
		st, err := persist.Open(db, persist.Options{Dir: dir, MMap: mmap})
		if err != nil {
			log.Fatalf("bench-persist wide open: %v", err)
		}
		s := db.NewSession()
		start := time.Now()
		if _, err := s.Exec(sql); err != nil {
			log.Fatalf("bench-persist %s [%s]: %v", op, mode, err)
		}
		el := time.Since(start)
		ioBytes = st.Stats().Snapshot().BytesRead
		st.Close()
		if el < best {
			best = el
		}
	}
	return BenchEntry{
		Op: op, Mode: mode, Rows: rows,
		NsPerOp: float64(best.Nanoseconds()),
		IOBytes: ioBytes, DiskBytes: colFileBytes(dir),
	}
}

// runBenchPersist builds the date-partitioned table, measures the WAL and
// reload paths, writes the entries to outPath as JSON, and prints a summary
// with the cold-open/in-memory ratio for the pruned scan. This backs
// `make bench-persist`; BENCH_persist.json is committed as a non-gating
// artifact.
func runBenchPersist(outPath string, rows int) {
	dir, err := os.MkdirTemp("", "bench-persist-")
	if err != nil {
		log.Fatalf("bench-persist: %v", err)
	}
	defer os.RemoveAll(dir)
	if err := buildPersistDir(dir, rows); err != nil {
		log.Fatalf("bench-persist: %v", err)
	}

	var entries []BenchEntry

	// WAL append throughput per sync mode.
	for _, m := range []struct {
		mode persist.SyncMode
		name string
	}{
		{persist.SyncNone, "none"},
		{persist.SyncBatch, "batch"},
		{persist.SyncAlways, "always"},
	} {
		entries = append(entries, measureWALAppend(m.mode, m.name, 500))
	}

	// In-memory baseline: fully resident after faulting everything in once.
	memDB, memSt := coldOpen(dir, 0)
	memSess := memDB.NewSession()
	if _, err := memSess.Exec(persistFullSQL); err != nil {
		log.Fatalf("bench-persist warmup: %v", err)
	}
	memEntry := measure(memDB, "pruned_scan", "memory", persistPrunedSQL, rows)
	entries = append(entries, memEntry)
	memSt.Close()

	// Cold open: catalog restore alone, then the pruned and full scans.
	start := time.Now()
	db, st := coldOpen(dir, 0)
	openNs := time.Since(start)
	st.Close()
	_ = db
	entries = append(entries, BenchEntry{Op: "catalog_open", Mode: "cold_open", Rows: rows, NsPerOp: float64(openNs.Nanoseconds())})
	coldPruned := measureColdOnce(dir, "pruned_scan", persistPrunedSQL, rows, 3)
	entries = append(entries, coldPruned)
	entries = append(entries, measureColdOnce(dir, "full_scan", persistFullSQL, rows, 3))

	// Evicted-partition reload: a 1-byte budget evicts every checkpointed
	// segment after each statement, so each iteration re-faults from disk.
	evDB, evSt := coldOpen(dir, 1)
	entries = append(entries, measure(evDB, "pruned_scan", "evict_reload", persistPrunedSQL, rows))
	evSt.Close()

	// Column projection: the 2-of-10-column aggregate, cold, across write
	// format × read path, plus the full-width contrast on the raw files.
	rawDir, err := os.MkdirTemp("", "bench-wide-raw-")
	if err != nil {
		log.Fatalf("bench-persist: %v", err)
	}
	defer os.RemoveAll(rawDir)
	compDir, err := os.MkdirTemp("", "bench-wide-comp-")
	if err != nil {
		log.Fatalf("bench-persist: %v", err)
	}
	defer os.RemoveAll(compDir)
	if err := buildWidePersistDir(rawDir, rows, false); err != nil {
		log.Fatalf("bench-persist: %v", err)
	}
	if err := buildWidePersistDir(compDir, rows, true); err != nil {
		log.Fatalf("bench-persist: %v", err)
	}
	var prunedRaw, fullRaw, compRead BenchEntry
	for _, cell := range []struct {
		mode string
		dir  string
		mmap bool
	}{
		{"raw+read", rawDir, false},
		{"raw+mmap", rawDir, true},
		{"compressed+read", compDir, false},
		{"compressed+mmap", compDir, true},
	} {
		e := measureWideCold(cell.dir, "col_projection", cell.mode, persistWidePrunedSQL, rows, 3, cell.mmap)
		entries = append(entries, e)
		switch cell.mode {
		case "raw+read":
			prunedRaw = e
		case "compressed+read":
			compRead = e
		}
	}
	fullRaw = measureWideCold(rawDir, "col_projection_full", "raw+read", persistWideFullSQL, rows, 3, false)
	entries = append(entries, fullRaw)

	text, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		log.Fatalf("bench-persist encode: %v", err)
	}
	if err := os.WriteFile(outPath, append(text, '\n'), 0o644); err != nil {
		log.Fatalf("bench-persist write: %v", err)
	}
	ratio := coldPruned.NsPerOp / memEntry.NsPerOp
	fmt.Printf("wrote %s (%d entries, %d rows over %d date partitions)\n", outPath, len(entries), rows, len(persistBenchDates))
	fmt.Printf("pruned scan: memory %.2fms, cold open %.2fms (%.2fx)\n",
		memEntry.NsPerOp/1e6, coldPruned.NsPerOp/1e6, ratio)
	if prunedRaw.IOBytes > 0 {
		fmt.Printf("col projection: 2-of-10 cols read %s vs full-width %s (%.2fx less I/O)\n",
			fmtBytes(prunedRaw.IOBytes), fmtBytes(fullRaw.IOBytes),
			float64(fullRaw.IOBytes)/float64(prunedRaw.IOBytes))
	}
	fmt.Printf("on-disk columns: raw %s, compressed %s (%.2fx smaller); compressed cold read %s\n",
		fmtBytes(prunedRaw.DiskBytes), fmtBytes(compRead.DiskBytes),
		float64(prunedRaw.DiskBytes)/float64(compRead.DiskBytes),
		fmtBytes(compRead.IOBytes))
}

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
