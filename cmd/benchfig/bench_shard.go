package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"testing"
	"time"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
	"hyperq/internal/shard"
)

// The scatter-gather benchmarks behind `-bench-shard`: the same data set
// and queries run against a single embedded backend and against 1/2/4/8-
// shard clusters. Each backend carries an artificial per-statement Delay
// proportional to its local share of the fact table (rows × -shard-row-cost),
// modeling a remote MPP member's scan and result-shipping time — the part
// of an MPP system that genuinely runs in parallel across members, and the
// only part that can overlap on a single-core bench host (the embedded
// engines' own CPU work serializes here). The coordinator's real costs —
// routing, fan-out, aggregate decomposition, the probe, the ordered merge —
// are measured live. The entries are committed as BENCH_shard.json.
//
//	shard_scan       scatter-gather with streaming merge (filter, ~99% of
//	                 rows survive) — wall time tracks the largest shard
//	shard_aggregate  distributed aggregate decomposition (grouped
//	                 count/sum/min/max over integers): per-shard partials,
//	                 coordinator re-aggregation
//	shard_pruned     partition-key equality — the planner routes to the
//	                 single owning shard, so only 1/N of the modeled work
//	                 is paid regardless of cluster width
//
// Modes are "single" (plain DirectBackend baseline) and "N-shard".

var shardBenchWidths = []int{1, 2, 4, 8}

const (
	shardScanSQL  = "SELECT sym, price, size FROM bench_trades WHERE size > 10"
	shardAggSQL   = "SELECT sym, count(*) AS n, sum(size) AS sz, min(size) AS lo, max(size) AS hi FROM bench_trades GROUP BY sym"
	shardPruneSQL = "SELECT sym, price, size FROM bench_trades WHERE sym = 'GOOG'"
)

var shardBenchCases = []benchCase{
	{"shard_scan", shardScanSQL},
	{"shard_aggregate", shardAggSQL},
	{"shard_pruned", shardPruneSQL},
}

// newShardBenchCluster builds a width-shard embedded cluster, loads the
// benchmark tables through the routing backend (hash on sym, bench_syms
// replicated), then arms every member's artificial Delay in proportion to
// the bench_trades rows it holds.
func newShardBenchCluster(width, rows int, rowCost time.Duration) (*shard.Backend, error) {
	rules := []shard.TableSpec{
		{Name: "bench_trades", Kind: shard.Hash, Column: "sym"},
		{Name: "bench_syms", Kind: shard.Replicated},
	}
	var members []*core.DirectBackend
	factories := make([]func() (core.Backend, error), width)
	for i := 0; i < width; i++ {
		db := pgdb.NewDB()
		factories[i] = func() (core.Backend, error) {
			m := core.NewDirectBackend(db)
			members = append(members, m)
			return m, nil
		}
	}
	cl, err := shard.New(shard.NewCatalog(width, rules), factories)
	if err != nil {
		return nil, err
	}
	b, err := cl.NewBackend()
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	for _, stmt := range benchLoadStatements(rows) {
		if _, err := b.Exec(ctx, stmt); err != nil {
			b.Close()
			return nil, fmt.Errorf("shard bench load: %w", err)
		}
	}
	for _, m := range members {
		n, err := memberRowCount(ctx, m)
		if err != nil {
			b.Close()
			return nil, err
		}
		m.Delay = time.Duration(n) * rowCost
	}
	return b, nil
}

// memberRowCount counts one member's local bench_trades slice.
func memberRowCount(ctx context.Context, m core.Backend) (int64, error) {
	res, err := m.Exec(ctx, "SELECT count(*) AS n FROM bench_trades")
	if err != nil {
		return 0, fmt.Errorf("shard bench row count: %w", err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return 0, fmt.Errorf("shard bench row count: unexpected result shape")
	}
	var n int64
	if _, err := fmt.Sscanf(res.Rows[0][0].Text, "%d", &n); err != nil {
		return 0, fmt.Errorf("shard bench row count: %w", err)
	}
	return n, nil
}

// measureBackend runs one query through a core.Backend (single or sharded)
// via testing.Benchmark.
func measureBackend(be core.Backend, op, mode, sql string, rows int) BenchEntry {
	ctx := context.Background()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := be.Exec(ctx, sql); err != nil {
				// panic, not b.Fatal: testing.Benchmark runs outside a
				// test binary, where Fatal's logger is nil
				panic(fmt.Sprintf("%s [%s]: %v", op, mode, err))
			}
		}
	})
	return BenchEntry{
		Op:          op,
		Mode:        mode,
		Rows:        rows,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runBenchShard measures the scatter-gather cases against a single backend
// and against each cluster width, writes the entries to outPath as JSON,
// and prints a per-op scaling table (single-backend time / N-shard time).
// This backs `make bench-shard`; BENCH_shard.json is committed as a
// non-gating artifact.
func runBenchShard(outPath string, rows int, rowCost time.Duration) {
	db, err := newBenchDB(rows)
	if err != nil {
		log.Fatalf("bench-shard setup: %v", err)
	}
	single := core.NewDirectBackend(db)
	single.Delay = time.Duration(rows) * rowCost

	var entries []BenchEntry
	base := map[string]float64{}
	for _, c := range shardBenchCases {
		e := measureBackend(single, c.op, "single", c.sql, rows)
		base[c.op] = e.NsPerOp
		entries = append(entries, e)
	}
	speedup := map[string][]float64{}
	for _, width := range shardBenchWidths {
		b, err := newShardBenchCluster(width, rows, rowCost)
		if err != nil {
			log.Fatalf("bench-shard %d-shard setup: %v", width, err)
		}
		mode := fmt.Sprintf("%d-shard", width)
		for _, c := range shardBenchCases {
			e := measureBackend(b, c.op, mode, c.sql, rows)
			entries = append(entries, e)
			speedup[c.op] = append(speedup[c.op], base[c.op]/e.NsPerOp)
		}
		b.Close()
	}

	text, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		log.Fatalf("bench-shard encode: %v", err)
	}
	if err := os.WriteFile(outPath, append(text, '\n'), 0o644); err != nil {
		log.Fatalf("bench-shard write: %v", err)
	}
	fmt.Printf("wrote %s (%d entries, %d rows, %v/row modeled member latency)\n", outPath, len(entries), rows, rowCost)
	fmt.Printf("%-16s", "op")
	for _, w := range shardBenchWidths {
		fmt.Printf("  %8s", fmt.Sprintf("%d-shard", w))
	}
	fmt.Println("   (speedup vs single)")
	for _, c := range shardBenchCases {
		fmt.Printf("%-16s", c.op)
		for _, s := range speedup[c.op] {
			fmt.Printf("  %7.2fx", s)
		}
		fmt.Println()
	}
}
