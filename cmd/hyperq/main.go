// Command hyperq runs the Hyper-Q data virtualization proxy (paper Figure
// 1): it listens on the port a kdb+ server would use, speaks QIPC to Q
// applications, translates their queries to SQL, and executes them on a
// PostgreSQL-compatible backend over the PG v3 protocol. Q applications run
// unchanged; only their connection target moves from kdb+ to Hyper-Q.
//
// Two backend modes:
//
//	-backend host:port   connect to a PG v3 server (cmd/pgserver or a real
//	                      PostgreSQL-compatible database)
//	-embedded            run the embedded engine in-process (demo mode,
//	                      preloaded with synthetic TAQ data)
//
// The serving runtime is concurrent: all sessions share one bounded pool of
// backend connections (-pool-size), one query-translation cache
// (-cache-entries) and one metadata cache, so N clients replaying the same
// workload cost one translation per distinct query and at most -pool-size
// backend connections. SIGINT/SIGTERM starts a graceful drain: the listener
// closes immediately, in-flight requests get -drain-timeout to finish, then
// their contexts are canceled and the pool drains.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hyperq/internal/core"
	"hyperq/internal/endpoint"
	"hyperq/internal/gateway"
	"hyperq/internal/mdi"
	"hyperq/internal/persist"
	"hyperq/internal/pgdb"
	"hyperq/internal/pool"
	"hyperq/internal/qcache"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/shard"
	"hyperq/internal/taq"
	"hyperq/internal/wire/qipc"
	"hyperq/internal/xc"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5010", "QIPC address to listen on (the kdb+ port)")
	backendAddr := flag.String("backend", "", "PG v3 backend address (host:port)")
	embedded := flag.Bool("embedded", false, "use the embedded engine instead of a networked backend")
	bUser := flag.String("backend-user", "hyperq", "backend user")
	bPass := flag.String("backend-password", "hyperq", "backend password")
	bDB := flag.String("backend-db", "hyperq", "backend database name")
	qUser := flag.String("q-user", "", "required Q client user (empty accepts all)")
	qPass := flag.String("q-password", "", "required Q client password")
	trades := flag.Int("trades", 10000, "embedded demo trade count")
	execEngine := flag.String("exec", "compiled", "embedded engine execution mode: compiled, interpreted, or vectorized")
	resultPath := flag.String("result-path", "columnar", "result conversion pipeline: columnar (streaming builders) or text (materialized fallback)")
	parallel := flag.Int("parallel", 1, "embedded engine intra-query worker count (clamped to GOMAXPROCS; 1 disables)")
	mdiTTL := flag.Duration("mdi-ttl", 5*time.Minute, "metadata cache expiration")
	poolSize := flag.Int("pool-size", 4, "max pooled backend connections shared by all sessions")
	cacheEntries := flag.Int("cache-entries", 1024, "query-translation cache capacity (0 disables)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query backend deadline (0 disables)")
	requestTimeout := flag.Duration("request-timeout", 0, "end-to-end per-request deadline (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "grace window for in-flight requests on shutdown")
	shards := flag.Int("shards", 0, "scatter-gather cluster width over embedded engines (0 disables; requires -embedded)")
	shardBackends := flag.String("shard-backends", "", "comma-separated PG v3 member addresses, one shard per address (scatter-gather over networked members)")
	shardRules := flag.String("shard-rules", "trades:hash:Symbol,quotes:hash:Symbol",
		"partitioning rules: table:hash:col, table:range:col:b1|b2|..., or table:replicated")
	dataDir := flag.String("data-dir", "", "durable storage directory for the embedded engine (empty = memory only)")
	walSync := flag.String("wal-sync", "batch", "WAL durability: always (fsync per statement), batch (group commit), none")
	memBudget := flag.Int64("mem-budget", 0, "resident column-data budget in bytes for the embedded engine (0 = unlimited; needs -data-dir)")
	compress := flag.Bool("compress", false, "compress checkpoint column files (FOR/delta ints, dict strings, RLE bools; needs -data-dir)")
	useMMap := flag.Bool("mmap", false, "mmap checkpoint column files for zero-copy cold reads (needs -data-dir)")
	statsAddr := flag.String("stats-addr", "", "HTTP address serving persist I/O counters at /debug/vars (empty = off)")
	indexMinRows := flag.Int("index-min-rows", pgdb.DefaultIndexMinRows,
		"min table rows before the embedded engine builds a lazy secondary index (0 = always, -1 = disable indexes)")
	flag.Parse()

	var path core.ResultPath
	switch *resultPath {
	case "columnar":
		path = core.ColumnarPath
	case "text":
		path = core.TextPath
	default:
		log.Fatalf("unknown -result-path %q (want columnar or text)", *resultPath)
	}

	// ctx is the server's life: SIGINT/SIGTERM cancels it, starting the drain
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	platform := core.NewPlatform()

	rules, err := parseShardRules(*shardRules)
	if err != nil {
		log.Fatalf("-shard-rules: %v", err)
	}
	tuneEngine := func(db *pgdb.DB) {
		switch *execEngine {
		case "compiled":
			db.SetExecMode(pgdb.ExecCompiled)
		case "interpreted":
			db.SetExecMode(pgdb.ExecInterpreted)
		case "vectorized":
			db.SetExecMode(pgdb.ExecVectorized)
		default:
			log.Fatalf("unknown -exec mode %q (want compiled, interpreted, or vectorized)", *execEngine)
		}
		db.SetParallelism(*parallel)
		db.SetIndexMinRows(*indexMinRows)
	}
	loadDemo := func(b core.Backend) int {
		data := taq.Generate(taq.Config{Seed: 1, Trades: *trades})
		for _, t := range []struct {
			name string
			tbl  *qval.Table
		}{
			{"trades", data.Trades}, {"quotes", data.Quotes},
			{"refdata", data.RefData}, {"daily", data.Daily},
		} {
			if err := core.LoadQTable(ctx, b, t.name, t.tbl); err != nil {
				log.Fatalf("loading %s: %v", t.name, err)
			}
		}
		return data.Trades.Len()
	}

	var cluster *shard.Cluster
	var shardPools []*pool.Pool
	var embeddedDB *pgdb.DB
	var persistStore *persist.Store
	switch {
	case *shards > 1 && *embedded:
		var dbs []*pgdb.DB
		cluster, dbs, err = shard.NewEmbedded(*shards, rules)
		if err != nil {
			log.Fatalf("cluster: %v", err)
		}
		for _, db := range dbs {
			tuneEngine(db)
		}
		loader, err := cluster.NewBackend()
		if err != nil {
			log.Fatalf("cluster: %v", err)
		}
		n := loadDemo(loader)
		loader.Close()
		log.Printf("embedded %d-shard cluster ready with demo TAQ data (%d trades)", *shards, n)
	case *shards > 1:
		log.Fatal("-shards requires -embedded (use -shard-backends for networked members)")
	case *shardBackends != "":
		addrs := strings.Split(*shardBackends, ",")
		factories := make([]func() (core.Backend, error), len(addrs))
		for i, a := range addrs {
			addr := strings.TrimSpace(a)
			p := pool.New(pool.Config{
				Size: *poolSize,
				Dial: func(ctx context.Context) (pool.Conn, error) {
					return gateway.Dial(ctx, addr, *bUser, *bPass, *bDB)
				},
				QueryTimeout: *queryTimeout,
				HealthCheck:  true,
				DrainTimeout: *drainTimeout,
				Logf:         log.Printf,
			})
			shardPools = append(shardPools, p)
			factories[i] = func() (core.Backend, error) { return p.SessionBackend(), nil }
		}
		cluster, err = shard.New(shard.NewCatalog(len(addrs), rules), factories)
		if err != nil {
			log.Fatalf("cluster: %v", err)
		}
		log.Printf("networked sharded cluster over %d member backends", len(addrs))
	case *embedded:
		embeddedDB = pgdb.NewDB()
		tuneEngine(embeddedDB)
		if *dataDir != "" {
			mode, err := persist.ParseSyncMode(*walSync)
			if err != nil {
				log.Fatalf("-wal-sync: %v", err)
			}
			store, err := persist.Open(embeddedDB, persist.Options{
				Dir: *dataDir, Sync: mode, MemBudget: *memBudget,
				Compress: *compress, MMap: *useMMap,
			})
			if err != nil {
				log.Fatalf("persist: %v", err)
			}
			persistStore = store
			if len(embeddedDB.TableNames()) > 0 {
				log.Printf("embedded backend restored from %s (wal-sync=%s)", *dataDir, *walSync)
				break
			}
			log.Printf("embedded backend durable at %s (wal-sync=%s)", *dataDir, *walSync)
		}
		n := loadDemo(core.NewDirectBackend(embeddedDB))
		log.Printf("embedded backend ready with demo TAQ data (%d trades)", n)
	case *backendAddr == "":
		log.Fatal("one of -backend, -embedded or -shard-backends is required")
	}

	if *statsAddr != "" && embeddedDB != nil {
		var pstats *persist.Stats
		if persistStore != nil {
			pstats = persistStore.Stats()
		}
		addr, err := persist.ServeStats(*statsAddr, pstats, embeddedDB.IndexStats().Vars)
		if err != nil {
			log.Fatalf("stats: %v", err)
		}
		log.Printf("stats on http://%s/debug/vars", addr)
	}

	var backendPool *pool.Pool
	if cluster == nil {
		backendPool = pool.New(pool.Config{
			Size: *poolSize,
			Dial: func(ctx context.Context) (pool.Conn, error) {
				if *embedded {
					return core.NewDirectBackend(embeddedDB), nil
				}
				return gateway.Dial(ctx, *backendAddr, *bUser, *bPass, *bDB)
			},
			QueryTimeout: *queryTimeout,
			HealthCheck:  true,
			DrainTimeout: *drainTimeout,
			Logf:         log.Printf,
		})
	}

	// newSessionBackend yields one session's backend: a fresh view of the
	// sharded cluster, or a per-session wrapper over the shared pool
	newSessionBackend := func() (core.Backend, error) {
		if cluster != nil {
			return cluster.NewBackend()
		}
		return backendPool.SessionBackend(), nil
	}

	// process-wide serving state shared by every session: the metadata
	// cache (safe for concurrent use) and the query-translation cache
	var cache *qcache.Cache
	if *cacheEntries > 0 {
		cache = qcache.New(*cacheEntries)
	}
	mdiBackend, err := newSessionBackend()
	if err != nil {
		log.Fatalf("mdi backend: %v", err)
	}
	sharedMDI := mdi.New(mdiBackend, mdi.WithTTL(*mdiTTL))
	if persistStore != nil && persistStore.ReplayedChanges() {
		// the WAL replay moved the catalog past the last checkpoint: any
		// metadata or translation cached against the old state is stale
		sharedMDI.InvalidateAll()
		log.Printf("persist: WAL replay changed the catalog; metadata cache invalidated")
	}

	auth := func(user, password string) bool {
		if *qUser == "" {
			return true
		}
		return user == *qUser && password == *qPass
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}

	log.Printf("hyperq listening on %s (QIPC); backend=%s pool=%d cache=%d",
		*listen, backendDesc(*embedded, *backendAddr), *poolSize, *cacheEntries)
	err = endpoint.Serve(ctx, l, endpoint.Config{
		Auth: auth,
		NewHandler: func(creds *qipc.Credentials) (endpoint.Handler, func(), error) {
			sb, err := newSessionBackend()
			if err != nil {
				return nil, nil, err
			}
			session := platform.NewSession(sb, core.Config{
				MDI:        sharedMDI,
				Cache:      cache,
				ResultPath: path,
			})
			compiler := xc.New(session)
			h := endpoint.HandlerFunc(func(ctx context.Context, q string) (qval.Value, error) {
				v, _, err := compiler.HandleQuery(ctx, q)
				return v, err
			})
			return h, func() { session.Close() }, nil
		},
		RequestTimeout: *requestTimeout,
		DrainTimeout:   *drainTimeout,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Printf("serve: %v", err)
	}
	if err := mdiBackend.Close(); err != nil {
		log.Printf("mdi backend close: %v", err)
	}
	if persistStore != nil {
		if err := persistStore.Checkpoint(); err != nil {
			log.Printf("persist: final checkpoint: %v", err)
		}
		if err := persistStore.Close(); err != nil {
			log.Printf("persist: close: %v", err)
		}
	}
	if backendPool != nil {
		if err := backendPool.Close(); err != nil {
			log.Printf("drain: %v", err)
		}
	}
	for i, p := range shardPools {
		if err := p.Close(); err != nil {
			log.Printf("shard %d drain: %v", i, err)
		}
	}
	if cache != nil {
		cs := cache.Stats()
		log.Printf("qcache: %d entries, %d hits, %d misses, %d dedups, %d evictions",
			cs.Entries, cs.Hits, cs.Misses, cs.Dedups, cs.Evictions)
	}
	if backendPool != nil {
		ps := backendPool.Stats()
		log.Printf("pool: %d dials (%d errors), %d checkouts, %d health failures (%d checks skipped), %d discards",
			ps.Dials, ps.DialErrors, ps.Checkouts, ps.HealthFailures, ps.HealthChecksSkipped, ps.Discards)
	}
}

// parseShardRules parses the -shard-rules flag: a comma-separated list of
// table:hash:col, table:range:col:bound1|bound2|..., or table:replicated.
func parseShardRules(s string) ([]shard.TableSpec, error) {
	var out []shard.TableSpec
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		spec := shard.TableSpec{Name: parts[0]}
		kind := ""
		if len(parts) > 1 {
			kind = strings.ToLower(parts[1])
		}
		switch {
		case kind == "replicated" && len(parts) == 2:
			spec.Kind = shard.Replicated
		case kind == "hash" && len(parts) == 3:
			spec.Kind = shard.Hash
			spec.Column = parts[2]
		case kind == "range" && len(parts) == 4:
			spec.Kind = shard.Range
			spec.Column = parts[2]
			spec.Bounds = strings.Split(parts[3], "|")
		default:
			return nil, fmt.Errorf("bad rule %q (want table:hash:col, table:range:col:b1|b2, or table:replicated)", item)
		}
		out = append(out, spec)
	}
	return out, nil
}

func backendDesc(embedded bool, addr string) string {
	if embedded {
		return "embedded"
	}
	return addr
}
