// Command pgserver runs the embedded PostgreSQL-dialect database as a
// standalone PG v3 server — the reproduction's stand-in for the Greenplum
// backend of the paper's evaluation. With -demo it preloads the synthetic
// TAQ data set so a Hyper-Q proxy can serve the Analytical Workload.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"hyperq/internal/core"
	"hyperq/internal/persist"
	"hyperq/internal/pgdb"
	"hyperq/internal/taq"
	"hyperq/internal/wire/pgv3"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5432", "address to listen on")
	authMode := flag.String("auth", "trust", "authentication: trust, cleartext or md5")
	user := flag.String("user", "hyperq", "accepted user name")
	password := flag.String("password", "hyperq", "accepted password")
	demo := flag.Bool("demo", false, "preload the synthetic TAQ data set")
	trades := flag.Int("trades", 10000, "demo trade count")
	seed := flag.Int64("seed", 1, "demo data seed")
	execEngine := flag.String("exec", "compiled", "execution engine: compiled, interpreted, or vectorized")
	parallel := flag.Int("parallel", 1, "intra-query worker count for large scans (clamped to GOMAXPROCS; 1 disables)")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty = memory only)")
	walSync := flag.String("wal-sync", "batch", "WAL durability: always (fsync per statement), batch (group commit), none")
	memBudget := flag.Int64("mem-budget", 0, "resident column-data budget in bytes (0 = unlimited; needs -data-dir)")
	compress := flag.Bool("compress", false, "compress checkpoint column files (FOR/delta ints, dict strings, RLE bools; needs -data-dir)")
	useMMap := flag.Bool("mmap", false, "mmap checkpoint column files for zero-copy cold reads (needs -data-dir)")
	statsAddr := flag.String("stats-addr", "", "HTTP address serving persist I/O counters at /debug/vars (empty = off)")
	indexMinRows := flag.Int("index-min-rows", pgdb.DefaultIndexMinRows,
		"min table rows before a lazy secondary index builds (0 = always, -1 = disable indexes)")
	flag.Parse()

	// ctx is the server's life: SIGINT/SIGTERM cancels it and Serve drains
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	db := pgdb.NewDB()
	mode, err := execModeByName(*execEngine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	db.SetExecMode(mode)
	db.SetParallelism(*parallel)
	db.SetIndexMinRows(*indexMinRows)
	var store *persist.Store
	if *dataDir != "" {
		sync, err := persist.ParseSyncMode(*walSync)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		store, err = persist.Open(db, persist.Options{
			Dir: *dataDir, Sync: sync, MemBudget: *memBudget,
			Compress: *compress, MMap: *useMMap,
		})
		if err != nil {
			log.Fatalf("persist: %v", err)
		}
		if len(db.TableNames()) > 0 {
			*demo = false // restored catalog wins over reseeding
			log.Printf("restored durable catalog from %s (wal-sync=%s)", *dataDir, *walSync)
		}
	}
	if *statsAddr != "" {
		var pstats *persist.Stats
		if store != nil {
			pstats = store.Stats()
		}
		addr, err := persist.ServeStats(*statsAddr, pstats, db.IndexStats().Vars)
		if err != nil {
			log.Fatalf("stats: %v", err)
		}
		log.Printf("stats on http://%s/debug/vars", addr)
	}
	if *demo {
		b := core.NewDirectBackend(db)
		data := taq.Generate(taq.Config{Seed: *seed, Trades: *trades})
		if err := core.LoadQTable(ctx, b, "trades", data.Trades); err != nil {
			log.Fatalf("loading trades: %v", err)
		}
		if err := core.LoadQTable(ctx, b, "quotes", data.Quotes); err != nil {
			log.Fatalf("loading quotes: %v", err)
		}
		if err := core.LoadQTable(ctx, b, "refdata", data.RefData); err != nil {
			log.Fatalf("loading refdata: %v", err)
		}
		if err := core.LoadQTable(ctx, b, "daily", data.Daily); err != nil {
			log.Fatalf("loading daily: %v", err)
		}
		log.Printf("demo data loaded: %d trades, %d quotes, %d-column refdata",
			data.Trades.Len(), data.Quotes.Len(), data.RefData.NumCols())
	}

	method := pgv3.AuthMethodTrust
	switch *authMode {
	case "trust":
	case "cleartext":
		method = pgv3.AuthMethodCleartext
	case "md5":
		method = pgv3.AuthMethodMD5
	default:
		fmt.Fprintf(os.Stderr, "unknown auth mode %q\n", *authMode)
		os.Exit(2)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("pgserver listening on %s (auth=%s exec=%s parallel=%d)",
		*listen, *authMode, *execEngine, db.Parallelism())
	if err := pgdb.Serve(ctx, l, db, pgdb.AuthConfig{
		Method: method,
		Users:  map[string]string{*user: *password},
	}); err != nil {
		log.Fatalf("serve: %v", err)
	}
	if store != nil {
		if err := store.Checkpoint(); err != nil {
			log.Printf("persist: final checkpoint: %v", err)
		}
		if err := store.Close(); err != nil {
			log.Printf("persist: close: %v", err)
		}
	}
}

// execModeByName maps the -exec flag value to a pgdb execution engine.
func execModeByName(name string) (pgdb.ExecMode, error) {
	switch name {
	case "compiled":
		return pgdb.ExecCompiled, nil
	case "interpreted":
		return pgdb.ExecInterpreted, nil
	case "vectorized":
		return pgdb.ExecVectorized, nil
	}
	return 0, fmt.Errorf("unknown -exec mode %q (want compiled, interpreted, or vectorized)", name)
}
