// Command qrepl is an interactive Q shell. In -local mode it evaluates
// against the in-process kdb+ substrate (package interp); with -connect it
// acts as a Q application speaking QIPC to a remote server — which can be a
// real kdb+ or a Hyper-Q proxy, demonstrating the paper's claim that Q
// applications run unchanged against either (§3.1).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
	"hyperq/internal/qlang/interp"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/taq"
	"hyperq/internal/wire/qipc"
)

func main() {
	connect := flag.String("connect", "", "QIPC server address (kdb+ or hyperq proxy)")
	user := flag.String("user", "repl", "handshake user")
	password := flag.String("password", "", "handshake password")
	demo := flag.Bool("demo", false, "local mode: preload synthetic TAQ data")
	viaHQ := flag.Bool("hyperq", false, "local mode: route queries through an in-process Hyper-Q stack instead of the Q interpreter")
	flag.Parse()

	var eval func(string) (qval.Value, error)
	switch {
	case *connect != "":
		conn, err := net.Dial("tcp", *connect)
		if err != nil {
			log.Fatalf("connect: %v", err)
		}
		defer conn.Close()
		if err := qipc.ClientHandshake(conn, *user, *password); err != nil {
			log.Fatalf("handshake: %v", err)
		}
		fmt.Printf("connected to %s\n", *connect)
		eval = func(q string) (qval.Value, error) {
			if err := qipc.WriteMessage(conn, qipc.Sync, qval.CharVec(q)); err != nil {
				return nil, err
			}
			msg, err := qipc.ReadMessage(conn)
			if err != nil {
				return nil, err
			}
			if qe, isErr := msg.Value.(*qval.QError); isErr {
				return nil, qe
			}
			return msg.Value, nil
		}
	case *viaHQ:
		db := pgdb.NewDB()
		b := core.NewDirectBackend(db)
		if *demo {
			loadDemo(b)
		}
		session := core.NewPlatform().NewSession(b, core.Config{})
		defer session.Close()
		fmt.Println("local Hyper-Q stack (Q -> XTRA -> SQL -> embedded engine)")
		eval = func(q string) (qval.Value, error) {
			v, _, err := session.Run(context.Background(), q)
			return v, err
		}
	default:
		in := interp.New()
		if *demo {
			data := taq.Generate(taq.Config{Seed: 1, Trades: 5000})
			in.SetGlobal("trades", data.Trades)
			in.SetGlobal("quotes", data.Quotes)
			in.SetGlobal("daily", data.Daily)
			fmt.Println("demo tables loaded: trades, quotes, daily")
		}
		fmt.Println("local kdb+ substrate")
		eval = in.Eval
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("q) ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch line {
		case "":
			fmt.Print("q) ")
			continue
		case `\\`, "exit", "quit":
			return
		}
		v, err := eval(line)
		if err != nil {
			fmt.Println(err)
		} else if v != nil && v != qval.Value(qval.Identity) {
			fmt.Println(v)
		}
		fmt.Print("q) ")
	}
}

func loadDemo(b core.Backend) {
	data := taq.Generate(taq.Config{Seed: 1, Trades: 5000})
	for _, t := range []struct {
		name string
		tbl  *qval.Table
	}{
		{"trades", data.Trades}, {"quotes", data.Quotes},
		{"refdata", data.RefData}, {"daily", data.Daily},
	} {
		if err := core.LoadQTable(context.Background(), b, t.name, t.tbl); err != nil {
			log.Fatalf("loading %s: %v", t.name, err)
		}
	}
	fmt.Println("demo tables loaded: trades, quotes, refdata, daily")
}
