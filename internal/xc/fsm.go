// Package xc implements the Cross Compiler (paper §3.4, Figure 4): the
// Protocol Translator (PT) and Query Translator (QT), each designed as a
// finite state machine that maintains translator state while providing code
// re-entrance. FSMs fire asynchronous events that kick off processing, and
// function callbacks trigger automatically when events occur — e.g. when
// backend results are ready, a callback pivots them into QIPC format.
package xc

import (
	"fmt"
	"sync"
)

// State identifies one FSM state.
type State string

// EventKind identifies one event type.
type EventKind string

// Event is one unit of work delivered to an FSM.
type Event struct {
	Kind    EventKind
	Payload any
}

// Action is a callback fired on a transition. It receives the event payload
// and may emit follow-up events (to this or another FSM via the router the
// caller installed).
type Action func(payload any) ([]Event, error)

// transition is an edge of the state graph.
type transition struct {
	next   State
	action Action
}

// FSM is a finite state machine with an event queue. Events enqueue without
// blocking the sender; the owner drains them via Step or Drain — the
// re-entrance mechanism §3.4 describes.
type FSM struct {
	Name string

	mu     sync.Mutex
	state  State
	edges  map[State]map[EventKind]transition
	queue  []Event
	trace  []string
	failed error
}

// NewFSM builds an FSM starting in the given state.
func NewFSM(name string, start State) *FSM {
	return &FSM{Name: name, state: start, edges: map[State]map[EventKind]transition{}}
}

// On registers a transition: in state `from`, event `ev` runs `action` and
// moves to `to`.
func (f *FSM) On(from State, ev EventKind, to State, action Action) {
	if f.edges[from] == nil {
		f.edges[from] = map[EventKind]transition{}
	}
	f.edges[from][ev] = transition{next: to, action: action}
}

// State returns the current state.
func (f *FSM) State() State {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state
}

// Err returns the sticky failure, if the machine has failed.
func (f *FSM) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}

// Trace returns the transition log (for tests and debugging).
func (f *FSM) Trace() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.trace...)
}

// Send enqueues an event.
func (f *FSM) Send(ev Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.queue = append(f.queue, ev)
}

// Step processes one queued event; it reports whether an event was
// processed. An event with no registered transition in the current state is
// a protocol error and fails the machine.
func (f *FSM) Step() (bool, error) {
	f.mu.Lock()
	if f.failed != nil {
		f.mu.Unlock()
		return false, f.failed
	}
	if len(f.queue) == 0 {
		f.mu.Unlock()
		return false, nil
	}
	ev := f.queue[0]
	f.queue = f.queue[1:]
	cur := f.state
	tr, ok := f.edges[cur][ev.Kind]
	if !ok {
		f.failed = fmt.Errorf("xc: %s: no transition for event %q in state %q", f.Name, ev.Kind, cur)
		f.mu.Unlock()
		return false, f.failed
	}
	f.state = tr.next
	f.trace = append(f.trace, fmt.Sprintf("%s --%s--> %s", cur, ev.Kind, tr.next))
	f.mu.Unlock()

	if tr.action != nil {
		follow, err := tr.action(ev.Payload)
		if err != nil {
			f.mu.Lock()
			f.failed = err
			f.mu.Unlock()
			return true, err
		}
		for _, fe := range follow {
			f.Send(fe)
		}
	}
	return true, nil
}

// Drain processes queued events until the queue is empty or the machine
// fails.
func (f *FSM) Drain() error {
	for {
		processed, err := f.Step()
		if err != nil {
			return err
		}
		if !processed {
			return nil
		}
	}
}

// Reset returns the machine to the given state and clears failure, keeping
// the transition table — how a translator instance is reused across queries.
func (f *FSM) Reset(start State) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.state = start
	f.failed = nil
	f.queue = nil
}
