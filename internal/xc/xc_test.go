package xc

import (
	"context"
	"errors"
	"strings"
	"testing"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
	"hyperq/internal/qlang/qval"
)

func TestFSMBasicTransitions(t *testing.T) {
	f := NewFSM("test", "a")
	var log []string
	f.On("a", "go", "b", func(p any) ([]Event, error) {
		log = append(log, "a->b")
		return []Event{{Kind: "go2"}}, nil
	})
	f.On("b", "go2", "c", func(p any) ([]Event, error) {
		log = append(log, "b->c")
		return nil, nil
	})
	f.Send(Event{Kind: "go"})
	if err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	if f.State() != "c" || len(log) != 2 {
		t.Fatalf("state = %v log = %v", f.State(), log)
	}
	tr := f.Trace()
	if len(tr) != 2 || !strings.Contains(tr[0], "a --go--> b") {
		t.Fatalf("trace = %v", tr)
	}
}

func TestFSMRejectsUnexpectedEvents(t *testing.T) {
	f := NewFSM("test", "a")
	f.On("a", "x", "b", nil)
	f.Send(Event{Kind: "bogus"})
	if err := f.Drain(); err == nil {
		t.Fatal("event with no transition should fail the machine")
	}
	if f.Err() == nil {
		t.Fatal("failure should be sticky")
	}
	// after Reset the machine works again
	f.Reset("a")
	if f.Err() != nil {
		t.Fatal("reset should clear failure")
	}
	f.Send(Event{Kind: "x"})
	if err := f.Drain(); err != nil || f.State() != "b" {
		t.Fatalf("after reset: %v %v", err, f.State())
	}
}

func TestFSMActionErrorSticks(t *testing.T) {
	f := NewFSM("test", "a")
	boom := errors.New("boom")
	f.On("a", "x", "b", func(any) ([]Event, error) { return nil, boom })
	f.Send(Event{Kind: "x"})
	if err := f.Drain(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func newCompiler(t *testing.T) *CrossCompiler {
	t.Helper()
	db := pgdb.NewDB()
	b := core.NewDirectBackend(db)
	trades := qval.NewTable(
		[]string{"Symbol", "Price"},
		[]qval.Value{qval.SymbolVec{"A", "B", "A"}, qval.FloatVec{1, 2, 3}})
	if err := core.LoadQTable(context.Background(), b, "trades", trades); err != nil {
		t.Fatal(err)
	}
	s := core.NewPlatform().NewSession(b, core.Config{})
	t.Cleanup(func() { s.Close() })
	return New(s)
}

func TestCrossCompilerQueryLifeCycle(t *testing.T) {
	x := newCompiler(t)
	v, stats, err := x.HandleQuery(context.Background(), "select Price from trades where Symbol=`A")
	if err != nil {
		t.Fatal(err)
	}
	tbl := v.(*qval.Table)
	if tbl.Len() != 2 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	if stats == nil || stats.Stages.Translation() <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// both machines completed their life cycle
	if got := x.pt.State(); got != PTDone {
		t.Fatalf("PT state = %v", got)
	}
	if got := x.qt.State(); got != QTDone {
		t.Fatalf("QT state = %v", got)
	}
	// the PT trace shows the §3.4 life cycle
	trace := strings.Join(x.PTTrace(), "\n")
	for _, want := range []string{"pt/idle", "pt/translating", "pt/pivoting", "pt/done"} {
		if !strings.Contains(trace, want) {
			t.Fatalf("PT trace missing %q:\n%s", want, trace)
		}
	}
}

func TestCrossCompilerReuseAcrossQueries(t *testing.T) {
	x := newCompiler(t)
	for i := 0; i < 3; i++ {
		if _, _, err := x.HandleQuery(context.Background(), "select from trades"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrossCompilerErrorPropagation(t *testing.T) {
	x := newCompiler(t)
	_, _, err := x.HandleQuery(context.Background(), "select from nosuchtable")
	if err == nil {
		t.Fatal("bad query should fail through the FSMs")
	}
	// and the compiler recovers for the next query
	if _, _, err := x.HandleQuery(context.Background(), "select from trades"); err != nil {
		t.Fatalf("compiler did not recover: %v", err)
	}
}
