package xc

import (
	"context"
	"time"

	"hyperq/internal/core"
	"hyperq/internal/qlang/qval"
)

// PT states (protocol translation life cycle, Figure 4).
const (
	PTIdle        State = "pt/idle"
	PTTranslating State = "pt/translating"
	PTExecuting   State = "pt/executing"
	PTPivoting    State = "pt/pivoting"
	PTDone        State = "pt/done"
)

// QT states (query translation life cycle).
const (
	QTIdle        State = "qt/idle"
	QTTranslating State = "qt/translating"
	QTDone        State = "qt/done"
)

// Events exchanged between the translators.
const (
	EvQuery      EventKind = "q-query"    // Q text extracted from a QIPC message
	EvTranslated EventKind = "sql-ready"  // QT produced SQL / executed the pipeline
	EvExecuted   EventKind = "rows-ready" // backend rows arrived
	EvPivoted    EventKind = "qipc-ready" // result pivoted to column format
)

// CrossCompiler wires a Protocol Translator FSM and a Query Translator FSM
// around a platform session, exactly the PT/QT split of §3.4: PT owns the
// protocol conversation (message in, message out, result pivot), QT owns
// the language translation (algebrize → transform → serialize → execute).
//
// The interface between PT and QT is "as simple as sending out a Q query
// from PT, and receiving back an equivalent SQL query from QT".
type CrossCompiler struct {
	session *core.Session
	pt      *FSM
	qt      *FSM

	// per-request scratch, written by FSM actions. ctx is the request's
	// context, installed by HandleQuery for the FSM actions to pick up —
	// the FSM event payloads stay protocol data, per the paper's PT/QT
	// interface ("sending out a Q query ... receiving back SQL").
	ctx       context.Context
	result    qval.Value
	stats     *core.RunStats
	pivotTime time.Duration
}

// New builds a cross compiler over a platform session.
func New(session *core.Session) *CrossCompiler {
	x := &CrossCompiler{session: session}
	x.qt = NewFSM("QT", QTIdle)
	x.pt = NewFSM("PT", PTIdle)

	// QT: receives the Q text, drives the translation pipeline, hands the
	// (executed) result back to PT.
	x.qt.On(QTIdle, EvQuery, QTTranslating, func(payload any) ([]Event, error) {
		qtext := payload.(string)
		v, stats, err := x.session.Run(x.ctx, qtext)
		if err != nil {
			return nil, err
		}
		x.result = v
		x.stats = stats
		x.qt.Send(Event{Kind: EvTranslated})
		return nil, nil
	})
	x.qt.On(QTTranslating, EvTranslated, QTDone, func(any) ([]Event, error) {
		// callback fires when backend results are ready for translation
		x.pt.Send(Event{Kind: EvExecuted, Payload: x.result})
		return nil, nil
	})

	// PT: extracts the query, delegates to QT, pivots the result set into
	// QIPC's column orientation (§4.2; the pivot itself happens inside the
	// session's result conversion — PT buffers and finalizes here).
	x.pt.On(PTIdle, EvQuery, PTTranslating, func(payload any) ([]Event, error) {
		x.qt.Send(Event{Kind: EvQuery, Payload: payload})
		if err := x.qt.Drain(); err != nil {
			return nil, err
		}
		return nil, nil
	})
	x.pt.On(PTTranslating, EvExecuted, PTPivoting, func(payload any) ([]Event, error) {
		t0 := time.Now()
		// the value is already column-oriented (pivot happened during
		// result conversion); measure the finalize step
		x.result = payload.(qval.Value)
		x.pivotTime = time.Since(t0)
		x.pt.Send(Event{Kind: EvPivoted})
		return nil, nil
	})
	x.pt.On(PTPivoting, EvPivoted, PTDone, nil)
	return x
}

// HandleQuery drives one complete query life cycle through both FSMs and
// returns the Q-side result. It is the endpoint plugin's handler; ctx is the
// per-request context (deadline, client-disconnect cancellation) and bounds
// the whole translate-execute-pivot cycle.
func (x *CrossCompiler) HandleQuery(ctx context.Context, qtext string) (qval.Value, *core.RunStats, error) {
	x.pt.Reset(PTIdle)
	x.qt.Reset(QTIdle)
	x.ctx, x.result, x.stats = ctx, nil, nil
	x.pt.Send(Event{Kind: EvQuery, Payload: qtext})
	if err := x.pt.Drain(); err != nil {
		return nil, x.stats, err
	}
	if err := x.qt.Err(); err != nil {
		return nil, x.stats, err
	}
	if x.pt.State() != PTDone {
		return nil, x.stats, errState(x.pt)
	}
	return x.result, x.stats, nil
}

// PTTrace exposes the protocol translator's transition log.
func (x *CrossCompiler) PTTrace() []string { return x.pt.Trace() }

// QTTrace exposes the query translator's transition log.
func (x *CrossCompiler) QTTrace() []string { return x.qt.Trace() }

// Session exposes the underlying platform session.
func (x *CrossCompiler) Session() *core.Session { return x.session }

func errState(f *FSM) error {
	if err := f.Err(); err != nil {
		return err
	}
	return &stateError{name: f.Name, state: f.State()}
}

type stateError struct {
	name  string
	state State
}

func (e *stateError) Error() string {
	return "xc: " + e.name + " stalled in state " + string(e.state)
}
