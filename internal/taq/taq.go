// Package taq generates synthetic NYSE-TAQ-shaped market data: trades and
// quotes tables with realistic symbols, random-walk prices and monotone
// intraday timestamps. It substitutes for the proprietary customer data the
// paper's Analytical Workload ran over (§6): same schema family (trades,
// quotes, wide reference tables with 500+ columns), deterministic seeds for
// reproducible benchmarks.
package taq

import (
	"fmt"
	"math"
	"math/rand"

	"hyperq/internal/qlang/qval"
)

// DefaultSymbols is a realistic ticker universe.
var DefaultSymbols = []string{
	"AAPL", "MSFT", "GOOG", "AMZN", "IBM", "ORCL", "INTC", "CSCO",
	"JPM", "GS", "MS", "BAC", "C", "WFC", "XOM", "CVX",
}

// Config parameterizes generation.
type Config struct {
	Seed    int64
	Symbols []string
	// NumSymbols, when positive and Symbols is empty, generates a synthetic
	// universe of that many tickers (SYM0000, SYM0001, ...), giving the
	// reference tables realistic row counts.
	NumSymbols int
	Trades     int
	Quotes     int
	Date       qval.Temporal // trading date; zero value defaults to 2016.06.27
	StartMs    int64         // session open, ms since midnight (default 09:30)
	EndMs      int64         // session close (default 16:00)
	BasePx     float64       // starting mid price (default 100)
	WideCols   int           // extra attribute columns for the wide table
}

func (c *Config) defaults() {
	if len(c.Symbols) == 0 && c.NumSymbols > 0 {
		c.Symbols = make([]string, c.NumSymbols)
		for i := range c.Symbols {
			c.Symbols[i] = fmt.Sprintf("SYM%04d", i)
		}
	}
	if len(c.Symbols) == 0 {
		c.Symbols = DefaultSymbols
	}
	if c.Trades == 0 {
		c.Trades = 10_000
	}
	if c.Quotes == 0 {
		c.Quotes = 2 * c.Trades
	}
	if c.Date.T == 0 {
		c.Date = qval.MkDate(2016, 6, 27)
	}
	if c.StartMs == 0 {
		c.StartMs = 9*3600_000 + 30*60_000
	}
	if c.EndMs == 0 {
		c.EndMs = 16 * 3600_000
	}
	if c.BasePx == 0 {
		c.BasePx = 100
	}
	if c.WideCols == 0 {
		c.WideCols = 500
	}
}

// Data is the generated market-data set.
type Data struct {
	Trades *qval.Table // Date, Symbol, Time, Price, Size, Exch
	Quotes *qval.Table // Date, Symbol, Time, Bid, Ask, BidSize, AskSize
	// RefData is the wide reference table (Symbol + WideCols numeric
	// attributes), standing in for the paper's 500+ column tables.
	RefData *qval.Table
	// Daily holds per-symbol daily statistics for multi-table joins.
	Daily *qval.Table // Symbol, Open, High, Low, Close, Volume
}

var exchanges = []string{"N", "Q", "P", "B"}

// Generate builds a deterministic data set for the configuration.
func Generate(cfg Config) *Data {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nSym := len(cfg.Symbols)

	// per-symbol random-walk mid prices
	mids := make([]float64, nSym)
	for i := range mids {
		mids[i] = cfg.BasePx * (0.5 + rng.Float64()*1.5)
	}

	d := &Data{}
	d.Trades = genTrades(cfg, rng, mids)
	d.Quotes = genQuotes(cfg, rng, mids)
	d.RefData = genRefData(cfg, rng)
	d.Daily = genDaily(cfg, d.Trades)
	return d
}

func genTrades(cfg Config, rng *rand.Rand, mids []float64) *qval.Table {
	n := cfg.Trades
	times := genTimesFast(rng, n, cfg.StartMs, cfg.EndMs)
	syms := make(qval.SymbolVec, n)
	prices := make(qval.FloatVec, n)
	sizes := make(qval.LongVec, n)
	exch := make(qval.SymbolVec, n)
	dates := qval.TemporalVec{T: qval.KDate, V: make([]int64, n)}
	walk := append([]float64(nil), mids...)
	for i := 0; i < n; i++ {
		s := rng.Intn(len(cfg.Symbols))
		walk[s] *= 1 + rng.NormFloat64()*0.0005
		syms[i] = cfg.Symbols[s]
		prices[i] = math.Round(walk[s]*100) / 100
		sizes[i] = int64(100 * (1 + rng.Intn(50)))
		exch[i] = exchanges[rng.Intn(len(exchanges))]
		dates.V[i] = cfg.Date.V
	}
	return qval.NewTable(
		[]string{"Date", "Symbol", "Time", "Price", "Size", "Exch"},
		[]qval.Value{dates, syms, qval.TemporalVec{T: qval.KTime, V: times}, prices, sizes, exch})
}

func genQuotes(cfg Config, rng *rand.Rand, mids []float64) *qval.Table {
	n := cfg.Quotes
	times := genTimesFast(rng, n, cfg.StartMs, cfg.EndMs)
	syms := make(qval.SymbolVec, n)
	bids := make(qval.FloatVec, n)
	asks := make(qval.FloatVec, n)
	bsz := make(qval.LongVec, n)
	asz := make(qval.LongVec, n)
	dates := qval.TemporalVec{T: qval.KDate, V: make([]int64, n)}
	walk := append([]float64(nil), mids...)
	for i := 0; i < n; i++ {
		s := rng.Intn(len(cfg.Symbols))
		walk[s] *= 1 + rng.NormFloat64()*0.0005
		spread := 0.01 * (1 + rng.Float64()*4)
		syms[i] = cfg.Symbols[s]
		bids[i] = math.Round((walk[s]-spread/2)*100) / 100
		asks[i] = math.Round((walk[s]+spread/2)*100) / 100
		bsz[i] = int64(100 * (1 + rng.Intn(30)))
		asz[i] = int64(100 * (1 + rng.Intn(30)))
		dates.V[i] = cfg.Date.V
	}
	return qval.NewTable(
		[]string{"Date", "Symbol", "Time", "Bid", "Ask", "BidSize", "AskSize"},
		[]qval.Value{dates, syms, qval.TemporalVec{T: qval.KTime, V: times}, bids, asks, bsz, asz})
}

// genTimesFast draws sorted timestamps in O(n) by accumulating exponential
// gaps.
func genTimesFast(rng *rand.Rand, n int, start, end int64) []int64 {
	if n == 0 {
		return nil
	}
	gaps := make([]float64, n)
	total := 0.0
	for i := range gaps {
		gaps[i] = rng.ExpFloat64()
		total += gaps[i]
	}
	out := make([]int64, n)
	span := float64(end - start)
	acc := 0.0
	for i := range out {
		acc += gaps[i]
		out[i] = start + int64(acc/total*span)
	}
	return out
}

// genRefData builds the wide reference table: Symbol plus WideCols numeric
// attributes (attr_000 ... attr_NNN), reproducing the paper's "tables with
// more than 500 columns".
func genRefData(cfg Config, rng *rand.Rand) *qval.Table {
	nSym := len(cfg.Symbols)
	cols := make([]string, 0, cfg.WideCols+2)
	data := make([]qval.Value, 0, cfg.WideCols+2)
	cols = append(cols, "Symbol", "Sector")
	syms := make(qval.SymbolVec, nSym)
	sectors := make(qval.SymbolVec, nSym)
	sectorNames := []string{"tech", "fin", "energy", "health"}
	for i, s := range cfg.Symbols {
		syms[i] = s
		sectors[i] = sectorNames[i%len(sectorNames)]
	}
	data = append(data, syms, sectors)
	for c := 0; c < cfg.WideCols; c++ {
		col := make(qval.FloatVec, nSym)
		for i := range col {
			col[i] = math.Round(rng.Float64()*10000) / 100
		}
		cols = append(cols, fmt.Sprintf("attr_%03d", c))
		data = append(data, col)
	}
	return qval.NewTable(cols, data)
}

// genDaily derives per-symbol daily OHLCV from the trades.
func genDaily(cfg Config, trades *qval.Table) *qval.Table {
	symCol, _ := trades.Column("Symbol")
	pxCol, _ := trades.Column("Price")
	szCol, _ := trades.Column("Size")
	type agg struct {
		open, high, low, close float64
		volume                 int64
		seen                   bool
	}
	stats := map[string]*agg{}
	n := trades.Len()
	for i := 0; i < n; i++ {
		s := string(symCol.(qval.SymbolVec)[i])
		p := pxCol.(qval.FloatVec)[i]
		a, ok := stats[s]
		if !ok {
			a = &agg{open: p, high: p, low: p}
			stats[s] = a
		}
		if p > a.high {
			a.high = p
		}
		if p < a.low {
			a.low = p
		}
		a.close = p
		a.volume += szCol.(qval.LongVec)[i]
	}
	var syms qval.SymbolVec
	var open, high, low, cl qval.FloatVec
	var vol qval.LongVec
	for _, s := range cfg.Symbols {
		a, ok := stats[s]
		if !ok {
			continue
		}
		syms = append(syms, s)
		open = append(open, a.open)
		high = append(high, a.high)
		low = append(low, a.low)
		cl = append(cl, a.close)
		vol = append(vol, a.volume)
	}
	return qval.NewTable(
		[]string{"Symbol", "Open", "High", "Low", "Close", "Volume"},
		[]qval.Value{syms, open, high, low, cl, vol})
}
