package taq

import (
	"testing"

	"hyperq/internal/qlang/qval"
)

func TestDefaultsAndShapes(t *testing.T) {
	d := Generate(Config{Seed: 1})
	if d.Trades.Len() != 10_000 {
		t.Fatalf("default trades = %d", d.Trades.Len())
	}
	if d.Quotes.Len() != 20_000 {
		t.Fatalf("default quotes = %d", d.Quotes.Len())
	}
	if d.RefData.NumCols() != 502 { // Symbol + Sector + 500 attrs
		t.Fatalf("refdata cols = %d", d.RefData.NumCols())
	}
	if d.Daily.Len() == 0 || d.Daily.NumCols() != 6 {
		t.Fatalf("daily shape = %dx%d", d.Daily.Len(), d.Daily.NumCols())
	}
}

func TestSyntheticUniverse(t *testing.T) {
	d := Generate(Config{Seed: 1, NumSymbols: 50, Trades: 100, Quotes: 100, WideCols: 3})
	if d.RefData.Len() != 50 {
		t.Fatalf("refdata rows = %d", d.RefData.Len())
	}
	sym, _ := d.RefData.Column("Symbol")
	if sym.(qval.SymbolVec)[0] != "SYM0000" {
		t.Fatalf("synthetic symbols = %v", qval.Index(sym, 0))
	}
}

func TestQuotesBidBelowAsk(t *testing.T) {
	d := Generate(Config{Seed: 9, Trades: 10, Quotes: 500, WideCols: 1})
	bid, _ := d.Quotes.Column("Bid")
	ask, _ := d.Quotes.Column("Ask")
	for i := 0; i < d.Quotes.Len(); i++ {
		b := bid.(qval.FloatVec)[i]
		a := ask.(qval.FloatVec)[i]
		if b > a {
			t.Fatalf("crossed quote at %d: bid %v > ask %v", i, b, a)
		}
	}
}

func TestDailyConsistentWithTrades(t *testing.T) {
	d := Generate(Config{Seed: 4, Trades: 1000, Quotes: 10, WideCols: 1,
		Symbols: []string{"A", "B"}})
	hi, _ := d.Daily.Column("High")
	lo, _ := d.Daily.Column("Low")
	for i := 0; i < d.Daily.Len(); i++ {
		if hi.(qval.FloatVec)[i] < lo.(qval.FloatVec)[i] {
			t.Fatal("daily high below low")
		}
	}
	vol, _ := d.Daily.Column("Volume")
	var totalDaily int64
	for _, v := range vol.(qval.LongVec) {
		totalDaily += v
	}
	sz, _ := d.Trades.Column("Size")
	var totalTrades int64
	for _, v := range sz.(qval.LongVec) {
		totalTrades += v
	}
	if totalDaily != totalTrades {
		t.Fatalf("daily volume %d != trades volume %d", totalDaily, totalTrades)
	}
}

func TestPricesArePositive(t *testing.T) {
	d := Generate(Config{Seed: 8, Trades: 2000, Quotes: 10, WideCols: 1})
	px, _ := d.Trades.Column("Price")
	for _, p := range px.(qval.FloatVec) {
		if p <= 0 {
			t.Fatalf("non-positive price %v", p)
		}
	}
}
