package pgv3

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"testing"
)

// streamCollector is a RowReceiver that records everything it is handed.
type streamCollector struct {
	cols  []ColDesc
	rows  [][]string
	nulls int
	tag   string
	// onRow, when set, runs after each delivered row
	onRow func(n int)
	// rowErr, when set, is returned from DataRow
	rowErr error
}

func (sc *streamCollector) Describe(cols []ColDesc) error {
	sc.cols = cols
	return nil
}

func (sc *streamCollector) DataRow(fields [][]byte) error {
	if sc.rowErr != nil {
		return sc.rowErr
	}
	row := make([]string, len(fields))
	for j, f := range fields {
		if f == nil {
			sc.nulls++
			continue
		}
		row[j] = string(f)
	}
	sc.rows = append(sc.rows, row)
	if sc.onRow != nil {
		sc.onRow(len(sc.rows))
	}
	return nil
}

func (sc *streamCollector) Complete(tag string) { sc.tag = tag }

func TestQueryStreamDelivers(t *testing.T) {
	addr := startEcho(t, AuthMethodTrust, nil)
	c, err := Connect(context.Background(), addr, "u", "", "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sc streamCollector
	if err := c.QueryStream(context.Background(), "SELECT a, b FROM t", &sc); err != nil {
		t.Fatal(err)
	}
	if len(sc.cols) != 2 || sc.cols[0].Name != "a" || sc.cols[0].TypeOID != OidInt8 {
		t.Fatalf("cols = %+v", sc.cols)
	}
	if len(sc.rows) != 2 || sc.rows[0][0] != "1" || sc.rows[1][0] != "2" {
		t.Fatalf("rows = %+v", sc.rows)
	}
	if sc.nulls != 1 {
		t.Fatalf("nulls = %d", sc.nulls)
	}
	if sc.tag != "SELECT 2" {
		t.Fatalf("tag = %q", sc.tag)
	}
	// the same connection still serves the materialized path
	res, err := c.Query(context.Background(), "SELECT a, b FROM t")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("follow-up Query: %v, %+v", err, res)
	}
}

func TestQueryStreamServerError(t *testing.T) {
	addr := startEcho(t, AuthMethodTrust, nil)
	c, err := Connect(context.Background(), addr, "u", "", "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sc streamCollector
	err = c.QueryStream(context.Background(), "boom", &sc)
	var se *ServerError
	if !errors.As(err, &se) || se.Code != "42P01" {
		t.Fatalf("err = %v", err)
	}
	if err := c.QueryStream(context.Background(), "SELECT 1", &sc); err != nil {
		t.Fatalf("connection dead after server error: %v", err)
	}
}

// startBulkServer serves one connection: any query returns rows numbered
// 0..n-1 in a single flushed burst, then CommandComplete/ReadyForQuery.
func startBulkServer(t *testing.T, n int) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				sc := NewServerConn(conn)
				defer sc.Close()
				if err := sc.Startup(); err != nil {
					return
				}
				if err := sc.Authenticate(AuthMethodTrust, nil); err != nil {
					return
				}
				for {
					if _, err := sc.ReadQuery(); err != nil {
						return
					}
					sc.SendRowDescription([]ColDesc{{Name: "n", TypeOID: OidInt8}})
					for i := 0; i < n; i++ {
						sc.SendDataRow([]Field{{Text: strconv.Itoa(i)}})
					}
					sc.SendCommandComplete(fmt.Sprintf("SELECT %d", n))
					sc.SendReadyForQuery()
					if err := sc.Flush(); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String()
}

// TestCancelMidStreamStopsDelivery pins the fix for the canceled-statement
// drain: once the statement context is canceled, remaining rows must not
// keep accumulating — delivery stops at the cancellation point.
func TestCancelMidStreamStopsDelivery(t *testing.T) {
	const total = 5000
	addr := startBulkServer(t, total)
	c, err := Connect(context.Background(), addr, "u", "", "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc := &streamCollector{}
	sc.onRow = func(n int) {
		if n == 3 {
			cancel() // cancel synchronously inside row delivery
		}
	}
	err = c.QueryStream(ctx, "SELECT n FROM big", sc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// the row already being delivered lands; nothing after it may
	if len(sc.rows) != 3 {
		t.Fatalf("delivered %d rows after cancel at 3", len(sc.rows))
	}
	if sc.tag != "" {
		t.Fatalf("tag delivered on canceled stream: %q", sc.tag)
	}
}

// TestReceiverErrorDrainsProtocol: a sink error stops delivery but drains to
// ReadyForQuery, so the connection survives for the next statement.
func TestReceiverErrorDrainsProtocol(t *testing.T) {
	addr := startBulkServer(t, 100)
	c, err := Connect(context.Background(), addr, "u", "", "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	boom := errors.New("sink exploded")
	sc := &streamCollector{rowErr: boom}
	if err := c.QueryStream(context.Background(), "SELECT n FROM big", sc); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink error", err)
	}
	good := &streamCollector{}
	if err := c.QueryStream(context.Background(), "SELECT n FROM big", good); err != nil {
		t.Fatalf("connection dead after sink error: %v", err)
	}
	if len(good.rows) != 100 {
		t.Fatalf("follow-up rows = %d", len(good.rows))
	}
}
