package pgv3

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"time"
)

// ClientConn is the client side of a PG v3 connection — what Hyper-Q's
// Gateway uses to talk to the backend database (paper §3.1).
type ClientConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	// streaming scratch, reused across messages of one query at a time (a
	// connection serves one query at a time)
	rbuf   []byte
	fields [][]byte
}

// RowReceiver receives one streamed simple-query result: the schema, then
// each data row as it is decoded off the wire, then the command tag.
type RowReceiver interface {
	// Describe delivers the RowDescription.
	Describe(cols []ColDesc) error
	// DataRow delivers one row. A nil cell is SQL NULL; non-nil cells point
	// into the connection's read buffer and are only valid during the call.
	DataRow(fields [][]byte) error
	// Complete delivers the command tag once the result finished cleanly.
	Complete(tag string)
}

// QueryResult is a collected simple-query result: schema, rows in text
// format, and the command tag.
type QueryResult struct {
	Cols []ColDesc
	Rows [][]Field
	Tag  string
}

// Connect dials a PG v3 server and completes startup + authentication. The
// context bounds the dial and the handshake; it does not outlive Connect.
func Connect(ctx context.Context, addr, user, password, database string) (*ClientConn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
		defer conn.SetDeadline(time.Time{})
	}
	c := &ClientConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if err := c.startup(user, password, database); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *ClientConn) startup(user, password, database string) error {
	// startup message: no type byte
	var body []byte
	body = binary.BigEndian.AppendUint32(body, ProtocolVersion)
	add := func(k, v string) {
		body = append(append(body, k...), 0)
		body = append(append(body, v...), 0)
	}
	add("user", user)
	if database != "" {
		add("database", database)
	}
	body = append(body, 0)
	hdr := binary.BigEndian.AppendUint32(nil, uint32(len(body)+4))
	if _, err := c.w.Write(hdr); err != nil {
		return err
	}
	if _, err := c.w.Write(body); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	// authentication loop
	for {
		typ, msg, err := readTyped(c.r)
		if err != nil {
			return err
		}
		switch typ {
		case 'R':
			if len(msg) < 4 {
				return errf("short auth message")
			}
			switch binary.BigEndian.Uint32(msg) {
			case AuthOK:
				// continue to ready loop below
			case AuthCleartext:
				if err := c.sendPassword(password); err != nil {
					return err
				}
			case AuthMD5:
				if len(msg) < 8 {
					return errf("short MD5 auth message")
				}
				var salt [4]byte
				copy(salt[:], msg[4:8])
				if err := c.sendPassword(md5Password(user, password, salt)); err != nil {
					return err
				}
			default:
				return errf("unsupported auth method %d", binary.BigEndian.Uint32(msg))
			}
		case 'S', 'K', 'N':
			// parameter status / key data / notice: ignore
		case 'Z':
			return nil // ready
		case 'E':
			return parseServerError(msg)
		default:
			return errf("unexpected startup message %q", typ)
		}
	}
}

func (c *ClientConn) sendPassword(pw string) error {
	m := newMsg('p')
	m.cstr(pw)
	if err := m.writeTo(c.w); err != nil {
		return err
	}
	return c.w.Flush()
}

// Query runs one SQL statement via the simple query protocol and collects
// the full result into owned strings — the materialized form the text path
// consumes. It is QueryStream over a collecting receiver, so it shares the
// cancellation semantics below: after the statement context is canceled
// mid-stream, remaining rows are discarded as they drain rather than
// accumulated.
func (c *ClientConn) Query(ctx context.Context, sql string) (*QueryResult, error) {
	res := &QueryResult{}
	if err := c.QueryStream(ctx, sql, (*collectReceiver)(res)); err != nil {
		return nil, err
	}
	return res, nil
}

// collectReceiver materializes a streamed result as a QueryResult.
type collectReceiver QueryResult

func (cr *collectReceiver) Describe(cols []ColDesc) error {
	cr.Cols = cols
	return nil
}

func (cr *collectReceiver) DataRow(fields [][]byte) error {
	row := make([]Field, len(fields))
	for j, f := range fields {
		if f == nil {
			row[j] = Field{Null: true}
		} else {
			row[j] = Field{Text: string(f)}
		}
	}
	cr.Rows = append(cr.Rows, row)
	return nil
}

func (cr *collectReceiver) Complete(tag string) { cr.Tag = tag }

// QueryStream runs one SQL statement via the simple query protocol,
// delivering rows to the receiver incrementally as DataRow messages decode
// — no [][]Field materialization. The context is the single source of truth
// for the query's deadline and cancellation: its deadline becomes the
// socket I/O deadline, and cancellation aborts in-flight I/O immediately.
// An abort surfaces as an *AbortError wrapping ctx.Err() — the connection
// is mid-protocol at that point and must be discarded. A receiver error
// stops delivery but drains the result to ReadyForQuery, keeping the
// connection protocol-clean (matching the materialized path, where
// conversion errors surface after the full drain).
func (c *ClientConn) QueryStream(ctx context.Context, sql string, rr RowReceiver) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	finish := c.armContext(ctx)
	return finish(c.queryStream(ctx, sql, rr))
}

// armContext maps ctx onto the socket for the duration of one query. The
// returned finish must be called exactly once with the query's error: it
// stops the cancellation watcher, clears the deadline, and attributes an
// I/O failure caused by the context to the context.
func (c *ClientConn) armContext(ctx context.Context) func(error) error {
	if d, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(d)
	}
	var stop, idle chan struct{}
	if done := ctx.Done(); done != nil {
		stop = make(chan struct{})
		idle = make(chan struct{})
		go func() {
			defer close(idle)
			select {
			case <-done:
				// force in-flight I/O to fail now; finish attributes the
				// failure to ctx.Err()
				c.conn.SetDeadline(time.Unix(1, 0))
			case <-stop:
			}
		}()
	}
	return func(err error) error {
		if stop != nil {
			close(stop)
			<-idle // the watcher must not re-arm after the clear below
		}
		c.conn.SetDeadline(time.Time{})
		if err == nil {
			return nil
		}
		var se *ServerError
		if cerr := ctx.Err(); cerr != nil && !errors.As(err, &se) {
			return &AbortError{Ctx: cerr, IO: err}
		}
		return err
	}
}

func (c *ClientConn) queryStream(ctx context.Context, sql string, rr RowReceiver) error {
	m := newMsg('Q')
	m.cstr(sql)
	if err := m.writeTo(c.w); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	var qerr, sinkErr error
	var tag string
	aborted := false
	for {
		typ, body, err := c.readTypedReuse()
		if err != nil {
			return err
		}
		switch typ {
		case 'T':
			if aborted || sinkErr != nil {
				continue
			}
			cols, err := parseRowDescription(body)
			if err != nil {
				return err
			}
			if err := rr.Describe(cols); err != nil {
				sinkErr = err
			}
		case 'D':
			// a canceled statement stops delivering (and retaining) rows
			// right away; the remaining stream drains until the context
			// watcher's poisoned socket deadline or ReadyForQuery ends it
			if !aborted && ctx.Err() != nil {
				aborted = true
			}
			if aborted || sinkErr != nil {
				continue
			}
			if err := c.parseDataRowInto(body); err != nil {
				return err
			}
			if err := rr.DataRow(c.fields); err != nil {
				sinkErr = err
			}
		case 'C':
			t, _, err := cutCString(body)
			if err != nil {
				return err
			}
			tag = t
		case 'E':
			qerr = parseServerError(body)
		case 'N', 'S', 'K':
			// notices and parameter updates: ignore
		case 'Z':
			switch {
			case qerr != nil:
				return qerr
			case sinkErr != nil:
				return sinkErr
			case aborted:
				return ctx.Err()
			}
			rr.Complete(tag)
			return nil
		default:
			return errf("unexpected message %q during query", typ)
		}
	}
}

// readTypedReuse reads one typed message into the connection's reusable
// body buffer; the returned body is only valid until the next read.
func (c *ClientConn) readTypedReuse() (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n < 4 || n > 1<<30 {
		return 0, nil, errf("implausible message length %d", n)
	}
	need := int(n - 4)
	if cap(c.rbuf) < need {
		c.rbuf = make([]byte, need)
	}
	body := c.rbuf[:need]
	if _, err := io.ReadFull(c.r, body); err != nil {
		return 0, nil, err
	}
	return hdr[0], body, nil
}

// parseDataRowInto decodes a DataRow into the connection's reusable field
// slice: nil for NULL, subslices of the read buffer otherwise.
func (c *ClientConn) parseDataRowInto(b []byte) error {
	if len(b) < 2 {
		return errf("short DataRow")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if cap(c.fields) < n {
		c.fields = make([][]byte, n)
	}
	c.fields = c.fields[:n]
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return errf("short field length")
		}
		ln := int32(binary.BigEndian.Uint32(b))
		b = b[4:]
		if ln < 0 {
			c.fields[i] = nil
			continue
		}
		if int(ln) > len(b) {
			return errf("field overruns message")
		}
		c.fields[i] = b[:ln:ln]
		b = b[ln:]
	}
	return nil
}

// Close sends Terminate and closes the socket.
func (c *ClientConn) Close() error {
	m := newMsg('X')
	m.writeTo(c.w)
	c.w.Flush()
	return c.conn.Close()
}

func parseRowDescription(b []byte) ([]ColDesc, error) {
	if len(b) < 2 {
		return nil, errf("short RowDescription")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	cols := make([]ColDesc, 0, n)
	for i := 0; i < n; i++ {
		name, rest, err := cutCString(b)
		if err != nil {
			return nil, err
		}
		if len(rest) < 18 {
			return nil, errf("short column descriptor")
		}
		oid := binary.BigEndian.Uint32(rest[6:10])
		cols = append(cols, ColDesc{Name: name, TypeOID: oid})
		b = rest[18:]
	}
	return cols, nil
}

func parseServerError(b []byte) *ServerError {
	e := &ServerError{Severity: "ERROR", Code: "XX000"}
	for len(b) > 0 && b[0] != 0 {
		code := b[0]
		val, rest, err := cutCString(b[1:])
		if err != nil {
			break
		}
		switch code {
		case 'S':
			e.Severity = val
		case 'C':
			e.Code = val
		case 'M':
			e.Message = val
		}
		b = rest
	}
	return e
}
