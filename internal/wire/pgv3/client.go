package pgv3

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"time"
)

// ClientConn is the client side of a PG v3 connection — what Hyper-Q's
// Gateway uses to talk to the backend database (paper §3.1).
type ClientConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// QueryResult is a collected simple-query result: schema, rows in text
// format, and the command tag.
type QueryResult struct {
	Cols []ColDesc
	Rows [][]Field
	Tag  string
}

// Connect dials a PG v3 server and completes startup + authentication. The
// context bounds the dial and the handshake; it does not outlive Connect.
func Connect(ctx context.Context, addr, user, password, database string) (*ClientConn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
		defer conn.SetDeadline(time.Time{})
	}
	c := &ClientConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if err := c.startup(user, password, database); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *ClientConn) startup(user, password, database string) error {
	// startup message: no type byte
	var body []byte
	body = binary.BigEndian.AppendUint32(body, ProtocolVersion)
	add := func(k, v string) {
		body = append(append(body, k...), 0)
		body = append(append(body, v...), 0)
	}
	add("user", user)
	if database != "" {
		add("database", database)
	}
	body = append(body, 0)
	hdr := binary.BigEndian.AppendUint32(nil, uint32(len(body)+4))
	if _, err := c.w.Write(hdr); err != nil {
		return err
	}
	if _, err := c.w.Write(body); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	// authentication loop
	for {
		typ, msg, err := readTyped(c.r)
		if err != nil {
			return err
		}
		switch typ {
		case 'R':
			if len(msg) < 4 {
				return errf("short auth message")
			}
			switch binary.BigEndian.Uint32(msg) {
			case AuthOK:
				// continue to ready loop below
			case AuthCleartext:
				if err := c.sendPassword(password); err != nil {
					return err
				}
			case AuthMD5:
				if len(msg) < 8 {
					return errf("short MD5 auth message")
				}
				var salt [4]byte
				copy(salt[:], msg[4:8])
				if err := c.sendPassword(md5Password(user, password, salt)); err != nil {
					return err
				}
			default:
				return errf("unsupported auth method %d", binary.BigEndian.Uint32(msg))
			}
		case 'S', 'K', 'N':
			// parameter status / key data / notice: ignore
		case 'Z':
			return nil // ready
		case 'E':
			return parseServerError(msg)
		default:
			return errf("unexpected startup message %q", typ)
		}
	}
}

func (c *ClientConn) sendPassword(pw string) error {
	m := newMsg('p')
	m.cstr(pw)
	if err := m.writeTo(c.w); err != nil {
		return err
	}
	return c.w.Flush()
}

// Query runs one SQL statement via the simple query protocol and collects
// the full result (Hyper-Q must buffer the result set anyway before
// pivoting it to QIPC column format, paper §4.2). The context is the single
// source of truth for the query's deadline and cancellation: its deadline
// becomes the socket I/O deadline, and cancellation aborts in-flight I/O
// immediately. An abort surfaces as an *AbortError wrapping ctx.Err() — the
// connection is mid-protocol at that point and must be discarded.
func (c *ClientConn) Query(ctx context.Context, sql string) (*QueryResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	finish := c.armContext(ctx)
	res, err := c.query(sql)
	return res, finish(err)
}

// armContext maps ctx onto the socket for the duration of one query. The
// returned finish must be called exactly once with the query's error: it
// stops the cancellation watcher, clears the deadline, and attributes an
// I/O failure caused by the context to the context.
func (c *ClientConn) armContext(ctx context.Context) func(error) error {
	if d, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(d)
	}
	var stop, idle chan struct{}
	if done := ctx.Done(); done != nil {
		stop = make(chan struct{})
		idle = make(chan struct{})
		go func() {
			defer close(idle)
			select {
			case <-done:
				// force in-flight I/O to fail now; finish attributes the
				// failure to ctx.Err()
				c.conn.SetDeadline(time.Unix(1, 0))
			case <-stop:
			}
		}()
	}
	return func(err error) error {
		if stop != nil {
			close(stop)
			<-idle // the watcher must not re-arm after the clear below
		}
		c.conn.SetDeadline(time.Time{})
		if err == nil {
			return nil
		}
		var se *ServerError
		if cerr := ctx.Err(); cerr != nil && !errors.As(err, &se) {
			return &AbortError{Ctx: cerr, IO: err}
		}
		return err
	}
}

func (c *ClientConn) query(sql string) (*QueryResult, error) {
	m := newMsg('Q')
	m.cstr(sql)
	if err := m.writeTo(c.w); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	res := &QueryResult{}
	var qerr error
	for {
		typ, body, err := readTyped(c.r)
		if err != nil {
			return nil, err
		}
		switch typ {
		case 'T':
			cols, err := parseRowDescription(body)
			if err != nil {
				return nil, err
			}
			res.Cols = cols
		case 'D':
			row, err := parseDataRow(body)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		case 'C':
			tag, _, err := cutCString(body)
			if err != nil {
				return nil, err
			}
			res.Tag = tag
		case 'E':
			qerr = parseServerError(body)
		case 'N', 'S', 'K':
			// notices and parameter updates: ignore
		case 'Z':
			if qerr != nil {
				return nil, qerr
			}
			return res, nil
		default:
			return nil, errf("unexpected message %q during query", typ)
		}
	}
}

// Close sends Terminate and closes the socket.
func (c *ClientConn) Close() error {
	m := newMsg('X')
	m.writeTo(c.w)
	c.w.Flush()
	return c.conn.Close()
}

func parseRowDescription(b []byte) ([]ColDesc, error) {
	if len(b) < 2 {
		return nil, errf("short RowDescription")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	cols := make([]ColDesc, 0, n)
	for i := 0; i < n; i++ {
		name, rest, err := cutCString(b)
		if err != nil {
			return nil, err
		}
		if len(rest) < 18 {
			return nil, errf("short column descriptor")
		}
		oid := binary.BigEndian.Uint32(rest[6:10])
		cols = append(cols, ColDesc{Name: name, TypeOID: oid})
		b = rest[18:]
	}
	return cols, nil
}

func parseDataRow(b []byte) ([]Field, error) {
	if len(b) < 2 {
		return nil, errf("short DataRow")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	row := make([]Field, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, errf("short field length")
		}
		ln := int32(binary.BigEndian.Uint32(b))
		b = b[4:]
		if ln < 0 {
			row = append(row, Field{Null: true})
			continue
		}
		if int(ln) > len(b) {
			return nil, errf("field overruns message")
		}
		row = append(row, Field{Text: string(b[:ln])})
		b = b[ln:]
	}
	return row, nil
}

func parseServerError(b []byte) *ServerError {
	e := &ServerError{Severity: "ERROR", Code: "XX000"}
	for len(b) > 0 && b[0] != 0 {
		code := b[0]
		val, rest, err := cutCString(b[1:])
		if err != nil {
			break
		}
		switch code {
		case 'S':
			e.Severity = val
		case 'C':
			e.Code = val
		case 'M':
			e.Message = val
		}
		b = rest
	}
	return e
}
