package pgv3

import (
	"context"
	"net"
	"strings"
	"testing"
)

// echoServer accepts one connection and serves canned responses with the
// given auth method.
func echoServer(t *testing.T, l net.Listener, method AuthMethod, users map[string]string) {
	t.Helper()
	conn, err := l.Accept()
	if err != nil {
		return
	}
	sc := NewServerConn(conn)
	defer sc.Close()
	if err := sc.Startup(); err != nil {
		t.Errorf("startup: %v", err)
		return
	}
	verify := func(user, response string, salt [4]byte) bool {
		stored, ok := users[user]
		if !ok {
			return false
		}
		if method == AuthMethodMD5 {
			return response == MD5Response(user, stored, salt)
		}
		return response == stored
	}
	if err := sc.Authenticate(method, verify); err != nil {
		return
	}
	for {
		sql, err := sc.ReadQuery()
		if err != nil {
			return
		}
		if strings.Contains(sql, "boom") {
			sc.SendError(&ServerError{Severity: "ERROR", Code: "42P01", Message: "relation does not exist"})
			sc.SendReadyForQuery()
			sc.Flush()
			continue
		}
		sc.SendRowDescription([]ColDesc{
			{Name: "a", TypeOID: OidInt8},
			{Name: "b", TypeOID: OidVarchar},
		})
		sc.SendDataRow([]Field{{Text: "1"}, {Text: "x"}})
		sc.SendDataRow([]Field{{Text: "2"}, {Null: true}})
		sc.SendCommandComplete("SELECT 2")
		sc.SendReadyForQuery()
		sc.Flush()
	}
}

func startEcho(t *testing.T, method AuthMethod, users map[string]string) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			echoServer(t, l, method, users)
		}
	}()
	return l.Addr().String()
}

func TestTrustAuthAndSimpleQuery(t *testing.T) {
	addr := startEcho(t, AuthMethodTrust, nil)
	c, err := Connect(context.Background(), addr, "u", "", "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query(context.Background(), "SELECT a, b FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 || res.Cols[0].Name != "a" || res.Cols[0].TypeOID != OidInt8 {
		t.Fatalf("cols = %+v", res.Cols)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Text != "1" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if !res.Rows[1][1].Null {
		t.Fatal("null field lost")
	}
	if res.Tag != "SELECT 2" {
		t.Fatalf("tag = %q", res.Tag)
	}
}

func TestCleartextAuth(t *testing.T) {
	addr := startEcho(t, AuthMethodCleartext, map[string]string{"alice": "pw"})
	c, err := Connect(context.Background(), addr, "alice", "pw", "db")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := Connect(context.Background(), addr, "alice", "wrong", "db"); err == nil {
		t.Fatal("wrong password should be rejected")
	}
}

func TestMD5Auth(t *testing.T) {
	addr := startEcho(t, AuthMethodMD5, map[string]string{"bob": "hunter2"})
	c, err := Connect(context.Background(), addr, "bob", "hunter2", "db")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := Connect(context.Background(), addr, "bob", "nope", "db"); err == nil {
		t.Fatal("wrong MD5 password should be rejected")
	}
}

func TestServerErrorSurfaces(t *testing.T) {
	addr := startEcho(t, AuthMethodTrust, nil)
	c, err := Connect(context.Background(), addr, "u", "", "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query(context.Background(), "boom")
	se, ok := err.(*ServerError)
	if !ok || se.Code != "42P01" {
		t.Fatalf("err = %v", err)
	}
	// connection still usable after an error (ReadyForQuery resumed)
	if _, err := c.Query(context.Background(), "SELECT 1"); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestMD5ResponseFormat(t *testing.T) {
	// known-answer test: PostgreSQL md5 scheme
	got := MD5Response("user", "pass", [4]byte{1, 2, 3, 4})
	if !strings.HasPrefix(got, "md5") || len(got) != 35 {
		t.Fatalf("md5 response = %q", got)
	}
	// deterministic
	if got != MD5Response("user", "pass", [4]byte{1, 2, 3, 4}) {
		t.Fatal("md5 response not deterministic")
	}
	if got == MD5Response("user", "pass", [4]byte{9, 9, 9, 9}) {
		t.Fatal("salt ignored")
	}
}

func TestOIDRoundTrip(t *testing.T) {
	for _, typ := range []string{"boolean", "smallint", "integer", "bigint",
		"real", "double precision", "numeric", "date", "time", "timestamp", "varchar", "text"} {
		if got := TypeForOID(OIDForType(typ)); got != typ {
			t.Errorf("OID round trip %q -> %q", typ, got)
		}
	}
}
