// Package pgv3 implements the PostgreSQL version-3 wire protocol (paper
// §3.1, §4.2): typed messages framed as one type byte plus a four-byte
// length, the startup/authentication flow (cleartext and MD5 password), the
// simple-query cycle (Query → RowDescription → DataRow* → CommandComplete →
// ReadyForQuery), and error responses. Both the client half (used by the
// Gateway to reach the backend) and the server half (used by cmd/pgserver to
// expose the embedded engine) are provided.
package pgv3

import (
	"crypto/md5"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
)

// Protocol constants.
const (
	ProtocolVersion = 196608 // 3.0
	sslRequestCode  = 80877103
)

// Authentication subtypes carried in 'R' messages.
const (
	AuthOK        = 0
	AuthCleartext = 3
	AuthMD5       = 5
)

// Field is one result cell in text format; Null mirrors the wire's -1
// length marker.
type Field struct {
	Null bool
	Text string
}

// ColDesc describes one result column in a RowDescription.
type ColDesc struct {
	Name    string
	TypeOID uint32
}

// Error is a protocol-level error.
type Error struct {
	Msg string
}

func (e *Error) Error() string { return "pgv3: " + e.Msg }

func errf(format string, args ...any) *Error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// ServerError is an ErrorResponse received from (or to be sent by) a
// server, with the standard severity/code/message fields.
type ServerError struct {
	Severity string
	Code     string // SQLSTATE
	Message  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("%s %s: %s", e.Severity, e.Code, e.Message)
}

// AbortError reports a query aborted by its context: the context error
// (context.Canceled or context.DeadlineExceeded) is the cause, and the
// transport error is what the interrupted I/O surfaced. Both branches
// unwrap, so errors.Is(err, context.Canceled) sees the cause while net.Error
// classification still recognizes the connection as broken mid-protocol.
type AbortError struct {
	Ctx error
	IO  error
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("pgv3: query aborted: %v (transport: %v)", e.Ctx, e.IO)
}

// Unwrap exposes both the context cause and the transport error.
func (e *AbortError) Unwrap() []error { return []error{e.Ctx, e.IO} }

// OID constants for the SQL types the engine produces.
const (
	OidBool    = 16
	OidInt8    = 20
	OidInt2    = 21
	OidInt4    = 23
	OidText    = 25
	OidFloat4  = 700
	OidFloat8  = 701
	OidVarchar = 1043
	OidDate    = 1082
	OidTime    = 1083
	OidTS      = 1114
	OidNumeric = 1700
)

// OIDForType maps a normalized SQL type name to its wire OID.
func OIDForType(t string) uint32 {
	switch t {
	case "boolean", "bool":
		return OidBool
	case "smallint", "int2":
		return OidInt2
	case "integer", "int", "int4":
		return OidInt4
	case "bigint", "int8", "interval":
		return OidInt8
	case "real", "float4":
		return OidFloat4
	case "double precision", "float8":
		return OidFloat8
	case "numeric", "decimal":
		return OidNumeric
	case "date":
		return OidDate
	case "time":
		return OidTime
	case "timestamp", "timestamptz":
		return OidTS
	case "text":
		return OidText
	default:
		return OidVarchar
	}
}

// TypeForOID is the inverse of OIDForType.
func TypeForOID(oid uint32) string {
	switch oid {
	case OidBool:
		return "boolean"
	case OidInt2:
		return "smallint"
	case OidInt4:
		return "integer"
	case OidInt8:
		return "bigint"
	case OidFloat4:
		return "real"
	case OidFloat8:
		return "double precision"
	case OidNumeric:
		return "numeric"
	case OidDate:
		return "date"
	case OidTime:
		return "time"
	case OidTS:
		return "timestamp"
	case OidText:
		return "text"
	default:
		return "varchar"
	}
}

// msg is a low-level builder for typed protocol messages.
type msg struct {
	typ byte
	b   []byte
}

func newMsg(typ byte) *msg { return &msg{typ: typ} }

func (m *msg) byte1(v byte)  { m.b = append(m.b, v) }
func (m *msg) int16(v int16) { m.b = binary.BigEndian.AppendUint16(m.b, uint16(v)) }
func (m *msg) int32(v int32) { m.b = binary.BigEndian.AppendUint32(m.b, uint32(v)) }
func (m *msg) cstr(s string) { m.b = append(append(m.b, s...), 0) }
func (m *msg) bytes(p []byte) {
	m.b = append(m.b, p...)
}

func (m *msg) writeTo(w io.Writer) error {
	hdr := make([]byte, 0, 5)
	if m.typ != 0 {
		hdr = append(hdr, m.typ)
	}
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(m.b)+4))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(m.b)
	return err
}

// readTyped reads one typed message: (type byte, body).
func readTyped(r io.Reader) (byte, []byte, error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n < 4 || n > 1<<30 {
		return 0, nil, errf("implausible message length %d", n)
	}
	body := make([]byte, n-4)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return hdr[0], body, nil
}

// md5Password computes the PostgreSQL MD5 password response:
// "md5" + md5hex(md5hex(password + user) + salt).
func md5Password(user, password string, salt [4]byte) string {
	inner := md5.Sum([]byte(password + user))
	innerHex := hex.EncodeToString(inner[:])
	outer := md5.Sum(append([]byte(innerHex), salt[:]...))
	return "md5" + hex.EncodeToString(outer[:])
}

// cutCString splits the leading NUL-terminated string off b.
func cutCString(b []byte) (string, []byte, error) {
	for i, c := range b {
		if c == 0 {
			return string(b[:i]), b[i+1:], nil
		}
	}
	return "", nil, errf("unterminated string")
}

// MD5Response computes the expected MD5 password response for a stored
// plaintext credential — exported so servers can verify clients.
func MD5Response(user, password string, salt [4]byte) string {
	return md5Password(user, password, salt)
}
