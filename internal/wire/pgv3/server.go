package pgv3

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"io"
	"net"
)

// AuthMethod selects the server's authentication mechanism (paper §4.2: an
// authentication server supports clear text password, MD5 and Kerberos; we
// implement the first two).
type AuthMethod int

// Authentication methods.
const (
	AuthMethodTrust AuthMethod = iota
	AuthMethodCleartext
	AuthMethodMD5
)

// ServerConn is the server side of one PG v3 connection.
type ServerConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	// Params are the startup parameters the client sent (user, database).
	Params map[string]string
}

// NewServerConn wraps an accepted connection.
func NewServerConn(conn net.Conn) *ServerConn {
	return &ServerConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

// Startup reads the startup message (transparently refusing SSL requests)
// and stores the client parameters.
func (s *ServerConn) Startup() error {
	for {
		lenBuf := make([]byte, 4)
		if _, err := io.ReadFull(s.r, lenBuf); err != nil {
			return err
		}
		n := binary.BigEndian.Uint32(lenBuf)
		if n < 8 || n > 1<<20 {
			return errf("implausible startup length %d", n)
		}
		body := make([]byte, n-4)
		if _, err := io.ReadFull(s.r, body); err != nil {
			return err
		}
		code := binary.BigEndian.Uint32(body)
		if code == sslRequestCode {
			// refuse SSL, client retries in plaintext
			if _, err := s.conn.Write([]byte{'N'}); err != nil {
				return err
			}
			continue
		}
		if code != ProtocolVersion {
			return errf("unsupported protocol %d", code)
		}
		s.Params = map[string]string{}
		rest := body[4:]
		for len(rest) > 1 {
			var k, v string
			var err error
			k, rest, err = cutCString(rest)
			if err != nil {
				return err
			}
			if k == "" {
				break
			}
			v, rest, err = cutCString(rest)
			if err != nil {
				return err
			}
			s.Params[k] = v
		}
		return nil
	}
}

// Authenticate runs the configured password exchange. verify receives the
// user name and, for cleartext, the password; for MD5 it receives the md5
// response and the salt so the caller can check against its stored
// credential.
func (s *ServerConn) Authenticate(method AuthMethod, verify func(user, response string, salt [4]byte) bool) error {
	user := s.Params["user"]
	switch method {
	case AuthMethodTrust:
		// fall through to AuthOK
	case AuthMethodCleartext:
		m := newMsg('R')
		m.int32(AuthCleartext)
		if err := m.writeTo(s.w); err != nil {
			return err
		}
		if err := s.w.Flush(); err != nil {
			return err
		}
		resp, err := s.readPassword()
		if err != nil {
			return err
		}
		if verify == nil || !verify(user, resp, [4]byte{}) {
			s.SendError(&ServerError{Severity: "FATAL", Code: "28P01", Message: "password authentication failed for user \"" + user + "\""})
			s.w.Flush()
			return errf("authentication failed for %q", user)
		}
	case AuthMethodMD5:
		var salt [4]byte
		if _, err := rand.Read(salt[:]); err != nil {
			return err
		}
		m := newMsg('R')
		m.int32(AuthMD5)
		m.bytes(salt[:])
		if err := m.writeTo(s.w); err != nil {
			return err
		}
		if err := s.w.Flush(); err != nil {
			return err
		}
		resp, err := s.readPassword()
		if err != nil {
			return err
		}
		if verify == nil || !verify(user, resp, salt) {
			s.SendError(&ServerError{Severity: "FATAL", Code: "28P01", Message: "password authentication failed for user \"" + user + "\""})
			s.w.Flush()
			return errf("authentication failed for %q", user)
		}
	}
	ok := newMsg('R')
	ok.int32(AuthOK)
	if err := ok.writeTo(s.w); err != nil {
		return err
	}
	// minimal parameter status + ready
	ps := newMsg('S')
	ps.cstr("server_version")
	ps.cstr("9.2-hyperq")
	if err := ps.writeTo(s.w); err != nil {
		return err
	}
	if err := s.SendReadyForQuery(); err != nil {
		return err
	}
	return s.w.Flush()
}

func (s *ServerConn) readPassword() (string, error) {
	typ, body, err := readTyped(s.r)
	if err != nil {
		return "", err
	}
	if typ != 'p' {
		return "", errf("expected PasswordMessage, got %q", typ)
	}
	pw, _, err := cutCString(body)
	return pw, err
}

// ReadQuery reads the next Query ('Q') message, returning io.EOF after a
// Terminate ('X'). Other frontend messages are rejected with an error
// response.
func (s *ServerConn) ReadQuery() (string, error) {
	for {
		typ, body, err := readTyped(s.r)
		if err != nil {
			return "", err
		}
		switch typ {
		case 'Q':
			sql, _, err := cutCString(body)
			return sql, err
		case 'X':
			return "", io.EOF
		case 'H', 'S': // Flush / Sync: acknowledge with ready
			if err := s.SendReadyForQuery(); err != nil {
				return "", err
			}
			if err := s.w.Flush(); err != nil {
				return "", err
			}
		default:
			s.SendError(&ServerError{Severity: "ERROR", Code: "0A000", Message: "unsupported frontend message"})
			if err := s.SendReadyForQuery(); err != nil {
				return "", err
			}
			if err := s.w.Flush(); err != nil {
				return "", err
			}
		}
	}
}

// SendRowDescription announces the result schema ('T').
func (s *ServerConn) SendRowDescription(cols []ColDesc) error {
	m := newMsg('T')
	m.int16(int16(len(cols)))
	for _, c := range cols {
		m.cstr(c.Name)
		m.int32(0) // table OID
		m.int16(0) // attribute number
		m.int32(int32(c.TypeOID))
		m.int16(-1) // type size (variable)
		m.int32(-1) // type modifier
		m.int16(0)  // text format
	}
	return m.writeTo(s.w)
}

// SendDataRow streams one row ('D'); the paper contrasts this row-at-a-time
// streaming with QIPC's single column-oriented message (§4.2).
func (s *ServerConn) SendDataRow(fields []Field) error {
	m := newMsg('D')
	m.int16(int16(len(fields)))
	for _, f := range fields {
		if f.Null {
			m.int32(-1)
			continue
		}
		m.int32(int32(len(f.Text)))
		m.bytes([]byte(f.Text))
	}
	return m.writeTo(s.w)
}

// SendCommandComplete ends a statement's results ('C').
func (s *ServerConn) SendCommandComplete(tag string) error {
	m := newMsg('C')
	m.cstr(tag)
	return m.writeTo(s.w)
}

// SendError reports an error ('E').
func (s *ServerConn) SendError(e *ServerError) error {
	m := newMsg('E')
	m.byte1('S')
	m.cstr(e.Severity)
	m.byte1('C')
	m.cstr(e.Code)
	m.byte1('M')
	m.cstr(e.Message)
	m.byte1(0)
	return m.writeTo(s.w)
}

// SendReadyForQuery tells the client the server is idle ('Z').
func (s *ServerConn) SendReadyForQuery() error {
	m := newMsg('Z')
	m.byte1('I')
	return m.writeTo(s.w)
}

// Flush pushes buffered output to the socket.
func (s *ServerConn) Flush() error { return s.w.Flush() }

// Close closes the connection.
func (s *ServerConn) Close() error { return s.conn.Close() }
