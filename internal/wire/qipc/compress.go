package qipc

import "encoding/binary"

// Compress applies the kx IPC compression scheme to a complete framed
// message (header + payload). The format is an LZ variant: a control byte
// precedes each group of eight items, where an item is either a literal
// byte or a (hash, extra-length) back-reference into a 256-entry table of
// recent byte-pair positions. The compressed frame carries the uncompressed
// length at offset 8 and sets the compressed flag at header byte 2.
//
// It returns (compressed, true) when compression shrinks the message, and
// (nil, false) otherwise — kdb+ likewise sends incompressible messages raw.
func Compress(raw []byte) ([]byte, bool) {
	t := len(raw)
	// below ~64 bytes the 12-byte compressed header plus control bytes
	// cannot win; also guarantees the output buffer fits its own header
	if t < 64 {
		return nil, false
	}
	// worst case must stay under the original size to be worth sending
	y := make([]byte, t/2)
	copy(y, raw[:4])
	y[2] = 1                                // compressed flag
	binary.LittleEndian.PutUint32(y[4:], 0) // total length patched at the end
	binary.LittleEndian.PutUint32(y[8:], uint32(t))

	var table [256]int
	d := 12  // write cursor in y
	s := 8   // read cursor in raw
	p := 8   // pair-indexing cursor, mirrors the decompressor's
	f := 0   // position of the current control byte in y
	bit := 0 // current control bit (0 means "allocate a new control byte")
	for s < t {
		if bit == 0 {
			if d > len(y)-17 {
				return nil, false // incompressible
			}
			f = d
			y[f] = 0
			d++
			bit = 1
		}
		// try a back-reference: need at least 3 bytes left and a table hit
		match := false
		var h byte
		if s <= t-3 {
			h = raw[s] ^ raw[s+1]
			cand := table[h]
			// a hit is valid when the first byte matches (equal hash then
			// implies the second matches too) and the decompressor would
			// have the same entry (cand is a previously indexed position)
			if cand != 0 && raw[cand] == raw[s] {
				match = true
				// extend: two implicit bytes plus up to 255 more
				m := 0
				maxM := t - (s + 2)
				if maxM > 255 {
					maxM = 255
				}
				for m < maxM && raw[cand+2+m] == raw[s+2+m] {
					m++
				}
				y[f] |= byte(bit)
				y[d] = h
				y[d+1] = byte(m)
				d += 2
				// mirror the decompressor's bookkeeping: it copies the two
				// implicit bytes (s advances 2), indexes pairs up to s-1,
				// then skips the extra-run and resets the pair cursor
				s += 2
				for ; p < s-1; p++ {
					table[raw[p]^raw[p+1]] = p
				}
				s += m
				p = s
			}
		}
		if !match {
			y[d] = raw[s]
			d++
			s++
			for ; p < s-1; p++ {
				table[raw[p]^raw[p+1]] = p
			}
		}
		bit *= 2
		if bit == 256 {
			bit = 0
		}
	}
	binary.LittleEndian.PutUint32(y[4:], uint32(d))
	return y[:d], true
}

// Decompress expands a compressed framed message back to its raw form.
func Decompress(z []byte) ([]byte, error) {
	if len(z) < 12 {
		return nil, errf("compressed message too short")
	}
	total := binary.LittleEndian.Uint32(z[8:])
	if total < headerLen || total > 1<<30 {
		return nil, errf("implausible uncompressed length %d", total)
	}
	dst := make([]byte, total)
	copy(dst, z[:4])
	dst[2] = 0 // clear compressed flag
	binary.LittleEndian.PutUint32(dst[4:], total)

	var table [256]int
	d := 12
	s := 8
	p := 8
	f := 0
	bit := 0
	n := 0
	for s < int(total) {
		if bit == 0 {
			if d >= len(z) {
				return nil, errf("truncated compressed stream")
			}
			f = int(z[d])
			d++
			bit = 1
		}
		if f&bit != 0 {
			if d+1 >= len(z) {
				return nil, errf("truncated back-reference")
			}
			r := table[z[d]]
			d++
			if r+1 >= len(dst) || s+1 >= len(dst) {
				return nil, errf("corrupt back-reference")
			}
			dst[s] = dst[r]
			dst[s+1] = dst[r+1]
			s += 2
			n = int(z[d])
			d++
			for m := 0; m < n; m++ {
				if r+2+m >= len(dst) || s+m >= len(dst) {
					return nil, errf("corrupt run")
				}
				dst[s+m] = dst[r+2+m]
			}
		} else {
			if d >= len(z) || s >= len(dst) {
				return nil, errf("truncated literal")
			}
			dst[s] = z[d]
			s++
			d++
		}
		for ; p < s-1; p++ {
			table[dst[p]^dst[p+1]] = p
		}
		if f&bit != 0 {
			s += n
			p = s
		}
		bit *= 2
		if bit == 256 {
			bit = 0
		}
	}
	return dst, nil
}
