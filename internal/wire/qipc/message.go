package qipc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"sync"

	"hyperq/internal/qlang/qval"
)

// Message header layout (8 bytes):
//
//	byte 0: architecture (1 = little endian)
//	byte 1: message type (0 async, 1 sync, 2 response)
//	byte 2: compressed flag (1 = kx-compressed payload)
//	byte 3: reserved
//	bytes 4-7: total message length including header (little endian)
const headerLen = 8

// CompressThreshold is the payload size above which WriteMessage compresses,
// matching kdb+'s behaviour of compressing large inter-process messages.
const CompressThreshold = 2000

// Message is one decoded QIPC message.
type Message struct {
	Type  MsgType
	Value qval.Value
}

// msgBufPool recycles message frame buffers across WriteMessage calls.
// Buffers whose capacity exceeds maxPooledMsgBuf are dropped rather than
// pooled, so one huge result does not keep megabytes resident.
var msgBufPool = sync.Pool{New: func() any { return new([]byte) }}

const maxPooledMsgBuf = 1 << 20

// WriteMessage frames and writes one message. The frame buffer comes from a
// pool and is sized up front from the value's exact encoded length, so the
// value — typically a column-oriented result table — serializes straight
// into place with no growth reallocations and no header copy. Payloads above
// CompressThreshold are compressed when compression actually shrinks them.
func WriteMessage(w io.Writer, typ MsgType, v qval.Value) error {
	bp := msgBufPool.Get().(*[]byte)
	defer func() {
		if cap(*bp) <= maxPooledMsgBuf {
			msgBufPool.Put(bp)
		}
	}()
	raw := (*bp)[:0]
	if n, ok := encodedSize(v); ok && cap(raw) < headerLen+n {
		raw = make([]byte, 0, headerLen+n)
	}
	raw = append(raw, 1, byte(typ), 0, 0, 0, 0, 0, 0)
	raw, err := appendValue(raw, v)
	if err != nil {
		return err
	}
	*bp = raw
	binary.LittleEndian.PutUint32(raw[4:8], uint32(len(raw)))
	if len(raw) > CompressThreshold {
		if z, ok := Compress(raw); ok {
			_, err = w.Write(z)
			return err
		}
	}
	_, err = w.Write(raw)
	return err
}

// ReadMessage reads and decodes one message, decompressing when flagged.
func ReadMessage(r io.Reader) (*Message, error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if hdr[0] != 1 {
		return nil, errf("big-endian peers are not supported")
	}
	total := binary.LittleEndian.Uint32(hdr[4:])
	if total < headerLen || total > 1<<30 {
		return nil, errf("implausible message length %d", total)
	}
	buf := make([]byte, total)
	copy(buf, hdr)
	if _, err := io.ReadFull(r, buf[headerLen:]); err != nil {
		return nil, err
	}
	if hdr[2] == 1 {
		var err error
		buf, err = Decompress(buf)
		if err != nil {
			return nil, err
		}
	}
	v, _, err := DecodeValue(buf[headerLen:])
	if err != nil {
		return nil, err
	}
	return &Message{Type: MsgType(hdr[1]), Value: v}, nil
}

// Handshake credentials exchanged at connection open (paper §4.2): the
// client sends "username:password" + capability byte + NUL; the server
// accepts with a single capability byte or closes the connection.

// ClientHandshake performs the client side of the QIPC handshake.
func ClientHandshake(rw io.ReadWriter, user, password string) error {
	cred := user
	if password != "" {
		cred += ":" + password
	}
	msg := append([]byte(cred), 3, 0) // capability 3, NUL terminator
	if _, err := rw.Write(msg); err != nil {
		return err
	}
	reply := make([]byte, 1)
	if _, err := io.ReadFull(rw, reply); err != nil {
		return fmt.Errorf("qipc: handshake rejected: %w", err)
	}
	return nil
}

// Credentials are the parsed client handshake.
type Credentials struct {
	User       string
	Password   string
	Capability byte
}

// ServerHandshake reads the client's credential string from br and, when
// auth approves, replies on w with the capability byte. On rejection the
// caller should close the connection without replying — exactly kdb+'s
// behaviour (paper §4.2). The reader is taken explicitly so the caller can
// keep using the same buffered reader for subsequent messages.
func ServerHandshake(br *bufio.Reader, w io.Writer, auth func(user, password string) bool) (*Credentials, error) {
	raw, err := br.ReadBytes(0)
	if err != nil {
		return nil, err
	}
	raw = raw[:len(raw)-1] // strip NUL
	cap := byte(0)
	if len(raw) > 0 {
		last := raw[len(raw)-1]
		if last <= 6 { // capability byte range
			cap = last
			raw = raw[:len(raw)-1]
		}
	}
	cred := string(raw)
	user, pass := cred, ""
	if i := strings.IndexByte(cred, ':'); i >= 0 {
		user, pass = cred[:i], cred[i+1:]
	}
	if auth != nil && !auth(user, pass) {
		return nil, errf("authentication failed for %q", user)
	}
	reply := cap
	if reply > 3 {
		reply = 3 // we speak protocol capability 3
	}
	if _, err := w.Write([]byte{reply}); err != nil {
		return nil, err
	}
	return &Credentials{User: user, Password: pass, Capability: cap}, nil
}
