// Package qipc implements the kdb+ Inter Process Communication wire
// protocol (paper §3.1, §4.2): the handshake ("user:pass" + capability
// byte, single-byte reply), the 8-byte message header with async/sync/
// response types, the serialized Q object format — column-oriented, one
// message per result set, in contrast to PG v3's row streaming — and the kx
// LZ-style message compression.
package qipc

import (
	"encoding/binary"
	"fmt"
	"math"

	"hyperq/internal/qlang/qval"
)

// MsgType is the QIPC message type byte.
type MsgType byte

// Message types.
const (
	Async    MsgType = 0
	Sync     MsgType = 1
	Response MsgType = 2
)

func (m MsgType) String() string {
	switch m {
	case Async:
		return "async"
	case Sync:
		return "sync"
	case Response:
		return "response"
	default:
		return fmt.Sprintf("MsgType(%d)", byte(m))
	}
}

// Error is a QIPC encode/decode error.
type Error struct {
	Msg string
}

func (e *Error) Error() string { return "qipc: " + e.Msg }

func errf(format string, args ...any) *Error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// EncodeValue serializes a Q value in the kx object format (little endian).
func EncodeValue(v qval.Value) ([]byte, error) {
	var b []byte
	return appendValue(b, v)
}

func appendValue(b []byte, v qval.Value) ([]byte, error) {
	switch x := v.(type) {
	case qval.Bool:
		b = append(b, 0xff) // -1
		if x {
			return append(b, 1), nil
		}
		return append(b, 0), nil
	case qval.Byte:
		return append(b, byte(0x100-4), byte(x)), nil
	case qval.Short:
		b = append(b, byte(0x100-5))
		return binary.LittleEndian.AppendUint16(b, uint16(x)), nil
	case qval.Int:
		b = append(b, byte(0x100-6))
		return binary.LittleEndian.AppendUint32(b, uint32(x)), nil
	case qval.Long:
		b = append(b, byte(0x100-7))
		return binary.LittleEndian.AppendUint64(b, uint64(x)), nil
	case qval.Real:
		b = append(b, byte(0x100-8))
		return binary.LittleEndian.AppendUint32(b, math.Float32bits(float32(x))), nil
	case qval.Float:
		b = append(b, byte(0x100-9))
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(float64(x))), nil
	case qval.Char:
		return append(b, byte(0x100-10), byte(x)), nil
	case qval.Symbol:
		b = append(b, byte(0x100-11))
		b = append(b, x...)
		return append(b, 0), nil
	case qval.Temporal:
		return appendTemporalAtom(b, x)
	case qval.Datetime:
		b = append(b, byte(0x100-15))
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(float64(x))), nil
	case qval.BoolVec:
		b = appendVecHeader(b, 1, len(x))
		for _, e := range x {
			if e {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
		return b, nil
	case qval.ByteVec:
		b = appendVecHeader(b, 4, len(x))
		return append(b, x...), nil
	case qval.ShortVec:
		b = appendVecHeader(b, 5, len(x))
		for _, e := range x {
			b = binary.LittleEndian.AppendUint16(b, uint16(e))
		}
		return b, nil
	case qval.IntVec:
		b = appendVecHeader(b, 6, len(x))
		for _, e := range x {
			b = binary.LittleEndian.AppendUint32(b, uint32(e))
		}
		return b, nil
	case qval.LongVec:
		b = appendVecHeader(b, 7, len(x))
		for _, e := range x {
			b = binary.LittleEndian.AppendUint64(b, uint64(e))
		}
		return b, nil
	case qval.RealVec:
		b = appendVecHeader(b, 8, len(x))
		for _, e := range x {
			b = binary.LittleEndian.AppendUint32(b, math.Float32bits(e))
		}
		return b, nil
	case qval.FloatVec:
		b = appendVecHeader(b, 9, len(x))
		for _, e := range x {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e))
		}
		return b, nil
	case qval.CharVec:
		b = appendVecHeader(b, 10, len(x))
		return append(b, x...), nil
	case qval.SymbolVec:
		b = appendVecHeader(b, 11, len(x))
		for _, e := range x {
			b = append(b, e...)
			b = append(b, 0)
		}
		return b, nil
	case qval.TemporalVec:
		return appendTemporalVec(b, x)
	case qval.DatetimeVec:
		b = appendVecHeader(b, 15, len(x))
		for _, e := range x {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e))
		}
		return b, nil
	case qval.List:
		b = appendVecHeader(b, 0, len(x))
		var err error
		for _, e := range x {
			b, err = appendValue(b, e)
			if err != nil {
				return nil, err
			}
		}
		return b, nil
	case *qval.Table:
		// table: 0x62, attrs, then a dict of column symbols to column list
		b = append(b, 98, 0)
		return appendValue(b, &qval.Dict{Keys: qval.SymbolVec(x.Cols), Vals: qval.List(x.Data)})
	case *qval.Dict:
		b = append(b, 99)
		var err error
		b, err = appendValue(b, x.Keys)
		if err != nil {
			return nil, err
		}
		return appendValue(b, x.Vals)
	case *qval.Lambda:
		b = append(b, 100)
		b = append(b, 0) // empty context
		return appendValue(b, qval.CharVec(x.Source))
	case qval.Unary:
		return append(b, 101, byte(x)), nil
	case *qval.QError:
		b = append(b, 0x80)
		b = append(b, x.Msg...)
		return append(b, 0), nil
	default:
		return nil, errf("cannot encode %T", v)
	}
}

func appendVecHeader(b []byte, t int8, n int) []byte {
	b = append(b, byte(t), 0) // type, attributes
	return binary.LittleEndian.AppendUint32(b, uint32(n))
}

func appendTemporalAtom(b []byte, x qval.Temporal) ([]byte, error) {
	switch x.T {
	case qval.KTimestamp, qval.KTimespan:
		b = append(b, byte(int8(-x.T)))
		return binary.LittleEndian.AppendUint64(b, uint64(x.V)), nil
	case qval.KMonth, qval.KDate, qval.KMinute, qval.KSecond, qval.KTime:
		b = append(b, byte(int8(-x.T)))
		return binary.LittleEndian.AppendUint32(b, uint32(narrow32(x.V))), nil
	default:
		return nil, errf("bad temporal type %d", x.T)
	}
}

func appendTemporalVec(b []byte, x qval.TemporalVec) ([]byte, error) {
	b = appendVecHeader(b, int8(x.T), len(x.V))
	switch x.T {
	case qval.KTimestamp, qval.KTimespan:
		for _, e := range x.V {
			b = binary.LittleEndian.AppendUint64(b, uint64(e))
		}
	case qval.KMonth, qval.KDate, qval.KMinute, qval.KSecond, qval.KTime:
		for _, e := range x.V {
			b = binary.LittleEndian.AppendUint32(b, uint32(narrow32(e)))
		}
	default:
		return nil, errf("bad temporal vec type %d", x.T)
	}
	return b, nil
}

// narrow32 maps the 64-bit internal null to the 32-bit wire null.
func narrow32(v int64) int32 {
	if v == qval.NullLong {
		return math.MinInt32
	}
	return int32(v)
}

func widen32(v int32) int64 {
	if v == math.MinInt32 {
		return qval.NullLong
	}
	return int64(v)
}

// DecodeValue deserializes one Q object, returning the value and bytes
// consumed.
func DecodeValue(b []byte) (qval.Value, int, error) {
	d := &decoder{b: b}
	v, err := d.value()
	if err != nil {
		return nil, 0, err
	}
	return v, d.pos, nil
}

type decoder struct {
	b   []byte
	pos int
}

func (d *decoder) need(n int) error {
	if d.pos+n > len(d.b) {
		return errf("truncated message: need %d bytes at %d, have %d", n, d.pos, len(d.b))
	}
	return nil
}

func (d *decoder) u8() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.b[d.pos]
	d.pos++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(d.b[d.pos:])
	d.pos += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.b[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(d.b[d.pos:])
	d.pos += 8
	return v, nil
}

func (d *decoder) sym() (string, error) {
	start := d.pos
	for d.pos < len(d.b) && d.b[d.pos] != 0 {
		d.pos++
	}
	if d.pos >= len(d.b) {
		return "", errf("unterminated symbol")
	}
	s := string(d.b[start:d.pos])
	d.pos++ // NUL
	return s, nil
}

func (d *decoder) vecLen() (int, error) {
	if _, err := d.u8(); err != nil { // attributes
		return 0, err
	}
	n, err := d.u32()
	if err != nil {
		return 0, err
	}
	if int(n) < 0 || int(n) > len(d.b) {
		return 0, errf("implausible vector length %d", n)
	}
	return int(n), nil
}

func (d *decoder) value() (qval.Value, error) {
	tb, err := d.u8()
	if err != nil {
		return nil, err
	}
	t := int8(tb)
	switch t {
	case -1:
		v, err := d.u8()
		return qval.Bool(v != 0), err
	case -4:
		v, err := d.u8()
		return qval.Byte(v), err
	case -5:
		v, err := d.u16()
		return qval.Short(int16(v)), err
	case -6:
		v, err := d.u32()
		return qval.Int(int32(v)), err
	case -7:
		v, err := d.u64()
		return qval.Long(int64(v)), err
	case -8:
		v, err := d.u32()
		return qval.Real(math.Float32frombits(v)), err
	case -9:
		v, err := d.u64()
		return qval.Float(math.Float64frombits(v)), err
	case -10:
		v, err := d.u8()
		return qval.Char(v), err
	case -11:
		s, err := d.sym()
		return qval.Symbol(s), err
	case -12, -16:
		v, err := d.u64()
		return qval.Temporal{T: qval.Type(-t), V: int64(v)}, err
	case -13, -14, -17, -18, -19:
		v, err := d.u32()
		return qval.Temporal{T: qval.Type(-t), V: widen32(int32(v))}, err
	case -15:
		v, err := d.u64()
		return qval.Datetime(math.Float64frombits(v)), err
	case 0:
		n, err := d.vecLen()
		if err != nil {
			return nil, err
		}
		out := make(qval.List, n)
		for i := 0; i < n; i++ {
			out[i], err = d.value()
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	case 1:
		n, err := d.vecLen()
		if err != nil {
			return nil, err
		}
		if err := d.need(n); err != nil {
			return nil, err
		}
		out := make(qval.BoolVec, n)
		for i := range out {
			out[i] = d.b[d.pos+i] != 0
		}
		d.pos += n
		return out, nil
	case 4:
		n, err := d.vecLen()
		if err != nil {
			return nil, err
		}
		if err := d.need(n); err != nil {
			return nil, err
		}
		out := make(qval.ByteVec, n)
		copy(out, d.b[d.pos:])
		d.pos += n
		return out, nil
	case 5:
		n, err := d.vecLen()
		if err != nil {
			return nil, err
		}
		out := make(qval.ShortVec, n)
		for i := range out {
			v, err := d.u16()
			if err != nil {
				return nil, err
			}
			out[i] = int16(v)
		}
		return out, nil
	case 6:
		n, err := d.vecLen()
		if err != nil {
			return nil, err
		}
		out := make(qval.IntVec, n)
		for i := range out {
			v, err := d.u32()
			if err != nil {
				return nil, err
			}
			out[i] = int32(v)
		}
		return out, nil
	case 7:
		n, err := d.vecLen()
		if err != nil {
			return nil, err
		}
		out := make(qval.LongVec, n)
		for i := range out {
			v, err := d.u64()
			if err != nil {
				return nil, err
			}
			out[i] = int64(v)
		}
		return out, nil
	case 8:
		n, err := d.vecLen()
		if err != nil {
			return nil, err
		}
		out := make(qval.RealVec, n)
		for i := range out {
			v, err := d.u32()
			if err != nil {
				return nil, err
			}
			out[i] = math.Float32frombits(v)
		}
		return out, nil
	case 9:
		n, err := d.vecLen()
		if err != nil {
			return nil, err
		}
		out := make(qval.FloatVec, n)
		for i := range out {
			v, err := d.u64()
			if err != nil {
				return nil, err
			}
			out[i] = math.Float64frombits(v)
		}
		return out, nil
	case 10:
		n, err := d.vecLen()
		if err != nil {
			return nil, err
		}
		if err := d.need(n); err != nil {
			return nil, err
		}
		out := make(qval.CharVec, n)
		copy(out, d.b[d.pos:])
		d.pos += n
		return out, nil
	case 11:
		n, err := d.vecLen()
		if err != nil {
			return nil, err
		}
		out := make(qval.SymbolVec, n)
		for i := range out {
			s, err := d.sym()
			if err != nil {
				return nil, err
			}
			out[i] = s
		}
		return out, nil
	case 12, 16:
		n, err := d.vecLen()
		if err != nil {
			return nil, err
		}
		out := qval.TemporalVec{T: qval.Type(t), V: make([]int64, n)}
		for i := range out.V {
			v, err := d.u64()
			if err != nil {
				return nil, err
			}
			out.V[i] = int64(v)
		}
		return out, nil
	case 13, 14, 17, 18, 19:
		n, err := d.vecLen()
		if err != nil {
			return nil, err
		}
		out := qval.TemporalVec{T: qval.Type(t), V: make([]int64, n)}
		for i := range out.V {
			v, err := d.u32()
			if err != nil {
				return nil, err
			}
			out.V[i] = widen32(int32(v))
		}
		return out, nil
	case 15:
		n, err := d.vecLen()
		if err != nil {
			return nil, err
		}
		out := make(qval.DatetimeVec, n)
		for i := range out {
			v, err := d.u64()
			if err != nil {
				return nil, err
			}
			out[i] = math.Float64frombits(v)
		}
		return out, nil
	case 98:
		if _, err := d.u8(); err != nil { // attributes
			return nil, err
		}
		dv, err := d.value()
		if err != nil {
			return nil, err
		}
		dict, ok := dv.(*qval.Dict)
		if !ok {
			return nil, errf("table body is not a dict")
		}
		syms, ok := dict.Keys.(qval.SymbolVec)
		if !ok {
			return nil, errf("table columns are not symbols")
		}
		vals, ok := dict.Vals.(qval.List)
		if !ok {
			return nil, errf("table values are not a list")
		}
		if len(syms) != len(vals) {
			return nil, errf("table column mismatch")
		}
		data := make([]qval.Value, len(vals))
		copy(data, vals)
		return qval.NewTable(append([]string(nil), syms...), data), nil
	case 99:
		keys, err := d.value()
		if err != nil {
			return nil, err
		}
		vals, err := d.value()
		if err != nil {
			return nil, err
		}
		return &qval.Dict{Keys: keys, Vals: vals}, nil
	case 100:
		if _, err := d.sym(); err != nil { // context
			return nil, err
		}
		body, err := d.value()
		if err != nil {
			return nil, err
		}
		src, ok := body.(qval.CharVec)
		if !ok {
			return nil, errf("lambda body is not a char vector")
		}
		return &qval.Lambda{Source: string(src)}, nil
	case 101:
		v, err := d.u8()
		return qval.Unary(v), err
	case -128:
		msg, err := d.sym()
		if err != nil {
			return nil, err
		}
		return &qval.QError{Msg: msg}, nil
	default:
		return nil, errf("unsupported type code %d", t)
	}
}
