package qipc

import (
	"bytes"
	"math"
	"testing"

	"hyperq/internal/colbuf"
	"hyperq/internal/qlang/qval"
)

// TestEncodedSizeExact checks encodedSize against the actual encoder for
// every value shape WriteMessage presizes for.
func TestEncodedSizeExact(t *testing.T) {
	vals := []qval.Value{
		qval.Bool(true), qval.Byte(0xab), qval.Short(-3), qval.Int(42),
		qval.Long(1 << 40), qval.Real(1.5), qval.Float(3.14), qval.Char('q'),
		qval.Symbol("GOOG"), qval.Symbol(""),
		qval.MkDate(2016, 6, 26), qval.MkTime(9, 30, 0, 123),
		qval.MkTimestamp(2016, 6, 26, 9, 30, 0, 999),
		qval.MkMinute(14, 30), qval.MkSecond(1, 2, 3), qval.MkMonth(2016, 6),
		qval.Temporal{T: qval.KTimespan, V: 1}, qval.Datetime(123.5),
		qval.Identity,
		qval.BoolVec{true, false}, qval.ByteVec{1, 2, 3},
		qval.ShortVec{1, qval.NullShort}, qval.IntVec{1, -2},
		qval.LongVec{1, 2, qval.NullLong}, qval.RealVec{1.5},
		qval.FloatVec{1.5, math.NaN()}, qval.CharVec("hello"),
		qval.SymbolVec{"GOOG", "", "IBM"},
		qval.TemporalVec{T: qval.KTime, V: []int64{34200000, qval.NullLong}},
		qval.TemporalVec{T: qval.KTimestamp, V: []int64{1, 2, 3}},
		qval.DatetimeVec{1.5, 2.5},
		qval.List{qval.Long(1), qval.Symbol("x"), qval.CharVec("s")},
		qval.LongVec{}, qval.SymbolVec{}, qval.List{},
		qval.NewTable([]string{"s", "p"},
			[]qval.Value{qval.SymbolVec{"A", "B"}, qval.FloatVec{1, 2}}),
		qval.NewDict(qval.SymbolVec{"a", "b"}, qval.LongVec{1, 2}),
		&qval.Lambda{Source: "{[x] x+1}"},
		&qval.QError{Msg: "type"},
	}
	for _, v := range vals {
		want, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		got, ok := encodedSize(v)
		if !ok || got != len(want) {
			t.Errorf("encodedSize(%v) = %d, %v; want %d", v, got, ok, len(want))
		}
	}
}

// byteVecForTotal returns a highly compressible ByteVec whose framed message
// is exactly total bytes: header(8) + vec header(6) + n payload bytes.
func byteVecForTotal(total int) qval.ByteVec {
	return make(qval.ByteVec, total-headerLen-vecHeaderLen)
}

// TestCompressionThresholdBoundary pins the compression trigger: a framed
// message of exactly CompressThreshold bytes goes out raw, one byte more
// compresses (the payload here is all zeros, so compression always wins).
func TestCompressionThresholdBoundary(t *testing.T) {
	for _, tc := range []struct {
		total      int
		compressed bool
	}{
		{CompressThreshold - 1, false},
		{CompressThreshold, false},
		{CompressThreshold + 1, true},
		{4 * CompressThreshold, true},
	} {
		v := byteVecForTotal(tc.total)
		var buf bytes.Buffer
		if err := WriteMessage(&buf, Response, v); err != nil {
			t.Fatal(err)
		}
		wire := buf.Bytes()
		if got := wire[2] == 1; got != tc.compressed {
			t.Errorf("total %d: compressed = %v, want %v", tc.total, got, tc.compressed)
		}
		if !tc.compressed && len(wire) != tc.total {
			t.Errorf("total %d: raw frame is %d bytes", tc.total, len(wire))
		}
		if tc.compressed && len(wire) >= tc.total {
			t.Errorf("total %d: compression grew to %d", tc.total, len(wire))
		}
		msg, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("total %d: read back: %v", tc.total, err)
		}
		if !qval.EqualValues(msg.Value, v) {
			t.Errorf("total %d: round trip mismatch", tc.total)
		}
	}
}

// TestBuilderColumnsCompressRoundTrip drives the full result pipeline tail:
// columns come out of pooled colbuf builders (>2KB each), serialize through
// the presized pooled frame buffer, compress, and decode back byte-faithful.
func TestBuilderColumnsCompressRoundTrip(t *testing.T) {
	const rows = 1000 // long column alone is 8KB, well past the threshold
	specs := []colbuf.Spec{
		{Name: "qty", QType: qval.KLong},
		{Name: "px", QType: qval.KFloat},
		{Name: "sym", QType: qval.KSymbol},
	}
	b := colbuf.Get()
	defer b.Release()
	b.Reset(specs, rows)
	for i := 0; i < rows; i++ {
		if err := b.AppendInt(0, int64(i%100)); err != nil {
			t.Fatal(err)
		}
		if err := b.AppendFloat(1, float64(100+i%7)); err != nil {
			t.Fatal(err)
		}
		b.AppendSym(2, []string{"GOOG", "IBM", "MSFT"}[i%3])
		b.FinishRow()
	}
	names, data := b.Build()
	tbl := qval.NewTable(names, data)

	var buf bytes.Buffer
	if err := WriteMessage(&buf, Response, tbl); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[2] != 1 {
		t.Fatal("large builder-built table should compress")
	}
	msg, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !qval.EqualValues(msg.Value, tbl) {
		t.Fatal("compressed builder table round trip mismatch")
	}
}

// TestWriteMessagePooledBufferIsolation reuses the pooled frame buffer for
// messages of shrinking and growing sizes and in parallel, checking no frame
// leaks bytes from a previous occupant.
func TestWriteMessagePooledBufferIsolation(t *testing.T) {
	sizes := []int{3000, 10, 5000, 1}
	for _, n := range sizes {
		v := make(qval.LongVec, n)
		for i := range v {
			v[i] = int64(i)
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, Async, v); err != nil {
			t.Fatal(err)
		}
		msg, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Type != Async || !qval.EqualValues(msg.Value, v) {
			t.Fatalf("size %d: round trip mismatch", n)
		}
	}
	t.Run("parallel", func(t *testing.T) {
		for w := 0; w < 4; w++ {
			w := w
			t.Run("", func(t *testing.T) {
				t.Parallel()
				v := make(qval.FloatVec, 500+w*137)
				for i := range v {
					v[i] = float64(w*1000 + i)
				}
				for iter := 0; iter < 50; iter++ {
					var buf bytes.Buffer
					if err := WriteMessage(&buf, Response, v); err != nil {
						t.Fatal(err)
					}
					msg, err := ReadMessage(&buf)
					if err != nil {
						t.Fatal(err)
					}
					if !qval.EqualValues(msg.Value, v) {
						t.Fatal("parallel round trip mismatch")
					}
				}
			})
		}
	})
}
