package qipc

import "hyperq/internal/qlang/qval"

// encodedSize returns the exact number of bytes appendValue will emit for v,
// letting WriteMessage size its buffer up front — one allocation per message,
// no append growth while serializing wide result tables. The second return is
// false for values appendValue cannot encode.
func encodedSize(v qval.Value) (int, bool) {
	switch x := v.(type) {
	case qval.Bool, qval.Byte, qval.Char:
		return 2, true
	case qval.Short:
		return 3, true
	case qval.Int, qval.Real:
		return 5, true
	case qval.Long, qval.Float, qval.Datetime:
		return 9, true
	case qval.Symbol:
		return 2 + len(x), true
	case qval.Temporal:
		switch x.T {
		case qval.KTimestamp, qval.KTimespan:
			return 9, true
		case qval.KMonth, qval.KDate, qval.KMinute, qval.KSecond, qval.KTime:
			return 5, true
		}
		return 0, false
	case qval.BoolVec:
		return vecHeaderLen + len(x), true
	case qval.ByteVec:
		return vecHeaderLen + len(x), true
	case qval.ShortVec:
		return vecHeaderLen + 2*len(x), true
	case qval.IntVec:
		return vecHeaderLen + 4*len(x), true
	case qval.LongVec:
		return vecHeaderLen + 8*len(x), true
	case qval.RealVec:
		return vecHeaderLen + 4*len(x), true
	case qval.FloatVec:
		return vecHeaderLen + 8*len(x), true
	case qval.CharVec:
		return vecHeaderLen + len(x), true
	case qval.SymbolVec:
		n := vecHeaderLen
		for _, s := range x {
			n += len(s) + 1
		}
		return n, true
	case qval.TemporalVec:
		switch x.T {
		case qval.KTimestamp, qval.KTimespan:
			return vecHeaderLen + 8*len(x.V), true
		case qval.KMonth, qval.KDate, qval.KMinute, qval.KSecond, qval.KTime:
			return vecHeaderLen + 4*len(x.V), true
		}
		return 0, false
	case qval.DatetimeVec:
		return vecHeaderLen + 8*len(x), true
	case qval.List:
		n := vecHeaderLen
		for _, e := range x {
			m, ok := encodedSize(e)
			if !ok {
				return 0, false
			}
			n += m
		}
		return n, true
	case *qval.Table:
		// 0x62 + attrs, then the dict byte, column symbols and column list
		n := 2 + 1
		k, _ := encodedSize(qval.SymbolVec(x.Cols))
		d, ok := encodedSize(qval.List(x.Data))
		if !ok {
			return 0, false
		}
		return n + k + d, true
	case *qval.Dict:
		k, ok := encodedSize(x.Keys)
		if !ok {
			return 0, false
		}
		v, ok := encodedSize(x.Vals)
		if !ok {
			return 0, false
		}
		return 1 + k + v, true
	case *qval.Lambda:
		// type byte + empty context NUL + char vector body
		return 2 + vecHeaderLen + len(x.Source), true
	case qval.Unary:
		return 2, true
	case *qval.QError:
		return 1 + len(x.Msg) + 1, true
	default:
		return 0, false
	}
}

// vecHeaderLen is the vector prefix: type byte, attribute byte, u32 length.
const vecHeaderLen = 6
