package qipc

import (
	"bufio"
	"bytes"
	"math"
	"net"
	"testing"
	"testing/quick"

	"hyperq/internal/qlang/qval"
)

func roundTrip(t *testing.T, v qval.Value) qval.Value {
	t.Helper()
	b, err := EncodeValue(v)
	if err != nil {
		t.Fatalf("encode %v: %v", v, err)
	}
	out, n, err := DecodeValue(b)
	if err != nil {
		t.Fatalf("decode %v: %v", v, err)
	}
	if n != len(b) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(b))
	}
	return out
}

func TestAtomRoundTrips(t *testing.T) {
	atoms := []qval.Value{
		qval.Bool(true), qval.Bool(false),
		qval.Byte(0xab),
		qval.Short(-3), qval.Short(qval.NullShort),
		qval.Int(42), qval.Int(qval.NullInt),
		qval.Long(1 << 40), qval.Long(qval.NullLong),
		qval.Real(1.5),
		qval.Float(3.14159), qval.Float(math.Inf(1)),
		qval.Char('q'),
		qval.Symbol("GOOG"), qval.Symbol(""),
		qval.MkDate(2016, 6, 26),
		qval.MkTime(9, 30, 0, 123),
		qval.MkTimestamp(2016, 6, 26, 9, 30, 0, 999),
		qval.MkMinute(14, 30),
		qval.MkSecond(1, 2, 3),
		qval.MkMonth(2016, 6),
		qval.Temporal{T: qval.KTimespan, V: 86400*1e9 + 1},
		qval.Temporal{T: qval.KDate, V: qval.NullLong}, // 32-bit wire null
		qval.Datetime(123.5),
		qval.Identity,
	}
	for _, a := range atoms {
		got := roundTrip(t, a)
		if !qval.EqualValues(got, a) || got.Type() != a.Type() {
			t.Errorf("round trip %v (%s) = %v (%s)", a, qval.TypeName(a.Type()), got, qval.TypeName(got.Type()))
		}
	}
}

func TestVectorRoundTrips(t *testing.T) {
	vecs := []qval.Value{
		qval.BoolVec{true, false, true},
		qval.ByteVec{1, 2, 3},
		qval.ShortVec{1, qval.NullShort},
		qval.IntVec{1, -2, qval.NullInt},
		qval.LongVec{1, 2, qval.NullLong},
		qval.RealVec{1.5, 2.5},
		qval.FloatVec{1.5, math.NaN()},
		qval.CharVec("hello world"),
		qval.SymbolVec{"GOOG", "", "IBM"},
		qval.TemporalVec{T: qval.KTime, V: []int64{34200000, qval.NullLong}},
		qval.TemporalVec{T: qval.KTimestamp, V: []int64{1, 2, 3}},
		qval.DatetimeVec{1.5, 2.5},
		qval.List{qval.Long(1), qval.Symbol("x"), qval.CharVec("s")},
		qval.LongVec{}, qval.SymbolVec{}, qval.List{},
	}
	for _, v := range vecs {
		got := roundTrip(t, v)
		if got.Type() != v.Type() || got.Len() != v.Len() {
			t.Errorf("round trip %v: type/len changed: %v", v, got)
			continue
		}
		for i := 0; i < v.Len(); i++ {
			a, b := qval.Index(v, i), qval.Index(got, i)
			if !qval.EqualValues(a, b) && !(qval.IsNull(a) && qval.IsNull(b)) {
				t.Errorf("round trip %v[%d] = %v, want %v", v, i, b, a)
			}
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	tbl := qval.NewTable(
		[]string{"Symbol", "Time", "Price"},
		[]qval.Value{
			qval.SymbolVec{"GOOG", "IBM"},
			qval.TemporalVec{T: qval.KTime, V: []int64{34200000, 34201000}},
			qval.FloatVec{100.5, 150.25},
		})
	got := roundTrip(t, tbl).(*qval.Table)
	if !qval.EqualValues(got, tbl) {
		t.Fatalf("table round trip:\n%v\n%v", tbl, got)
	}
}

func TestDictAndKeyedTableRoundTrip(t *testing.T) {
	d := qval.NewDict(qval.SymbolVec{"a", "b"}, qval.LongVec{1, 2})
	got := roundTrip(t, d)
	if !qval.EqualValues(got, d) {
		t.Fatalf("dict round trip = %v", got)
	}
	kt, _ := qval.KeyTable([]string{"Symbol"}, qval.NewTable(
		[]string{"Symbol", "Price"},
		[]qval.Value{qval.SymbolVec{"A", "B"}, qval.FloatVec{1, 2}}))
	got = roundTrip(t, kt)
	if !qval.EqualValues(got, kt) {
		t.Fatalf("keyed table round trip = %v", got)
	}
}

func TestLambdaAndErrorRoundTrip(t *testing.T) {
	lam := &qval.Lambda{Source: "{[x] x+1}"}
	got := roundTrip(t, lam).(*qval.Lambda)
	if got.Source != lam.Source {
		t.Fatalf("lambda = %q", got.Source)
	}
	qe := &qval.QError{Msg: "type"}
	gotE := roundTrip(t, qe).(*qval.QError)
	if gotE.Msg != "type" {
		t.Fatalf("error = %q", gotE.Msg)
	}
}

func TestMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	v := qval.CharVec("select from trades")
	if err := WriteMessage(&buf, Sync, v); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != Sync {
		t.Fatalf("type = %v", msg.Type)
	}
	if !qval.EqualValues(msg.Value, v) {
		t.Fatalf("value = %v", msg.Value)
	}
}

func TestLargeMessageCompressionRoundTrip(t *testing.T) {
	// large repetitive table compresses and round-trips
	n := 10000
	syms := make(qval.SymbolVec, n)
	prices := make(qval.FloatVec, n)
	for i := range syms {
		syms[i] = []string{"GOOG", "IBM", "MSFT"}[i%3]
		prices[i] = float64(100 + i%7)
	}
	tbl := qval.NewTable([]string{"Symbol", "Price"}, []qval.Value{syms, prices})
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Response, tbl); err != nil {
		t.Fatal(err)
	}
	raw, _ := EncodeValue(tbl)
	if buf.Len() >= len(raw)+8 {
		t.Fatalf("message was not compressed: %d vs %d", buf.Len(), len(raw)+8)
	}
	msg, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !qval.EqualValues(msg.Value, tbl) {
		t.Fatal("compressed round trip mismatch")
	}
}

func TestCompressDecompressRaw(t *testing.T) {
	raw := make([]byte, 5000)
	raw[0] = 1
	for i := 8; i < len(raw); i++ {
		raw[i] = byte(i % 17)
	}
	// patch length
	raw[4] = byte(len(raw))
	raw[5] = byte(len(raw) >> 8)
	z, ok := Compress(raw)
	if !ok {
		t.Fatal("repetitive buffer should compress")
	}
	if len(z) >= len(raw) {
		t.Fatalf("compression grew: %d vs %d", len(z), len(raw))
	}
	back, err := Decompress(z)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, raw) {
		t.Fatal("decompress(compress(x)) != x")
	}
}

func TestPropCompressionRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		raw := make([]byte, 8+len(payload))
		raw[0] = 1
		total := uint32(len(raw))
		raw[4] = byte(total)
		raw[5] = byte(total >> 8)
		raw[6] = byte(total >> 16)
		copy(raw[8:], payload)
		z, ok := Compress(raw)
		if !ok {
			return true // incompressible: sent raw, nothing to verify
		}
		back, err := Decompress(z)
		return err == nil && bytes.Equal(back, raw)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropValueRoundTrip(t *testing.T) {
	f := func(longs []int64, syms []string, floats []float64) bool {
		vals := qval.List{qval.LongVec(longs), qval.SymbolVec(cleanSyms(syms)), qval.FloatVec(floats)}
		b, err := EncodeValue(vals)
		if err != nil {
			return false
		}
		out, n, err := DecodeValue(b)
		if err != nil || n != len(b) {
			return false
		}
		got := out.(qval.List)
		for i := range vals {
			if got[i].Len() != vals[i].Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// cleanSyms strips NUL bytes, which cannot appear in interned symbols.
func cleanSyms(in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		b := []byte(s)
		var c []byte
		for _, x := range b {
			if x != 0 {
				c = append(c, x)
			}
		}
		out[i] = string(c)
	}
	return out
}

func TestHandshake(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	done := make(chan error, 1)
	go func() {
		br := bufio.NewReader(server)
		creds, err := ServerHandshake(br, server, func(u, p string) bool {
			return u == "trader" && p == "secret"
		})
		if err == nil && creds.User != "trader" {
			err = errf("wrong user %q", creds.User)
		}
		done <- err
	}()
	if err := ClientHandshake(client, "trader", "secret"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestHandshakeRejection(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	go func() {
		br := bufio.NewReader(server)
		_, err := ServerHandshake(br, server, func(u, p string) bool { return false })
		if err == nil {
			t.Error("auth should fail")
		}
		server.Close() // kdb+ closes without replying
	}()
	if err := ClientHandshake(client, "intruder", "nope"); err == nil {
		t.Fatal("client should see rejection")
	}
}

func TestDecodeCorruptInput(t *testing.T) {
	for _, b := range [][]byte{
		{}, {0x07}, {0x0b, 0, 0xff, 0xff, 0xff, 0x7f}, {0x63},
	} {
		if _, _, err := DecodeValue(b); err == nil {
			t.Errorf("DecodeValue(%x) should fail", b)
		}
	}
}
