package pgdb

import (
	"strings"
	"testing"
)

func TestWindowRankAndDenseRank(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (g varchar, v bigint)")
	mustExec(t, s, "INSERT INTO t VALUES ('a',1),('a',1),('a',2),('b',5)")
	res := mustExec(t, s, "SELECT g, v, RANK() OVER (PARTITION BY g ORDER BY v) r, DENSE_RANK() OVER (PARTITION BY g ORDER BY v) d FROM t ORDER BY g, v")
	// a: v=1 r=1 d=1; v=1 r=1 d=1; v=2 r=3 d=2
	if res.Rows[0][2].(int64) != 1 || res.Rows[1][2].(int64) != 1 || res.Rows[2][2].(int64) != 3 {
		t.Fatalf("rank = %v", res.Rows)
	}
	if res.Rows[2][3].(int64) != 2 {
		t.Fatalf("dense_rank = %v", res.Rows[2])
	}
}

func TestWindowLeadAndFirstValue(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (i bigint, v bigint)")
	mustExec(t, s, "INSERT INTO t VALUES (1,10),(2,20),(3,30)")
	res := mustExec(t, s, "SELECT i, LEAD(v) OVER (ORDER BY i), FIRST_VALUE(v) OVER (ORDER BY i) FROM t ORDER BY i")
	if res.Rows[0][1].(int64) != 20 || res.Rows[2][1] != nil {
		t.Fatalf("lead = %v", res.Rows)
	}
	if res.Rows[2][2].(int64) != 10 {
		t.Fatalf("first_value = %v", res.Rows[2])
	}
}

func TestCaseWithOperand(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (x bigint)")
	mustExec(t, s, "INSERT INTO t VALUES (1),(2),(3)")
	res := mustExec(t, s, "SELECT CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' ELSE 'many' END FROM t ORDER BY x")
	if res.Rows[0][0].(string) != "one" || res.Rows[2][0].(string) != "many" {
		t.Fatalf("case operand = %v", res.Rows)
	}
}

func TestRightAndFullJoin(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE a (k bigint)")
	mustExec(t, s, "CREATE TABLE b (k bigint)")
	mustExec(t, s, "INSERT INTO a VALUES (1),(2)")
	mustExec(t, s, "INSERT INTO b VALUES (2),(3)")
	res := mustExec(t, s, "SELECT a.k, b.k FROM a RIGHT JOIN b ON a.k = b.k")
	if len(res.Rows) != 2 {
		t.Fatalf("right join rows = %d", len(res.Rows))
	}
	foundPadded := false
	for _, r := range res.Rows {
		if r[0] == nil && r[1].(int64) == 3 {
			foundPadded = true
		}
	}
	if !foundPadded {
		t.Fatal("right join should pad unmatched right rows")
	}
	res = mustExec(t, s, "SELECT a.k, b.k FROM a FULL JOIN b ON a.k = b.k")
	if len(res.Rows) != 3 {
		t.Fatalf("full join rows = %d", len(res.Rows))
	}
}

func TestGreatestLeastNullif(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (a bigint, b bigint)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 5)")
	res := mustExec(t, s, "SELECT GREATEST(a, b), LEAST(a, b), NULLIF(a, 1), NULLIF(a, 2) FROM t")
	r := res.Rows[0]
	if r[0].(int64) != 5 || r[1].(int64) != 1 || r[2] != nil || r[3].(int64) != 1 {
		t.Fatalf("row = %v", r)
	}
}

func TestStringFunctions(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (s varchar)")
	mustExec(t, s, "INSERT INTO t VALUES ('  Hello ')")
	res := mustExec(t, s, "SELECT UPPER(s), LOWER(s), TRIM(s), LENGTH(s), SUBSTRING(s, 3, 5) FROM t")
	r := res.Rows[0]
	if r[0].(string) != "  HELLO " || r[2].(string) != "Hello" {
		t.Fatalf("strings = %v", r)
	}
	if r[3].(int64) != 8 || r[4].(string) != "Hello" {
		t.Fatalf("length/substr = %v", r)
	}
}

func TestStddevVariance(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (x double precision)")
	mustExec(t, s, "INSERT INTO t VALUES (2),(4),(4),(4),(5),(5),(7),(9)")
	res := mustExec(t, s, "SELECT STDDEV_POP(x), VAR_POP(x) FROM t")
	if got := res.Rows[0][0].(float64); got < 1.99 || got > 2.01 {
		t.Fatalf("stddev_pop = %v", got)
	}
	if got := res.Rows[0][1].(float64); got < 3.99 || got > 4.01 {
		t.Fatalf("var_pop = %v", got)
	}
}

func TestCountDistinct(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (x bigint)")
	mustExec(t, s, "INSERT INTO t VALUES (1),(1),(2),(NULL)")
	res := mustExec(t, s, "SELECT COUNT(DISTINCT x) FROM t")
	if res.Rows[0][0].(int64) != 2 {
		t.Fatalf("count distinct = %v", res.Rows[0][0])
	}
}

func TestFirstLastToolboxAggregates(t *testing.T) {
	// the Hyper-Q toolbox extensions are positional and do not skip NULLs
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (g varchar, v bigint)")
	mustExec(t, s, "INSERT INTO t VALUES ('a', NULL),('a',2),('b',3)")
	res := mustExec(t, s, "SELECT g, FIRST(v), LAST(v) FROM t GROUP BY g ORDER BY g")
	if res.Rows[0][1] != nil { // first 'a' value is NULL
		t.Fatalf("first = %v", res.Rows[0][1])
	}
	if res.Rows[0][2].(int64) != 2 || res.Rows[1][2].(int64) != 3 {
		t.Fatalf("last = %v", res.Rows)
	}
}

func TestMedianToolboxAggregate(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (v bigint)")
	mustExec(t, s, "INSERT INTO t VALUES (1),(3),(2),(10)")
	res := mustExec(t, s, "SELECT MEDIAN(v) FROM t")
	if res.Rows[0][0].(float64) != 2.5 {
		t.Fatalf("median = %v", res.Rows[0][0])
	}
}

func TestInsertSelect(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE src (x bigint)")
	mustExec(t, s, "CREATE TABLE dst (x bigint)")
	mustExec(t, s, "INSERT INTO src VALUES (1),(2),(3)")
	res := mustExec(t, s, "INSERT INTO dst SELECT x FROM src WHERE x > 1")
	if res.Tag != "INSERT 0 2" {
		t.Fatalf("tag = %q", res.Tag)
	}
}

func TestAsOfFusedPathMatchesNaive(t *testing.T) {
	// the rank-filter pushdown must be semantically invisible: compare its
	// output against the generic plan (window over the full join) by
	// perturbing the pattern so the fast path does not fire
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE l (ordcol bigint, sym varchar, t bigint)`)
	mustExec(t, s, `CREATE TABLE r (sym varchar, t bigint, v bigint)`)
	mustExec(t, s, `INSERT INTO l VALUES (0,'a',10),(1,'a',20),(2,'b',15),(3,'c',5)`)
	mustExec(t, s, `INSERT INTO r VALUES ('a',5,100),('a',15,101),('b',15,200),('b',16,201),('c',9,300)`)
	fused := `SELECT sym, t, v FROM (
		SELECT a.ordcol, a.sym, a.t, b.v,
		       ROW_NUMBER() OVER (PARTITION BY a.ordcol ORDER BY b.t DESC) AS hq_rn
		FROM (SELECT ordcol, sym, t FROM l) a
		LEFT JOIN (SELECT sym, t, v FROM r) b
		  ON a.sym IS NOT DISTINCT FROM b.sym AND b.t <= a.t
	) x WHERE hq_rn = 1 ORDER BY ordcol`
	// same query with rn = 1 spelled as 1 = rn... would not match the
	// pattern; instead force the naive path via an extra filter level
	naive := `SELECT sym, t, v FROM (
		SELECT * FROM (
			SELECT a.ordcol, a.sym, a.t, b.v,
			       ROW_NUMBER() OVER (PARTITION BY a.ordcol ORDER BY b.t DESC) AS hq_rn
			FROM (SELECT ordcol, sym, t FROM l) a
			LEFT JOIN (SELECT sym, t, v FROM r) b
			  ON a.sym IS NOT DISTINCT FROM b.sym AND b.t <= a.t
		) y WHERE hq_rn >= 1
	) x WHERE hq_rn = 1 ORDER BY ordcol`
	rf := mustExec(t, s, fused)
	rn := mustExec(t, s, naive)
	if len(rf.Rows) != len(rn.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(rf.Rows), len(rn.Rows))
	}
	for i := range rf.Rows {
		a := keyString(rf.Rows[i])
		b := keyString(rn.Rows[i])
		if a != b {
			t.Fatalf("row %d differs: %v vs %v", i, rf.Rows[i], rn.Rows[i])
		}
	}
	// expected values: l@10->r@5(100), l@20->r@15(101), b@15->r@15(200), c@5->none
	if rf.Rows[3][2] != nil {
		t.Fatalf("unmatched row should be NULL: %v", rf.Rows[3])
	}
	if rf.Rows[1][2].(int64) != 101 || rf.Rows[2][2].(int64) != 200 {
		t.Fatalf("fused values = %v", rf.Rows)
	}
}

func TestViewsRecursionDepthSafe(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE base (x bigint)")
	mustExec(t, s, "INSERT INTO base VALUES (1)")
	mustExec(t, s, "CREATE VIEW v1 AS SELECT x FROM base")
	mustExec(t, s, "CREATE VIEW v2 AS SELECT x FROM v1")
	res := mustExec(t, s, "SELECT x FROM v2")
	if len(res.Rows) != 1 {
		t.Fatalf("stacked views = %v", res.Rows)
	}
}

func TestBooleanColumnRendering(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (b boolean)")
	mustExec(t, s, "INSERT INTO t VALUES (TRUE),(FALSE),(NULL)")
	res := mustExec(t, s, "SELECT b FROM t WHERE b")
	if len(res.Rows) != 1 {
		t.Fatalf("where b = %v", res.Rows)
	}
	if got := FormatValue(true, "boolean"); got != "t" {
		t.Fatalf("bool format = %q", got)
	}
}

func TestConcurrentSessions(t *testing.T) {
	db := NewDB()
	s0 := db.NewSession()
	mustExec(t, s0, "CREATE TABLE shared (x bigint)")
	mustExec(t, s0, "INSERT INTO shared VALUES (1)")
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			s := db.NewSession()
			defer s.Close()
			for j := 0; j < 25; j++ {
				if _, err := s.Exec("SELECT COUNT(*) FROM shared"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestHavingWithoutGroupBy(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (x bigint)")
	mustExec(t, s, "INSERT INTO t VALUES (1),(2)")
	res := mustExec(t, s, "SELECT SUM(x) FROM t HAVING SUM(x) > 10")
	if len(res.Rows) != 0 {
		t.Fatalf("having should filter the global group: %v", res.Rows)
	}
}

func TestErrorMessagesAreInformative(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	_, err := s.Exec("SELECT x FROM nope")
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error should name the relation: %v", err)
	}
}
