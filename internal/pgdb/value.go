// Package pgdb implements an embedded PostgreSQL-dialect analytical database
// that stands in for Greenplum/PostgreSQL in this reproduction (paper §6 ran
// against Greenplum). It provides the pieces Hyper-Q relies on: a catalog
// with information_schema metadata queries (used by the binder's MDI,
// §3.2.3), SQL execution with three-valued logic and IS NOT DISTINCT FROM
// (§3.3), temporary tables and views for eager materialization (§4.3),
// window functions for implicit-order generation, and a PG v3 wire front
// end (package pgv3 plus cmd/pgserver).
//
// Values are represented as Go any: nil (SQL NULL), bool, int64, float64 and
// string. Temporal columns store int64 magnitudes in kdb-compatible units
// (days since 2000-01-01 for date, milliseconds since midnight for time,
// nanoseconds since 2000-01-01 for timestamp) and format to standard
// PostgreSQL text forms on the wire.
package pgdb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Column describes one table column.
type Column struct {
	Name string
	Type string // normalized lowercase type name
}

// Result is the outcome of executing one statement.
type Result struct {
	Cols []Column
	Rows [][]any
	Tag  string // command tag, e.g. "SELECT 5"
	// store is set when Rows is the row view of a base table's columnar
	// storage, letting the vectorized executor scan the typed vectors
	// instead of the boxed rows. lazy marks a vectorized base-table scan
	// whose Rows is deliberately nil: consumers that need boxed rows
	// materialize through relation.rowsView, so scans the planner fully
	// prunes never touch evicted segments.
	store *colStore
	lazy  bool
}

// Error is an execution error, carrying a PostgreSQL-style SQLSTATE code.
type Error struct {
	Code string
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("ERROR %s: %s", e.Code, e.Msg) }

func errf(code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

var pgEpoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// IsNumericType reports whether a column type is numeric.
func IsNumericType(t string) bool {
	switch t {
	case "smallint", "integer", "int", "int2", "int4", "int8", "bigint",
		"real", "float4", "float8", "double precision", "numeric", "decimal":
		return true
	}
	return false
}

// IsTemporalType reports whether a column type is date/time-like.
func IsTemporalType(t string) bool {
	switch t {
	case "date", "time", "timestamp", "timestamptz", "interval":
		return true
	}
	return false
}

// FormatValue renders a value as PostgreSQL text output for the given
// column type. NULL renders as an empty string at the protocol layer (the
// DataRow encoding distinguishes it by length -1).
func FormatValue(v any, typ string) string {
	if v == nil {
		return ""
	}
	switch x := v.(type) {
	case bool:
		if x {
			return "t"
		}
		return "f"
	case int64:
		switch typ {
		case "date":
			return pgEpoch.AddDate(0, 0, int(x)).Format("2006-01-02")
		case "time":
			ms := x
			return fmt.Sprintf("%02d:%02d:%02d.%03d", ms/3600000, ms/60000%60, ms/1000%60, ms%1000)
		case "timestamp", "timestamptz":
			t := pgEpoch.Add(time.Duration(x))
			return t.Format("2006-01-02 15:04:05.999999999")
		case "interval":
			return fmt.Sprintf("%d ns", x)
		default:
			return strconv.FormatInt(x, 10)
		}
	case float64:
		if math.IsNaN(x) {
			return "NaN"
		}
		// PostgreSQL spells infinities "Infinity"/"-Infinity"; Go's
		// FormatFloat would emit "+Inf"/"-Inf"
		if math.IsInf(x, 1) {
			return "Infinity"
		}
		if math.IsInf(x, -1) {
			return "-Infinity"
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}

// AppendValue appends FormatValue's rendering of v to dst, for callers that
// reuse a scratch buffer instead of allocating a string per cell.
func AppendValue(dst []byte, v any, typ string) []byte {
	if v == nil {
		return dst
	}
	switch x := v.(type) {
	case bool:
		if x {
			return append(dst, 't')
		}
		return append(dst, 'f')
	case int64:
		switch typ {
		case "date":
			return pgEpoch.AddDate(0, 0, int(x)).AppendFormat(dst, "2006-01-02")
		case "time":
			return appendTimeOfDay(dst, x)
		case "timestamp", "timestamptz":
			return pgEpoch.Add(time.Duration(x)).AppendFormat(dst, "2006-01-02 15:04:05.999999999")
		case "interval":
			dst = strconv.AppendInt(dst, x, 10)
			return append(dst, " ns"...)
		default:
			return strconv.AppendInt(dst, x, 10)
		}
	case float64:
		switch {
		case math.IsNaN(x):
			return append(dst, "NaN"...)
		case math.IsInf(x, 1):
			return append(dst, "Infinity"...)
		case math.IsInf(x, -1):
			return append(dst, "-Infinity"...)
		}
		return strconv.AppendFloat(dst, x, 'g', -1, 64)
	case string:
		return append(dst, x...)
	default:
		return fmt.Appendf(dst, "%v", x)
	}
}

// appendTimeOfDay renders ms-since-midnight as "%02d:%02d:%02d.%03d",
// byte-identical to FormatValue's fmt.Sprintf for the values the engine
// produces.
func appendTimeOfDay(dst []byte, ms int64) []byte {
	pad2 := func(dst []byte, v int64) []byte {
		if v >= 0 && v < 10 {
			dst = append(dst, '0')
		}
		return strconv.AppendInt(dst, v, 10)
	}
	dst = pad2(dst, ms/3600000)
	dst = append(dst, ':')
	dst = pad2(dst, ms/60000%60)
	dst = append(dst, ':')
	dst = pad2(dst, ms/1000%60)
	dst = append(dst, '.')
	// "%03d": zero-pad to total width 3, the sign counting toward the width
	v := ms % 1000
	if v < 0 {
		dst = append(dst, '-')
		v = -v
		if v < 10 {
			dst = append(dst, '0')
		}
	} else {
		if v < 100 {
			dst = append(dst, '0')
		}
		if v < 10 {
			dst = append(dst, '0')
		}
	}
	return strconv.AppendInt(dst, v, 10)
}

// ParseValue converts PostgreSQL text input into an engine value for the
// given column type.
func ParseValue(s string, typ string) (any, error) {
	switch {
	case typ == "boolean" || typ == "bool":
		switch strings.ToLower(s) {
		case "t", "true", "1":
			return true, nil
		case "f", "false", "0":
			return false, nil
		}
		return nil, errf("22P02", "invalid boolean %q", s)
	case IsNumericType(typ):
		if strings.ContainsAny(s, ".eE") || typ == "real" || typ == "float4" ||
			typ == "float8" || typ == "double precision" || typ == "numeric" || typ == "decimal" {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, errf("22P02", "invalid number %q", s)
			}
			return f, nil
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, errf("22P02", "invalid integer %q", s)
		}
		return n, nil
	case typ == "date":
		t, err := time.Parse("2006-01-02", s)
		if err != nil {
			return nil, errf("22007", "invalid date %q", s)
		}
		return int64(t.Sub(pgEpoch) / (24 * time.Hour)), nil
	case typ == "time":
		var h, m, sec, ms int
		if n, _ := fmt.Sscanf(s, "%d:%d:%d.%d", &h, &m, &sec, &ms); n < 3 {
			if n, _ := fmt.Sscanf(s, "%d:%d:%d", &h, &m, &sec); n < 2 {
				return nil, errf("22007", "invalid time %q", s)
			}
		}
		return int64(h)*3600000 + int64(m)*60000 + int64(sec)*1000 + int64(ms), nil
	case typ == "timestamp" || typ == "timestamptz":
		for _, layout := range []string{"2006-01-02 15:04:05.999999999", "2006-01-02T15:04:05.999999999", "2006-01-02"} {
			if t, err := time.Parse(layout, s); err == nil {
				return t.Sub(pgEpoch).Nanoseconds(), nil
			}
		}
		return nil, errf("22007", "invalid timestamp %q", s)
	default:
		return s, nil
	}
}

// compareVals orders two non-null engine values: -1, 0, 1. Numeric values
// compare by magnitude across int64/float64; strings lexically; bools
// false<true.
func compareVals(a, b any) int {
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if aok && bok {
		// PostgreSQL treats NaN as equal to itself and greater than every
		// other value; bare float comparison would call them all equal
		an, bn := math.IsNaN(af), math.IsNaN(bf)
		switch {
		case an && bn:
			return 0
		case an:
			return 1
		case bn:
			return -1
		}
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		return strings.Compare(as, bs)
	}
	ab, aok := a.(bool)
	bb, bok := b.(bool)
	if aok && bok {
		switch {
		case !ab && bb:
			return -1
		case ab && !bb:
			return 1
		default:
			return 0
		}
	}
	// mixed incomparable types: order by type name for stability
	return strings.Compare(fmt.Sprintf("%T", a), fmt.Sprintf("%T", b))
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// equalVals is SQL equality on two non-null values (three-valued logic is
// applied by the caller, which handles nulls before calling).
func equalVals(a, b any) bool { return compareVals(a, b) == 0 }

// keyString builds a hashable grouping key from values; nulls group
// together, as PostgreSQL GROUP BY specifies.
func keyString(vals []any) string {
	var b strings.Builder
	for _, v := range vals {
		if v == nil {
			b.WriteString("\x00N;")
			continue
		}
		fmt.Fprintf(&b, "%T:%v;", v, v)
	}
	return b.String()
}
