package pgdb

import (
	"fmt"
	"strings"

	"hyperq/internal/pgdb/sqlparse"
)

// RenderSelect renders a parsed SELECT back to SQL text. Exported for the
// shard planner, which rewrites translated statements (per-shard partials,
// coordinator re-aggregation) and needs to turn the edited AST back into SQL.
func RenderSelect(sel *sqlparse.SelectStmt) string {
	var b strings.Builder
	renderSelect(&b, sel)
	return b.String()
}

// RenderExpr renders a parsed expression back to SQL text. Exported for the
// shard planner (see RenderSelect).
func RenderExpr(e sqlparse.Expr) string {
	var b strings.Builder
	renderExpr(&b, e)
	return b.String()
}

// RenderIdent renders an identifier, quoting when needed.
func RenderIdent(s string) string {
	var b strings.Builder
	renderIdent(&b, s)
	return b.String()
}

// renderSelect renders a parsed SELECT back to SQL text. It is used to store
// view definitions (views re-execute their definition on every reference).
func renderSelect(b *strings.Builder, sel *sqlparse.SelectStmt) {
	b.WriteString("SELECT ")
	if sel.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, item := range sel.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if item.Star {
			if item.StarTable != "" {
				b.WriteString(item.StarTable + ".*")
			} else {
				b.WriteString("*")
			}
			continue
		}
		renderExpr(b, item.Expr)
		if item.Alias != "" {
			b.WriteString(" AS ")
			renderIdent(b, item.Alias)
		}
	}
	if len(sel.From) > 0 {
		b.WriteString(" FROM ")
		for i, tr := range sel.From {
			if i > 0 {
				b.WriteString(", ")
			}
			renderTableRef(b, tr)
		}
	}
	if sel.Where != nil {
		b.WriteString(" WHERE ")
		renderExpr(b, sel.Where)
	}
	if len(sel.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range sel.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, e)
		}
	}
	if sel.Having != nil {
		b.WriteString(" HAVING ")
		renderExpr(b, sel.Having)
	}
	if sel.Union != nil {
		b.WriteString(" UNION ")
		if sel.Union.All {
			b.WriteString("ALL ")
		}
		renderSelect(b, sel.Union.Right)
	}
	if len(sel.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		renderOrderItems(b, sel.OrderBy)
	}
	if sel.Limit != nil {
		b.WriteString(" LIMIT ")
		renderExpr(b, sel.Limit)
	}
	if sel.Offset != nil {
		b.WriteString(" OFFSET ")
		renderExpr(b, sel.Offset)
	}
}

func renderOrderItems(b *strings.Builder, items []sqlparse.OrderItem) {
	for i, o := range items {
		if i > 0 {
			b.WriteString(", ")
		}
		renderExpr(b, o.Expr)
		if o.Desc {
			b.WriteString(" DESC")
		}
		if o.NullsFirst != nil {
			if *o.NullsFirst {
				b.WriteString(" NULLS FIRST")
			} else {
				b.WriteString(" NULLS LAST")
			}
		}
	}
}

func renderTableRef(b *strings.Builder, tr sqlparse.TableRef) {
	switch r := tr.(type) {
	case *sqlparse.BaseTable:
		if r.Schema != "" {
			renderIdent(b, r.Schema)
			b.WriteString(".")
		}
		renderIdent(b, r.Name)
		if r.Alias != "" {
			b.WriteString(" ")
			renderIdent(b, r.Alias)
		}
	case *sqlparse.SubqueryRef:
		b.WriteString("(")
		renderSelect(b, r.Query)
		b.WriteString(")")
		if r.Alias != "" {
			b.WriteString(" ")
			renderIdent(b, r.Alias)
		}
	case *sqlparse.JoinRef:
		renderTableRef(b, r.Left)
		switch r.Type {
		case sqlparse.InnerJoin:
			b.WriteString(" JOIN ")
		case sqlparse.LeftJoin:
			b.WriteString(" LEFT JOIN ")
		case sqlparse.RightJoin:
			b.WriteString(" RIGHT JOIN ")
		case sqlparse.FullJoin:
			b.WriteString(" FULL JOIN ")
		case sqlparse.CrossJoin:
			b.WriteString(" CROSS JOIN ")
		}
		renderTableRef(b, r.Right)
		if r.On != nil {
			b.WriteString(" ON ")
			renderExpr(b, r.On)
		}
	}
}

// renderIdent quotes identifiers that need it (mixed case or keywords).
func renderIdent(b *strings.Builder, s string) {
	needQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			needQuote = true
			break
		}
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_') {
			needQuote = true
			break
		}
	}
	if needQuote {
		b.WriteString(`"` + s + `"`)
	} else {
		b.WriteString(s)
	}
}

func renderExpr(b *strings.Builder, e sqlparse.Expr) {
	switch x := e.(type) {
	case *sqlparse.NumberLit:
		b.WriteString(x.Text)
	case *sqlparse.StringLit:
		b.WriteString("'" + strings.ReplaceAll(x.V, "'", "''") + "'")
	case *sqlparse.BoolLit:
		if x.V {
			b.WriteString("TRUE")
		} else {
			b.WriteString("FALSE")
		}
	case *sqlparse.NullLit:
		b.WriteString("NULL")
	case *sqlparse.ColRef:
		if x.Table != "" {
			renderIdent(b, x.Table)
			b.WriteString(".")
		}
		renderIdent(b, x.Name)
	case *sqlparse.ParamRef:
		fmt.Fprintf(b, "$%d", x.N)
	case *sqlparse.BinaryExpr:
		b.WriteString("(")
		renderExpr(b, x.L)
		b.WriteString(" " + x.Op + " ")
		renderExpr(b, x.R)
		b.WriteString(")")
	case *sqlparse.UnaryExpr:
		b.WriteString("(" + x.Op + " ")
		renderExpr(b, x.X)
		b.WriteString(")")
	case *sqlparse.IsNullExpr:
		b.WriteString("(")
		renderExpr(b, x.X)
		if x.Not {
			b.WriteString(" IS NOT NULL)")
		} else {
			b.WriteString(" IS NULL)")
		}
	case *sqlparse.InExpr:
		b.WriteString("(")
		renderExpr(b, x.X)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		for i, l := range x.List {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, l)
		}
		b.WriteString("))")
	case *sqlparse.BetweenExpr:
		b.WriteString("(")
		renderExpr(b, x.X)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		renderExpr(b, x.Lo)
		b.WriteString(" AND ")
		renderExpr(b, x.Hi)
		b.WriteString(")")
	case *sqlparse.CaseExpr:
		b.WriteString("CASE")
		if x.Operand != nil {
			b.WriteString(" ")
			renderExpr(b, x.Operand)
		}
		for _, w := range x.Whens {
			b.WriteString(" WHEN ")
			renderExpr(b, w.Cond)
			b.WriteString(" THEN ")
			renderExpr(b, w.Then)
		}
		if x.Else != nil {
			b.WriteString(" ELSE ")
			renderExpr(b, x.Else)
		}
		b.WriteString(" END")
	case *sqlparse.CastExpr:
		b.WriteString("CAST(")
		renderExpr(b, x.X)
		b.WriteString(" AS " + x.Type + ")")
	case *sqlparse.FuncCall:
		b.WriteString(x.Name + "(")
		if x.Star {
			b.WriteString("*")
		}
		if x.Distinct {
			b.WriteString("DISTINCT ")
		}
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, a)
		}
		b.WriteString(")")
		if x.Over != nil {
			b.WriteString(" OVER (")
			if len(x.Over.PartitionBy) > 0 {
				b.WriteString("PARTITION BY ")
				for i, p := range x.Over.PartitionBy {
					if i > 0 {
						b.WriteString(", ")
					}
					renderExpr(b, p)
				}
			}
			if len(x.Over.OrderBy) > 0 {
				if len(x.Over.PartitionBy) > 0 {
					b.WriteString(" ")
				}
				b.WriteString("ORDER BY ")
				renderOrderItems(b, x.Over.OrderBy)
			}
			b.WriteString(")")
		}
	case *sqlparse.SubqueryExpr:
		b.WriteString("(")
		renderSelect(b, x.Query)
		b.WriteString(")")
	case *sqlparse.ValueLit:
		b.WriteString(FormatValue(x.V, "varchar"))
	}
}
