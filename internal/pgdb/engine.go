package pgdb

import (
	"context"
	"fmt"
	"strings"

	"hyperq/internal/pgdb/sqlparse"
)

// Exec parses and executes one SQL statement in the session, returning a
// result set for queries and a command tag for DML/DDL. It runs without a
// deadline; request-scoped execution goes through ExecContext.
func (s *Session) Exec(sql string) (*Result, error) {
	return s.ExecContext(context.Background(), sql)
}

// ExecContext is Exec bounded by a context: execution checks ctx at
// row-batch boundaries, so a runaway scan or join over the embedded engine
// is abortable the same way a networked backend query is.
func (s *Session) ExecContext(ctx context.Context, sql string) (*Result, error) {
	prev, prevTicks := s.ctx, s.ticks
	s.ctx, s.ticks = ctx, 0
	defer func() { s.ctx, s.ticks = prev, prevTicks }()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, errf("42601", "%v", err)
	}
	return s.ExecStmt(stmt)
}

// ctxCheckRows is how many row visits pass between context checks — the
// row-batch boundary: frequent enough to abort a runaway scan promptly,
// rare enough to stay off the per-row hot path.
const ctxCheckRows = 1024

// tick is called once per row visited by scans, joins and projections; every
// ctxCheckRows visits it polls the execution context.
func (s *Session) tick() error {
	s.ticks++
	if s.ticks%ctxCheckRows != 0 || s.ctx == nil {
		return nil
	}
	if err := s.ctx.Err(); err != nil {
		return fmt.Errorf("pgdb: query aborted: %w", err)
	}
	return nil
}

// ExecScript executes a semicolon-separated batch, returning the result of
// each statement.
func (s *Session) ExecScript(sql string) ([]*Result, error) {
	return s.ExecScriptContext(context.Background(), sql)
}

// ExecScriptContext is ExecScript bounded by a context; the whole batch
// shares one deadline.
func (s *Session) ExecScriptContext(ctx context.Context, sql string) ([]*Result, error) {
	prev, prevTicks := s.ctx, s.ticks
	s.ctx, s.ticks = ctx, 0
	defer func() { s.ctx, s.ticks = prev, prevTicks }()
	stmts, err := sqlparse.ParseScript(sql)
	if err != nil {
		return nil, errf("42601", "%v", err)
	}
	out := make([]*Result, 0, len(stmts))
	for _, st := range stmts {
		r, err := s.ExecStmt(st)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ExecStmt executes a parsed statement. The outermost call takes the
// database's coarse statement lock — exclusively for statements that mutate
// permanent relations, shared otherwise — so concurrent sessions never race
// a scan against a half-applied append or in-place update. Nested calls
// (view expansion) run under the outer statement's lock.
func (s *Session) ExecStmt(stmt sqlparse.Stmt) (*Result, error) {
	if s.lockDepth > 0 {
		return s.execStmt(stmt)
	}
	res, err := func() (*Result, error) {
		if s.stmtWrites(stmt) {
			s.db.stmtMu.Lock()
			defer s.db.stmtMu.Unlock()
		} else {
			s.db.stmtMu.RLock()
			defer s.db.stmtMu.RUnlock()
		}
		s.lockDepth++
		defer func() { s.lockDepth-- }()
		return s.execStmt(stmt)
	}()
	// the after-statement hook (checkpoint scheduling, memory-budget
	// eviction) runs outside the lock: it may take it exclusively itself
	if after := s.db.afterStmt; after != nil {
		after()
	}
	return res, err
}

// stmtWrites reports whether a statement mutates shared (non-temp) catalog
// state and therefore needs the exclusive statement lock. DML against a
// session temp table stays shared: temp tables are session-local.
func (s *Session) stmtWrites(stmt sqlparse.Stmt) bool {
	isTemp := func(name string) bool { _, ok := s.temp[name]; return ok }
	switch st := stmt.(type) {
	case *sqlparse.InsertStmt:
		return !isTemp(st.Table)
	case *sqlparse.UpdateStmt:
		return !isTemp(st.Table)
	case *sqlparse.DeleteStmt:
		return !isTemp(st.Table)
	case *sqlparse.CreateTableStmt:
		return !st.Temp
	case *sqlparse.CreateViewStmt:
		return true
	case *sqlparse.DropStmt:
		return st.View || !isTemp(st.Name)
	}
	return false
}

// trapFault converts a storeFault panic (cold-segment reload failure) into
// a statement error at a boundary that has an error return.
func trapFault(err *error) {
	if r := recover(); r != nil {
		if f, ok := r.(*storeFault); ok {
			*err = errf("58030", "storage fault: %v", f.err)
			return
		}
		panic(r)
	}
}

func (s *Session) execStmt(stmt sqlparse.Stmt) (res *Result, err error) {
	defer trapFault(&err)
	switch st := stmt.(type) {
	case *sqlparse.SelectStmt:
		res, err := s.execSelect(st, nil)
		if err != nil {
			return nil, err
		}
		res.Tag = fmt.Sprintf("SELECT %d", len(res.Rows))
		return res, nil
	case *sqlparse.CreateTableStmt:
		return s.execCreateTable(st)
	case *sqlparse.CreateViewStmt:
		sql := selectToSQL(st.AsSelect)
		s.db.mu.Lock()
		s.db.views[st.Name] = &storedView{name: st.Name, sql: sql}
		s.db.mu.Unlock()
		if j := s.db.journal; j != nil {
			if jerr := j.JournalCreateView(st.Name, sql); jerr != nil {
				return nil, errf("58030", "journal: %v", jerr)
			}
		}
		return &Result{Tag: "CREATE VIEW"}, nil
	case *sqlparse.DropStmt:
		return s.execDrop(st)
	case *sqlparse.InsertStmt:
		return s.execInsert(st)
	case *sqlparse.UpdateStmt:
		return s.execUpdate(st)
	case *sqlparse.DeleteStmt:
		return s.execDelete(st)
	case *sqlparse.TxStmt:
		return &Result{Tag: st.Kind}, nil
	default:
		return nil, errf("0A000", "unsupported statement %T", stmt)
	}
}

func (s *Session) execCreateTable(st *sqlparse.CreateTableStmt) (*Result, error) {
	if _, exists := s.lookupTable(st.Name); exists {
		if st.IfNotExists {
			return &Result{Tag: "CREATE TABLE"}, nil
		}
		if _, isTemp := s.temp[st.Name]; !isTemp && !st.Temp {
			return nil, errf("42P07", "relation %q already exists", st.Name)
		}
	}
	var t *storedTable
	var initRows [][]any
	if st.AsSelect != nil {
		res, err := s.execSelect(st.AsSelect, nil)
		if err != nil {
			return nil, err
		}
		initRows = res.Rows
		t = newStoredTable(s.db, st.Name, res.Cols, res.Rows)
	} else {
		t = newStoredTable(s.db, st.Name, append([]Column(nil), columnDefs(st.Cols)...), nil)
	}
	if st.Temp {
		s.temp[st.Name] = t
	} else {
		s.db.mu.Lock()
		s.db.tables[st.Name] = t
		s.db.mu.Unlock()
		if j := s.db.journal; j != nil {
			// CTAS journals as CREATE + APPEND; both records fsync before
			// the statement acknowledges
			if jerr := j.JournalCreateTable(st.Name, t.cols); jerr != nil {
				return nil, errf("58030", "journal: %v", jerr)
			}
			if len(initRows) > 0 {
				if jerr := j.JournalAppend(st.Name, initRows); jerr != nil {
					return nil, errf("58030", "journal: %v", jerr)
				}
			}
		}
	}
	return &Result{Tag: "CREATE TABLE"}, nil
}

func columnDefs(defs []sqlparse.ColumnDef) []Column {
	out := make([]Column, len(defs))
	for i, d := range defs {
		out[i] = Column{Name: d.Name, Type: normalizeType(d.Type)}
	}
	return out
}

func normalizeType(t string) string {
	switch t {
	case "int", "int4", "integer":
		return "integer"
	case "int8", "bigint":
		return "bigint"
	case "int2", "smallint":
		return "smallint"
	case "float4", "real":
		return "real"
	case "float8", "double precision", "float":
		return "double precision"
	case "bool", "boolean":
		return "boolean"
	case "text", "varchar", "char", "character", "bpchar":
		return "varchar"
	default:
		return t
	}
}

func (s *Session) execDrop(st *sqlparse.DropStmt) (*Result, error) {
	if st.View {
		s.db.mu.Lock()
		_, ok := s.db.views[st.Name]
		delete(s.db.views, st.Name)
		s.db.mu.Unlock()
		if !ok && !st.IfExists {
			return nil, errf("42P01", "view %q does not exist", st.Name)
		}
		if j := s.db.journal; j != nil && ok {
			if jerr := j.JournalDrop(st.Name, true); jerr != nil {
				return nil, errf("58030", "journal: %v", jerr)
			}
		}
		return &Result{Tag: "DROP VIEW"}, nil
	}
	if _, ok := s.temp[st.Name]; ok {
		delete(s.temp, st.Name)
		return &Result{Tag: "DROP TABLE"}, nil
	}
	s.db.mu.Lock()
	_, ok := s.db.tables[st.Name]
	delete(s.db.tables, st.Name)
	s.db.mu.Unlock()
	if !ok && !st.IfExists {
		return nil, errf("42P01", "table %q does not exist", st.Name)
	}
	if j := s.db.journal; j != nil && ok {
		if jerr := j.JournalDrop(st.Name, false); jerr != nil {
			return nil, errf("58030", "journal: %v", jerr)
		}
	}
	return &Result{Tag: "DROP TABLE"}, nil
}

func (s *Session) execInsert(st *sqlparse.InsertStmt) (*Result, error) {
	t, ok := s.lookupTable(st.Table)
	if !ok {
		return nil, errf("42P01", "relation %q does not exist", st.Table)
	}
	// map insert columns to table positions
	pos := make([]int, 0, len(t.cols))
	if len(st.Cols) == 0 {
		for i := range t.cols {
			pos = append(pos, i)
		}
	} else {
		for _, c := range st.Cols {
			found := -1
			for i, tc := range t.cols {
				if tc.Name == c {
					found = i
					break
				}
			}
			if found < 0 {
				return nil, errf("42703", "column %q of relation %q does not exist", c, st.Table)
			}
			pos = append(pos, found)
		}
	}
	var incoming [][]any
	if st.Select != nil {
		res, err := s.execSelect(st.Select, nil)
		if err != nil {
			return nil, err
		}
		incoming = res.Rows
	} else {
		for _, rowExprs := range st.Rows {
			row := make([]any, len(rowExprs))
			for i, e := range rowExprs {
				v, err := s.evalConst(e)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			incoming = append(incoming, row)
		}
	}
	_, isTemp := s.temp[st.Table]
	appended := make([][]any, 0, len(incoming))
	for _, src := range incoming {
		if len(src) != len(pos) {
			return nil, errf("42601", "INSERT has %d expressions but %d target columns", len(src), len(pos))
		}
		full := make([]any, len(t.cols))
		for k, p := range pos {
			full[p] = coerceToColumn(src[k], t.cols[p].Type)
		}
		t.store.appendRow(full)
		appended = append(appended, full)
	}
	if j := s.db.journal; j != nil && !isTemp && len(appended) > 0 {
		if jerr := j.JournalAppend(st.Table, appended); jerr != nil {
			return nil, errf("58030", "journal: %v", jerr)
		}
	}
	return &Result{Tag: fmt.Sprintf("INSERT 0 %d", len(incoming))}, nil
}

// coerceToColumn nudges a value toward its column's storage type so that
// integer columns hold int64 and float columns hold float64.
func coerceToColumn(v any, typ string) any {
	if v == nil {
		return nil
	}
	switch typ {
	case "smallint", "integer", "bigint", "date", "time", "timestamp", "interval":
		if f, ok := v.(float64); ok {
			return int64(f)
		}
	case "real", "double precision", "numeric":
		if n, ok := v.(int64); ok {
			return float64(n)
		}
	}
	return v
}

func (s *Session) execUpdate(st *sqlparse.UpdateStmt) (*Result, error) {
	t, ok := s.lookupTable(st.Table)
	if !ok {
		return nil, errf("42P01", "relation %q does not exist", st.Table)
	}
	schema := schemaOf(t.cols, "")
	// the WHERE predicate and SET expressions compile once per statement;
	// both engines evaluate them per row against the live table, so an
	// UPDATE observing its own earlier writes behaves identically
	pred := s.wherePred(st.Where, schema)
	type setter struct {
		idx  int
		col  string
		eval func(row []any) (any, error)
	}
	setters := make([]setter, len(st.Set))
	for k, set := range st.Set {
		idx := -1
		for i, c := range t.cols {
			if c.Name == set.Col {
				idx = i
				break
			}
		}
		// an unresolvable column only errors when a row matches, like the
		// per-row interpreter loop
		setters[k].idx = idx
		setters[k].col = set.Col
		if s.interpretedMode() {
			expr := set.Expr
			setters[k].eval = func(row []any) (any, error) { return s.evalExpr(expr, schema, row) }
		} else {
			fn := compileExpr(set.Expr, schema).fn
			ec := &evalCtx{s: s, rowIdx: -1}
			setters[k].eval = func(row []any) (any, error) { return fn(ec, row) }
		}
	}
	count := 0
	_, isTemp := s.temp[st.Table]
	var cells []CellUpdate
	touched := map[[2]int]struct{}{}
	for ri, row := range t.store.rows() {
		keep, err := pred(row)
		if err != nil {
			return nil, err
		}
		if !keep {
			continue
		}
		for _, set := range setters {
			if set.idx < 0 {
				return nil, errf("42703", "column %q does not exist", set.col)
			}
			v, err := set.eval(row)
			if err != nil {
				return nil, err
			}
			coerced := coerceToColumn(v, t.cols[set.idx].Type)
			// mutate the cached row in place (later predicate evaluations —
			// e.g. subqueries over the same table — observe the write, as the
			// row storage did) and write through to the column vectors
			row[set.idx] = coerced
			t.store.setCell(ri, set.idx, coerced)
			cells = append(cells, CellUpdate{Row: ri, Col: set.idx, Val: coerced})
			touched[[2]int{ri / segSize, set.idx}] = struct{}{}
		}
		count++
	}
	// setCell only widens zone bounds; recompute exact min/max and null
	// counts for the touched vectors so later scans prune as tightly as a
	// freshly-built segment would (and checkpoints serialize tight bounds)
	t.store.refreshZones(touched)
	if j := s.db.journal; j != nil && !isTemp && len(cells) > 0 {
		if jerr := j.JournalUpdate(st.Table, cells); jerr != nil {
			return nil, errf("58030", "journal: %v", jerr)
		}
	}
	return &Result{Tag: fmt.Sprintf("UPDATE %d", count)}, nil
}

func (s *Session) execDelete(st *sqlparse.DeleteStmt) (*Result, error) {
	t, ok := s.lookupTable(st.Table)
	if !ok {
		return nil, errf("42P01", "relation %q does not exist", st.Table)
	}
	schema := schemaOf(t.cols, "")
	pred := s.wherePred(st.Where, schema)
	rows := t.store.rows()
	kept := make([][]any, 0, len(rows))
	var removed []int
	for ri, row := range rows {
		match, err := pred(row)
		if err != nil {
			return nil, err
		}
		if match {
			removed = append(removed, ri)
		} else {
			kept = append(kept, row)
		}
	}
	t.store.compact(kept)
	_, isTemp := s.temp[st.Table]
	if j := s.db.journal; j != nil && !isTemp && len(removed) > 0 {
		if jerr := j.JournalDelete(st.Table, removed); jerr != nil {
			return nil, errf("58030", "journal: %v", jerr)
		}
	}
	return &Result{Tag: fmt.Sprintf("DELETE %d", len(removed))}, nil
}

// rowMatches evaluates a WHERE predicate with 3VL: only TRUE keeps the row.
// Every scan, join and DML loop funnels through here, so it doubles as the
// row-batch context checkpoint.
func (s *Session) rowMatches(where sqlparse.Expr, schema []colBinding, row []any) (bool, error) {
	if err := s.tick(); err != nil {
		return false, err
	}
	if where == nil {
		return true, nil
	}
	v, err := s.evalExpr(where, schema, row)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	return ok && b, nil // NULL (nil) and FALSE both reject
}

// evalConst evaluates an expression with no row context (literals in
// INSERT VALUES).
func (s *Session) evalConst(e sqlparse.Expr) (any, error) {
	return s.evalExpr(e, nil, nil)
}

// selectToSQL renders a parsed select back to SQL for view storage. Views
// re-execute their definition on every reference; this keeps the engine
// honest about logical materialization (paper §4.3).
func selectToSQL(sel *sqlparse.SelectStmt) string {
	// The parser's grammar is small enough that re-rendering from the AST
	// is straightforward; the renderer lives in render.go.
	var b strings.Builder
	renderSelect(&b, sel)
	return b.String()
}
