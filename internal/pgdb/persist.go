package pgdb

// Persistence API: the narrow surface internal/persist uses to journal DML,
// snapshot and restore tables, evict cold segments, and replay a WAL. The
// engine stays storage-agnostic — everything durable lives behind the
// Journal interface and the Apply*/Snapshot*/Restore* entry points below.

// SegmentSize exposes the store's fixed segment length so persistence
// layers can map row counts to segment boundaries.
const SegmentSize = segSize

// CellUpdate is one cell overwrite recorded by an UPDATE statement: the
// coerced value actually stored, addressed by global row index and column.
type CellUpdate struct {
	Row, Col int
	Val      any
}

// Journal receives every catalog- or data-changing event on permanent
// relations, after the change has been applied in memory but before the
// statement acknowledges. Calls arrive under the database's exclusive
// statement lock, so implementations see a serial history. A returned error
// fails the statement (memory then runs ahead of the journal until the next
// checkpoint reconciles them).
type Journal interface {
	JournalCreateTable(name string, cols []Column) error
	JournalDrop(name string, view bool) error
	JournalCreateView(name, sql string) error
	JournalAppend(table string, rows [][]any) error
	JournalUpdate(table string, cells []CellUpdate) error
	// JournalDelete records the deleted original row indexes (ascending);
	// survivors are renumbered densely, exactly like colStore.compact.
	JournalDelete(table string, removed []int) error
}

// SetJournal installs the DML/DDL journal. Pass nil to detach.
func (db *DB) SetJournal(j Journal) {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	db.journal = j
}

// SetAfterStmt installs a hook that runs after every top-level statement,
// outside the statement lock — the persistence layer uses it for checkpoint
// scheduling and memory-budget eviction.
func (db *DB) SetAfterStmt(fn func()) {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	db.afterStmt = fn
}

// Exclusive runs fn while holding the database's statement lock exclusively:
// no statement executes concurrently. Checkpoints run under it so the
// snapshot and the WAL position are mutually consistent.
func (db *DB) Exclusive(fn func()) {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	fn()
}

// VecData is the serializable form of one column vector of one segment:
// the typed slices, null bitmap, and zone metadata round-trip verbatim, so
// a restore re-infers nothing.
type VecData struct {
	Kind    uint8
	Ints    []int64
	Floats  []float64
	Strs    []string
	Bools   []bool
	Anys    []any
	Nulls   []uint64
	NullCnt int
	Min     any
	Max     any
}

// SegmentData is the serializable form of one segment.
type SegmentData struct {
	N    int
	Vecs []VecData
}

// VecMeta is the metadata-only form of a vector — what a stub segment
// carries so zone pruning works without faulting the data in.
type VecMeta struct {
	Kind    uint8
	NullCnt int
	Min     any
	Max     any
}

// SegMeta is the metadata-only form of a segment.
type SegMeta struct {
	N    int
	Vecs []VecMeta
}

func vecToData(v *colVec) VecData {
	return VecData{
		Kind:    uint8(v.kind),
		Ints:    v.ints,
		Floats:  v.floats,
		Strs:    v.strs,
		Bools:   v.bools,
		Anys:    v.anys,
		Nulls:   v.nulls,
		NullCnt: v.nullCnt,
		Min:     v.minV,
		Max:     v.maxV,
	}
}

func vecFromData(d VecData) colVec {
	return colVec{
		kind:    vecKind(d.Kind),
		ints:    d.Ints,
		floats:  d.Floats,
		strs:    d.Strs,
		bools:   d.Bools,
		anys:    d.Anys,
		nulls:   d.Nulls,
		nullCnt: d.NullCnt,
		minV:    d.Min,
		maxV:    d.Max,
	}
}

// SegLoader reloads evicted columns of one segment of a table from durable
// storage. cols is the sorted set of column indexes to load, or nil for all
// columns; the returned SegmentData.Vecs must have one entry per table
// column, with at least the requested indexes populated (the rest are
// ignored). Faulting is column-granular: a pruned scan requests only the
// columns it references.
type SegLoader func(si int, cols []int) (SegmentData, error)

// SnapshotTable returns the live segments of a permanent table. It must run
// inside Exclusive — it takes no locks itself — and faults any evicted
// segments back in (snapshot needs the data). ok is false for an unknown
// table.
func (db *DB) SnapshotTable(name string) (cols []Column, segs []SegmentData, ok bool) {
	t, found := db.tables[name]
	if !found {
		return nil, nil, false
	}
	st := t.store
	segs = make([]SegmentData, st.numSegs())
	for si := range segs {
		seg := st.seg(si)
		sd := SegmentData{N: seg.n, Vecs: make([]VecData, len(seg.vecs))}
		for c := range seg.vecs {
			sd.Vecs[c] = vecToData(&seg.vecs[c])
		}
		segs[si] = sd
	}
	return append([]Column(nil), t.cols...), segs, true
}

// SnapshotViews returns the view definitions (name → SQL). Must run inside
// Exclusive.
func (db *DB) SnapshotViews() map[string]string {
	out := make(map[string]string, len(db.views))
	for n, v := range db.views {
		out[n] = v.sql
	}
	return out
}

// TableRowCount reports the row count of a permanent table without
// materializing anything. Must run inside Exclusive.
func (db *DB) TableRowCount(name string) (int, bool) {
	t, ok := db.tables[name]
	if !ok {
		return 0, false
	}
	return t.store.numRows(), true
}

// RestoreTableLazy registers a permanent table whose segments are all stubs:
// the metadata (row counts, vector kinds, zone bounds, null counts) is
// resident, and segment data faults in through loader on first touch. Used
// at open so a cold start does no data I/O until a scan needs it.
func (db *DB) RestoreTableLazy(name string, cols []Column, segs []SegMeta, loader SegLoader) {
	st := newColStore(cols)
	st.loader = loader
	st.ix.stats = &db.idxStats
	// the rows bypass appendVecs, so sorted attributes are unknown until the
	// manifest's RestoreAccessMeta re-establishes them
	for c := range st.ix.sorted {
		st.ix.sorted[c] = sortAttr{}
	}
	for _, sm := range segs {
		seg := &segment{n: sm.N, stub: true, vecs: make([]colVec, len(sm.Vecs))}
		for c, vm := range sm.Vecs {
			seg.vecs[c] = colVec{kind: vecKind(vm.Kind), stub: true, nullCnt: vm.NullCnt, minV: vm.Min, maxV: vm.Max}
		}
		st.addSeg(seg)
		st.n += sm.N
	}
	t := &storedTable{name: name, cols: cols, store: st}
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	db.mu.Lock()
	db.tables[name] = t
	db.mu.Unlock()
}

// EvictSegments swaps resident segments [from, to) of a table for stubs,
// dropping their data and the table's memoized row view. Partially resident
// segments (only some columns faulted back in) are evicted too, and the
// accounting is column-granular. The caller must guarantee the range is
// durable and clean, and must run inside Exclusive — that makes the
// clean-check and the eviction atomic with respect to DML. Returns the
// estimated bytes released and the number of column vectors dropped.
func (db *DB) EvictSegments(name string, from, to int) (int64, int) {
	t, ok := db.tables[name]
	if !ok {
		return 0, 0
	}
	st := t.store
	if st.loader == nil {
		return 0, 0 // memory-only store: nothing could reload the data
	}
	if to > st.numSegs() {
		to = st.numSegs()
	}
	var freed int64
	cols := 0
	for si := from; si < to; si++ {
		s := st.peekSeg(si)
		for c := range s.vecs {
			if !s.vecs[c].stub {
				freed += s.vecs[c].memBytes()
			}
		}
		cols += st.evictSeg(si)
	}
	if cols > 0 {
		st.cache.Store(nil) // the row view pins boxed copies of every cell
		// indexes and as-of buckets pin value copies of the evicted columns;
		// drop them too and let the next qualifying lookup rebuild
		st.dropIndexes()
	}
	return freed, cols
}

// TableAccessMeta reports per-column access-path state for checkpointing:
// the sorted attribute and whether the column has (or is hinted to rebuild)
// a hash index. A sorted flag is only exported when the last segment carries
// usable zone bounds — the restore path re-derives the append anchor from
// them. Must run inside Exclusive.
func (db *DB) TableAccessMeta(name string) (sorted, indexed []bool, ok bool) {
	t, found := db.tables[name]
	if !found {
		return nil, nil, false
	}
	st := t.store
	sorted = make([]bool, len(st.cols))
	indexed = make([]bool, len(st.cols))
	for c := range st.cols {
		sorted[c] = st.ix.sorted[c].ok &&
			(st.numSegs() == 0 || st.peekSeg(st.numSegs() - 1).vecs[c].maxV != nil)
		ix := st.ix.idx[c].Load()
		indexed[c] = (ix != nil && ix != notIndexable) || st.ix.hint[c]
	}
	return sorted, indexed, true
}

// RestoreAccessMeta re-establishes the access-path state a checkpoint
// recorded on a lazily restored table: sorted attributes resume maintenance
// with their append anchor taken from the last segment's zone max (sorted ⇒
// no NULLs ⇒ the segment max is the last value), and indexed columns are
// hinted so the first qualifying lookup rebuilds them — the postings
// themselves are cheaper to rebuild column-granularly than to serialize.
func (db *DB) RestoreAccessMeta(name string, sorted, indexed []bool) {
	db.mu.RLock()
	t, ok := db.tables[name]
	db.mu.RUnlock()
	if !ok {
		return
	}
	st := t.store
	for c := range st.cols {
		if c < len(sorted) && sorted[c] {
			var last any
			if n := st.numSegs(); n > 0 {
				last = st.peekSeg(n - 1).vecs[c].maxV
			}
			if st.n == 0 || last != nil {
				st.ix.sorted[c] = sortAttr{ok: true, last: last}
			}
		}
		if c < len(indexed) && indexed[c] {
			st.ix.hint[c] = true
		}
	}
}

// SetTableLoader attaches (or replaces) the segment loader of a table —
// checkpoints re-point tables at the new checkpoint's files. Must run
// inside Exclusive.
func (db *DB) SetTableLoader(name string, loader SegLoader) {
	if t, ok := db.tables[name]; ok {
		t.store.loader = loader
	}
}

// ResidentBytes estimates the heap bytes held by resident segment data
// across all permanent tables. Must run inside Exclusive.
func (db *DB) ResidentBytes() map[string]int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string]int64, len(db.tables))
	for n, t := range db.tables {
		out[n] = t.store.residentBytes()
	}
	return out
}

// --- WAL replay entry points ---
//
// The Apply* functions re-execute journaled changes without re-journaling
// them. Each takes the exclusive statement lock and traps segment faults
// like a statement would.

func (db *DB) applyLocked(fn func() error) (err error) {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	defer trapFault(&err)
	return fn()
}

// ApplyCreateTable creates (or replaces) a permanent table.
func (db *DB) ApplyCreateTable(name string, cols []Column) error {
	return db.applyLocked(func() error {
		db.mu.Lock()
		db.tables[name] = newStoredTable(db, name, cols, nil)
		db.mu.Unlock()
		return nil
	})
}

// ApplyDrop drops a permanent table or view; missing relations are a no-op
// (replay is idempotent past a checkpoint boundary).
func (db *DB) ApplyDrop(name string, view bool) error {
	return db.applyLocked(func() error {
		db.mu.Lock()
		if view {
			delete(db.views, name)
		} else {
			delete(db.tables, name)
		}
		db.mu.Unlock()
		return nil
	})
}

// ApplyCreateView registers a view definition.
func (db *DB) ApplyCreateView(name, sql string) error {
	return db.applyLocked(func() error {
		db.mu.Lock()
		db.views[name] = &storedView{name: name, sql: sql}
		db.mu.Unlock()
		return nil
	})
}

// ApplyAppend appends rows to a permanent table.
func (db *DB) ApplyAppend(name string, rows [][]any) error {
	return db.applyLocked(func() error {
		db.mu.RLock()
		t, ok := db.tables[name]
		db.mu.RUnlock()
		if !ok {
			return errf("42P01", "relation %q does not exist", name)
		}
		for _, r := range rows {
			t.store.appendRow(r)
		}
		return nil
	})
}

// ApplyUpdate replays cell overwrites, then refreshes the touched zones
// exactly like the UPDATE statement path.
func (db *DB) ApplyUpdate(name string, cells []CellUpdate) error {
	return db.applyLocked(func() error {
		db.mu.RLock()
		t, ok := db.tables[name]
		db.mu.RUnlock()
		if !ok {
			return errf("42P01", "relation %q does not exist", name)
		}
		st := t.store
		rows := st.rows()
		touched := make(map[[2]int]struct{}, len(cells))
		for _, c := range cells {
			if c.Row < 0 || c.Row >= st.numRows() || c.Col < 0 || c.Col >= len(st.cols) {
				return errf("58030", "update replay out of range: row %d col %d", c.Row, c.Col)
			}
			rows[c.Row][c.Col] = c.Val
			st.setCell(c.Row, c.Col, c.Val)
			touched[[2]int{c.Row / segSize, c.Col}] = struct{}{}
		}
		st.refreshZones(touched)
		return nil
	})
}

// ApplyDelete replays a DELETE given the removed original row indexes
// (ascending), compacting survivors densely.
func (db *DB) ApplyDelete(name string, removed []int) error {
	return db.applyLocked(func() error {
		db.mu.RLock()
		t, ok := db.tables[name]
		db.mu.RUnlock()
		if !ok {
			return errf("42P01", "relation %q does not exist", name)
		}
		st := t.store
		rows := st.rows()
		kept := make([][]any, 0, len(rows)-len(removed))
		ri := 0
		for i, row := range rows {
			if ri < len(removed) && removed[ri] == i {
				ri++
				continue
			}
			kept = append(kept, row)
		}
		st.compact(kept)
		return nil
	})
}
