package pgdb

import (
	"math"
	"strconv"
	"strings"

	"hyperq/internal/pgdb/sqlparse"
)

// evalExpr evaluates a scalar expression over one row with SQL three-valued
// logic: any comparison with NULL yields NULL (Go nil), except IS NULL and
// IS [NOT] DISTINCT FROM, which are null-safe — the construct Hyper-Q's
// Xformer emits to impose Q's two-valued semantics (paper §3.3).
func (s *Session) evalExpr(e sqlparse.Expr, schema []colBinding, row []any) (any, error) {
	return s.evalExprWin(e, schema, row, -1, nil)
}

func (s *Session) evalExprWin(e sqlparse.Expr, schema []colBinding, row []any, rowIdx int, winVals map[*sqlparse.FuncCall][]any) (any, error) {
	switch x := e.(type) {
	case *sqlparse.NumberLit:
		if strings.ContainsAny(x.Text, ".eE") {
			f, err := strconv.ParseFloat(x.Text, 64)
			if err != nil {
				return nil, errf("22P02", "bad number %q", x.Text)
			}
			return f, nil
		}
		n, err := strconv.ParseInt(x.Text, 10, 64)
		if err != nil {
			return nil, errf("22P02", "bad number %q", x.Text)
		}
		return n, nil
	case *sqlparse.StringLit:
		return x.V, nil
	case *sqlparse.BoolLit:
		return x.V, nil
	case *sqlparse.NullLit:
		return nil, nil
	case *sqlparse.ParamRef:
		return nil, errf("0A000", "parameters are not supported in direct execution")
	case *sqlparse.ValueLit:
		return x.V, nil
	case *sqlparse.ColRef:
		i, err := findCol(schema, x)
		if err != nil {
			return nil, err
		}
		return row[i], nil
	case *sqlparse.UnaryExpr:
		v, err := s.evalExprWin(x.X, schema, row, rowIdx, winVals)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			if v == nil {
				return nil, nil
			}
			b, ok := v.(bool)
			if !ok {
				return nil, errf("42804", "argument of NOT must be boolean")
			}
			return !b, nil
		case "-":
			switch n := v.(type) {
			case nil:
				return nil, nil
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			default:
				return nil, errf("42804", "cannot negate %T", v)
			}
		}
		return nil, errf("0A000", "unsupported unary %s", x.Op)
	case *sqlparse.BinaryExpr:
		return s.evalBinary(x, schema, row, rowIdx, winVals)
	case *sqlparse.IsNullExpr:
		v, err := s.evalExprWin(x.X, schema, row, rowIdx, winVals)
		if err != nil {
			return nil, err
		}
		isNull := v == nil
		if x.Not {
			return !isNull, nil
		}
		return isNull, nil
	case *sqlparse.InExpr:
		v, err := s.evalExprWin(x.X, schema, row, rowIdx, winVals)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, nil
		}
		sawNull := false
		for _, le := range x.List {
			lv, err := s.evalExprWin(le, schema, row, rowIdx, winVals)
			if err != nil {
				return nil, err
			}
			if lv == nil {
				sawNull = true
				continue
			}
			if equalVals(v, lv) {
				return !x.Not, nil
			}
		}
		if sawNull {
			return nil, nil // unknown per 3VL
		}
		return x.Not, nil
	case *sqlparse.BetweenExpr:
		v, err := s.evalExprWin(x.X, schema, row, rowIdx, winVals)
		if err != nil {
			return nil, err
		}
		lo, err := s.evalExprWin(x.Lo, schema, row, rowIdx, winVals)
		if err != nil {
			return nil, err
		}
		hi, err := s.evalExprWin(x.Hi, schema, row, rowIdx, winVals)
		if err != nil {
			return nil, err
		}
		if v == nil || lo == nil || hi == nil {
			return nil, nil
		}
		in := compareVals(v, lo) >= 0 && compareVals(v, hi) <= 0
		if x.Not {
			return !in, nil
		}
		return in, nil
	case *sqlparse.CaseExpr:
		for _, w := range x.Whens {
			var hit bool
			if x.Operand != nil {
				ov, err := s.evalExprWin(x.Operand, schema, row, rowIdx, winVals)
				if err != nil {
					return nil, err
				}
				cv, err := s.evalExprWin(w.Cond, schema, row, rowIdx, winVals)
				if err != nil {
					return nil, err
				}
				hit = ov != nil && cv != nil && equalVals(ov, cv)
			} else {
				cv, err := s.evalExprWin(w.Cond, schema, row, rowIdx, winVals)
				if err != nil {
					return nil, err
				}
				b, ok := cv.(bool)
				hit = ok && b
			}
			if hit {
				return s.evalExprWin(w.Then, schema, row, rowIdx, winVals)
			}
		}
		if x.Else != nil {
			return s.evalExprWin(x.Else, schema, row, rowIdx, winVals)
		}
		return nil, nil
	case *sqlparse.CastExpr:
		v, err := s.evalExprWin(x.X, schema, row, rowIdx, winVals)
		if err != nil {
			return nil, err
		}
		return castValue(v, normalizeType(x.Type))
	case *sqlparse.FuncCall:
		if x.Over != nil {
			if winVals == nil || rowIdx < 0 {
				return nil, errf("42P20", "window function %s outside projection", x.Name)
			}
			vals, ok := winVals[x]
			if !ok {
				return nil, errf("XX000", "window values missing for %s", x.Name)
			}
			return vals[rowIdx], nil
		}
		return s.evalScalarFunc(x, schema, row, rowIdx, winVals)
	case *sqlparse.SubqueryExpr:
		res, err := s.execSelect(x.Query, nil)
		if err != nil {
			return nil, err
		}
		if len(res.Rows) == 0 {
			return nil, nil
		}
		if len(res.Rows) > 1 {
			return nil, errf("21000", "scalar subquery returned more than one row")
		}
		return res.Rows[0][0], nil
	default:
		return nil, errf("0A000", "unsupported expression %T", e)
	}
}

func (s *Session) evalBinary(x *sqlparse.BinaryExpr, schema []colBinding, row []any, rowIdx int, winVals map[*sqlparse.FuncCall][]any) (any, error) {
	// AND/OR have their own 3VL truth tables with short circuits
	if x.Op == "AND" || x.Op == "OR" {
		l, err := s.evalExprWin(x.L, schema, row, rowIdx, winVals)
		if err != nil {
			return nil, err
		}
		if v, done := andOrShortCircuit(x.Op, l); done {
			return v, nil
		}
		r, err := s.evalExprWin(x.R, schema, row, rowIdx, winVals)
		if err != nil {
			return nil, err
		}
		return applyAndOr(x.Op, l, r), nil
	}
	l, err := s.evalExprWin(x.L, schema, row, rowIdx, winVals)
	if err != nil {
		return nil, err
	}
	r, err := s.evalExprWin(x.R, schema, row, rowIdx, winVals)
	if err != nil {
		return nil, err
	}
	return applyBinary(x.Op, l, r)
}

// andOrShortCircuit reports whether the left operand alone decides an
// AND/OR: FALSE AND x is FALSE, TRUE OR x is TRUE, regardless of x.
func andOrShortCircuit(op string, l any) (any, bool) {
	lb, lok := l.(bool)
	if op == "AND" && lok && !lb {
		return false, true
	}
	if op == "OR" && lok && lb {
		return true, true
	}
	return nil, false
}

// applyAndOr applies the full 3VL AND/OR truth table to two already
// evaluated operands (non-bool operands behave as UNKNOWN).
func applyAndOr(op string, l, r any) any {
	if v, done := andOrShortCircuit(op, l); done {
		return v
	}
	lb, lok := l.(bool)
	rb, rok := r.(bool)
	if op == "AND" {
		if rok && !rb {
			return false
		}
		if !lok || !rok {
			return nil
		}
		return lb && rb
	}
	if rok && rb {
		return true
	}
	if !lok || !rok {
		return nil
	}
	return lb || rb
}

// applyBinary applies a non-AND/OR binary operator to two evaluated
// operands. Shared by the interpreter and the compiled engine so the two
// paths cannot drift.
func applyBinary(op string, l, r any) (any, error) {
	switch op {
	case "IS DISTINCT FROM", "IS NOT DISTINCT FROM":
		// null-safe equality: NULL IS NOT DISTINCT FROM NULL is TRUE —
		// exactly Q's two-valued null equality (paper §3.3)
		var equal bool
		switch {
		case l == nil && r == nil:
			equal = true
		case l == nil || r == nil:
			equal = false
		default:
			equal = equalVals(l, r)
		}
		if op == "IS DISTINCT FROM" {
			return !equal, nil
		}
		return equal, nil
	}
	if l == nil || r == nil {
		return nil, nil // 3VL: everything else is unknown with a null
	}
	switch op {
	case "=", "<>", "<", ">", "<=", ">=":
		c := compareVals(l, r)
		switch op {
		case "=":
			return c == 0, nil
		case "<>":
			return c != 0, nil
		case "<":
			return c < 0, nil
		case ">":
			return c > 0, nil
		case "<=":
			return c <= 0, nil
		default:
			return c >= 0, nil
		}
	case "+", "-", "*", "/", "%":
		return arithSQL(op, l, r)
	case "||":
		return FormatValue(l, "varchar") + FormatValue(r, "varchar"), nil
	case "LIKE", "ILIKE":
		ls, lok := l.(string)
		rs, rok := r.(string)
		if !lok || !rok {
			return nil, errf("42804", "LIKE requires strings")
		}
		if op == "ILIKE" {
			ls, rs = strings.ToLower(ls), strings.ToLower(rs)
		}
		return likeMatch(rs, ls), nil
	default:
		return nil, errf("0A000", "unsupported operator %q", op)
	}
}

func arithSQL(op string, l, r any) (any, error) {
	li, lIsInt := l.(int64)
	ri, rIsInt := r.(int64)
	if lIsInt && rIsInt && op != "/" {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "%":
			if ri == 0 {
				return nil, errf("22012", "division by zero")
			}
			return li % ri, nil
		}
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		return nil, errf("42804", "non-numeric operand to %q", op)
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if lIsInt && rIsInt {
			if rf == 0 {
				return nil, errf("22012", "division by zero")
			}
			return int64(lf / rf), nil // integer division
		}
		// float division follows IEEE 754: ±Infinity for x/0 (honoring the
		// sign of a zero divisor), NaN for 0/0 — the q dialect depends on
		// these values surviving rather than raising 22012
		return lf / rf, nil
	case "%":
		// math.Mod(x, 0) is NaN, the IEEE answer for a float modulus
		return math.Mod(lf, rf), nil
	}
	return nil, errf("0A000", "unsupported arithmetic %q", op)
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(pat, s string) bool {
	var pi, si, star, mark int
	star = -1
	for si < len(s) {
		if pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]) {
			pi++
			si++
			continue
		}
		if pi < len(pat) && pat[pi] == '%' {
			star = pi
			mark = si
			pi++
			continue
		}
		if star >= 0 {
			pi = star + 1
			mark++
			si = mark
			continue
		}
		return false
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

func castValue(v any, typ string) (any, error) {
	if v == nil {
		return nil, nil
	}
	switch typ {
	case "smallint", "integer", "bigint":
		switch x := v.(type) {
		case int64:
			return x, nil
		case float64:
			return int64(x), nil
		case string:
			n, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
			if err != nil {
				return nil, errf("22P02", "invalid integer %q", x)
			}
			return n, nil
		case bool:
			if x {
				return int64(1), nil
			}
			return int64(0), nil
		}
	case "real", "double precision", "numeric":
		switch x := v.(type) {
		case int64:
			return float64(x), nil
		case float64:
			return x, nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
			if err != nil {
				return nil, errf("22P02", "invalid number %q", x)
			}
			return f, nil
		}
	case "boolean":
		switch x := v.(type) {
		case bool:
			return x, nil
		case int64:
			return x != 0, nil
		case string:
			return ParseValue(x, "boolean")
		}
	case "varchar", "text":
		return FormatValue(v, "varchar"), nil
	case "date", "time", "timestamp", "interval":
		switch x := v.(type) {
		case int64:
			return x, nil
		case float64:
			return int64(x), nil
		case string:
			return ParseValue(x, typ)
		}
	}
	return nil, errf("42846", "cannot cast %T to %s", v, typ)
}

// evalScalarFunc evaluates non-aggregate, non-window function calls.
func (s *Session) evalScalarFunc(x *sqlparse.FuncCall, schema []colBinding, row []any, rowIdx int, winVals map[*sqlparse.FuncCall][]any) (any, error) {
	args := make([]any, len(x.Args))
	for i, a := range x.Args {
		v, err := s.evalExprWin(a, schema, row, rowIdx, winVals)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return applyScalarFunc(x.Name, args)
}

// applyScalarFunc applies a scalar function to already evaluated arguments.
// Shared by the interpreter and the compiled engine.
func applyScalarFunc(name string, args []any) (any, error) {
	switch name {
	case "coalesce":
		for _, a := range args {
			if a != nil {
				return a, nil
			}
		}
		return nil, nil
	case "nullif":
		if len(args) == 2 && args[0] != nil && args[1] != nil && equalVals(args[0], args[1]) {
			return nil, nil
		}
		return args[0], nil
	case "abs":
		if len(args) != 1 {
			return nil, errf("42883", "abs takes 1 argument")
		}
		switch n := args[0].(type) {
		case nil:
			return nil, nil
		case int64:
			if n < 0 {
				return -n, nil
			}
			return n, nil
		case float64:
			return math.Abs(n), nil
		}
		return nil, errf("42804", "abs of non-number")
	case "floor", "ceil", "ceiling", "round", "sqrt", "exp", "ln":
		if len(args) != 1 || args[0] == nil {
			if len(args) == 1 {
				return nil, nil
			}
			return nil, errf("42883", "%s takes 1 argument", name)
		}
		f, ok := toFloat(args[0])
		if !ok {
			return nil, errf("42804", "%s of non-number", name)
		}
		switch name {
		case "floor":
			return math.Floor(f), nil
		case "ceil", "ceiling":
			return math.Ceil(f), nil
		case "round":
			return math.Round(f), nil
		case "sqrt":
			return math.Sqrt(f), nil
		case "exp":
			return math.Exp(f), nil
		default:
			return math.Log(f), nil
		}
	case "power", "pow":
		if len(args) != 2 || args[0] == nil || args[1] == nil {
			return nil, nil
		}
		a, _ := toFloat(args[0])
		b, _ := toFloat(args[1])
		return math.Pow(a, b), nil
	case "upper", "lower", "trim", "btrim":
		if len(args) != 1 {
			return nil, errf("42883", "%s takes 1 argument", name)
		}
		if args[0] == nil {
			return nil, nil
		}
		str, ok := args[0].(string)
		if !ok {
			return nil, errf("42804", "%s of non-string", name)
		}
		switch name {
		case "upper":
			return strings.ToUpper(str), nil
		case "lower":
			return strings.ToLower(str), nil
		default:
			return strings.TrimSpace(str), nil
		}
	case "length", "char_length":
		if args[0] == nil {
			return nil, nil
		}
		str, ok := args[0].(string)
		if !ok {
			return nil, errf("42804", "length of non-string")
		}
		return int64(len(str)), nil
	case "substring", "substr":
		if len(args) < 2 || args[0] == nil {
			return nil, nil
		}
		str, _ := args[0].(string)
		from, _ := toFloat(args[1])
		start := int(from) - 1
		if start < 0 {
			start = 0
		}
		if start > len(str) {
			return "", nil
		}
		end := len(str)
		if len(args) == 3 {
			cnt, _ := toFloat(args[2])
			if start+int(cnt) < end {
				end = start + int(cnt)
			}
		}
		return str[start:end], nil
	case "greatest", "least":
		var best any
		for _, a := range args {
			if a == nil {
				continue
			}
			if best == nil {
				best = a
				continue
			}
			c := compareVals(a, best)
			if (name == "greatest" && c > 0) || (name == "least" && c < 0) {
				best = a
			}
		}
		return best, nil
	case "count", "sum", "avg", "min", "max", "stddev", "stddev_samp", "stddev_pop", "variance", "var_pop", "var_samp":
		return nil, errf("42803", "aggregate function %s called in non-aggregate context", name)
	default:
		return nil, errf("42883", "function %s does not exist", name)
	}
}
