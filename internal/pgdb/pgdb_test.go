package pgdb

import (
	"strings"
	"testing"
)

func newTestDB(t *testing.T) (*DB, *Session) {
	t.Helper()
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE trades (sym varchar, ts bigint, price double precision, size bigint)")
	mustExec(t, s, `INSERT INTO trades VALUES
		('GOOG', 1, 100.0, 10),
		('IBM',  2, 150.0, 20),
		('GOOG', 3, 101.0, 30),
		('IBM',  4, 151.0, 40),
		('GOOG', 5, 102.0, 50)`)
	return db, s
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT * FROM trades")
	if len(res.Rows) != 5 || len(res.Cols) != 4 {
		t.Fatalf("shape %dx%d", len(res.Rows), len(res.Cols))
	}
	if res.Tag != "SELECT 5" {
		t.Fatalf("tag = %q", res.Tag)
	}
}

func TestWhereFilter(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT price FROM trades WHERE sym = 'GOOG'")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].(float64) != 100.0 {
		t.Fatalf("first price = %v", res.Rows[0][0])
	}
}

func TestThreeValuedLogic(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (a bigint)")
	mustExec(t, s, "INSERT INTO t VALUES (1), (NULL), (3)")
	// NULL = NULL is unknown, so the row with NULL never matches a = a... but
	// WHERE a = NULL matches nothing at all:
	res := mustExec(t, s, "SELECT * FROM t WHERE a = NULL")
	if len(res.Rows) != 0 {
		t.Fatalf("a = NULL matched %d rows; 3VL broken", len(res.Rows))
	}
	// IS NOT DISTINCT FROM is null-safe (what Hyper-Q emits for Q equality)
	res = mustExec(t, s, "SELECT * FROM t WHERE a IS NOT DISTINCT FROM NULL")
	if len(res.Rows) != 1 {
		t.Fatalf("IS NOT DISTINCT FROM NULL matched %d rows", len(res.Rows))
	}
	res = mustExec(t, s, "SELECT * FROM t WHERE a IS NULL")
	if len(res.Rows) != 1 {
		t.Fatalf("IS NULL matched %d rows", len(res.Rows))
	}
}

func TestNullInExpressions(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (a bigint, b bigint)")
	mustExec(t, s, "INSERT INTO t VALUES (1, NULL)")
	res := mustExec(t, s, "SELECT a + b FROM t")
	if res.Rows[0][0] != nil {
		t.Fatalf("1 + NULL = %v, want NULL", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT COALESCE(b, 42) FROM t")
	if res.Rows[0][0].(int64) != 42 {
		t.Fatalf("coalesce = %v", res.Rows[0][0])
	}
}

func TestAggregates(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT COUNT(*), SUM(size), AVG(price), MIN(price), MAX(price) FROM trades")
	row := res.Rows[0]
	if row[0].(int64) != 5 || row[1].(int64) != 150 {
		t.Fatalf("count/sum = %v %v", row[0], row[1])
	}
	if row[3].(float64) != 100 || row[4].(float64) != 151 {
		t.Fatalf("min/max = %v %v", row[3], row[4])
	}
}

func TestAggregatesSkipNulls(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (a bigint)")
	mustExec(t, s, "INSERT INTO t VALUES (1), (NULL), (3)")
	res := mustExec(t, s, "SELECT COUNT(a), COUNT(*), SUM(a), AVG(a) FROM t")
	row := res.Rows[0]
	if row[0].(int64) != 2 || row[1].(int64) != 3 || row[2].(int64) != 4 || row[3].(float64) != 2 {
		t.Fatalf("agg row = %v", row)
	}
}

func TestGroupBy(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT sym, MAX(price) AS mx, SUM(size) AS tot FROM trades GROUP BY sym ORDER BY sym")
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][0].(string) != "GOOG" || res.Rows[0][1].(float64) != 102 || res.Rows[0][2].(int64) != 90 {
		t.Fatalf("GOOG group = %v", res.Rows[0])
	}
	if res.Rows[1][0].(string) != "IBM" || res.Rows[1][1].(float64) != 151 {
		t.Fatalf("IBM group = %v", res.Rows[1])
	}
}

func TestHaving(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT sym FROM trades GROUP BY sym HAVING SUM(size) > 70")
	if len(res.Rows) != 1 || res.Rows[0][0].(string) != "GOOG" {
		t.Fatalf("having = %v", res.Rows)
	}
}

func TestOrderByDirectionsAndNulls(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (a bigint)")
	mustExec(t, s, "INSERT INTO t VALUES (2), (NULL), (1)")
	res := mustExec(t, s, "SELECT a FROM t ORDER BY a")
	// PG default: NULLS LAST on ASC
	if res.Rows[0][0].(int64) != 1 || res.Rows[2][0] != nil {
		t.Fatalf("asc order = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT a FROM t ORDER BY a DESC")
	if res.Rows[0][0] != nil {
		t.Fatalf("desc should put nulls first, got %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT a FROM t ORDER BY a NULLS FIRST")
	if res.Rows[0][0] != nil {
		t.Fatalf("nulls first = %v", res.Rows)
	}
}

func TestLimitOffset(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT ts FROM trades ORDER BY ts LIMIT 2 OFFSET 1")
	if len(res.Rows) != 2 || res.Rows[0][0].(int64) != 2 {
		t.Fatalf("limit/offset = %v", res.Rows)
	}
}

func TestJoins(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE a (k bigint, x varchar)")
	mustExec(t, s, "CREATE TABLE b (k bigint, y varchar)")
	mustExec(t, s, "INSERT INTO a VALUES (1,'a1'), (2,'a2'), (3,'a3')")
	mustExec(t, s, "INSERT INTO b VALUES (1,'b1'), (3,'b3'), (3,'b3x')")
	res := mustExec(t, s, "SELECT a.x, b.y FROM a JOIN b ON a.k = b.k ORDER BY a.k")
	if len(res.Rows) != 3 {
		t.Fatalf("inner join rows = %d", len(res.Rows))
	}
	res = mustExec(t, s, "SELECT a.x, b.y FROM a LEFT JOIN b ON a.k = b.k ORDER BY a.k")
	if len(res.Rows) != 4 {
		t.Fatalf("left join rows = %d", len(res.Rows))
	}
	// unmatched left row has NULL right side
	foundNull := false
	for _, r := range res.Rows {
		if r[0].(string) == "a2" && r[1] == nil {
			foundNull = true
		}
	}
	if !foundNull {
		t.Fatal("left join should pad unmatched with NULL")
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE a (k bigint)")
	mustExec(t, s, "CREATE TABLE b (k bigint)")
	mustExec(t, s, "INSERT INTO a VALUES (NULL)")
	mustExec(t, s, "INSERT INTO b VALUES (NULL)")
	res := mustExec(t, s, "SELECT * FROM a JOIN b ON a.k = b.k")
	if len(res.Rows) != 0 {
		t.Fatal("NULL join keys must not match in SQL")
	}
}

func TestThreeTableJoin(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE a (k bigint)")
	mustExec(t, s, "CREATE TABLE b (k bigint)")
	mustExec(t, s, "CREATE TABLE c (k bigint)")
	mustExec(t, s, "INSERT INTO a VALUES (1), (2)")
	mustExec(t, s, "INSERT INTO b VALUES (1), (2)")
	mustExec(t, s, "INSERT INTO c VALUES (2)")
	res := mustExec(t, s, "SELECT a.k FROM a JOIN b ON a.k = b.k JOIN c ON b.k = c.k")
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 2 {
		t.Fatalf("3-table join = %v", res.Rows)
	}
}

func TestSubqueryInFrom(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT mx FROM (SELECT sym, MAX(price) AS mx FROM trades GROUP BY sym) sub ORDER BY mx")
	if len(res.Rows) != 2 || res.Rows[1][0].(float64) != 151 {
		t.Fatalf("subquery = %v", res.Rows)
	}
}

func TestScalarSubquery(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT sym FROM trades WHERE price > (SELECT AVG(price) FROM trades)")
	if len(res.Rows) != 2 {
		t.Fatalf("scalar subquery rows = %d", len(res.Rows))
	}
}

func TestWindowRowNumber(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT sym, ts, ROW_NUMBER() OVER (PARTITION BY sym ORDER BY ts) AS rn FROM trades ORDER BY ts")
	want := map[int64]int64{1: 1, 2: 1, 3: 2, 4: 2, 5: 3}
	for _, r := range res.Rows {
		if r[2].(int64) != want[r[1].(int64)] {
			t.Fatalf("row_number: ts=%v rn=%v", r[1], r[2])
		}
	}
}

func TestWindowAggregates(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT ts, SUM(size) OVER (PARTITION BY sym ORDER BY ts) AS run FROM trades ORDER BY ts")
	// GOOG: 10, 40(=10+30), 90; IBM: 20, 60
	want := map[int64]int64{1: 10, 2: 20, 3: 40, 4: 60, 5: 90}
	for _, r := range res.Rows {
		if r[1].(int64) != want[r[0].(int64)] {
			t.Fatalf("running sum: ts=%v run=%v want %v", r[0], r[1], want[r[0].(int64)])
		}
	}
}

func TestWindowLag(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT ts, LAG(price) OVER (PARTITION BY sym ORDER BY ts) FROM trades ORDER BY ts")
	if res.Rows[0][1] != nil { // first GOOG row has no predecessor
		t.Fatalf("lag first = %v", res.Rows[0][1])
	}
	if res.Rows[2][1].(float64) != 100 { // ts=3 GOOG, prev price 100
		t.Fatalf("lag = %v", res.Rows[2][1])
	}
}

func TestDistinct(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT DISTINCT sym FROM trades ORDER BY sym")
	if len(res.Rows) != 2 {
		t.Fatalf("distinct = %v", res.Rows)
	}
}

func TestUnion(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT sym FROM trades UNION SELECT sym FROM trades")
	if len(res.Rows) != 2 {
		t.Fatalf("union dedup = %d", len(res.Rows))
	}
	res = mustExec(t, s, "SELECT sym FROM trades UNION ALL SELECT sym FROM trades")
	if len(res.Rows) != 10 {
		t.Fatalf("union all = %d", len(res.Rows))
	}
}

func TestCaseExpression(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT CASE WHEN price > 120 THEN 'high' ELSE 'low' END AS band FROM trades ORDER BY ts")
	if res.Rows[0][0].(string) != "low" || res.Rows[1][0].(string) != "high" {
		t.Fatalf("case = %v", res.Rows)
	}
}

func TestCastAndConcat(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT CAST(price AS bigint), sym || '!' FROM trades WHERE ts = 1")
	if res.Rows[0][0].(int64) != 100 || res.Rows[0][1].(string) != "GOOG!" {
		t.Fatalf("cast/concat = %v", res.Rows[0])
	}
}

func TestTempTableLifecycle(t *testing.T) {
	db, s := newTestDB(t)
	mustExec(t, s, "CREATE TEMPORARY TABLE hq_temp_1 AS SELECT price FROM trades WHERE sym = 'GOOG'")
	res := mustExec(t, s, "SELECT MAX(price) FROM hq_temp_1")
	if res.Rows[0][0].(float64) != 102 {
		t.Fatalf("temp max = %v", res.Rows[0][0])
	}
	// temp table is session-scoped
	s2 := db.NewSession()
	if _, err := s2.Exec("SELECT * FROM hq_temp_1"); err == nil {
		t.Fatal("temp table visible from another session")
	}
	s.Close()
	if _, err := s.Exec("SELECT * FROM hq_temp_1"); err == nil {
		t.Fatal("temp table survived session close")
	}
}

func TestViews(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE VIEW goog AS SELECT * FROM trades WHERE sym = 'GOOG'")
	res := mustExec(t, s, "SELECT COUNT(*) FROM goog")
	if res.Rows[0][0].(int64) != 3 {
		t.Fatalf("view count = %v", res.Rows[0][0])
	}
	// views are logical: new inserts show through
	mustExec(t, s, "INSERT INTO trades VALUES ('GOOG', 6, 103.0, 60)")
	res = mustExec(t, s, "SELECT COUNT(*) FROM goog")
	if res.Rows[0][0].(int64) != 4 {
		t.Fatalf("view after insert = %v", res.Rows[0][0])
	}
	mustExec(t, s, "DROP VIEW goog")
	if _, err := s.Exec("SELECT * FROM goog"); err == nil {
		t.Fatal("dropped view still resolvable")
	}
}

func TestUpdateDelete(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "UPDATE trades SET price = price * 2 WHERE sym = 'IBM'")
	if res.Tag != "UPDATE 2" {
		t.Fatalf("update tag = %q", res.Tag)
	}
	r2 := mustExec(t, s, "SELECT price FROM trades WHERE sym = 'IBM' ORDER BY ts")
	if r2.Rows[0][0].(float64) != 300 {
		t.Fatalf("updated price = %v", r2.Rows[0][0])
	}
	res = mustExec(t, s, "DELETE FROM trades WHERE sym = 'GOOG'")
	if res.Tag != "DELETE 3" {
		t.Fatalf("delete tag = %q", res.Tag)
	}
}

func TestInformationSchema(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT column_name, data_type FROM information_schema.columns WHERE table_name = 'trades' ORDER BY ordinal_position")
	if len(res.Rows) != 4 {
		t.Fatalf("info schema rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].(string) != "sym" || res.Rows[2][1].(string) != "double precision" {
		t.Fatalf("info schema = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT table_name FROM information_schema.tables WHERE table_name = 'trades'")
	if len(res.Rows) != 1 {
		t.Fatalf("tables = %v", res.Rows)
	}
}

func TestErrorsCarrySQLSTATE(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	_, err := s.Exec("SELECT * FROM missing_table")
	if err == nil {
		t.Fatal("missing table should error")
	}
	pe, ok := err.(*Error)
	if !ok || pe.Code != "42P01" {
		t.Fatalf("err = %v", err)
	}
	_, err = s.Exec("SELECT nosuchcol FROM trades")
	if err == nil {
		t.Fatal("missing column should error")
	}
	mustExec(t, s, "CREATE TABLE t (a bigint)")
	_, err = s.Exec("SELECT 1/0 FROM t")
	if err != nil {
		t.Fatal("1/0 over empty table should not evaluate")
	}
	mustExec(t, s, "INSERT INTO t VALUES (1)")
	_, err = s.Exec("SELECT 1/0 FROM t")
	if err == nil || !strings.Contains(err.Error(), "22012") {
		t.Fatalf("division by zero = %v", err)
	}
}

func TestLikePatterns(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT DISTINCT sym FROM trades WHERE sym LIKE 'G%'")
	if len(res.Rows) != 1 || res.Rows[0][0].(string) != "GOOG" {
		t.Fatalf("like = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT DISTINCT sym FROM trades WHERE sym LIKE '_BM'")
	if len(res.Rows) != 1 || res.Rows[0][0].(string) != "IBM" {
		t.Fatalf("like underscore = %v", res.Rows)
	}
}

func TestInBetween(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT COUNT(*) FROM trades WHERE ts IN (1, 3, 5)")
	if res.Rows[0][0].(int64) != 3 {
		t.Fatalf("in = %v", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM trades WHERE price BETWEEN 100 AND 102")
	if res.Rows[0][0].(int64) != 3 {
		t.Fatalf("between = %v", res.Rows[0][0])
	}
}

func TestFormatParseValuesRoundTrip(t *testing.T) {
	cases := []struct {
		v   any
		typ string
		s   string
	}{
		{int64(42), "bigint", "42"},
		{3.25, "double precision", "3.25"},
		{true, "boolean", "t"},
		{"hello", "varchar", "hello"},
		{int64(8961), "date", "2024-07-14"}, // days since 2000-01-01
		{int64(34200000), "time", "09:30:00.000"},
	}
	for _, c := range cases {
		got := FormatValue(c.v, c.typ)
		if got != c.s {
			t.Errorf("FormatValue(%v, %s) = %q, want %q", c.v, c.typ, got, c.s)
			continue
		}
		back, err := ParseValue(got, c.typ)
		if err != nil {
			t.Errorf("ParseValue(%q, %s): %v", got, c.typ, err)
			continue
		}
		if compareVals(back, c.v) != 0 {
			t.Errorf("round trip %v -> %q -> %v", c.v, got, back)
		}
	}
}

func TestOrderByPosition(t *testing.T) {
	_, s := newTestDB(t)
	res := mustExec(t, s, "SELECT sym, price FROM trades ORDER BY 2 DESC LIMIT 1")
	if res.Rows[0][1].(float64) != 151 {
		t.Fatalf("order by position = %v", res.Rows[0])
	}
}

func TestExecScript(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	results, err := s.ExecScript("CREATE TABLE x (a bigint); INSERT INTO x VALUES (1),(2); SELECT COUNT(*) FROM x")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || results[2].Rows[0][0].(int64) != 2 {
		t.Fatalf("script results = %v", results)
	}
}

func TestCrossJoinCommaFrom(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE a (x bigint)")
	mustExec(t, s, "CREATE TABLE b (y bigint)")
	mustExec(t, s, "INSERT INTO a VALUES (1),(2)")
	mustExec(t, s, "INSERT INTO b VALUES (10),(20)")
	res := mustExec(t, s, "SELECT x, y FROM a, b")
	if len(res.Rows) != 4 {
		t.Fatalf("cross join = %d rows", len(res.Rows))
	}
}
