package pgdb

import (
	"strings"

	"hyperq/internal/pgdb/sqlparse"
)

// inferType derives an output column type from an expression shape; when
// the shape is inconclusive it returns "unknown" and refineTypes fixes it
// from the data.
func (s *Session) inferType(e sqlparse.Expr, schema []colBinding) string {
	switch x := e.(type) {
	case *sqlparse.NumberLit:
		if strings.ContainsAny(x.Text, ".eE") {
			return "double precision"
		}
		return "bigint"
	case *sqlparse.StringLit:
		return "varchar"
	case *sqlparse.BoolLit:
		return "boolean"
	case *sqlparse.NullLit:
		return "unknown"
	case *sqlparse.ColRef:
		if i, err := findCol(schema, x); err == nil {
			return schema[i].typ
		}
		return "unknown"
	case *sqlparse.CastExpr:
		return normalizeType(x.Type)
	case *sqlparse.UnaryExpr:
		if x.Op == "NOT" {
			return "boolean"
		}
		return s.inferType(x.X, schema)
	case *sqlparse.IsNullExpr:
		return "boolean"
	case *sqlparse.InExpr, *sqlparse.BetweenExpr:
		return "boolean"
	case *sqlparse.BinaryExpr:
		switch x.Op {
		case "AND", "OR", "=", "<>", "<", ">", "<=", ">=", "LIKE", "ILIKE",
			"IS DISTINCT FROM", "IS NOT DISTINCT FROM":
			return "boolean"
		case "||":
			return "varchar"
		case "/":
			return "double precision"
		default:
			lt := s.inferType(x.L, schema)
			rt := s.inferType(x.R, schema)
			if lt == "double precision" || rt == "double precision" ||
				lt == "real" || rt == "real" || lt == "numeric" || rt == "numeric" {
				return "double precision"
			}
			if IsTemporalType(lt) {
				return lt
			}
			if IsTemporalType(rt) {
				return rt
			}
			if lt == "unknown" || rt == "unknown" {
				return "unknown"
			}
			return "bigint"
		}
	case *sqlparse.CaseExpr:
		for _, w := range x.Whens {
			if t := s.inferType(w.Then, schema); t != "unknown" {
				return t
			}
		}
		if x.Else != nil {
			return s.inferType(x.Else, schema)
		}
		return "unknown"
	case *sqlparse.FuncCall:
		switch x.Name {
		case "count", "row_number", "rank", "dense_rank", "length", "char_length":
			return "bigint"
		case "avg", "stddev", "stddev_samp", "stddev_pop", "variance",
			"var_samp", "var_pop", "sqrt", "exp", "ln", "power", "pow",
			"floor", "ceil", "ceiling", "round", "median":
			return "double precision"
		case "sum", "min", "max", "lag", "lead", "first_value", "last_value",
			"abs", "first", "last":
			if len(x.Args) > 0 {
				return s.inferType(x.Args[0], schema)
			}
			return "unknown"
		case "coalesce", "nullif", "greatest", "least":
			// these return the widest of their arguments, not the first:
			// LEAST(i, 0.5) is double precision even though i is bigint
			out := "unknown"
			for _, a := range x.Args {
				t := s.inferType(a, schema)
				switch t {
				case "unknown":
				case "double precision", "real", "numeric":
					return "double precision"
				default:
					if out == "unknown" {
						out = t
					}
				}
			}
			return out
		case "upper", "lower", "trim", "btrim", "substring", "substr", "string_agg":
			return "varchar"
		case "bool_and", "bool_or":
			return "boolean"
		default:
			return "unknown"
		}
	case *sqlparse.SubqueryExpr:
		return "unknown"
	case *sqlparse.ValueLit:
		switch x.V.(type) {
		case int64:
			return "bigint"
		case float64:
			return "double precision"
		case bool:
			return "boolean"
		case string:
			return "varchar"
		default:
			return "unknown"
		}
	default:
		return "unknown"
	}
}

// refineTypes replaces "unknown" column types by inspecting actual values.
// It also widens integer columns that turn out to hold float values — shape
// inference is static and can miss promotions the evaluator performs.
func refineTypes(res *Result) {
	for i := range res.Cols {
		switch res.Cols[i].Type {
		case "bigint", "integer", "smallint":
			for _, row := range res.Rows {
				if _, ok := row[i].(float64); ok {
					res.Cols[i].Type = "double precision"
					break
				}
			}
			continue
		}
		if res.Cols[i].Type != "" && res.Cols[i].Type != "unknown" {
			continue
		}
		t := "varchar"
		for _, row := range res.Rows {
			switch row[i].(type) {
			case int64:
				t = "bigint"
			case float64:
				t = "double precision"
			case bool:
				t = "boolean"
			case string:
				t = "varchar"
			default:
				continue
			}
			break
		}
		res.Cols[i].Type = t
	}
}
