package pgdb

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"hyperq/internal/pgdb/sqlparse"
)

// colBinding is one column visible to expression evaluation, qualified by
// the table alias it came from.
type colBinding struct {
	table string
	name  string
	typ   string
}

func schemaOf(cols []Column, alias string) []colBinding {
	out := make([]colBinding, len(cols))
	for i, c := range cols {
		out[i] = colBinding{table: alias, name: c.Name, typ: c.Type}
	}
	return out
}

// relation is an intermediate result: bound columns plus materialized rows.
// store is non-nil only for an unfiltered base-table scan, where rows is the
// columnar store's row view and the vectorized executor may scan vectors.
// lazy marks a vectorized base-table scan whose row view has not been
// materialized yet (rows is nil); consumers that need boxed rows call
// rowsView first, so fully-pruned vector scans never fault evicted
// segments or box a cell.
type relation struct {
	schema []colBinding
	rows   [][]any
	store  *colStore
	lazy   bool
	// pass-through projection over a base table (the wrapper the Hyper-Q
	// translator puts around every q table expression): rows are the base
	// rows in base order with columns remapped — baseCols[i] names the base
	// column behind output column i — so store-backed access paths (the
	// as-of bucket cache, the prebuilt join side) survive the wrapper.
	base     *colStore
	baseCols []int
}

// rowsView returns the boxed row view, materializing it on first use for a
// lazy scan.
func (r *relation) rowsView() [][]any {
	if r.lazy {
		r.rows = r.store.rows()
		r.lazy = false
	}
	return r.rows
}

// execSelect runs the full select pipeline: FROM (with joins) → WHERE →
// GROUP/aggregate → HAVING → projection (with window functions) → DISTINCT
// → UNION → ORDER BY → LIMIT/OFFSET.
func (s *Session) execSelect(sel *sqlparse.SelectStmt, outer *relation) (*Result, error) {
	var rel *relation
	var err error
	whereConsumed := false
	if p := matchAsOfPattern(sel); p != nil {
		// rank-filter pushdown (see asof.go): the WHERE rn = 1 filter is
		// satisfied by construction
		rel, err = s.execAsOfFused(p)
		whereConsumed = true
	} else {
		rel, err = s.buildFrom(sel.From)
	}
	if err != nil {
		return nil, err
	}
	// WHERE — vectorized fast path first: a fully-lowerable predicate over a
	// base-table scan fills a selection bitmap straight from the column
	// vectors (zone maps skip segments). The bitmap either feeds the fused
	// aggregation below or late-materializes only the selected positions.
	var selBits []uint64
	vecScan := false
	if s.vectorizedMode() && rel.store != nil && !whereConsumed {
		if sel.Where == nil {
			vecScan = true
		} else if p, ok := lowerVecPred(sel.Where, rel.schema, rel.store); ok {
			selBits, err = s.evalVecPred(p, rel.store)
			if err != nil {
				return nil, err
			}
			vecScan = true
		}
	}
	if sel.Where != nil && !whereConsumed && !vecScan {
		if s.interpretedMode() {
			var kept [][]any
			for _, row := range rel.rowsView() {
				ok, err := s.rowMatches(sel.Where, rel.schema, row)
				if err != nil {
					return nil, err
				}
				if ok {
					kept = append(kept, row)
				}
			}
			rel.rows = kept
			rel.lazy = false
		} else {
			kept, err := s.filterRows(sel.Where, rel.schema, rel.rowsView())
			if err != nil {
				return nil, err
			}
			rel.rows = kept
			rel.lazy = false
		}
	}
	var res *Result
	if len(sel.GroupBy) > 0 || selectHasAggregate(sel) {
		switch {
		case vecScan:
			fused, ok, ferr := s.execGroupedVec(sel, rel, selBits)
			if ferr != nil {
				return nil, ferr
			}
			if ok {
				// ORDER BY probes the relation for alignment, so it must
				// see the filtered rows; otherwise the fused result is
				// self-contained and the filter need not materialize
				if len(sel.OrderBy) > 0 {
					rel.rows = materializeSel(rel.rowsView(), selBits)
					rel.lazy = false
				}
				res = fused
			} else {
				rel.rows = materializeSel(rel.rowsView(), selBits)
				rel.lazy = false
				res, err = s.execGroupedCompiled(sel, rel)
			}
			rel.store = nil
		case s.interpretedMode():
			res, err = s.execGrouped(sel, rel)
		default:
			res, err = s.execGroupedCompiled(sel, rel)
		}
	} else {
		if vecScan {
			fast, ok, ferr := s.projectVec(sel, rel, selBits)
			if ferr != nil {
				return nil, ferr
			}
			if ok {
				// ORDER BY may reference non-projected columns via the
				// aligned row view, so the filter must still materialize
				if len(sel.OrderBy) > 0 {
					rel.rows = materializeSel(rel.rowsView(), selBits)
					rel.lazy = false
				}
				res = fast
			} else {
				rel.rows = materializeSel(rel.rowsView(), selBits)
				rel.lazy = false
				res, err = s.project(sel, rel)
			}
			rel.store = nil
		} else {
			res, err = s.project(sel, rel)
		}
	}
	if err != nil {
		return nil, err
	}
	if sel.Distinct {
		res.Rows = dedupRows(res.Rows)
	}
	if sel.Union != nil {
		right, err := s.execSelect(sel.Union.Right, nil)
		if err != nil {
			return nil, err
		}
		if len(right.Cols) != len(res.Cols) {
			return nil, errf("42601", "UNION column count mismatch")
		}
		res.Rows = append(res.Rows, right.Rows...)
		if !sel.Union.All {
			res.Rows = dedupRows(res.Rows)
		}
	}
	if len(sel.OrderBy) > 0 {
		if err := s.orderResult(res, rel, sel); err != nil {
			return nil, err
		}
	}
	if sel.Offset != nil {
		n, err := s.constInt(sel.Offset)
		if err != nil {
			return nil, err
		}
		if int(n) < len(res.Rows) {
			res.Rows = res.Rows[n:]
		} else {
			res.Rows = nil
		}
	}
	if sel.Limit != nil {
		n, err := s.constInt(sel.Limit)
		if err != nil {
			return nil, err
		}
		if int(n) < len(res.Rows) {
			res.Rows = res.Rows[:n]
		}
	}
	return res, nil
}

func (s *Session) constInt(e sqlparse.Expr) (int64, error) {
	v, err := s.evalConst(e)
	if err != nil {
		return 0, err
	}
	switch x := v.(type) {
	case int64:
		return x, nil
	case float64:
		return int64(x), nil
	default:
		return 0, errf("42601", "LIMIT/OFFSET must be numeric")
	}
}

// buildFrom materializes the FROM clause (cross join of refs, each possibly
// a join tree).
func (s *Session) buildFrom(refs []sqlparse.TableRef) (*relation, error) {
	if len(refs) == 0 {
		// SELECT without FROM: one empty row
		return &relation{rows: [][]any{{}}}, nil
	}
	rel, err := s.buildRef(refs[0])
	if err != nil {
		return nil, err
	}
	for _, r := range refs[1:] {
		right, err := s.buildRef(r)
		if err != nil {
			return nil, err
		}
		rel = crossJoin(rel, right)
	}
	return rel, nil
}

func crossJoin(l, r *relation) *relation {
	out := &relation{schema: append(append([]colBinding{}, l.schema...), r.schema...)}
	for _, lr := range l.rowsView() {
		for _, rr := range r.rowsView() {
			row := make([]any, 0, len(lr)+len(rr))
			row = append(row, lr...)
			row = append(row, rr...)
			out.rows = append(out.rows, row)
		}
	}
	return out
}

func (s *Session) buildRef(ref sqlparse.TableRef) (*relation, error) {
	switch r := ref.(type) {
	case *sqlparse.BaseTable:
		res, err := s.resolveRelation(r.Schema, r.Name)
		if err != nil {
			return nil, err
		}
		alias := r.Alias
		if alias == "" {
			alias = r.Name
		}
		return &relation{schema: schemaOf(res.Cols, alias), rows: res.Rows, store: res.store, lazy: res.lazy}, nil
	case *sqlparse.SubqueryRef:
		res, err := s.execSelect(r.Query, nil)
		if err != nil {
			return nil, err
		}
		rel := &relation{schema: schemaOf(res.Cols, r.Alias), rows: res.Rows}
		rel.base, rel.baseCols = s.passThroughBase(r.Query)
		return rel, nil
	case *sqlparse.JoinRef:
		return s.buildJoin(r)
	default:
		return nil, errf("0A000", "unsupported table ref %T", ref)
	}
}

// passThroughBase reports whether a subquery is a bare column projection over
// a single base table — no filter, grouping, ordering, set op, or computed
// item — and if so returns the table's store plus the base column behind each
// output column. Such a subquery's rows are the base rows in base order, so
// row ids from the store's access paths stay valid against the projected view.
func (s *Session) passThroughBase(q *sqlparse.SelectStmt) (*colStore, []int) {
	if q.Distinct || q.Where != nil || len(q.GroupBy) != 0 || q.Having != nil ||
		len(q.OrderBy) != 0 || q.Limit != nil || q.Offset != nil || q.Union != nil ||
		len(q.From) != 1 {
		return nil, nil
	}
	bt, ok := q.From[0].(*sqlparse.BaseTable)
	if !ok || bt.Schema == "information_schema" || bt.Schema == "pg_catalog" {
		return nil, nil
	}
	t, ok := s.lookupTable(bt.Name)
	if !ok || t.store == nil {
		return nil, nil
	}
	alias := bt.Alias
	if alias == "" {
		alias = bt.Name
	}
	schema := schemaOf(t.cols, alias)
	items, err := expandStars(q.Items, schema)
	if err != nil {
		return nil, nil
	}
	cols := make([]int, len(items))
	for i, item := range items {
		cr, isCol := item.Expr.(*sqlparse.ColRef)
		if !isCol {
			return nil, nil
		}
		ci, err := findCol(schema, cr)
		if err != nil || ci >= len(t.store.cols) {
			return nil, nil
		}
		cols[i] = ci
	}
	return t.store, cols
}

// buildJoin executes a join tree. Equality joins use a hash table on the
// right side; everything else falls back to a nested loop.
func (s *Session) buildJoin(j *sqlparse.JoinRef) (*relation, error) {
	left, err := s.buildRef(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := s.buildRef(j.Right)
	if err != nil {
		return nil, err
	}
	if j.Type == sqlparse.CrossJoin {
		return crossJoin(left, right), nil
	}
	// joins are row-at-a-time: materialize lazy scans up front
	left.rowsView()
	right.rowsView()
	outSchema := append(append([]colBinding{}, left.schema...), right.schema...)
	out := &relation{schema: outSchema}

	// hash path: the ON clause contains col = col equalities across sides
	// (possibly null-safe); any remaining conjuncts — such as the b.time <=
	// a.time bound of a translated as-of join — evaluate as a residual
	// predicate over each candidate pair
	if lk, rk, nullSafe, residual, ok := extractHashKeys(j.On, left.schema, right.schema); ok {
		// prebuilt build side: a single-key join against an unfiltered base
		// scan — direct or behind a pass-through projection — probes the
		// column's hash index (built lazily, maintained by DML) instead of
		// hashing the right side per query. Postings are ascending row ids,
		// so match order is identical to the map build.
		var probeIdx *hashIdx
		if len(rk) == 1 && !s.interpretedMode() {
			ist, icol := right.store, rk[0]
			if ist == nil && right.base != nil {
				ist, icol = right.base, right.baseCols[rk[0]]
			}
			if ist != nil {
				if ix := s.hashIdxFor(ist, icol); ix != nil && ix.joinable() {
					probeIdx = ix
				}
			}
		}
		var index map[string][]int
		if probeIdx == nil {
			index = make(map[string][]int, len(right.rows))
			for i, rr := range right.rows {
				key, null := hashKey(rr, rk)
				if null && !nullSafe {
					continue // SQL: NULL keys never match under plain equality
				}
				index[key] = append(index[key], i)
			}
		}
		// the residual predicate (e.g. the b.time <= a.time bound of a
		// translated as-of join) compiles once for the whole probe loop
		var residualPred func(row []any) (bool, error)
		if residual != nil {
			residualPred = s.wherePred(residual, outSchema)
		}
		emit := func(lr []any, ri int) (bool, error) {
			row := append(append(make([]any, 0, len(lr)+len(right.rows[ri])), lr...), right.rows[ri]...)
			if residualPred != nil {
				ok, err := residualPred(row)
				if err != nil {
					return false, err
				}
				if !ok {
					return false, nil
				}
			}
			out.rows = append(out.rows, row)
			return true, nil
		}
		out.rows = make([][]any, 0, len(left.rows))
		for _, lr := range left.rows {
			if err := s.tick(); err != nil {
				return nil, err
			}
			matched := false
			if probeIdx != nil {
				for _, ri := range probeIdx.probeJoin(lr[lk[0]], nullSafe) {
					m, err := emit(lr, int(ri))
					if err != nil {
						return nil, err
					}
					matched = matched || m
				}
			} else {
				key, null := hashKey(lr, lk)
				if !null || nullSafe {
					for _, ri := range index[key] {
						m, err := emit(lr, ri)
						if err != nil {
							return nil, err
						}
						matched = matched || m
					}
				}
			}
			if !matched && (j.Type == sqlparse.LeftJoin || j.Type == sqlparse.FullJoin) {
				out.rows = append(out.rows, padRight(lr, len(right.schema)))
			}
		}
		if j.Type == sqlparse.RightJoin || j.Type == sqlparse.FullJoin {
			if err := s.appendUnmatchedRight(out, left, right, j.On); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	// nested loop
	onPred := s.wherePred(j.On, outSchema)
	for _, lr := range left.rows {
		matched := false
		for _, rr := range right.rows {
			row := append(append(make([]any, 0, len(lr)+len(rr)), lr...), rr...)
			ok, err := onPred(row)
			if err != nil {
				return nil, err
			}
			if ok {
				out.rows = append(out.rows, row)
				matched = true
			}
		}
		if !matched && (j.Type == sqlparse.LeftJoin || j.Type == sqlparse.FullJoin) {
			out.rows = append(out.rows, padRight(lr, len(right.schema)))
		}
	}
	if j.Type == sqlparse.RightJoin || j.Type == sqlparse.FullJoin {
		if err := s.appendUnmatchedRight(out, left, right, j.On); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (s *Session) appendUnmatchedRight(out *relation, left, right *relation, on sqlparse.Expr) error {
	outSchema := out.schema
	onPred := s.wherePred(on, outSchema)
	for _, rr := range right.rows {
		matched := false
		for _, lr := range left.rows {
			row := append(append(make([]any, 0, len(lr)+len(rr)), lr...), rr...)
			ok, err := onPred(row)
			if err != nil {
				return err
			}
			if ok {
				matched = true
				break
			}
		}
		if !matched {
			row := make([]any, len(left.schema), len(left.schema)+len(rr))
			row = append(row, rr...)
			out.rows = append(out.rows, row)
		}
	}
	return nil
}

func padRight(lr []any, rightWidth int) []any {
	row := append(make([]any, 0, len(lr)+rightWidth), lr...)
	for i := 0; i < rightWidth; i++ {
		row = append(row, nil)
	}
	return row
}

// extractHashKeys recognizes equality conjuncts of the form l.a = r.b (or
// IS NOT DISTINCT FROM) in the ON clause, returning the column indexes per
// side, whether the equalities are null-safe, and the AND of any remaining
// conjuncts as a residual predicate.
func extractHashKeys(on sqlparse.Expr, ls, rs []colBinding) (lk, rk []int, nullSafe bool, residual sqlparse.Expr, ok bool) {
	var conj []sqlparse.Expr
	var flatten func(e sqlparse.Expr)
	flatten = func(e sqlparse.Expr) {
		if b, isBin := e.(*sqlparse.BinaryExpr); isBin && b.Op == "AND" {
			flatten(b.L)
			flatten(b.R)
			return
		}
		conj = append(conj, e)
	}
	if on == nil {
		return nil, nil, false, nil, false
	}
	flatten(on)
	nullSafe = true
	var rest []sqlparse.Expr
	for _, c := range conj {
		b, isBin := c.(*sqlparse.BinaryExpr)
		if isBin && (b.Op == "=" || b.Op == "IS NOT DISTINCT FROM") {
			lc, lok := b.L.(*sqlparse.ColRef)
			rc, rok := b.R.(*sqlparse.ColRef)
			if lok && rok {
				li, lerr := findCol(ls, lc)
				ri, rerr := findCol(rs, rc)
				if lerr == nil && rerr == nil {
					lk = append(lk, li)
					rk = append(rk, ri)
					if b.Op == "=" {
						nullSafe = false
					}
					continue
				}
				// reversed sides
				li, lerr = findCol(ls, rc)
				ri, rerr = findCol(rs, lc)
				if lerr == nil && rerr == nil {
					lk = append(lk, li)
					rk = append(rk, ri)
					if b.Op == "=" {
						nullSafe = false
					}
					continue
				}
			}
		}
		rest = append(rest, c)
	}
	if len(lk) == 0 {
		return nil, nil, false, nil, false
	}
	for _, r := range rest {
		if residual == nil {
			residual = r
		} else {
			residual = &sqlparse.BinaryExpr{Op: "AND", L: residual, R: r}
		}
	}
	return lk, rk, nullSafe, residual, true
}

func findCol(schema []colBinding, c *sqlparse.ColRef) (int, error) {
	found := -1
	for i, b := range schema {
		if b.name != c.Name {
			continue
		}
		if c.Table != "" && b.table != c.Table {
			continue
		}
		if found >= 0 {
			return 0, errf("42702", "column reference %q is ambiguous", c.Name)
		}
		found = i
	}
	if found < 0 {
		return 0, errf("42703", "column %q does not exist", colRefName(c))
	}
	return found, nil
}

func colRefName(c *sqlparse.ColRef) string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

func hashKey(row []any, keys []int) (string, bool) {
	vals := make([]any, len(keys))
	for i, k := range keys {
		if row[k] == nil {
			return "", true
		}
		vals[i] = row[k]
	}
	return keyString(vals), false
}

func dedupRows(rows [][]any) [][]any {
	seen := map[string]bool{}
	var out [][]any
	for _, r := range rows {
		k := keyString(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// project evaluates the select items over each row (no grouping), computing
// window functions first.
func (s *Session) project(sel *sqlparse.SelectStmt, rel *relation) (*Result, error) {
	items, err := expandStars(sel.Items, rel.schema)
	if err != nil {
		return nil, err
	}
	rel.rowsView() // generic projection is row-at-a-time
	winVals, err := s.computeWindows(items, rel)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for _, item := range items {
		res.Cols = append(res.Cols, Column{
			Name: itemName(item, rel.schema),
			Type: s.inferType(item.Expr, rel.schema),
		})
	}
	if s.interpretedMode() {
		for ri, row := range rel.rows {
			if err := s.tick(); err != nil {
				return nil, err
			}
			out := make([]any, len(items))
			for i, item := range items {
				v, err := s.evalExprWin(item.Expr, rel.schema, row, ri, winVals)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			res.Rows = append(res.Rows, out)
		}
		refineTypes(res)
		return res, nil
	}
	// compiled: each item lowers once; the output buffer is preallocated
	fns := make([]exprFn, len(items))
	for i, item := range items {
		fns[i] = compileExpr(item.Expr, rel.schema).fn
	}
	ec := &evalCtx{s: s, winVals: winVals}
	res.Rows = make([][]any, 0, len(rel.rows))
	for ri, row := range rel.rows {
		if err := s.tick(); err != nil {
			return nil, err
		}
		ec.rowIdx = ri
		out := make([]any, len(items))
		for i, fn := range fns {
			v, err := fn(ec, row)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	refineTypes(res)
	return res, nil
}

// projectVec is the late-materialization fast path for a vectorized scan:
// when every output item is a bare column reference, the result is built
// straight from the selection bitmap over the row view — one arena-backed
// output row per selected position, no intermediate filtered slice and no
// per-row closure dispatch. Returns ok=false (and no error) for any shape
// it does not handle, deferring both work and error surfacing to the
// generic projection path.
func (s *Session) projectVec(sel *sqlparse.SelectStmt, rel *relation, selBits []uint64) (*Result, bool, error) {
	items, err := expandStars(sel.Items, rel.schema)
	if err != nil {
		return nil, false, nil
	}
	cols := make([]int, len(items))
	for i, item := range items {
		cr, ok := item.Expr.(*sqlparse.ColRef)
		if !ok {
			return nil, false, nil
		}
		c, err := findCol(rel.schema, cr)
		if err != nil {
			return nil, false, nil
		}
		cols[i] = c
	}
	res := &Result{}
	for _, item := range items {
		res.Cols = append(res.Cols, Column{
			Name: itemName(item, rel.schema),
			Type: s.inferType(item.Expr, rel.schema),
		})
	}
	// A lazy scan projects straight from the column store: only segments
	// holding selected rows are touched, so a selection the zone maps fully
	// pruned leaves evicted segments on disk and boxes nothing else.
	lazy := rel.lazy
	var src [][]any
	nsrc := 0
	if lazy {
		nsrc = rel.store.numRows()
	} else {
		src = rel.rows
		nsrc = len(src)
	}
	nsel := nsrc
	if selBits != nil {
		nsel = popCount(selBits)
	}
	st := rel.store
	backing := make([]any, nsel*len(cols))
	res.Rows = make([][]any, 0, nsel)
	emit := func(i int) {
		out := backing[:len(cols):len(cols)]
		backing = backing[len(cols):]
		if lazy {
			// fault only the projected columns of the row's segment, in one
			// loader call per cold segment
			seg := st.segCols(i/segSize, cols)
			pos := i % segSize
			for k, c := range cols {
				out[k] = seg.vecs[c].get(pos)
			}
		} else {
			row := src[i]
			for k, c := range cols {
				out[k] = row[c]
			}
		}
		res.Rows = append(res.Rows, out)
	}
	if selBits == nil {
		for i := 0; i < nsrc; i++ {
			if err := s.tick(); err != nil {
				return nil, false, err
			}
			emit(i)
		}
	} else {
		for w, word := range selBits {
			for word != 0 {
				i := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if err := s.tick(); err != nil {
					return nil, false, err
				}
				emit(i)
			}
		}
	}
	refineTypes(res)
	return res, true, nil
}

// expandStars replaces * and t.* with explicit column refs.
func expandStars(items []sqlparse.SelectItem, schema []colBinding) ([]sqlparse.SelectItem, error) {
	var out []sqlparse.SelectItem
	for _, item := range items {
		if !item.Star {
			out = append(out, item)
			continue
		}
		for _, b := range schema {
			if item.StarTable != "" && b.table != item.StarTable {
				continue
			}
			out = append(out, sqlparse.SelectItem{
				Expr:  &sqlparse.ColRef{Table: b.table, Name: b.name},
				Alias: b.name,
			})
		}
	}
	if len(out) == 0 {
		return nil, errf("42601", "empty select list")
	}
	return out, nil
}

func itemName(item sqlparse.SelectItem, schema []colBinding) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *sqlparse.ColRef:
		return e.Name
	case *sqlparse.FuncCall:
		return e.Name
	case *sqlparse.CastExpr:
		if c, ok := e.X.(*sqlparse.ColRef); ok {
			return c.Name
		}
		return e.Type
	default:
		return "?column?"
	}
}

// orderResult sorts the result rows. Order keys may reference output aliases
// or positions; otherwise they are evaluated against the source relation,
// whose rows are index-aligned with the output before ordering. Single-key
// sorts take a typed fast path (orderSingle); multi-key sorts run the
// generic boxed comparator below.
func (s *Session) orderResult(res *Result, rel *relation, sel *sqlparse.SelectStmt) error {
	n := len(res.Rows)
	aligned := len(rel.rows) == n
	if len(sel.OrderBy) == 1 {
		return s.orderSingle(res, rel, sel, aligned)
	}
	type keyed struct {
		out  []any
		keys []any
	}
	rows := make([]keyed, n)
	for i := range res.Rows {
		rows[i].out = res.Rows[i]
		rows[i].keys = make([]any, len(sel.OrderBy))
		for k, ob := range sel.OrderBy {
			v, err := s.orderKey(ob.Expr, res, rel, i, aligned)
			if err != nil {
				return err
			}
			rows[i].keys[k] = v
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for k, ob := range sel.OrderBy {
			av, bv := rows[a].keys[k], rows[b].keys[k]
			if av == nil && bv == nil {
				continue
			}
			nullsFirst := ob.Desc // PG default: NULLS LAST asc, NULLS FIRST desc
			if ob.NullsFirst != nil {
				nullsFirst = *ob.NullsFirst
			}
			if av == nil {
				return nullsFirst
			}
			if bv == nil {
				return !nullsFirst
			}
			c := compareVals(av, bv)
			if c == 0 {
				continue
			}
			if ob.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range rows {
		res.Rows[i] = rows[i].out
	}
	return nil
}

// orderSingle is the single-key ORDER BY path: keys extract once into a flat
// slice, an O(n) pre-check skips the sort entirely when the input is already
// ordered (a scan over a sorted attribute arrives that way), and otherwise a
// typed comparator sorts a row permutation — no per-row key slices, no boxed
// comparison when the key column is uniformly numeric or string.
func (s *Session) orderSingle(res *Result, rel *relation, sel *sqlparse.SelectStmt, aligned bool) error {
	n := len(res.Rows)
	ob := sel.OrderBy[0]
	keys := make([]any, n)
	for i := range res.Rows {
		v, err := s.orderKey(ob.Expr, res, rel, i, aligned)
		if err != nil {
			return err
		}
		keys[i] = v
	}
	nullsFirst := ob.Desc // PG default: NULLS LAST asc, NULLS FIRST desc
	if ob.NullsFirst != nil {
		nullsFirst = *ob.NullsFirst
	}
	less := singleKeyLess(keys, ob.Desc, nullsFirst)
	// already ordered ⇒ a stable sort is the identity permutation: skip it
	sortedAlready := true
	for i := 1; i < n; i++ {
		if less(i, i-1) {
			sortedAlready = false
			break
		}
	}
	if sortedAlready {
		return nil
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return less(perm[a], perm[b]) })
	out := make([][]any, n)
	for i, p := range perm {
		out[i] = res.Rows[p]
	}
	copy(res.Rows, out)
	return nil
}

// singleKeyLess builds the comparison the generic multi-key path would apply
// to one key, specialized by the keys' uniform type. Numeric keys (int64,
// float64, bool — everything toFloat accepts) compare exactly like
// compareVals does for them: as float64 with NaN equal to NaN and above all;
// string keys via strings.Compare. Mixed-type keys fall back to compareVals.
func singleKeyLess(keys []any, desc, nullsFirst bool) func(a, b int) bool {
	allNum, allStr := true, true
	for _, k := range keys {
		if k == nil {
			continue
		}
		if _, ok := toFloat(k); !ok {
			allNum = false
		}
		if _, ok := k.(string); !ok {
			allStr = false
		}
		if !allNum && !allStr {
			break
		}
	}
	var cmp func(a, b int) int
	switch {
	case allNum:
		fs := make([]float64, len(keys))
		nan := make([]bool, len(keys))
		for i, k := range keys {
			if k == nil {
				continue
			}
			f, _ := toFloat(k)
			fs[i], nan[i] = f, math.IsNaN(f)
		}
		cmp = func(a, b int) int {
			switch {
			case nan[a] && nan[b]:
				return 0
			case nan[a]:
				return 1
			case nan[b]:
				return -1
			case fs[a] < fs[b]:
				return -1
			case fs[a] > fs[b]:
				return 1
			}
			return 0
		}
	case allStr:
		ss := make([]string, len(keys))
		for i, k := range keys {
			if k != nil {
				ss[i] = k.(string)
			}
		}
		cmp = func(a, b int) int { return strings.Compare(ss[a], ss[b]) }
	default:
		cmp = func(a, b int) int { return compareVals(keys[a], keys[b]) }
	}
	return func(a, b int) bool {
		av, bv := keys[a], keys[b]
		if av == nil || bv == nil {
			if av == nil && bv == nil {
				return false
			}
			if av == nil {
				return nullsFirst
			}
			return !nullsFirst
		}
		c := cmp(a, b)
		if desc {
			return c > 0
		}
		return c < 0
	}
}

func (s *Session) orderKey(e sqlparse.Expr, res *Result, rel *relation, rowIdx int, aligned bool) (any, error) {
	// positional: ORDER BY 1
	if n, ok := e.(*sqlparse.NumberLit); ok && !strings.Contains(n.Text, ".") {
		var pos int
		fmt.Sscanf(n.Text, "%d", &pos)
		if pos >= 1 && pos <= len(res.Cols) {
			return res.Rows[rowIdx][pos-1], nil
		}
	}
	// output alias / column name
	if c, ok := e.(*sqlparse.ColRef); ok && c.Table == "" {
		for i, col := range res.Cols {
			if col.Name == c.Name {
				return res.Rows[rowIdx][i], nil
			}
		}
	}
	if aligned {
		return s.evalExpr(e, rel.schema, rel.rows[rowIdx])
	}
	return nil, errf("42703", "cannot resolve ORDER BY expression")
}
