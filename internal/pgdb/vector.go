package pgdb

import (
	"math"
	"math/bits"
	"sort"
	"strings"

	"hyperq/internal/pgdb/sqlparse"
)

// Vectorized predicate execution: lowerVecPred compiles a WHERE tree into a
// program of typed kernels that fill a selection bitmap over the column
// vectors, one segment at a time. Only shapes whose evaluation can never
// error are lowered (column-vs-constant comparisons, IS [NOT] NULL, IN and
// BETWEEN over constants, AND/OR composition), so the compiled row engine's
// error surface is preserved exactly: anything else falls back to the
// row-at-a-time filter.
//
// Soundness of the bitmap encoding: a WHERE keeps a row only when it
// evaluates to TRUE, so NULL and FALSE both map to an unset bit. That
// mapping commutes with AND/OR composition (NULL AND x, NULL OR FALSE are
// never TRUE; NULL OR TRUE is TRUE and the OR of the bitmaps sets the bit)
// — but not with NOT, which is therefore never lowered.
//
// Zone maps prune at the leaves: a comparison kernel skips a whole segment
// when the per-segment min/max bounds prove no row can match, and fills it
// without scanning when they prove every row matches and the segment has no
// nulls. The bounds are compared with compareVals — the same total order
// the row engines use — so pruning is exact by construction.

// segWords is the bitmap words per full segment (segSize is a multiple of
// 64, so each segment owns a word-aligned window of the global bitmap).
const segWords = segSize / 64

// vecPred evaluates one predicate node over a segment, writing the result
// into the segment's (zeroed) bitmap window.
//
// stubSeg is the metadata-only variant for evicted segments: it may use
// only per-vector metadata (kind, null count, zone bounds) and the row
// count. It returns true when that metadata fully decides the window —
// in which case the window holds the result — and false when a per-row
// scan is needed; a false return must leave the window untouched, since
// the caller then faults the segment in and runs evalSeg on the same
// window.
// cols reports every column index the predicate's evalSeg may touch, so the
// scan can fault in exactly those columns of an evicted segment (stubSeg
// needs only metadata and never faults).
type vecPred interface {
	evalSeg(seg *segment, out []uint64)
	stubSeg(seg *segment, out []uint64) bool
	cols(add func(int))
}

// predCols collects the sorted, de-duplicated referenced-column set of a
// lowered predicate.
func predCols(p vecPred) []int {
	seen := map[int]struct{}{}
	p.cols(func(c int) { seen[c] = struct{}{} })
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// --- bitmap helpers ---

func fillOnes(out []uint64, n int) {
	full := n / 64
	for w := 0; w < full; w++ {
		out[w] = ^uint64(0)
	}
	if rem := n % 64; rem > 0 {
		out[full] = (uint64(1) << uint(rem)) - 1
	}
}

// clearNulls unsets bits at the vector's null positions.
func clearNulls(out []uint64, v *colVec) {
	if v.nullCnt == 0 {
		return
	}
	for w := range out {
		out[w] &^= v.nullWord(w)
	}
}

func windowAllZero(out []uint64) bool {
	for _, w := range out {
		if w != 0 {
			return false
		}
	}
	return true
}

// popCount counts set bits in a bitmap.
func popCount(sel []uint64) int {
	n := 0
	for _, w := range sel {
		n += bits.OnesCount64(w)
	}
	return n
}

// materializeSel late-materializes the selected positions: only rows whose
// bit is set are gathered (by reference) from the row view. A nil bitmap
// selects everything.
func materializeSel(rows [][]any, sel []uint64) [][]any {
	if sel == nil {
		return rows
	}
	out := make([][]any, 0, popCount(sel))
	for wi, w := range sel {
		base := wi * 64
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			out = append(out, rows[i])
			w &= w - 1
		}
	}
	return out
}

// --- predicate nodes ---

type vecAnd struct{ l, r vecPred }

func (p *vecAnd) cols(add func(int)) { p.l.cols(add); p.r.cols(add) }

func (p *vecAnd) evalSeg(seg *segment, out []uint64) {
	p.l.evalSeg(seg, out)
	if windowAllZero(out) {
		return
	}
	var tmp [segWords]uint64
	t := tmp[:len(out)]
	p.r.evalSeg(seg, t)
	for w := range out {
		out[w] &= t[w]
	}
}

func (p *vecAnd) stubSeg(seg *segment, out []uint64) bool {
	var lt, rt [segWords]uint64
	l := lt[:len(out)]
	if !p.l.stubSeg(seg, l) {
		return false
	}
	if windowAllZero(l) {
		return true // AND with an empty side: the (zeroed) window is final
	}
	r := rt[:len(out)]
	if !p.r.stubSeg(seg, r) {
		return false
	}
	for w := range out {
		out[w] = l[w] & r[w]
	}
	return true
}

type vecOr struct{ l, r vecPred }

func (p *vecOr) cols(add func(int)) { p.l.cols(add); p.r.cols(add) }

func (p *vecOr) evalSeg(seg *segment, out []uint64) {
	p.l.evalSeg(seg, out)
	var tmp [segWords]uint64
	t := tmp[:len(out)]
	p.r.evalSeg(seg, t)
	for w := range out {
		out[w] |= t[w]
	}
}

func (p *vecOr) stubSeg(seg *segment, out []uint64) bool {
	var lt, rt [segWords]uint64
	l := lt[:len(out)]
	if !p.l.stubSeg(seg, l) {
		return false
	}
	r := rt[:len(out)]
	if !p.r.stubSeg(seg, r) {
		return false
	}
	for w := range out {
		out[w] = l[w] | r[w]
	}
	return true
}

// vecConst is a row-independent predicate: TRUE selects the whole segment,
// FALSE/NULL select nothing.
type vecConst struct{ all bool }

func (p *vecConst) cols(func(int)) {}

func (p *vecConst) evalSeg(seg *segment, out []uint64) {
	if p.all {
		fillOnes(out, seg.n)
	}
}

func (p *vecConst) stubSeg(seg *segment, out []uint64) bool {
	p.evalSeg(seg, out) // row-independent: needs only the row count
	return true
}

// vecIsNull lowers col IS [NOT] NULL straight off the null bitmap.
type vecIsNull struct {
	col int
	not bool
}

func (p *vecIsNull) cols(add func(int)) { add(p.col) }

func (p *vecIsNull) evalSeg(seg *segment, out []uint64) {
	v := &seg.vecs[p.col]
	if p.not {
		if v.nullCnt == 0 {
			fillOnes(out, seg.n)
			return
		}
		fillOnes(out, seg.n)
		for w := range out {
			out[w] &^= v.nullWord(w)
		}
		return
	}
	if v.nullCnt == 0 {
		return
	}
	var mask [segWords]uint64
	fillOnes(mask[:len(out)], seg.n)
	for w := range out {
		out[w] = v.nullWord(w) & mask[w]
	}
}

func (p *vecIsNull) stubSeg(seg *segment, out []uint64) bool {
	v := &seg.vecs[p.col]
	if v.nullCnt == 0 {
		if p.not {
			fillOnes(out, seg.n)
		}
		return true
	}
	if v.nullCnt == seg.n {
		if !p.not {
			fillOnes(out, seg.n)
		}
		return true
	}
	return false // mixed: needs the null bitmap
}

// vecColTrue lowers a bare boolean column predicate (WHERE flag): a row is
// kept only when the cell is boolean TRUE — non-bool values reject like the
// row engines' `b, ok := v.(bool); ok && b` keep test.
type vecColTrue struct{ col int }

func (p *vecColTrue) cols(add func(int)) { add(p.col) }

func (p *vecColTrue) evalSeg(seg *segment, out []uint64) {
	v := &seg.vecs[p.col]
	switch v.kind {
	case vkBool:
		for i, b := range v.bools[:seg.n] {
			if b {
				out[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		clearNulls(out, v)
	case vkAny:
		for i, cell := range v.anys[:seg.n] {
			if b, ok := cell.(bool); ok && b {
				out[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	// other kinds: no cell is boolean TRUE
}

func (p *vecColTrue) stubSeg(seg *segment, out []uint64) bool {
	v := &seg.vecs[p.col]
	switch v.kind {
	case vkBool:
		if v.nullCnt == seg.n {
			return true
		}
		if mx, ok := v.maxV.(bool); ok && !mx {
			return true // every non-null cell is FALSE
		}
		if mn, ok := v.minV.(bool); ok && mn && v.nullCnt == 0 {
			fillOnes(out, seg.n)
			return true
		}
		return false
	case vkAny:
		return false
	default:
		return true // no cell of this kind is boolean TRUE
	}
}

// vecCmp is a column-vs-constant comparison. The constant is pre-classified
// (numeric via toFloat, or string) so each segment scan runs a typed loop;
// kind/constant combinations that compareVals resolves by type name reduce
// to a constant verdict for the whole vector.
type vecCmp struct {
	col   int
	op    string // "=", "<>", "<", ">", "<=", ">="
	konst any    // non-nil
	test  func(int) bool
	kf    float64 // numeric form (int64/float64/bool constants)
	kfOK  bool
	kNaN  bool
	ks    string // string form
	ksOK  bool
	ktn   string // %T name of the constant, for mixed-type ordering
}

func (p *vecCmp) cols(add func(int)) { add(p.col) }

func newVecCmp(col int, op string, konst any) *vecCmp {
	p := &vecCmp{col: col, op: op, konst: konst}
	switch op {
	case "=":
		p.test = func(c int) bool { return c == 0 }
	case "<>":
		p.test = func(c int) bool { return c != 0 }
	case "<":
		p.test = func(c int) bool { return c < 0 }
	case ">":
		p.test = func(c int) bool { return c > 0 }
	case "<=":
		p.test = func(c int) bool { return c <= 0 }
	default:
		p.test = func(c int) bool { return c >= 0 }
	}
	if f, ok := toFloat(konst); ok {
		p.kf, p.kfOK = f, true
		p.kNaN = math.IsNaN(f)
	}
	if s, ok := konst.(string); ok {
		p.ks, p.ksOK = s, true
	}
	switch konst.(type) {
	case int64:
		p.ktn = "int64"
	case float64:
		p.ktn = "float64"
	case string:
		p.ktn = "string"
	case bool:
		p.ktn = "bool"
	}
	return p
}

// zoneSkip reports whether the zone bounds prove no non-null row matches;
// zoneAll reports whether they prove every non-null row matches. Both use
// compareVals(min/max, konst), so the verdicts agree with the per-row
// kernels for any value/constant type mix.
func (p *vecCmp) zoneVerdict(v *colVec) (skip, all bool) {
	if v.kind == vkAny || v.minV == nil {
		return false, false
	}
	lo := compareVals(v.minV, p.konst)
	hi := compareVals(v.maxV, p.konst)
	switch p.op {
	case "=":
		return lo > 0 || hi < 0, lo == 0 && hi == 0
	case "<>":
		return lo == 0 && hi == 0, hi < 0 || lo > 0
	case "<":
		return lo >= 0, hi < 0
	case "<=":
		return lo > 0, hi <= 0
	case ">":
		return hi <= 0, lo > 0
	default: // >=
		return hi < 0, lo >= 0
	}
}

// constVerdict fills the window for a comparison whose outcome is the same
// for every non-null row (mixed-type ordering, or NaN constants vs ints).
func (p *vecCmp) constVerdict(v *colVec, seg *segment, out []uint64, c int) {
	if !p.test(c) {
		return
	}
	fillOnes(out, seg.n)
	clearNulls(out, v)
}

func (p *vecCmp) stubSeg(seg *segment, out []uint64) bool {
	v := &seg.vecs[p.col]
	if v.kind == vkEmpty || v.nullCnt == seg.n {
		return true // no non-null values: a comparison is never TRUE
	}
	if skip, all := p.zoneVerdict(v); skip {
		return true
	} else if all && v.nullCnt == 0 {
		fillOnes(out, seg.n)
		return true
	}
	return false
}

func (p *vecCmp) evalSeg(seg *segment, out []uint64) {
	v := &seg.vecs[p.col]
	if v.kind == vkEmpty || v.nullCnt == seg.n {
		return // no non-null values: a comparison is never TRUE
	}
	if skip, all := p.zoneVerdict(v); skip {
		return
	} else if all && v.nullCnt == 0 {
		fillOnes(out, seg.n)
		return
	}
	test := p.test
	switch v.kind {
	case vkInt:
		switch {
		case p.kfOK && p.kNaN:
			p.constVerdict(v, seg, out, -1) // every number < NaN
		case p.kfOK:
			cmpIntKernel(p.op, v.ints[:seg.n], p.kf, out)
			clearNulls(out, v)
		default:
			p.constVerdict(v, seg, out, strings.Compare("int64", p.ktn))
		}
	case vkFloat:
		switch {
		case p.kfOK && p.kNaN:
			// NaN constant (rare): per-row compareVals verdict — NaN equals
			// NaN and exceeds every other value
			for i, f := range v.floats[:seg.n] {
				c := -1
				if math.IsNaN(f) {
					c = 0
				}
				if test(c) {
					out[i>>6] |= 1 << (uint(i) & 63)
				}
			}
			clearNulls(out, v)
		case p.kfOK:
			cmpFloatKernel(p.op, v.floats[:seg.n], p.kf, out)
			clearNulls(out, v)
		default:
			p.constVerdict(v, seg, out, strings.Compare("float64", p.ktn))
		}
	case vkStr:
		if p.ksOK {
			cmpStrKernel(p.op, v.strs[:seg.n], p.ks, out)
			clearNulls(out, v)
		} else {
			p.constVerdict(v, seg, out, strings.Compare("string", p.ktn))
		}
	case vkBool:
		if p.kfOK {
			kf, kNaN := p.kf, p.kNaN
			for i, b := range v.bools[:seg.n] {
				f := 0.0
				if b {
					f = 1.0
				}
				var c int
				switch {
				case kNaN:
					c = -1
				case f < kf:
					c = -1
				case f > kf:
					c = 1
				}
				if test(c) {
					out[i>>6] |= 1 << (uint(i) & 63)
				}
			}
			clearNulls(out, v)
		} else {
			p.constVerdict(v, seg, out, strings.Compare("bool", p.ktn))
		}
	case vkAny:
		konst := p.konst
		for i, cell := range v.anys[:seg.n] {
			if cell == nil {
				continue
			}
			if test(compareVals(cell, konst)) {
				out[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
}

// b2u turns a comparison result into a bitmap bit without a data-dependent
// branch: the compiler lowers this pattern to a flag-set instruction, so
// the kernels below stay fast on 50%-selective data where a branchy
// `if cond { set bit }` loop pays a mispredict per row.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// cmpFamily reduces the six comparison operators to three loop bodies plus
// a bitwise complement: "<>" is ^"=", ">=" is ^"<", ">" is ^"<=". The
// complement identities hold for NaN cells too — in compareVals order NaN
// compares greater than every non-NaN value, and the IEEE comparisons
// (f==k, f<k, f<=k with non-NaN k) are all false for a NaN cell, so the
// inverted families (">", ">=", "<>") correctly accept it.
func cmpFamily(op string) (family int, invert bool) {
	switch op {
	case "=":
		return 0, false
	case "<>":
		return 0, true
	case "<":
		return 1, false
	case ">=":
		return 1, true
	case "<=":
		return 2, false
	default: // ">"
		return 2, true
	}
}

// cmpIntKernel sets a bit per int cell whose comparison with the numeric
// constant holds. Cells are compared as float64, exactly like compareVals'
// toFloat path; the constant is known non-NaN here. Each 64-row block
// accumulates its bitmap word in a register — no per-element store and no
// data-dependent branch — then complements and masks the tail for the
// inverted operator families.
func cmpIntKernel(op string, xs []int64, k float64, out []uint64) {
	family, invert := cmpFamily(op)
	n := len(xs)
	for w := 0; w*64 < n; w++ {
		blk := xs[w*64 : min((w+1)*64, n)]
		var bw uint64
		switch family {
		case 0:
			for j, x := range blk {
				bw |= b2u(float64(x) == k) << uint(j)
			}
		case 1:
			for j, x := range blk {
				bw |= b2u(float64(x) < k) << uint(j)
			}
		case 2:
			for j, x := range blk {
				bw |= b2u(float64(x) <= k) << uint(j)
			}
		}
		if invert {
			bw = ^bw
			if len(blk) < 64 {
				bw &= 1<<uint(len(blk)) - 1
			}
		}
		out[w] |= bw
	}
}

// cmpFloatKernel is the float-column twin; see cmpFamily for why the
// complemented families give the right NaN verdicts.
func cmpFloatKernel(op string, fs []float64, k float64, out []uint64) {
	family, invert := cmpFamily(op)
	n := len(fs)
	for w := 0; w*64 < n; w++ {
		blk := fs[w*64 : min((w+1)*64, n)]
		var bw uint64
		switch family {
		case 0:
			for j, f := range blk {
				bw |= b2u(f == k) << uint(j)
			}
		case 1:
			for j, f := range blk {
				bw |= b2u(f < k) << uint(j)
			}
		case 2:
			for j, f := range blk {
				bw |= b2u(f <= k) << uint(j)
			}
		}
		if invert {
			bw = ^bw
			if len(blk) < 64 {
				bw &= 1<<uint(len(blk)) - 1
			}
		}
		out[w] |= bw
	}
}

// cmpStrKernel compares string cells with Go's native operators, which
// order byte-wise exactly like strings.Compare in compareVals. String
// comparison is not branch-predictable anyway, so the plain branchy form
// is kept here.
func cmpStrKernel(op string, ss []string, k string, out []uint64) {
	switch op {
	case "=":
		for i, s := range ss {
			if s == k {
				out[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	case "<>":
		for i, s := range ss {
			if s != k {
				out[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	case "<":
		for i, s := range ss {
			if s < k {
				out[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	case "<=":
		for i, s := range ss {
			if s <= k {
				out[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	case ">":
		for i, s := range ss {
			if s > k {
				out[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	case ">=":
		for i, s := range ss {
			if s >= k {
				out[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
}

// vecIn is col [NOT] IN (constants). A NULL member makes NOT IN never TRUE
// (handled at lowering); a plain IN ignores NULL members for the bitmap,
// since "no match but saw NULL" evaluates to NULL → unset either way.
type vecIn struct {
	col     int
	members []any // non-null members
	not     bool
	kfs     []float64 // numeric members (non-NaN)
	hasNaN  bool      // a NaN member (matches NaN cells: compareVals NaN = NaN)
	kss     []string  // string members
}

func (p *vecIn) cols(add func(int)) { add(p.col) }

func newVecIn(col int, members []any, not bool) *vecIn {
	p := &vecIn{col: col, members: members, not: not}
	for _, m := range members {
		if f, ok := toFloat(m); ok {
			if math.IsNaN(f) {
				p.hasNaN = true
			} else {
				p.kfs = append(p.kfs, f)
			}
		} else if s, ok := m.(string); ok {
			p.kss = append(p.kss, s)
		}
	}
	return p
}

func (p *vecIn) matchNum(f float64) bool {
	if math.IsNaN(f) {
		return p.hasNaN
	}
	for _, kf := range p.kfs {
		if f == kf {
			return true
		}
	}
	return false
}

func (p *vecIn) matchStr(s string) bool {
	for _, ks := range p.kss {
		if s == ks {
			return true
		}
	}
	return false
}

func (p *vecIn) zoneSkip(v *colVec) bool {
	if v.kind == vkAny || v.minV == nil {
		return false
	}
	for _, m := range p.members {
		if compareVals(m, v.minV) >= 0 && compareVals(m, v.maxV) <= 0 {
			return false
		}
	}
	return true // every member outside [min,max]: no cell can equal one
}

func (p *vecIn) stubSeg(seg *segment, out []uint64) bool {
	v := &seg.vecs[p.col]
	noMatch := v.kind == vkEmpty || v.nullCnt == seg.n || p.zoneSkip(v)
	if !p.not {
		return noMatch // IN with no possible match: window stays zero
	}
	if noMatch && v.nullCnt == 0 && v.kind != vkEmpty {
		// NOT IN where no member can match and every cell is non-null:
		// every row passes
		fillOnes(out, seg.n)
		return true
	}
	return false
}

func (p *vecIn) evalSeg(seg *segment, out []uint64) {
	v := &seg.vecs[p.col]
	var match [segWords]uint64
	m := match[:len(out)]
	if v.kind != vkEmpty && v.nullCnt != seg.n && !p.zoneSkip(v) {
		switch v.kind {
		case vkInt:
			for i, x := range v.ints[:seg.n] {
				if p.matchNum(float64(x)) {
					m[i>>6] |= 1 << (uint(i) & 63)
				}
			}
		case vkFloat:
			for i, f := range v.floats[:seg.n] {
				if p.matchNum(f) {
					m[i>>6] |= 1 << (uint(i) & 63)
				}
			}
		case vkStr:
			for i, s := range v.strs[:seg.n] {
				if p.matchStr(s) {
					m[i>>6] |= 1 << (uint(i) & 63)
				}
			}
		case vkBool:
			for i, b := range v.bools[:seg.n] {
				f := 0.0
				if b {
					f = 1.0
				}
				if p.matchNum(f) {
					m[i>>6] |= 1 << (uint(i) & 63)
				}
			}
		case vkAny:
			for i, cell := range v.anys[:seg.n] {
				if cell == nil {
					continue
				}
				for _, mem := range p.members {
					if equalVals(cell, mem) {
						m[i>>6] |= 1 << (uint(i) & 63)
						break
					}
				}
			}
		}
		clearNulls(m, v)
	}
	if !p.not {
		copy(out, m)
		return
	}
	// NOT IN: non-null and no match
	var mask [segWords]uint64
	fillOnes(mask[:len(out)], seg.n)
	for w := range out {
		out[w] = mask[w] &^ (m[w] | v.nullWord(w))
	}
}

// --- lowering ---

// vecConstOf folds a row-independent subexpression to its constant value
// (literal decoding, negation, casts over literals). Anything that is not
// provably constant and error-free — or that folds outside the engine's
// value domain, which the kernels' type dispatch assumes — refuses to lower.
func vecConstOf(e sqlparse.Expr, schema []colBinding) (any, bool) {
	c := compileExpr(e, schema)
	if !c.konst || !c.pure {
		return nil, false
	}
	v, err := c.fn(nil, nil)
	if err != nil {
		return nil, false
	}
	switch v.(type) {
	case nil, int64, float64, string, bool:
		return v, true
	}
	return nil, false
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	default: // =, <> are symmetric
		return op
	}
}

// lowerColRef resolves a ColRef against the scan schema, which is
// positionally identical to the store's columns for a base-table scan.
func lowerColRef(e sqlparse.Expr, schema []colBinding, st *colStore) (int, bool) {
	c, ok := e.(*sqlparse.ColRef)
	if !ok {
		return 0, false
	}
	i, err := findCol(schema, c)
	if err != nil || i >= len(st.cols) {
		return 0, false
	}
	return i, true
}

// lowerVecPred lowers a WHERE tree to a bitmap program. ok=false means some
// shape is unsupported (or could error at run time) and the caller must use
// the row-at-a-time filter.
func lowerVecPred(e sqlparse.Expr, schema []colBinding, st *colStore) (vecPred, bool) {
	switch x := e.(type) {
	case *sqlparse.BoolLit:
		return &vecConst{all: x.V}, true
	case *sqlparse.NullLit:
		return &vecConst{}, true
	case *sqlparse.ColRef:
		if col, ok := lowerColRef(x, schema, st); ok {
			return &vecColTrue{col: col}, true
		}
		return nil, false
	case *sqlparse.IsNullExpr:
		if col, ok := lowerColRef(x.X, schema, st); ok {
			return &vecIsNull{col: col, not: x.Not}, true
		}
		return nil, false
	case *sqlparse.InExpr:
		col, ok := lowerColRef(x.X, schema, st)
		if !ok {
			return nil, false
		}
		members := make([]any, 0, len(x.List))
		sawNull := false
		for _, le := range x.List {
			v, ok := vecConstOf(le, schema)
			if !ok {
				return nil, false
			}
			if v == nil {
				sawNull = true
				continue
			}
			members = append(members, v)
		}
		if x.Not && sawNull {
			// NOT IN with a NULL member is never TRUE (match → FALSE, no
			// match → NULL)
			return &vecConst{}, true
		}
		return newVecIn(col, members, x.Not), true
	case *sqlparse.BetweenExpr:
		col, ok := lowerColRef(x.X, schema, st)
		if !ok {
			return nil, false
		}
		lo, okLo := vecConstOf(x.Lo, schema)
		hi, okHi := vecConstOf(x.Hi, schema)
		if !okLo || !okHi {
			return nil, false
		}
		if lo == nil || hi == nil {
			return &vecConst{}, true // NULL bound: BETWEEN and NOT BETWEEN both yield NULL
		}
		if x.Not {
			return &vecOr{l: newVecCmp(col, "<", lo), r: newVecCmp(col, ">", hi)}, true
		}
		return &vecAnd{l: newVecCmp(col, ">=", lo), r: newVecCmp(col, "<=", hi)}, true
	case *sqlparse.BinaryExpr:
		switch x.Op {
		case "AND", "OR":
			l, ok := lowerVecPred(x.L, schema, st)
			if !ok {
				return nil, false
			}
			r, ok := lowerVecPred(x.R, schema, st)
			if !ok {
				return nil, false
			}
			if x.Op == "AND" {
				return &vecAnd{l: l, r: r}, true
			}
			return &vecOr{l: l, r: r}, true
		case "=", "<>", "<", ">", "<=", ">=":
			if col, ok := lowerColRef(x.L, schema, st); ok {
				if k, ok := vecConstOf(x.R, schema); ok {
					if k == nil {
						return &vecConst{}, true // comparison with NULL is never TRUE
					}
					return newVecCmp(col, x.Op, k), true
				}
				return nil, false
			}
			if col, ok := lowerColRef(x.R, schema, st); ok {
				if k, ok := vecConstOf(x.L, schema); ok {
					if k == nil {
						return &vecConst{}, true
					}
					return newVecCmp(col, flipOp(x.Op), k), true
				}
			}
			return nil, false
		case "IS NOT DISTINCT FROM", "IS DISTINCT FROM":
			// null-safe equality — the shape the Hyper-Q translator emits for
			// every q equality. The bitmap tracks TRUE rows only, so against a
			// non-NULL constant the NOT variant has exactly the "=" kernel's
			// TRUE set (a NULL cell is FALSE here, NULL there — unset either
			// way), while the plain variant additionally matches NULL cells.
			// The operator is symmetric, so no flip is needed.
			col, ok := lowerColRef(x.L, schema, st)
			ke := x.R
			if !ok {
				if col, ok = lowerColRef(x.R, schema, st); !ok {
					return nil, false
				}
				ke = x.L
			}
			k, ok := vecConstOf(ke, schema)
			if !ok {
				return nil, false
			}
			notDistinct := x.Op == "IS NOT DISTINCT FROM"
			if k == nil {
				return &vecIsNull{col: col, not: !notDistinct}, true
			}
			if notDistinct {
				return newVecCmp(col, "=", k), true
			}
			return &vecOr{l: newVecCmp(col, "<>", k), r: &vecIsNull{col: col}}, true
		}
		return nil, false
	default:
		return nil, false
	}
}
