package pgdb

import (
	"context"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hyperq/internal/pgdb/sqlparse"
)

// ExecMode selects which execution engine runs statements.
type ExecMode int32

const (
	// ExecCompiled is the default compile-then-execute engine: expressions
	// are lowered to closure chains once per query (compile.go) and run by
	// batched operators.
	ExecCompiled ExecMode = iota
	// ExecInterpreted retains the per-row AST-walking engine. It is kept as
	// the reference implementation for differential parity testing against
	// the compiled path (see internal/sidebyside).
	ExecInterpreted
	// ExecVectorized is the compiled engine plus vector fast paths: WHERE
	// clauses that lower to bitmap kernels scan the column vectors directly
	// with zone-map segment skipping, and lowerable aggregations run fused
	// over the selection bitmap without materializing filtered rows. Shapes
	// that do not lower behave exactly as ExecCompiled.
	ExecVectorized
)

// storedTable is a heap table in the catalog. Data lives in a columnar
// store (colstore.go); row-at-a-time consumers read the memoized row view.
type storedTable struct {
	name  string
	cols  []Column
	store *colStore
}

// newStoredTable creates a table and bulk-loads the given rows. The table's
// access paths report to db's index counters.
func newStoredTable(db *DB, name string, cols []Column, rows [][]any) *storedTable {
	t := &storedTable{name: name, cols: cols, store: newColStore(cols)}
	t.store.ix.stats = &db.idxStats
	for _, r := range rows {
		t.store.appendRow(r)
	}
	return t
}

// storedView is a named view definition.
type storedView struct {
	name string
	sql  string
}

// DB is the embedded database: a catalog of tables and views plus the query
// engine. It is safe for concurrent use; statements take a coarse
// reader/writer lock — catalog-writing statements run exclusively, reads run
// concurrently — which is adequate for the analytics workloads this
// reproduction runs.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*storedTable
	views  map[string]*storedView
	// execMode and parallel are read per statement and settable at any time
	// (e.g. by a server flag), hence atomics rather than fields under mu.
	execMode atomic.Int32
	parallel atomic.Int32

	// stmtMu is the coarse statement lock: statements that mutate permanent
	// relations (DML, DDL) hold it exclusively for their whole execution;
	// everything else holds it shared. This closes the window where a
	// concurrent scan could observe a half-applied append or in-place
	// update — segment-granular parallel scans read vectors lock-free and
	// rely on it.
	stmtMu sync.RWMutex
	// journal, when set, receives every permanent-relation change under the
	// exclusive statement lock (see persist.go). afterStmt runs after each
	// top-level statement outside the lock.
	journal   Journal
	afterStmt func()

	// indexMinRows gates lazy hash-index builds (see SetIndexMinRows);
	// idxStats collects database-wide access-path counters.
	indexMinRows atomic.Int32
	idxStats     IndexStats
}

// NewDB creates an empty database. The default execution mode is
// ExecCompiled with no intra-query parallelism; secondary indexes build
// lazily once a table reaches DefaultIndexMinRows rows.
func NewDB() *DB {
	db := &DB{tables: map[string]*storedTable{}, views: map[string]*storedView{}}
	db.indexMinRows.Store(DefaultIndexMinRows)
	return db
}

// SetIndexMinRows sets the minimum table row count before a lazy hash-index
// build triggers on a qualifying lookup. 0 indexes every table; n < 0
// disables secondary indexes and the as-of bucket cache entirely.
func (db *DB) SetIndexMinRows(n int) {
	if n > math.MaxInt32 {
		n = math.MaxInt32
	}
	if n < 0 {
		n = -1
	}
	db.indexMinRows.Store(int32(n))
}

// IndexMinRows reports the lazy index-build threshold (-1 = disabled).
func (db *DB) IndexMinRows() int { return int(db.indexMinRows.Load()) }

// IndexStats exposes the database's access-path counters; the pointer stays
// valid for the database's lifetime.
func (db *DB) IndexStats() *IndexStats { return &db.idxStats }

// SetExecMode selects the execution engine for subsequent statements.
func (db *DB) SetExecMode(m ExecMode) { db.execMode.Store(int32(m)) }

// ExecutionMode reports the current execution engine.
func (db *DB) ExecutionMode() ExecMode { return ExecMode(db.execMode.Load()) }

// SetParallelism sets the worker count for intra-query parallelism on large
// scans. Values are clamped to [1, GOMAXPROCS]; 1 disables parallelism.
func (db *DB) SetParallelism(n int) {
	if max := runtime.GOMAXPROCS(0); n > max {
		n = max
	}
	if n < 1 {
		n = 1
	}
	db.parallel.Store(int32(n))
}

// Parallelism reports the current intra-query worker count (minimum 1).
func (db *DB) Parallelism() int {
	if n := int(db.parallel.Load()); n > 1 {
		return n
	}
	return 1
}

// interpretedMode reports whether the session's database runs the retained
// AST-walking engine instead of the compiled one.
func (s *Session) interpretedMode() bool {
	return s.db.ExecutionMode() == ExecInterpreted
}

// vectorizedMode reports whether vector fast paths are enabled on top of
// the compiled engine.
func (s *Session) vectorizedMode() bool {
	return s.db.ExecutionMode() == ExecVectorized
}

// Session is a connection-scoped view of the database holding temporary
// tables, which shadow catalog tables by name and disappear with the
// session — the substrate for Hyper-Q's physical materialization (§4.3).
type Session struct {
	db   *DB
	temp map[string]*storedTable
	// ctx is the context of the statement currently executing (installed by
	// ExecContext); tick polls it at row-batch boundaries. A session executes
	// one statement at a time, so a plain field suffices.
	ctx   context.Context
	ticks int
	// lockDepth tracks nested ExecStmt calls (view expansion re-enters the
	// executor): only the outermost acquires the database's statement lock.
	lockDepth int
}

// NewSession opens a session on the database.
func (db *DB) NewSession() *Session {
	return &Session{db: db, temp: map[string]*storedTable{}}
}

// Close drops all temporary tables of the session.
func (s *Session) Close() { s.temp = map[string]*storedTable{} }

// TempTableNames lists the session's temporary tables (sorted).
func (s *Session) TempTableNames() []string {
	out := make([]string, 0, len(s.temp))
	for n := range s.temp {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// lookupTable resolves a table name: session temp tables first, then the
// shared catalog.
func (s *Session) lookupTable(name string) (*storedTable, bool) {
	if t, ok := s.temp[name]; ok {
		return t, true
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	t, ok := s.db.tables[name]
	return t, ok
}

func (s *Session) lookupView(name string) (*storedView, bool) {
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	v, ok := s.db.views[name]
	return v, ok
}

// CreateTable registers a permanent table with the given schema, replacing
// any previous definition.
func (db *DB) CreateTable(name string, cols []Column) {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	db.mu.Lock()
	db.tables[name] = newStoredTable(db, name, cols, nil)
	db.mu.Unlock()
	if db.journal != nil {
		db.journal.JournalCreateTable(name, cols)
	}
}

// InsertRows bulk-loads rows into a permanent table.
func (db *DB) InsertRows(name string, rows [][]any) error {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	db.mu.Lock()
	t, ok := db.tables[name]
	db.mu.Unlock()
	if !ok {
		return errf("42P01", "relation %q does not exist", name)
	}
	for _, r := range rows {
		if len(r) != len(t.cols) {
			return errf("42601", "row width %d != %d columns", len(r), len(t.cols))
		}
	}
	for _, r := range rows {
		t.store.appendRow(r)
	}
	if db.journal != nil && len(rows) > 0 {
		return db.journal.JournalAppend(name, rows)
	}
	return nil
}

// TableNames lists permanent tables (sorted).
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TableColumns returns the schema of a table (or temp table via session).
func (db *DB) TableColumns(name string) ([]Column, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, false
	}
	return append([]Column(nil), t.cols...), true
}

// informationSchema serves the metadata queries the MDI issues (paper
// §3.2.3: binding resolves variables by querying the PG catalog).
func (s *Session) informationSchema(rel string) (*Result, error) {
	switch rel {
	case "tables":
		res := &Result{Cols: []Column{
			{Name: "table_schema", Type: "varchar"},
			{Name: "table_name", Type: "varchar"},
			{Name: "table_type", Type: "varchar"},
		}}
		s.db.mu.RLock()
		for _, t := range s.db.tables {
			res.Rows = append(res.Rows, []any{"public", t.name, "BASE TABLE"})
		}
		for _, v := range s.db.views {
			res.Rows = append(res.Rows, []any{"public", v.name, "VIEW"})
		}
		s.db.mu.RUnlock()
		for _, t := range s.temp {
			res.Rows = append(res.Rows, []any{"pg_temp", t.name, "LOCAL TEMPORARY"})
		}
		sortRowsByCol(res.Rows, 1)
		return res, nil
	case "columns":
		res := &Result{Cols: []Column{
			{Name: "table_schema", Type: "varchar"},
			{Name: "table_name", Type: "varchar"},
			{Name: "column_name", Type: "varchar"},
			{Name: "ordinal_position", Type: "bigint"},
			{Name: "data_type", Type: "varchar"},
		}}
		emit := func(schema string, t *storedTable) {
			for i, c := range t.cols {
				res.Rows = append(res.Rows, []any{schema, t.name, c.Name, int64(i + 1), c.Type})
			}
		}
		s.db.mu.RLock()
		for _, t := range s.db.tables {
			emit("public", t)
		}
		s.db.mu.RUnlock()
		for _, t := range s.temp {
			emit("pg_temp", t)
		}
		sortRowsByCol(res.Rows, 1)
		return res, nil
	default:
		return nil, errf("42P01", "relation information_schema.%s does not exist", rel)
	}
}

func sortRowsByCol(rows [][]any, col int) {
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i][col], rows[j][col]
		// NULLs first, then the engines' typed total order — bare string
		// assertions here used to collapse every non-string key to "" and
		// silently leave the rows unsorted.
		if a == nil || b == nil {
			return a == nil && b != nil
		}
		if c := compareVals(a, b); c != 0 {
			return c < 0
		}
		// secondary: ordinal position when present
		if len(rows[i]) > 3 {
			ai, aok := rows[i][3].(int64)
			bi, bok := rows[j][3].(int64)
			if aok && bok {
				return ai < bi
			}
		}
		return false
	})
}

// resolveRelation materializes a named relation: temp table, base table,
// view (re-executed), or information_schema virtual table.
func (s *Session) resolveRelation(schema, name string) (*Result, error) {
	if schema == "information_schema" {
		return s.informationSchema(name)
	}
	if schema == "pg_catalog" {
		// serve pg_tables as a simple compatibility view
		if name == "pg_tables" {
			res := &Result{Cols: []Column{
				{Name: "schemaname", Type: "varchar"},
				{Name: "tablename", Type: "varchar"},
			}}
			s.db.mu.RLock()
			for _, t := range s.db.tables {
				res.Rows = append(res.Rows, []any{"public", t.name})
			}
			s.db.mu.RUnlock()
			sortRowsByCol(res.Rows, 1)
			return res, nil
		}
		return nil, errf("42P01", "relation pg_catalog.%s does not exist", name)
	}
	if t, ok := s.lookupTable(name); ok {
		if s.vectorizedMode() {
			// lazy: the vectorized planner scans column vectors directly and
			// prunes segments by zone map, so the boxed row view — which
			// would fault every evicted segment — materializes only if a
			// consumer actually needs rows (relation.rowsView).
			return &Result{Cols: append([]Column(nil), t.cols...), store: t.store, lazy: true}, nil
		}
		return &Result{Cols: append([]Column(nil), t.cols...), Rows: t.store.rows(), store: t.store}, nil
	}
	if v, ok := s.lookupView(name); ok {
		// re-execute the view definition under the current statement's
		// context (s.ctx stays installed; going through Exec would reset it)
		stmt, err := sqlparse.Parse(v.sql)
		if err != nil {
			return nil, errf("42601", "%v", err)
		}
		return s.ExecStmt(stmt)
	}
	return nil, errf("42P01", "relation %q does not exist", strings.TrimSpace(name))
}
