package pgdb

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"hyperq/internal/pgdb/sqlparse"
)

// Fused filter+aggregate execution: when every aggregate slot of a grouped
// query is a plain single-column call and every GROUP BY key is a column
// reference, the aggregation folds directly over the column vectors and the
// selection bitmap — filtered rows are never materialized, group keys are
// encoded without fmt, and the accumulators run typed. The result assembly
// reuses the compiled path's machinery (compileAggExpr over pre-computed
// slot values, itemName/inferType/refineTypes, items-then-HAVING order), so
// output and error behavior are indistinguishable from execGroupedCompiled.

type fusedKind uint8

const (
	fStar fusedKind = iota // COUNT(*)
	fCount
	fSum
	fAvg
	fMin
	fMax
	fBoolAnd
	fBoolOr
	fFirst
	fLast
)

// fusedSlot is the vectorizable plan of one aggregate slot.
type fusedSlot struct {
	kind fusedKind
	col  int
	name string // the SQL function name, for error messages
}

// planFusedSlots maps every aggregate slot to a fused kind over a storage
// column; any slot outside the fusable set (DISTINCT, expression arguments,
// the stddev/median tail, argument-count errors) aborts fusion and the
// caller falls back to execGroupedCompiled.
func planFusedSlots(slots []aggSlot, schema []colBinding, st *colStore) ([]fusedSlot, bool) {
	out := make([]fusedSlot, len(slots))
	for i, slot := range slots {
		fc := slot.fc
		if fc.Star {
			out[i] = fusedSlot{kind: fStar}
			continue
		}
		if fc.Distinct || len(fc.Args) != 1 {
			return nil, false
		}
		var kind fusedKind
		switch fc.Name {
		case "count":
			kind = fCount
		case "sum":
			kind = fSum
		case "avg":
			kind = fAvg
		case "min":
			kind = fMin
		case "max":
			kind = fMax
		case "bool_and":
			kind = fBoolAnd
		case "bool_or":
			kind = fBoolOr
		case "first":
			kind = fFirst
		case "last":
			kind = fLast
		default:
			return nil, false
		}
		cr, ok := fc.Args[0].(*sqlparse.ColRef)
		if !ok {
			return nil, false
		}
		col, err := findCol(schema, cr)
		if err != nil || col >= len(st.cols) {
			return nil, false
		}
		out[i] = fusedSlot{kind: kind, col: col, name: fc.Name}
	}
	return out, true
}

// slotAcc is the running state of one fused aggregate within one group. The
// update methods replicate computeAggSlot's fold exactly: sum advances isum
// and fsum together with an all-int flag, avg folds in float, min/max keep
// the incumbent and replace only on strict compareVals improvement, the
// bool folds type-check every value, and the first error freezes the slot
// (surfaced lazily, only if the slot is referenced).
type slotAcc struct {
	n        int64 // non-null values folded
	isum     int64
	fsum     float64
	allInt   bool
	bacc     bool
	bestSet  bool
	bestKind vecKind
	besti    int64
	bestf    float64
	bests    string
	bestb    bool
	bestAny  any
	err      error
}

func (a *slotAcc) updSum(v *colVec, i int) {
	switch v.kind {
	case vkInt:
		x := v.ints[i]
		a.isum += x
		a.fsum += float64(x)
		a.n++
	case vkFloat:
		a.allInt = false
		a.fsum += v.floats[i]
		a.n++
	case vkBool:
		a.allInt = false
		if v.bools[i] {
			a.fsum++
		}
		a.n++
	case vkStr:
		a.err = errf("42804", "sum of non-number")
	case vkAny:
		if x, ok := v.anys[i].(int64); ok {
			a.isum += x
			a.fsum += float64(x)
			a.n++
			return
		}
		a.allInt = false
		f, ok := toFloat(v.anys[i])
		if !ok {
			a.err = errf("42804", "sum of non-number")
			return
		}
		a.fsum += f
		a.n++
	}
}

func (a *slotAcc) updAvg(v *colVec, i int) {
	switch v.kind {
	case vkInt:
		a.fsum += float64(v.ints[i])
	case vkFloat:
		a.fsum += v.floats[i]
	case vkBool:
		if v.bools[i] {
			a.fsum++
		}
	case vkStr:
		a.err = errf("42804", "avg of non-number")
		return
	case vkAny:
		f, ok := toFloat(v.anys[i])
		if !ok {
			a.err = errf("42804", "avg of non-number")
			return
		}
		a.fsum += f
	}
	a.n++
}

// cmpFloatVals is compareVals restricted to two floats (NaN equals itself
// and sorts above everything).
func cmpFloatVals(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return 1
	case bn:
		return -1
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func (a *slotAcc) boxedBest() any {
	switch a.bestKind {
	case vkInt:
		return a.besti
	case vkFloat:
		return a.bestf
	case vkStr:
		return a.bests
	case vkBool:
		return a.bestb
	default:
		return a.bestAny
	}
}

func (a *slotAcc) updMinMax(isMin bool, v *colVec, i int) {
	if !a.bestSet {
		a.bestSet = true
		a.bestKind = v.kind
		switch v.kind {
		case vkInt:
			a.besti = v.ints[i]
		case vkFloat:
			a.bestf = v.floats[i]
		case vkStr:
			a.bests = v.strs[i]
		case vkBool:
			a.bestb = v.bools[i]
		default:
			a.bestAny = v.anys[i]
		}
		return
	}
	if v.kind == a.bestKind {
		switch v.kind {
		case vkInt:
			// compareVals compares ints through float64, precision loss
			// included; replicated so ties break identically
			x, b := float64(v.ints[i]), float64(a.besti)
			if (isMin && x < b) || (!isMin && x > b) {
				a.besti = v.ints[i]
			}
			return
		case vkFloat:
			c := cmpFloatVals(v.floats[i], a.bestf)
			if (isMin && c < 0) || (!isMin && c > 0) {
				a.bestf = v.floats[i]
			}
			return
		case vkStr:
			c := strings.Compare(v.strs[i], a.bests)
			if (isMin && c < 0) || (!isMin && c > 0) {
				a.bests = v.strs[i]
			}
			return
		case vkBool:
			x, b := v.bools[i], a.bestb
			if (isMin && !x && b) || (!isMin && x && !b) {
				a.bestb = x
			}
			return
		}
	}
	// cross-kind (segment degradation, vkAny storage): full compareVals
	val := v.get(i)
	c := compareVals(val, a.boxedBest())
	if (isMin && c < 0) || (!isMin && c > 0) {
		a.bestKind = vkAny
		a.bestAny = val
	}
}

func (a *slotAcc) updBool(isAnd bool, name string, v *colVec, i int) {
	var b bool
	switch v.kind {
	case vkBool:
		b = v.bools[i]
	case vkAny:
		x, ok := v.anys[i].(bool)
		if !ok {
			a.err = errf("42804", "%s of non-boolean", name)
			return
		}
		b = x
	default:
		a.err = errf("42804", "%s of non-boolean", name)
		return
	}
	a.n++
	if isAnd {
		a.bacc = a.bacc && b
	} else {
		a.bacc = a.bacc || b
	}
}

// appendKeyCell appends one group-key cell in keyString's exact encoding
// ("%T:%v;", "\x00N;" for NULL) without going through fmt, so the fused
// path partitions and orders groups identically to the compiled path —
// including any collisions keyString itself would produce.
func appendKeyCell(buf []byte, v *colVec, i int) []byte {
	if v.isNull(i) {
		return append(buf, "\x00N;"...)
	}
	switch v.kind {
	case vkInt:
		buf = append(buf, "int64:"...)
		buf = strconv.AppendInt(buf, v.ints[i], 10)
	case vkFloat:
		buf = append(buf, "float64:"...)
		buf = strconv.AppendFloat(buf, v.floats[i], 'g', -1, 64)
	case vkStr:
		buf = append(buf, "string:"...)
		buf = append(buf, v.strs[i]...)
	case vkBool:
		buf = append(buf, "bool:"...)
		buf = strconv.AppendBool(buf, v.bools[i])
	case vkAny:
		switch x := v.anys[i].(type) {
		case int64:
			buf = append(buf, "int64:"...)
			buf = strconv.AppendInt(buf, x, 10)
		case float64:
			buf = append(buf, "float64:"...)
			buf = strconv.AppendFloat(buf, x, 'g', -1, 64)
		case string:
			buf = append(buf, "string:"...)
			buf = append(buf, x...)
		case bool:
			buf = append(buf, "bool:"...)
			buf = strconv.AppendBool(buf, x)
		default:
			// out-of-domain value: defer to fmt for the identical bytes
			buf = append(buf, fmt.Sprintf("%T:%v", x, x)...)
		}
	}
	return append(buf, ';')
}

// repRowCols computes the set of storage columns the compiled group items
// and HAVING clause can read from a group's representative row, mirroring
// compileAggExpr's dispatch exactly: aggregate calls read their slot (their
// arguments never touch the representative row), the scalar shapes it
// recurses into are analyzed structurally, and any other subtree evaluates
// whole against the representative row, contributing every column reference
// inside it. ok=false means the analysis met a shape it cannot bound
// (subqueries, unresolvable references) and the caller must materialize the
// full row.
func repRowCols(items []sqlparse.SelectItem, having sqlparse.Expr, schema []colBinding, st *colStore) ([]int, bool) {
	seen := map[int]struct{}{}
	ok := true
	collectAll := func(e sqlparse.Expr) {
		walkExpr(e, func(x sqlparse.Expr) {
			switch cr := x.(type) {
			case *sqlparse.ColRef:
				col, err := findCol(schema, cr)
				if err != nil || col >= len(st.cols) {
					ok = false
					return
				}
				seen[col] = struct{}{}
			case *sqlparse.SubqueryExpr:
				// walkExpr does not descend into the subquery's select, so
				// a correlated outer reference would be invisible here
				ok = false
			}
		})
	}
	var visit func(e sqlparse.Expr)
	visit = func(e sqlparse.Expr) {
		if e == nil {
			return
		}
		if fc, isAgg := e.(*sqlparse.FuncCall); isAgg && fc.Over == nil && aggregateNames[fc.Name] {
			return // slot lookup: no representative-row access
		}
		if !exprHasAggregate(e) {
			collectAll(e)
			return
		}
		switch x := e.(type) {
		case *sqlparse.FuncCall:
			for _, a := range x.Args {
				visit(a)
			}
		case *sqlparse.CaseExpr:
			visit(x.Operand)
			for _, cw := range x.Whens {
				visit(cw.Cond)
				visit(cw.Then)
			}
			visit(x.Else)
		case *sqlparse.IsNullExpr:
			visit(x.X)
		case *sqlparse.BinaryExpr:
			visit(x.L)
			visit(x.R)
		case *sqlparse.CastExpr:
			visit(x.X)
		case *sqlparse.UnaryExpr:
			visit(x.X)
		default:
			collectAll(e)
		}
	}
	for _, item := range items {
		visit(item.Expr)
	}
	visit(having)
	if !ok {
		return nil, false
	}
	cols := make([]int, 0, len(seen))
	for c := range seen {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	return cols, true
}

// vecGroup is one group's fused state: selection bookkeeping for COUNT(*),
// first/last and the representative row, plus one accumulator per slot.
type vecGroup struct {
	firstIdx int // global row index of the first selected row (-1: none)
	lastIdx  int
	n        int64
	accs     []slotAcc
}

// execGroupedVec runs the fused filter+aggregate path over the column store.
// ok=false means the query's shape is not fusable and the caller must
// materialize and fall back; err is a genuine execution error.
func (s *Session) execGroupedVec(sel *sqlparse.SelectStmt, rel *relation, selBits []uint64) (*Result, bool, error) {
	st := rel.store
	items, err := expandStars(sel.Items, rel.schema)
	if err != nil {
		return nil, false, err
	}
	slots, index := collectAggSlots(items, sel.Having, rel.schema)
	fused, ok := planFusedSlots(slots, rel.schema, st)
	if !ok {
		return nil, false, nil
	}
	keyCols := make([]int, len(sel.GroupBy))
	for i, ge := range sel.GroupBy {
		cr, ok := ge.(*sqlparse.ColRef)
		if !ok {
			return nil, false, nil
		}
		col, ferr := findCol(rel.schema, cr)
		if ferr != nil || col >= len(st.cols) {
			return nil, false, nil
		}
		keyCols[i] = col
	}

	// scanCols is the referenced-column set of the fused scan: group keys
	// plus every slot's input column. COUNT(*) reads no column, and
	// first/last read a single cell at finalize through cellAt, which is
	// already column-granular — so a pruned cold aggregate faults in only
	// these columns of each surviving segment.
	scanCols := append([]int(nil), keyCols...)
	for i := range fused {
		fs := &fused[i]
		if fs.kind == fStar || fs.kind == fFirst || fs.kind == fLast {
			continue
		}
		scanCols = append(scanCols, fs.col)
	}
	sort.Ints(scanCols)
	w := 0
	for i, c := range scanCols {
		if i == 0 || c != scanCols[w-1] {
			scanCols[w] = c
			w++
		}
	}
	scanCols = scanCols[:w]

	newGroup := func(idx int) *vecGroup {
		g := &vecGroup{firstIdx: idx, lastIdx: idx, accs: make([]slotAcc, len(fused))}
		for i := range fused {
			g.accs[i].allInt = true
			g.accs[i].bacc = fused[i].kind == fBoolAnd
		}
		return g
	}
	groups := map[string]*vecGroup{}
	var order []*vecGroup
	global := len(sel.GroupBy) == 0
	if global {
		// a global aggregate over empty input still yields one row
		g := newGroup(-1)
		order = append(order, g)
	}

	// The scan buffers each 64-row block's selected rows — in-segment
	// positions plus resolved groups — then folds slot by slot with the
	// aggregate/vector-kind dispatch hoisted out of the row loop. A block
	// never straddles a null-bitmap word, so each slot loads its null word
	// once per block. Per (group, slot) the fold order is unchanged from
	// row-at-a-time: ascending row within a block, blocks ascending.
	var ibuf [64]int32
	var gbuf [64]*vecGroup
	flushSlot := func(seg *segment, fs *fusedSlot, si, cnt int) {
		v := &seg.vecs[fs.col]
		nw := v.nullWord(int(ibuf[0]) >> 6)
		switch {
		case fs.kind == fCount:
			for k := 0; k < cnt; k++ {
				i := int(ibuf[k])
				if nw&(1<<(uint(i)&63)) != 0 {
					continue
				}
				acc := &gbuf[k].accs[si]
				if acc.err == nil {
					acc.n++
				}
			}
		case fs.kind == fSum && v.kind == vkInt:
			xs := v.ints
			for k := 0; k < cnt; k++ {
				i := int(ibuf[k])
				if nw&(1<<(uint(i)&63)) != 0 {
					continue
				}
				acc := &gbuf[k].accs[si]
				if acc.err != nil {
					continue
				}
				x := xs[i]
				acc.isum += x
				acc.fsum += float64(x)
				acc.n++
			}
		case fs.kind == fSum && v.kind == vkFloat:
			flt := v.floats
			for k := 0; k < cnt; k++ {
				i := int(ibuf[k])
				if nw&(1<<(uint(i)&63)) != 0 {
					continue
				}
				acc := &gbuf[k].accs[si]
				if acc.err != nil {
					continue
				}
				acc.allInt = false
				acc.fsum += flt[i]
				acc.n++
			}
		case fs.kind == fAvg && v.kind == vkInt:
			xs := v.ints
			for k := 0; k < cnt; k++ {
				i := int(ibuf[k])
				if nw&(1<<(uint(i)&63)) != 0 {
					continue
				}
				acc := &gbuf[k].accs[si]
				if acc.err != nil {
					continue
				}
				acc.fsum += float64(xs[i])
				acc.n++
			}
		case fs.kind == fAvg && v.kind == vkFloat:
			flt := v.floats
			for k := 0; k < cnt; k++ {
				i := int(ibuf[k])
				if nw&(1<<(uint(i)&63)) != 0 {
					continue
				}
				acc := &gbuf[k].accs[si]
				if acc.err != nil {
					continue
				}
				acc.fsum += flt[i]
				acc.n++
			}
		case (fs.kind == fMin || fs.kind == fMax) && v.kind == vkInt:
			isMin := fs.kind == fMin
			xs := v.ints
			for k := 0; k < cnt; k++ {
				i := int(ibuf[k])
				if nw&(1<<(uint(i)&63)) != 0 {
					continue
				}
				acc := &gbuf[k].accs[si]
				if acc.err != nil {
					continue
				}
				x := xs[i]
				if !acc.bestSet {
					acc.bestSet = true
					acc.bestKind = vkInt
					acc.besti = x
					continue
				}
				if acc.bestKind == vkInt {
					// float64 compare, replicating compareVals' precision
					xf, bf := float64(x), float64(acc.besti)
					if (isMin && xf < bf) || (!isMin && xf > bf) {
						acc.besti = x
					}
					continue
				}
				acc.updMinMax(isMin, v, i)
			}
		case (fs.kind == fMin || fs.kind == fMax) && v.kind == vkFloat:
			isMin := fs.kind == fMin
			flt := v.floats
			for k := 0; k < cnt; k++ {
				i := int(ibuf[k])
				if nw&(1<<(uint(i)&63)) != 0 {
					continue
				}
				acc := &gbuf[k].accs[si]
				if acc.err != nil {
					continue
				}
				f := flt[i]
				if !acc.bestSet {
					acc.bestSet = true
					acc.bestKind = vkFloat
					acc.bestf = f
					continue
				}
				if acc.bestKind == vkFloat {
					c := cmpFloatVals(f, acc.bestf)
					if (isMin && c < 0) || (!isMin && c > 0) {
						acc.bestf = f
					}
					continue
				}
				acc.updMinMax(isMin, v, i)
			}
		default:
			// string/bool/degraded vectors, bool_and/bool_or: per-row fold
			for k := 0; k < cnt; k++ {
				i := int(ibuf[k])
				if nw&(1<<(uint(i)&63)) != 0 {
					continue
				}
				acc := &gbuf[k].accs[si]
				if acc.err != nil {
					continue
				}
				switch fs.kind {
				case fSum:
					acc.updSum(v, i)
				case fAvg:
					acc.updAvg(v, i)
				case fMin:
					acc.updMinMax(true, v, i)
				case fMax:
					acc.updMinMax(false, v, i)
				case fBoolAnd:
					acc.updBool(true, fs.name, v, i)
				case fBoolOr:
					acc.updBool(false, fs.name, v, i)
				}
			}
		}
	}
	flush := func(seg *segment, cnt int) {
		if cnt == 0 {
			return
		}
		for si := range fused {
			fs := &fused[si]
			if fs.kind == fStar || fs.kind == fFirst || fs.kind == fLast {
				continue
			}
			flushSlot(seg, fs, si, cnt)
		}
	}

	// Single-column keys skip the keyString encoding entirely: the raw typed
	// value indexes a typed map. This partitions identically to keyString —
	// per value class the encoding is injective (shortest-round-trip float
	// formatting, raw string, decimal int), the classes land in disjoint
	// maps exactly like the "%T:" prefix separates them, every NaN bit
	// pattern collapses into one group just as "%v" renders them all "NaN",
	// and ±0.0 stay distinct ("0" vs "-0") because their bit patterns do.
	single := len(keyCols) == 1 && !global
	var (
		gInt                       map[int64]*vecGroup
		gFlt                       map[uint64]*vecGroup
		gStr                       map[string]*vecGroup
		gNaN, gNull, gTrue, gFalse *vecGroup
	)
	if single {
		gInt = map[int64]*vecGroup{}
		gFlt = map[uint64]*vecGroup{}
		gStr = map[string]*vecGroup{}
	}
	mkGroup := func(gi int) *vecGroup {
		g := newGroup(gi)
		order = append(order, g)
		return g
	}
	var keyBuf []byte
	ctx := s.ctx
	base := 0
	for segIdx := 0; segIdx < st.numSegs(); segIdx++ {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, true, fmt.Errorf("pgdb: query aborted: %w", cerr)
			}
		}
		segN := st.peekSeg(segIdx).n
		if selBits != nil {
			// a segment the selection bitmap fully prunes contributes no
			// rows: skip it before seg() faults an evicted segment in
			wbase := segIdx * segWords
			if windowAllZero(selBits[wbase : wbase+(segN+63)/64]) {
				base += segN
				continue
			}
		}
		seg := st.segCols(segIdx, scanCols)
		groupGeneric := func(i, gi int) *vecGroup {
			keyBuf = keyBuf[:0]
			for _, kc := range keyCols {
				keyBuf = appendKeyCell(keyBuf, &seg.vecs[kc], i)
			}
			g, ok := groups[string(keyBuf)]
			if !ok {
				g = newGroup(gi)
				groups[string(keyBuf)] = g
				order = append(order, g)
			}
			return g
		}
		var kv *colVec
		if single {
			kv = &seg.vecs[keyCols[0]]
		}
		groupTyped := func(val any, i, gi int) *vecGroup {
			switch x := val.(type) {
			case int64:
				g := gInt[x]
				if g == nil {
					g = mkGroup(gi)
					gInt[x] = g
				}
				return g
			case float64:
				if math.IsNaN(x) {
					if gNaN == nil {
						gNaN = mkGroup(gi)
					}
					return gNaN
				}
				b := math.Float64bits(x)
				g := gFlt[b]
				if g == nil {
					g = mkGroup(gi)
					gFlt[b] = g
				}
				return g
			case string:
				g := gStr[x]
				if g == nil {
					g = mkGroup(gi)
					gStr[x] = g
				}
				return g
			case bool:
				if x {
					if gTrue == nil {
						gTrue = mkGroup(gi)
					}
					return gTrue
				}
				if gFalse == nil {
					gFalse = mkGroup(gi)
				}
				return gFalse
			default:
				// out-of-domain value: such values only live in boxed
				// vectors, so the generic keyed map needs no unification
				// with the typed maps
				return groupGeneric(i, gi)
			}
		}
		groupOf := func(i int) *vecGroup {
			gi := base + i
			if global {
				g := order[0]
				if g.firstIdx < 0 {
					g.firstIdx = gi
				}
				return g
			}
			if single {
				if kv.isNull(i) {
					if gNull == nil {
						gNull = mkGroup(gi)
					}
					return gNull
				}
				switch kv.kind {
				case vkInt:
					x := kv.ints[i]
					g := gInt[x]
					if g == nil {
						g = mkGroup(gi)
						gInt[x] = g
					}
					return g
				case vkStr:
					s := kv.strs[i]
					g := gStr[s]
					if g == nil {
						g = mkGroup(gi)
						gStr[s] = g
					}
					return g
				case vkFloat:
					f := kv.floats[i]
					if math.IsNaN(f) {
						if gNaN == nil {
							gNaN = mkGroup(gi)
						}
						return gNaN
					}
					b := math.Float64bits(f)
					g := gFlt[b]
					if g == nil {
						g = mkGroup(gi)
						gFlt[b] = g
					}
					return g
				case vkBool:
					return groupTyped(kv.bools[i], i, gi)
				default: // vkAny: dispatch on the boxed cell's dynamic type
					return groupTyped(kv.anys[i], i, gi)
				}
			}
			return groupGeneric(i, gi)
		}
		if selBits == nil {
			for blk := 0; blk < seg.n; blk += 64 {
				end := min(blk+64, seg.n)
				cnt := 0
				for i := blk; i < end; i++ {
					g := groupOf(i)
					g.lastIdx = base + i
					g.n++
					ibuf[cnt] = int32(i)
					gbuf[cnt] = g
					cnt++
				}
				flush(seg, cnt)
			}
		} else {
			wbase := segIdx * segWords
			words := (seg.n + 63) / 64
			for wi := 0; wi < words; wi++ {
				w := selBits[wbase+wi]
				if w == 0 {
					continue
				}
				cnt := 0
				for ; w != 0; w &= w - 1 {
					i := wi*64 + bits.TrailingZeros64(w)
					g := groupOf(i)
					g.lastIdx = base + i
					g.n++
					ibuf[cnt] = int32(i)
					gbuf[cnt] = g
					cnt++
				}
				flush(seg, cnt)
			}
		}
		base += seg.n
	}

	// finalize every slot into the pre-computed form of a groupAgg; errors
	// stay lazy, surfacing only through slots the items/HAVING reference
	doneAll := make([]bool, len(slots))
	for i := range doneAll {
		doneAll[i] = true
	}
	finalize := func(g *vecGroup) ([]any, []error) {
		vals := make([]any, len(slots))
		errs := make([]error, len(slots))
		for i := range fused {
			fs := &fused[i]
			acc := &g.accs[i]
			switch fs.kind {
			case fStar:
				vals[i] = g.n
			case fCount:
				vals[i] = acc.n
			case fSum:
				switch {
				case acc.err != nil:
					errs[i] = acc.err
				case acc.n == 0:
				case acc.allInt:
					vals[i] = acc.isum
				default:
					vals[i] = acc.fsum
				}
			case fAvg:
				if acc.err != nil {
					errs[i] = acc.err
				} else if acc.n > 0 {
					vals[i] = acc.fsum / float64(acc.n)
				}
			case fMin, fMax:
				if acc.bestSet {
					vals[i] = acc.boxedBest()
				}
			case fBoolAnd, fBoolOr:
				if acc.err != nil {
					errs[i] = acc.err
				} else if acc.n > 0 {
					vals[i] = acc.bacc
				}
			case fFirst:
				if g.firstIdx >= 0 {
					vals[i] = st.cellAt(g.firstIdx, fs.col)
				}
			case fLast:
				if g.lastIdx >= 0 {
					vals[i] = st.cellAt(g.lastIdx, fs.col)
				}
			}
		}
		return vals, errs
	}

	itemFns := make([]exprFn, len(items))
	for i := range items {
		itemFns[i] = compileAggExpr(items[i].Expr, rel.schema, index)
	}
	var havingFn exprFn
	if sel.Having != nil {
		havingFn = compileAggExpr(sel.Having, rel.schema, index)
	}
	res := &Result{}
	for _, item := range items {
		res.Cols = append(res.Cols, Column{
			Name: itemName(item, rel.schema),
			Type: s.inferType(item.Expr, rel.schema),
		})
	}
	res.Rows = make([][]any, 0, len(order))
	rows := rel.rows // full row view; firstIdx indexes into it (nil: lazy scan)
	repCols, repOK := repRowCols(items, sel.Having, rel.schema, st)
	for _, g := range order {
		vals, errs := finalize(g)
		gec := &evalCtx{s: s, rowIdx: -1, agg: &groupAgg{slots: slots, vals: vals, errs: errs, done: doneAll}}
		var rep []any
		if g.firstIdx >= 0 {
			switch {
			case rows != nil:
				rep = rows[g.firstIdx]
			case repOK:
				// only the columns the items/HAVING actually evaluate
				// against the representative row are materialized
				rep = st.rowAtCols(g.firstIdx, repCols)
			default:
				rep = st.rowAt(g.firstIdx)
			}
		}
		out := make([]any, len(items))
		for i, fn := range itemFns {
			v, ierr := fn(gec, rep)
			if ierr != nil {
				return nil, true, ierr
			}
			out[i] = v
		}
		if havingFn != nil {
			hv, herr := havingFn(gec, rep)
			if herr != nil {
				return nil, true, herr
			}
			if b, ok := hv.(bool); !ok || !b {
				continue
			}
		}
		res.Rows = append(res.Rows, out)
	}
	refineTypes(res)
	return res, true, nil
}
