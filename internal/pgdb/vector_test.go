package pgdb

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// requireVecParity runs one statement on three identical databases — one per
// execution engine — and asserts the vectorized engine agrees with both the
// interpreter oracle and the compiled engine on results, errors, and error
// text. mkdb builds a fresh database per engine (bulk-loaded data included,
// so NaN and mixed-type cells the SQL grammar cannot express are covered).
func requireVecParity(t *testing.T, mkdb func(t *testing.T) *DB, sql string) *Result {
	t.Helper()
	run := func(mode ExecMode) (*Result, error) {
		db := mkdb(t)
		db.SetExecMode(mode)
		return db.NewSession().Exec(sql)
	}
	vec, vecErr := run(ExecVectorized)
	interp, interpErr := run(ExecInterpreted)
	comp, compErr := run(ExecCompiled)
	for _, o := range []struct {
		name string
		res  *Result
		err  error
	}{{"interpreted", interp, interpErr}, {"compiled", comp, compErr}} {
		if (vecErr == nil) != (o.err == nil) {
			t.Fatalf("%s:\n  vectorized err: %v\n  %s err: %v", sql, vecErr, o.name, o.err)
		}
		if vecErr != nil {
			if vecErr.Error() != o.err.Error() {
				t.Fatalf("%s: error text diverges:\n  vectorized: %v\n  %s: %v", sql, vecErr, o.name, o.err)
			}
			continue
		}
		if !reflect.DeepEqual(vec.Cols, o.res.Cols) {
			t.Fatalf("%s: column divergence vs %s:\n  vectorized: %+v\n  oracle:     %+v", sql, o.name, vec.Cols, o.res.Cols)
		}
		if len(vec.Rows) != len(o.res.Rows) {
			t.Fatalf("%s: row count %d (vectorized) vs %d (%s)", sql, len(vec.Rows), len(o.res.Rows), o.name)
		}
		for i := range vec.Rows {
			if !rowsEqualNaN(vec.Rows[i], o.res.Rows[i]) {
				t.Fatalf("%s: row %d divergence vs %s:\n  vectorized: %v\n  oracle:     %v", sql, i, o.name, vec.Rows[i], o.res.Rows[i])
			}
		}
	}
	return vec
}

// rowsEqualNaN is reflect.DeepEqual with NaN == NaN, which DeepEqual (like
// IEEE) rejects; the engines treat NaN as a self-equal value.
func rowsEqualNaN(a, b []any) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		af, aok := a[i].(float64)
		bf, bok := b[i].(float64)
		if aok && bok {
			if math.IsNaN(af) && math.IsNaN(bf) {
				continue
			}
			if math.Float64bits(af) != math.Float64bits(bf) {
				return false
			}
			continue
		}
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// mkSegDB bulk-loads n deterministic rows into an ordered-ish table: ts is
// strictly increasing (zone maps prune hard on it), price cycles with ~1/50
// NULLs, cat has 7 distinct values, flag is a three-state boolean column.
func mkSegDB(n int) func(t *testing.T) *DB {
	return func(t *testing.T) *DB {
		t.Helper()
		db := NewDB()
		db.CreateTable("seg", []Column{
			{Name: "ts", Type: "bigint"},
			{Name: "price", Type: "double precision"},
			{Name: "cat", Type: "varchar"},
			{Name: "flag", Type: "boolean"},
		})
		rows := make([][]any, n)
		for i := 0; i < n; i++ {
			var price any = float64(i%1000) + 0.25
			if i%50 == 7 {
				price = nil
			}
			var flag any
			switch i % 3 {
			case 0:
				flag = true
			case 1:
				flag = false
			}
			rows[i] = []any{int64(i), price, fmt.Sprintf("c%d", i%7), flag}
		}
		if err := db.InsertRows("seg", rows); err != nil {
			t.Fatal(err)
		}
		return db
	}
}

// TestVecSegmentBoundaries drives filters and aggregates over tables sized
// exactly at, just under, and just over segment edges, with predicates whose
// match ranges straddle those edges.
func TestVecSegmentBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, segSize - 1, segSize, segSize + 1, 2*segSize + 17} {
		mk := mkSegDB(n)
		queries := []string{
			"SELECT count(*) FROM seg",
			"SELECT * FROM seg WHERE ts >= 4090 AND ts < 4100",
			fmt.Sprintf("SELECT * FROM seg WHERE ts = %d", segSize),
			fmt.Sprintf("SELECT * FROM seg WHERE ts = %d", segSize-1),
			"SELECT * FROM seg WHERE ts BETWEEN 4000 AND 4200",
			"SELECT cat, count(*), sum(ts), min(price), max(price) FROM seg GROUP BY cat",
			"SELECT count(*), avg(price), first(cat), last(cat) FROM seg WHERE ts > 100",
			"SELECT * FROM seg WHERE price IS NULL",
			"SELECT count(price) FROM seg WHERE flag",
		}
		for _, q := range queries {
			t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
				requireVecParity(t, mk, q)
			})
		}
	}
}

// TestVecZonePruning checks zone-map skip and fill-all verdicts give exact
// results: out-of-range literals (whole-table skip), one-segment ranges, and
// predicates every row passes (bitmap fill without scanning).
func TestVecZonePruning(t *testing.T) {
	mk := mkSegDB(2*segSize + 100)
	for _, q := range []string{
		"SELECT count(*) FROM seg WHERE ts > 9000000",                  // above global max: all segments skip
		"SELECT count(*) FROM seg WHERE ts < 0",                        // below global min
		"SELECT count(*) FROM seg WHERE ts >= 0",                       // all-true fill
		"SELECT * FROM seg WHERE ts = 5000",                            // single segment survives pruning
		"SELECT * FROM seg WHERE ts <> 5000 AND ts > 8250",             // <> plus range
		"SELECT count(*) FROM seg WHERE ts IN (1, 4096, 8191, 999999)", // IN member pruning
		"SELECT count(*) FROM seg WHERE price > 999999.0",              // nullable column: no all-true fill
		"SELECT sum(ts) FROM seg WHERE ts BETWEEN 4000 AND 4100",       // fused over pruned scan
	} {
		requireVecParity(t, mk, q)
	}
}

// TestVecPredicateLowering covers every lowered leaf shape plus shapes that
// must fall back, each against all three engines.
func TestVecPredicateLowering(t *testing.T) {
	mk := mkSegDB(500)
	for _, q := range []string{
		"SELECT count(*) FROM seg WHERE ts = 250",
		"SELECT count(*) FROM seg WHERE 250 > ts", // constant on the left: op flips
		"SELECT count(*) FROM seg WHERE ts <> 250",
		"SELECT count(*) FROM seg WHERE price <= 10.25",
		"SELECT count(*) FROM seg WHERE price >= 999.25",
		"SELECT count(*) FROM seg WHERE cat = 'c3'",
		"SELECT count(*) FROM seg WHERE cat > 'c5'",
		"SELECT count(*) FROM seg WHERE cat = 3",      // mixed-type comparison: constant verdict
		"SELECT count(*) FROM seg WHERE price = NULL", // NULL comparand: empty
		"SELECT count(*) FROM seg WHERE flag",         // bare boolean column
		"SELECT count(*) FROM seg WHERE flag = true",
		"SELECT count(*) FROM seg WHERE flag IS NULL",
		"SELECT count(*) FROM seg WHERE price IS NOT NULL",
		"SELECT count(*) FROM seg WHERE cat IN ('c1', 'c4')",
		"SELECT count(*) FROM seg WHERE cat NOT IN ('c1', 'c4')",
		"SELECT count(*) FROM seg WHERE cat NOT IN ('c1', NULL)", // NULL member: never TRUE
		"SELECT count(*) FROM seg WHERE cat IN ('c1', NULL)",
		"SELECT count(*) FROM seg WHERE ts IN (1, 2.0, 3)", // mixed numeric members
		"SELECT count(*) FROM seg WHERE ts BETWEEN 100 AND 200",
		"SELECT count(*) FROM seg WHERE ts NOT BETWEEN 100 AND 200",
		"SELECT count(*) FROM seg WHERE ts BETWEEN 200 AND 100",  // empty range
		"SELECT count(*) FROM seg WHERE ts BETWEEN NULL AND 200", // NULL bound
		"SELECT count(*) FROM seg WHERE ts > 100 AND (price < 50.0 OR cat = 'c2')",
		"SELECT count(*) FROM seg WHERE true",
		"SELECT count(*) FROM seg WHERE false",
		"SELECT count(*) FROM seg WHERE NULL",
		"SELECT count(*) FROM seg WHERE ts > -5",
		"SELECT count(*) FROM seg WHERE price > 10.0 + 5.0", // folded constant arithmetic
		// fallback shapes: NOT, LIKE, column-vs-column, subquery
		"SELECT count(*) FROM seg WHERE NOT (ts > 100)",
		"SELECT count(*) FROM seg WHERE cat LIKE 'c%'",
		"SELECT count(*) FROM seg WHERE ts > price",
		"SELECT count(*) FROM seg WHERE ts = (SELECT min(ts) FROM seg)",
	} {
		requireVecParity(t, mk, q)
	}
}

// mkOddDB bulk-loads data the SQL grammar cannot write: NaN and signed
// zeros, a column that degrades to mixed types mid-segment, an all-null
// column, and strings that collide under keyString's ';' separator.
func mkOddDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	db.CreateTable("odd", []Column{
		{Name: "k", Type: "varchar"},
		{Name: "f", Type: "double precision"},
		{Name: "m", Type: "varchar"}, // receives mixed types via bulk load
		{Name: "z", Type: "bigint"},  // all NULL
	})
	nan := math.NaN()
	rows := [][]any{
		{"a", 1.5, "s1", nil},
		{"a", nan, int64(7), nil},
		{"b", math.Copysign(0, -1), "s2", nil},
		{"b", 0.0, 2.5, nil},
		{"a;string:b", nan, true, nil},
		{"a", 2.5, nil, nil},
		{nil, -1.0, int64(9), nil},
	}
	if err := db.InsertRows("odd", rows); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestVecFusedAggregateOddities pins the fused accumulators on the cases
// that historically diverge engines: NaN in min/max/avg/grouping, -0.0 vs
// 0.0, mixed-type columns (degraded segments), all-null inputs, empty global
// groups, sum/bool type errors surfacing lazily, and first/last not
// skipping NULLs.
func TestVecFusedAggregateOddities(t *testing.T) {
	for _, q := range []string{
		"SELECT k, count(*), count(f), min(f), max(f), avg(f), sum(f) FROM odd GROUP BY k",
		"SELECT min(f), max(f), sum(f), avg(f) FROM odd",
		"SELECT f, count(*) FROM odd GROUP BY f", // NaN and ±0 as group keys
		"SELECT k, first(f), last(f), first(m), last(m) FROM odd GROUP BY k",
		"SELECT count(z), sum(z), min(z), max(z), avg(z) FROM odd", // all-null column
		"SELECT count(*) FROM odd WHERE k = 'nope'",                // empty global group
		"SELECT sum(z), first(k) FROM odd WHERE f > 100.0",
		"SELECT min(m), max(m), count(m) FROM odd",  // mixed-kind min/max via compareVals
		"SELECT k, sum(m) FROM odd GROUP BY k",      // sum over strings: lazy 42804
		"SELECT k, bool_and(m) FROM odd GROUP BY k", // bool_and over non-boolean
		"SELECT sum(f) FROM odd HAVING sum(f) > 0.0",
		"SELECT k, count(*) FROM odd GROUP BY k HAVING count(*) > 1",
		"SELECT k, CASE WHEN count(*) > 1 THEN sum(m) ELSE count(*) END FROM odd GROUP BY k", // error slot behind untaken CASE arm
		"SELECT COALESCE(sum(z), 0) FROM odd WHERE f IS NULL",
		// non-fusable shapes exercising the fallback-after-vec-filter path
		"SELECT k, sum(f + 0.0) FROM odd WHERE f IS NOT NULL GROUP BY k",
		"SELECT count(DISTINCT k) FROM odd",
		"SELECT k || 'x', count(*) FROM odd GROUP BY k || 'x'",
	} {
		requireVecParity(t, mkOddDB, q)
	}
}

// TestVecDMLAcrossSegments checks UPDATE write-through and DELETE compaction
// with row sets straddling segment boundaries, then re-queries under the
// vectorized engine (zone maps must stay sound after both).
func TestVecDMLAcrossSegments(t *testing.T) {
	n := segSize + 300
	for _, script := range [][]string{
		{"UPDATE seg SET price = 99999.5 WHERE ts BETWEEN 4000 AND 4200"},
		{"UPDATE seg SET price = NULL WHERE cat = 'c1'"},
		{"UPDATE seg SET cat = 'zz' WHERE ts > 4090"},
		{"DELETE FROM seg WHERE ts BETWEEN 4000 AND 4200"},
		{"DELETE FROM seg WHERE price IS NULL"},
		{"DELETE FROM seg WHERE ts >= 0"}, // delete everything
		{
			"UPDATE seg SET price = 12345.5 WHERE ts = 4096",
			"DELETE FROM seg WHERE ts < 100",
			"UPDATE seg SET flag = NULL WHERE cat = 'c2'",
		},
	} {
		script := script
		mk := func(t *testing.T) *DB {
			db := mkSegDB(n)(t)
			db.SetExecMode(ExecVectorized)
			s := db.NewSession()
			for _, stmt := range script {
				if _, err := s.Exec(stmt); err != nil {
					t.Fatalf("%s: %v", stmt, err)
				}
			}
			return db
		}
		for _, q := range []string{
			"SELECT count(*), min(ts), max(ts), sum(ts) FROM seg",
			"SELECT * FROM seg WHERE price > 99999.0",
			"SELECT * FROM seg WHERE ts BETWEEN 4090 AND 4110",
			"SELECT cat, count(*), max(price) FROM seg GROUP BY cat",
			"SELECT count(*) FROM seg WHERE flag IS NULL",
			"SELECT count(*) FROM seg WHERE cat = 'zz'",
		} {
			// the DML above already ran per-engine inside mk; every engine
			// sees the same post-DML table
			requireVecParity(t, mk, q)
		}
	}
}

// TestVecUpdateDegradesColumn writes an int into a varchar column cell via
// the bulk API path and checks the segment degrades to boxed storage while
// scans stay exact.
func TestVecUpdateDegradesColumn(t *testing.T) {
	mk := func(t *testing.T) *DB {
		db := mkSegDB(200)(t)
		if err := db.InsertRows("seg", [][]any{{int64(9999), 1.0, int64(42), true}}); err != nil {
			t.Fatal(err)
		}
		return db
	}
	for _, q := range []string{
		"SELECT count(*) FROM seg WHERE cat = 'c3'",
		"SELECT count(*) FROM seg WHERE cat = 42",
		"SELECT min(cat), max(cat) FROM seg",
		"SELECT cat, count(*) FROM seg GROUP BY cat",
	} {
		requireVecParity(t, mk, q)
	}
}

// TestVecParallelSegments forces multi-worker bitmap evaluation over many
// segments and checks it matches the sequential engines.
func TestVecParallelSegments(t *testing.T) {
	n := 3*segSize + 123
	mkPar := func(t *testing.T) *DB {
		db := mkSegDB(n)(t)
		db.SetParallelism(4)
		return db
	}
	for _, q := range []string{
		"SELECT count(*) FROM seg WHERE price > 500.0 AND ts < 9000",
		"SELECT cat, count(*), sum(ts) FROM seg WHERE price > 100.0 GROUP BY cat",
		"SELECT * FROM seg WHERE ts BETWEEN 8000 AND 8200",
	} {
		requireVecParity(t, mkPar, q)
	}
}

// TestVecRowViewCoherence checks the row-view adapter stays coherent with
// the vectors across a SELECT/DML interleaving: a SELECT materializes the
// cache, and subsequent INSERT/UPDATE/DELETE must be visible to both the
// vectorized scan and the row view it feeds other operators from.
func TestVecRowViewCoherence(t *testing.T) {
	db := NewDB()
	db.SetExecMode(ExecVectorized)
	s := db.NewSession()
	mustExec := func(sql string) *Result {
		t.Helper()
		res, err := s.Exec(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	mustExec("CREATE TABLE c (a bigint, b varchar)")
	mustExec("INSERT INTO c VALUES (1, 'x'), (2, 'y')")
	mustExec("SELECT * FROM c") // materialize the row cache
	mustExec("INSERT INTO c VALUES (3, 'w')")
	if res := mustExec("SELECT count(*) FROM c"); res.Rows[0][0] != int64(3) {
		t.Fatalf("append after cache build invisible: %v", res.Rows)
	}
	mustExec("UPDATE c SET b = 'z' WHERE a = 2")
	// vectorized scan (vectors) and join path (row view) must agree
	if res := mustExec("SELECT count(*) FROM c WHERE b = 'z'"); res.Rows[0][0] != int64(1) {
		t.Fatalf("UPDATE invisible to vector scan: %v", res.Rows)
	}
	if res := mustExec("SELECT count(*) FROM c x JOIN c y ON x.b = y.b WHERE x.a = 2"); res.Rows[0][0] != int64(1) {
		t.Fatalf("UPDATE invisible to row view: %v", res.Rows)
	}
	mustExec("DELETE FROM c WHERE a = 1")
	res := mustExec("SELECT * FROM c WHERE a <= 3")
	if len(res.Rows) != 2 || res.Rows[0][0] != int64(2) || res.Rows[0][1] != "z" {
		t.Fatalf("post-DML table wrong: %v", res.Rows)
	}
}

// TestColVecZoneMaps unit-tests the storage layer directly: per-segment
// min/max bounds, null bitmap counts, degradation, and compaction.
func TestColVecZoneMaps(t *testing.T) {
	st := newColStore([]Column{{Name: "x", Type: "bigint"}})
	for i := 0; i < segSize+10; i++ {
		st.appendRow([]any{int64(i)})
	}
	if st.numSegs() != 2 {
		t.Fatalf("want 2 segments, got %d", st.numSegs())
	}
	v0, v1 := &st.seg(0).vecs[0], &st.seg(1).vecs[0]
	if v0.minV != int64(0) || v0.maxV != int64(segSize-1) {
		t.Fatalf("seg0 zone [%v,%v]", v0.minV, v0.maxV)
	}
	if v1.minV != int64(segSize) || v1.maxV != int64(segSize+9) {
		t.Fatalf("seg1 zone [%v,%v]", v1.minV, v1.maxV)
	}
	// widen-only on update: shrinking writes leave bounds stale but sound
	st.rows()
	st.setCell(0, 0, int64(-100))
	if v0.minV != int64(-100) {
		t.Fatalf("zone must widen on update: %v", v0.minV)
	}
	st.setCell(0, 0, int64(5))
	if v0.minV != int64(-100) {
		t.Fatalf("zone must not shrink: %v", v0.minV)
	}
	// nulls tracked exactly
	st.setCell(3, 0, nil)
	if v0.nullCnt != 1 || !v0.isNull(3) {
		t.Fatalf("null bookkeeping: cnt=%d", v0.nullCnt)
	}
	st.setCell(3, 0, int64(3))
	if v0.nullCnt != 0 {
		t.Fatalf("null clear: cnt=%d", v0.nullCnt)
	}
	// degradation on type mismatch drops the zone map
	st.setCell(1, 0, "oops")
	if v0.kind != vkAny || v0.minV != nil {
		t.Fatalf("degrade: kind=%d zone=%v", v0.kind, v0.minV)
	}
	if st.cellAt(2, 0) != int64(2) || st.cellAt(1, 0) != "oops" {
		t.Fatalf("cells after degrade: %v %v", st.cellAt(2, 0), st.cellAt(1, 0))
	}
	// compaction rebuilds fresh bounds
	st.compact([][]any{{int64(7)}, {int64(9)}})
	if st.numRows() != 2 || st.numSegs() != 1 {
		t.Fatalf("compact: n=%d segs=%d", st.numRows(), st.numSegs())
	}
	nv := &st.seg(0).vecs[0]
	if nv.kind != vkInt || nv.minV != int64(7) || nv.maxV != int64(9) {
		t.Fatalf("compact zone: kind=%d [%v,%v]", nv.kind, nv.minV, nv.maxV)
	}
}

// TestSortRowsByColTyped pins the satellite fix: information_schema ordering
// must sort numeric and string keys correctly (it used to coerce non-string
// keys to "" and not sort at all).
func TestSortRowsByColTyped(t *testing.T) {
	rows := [][]any{{int64(30)}, {nil}, {int64(4)}, {int64(100)}}
	sortRowsByCol(rows, 0)
	want := [][]any{{nil}, {int64(4)}, {int64(30)}, {int64(100)}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("numeric sort: %v", rows)
	}
	srows := [][]any{{"b"}, {"a"}, {"c"}}
	sortRowsByCol(srows, 0)
	if !reflect.DeepEqual(srows, [][]any{{"a"}, {"b"}, {"c"}}) {
		t.Fatalf("string sort: %v", srows)
	}
}
