package pgdb

import (
	"context"
	"errors"
	"net"

	"hyperq/internal/wire/pgv3"
)

// AuthConfig selects the server's authentication method and credentials.
type AuthConfig struct {
	Method pgv3.AuthMethod
	// Users maps user names to plaintext passwords (the MD5 method hashes
	// these on demand).
	Users map[string]string
}

// Serve accepts PG v3 connections on l and executes queries against db,
// one session (with its own temp tables) per connection. It returns when
// the listener closes or ctx is canceled; ctx also bounds every statement
// executed by the served sessions, so canceling it aborts in-flight scans.
func Serve(ctx context.Context, l net.Listener, db *DB, auth AuthConfig) error {
	stop := context.AfterFunc(ctx, func() { l.Close() })
	defer stop()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || ctx.Err() != nil {
				return nil
			}
			return err
		}
		go handleConn(ctx, conn, db, auth)
	}
}

func handleConn(ctx context.Context, conn net.Conn, db *DB, auth AuthConfig) {
	sc := pgv3.NewServerConn(conn)
	defer sc.Close()
	if err := sc.Startup(); err != nil {
		return
	}
	verify := func(user, response string, salt [4]byte) bool {
		stored, ok := auth.Users[user]
		if !ok {
			return false
		}
		switch auth.Method {
		case pgv3.AuthMethodCleartext:
			return response == stored
		case pgv3.AuthMethodMD5:
			return response == pgv3.MD5Response(user, stored, salt)
		default:
			return true
		}
	}
	if err := sc.Authenticate(auth.Method, verify); err != nil {
		return
	}
	session := db.NewSession()
	defer session.Close()
	for {
		sql, err := sc.ReadQuery()
		if err != nil {
			return // EOF on Terminate or broken connection
		}
		results, err := session.ExecScriptContext(ctx, sql)
		for _, res := range results {
			if sendErr := sendResult(sc, res); sendErr != nil {
				return
			}
		}
		if err != nil {
			var pe *Error
			se := &pgv3.ServerError{Severity: "ERROR", Code: "XX000", Message: err.Error()}
			if errors.As(err, &pe) {
				se.Code = pe.Code
				se.Message = pe.Msg
			}
			if err := sc.SendError(se); err != nil {
				return
			}
		}
		if err := sc.SendReadyForQuery(); err != nil {
			return
		}
		if err := sc.Flush(); err != nil {
			return
		}
	}
}

func sendResult(sc *pgv3.ServerConn, res *Result) error {
	if len(res.Cols) > 0 {
		cols := make([]pgv3.ColDesc, len(res.Cols))
		for i, c := range res.Cols {
			cols[i] = pgv3.ColDesc{Name: c.Name, TypeOID: pgv3.OIDForType(c.Type)}
		}
		if err := sc.SendRowDescription(cols); err != nil {
			return err
		}
		for _, row := range res.Rows {
			fields := make([]pgv3.Field, len(row))
			for j, v := range row {
				if v == nil {
					fields[j] = pgv3.Field{Null: true}
				} else {
					fields[j] = pgv3.Field{Text: FormatValue(v, res.Cols[j].Type)}
				}
			}
			if err := sc.SendDataRow(fields); err != nil {
				return err
			}
		}
	}
	return sc.SendCommandComplete(res.Tag)
}
