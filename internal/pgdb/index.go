package pgdb

// Access paths: per-column sorted attributes and lazy secondary hash
// indexes over colStore, in the spirit of kdb+'s `s#`/`p#` attributes.
//
// A sorted attribute records that a column is non-decreasing under
// compareVals and holds no NULLs; it is verified-or-maintained through every
// mutation (appendRow, setCell, compact) and invalidated on the first
// violation, never re-derived by scanning. Sorted columns answer whole
// comparison predicates by binary search over the boxed cell accessor —
// column-granular fault-in means a cold probe touches O(log n) cells of one
// column — instead of a full bitmap scan.
//
// A hash index maps each distinct value of a column to its ascending row-id
// postings. It is built lazily on the first qualifying lookup, maintained
// incrementally by DML, dropped wholesale on DELETE-compaction and on
// segment eviction (the postings pin value memory the eviction is trying to
// release), and rebuilt on the next qualifying lookup. The vectorized
// filter answers `=` and IN predicates from it, and equi-joins use it as a
// prebuilt build side.
//
// All lookup-side decisions replicate the engines' comparison semantics
// exactly: predicate lookups match the vectorized kernels (numeric
// compare-as-float with the 2^53 guard, NaN = NaN), join lookups match
// keyString (type-tagged equality, so int64 2 and float64 2.0 never join).

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultIndexMinRows is the default minimum table row count before a lazy
// hash-index build triggers: one full segment, so small working tables never
// pay index maintenance.
const DefaultIndexMinRows = segSize

// maxExactFloatInt is 2^53, the bound beyond which float64 cannot represent
// every int64 exactly; equality lookups against an int column fall back to
// the scan kernels there rather than guess which ints collide.
const maxExactFloatInt = float64(1 << 53)

// IndexStats counts access-path activity database-wide. All fields are
// atomics: lookups happen under the shared statement lock.
type IndexStats struct {
	Builds        atomic.Int64 // hash-index builds (lazy or hint-driven)
	Hits          atomic.Int64 // lookups answered from an index or sorted attribute
	Misses        atomic.Int64 // qualifying lookups with no usable index
	Invalidations atomic.Int64 // indexes dropped by DML, eviction, or type degradation
	BytesResident atomic.Int64 // estimated heap bytes held by built indexes
	AsofBuilds    atomic.Int64 // as-of bucket-index builds
	AsofHits      atomic.Int64 // as-of joins answered from a cached bucket index
}

// Vars returns the counters in /debug/vars form, keyed like persist.Stats.
func (s *IndexStats) Vars() map[string]int64 {
	return map[string]int64{
		"pgdb.index_builds":         s.Builds.Load(),
		"pgdb.index_hits":           s.Hits.Load(),
		"pgdb.index_misses":         s.Misses.Load(),
		"pgdb.index_invalidations":  s.Invalidations.Load(),
		"pgdb.index_bytes_resident": s.BytesResident.Load(),
		"pgdb.asof_builds":          s.AsofBuilds.Load(),
		"pgdb.asof_hits":            s.AsofHits.Load(),
	}
}

func (s *IndexStats) add(c *atomic.Int64, n int64) {
	if s != nil {
		c.Add(n)
	}
}

// sortAttr is the per-column sorted attribute: ok means every row so far is
// non-NULL and non-decreasing under compareVals; last is the final value
// (the comparison anchor for the next append), nil when the store is empty.
type sortAttr struct {
	ok   bool
	last any
}

// hashIdx is one column's secondary index: value → ascending row-id
// postings, typed by the column's uniform vector kind. nulls collects the
// NULL rows for null-safe join probes. A hashIdx is immutable to readers
// once published except under the exclusive statement lock (DML), matching
// the vectors' own coherence rule.
type hashIdx struct {
	col    int
	kind   vecKind // vkInt, vkStr, vkFloat, or vkEmpty (all-NULL so far)
	ints   map[int64][]int32
	floats map[float64][]int32
	strs   map[string][]int32
	nan    []int32 // float NaN postings (compareVals: NaN = NaN)
	nulls  []int32
	bytes  int64 // estimated heap footprint, mirrored into BytesResident
}

// notIndexable is the negative-cache sentinel: the column's kind mix (vkAny,
// vkBool, or int/float across segments) cannot be indexed. The conditions
// are sticky until compact rebuilds the store, so the sentinel never goes
// stale.
var notIndexable = &hashIdx{col: -1, kind: vkAny}

// indexState is the per-table access-path state hanging off colStore.
type indexState struct {
	sorted []sortAttr
	// idx[c] swaps atomically between nil, a built index, and the
	// notIndexable sentinel, so shared-lock readers never see a half-built
	// index; buildMu serializes concurrent lazy builds.
	idx     []atomic.Pointer[hashIdx]
	buildMu sync.Mutex
	// hint marks columns the persist manifest recorded as indexed: the next
	// qualifying lookup rebuilds them regardless of the row threshold.
	hint []bool
	// version counts mutations; cached derived structures (the as-of bucket
	// cache) key their validity on it.
	version uint64
	asofMu  sync.Mutex
	asof    map[string]*asofEntry
	stats   *IndexStats
}

func (ix *indexState) init(cols int) {
	ix.sorted = make([]sortAttr, cols)
	ix.idx = make([]atomic.Pointer[hashIdx], cols)
	ix.hint = make([]bool, cols)
	for c := range ix.sorted {
		ix.sorted[c].ok = true // an empty column is trivially sorted
	}
}

// noteAppend maintains the sorted attribute and hash index of column c for a
// value being appended as row id st.n (called before the count bumps).
func (st *colStore) noteAppend(c int, v any) {
	if sa := &st.ix.sorted[c]; sa.ok {
		if v == nil || (st.n > 0 && compareVals(v, sa.last) < 0) {
			sa.ok, sa.last = false, nil
		} else {
			sa.last = v
		}
	}
	if ix := st.ix.idx[c].Load(); ix != nil && ix != notIndexable {
		if !ix.insert(int32(st.n), v) {
			st.dropIndex(c)
		}
	}
}

// noteMutation bumps the version counter; every data change runs through it.
func (st *colStore) noteMutation() { st.ix.version++ }

// noteSet maintains column c's access paths after row rowIdx was overwritten
// in place. old is the prior cell value (only read when an index is built).
func (st *colStore) noteSet(rowIdx, c int, val, old any, ix *hashIdx) {
	if sa := &st.ix.sorted[c]; sa.ok {
		switch {
		case val == nil:
			sa.ok, sa.last = false, nil
		case rowIdx > 0 && compareVals(st.cellAt(rowIdx-1, c), val) > 0:
			sa.ok, sa.last = false, nil
		case rowIdx < st.n-1 && compareVals(val, st.cellAt(rowIdx+1, c)) > 0:
			sa.ok, sa.last = false, nil
		case rowIdx == st.n-1:
			sa.last = val
		}
	}
	if ix != nil && ix != notIndexable {
		ix.remove(int32(rowIdx), old)
		if !ix.insert(int32(rowIdx), val) {
			st.dropIndex(c)
		}
	}
}

// dropIndex discards column c's built index (type degradation mid-DML).
func (st *colStore) dropIndex(c int) {
	if ix := st.ix.idx[c].Load(); ix != nil && ix != notIndexable {
		st.ix.stats.add(&st.ix.stats.Invalidations, 1)
		st.ix.stats.add(&st.ix.stats.BytesResident, -ix.bytes)
	}
	st.ix.idx[c].Store(notIndexable)
}

// dropIndexes discards every built index and the as-of cache: DELETE
// compaction renumbers rows, and eviction wants the memory back. Unlike
// dropIndex the columns stay indexable — the next qualifying lookup
// rebuilds.
func (st *colStore) dropIndexes() {
	for c := range st.ix.idx {
		if ix := st.ix.idx[c].Load(); ix != nil {
			if ix != notIndexable {
				st.ix.stats.add(&st.ix.stats.Invalidations, 1)
				st.ix.stats.add(&st.ix.stats.BytesResident, -ix.bytes)
			}
			st.ix.idx[c].Store(nil)
		}
	}
	st.ix.asofMu.Lock()
	st.ix.asof = nil
	st.ix.asofMu.Unlock()
}

// resetAccessPaths clears all access-path state before compact re-appends
// the surviving rows (which rebuild the sorted attributes as they go).
func (st *colStore) resetAccessPaths() {
	st.dropIndexes()
	for c := range st.ix.sorted {
		st.ix.sorted[c] = sortAttr{ok: true}
	}
	st.noteMutation()
}

// sortedCol reports whether column c carries a valid sorted attribute.
func (st *colStore) sortedCol(c int) bool { return st.ix.sorted[c].ok }

// --- hash index build and maintenance ---

// kindOfVal maps a non-nil engine value to its vector kind.
func kindOfVal(v any) vecKind {
	switch v.(type) {
	case int64:
		return vkInt
	case float64:
		return vkFloat
	case string:
		return vkStr
	case bool:
		return vkBool
	}
	return vkAny
}

// insert adds one (row, value) posting. Row ids arrive in ascending order
// (appends) or replace a removed posting in place (updates), so postings
// lists are kept sorted by a positioned insert. Returns false when the value
// does not fit the index's kind — the caller drops the index.
func (ix *hashIdx) insert(row int32, v any) bool {
	if v == nil {
		ix.nulls = insertPosting(ix.nulls, row)
		ix.bytes += 4
		return true
	}
	k := kindOfVal(v)
	if ix.kind == vkEmpty && (k == vkInt || k == vkFloat || k == vkStr) {
		// an all-NULL column adopts the kind of its first non-null value
		ix.kind = k
	}
	if k != ix.kind {
		return false
	}
	switch k {
	case vkInt:
		if ix.ints == nil {
			ix.ints = map[int64][]int32{}
		}
		x := v.(int64)
		ix.ints[x] = insertPosting(ix.ints[x], row)
		ix.bytes += 12
	case vkFloat:
		f := v.(float64)
		if math.IsNaN(f) {
			ix.nan = insertPosting(ix.nan, row)
			ix.bytes += 4
			return true
		}
		if ix.floats == nil {
			ix.floats = map[float64][]int32{}
		}
		ix.floats[f] = insertPosting(ix.floats[f], row)
		ix.bytes += 12
	case vkStr:
		if ix.strs == nil {
			ix.strs = map[string][]int32{}
		}
		x := v.(string)
		ix.strs[x] = insertPosting(ix.strs[x], row)
		ix.bytes += int64(len(x)) + 20
	default:
		return false
	}
	return true
}

// remove deletes one (row, value) posting; absent postings are a no-op (a
// value the index never saw cannot have a posting).
func (ix *hashIdx) remove(row int32, v any) {
	if v == nil {
		ix.nulls = removePosting(ix.nulls, row)
		return
	}
	switch x := v.(type) {
	case int64:
		if ix.ints != nil {
			ix.ints[x] = removePosting(ix.ints[x], row)
		}
	case float64:
		if math.IsNaN(x) {
			ix.nan = removePosting(ix.nan, row)
		} else if ix.floats != nil {
			ix.floats[x] = removePosting(ix.floats[x], row)
		}
	case string:
		if ix.strs != nil {
			ix.strs[x] = removePosting(ix.strs[x], row)
		}
	}
}

func insertPosting(list []int32, row int32) []int32 {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= row })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = row
	return list
}

func removePosting(list []int32, row int32) []int32 {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= row })
	if i < len(list) && list[i] == row {
		return append(list[:i], list[i+1:]...)
	}
	return list
}

// hashIdxFor returns column col's hash index, building it lazily when the
// table qualifies (row threshold, or a persisted index hint from a cold
// open). nil means no index applies — the caller scans.
func (s *Session) hashIdxFor(st *colStore, col int) *hashIdx {
	minRows := s.db.IndexMinRows()
	if minRows < 0 {
		return nil
	}
	if ix := st.ix.idx[col].Load(); ix != nil {
		if ix == notIndexable {
			return nil
		}
		st.ix.stats.add(&st.ix.stats.Hits, 1)
		return ix
	}
	if st.n < minRows && !st.ix.hint[col] {
		st.ix.stats.add(&st.ix.stats.Misses, 1)
		return nil
	}
	st.ix.buildMu.Lock()
	defer st.ix.buildMu.Unlock()
	if ix := st.ix.idx[col].Load(); ix != nil { // lost the build race
		if ix == notIndexable {
			return nil
		}
		st.ix.stats.add(&st.ix.stats.Hits, 1)
		return ix
	}
	ix := buildHashIdx(st, col)
	if ix == nil {
		st.ix.idx[col].Store(notIndexable)
		st.ix.stats.add(&st.ix.stats.Misses, 1)
		return nil
	}
	st.ix.idx[col].Store(ix)
	st.ix.stats.add(&st.ix.stats.Builds, 1)
	st.ix.stats.add(&st.ix.stats.BytesResident, ix.bytes)
	return ix
}

// buildHashIdx scans one column (faulting it in segment by segment, other
// columns untouched) and returns its index, or nil when the column's kind
// mix is not indexable.
func buildHashIdx(st *colStore, col int) *hashIdx {
	if st.n >= math.MaxInt32 {
		return nil
	}
	kind := vkEmpty
	for si := 0; si < st.numSegs(); si++ {
		k := st.peekSeg(si).vecs[col].kind
		if k == vkEmpty {
			continue
		}
		if k == vkAny || k == vkBool || (kind != vkEmpty && k != kind) {
			return nil
		}
		kind = k
	}
	ix := &hashIdx{col: col, kind: kind}
	for si := 0; si < st.numSegs(); si++ {
		seg := st.segCols(si, []int{col})
		v := &seg.vecs[col]
		base := int32(si * segSize)
		for i := 0; i < seg.n; i++ {
			if v.isNull(i) {
				ix.nulls = append(ix.nulls, base+int32(i))
				ix.bytes += 4
				continue
			}
			row := base + int32(i)
			switch kind {
			case vkInt:
				x := v.ints[i]
				ix.ints = lazyAppend(ix.ints, x, row)
				ix.bytes += 12
			case vkFloat:
				f := v.floats[i]
				if math.IsNaN(f) {
					ix.nan = append(ix.nan, row)
					ix.bytes += 4
					continue
				}
				ix.floats = lazyAppendF(ix.floats, f, row)
				ix.bytes += 12
			case vkStr:
				x := v.strs[i]
				ix.strs = lazyAppendS(ix.strs, x, row)
				ix.bytes += int64(len(x)) + 20
			}
		}
	}
	return ix
}

func lazyAppend(m map[int64][]int32, k int64, row int32) map[int64][]int32 {
	if m == nil {
		m = map[int64][]int32{}
	}
	m[k] = append(m[k], row)
	return m
}

func lazyAppendF(m map[float64][]int32, k float64, row int32) map[float64][]int32 {
	if m == nil {
		m = map[float64][]int32{}
	}
	m[k] = append(m[k], row)
	return m
}

func lazyAppendS(m map[string][]int32, k string, row int32) map[string][]int32 {
	if m == nil {
		m = map[string][]int32{}
	}
	m[k] = append(m[k], row)
	return m
}

// --- predicate-side lookups (vectorized kernel semantics) ---

// lookupEq returns the rows whose cells equal konst under the comparison
// kernels' semantics. ok=false means the index cannot answer soundly (the
// 2^53 int/float collision zone) and the caller must scan.
func (ix *hashIdx) lookupEq(konst any) (rows []int32, ok bool) {
	kf, kfOK := toFloat(konst)
	ks, ksOK := konst.(string)
	switch ix.kind {
	case vkInt:
		if !kfOK || math.IsNaN(kf) {
			return nil, true // type-name or NaN inequality: no int cell matches
		}
		if kf != math.Trunc(kf) {
			return nil, true
		}
		if math.Abs(kf) >= maxExactFloatInt {
			return nil, false // distinct int64s collide as float64 here
		}
		return ix.ints[int64(kf)], true
	case vkFloat:
		if !kfOK {
			return nil, true
		}
		if math.IsNaN(kf) {
			return ix.nan, true // compareVals: NaN = NaN
		}
		return ix.floats[kf], true
	case vkStr:
		if !ksOK {
			return nil, true
		}
		return ix.strs[ks], true
	case vkEmpty:
		return nil, true // only NULLs: equality never matches
	}
	return nil, false
}

// --- join-side lookups (keyString semantics) ---

// joinable reports whether the index can serve as a hash-join build side.
// Floats are excluded: keyString distinguishes +0 from -0 and NaN from NaN,
// which the float map cannot reproduce.
func (ix *hashIdx) joinable() bool {
	return ix.kind == vkInt || ix.kind == vkStr || ix.kind == vkEmpty
}

// probeJoin returns the build-side rows matching one probe value under
// keyString equality: same dynamic type, same value. NULL probes match the
// NULL postings only under null-safe equality.
func (ix *hashIdx) probeJoin(v any, nullSafe bool) []int32 {
	if v == nil {
		if nullSafe {
			return ix.nulls
		}
		return nil
	}
	switch x := v.(type) {
	case int64:
		if ix.kind == vkInt {
			return ix.ints[x]
		}
	case string:
		if ix.kind == vkStr {
			return ix.strs[x]
		}
	}
	return nil
}

// --- whole-predicate fast paths over the selection bitmap ---

// tryIndexPred attempts to answer a lowered predicate without scanning:
// first by reducing it to one contiguous row range over sorted columns
// (binary search), then by hash-index equality postings. Returns true when
// out holds the final selection bitmap.
func (s *Session) tryIndexPred(p vecPred, st *colStore, out []uint64) bool {
	if lo, hi, ok := sortedPredRange(p, st); ok {
		fillRange(out, lo, hi)
		if _, isConst := p.(*vecConst); !isConst {
			st.ix.stats.add(&st.ix.stats.Hits, 1)
		}
		return true
	}
	return s.idxPredBits(p, st, out)
}

// sortedPredRange reduces a predicate tree to a single contiguous row range
// [lo, hi) when every leaf resolves over sorted columns. Comparison leaves
// binary-search the global row order (compareVals is a total order and the
// column is non-decreasing, so every operator's row set is a prefix, suffix,
// or contiguous middle); AND intersects ranges, OR unions overlapping ones.
func sortedPredRange(p vecPred, st *colStore) (lo, hi int, ok bool) {
	n := st.numRows()
	switch x := p.(type) {
	case *vecConst:
		if x.all {
			return 0, n, true
		}
		return 0, 0, true
	case *vecIsNull:
		if !st.sortedCol(x.col) {
			return 0, 0, false
		}
		// sorted ⇒ no NULLs
		if x.not {
			return 0, n, true
		}
		return 0, 0, true
	case *vecCmp:
		if !st.sortedCol(x.col) {
			return 0, 0, false
		}
		return sortedCmpRange(st, x.col, x.op, x.konst)
	case *vecAnd:
		llo, lhi, lok := sortedPredRange(x.l, st)
		if !lok {
			return 0, 0, false
		}
		rlo, rhi, rok := sortedPredRange(x.r, st)
		if !rok {
			return 0, 0, false
		}
		if rlo > llo {
			llo = rlo
		}
		if rhi < lhi {
			lhi = rhi
		}
		if llo > lhi {
			llo, lhi = 0, 0
		}
		return llo, lhi, true
	case *vecOr:
		llo, lhi, lok := sortedPredRange(x.l, st)
		if !lok {
			return 0, 0, false
		}
		rlo, rhi, rok := sortedPredRange(x.r, st)
		if !rok {
			return 0, 0, false
		}
		if llo == lhi {
			return rlo, rhi, true
		}
		if rlo == rhi {
			return llo, lhi, true
		}
		if rlo > lhi || llo > rhi {
			return 0, 0, false // disjoint ranges: not contiguous
		}
		if rlo < llo {
			llo = rlo
		}
		if rhi > lhi {
			lhi = rhi
		}
		return llo, lhi, true
	}
	return 0, 0, false
}

// sortedBound returns the first row index of a sorted column whose cell is
// >= konst (or > konst when strict) under compareVals. Segments are pruned
// first through their resident zone metadata — stubs carry min/max, so the
// walk does no I/O — and only the one segment that can contain the bound has
// its cells probed, faulting at most that segment of this column. A constant
// outside every zone resolves with zero faults. Zone maps only widen under
// in-place updates, so both prune directions stay sound: a segment whose max
// is below the bound holds no qualifying cell, and one whose min is past it
// holds only qualifying cells; a spuriously wide max just falls through to
// the next segment after an empty probe.
func sortedBound(st *colStore, col int, konst any, strict bool) int {
	over := func(v any) bool {
		c := compareVals(v, konst)
		if strict {
			return c > 0
		}
		return c >= 0
	}
	nsegs := st.numSegs()
	for si := 0; si < nsegs; si++ {
		sg := st.peekSeg(si)
		mn, mx := sg.vecs[col].minV, sg.vecs[col].maxV
		if mx != nil && !over(mx) {
			continue // every cell here is below the bound
		}
		lo := si * segSize
		if mn != nil && over(mn) {
			return lo // every cell here is at or past the bound
		}
		k := sort.Search(sg.n, func(i int) bool { return over(st.cellAt(lo+i, col)) })
		if k < sg.n {
			return lo + k
		}
	}
	return st.n
}

// sortedCmpRange locates the rows satisfying `cell op konst` on a sorted
// column by two zone-guided binary searches.
func sortedCmpRange(st *colStore, col int, op string, konst any) (lo, hi int, ok bool) {
	n := st.numRows()
	lb := sortedBound(st, col, konst, false)
	ub := lb
	if lb < n {
		ub = sortedBound(st, col, konst, true)
	}
	switch op {
	case "=":
		return lb, ub, true
	case "<":
		return 0, lb, true
	case "<=":
		return 0, ub, true
	case ">":
		return ub, n, true
	case ">=":
		return lb, n, true
	case "<>":
		if lb == ub {
			return 0, n, true // no equal rows: everything matches
		}
		if lb == 0 {
			return ub, n, true
		}
		if ub == n {
			return 0, lb, true
		}
		return 0, 0, false // a middle run of equals: not contiguous
	}
	return 0, 0, false
}

// idxPredBits answers top-level `col = const` and IN predicates from the
// column's hash index, setting the postings' bits in out.
func (s *Session) idxPredBits(p vecPred, st *colStore, out []uint64) bool {
	switch x := p.(type) {
	case *vecCmp:
		if x.op != "=" {
			return false
		}
		ix := s.hashIdxFor(st, x.col)
		if ix == nil {
			return false
		}
		rows, ok := ix.lookupEq(x.konst)
		if !ok {
			return false
		}
		setBits(out, rows)
		return true
	case *vecIn:
		if x.not {
			return false
		}
		ix := s.hashIdxFor(st, x.col)
		if ix == nil {
			return false
		}
		for _, m := range x.members {
			rows, ok := ix.lookupEq(m)
			if !ok {
				return false
			}
			// members may alias (2 and 2.0 hit the same int postings); the
			// bitmap union deduplicates for free
			setBits(out, rows)
		}
		return true
	}
	return false
}

func setBits(out []uint64, rows []int32) {
	for _, r := range rows {
		out[r>>6] |= 1 << (uint32(r) & 63)
	}
}

// fillRange sets bits [lo, hi) word-at-a-time.
func fillRange(out []uint64, lo, hi int) {
	if lo >= hi {
		return
	}
	lw, hw := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)&63)
	if lw == hw {
		out[lw] |= loMask & hiMask
		return
	}
	out[lw] |= loMask
	for w := lw + 1; w < hw; w++ {
		out[w] = ^uint64(0)
	}
	out[hw] |= hiMask
}

// --- as-of bucket cache ---

// asofEntry caches one as-of join's build side: right rows bucketed by key,
// each bucket ascending by the time column, valid while the store's version
// stands still.
type asofEntry struct {
	version uint64
	buckets map[string][]int
}

// asofBuckets returns the per-key time-sorted row buckets for (keys, tcol),
// serving repeated as-of joins from the cache instead of re-sorting the
// build side per query. rows must be the store's own row view (the caller
// checks relation.store). Bucket contents are immutable after publication;
// a version bump replaces the entry, it never mutates it.
func (st *colStore) asofBuckets(keys []int, tcol int, rows [][]any) map[string][]int {
	return st.asofBucketsKeyed(keys, tcol, rows, keys, tcol)
}

// asofBucketsKeyed caches under (cacheKeys, cacheT) — the store's own column
// space — while building from rows addressed by (rowKeys, rowT). The spaces
// differ when a pass-through projection sits between the store and the join:
// rows then hold a column subset of the base rows in base order, so bucket
// row ids stay valid for both views and the cache entry is shared by every
// wrapper shape over the same underlying columns.
func (st *colStore) asofBucketsKeyed(cacheKeys []int, cacheT int, rows [][]any, rowKeys []int, rowT int) map[string][]int {
	desc := asofCacheKey(cacheKeys, cacheT)
	st.ix.asofMu.Lock()
	defer st.ix.asofMu.Unlock()
	if e, ok := st.ix.asof[desc]; ok && e.version == st.ix.version {
		st.ix.stats.add(&st.ix.stats.AsofHits, 1)
		return e.buckets
	}
	buckets := buildAsofBuckets(rows, rowKeys, rowT)
	if st.ix.asof == nil {
		st.ix.asof = map[string]*asofEntry{}
	}
	st.ix.asof[desc] = &asofEntry{version: st.ix.version, buckets: buckets}
	st.ix.stats.add(&st.ix.stats.AsofBuilds, 1)
	return buckets
}

func asofCacheKey(keys []int, tcol int) string {
	b := make([]byte, 0, 2*(len(keys)+1))
	for _, k := range keys {
		b = append(b, byte(k), byte(k>>8))
	}
	b = append(b, '|', byte(tcol), byte(tcol>>8))
	return string(b)
}

// buildAsofBuckets groups rows by hashKey over the key columns and sorts
// each bucket ascending by the time column, NULL times first — exactly the
// order the fused as-of binary search expects.
func buildAsofBuckets(rows [][]any, keys []int, tcol int) map[string][]int {
	buckets := map[string][]int{}
	for i, rr := range rows {
		key, _ := hashKey(rr, keys)
		buckets[key] = append(buckets[key], i)
	}
	for _, idx := range buckets {
		sort.SliceStable(idx, func(a, b int) bool {
			av, bv := rows[idx[a]][tcol], rows[idx[b]][tcol]
			if av == nil {
				return bv != nil
			}
			if bv == nil {
				return false
			}
			return compareVals(av, bv) < 0
		})
	}
	return buckets
}

// DropTableIndexes drops every built hash index on one table, so the next
// qualifying lookup rebuilds from scratch — benchmarks use it to measure the
// lazy build in isolation. Sorted attributes and the as-of bucket cache are
// untouched.
func (db *DB) DropTableIndexes(name string) {
	db.mu.RLock()
	t, ok := db.tables[name]
	db.mu.RUnlock()
	if !ok || t.store == nil {
		return
	}
	t.store.dropIndexes()
}
