package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError is a syntax error with token position.
type ParseError struct {
	Msg string
	Pos int
}

func (e *ParseError) Error() string { return fmt.Sprintf("sql parse error at %d: %s", e.Pos, e.Msg) }

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.skipSemis()
	if !p.at(TEOF) {
		return nil, p.errf("unexpected trailing input %s", p.tok())
	}
	return stmt, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Stmt
	for {
		p.skipSemis()
		if p.at(TEOF) {
			break
		}
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
	}
	return out, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) tok() Token { return p.toks[p.pos] }
func (p *parser) at(k TokKind) bool {
	return p.toks[p.pos].Kind == k
}
func (p *parser) atKw(w string) bool {
	t := p.tok()
	return t.Kind == TKeyword && t.Text == w
}
func (p *parser) atOp(s string) bool {
	t := p.tok()
	return t.Kind == TOp && t.Text == s
}
func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}
func (p *parser) expectKw(w string) error {
	if !p.atKw(w) {
		return p.errf("expected %s, got %s", w, p.tok())
	}
	p.next()
	return nil
}
func (p *parser) expectOp(s string) error {
	if !p.atOp(s) {
		return p.errf("expected %q, got %s", s, p.tok())
	}
	p.next()
	return nil
}
func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Msg: fmt.Sprintf(format, args...), Pos: p.tok().Pos}
}
func (p *parser) skipSemis() {
	for p.atOp(";") {
		p.next()
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.atKw("SELECT"):
		return p.parseSelect()
	case p.atKw("CREATE"):
		return p.parseCreate()
	case p.atKw("DROP"):
		return p.parseDrop()
	case p.atKw("INSERT"):
		return p.parseInsert()
	case p.atKw("UPDATE"):
		return p.parseUpdate()
	case p.atKw("DELETE"):
		return p.parseDelete()
	case p.atKw("TRUNCATE"):
		p.next()
		if p.atKw("TABLE") {
			p.next()
		}
		name, err := p.parseName()
		if err != nil {
			return nil, err
		}
		return &DeleteStmt{Table: name}, nil
	case p.atKw("BEGIN"), p.atKw("COMMIT"), p.atKw("ROLLBACK"):
		return &TxStmt{Kind: p.next().Text}, nil
	default:
		return nil, p.errf("unsupported statement beginning with %s", p.tok())
	}
}

func (p *parser) parseName() (string, error) {
	if !p.at(TIdent) {
		return "", p.errf("expected identifier, got %s", p.tok())
	}
	return p.next().Text, nil
}

// parseQualifiedName parses schema.name or name.
func (p *parser) parseQualifiedName() (schema, name string, err error) {
	first, err := p.parseName()
	if err != nil {
		return "", "", err
	}
	if p.atOp(".") {
		p.next()
		second, err := p.parseName()
		if err != nil {
			return "", "", err
		}
		return first, second, nil
	}
	return "", first, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.atKw("DISTINCT") {
		p.next()
		s.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if p.atOp(",") {
			p.next()
			continue
		}
		break
	}
	if p.atKw("FROM") {
		p.next()
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, tr)
			if p.atOp(",") {
				p.next()
				continue
			}
			break
		}
	}
	if p.atKw("WHERE") {
		p.next()
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.atKw("GROUP") {
		p.next()
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if p.atOp(",") {
				p.next()
				continue
			}
			break
		}
	}
	if p.atKw("HAVING") {
		p.next()
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.atKw("UNION") {
		p.next()
		all := false
		if p.atKw("ALL") {
			p.next()
			all = true
		}
		right, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		s.Union = &UnionClause{All: all, Right: right}
	}
	if p.atKw("ORDER") {
		p.next()
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderItems()
		if err != nil {
			return nil, err
		}
		s.OrderBy = items
	}
	if p.atKw("LIMIT") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Limit = e
	}
	if p.atKw("OFFSET") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Offset = e
	}
	return s, nil
}

func (p *parser) parseOrderItems() ([]OrderItem, error) {
	var out []OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := OrderItem{Expr: e}
		if p.atKw("ASC") {
			p.next()
		} else if p.atKw("DESC") {
			p.next()
			item.Desc = true
		}
		if p.atKw("NULLS") {
			p.next()
			// FIRST/LAST lex as identifiers so they stay usable as the
			// first()/last() toolbox aggregates
			if !p.at(TIdent) || (p.tok().Text != "first" && p.tok().Text != "last") {
				return nil, p.errf("expected FIRST or LAST after NULLS")
			}
			first := p.next().Text == "first"
			item.NullsFirst = &first
		}
		out = append(out, item)
		if p.atOp(",") {
			p.next()
			continue
		}
		break
	}
	return out, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.atOp("*") {
		p.next()
		return SelectItem{Star: true}, nil
	}
	// qualified star: t.*
	if p.at(TIdent) && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TOp && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TOp && p.toks[p.pos+2].Text == "*" {
		tbl := p.next().Text
		p.next()
		p.next()
		return SelectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.atKw("AS") {
		p.next()
		name, err := p.parseName()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = name
	} else if p.at(TIdent) {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	var left TableRef
	if p.atOp("(") {
		p.next()
		if p.atKw("SELECT") {
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			alias := ""
			if p.atKw("AS") {
				p.next()
			}
			if p.at(TIdent) {
				alias = p.next().Text
			}
			left = &SubqueryRef{Query: q, Alias: alias}
		} else {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			left = tr
		}
	} else {
		schema, name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		bt := &BaseTable{Schema: schema, Name: name}
		if p.atKw("AS") {
			p.next()
			alias, err := p.parseName()
			if err != nil {
				return nil, err
			}
			bt.Alias = alias
		} else if p.at(TIdent) {
			bt.Alias = p.next().Text
		}
		left = bt
	}
	// join chain
	for {
		jt, ok := p.peekJoin()
		if !ok {
			return left, nil
		}
		right, err := p.parseTableRefPrimary()
		if err != nil {
			return nil, err
		}
		var on Expr
		if jt != CrossJoin {
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			on, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		left = &JoinRef{Type: jt, Left: left, Right: right, On: on}
	}
}

// parseTableRefPrimary parses a table ref without consuming a trailing join
// chain (the caller owns the chain).
func (p *parser) parseTableRefPrimary() (TableRef, error) {
	if p.atOp("(") {
		p.next()
		if p.atKw("SELECT") {
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			alias := ""
			if p.atKw("AS") {
				p.next()
			}
			if p.at(TIdent) {
				alias = p.next().Text
			}
			return &SubqueryRef{Query: q, Alias: alias}, nil
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return tr, nil
	}
	schema, name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	bt := &BaseTable{Schema: schema, Name: name}
	if p.atKw("AS") {
		p.next()
		alias, err := p.parseName()
		if err != nil {
			return nil, err
		}
		bt.Alias = alias
	} else if p.at(TIdent) {
		bt.Alias = p.next().Text
	}
	return bt, nil
}

// peekJoin consumes a join introducer if present and reports its type.
func (p *parser) peekJoin() (JoinType, bool) {
	switch {
	case p.atKw("JOIN"):
		p.next()
		return InnerJoin, true
	case p.atKw("INNER"):
		p.next()
		p.next() // JOIN
		return InnerJoin, true
	case p.atKw("LEFT"):
		p.next()
		if p.atKw("OUTER") {
			p.next()
		}
		p.next() // JOIN
		return LeftJoin, true
	case p.atKw("RIGHT"):
		p.next()
		if p.atKw("OUTER") {
			p.next()
		}
		p.next() // JOIN
		return RightJoin, true
	case p.atKw("FULL"):
		p.next()
		if p.atKw("OUTER") {
			p.next()
		}
		p.next() // JOIN
		return FullJoin, true
	case p.atKw("CROSS"):
		p.next()
		p.next() // JOIN
		return CrossJoin, true
	default:
		return 0, false
	}
}

func (p *parser) parseCreate() (Stmt, error) {
	p.next() // CREATE
	if p.atKw("VIEW") {
		p.next()
		name, err := p.parseName()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{Name: name, AsSelect: sel}, nil
	}
	temp := false
	if p.atKw("TEMPORARY") || p.atKw("TEMP") {
		p.next()
		temp = true
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	ifNot := false
	if p.atKw("IF") {
		p.next()
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ifNot = true
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Temp: temp, IfNotExists: ifNot, Name: name}
	if p.atKw("AS") {
		p.next()
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.AsSelect = sel
		return st, nil
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		cn, err := p.parseName()
		if err != nil {
			return nil, err
		}
		ct, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, ColumnDef{Name: cn, Type: ct})
		// skip simple constraints
		for p.atKw("PRIMARY") || p.atKw("KEY") || p.atKw("NOT") || p.atKw("NULL") {
			p.next()
		}
		if p.atOp(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return st, nil
}

// parseTypeName accepts multi-word and parameterized types such as
// "double precision", "varchar(255)", "numeric(10,2)", "timestamp".
func (p *parser) parseTypeName() (string, error) {
	if !p.at(TIdent) && !p.at(TKeyword) {
		return "", p.errf("expected type name, got %s", p.tok())
	}
	name := strings.ToLower(p.next().Text)
	if name == "double" && p.at(TIdent) && p.tok().Text == "precision" {
		p.next()
		name = "double precision"
	}
	if p.atOp("(") {
		p.next()
		for !p.atOp(")") && !p.at(TEOF) {
			p.next()
		}
		if err := p.expectOp(")"); err != nil {
			return "", err
		}
	}
	return name, nil
}

func (p *parser) parseDrop() (Stmt, error) {
	p.next() // DROP
	view := false
	if p.atKw("VIEW") {
		view = true
		p.next()
	} else if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	ifEx := false
	if p.atKw("IF") {
		p.next()
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ifEx = true
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	return &DropStmt{View: view, IfExists: ifEx, Name: name}, nil
}

func (p *parser) parseInsert() (Stmt, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.atOp("(") {
		p.next()
		for {
			c, err := p.parseName()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if p.atOp(",") {
				p.next()
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.atKw("VALUES") {
		p.next()
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.atOp(",") {
					p.next()
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			st.Rows = append(st.Rows, row)
			if p.atOp(",") {
				p.next()
				continue
			}
			break
		}
		return st, nil
	}
	if p.atKw("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sel
		return st, nil
	}
	return nil, p.errf("expected VALUES or SELECT in INSERT")
}

func (p *parser) parseUpdate() (Stmt, error) {
	p.next() // UPDATE
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	for {
		c, err := p.parseName()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, SetClause{Col: c, Expr: e})
		if p.atOp(",") {
			p.next()
			continue
		}
		break
	}
	if p.atKw("WHERE") {
		p.next()
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.atKw("WHERE") {
		p.next()
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

// Expression parsing with standard SQL precedence:
// OR < AND < NOT < comparison/IS/IN/BETWEEN/LIKE < additive (+,-,||) <
// multiplicative (*,/,%) < unary minus < postfix :: < primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKw("OR") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKw("AND") {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKw("NOT") {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atOp("=") || p.atOp("<>") || p.atOp("!=") || p.atOp("<") || p.atOp(">") || p.atOp("<=") || p.atOp(">="):
			op := p.next().Text
			if op == "!=" {
				op = "<>"
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: op, L: l, R: r}
		case p.atKw("IS"):
			p.next()
			not := false
			if p.atKw("NOT") {
				p.next()
				not = true
			}
			if p.atKw("NULL") {
				p.next()
				l = &IsNullExpr{X: l, Not: not}
				continue
			}
			// IS [NOT] DISTINCT FROM
			if p.at(TKeyword) && p.tok().Text == "DISTINCT" {
				p.next()
				if err := p.expectKw("FROM"); err != nil {
					return nil, err
				}
				r, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				op := "IS DISTINCT FROM"
				if not {
					op = "IS NOT DISTINCT FROM"
				}
				l = &BinaryExpr{Op: op, L: l, R: r}
				continue
			}
			if p.atKw("TRUE") || p.atKw("FALSE") {
				val := p.next().Text == "TRUE"
				cmp := &BinaryExpr{Op: "=", L: l, R: &BoolLit{V: val}}
				if not {
					l = &UnaryExpr{Op: "NOT", X: cmp}
				} else {
					l = cmp
				}
				continue
			}
			return nil, p.errf("unsupported IS clause")
		case p.atKw("IN"):
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var list []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if p.atOp(",") {
					p.next()
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			l = &InExpr{X: l, List: list}
		case p.atKw("NOT") && p.peekKwAt(1, "IN"):
			p.next()
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var list []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if p.atOp(",") {
					p.next()
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			l = &InExpr{X: l, Not: true, List: list}
		case p.atKw("BETWEEN"):
			p.next()
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BetweenExpr{X: l, Lo: lo, Hi: hi}
		case p.atKw("LIKE") || p.atKw("ILIKE"):
			op := p.next().Text
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: op, L: l, R: r}
		case p.atKw("NOT") && (p.peekKwAt(1, "LIKE") || p.peekKwAt(1, "BETWEEN")):
			p.next()
			if p.atKw("LIKE") {
				p.next()
				r, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &UnaryExpr{Op: "NOT", X: &BinaryExpr{Op: "LIKE", L: l, R: r}}
			} else {
				p.next()
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expectKw("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &BetweenExpr{X: l, Not: true, Lo: lo, Hi: hi}
			}
		default:
			return l, nil
		}
	}
}

func (p *parser) peekKwAt(d int, w string) bool {
	if p.pos+d >= len(p.toks) {
		return false
	}
	t := p.toks[p.pos+d]
	return t.Kind == TKeyword && t.Text == w
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") || p.atOp("||") {
		op := p.next().Text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") || p.atOp("%") {
		op := p.next().Text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.atOp("-") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	if p.atOp("+") {
		p.next()
		return p.parseUnary()
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.atOp("::") {
		p.next()
		t, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		e = &CastExpr{X: e, Type: t}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.tok()
	switch {
	case t.Kind == TNumber:
		p.next()
		return &NumberLit{Text: t.Text}, nil
	case t.Kind == TString:
		p.next()
		return &StringLit{V: t.Text}, nil
	case t.Kind == TParam:
		p.next()
		n, _ := strconv.Atoi(strings.TrimPrefix(t.Text, "$"))
		return &ParamRef{N: n}, nil
	case p.atKw("NULL"):
		p.next()
		return &NullLit{}, nil
	case p.atKw("TRUE"):
		p.next()
		return &BoolLit{V: true}, nil
	case p.atKw("FALSE"):
		p.next()
		return &BoolLit{V: false}, nil
	case p.atKw("CASE"):
		return p.parseCase()
	case p.atKw("CAST"):
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		tn, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &CastExpr{X: x, Type: tn}, nil
	case p.atOp("("):
		p.next()
		if p.atKw("SELECT") {
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Query: q}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TIdent:
		return p.parseIdentExpr()
	default:
		return nil, p.errf("unexpected token %s in expression", t)
	}
}

func (p *parser) parseCase() (Expr, error) {
	p.next() // CASE
	c := &CaseExpr{}
	if !p.atKw("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.atKw("WHEN") {
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if p.atKw("ELSE") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}

// parseIdentExpr handles column refs (possibly qualified) and function
// calls (possibly windowed).
func (p *parser) parseIdentExpr() (Expr, error) {
	name := p.next().Text
	if p.atOp("(") { // function call
		p.next()
		fc := &FuncCall{Name: name}
		if p.atOp("*") {
			p.next()
			fc.Star = true
		} else if !p.atOp(")") {
			if p.atKw("DISTINCT") {
				p.next()
				fc.Distinct = true
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, e)
				if p.atOp(",") {
					p.next()
					continue
				}
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		if p.atKw("OVER") {
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			ws := &WindowSpec{}
			if p.atKw("PARTITION") {
				p.next()
				if err := p.expectKw("BY"); err != nil {
					return nil, err
				}
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					ws.PartitionBy = append(ws.PartitionBy, e)
					if p.atOp(",") {
						p.next()
						continue
					}
					break
				}
			}
			if p.atKw("ORDER") {
				p.next()
				if err := p.expectKw("BY"); err != nil {
					return nil, err
				}
				items, err := p.parseOrderItems()
				if err != nil {
					return nil, err
				}
				ws.OrderBy = items
			}
			// tolerate a frame clause; the engine uses the default frame
			for !p.atOp(")") && !p.at(TEOF) {
				p.next()
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			fc.Over = ws
		}
		return fc, nil
	}
	if p.atOp(".") {
		p.next()
		col, err := p.parseName()
		if err != nil {
			return nil, err
		}
		return &ColRef{Table: name, Name: col}, nil
	}
	return &ColRef{Name: name}, nil
}
