package sqlparse

import "testing"

func sel(t *testing.T, src string) *SelectStmt {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	ss, ok := s.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", src, s)
	}
	return ss
}

func TestSimpleSelect(t *testing.T) {
	s := sel(t, "SELECT a, b FROM t WHERE a = 1")
	if len(s.Items) != 2 || len(s.From) != 1 || s.Where == nil {
		t.Fatalf("select = %+v", s)
	}
	bt := s.From[0].(*BaseTable)
	if bt.Name != "t" {
		t.Fatalf("from = %+v", bt)
	}
}

func TestStarAndQualifiedStar(t *testing.T) {
	s := sel(t, "SELECT * FROM t")
	if !s.Items[0].Star {
		t.Fatal("star not detected")
	}
	s = sel(t, "SELECT t1.* FROM t t1")
	if !s.Items[0].Star || s.Items[0].StarTable != "t1" {
		t.Fatalf("qualified star = %+v", s.Items[0])
	}
}

func TestAliases(t *testing.T) {
	s := sel(t, "SELECT a AS x, b y FROM trades AS tr")
	if s.Items[0].Alias != "x" || s.Items[1].Alias != "y" {
		t.Fatalf("aliases = %+v", s.Items)
	}
	if s.From[0].(*BaseTable).Alias != "tr" {
		t.Fatalf("table alias = %+v", s.From[0])
	}
}

func TestJoins(t *testing.T) {
	s := sel(t, "SELECT * FROM a LEFT OUTER JOIN b ON a.k = b.k JOIN c ON b.j = c.j")
	j := s.From[0].(*JoinRef)
	if j.Type != InnerJoin {
		t.Fatalf("outer join type = %v", j.Type)
	}
	inner := j.Left.(*JoinRef)
	if inner.Type != LeftJoin {
		t.Fatalf("inner join type = %v", inner.Type)
	}
}

func TestGroupOrderLimit(t *testing.T) {
	s := sel(t, "SELECT sym, MAX(price) AS mx FROM t GROUP BY sym HAVING MAX(price) > 10 ORDER BY sym DESC NULLS FIRST LIMIT 5 OFFSET 2")
	if len(s.GroupBy) != 1 || s.Having == nil || len(s.OrderBy) != 1 || s.Limit == nil || s.Offset == nil {
		t.Fatalf("clauses = %+v", s)
	}
	if !s.OrderBy[0].Desc || s.OrderBy[0].NullsFirst == nil || !*s.OrderBy[0].NullsFirst {
		t.Fatalf("order item = %+v", s.OrderBy[0])
	}
}

func TestIsNotDistinctFrom(t *testing.T) {
	s := sel(t, "SELECT * FROM t WHERE sym IS NOT DISTINCT FROM 'GOOG'")
	be := s.Where.(*BinaryExpr)
	if be.Op != "IS NOT DISTINCT FROM" {
		t.Fatalf("op = %q", be.Op)
	}
	s = sel(t, "SELECT * FROM t WHERE a IS DISTINCT FROM b")
	if s.Where.(*BinaryExpr).Op != "IS DISTINCT FROM" {
		t.Fatal("IS DISTINCT FROM not parsed")
	}
}

func TestIsNullInBetweenLike(t *testing.T) {
	s := sel(t, "SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL AND c IN (1,2,3) AND d BETWEEN 1 AND 5 AND e LIKE 'G%'")
	and := s.Where.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("top op = %v", and.Op)
	}
}

func TestCaseExpr(t *testing.T) {
	s := sel(t, "SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t")
	c := s.Items[0].Expr.(*CaseExpr)
	if len(c.Whens) != 1 || c.Else == nil || c.Operand != nil {
		t.Fatalf("case = %+v", c)
	}
}

func TestCastSyntaxes(t *testing.T) {
	s := sel(t, "SELECT CAST(a AS bigint), b::varchar, 1::int FROM t")
	if _, ok := s.Items[0].Expr.(*CastExpr); !ok {
		t.Fatal("CAST() not parsed")
	}
	if c, ok := s.Items[1].Expr.(*CastExpr); !ok || c.Type != "varchar" {
		t.Fatal(":: cast not parsed")
	}
}

func TestWindowFunctions(t *testing.T) {
	s := sel(t, "SELECT ROW_NUMBER() OVER (PARTITION BY sym ORDER BY ts) AS rn, SUM(size) OVER (PARTITION BY sym) FROM t")
	fc := s.Items[0].Expr.(*FuncCall)
	if fc.Over == nil || len(fc.Over.PartitionBy) != 1 || len(fc.Over.OrderBy) != 1 {
		t.Fatalf("window = %+v", fc.Over)
	}
	fc2 := s.Items[1].Expr.(*FuncCall)
	if fc2.Over == nil || fc2.Name != "sum" {
		t.Fatalf("windowed agg = %+v", fc2)
	}
}

func TestSubqueries(t *testing.T) {
	s := sel(t, "SELECT * FROM (SELECT a FROM t) sub WHERE a > (SELECT AVG(a) FROM t)")
	if _, ok := s.From[0].(*SubqueryRef); !ok {
		t.Fatal("from subquery not parsed")
	}
	cmp := s.Where.(*BinaryExpr)
	if _, ok := cmp.R.(*SubqueryExpr); !ok {
		t.Fatal("scalar subquery not parsed")
	}
}

func TestCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE trades (sym varchar, price double precision, size bigint)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if ct.Temp || len(ct.Cols) != 3 || ct.Cols[1].Type != "double precision" {
		t.Fatalf("create = %+v", ct)
	}
}

func TestCreateTempTableAs(t *testing.T) {
	st, err := Parse("CREATE TEMPORARY TABLE hq_temp_1 AS SELECT ordcol, price FROM trades ORDER BY ordcol")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if !ct.Temp || ct.AsSelect == nil || ct.Name != "hq_temp_1" {
		t.Fatalf("create temp as = %+v", ct)
	}
}

func TestCreateView(t *testing.T) {
	st, err := Parse("CREATE VIEW v AS SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*CreateViewStmt).Name != "v" {
		t.Fatal("view name")
	}
}

func TestInsertValuesAndSelect(t *testing.T) {
	st, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Cols) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	st, err = Parse("INSERT INTO t SELECT * FROM s")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*InsertStmt).Select == nil {
		t.Fatal("insert-select")
	}
}

func TestUpdateDeleteDrop(t *testing.T) {
	st, err := Parse("UPDATE t SET a = a + 1, b = 2 WHERE a < 5")
	if err != nil {
		t.Fatal(err)
	}
	up := st.(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("update = %+v", up)
	}
	st, err = Parse("DELETE FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*DeleteStmt).Where == nil {
		t.Fatal("delete where")
	}
	st, err = Parse("DROP TABLE IF EXISTS t")
	if err != nil {
		t.Fatal(err)
	}
	if !st.(*DropStmt).IfExists {
		t.Fatal("drop if exists")
	}
}

func TestUnion(t *testing.T) {
	s := sel(t, "SELECT a FROM t UNION ALL SELECT a FROM s")
	if s.Union == nil || !s.Union.All {
		t.Fatalf("union = %+v", s.Union)
	}
}

func TestQuotedIdentifiersPreserveCase(t *testing.T) {
	s := sel(t, `SELECT "Price" FROM "Trades"`)
	if s.Items[0].Expr.(*ColRef).Name != "Price" {
		t.Fatal("quoted ident case lost")
	}
	if s.From[0].(*BaseTable).Name != "Trades" {
		t.Fatal("quoted table case lost")
	}
}

func TestUnquotedIdentifiersFold(t *testing.T) {
	s := sel(t, "SELECT PRICE FROM Trades")
	if s.Items[0].Expr.(*ColRef).Name != "price" {
		t.Fatal("unquoted ident should fold to lowercase")
	}
}

func TestSchemaQualifiedTable(t *testing.T) {
	s := sel(t, "SELECT * FROM information_schema.columns")
	bt := s.From[0].(*BaseTable)
	if bt.Schema != "information_schema" || bt.Name != "columns" {
		t.Fatalf("qualified = %+v", bt)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	s := sel(t, "SELECT 1 + 2 * 3 FROM t")
	add := s.Items[0].Expr.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top = %v", add.Op)
	}
	if add.R.(*BinaryExpr).Op != "*" {
		t.Fatal("precedence broken")
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE a (x int); INSERT INTO a VALUES (1); SELECT * FROM a;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("script stmts = %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "SELECT", "SELECT FROM", "SELECT * FROM", "CREATE TABLE",
		"INSERT INTO t", "SELECT * FROM t WHERE", "SELECT a FROM t GROUP",
		"SELECT 'unterminated FROM t",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestComments(t *testing.T) {
	s := sel(t, "SELECT a -- trailing\nFROM t /* block */ WHERE a = 1")
	if s.Where == nil {
		t.Fatal("comments broke parsing")
	}
}
