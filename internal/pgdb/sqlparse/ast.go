package sqlparse

// Stmt is any SQL statement.
type Stmt interface{ stmt() }

// Expr is any SQL scalar expression.
type Expr interface{ expr() }

// SelectStmt is a SELECT query, possibly with set operations chained via
// Union.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // comma-joined table refs (cross joins)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr
	Offset   Expr
	Union    *UnionClause
}

func (*SelectStmt) stmt() {}

// UnionClause chains a set operation onto a select.
type UnionClause struct {
	All   bool
	Right *SelectStmt
}

// SelectItem is one output column: expression plus optional alias; a Star
// item expands to all columns (optionally qualified).
type SelectItem struct {
	Star      bool
	StarTable string // "t".* when set
	Expr      Expr
	Alias     string
}

// TableRef is an entry of the FROM clause: a base table, a subquery, or a
// join tree.
type TableRef interface{ tableRef() }

// BaseTable references a named table or view, with an optional alias.
type BaseTable struct {
	Schema string
	Name   string
	Alias  string
}

func (*BaseTable) tableRef() {}

// SubqueryRef is a parenthesized SELECT used as a table, with an alias.
type SubqueryRef struct {
	Query *SelectStmt
	Alias string
}

func (*SubqueryRef) tableRef() {}

// JoinType enumerates join kinds.
type JoinType int

// Join kinds.
const (
	InnerJoin JoinType = iota
	LeftJoin
	RightJoin
	FullJoin
	CrossJoin
)

// JoinRef is a binary join between two table refs with an ON condition.
type JoinRef struct {
	Type  JoinType
	Left  TableRef
	Right TableRef
	On    Expr
}

func (*JoinRef) tableRef() {}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr       Expr
	Desc       bool
	NullsFirst *bool // nil means dialect default (nulls last asc / first desc)
}

// CreateTableStmt covers CREATE [TEMPORARY] TABLE name (cols) and
// CREATE [TEMPORARY] TABLE name AS SELECT.
type CreateTableStmt struct {
	Temp        bool
	IfNotExists bool
	Name        string
	Cols        []ColumnDef
	AsSelect    *SelectStmt
}

func (*CreateTableStmt) stmt() {}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name string
	Type string // normalized lowercase type name
}

// CreateViewStmt is CREATE VIEW name AS SELECT.
type CreateViewStmt struct {
	Name     string
	AsSelect *SelectStmt
}

func (*CreateViewStmt) stmt() {}

// DropStmt is DROP TABLE/VIEW [IF EXISTS] name.
type DropStmt struct {
	View     bool
	IfExists bool
	Name     string
}

func (*DropStmt) stmt() {}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...),(...) or
// INSERT INTO name [(cols)] SELECT.
type InsertStmt struct {
	Table  string
	Cols   []string
	Rows   [][]Expr
	Select *SelectStmt
}

func (*InsertStmt) stmt() {}

// UpdateStmt is UPDATE name SET col=expr,... [WHERE].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

func (*UpdateStmt) stmt() {}

// SetClause is one col=expr of an UPDATE.
type SetClause struct {
	Col  string
	Expr Expr
}

// DeleteStmt is DELETE FROM name [WHERE].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// TxStmt is BEGIN/COMMIT/ROLLBACK (no-ops in the embedded engine).
type TxStmt struct {
	Kind string
}

func (*TxStmt) stmt() {}

// Expressions

// NumberLit is a numeric literal kept as text until typing.
type NumberLit struct {
	Text string
}

func (*NumberLit) expr() {}

// StringLit is a string literal.
type StringLit struct {
	V string
}

func (*StringLit) expr() {}

// BoolLit is TRUE/FALSE.
type BoolLit struct {
	V bool
}

func (*BoolLit) expr() {}

// NullLit is NULL.
type NullLit struct{}

func (*NullLit) expr() {}

// ColRef references a column, optionally qualified with a table alias.
type ColRef struct {
	Table string
	Name  string
}

func (*ColRef) expr() {}

// ParamRef is a $n placeholder.
type ParamRef struct {
	N int
}

func (*ParamRef) expr() {}

// BinaryExpr applies a binary operator: arithmetic, comparison, AND/OR,
// string concatenation, LIKE, and IS [NOT] DISTINCT FROM.
type BinaryExpr struct {
	Op   string // "+", "-", "*", "/", "%", "||", "=", "<>", "<", ">", "<=", ">=", "AND", "OR", "LIKE", "IS DISTINCT FROM", "IS NOT DISTINCT FROM"
	L, R Expr
}

func (*BinaryExpr) expr() {}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string // "NOT", "-"
	X  Expr
}

func (*UnaryExpr) expr() {}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (*IsNullExpr) expr() {}

// InExpr is x [NOT] IN (e1, e2, ...).
type InExpr struct {
	X    Expr
	Not  bool
	List []Expr
}

func (*InExpr) expr() {}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X      Expr
	Not    bool
	Lo, Hi Expr
}

func (*BetweenExpr) expr() {}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr
}

func (*CaseExpr) expr() {}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

// FuncCall is a function invocation, possibly an aggregate (COUNT/SUM/...)
// or, when Over is non-nil, a window function.
type FuncCall struct {
	Name     string // lowercased
	Star     bool   // COUNT(*)
	Distinct bool
	Args     []Expr
	Over     *WindowSpec
}

func (*FuncCall) expr() {}

// WindowSpec is the OVER (...) clause of a window function.
type WindowSpec struct {
	PartitionBy []Expr
	OrderBy     []OrderItem
}

// CastExpr is CAST(x AS type) or x::type.
type CastExpr struct {
	X    Expr
	Type string // normalized lowercase
}

func (*CastExpr) expr() {}

// SubqueryExpr is a scalar subquery (SELECT ...) used as an expression.
type SubqueryExpr struct {
	Query *SelectStmt
}

func (*SubqueryExpr) expr() {}

// ValueLit is an engine-internal literal carrying an already-computed value.
// The parser never produces it; the executor synthesizes it when folding
// aggregate results back into scalar expressions.
type ValueLit struct {
	V any
}

func (*ValueLit) expr() {}
