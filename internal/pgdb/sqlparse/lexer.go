// Package sqlparse implements a lexer and parser for the PostgreSQL dialect
// that Hyper-Q's serializer emits and that the embedded pgdb engine executes:
// SELECT with joins, grouping, ordering, subqueries and window functions;
// CREATE [TEMPORARY] TABLE [AS], CREATE VIEW, INSERT, UPDATE, DELETE, DROP;
// expressions with SQL three-valued logic, IS [NOT] DISTINCT FROM, CASE,
// CAST/:: and the common scalar and aggregate functions.
package sqlparse

import (
	"fmt"
	"strings"
)

// TokKind classifies SQL tokens.
type TokKind int

// Token kinds.
const (
	TEOF   TokKind = iota
	TIdent         // unquoted (lowercased) or "quoted" identifiers
	TKeyword
	TNumber
	TString // 'single quoted'
	TOp     // operators and punctuation
	TParam  // $1 style placeholders
)

// Token is one SQL lexical unit.
type Token struct {
	Kind TokKind
	Text string // keywords are uppercased, unquoted identifiers lowercased
	Pos  int
}

func (t Token) String() string { return fmt.Sprintf("%v(%q)", t.Kind, t.Text) }

var sqlKeywords = map[string]bool{}

func init() {
	for _, k := range []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "HAVING", "LIMIT",
		"OFFSET", "AS", "ON", "JOIN", "INNER", "LEFT", "RIGHT", "FULL",
		"OUTER", "CROSS", "UNION", "ALL", "DISTINCT", "AND", "OR", "NOT",
		"NULL", "TRUE", "FALSE", "IS", "IN", "BETWEEN", "LIKE", "ILIKE",
		"CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "CREATE", "TEMPORARY",
		"TEMP", "TABLE", "VIEW", "DROP", "INSERT", "INTO", "VALUES", "UPDATE",
		"SET", "DELETE", "TRUNCATE", "IF", "EXISTS", "PRIMARY", "KEY",
		"OVER", "PARTITION", "ROWS", "RANGE", "UNBOUNDED", "PRECEDING",
		"FOLLOWING", "CURRENT", "ROW", "ASC", "DESC", "NULLS", "BEGIN", "COMMIT", "ROLLBACK", "EXPLAIN", "ANALYZE",
	} {
		sqlKeywords[k] = true
	}
}

// LexError is a lexical error with byte offset.
type LexError struct {
	Msg string
	Pos int
}

func (e *LexError) Error() string { return fmt.Sprintf("sql lex error at %d: %s", e.Pos, e.Msg) }

// Lex tokenizes SQL text.
func Lex(src string) ([]Token, error) {
	var out []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // line comment
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*': // block comment
			j := strings.Index(src[i+2:], "*/")
			if j < 0 {
				return nil, &LexError{Msg: "unterminated comment", Pos: i}
			}
			i += j + 4
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, &LexError{Msg: "unterminated string", Pos: start}
			}
			out = append(out, Token{Kind: TString, Text: b.String(), Pos: start})
		case c == '"':
			start := i
			i++
			j := strings.IndexByte(src[i:], '"')
			if j < 0 {
				return nil, &LexError{Msg: "unterminated quoted identifier", Pos: start}
			}
			out = append(out, Token{Kind: TIdent, Text: src[i : i+j], Pos: start})
			i += j + 1
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			start := i
			for i < n && (src[i] >= '0' && src[i] <= '9' || src[i] == '.' ||
				src[i] == 'e' || src[i] == 'E' ||
				((src[i] == '+' || src[i] == '-') && i > start && (src[i-1] == 'e' || src[i-1] == 'E'))) {
				i++
			}
			out = append(out, Token{Kind: TNumber, Text: src[start:i], Pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if sqlKeywords[up] {
				out = append(out, Token{Kind: TKeyword, Text: up, Pos: start})
			} else {
				out = append(out, Token{Kind: TIdent, Text: strings.ToLower(word), Pos: start})
			}
		case c == '$':
			start := i
			i++
			for i < n && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			out = append(out, Token{Kind: TParam, Text: src[start:i], Pos: start})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<>", "<=", ">=", "!=", "||", "::":
				out = append(out, Token{Kind: TOp, Text: two, Pos: start})
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '(', ')', ',', '=', '<', '>', '.', ';':
				out = append(out, Token{Kind: TOp, Text: string(c), Pos: start})
				i++
			default:
				return nil, &LexError{Msg: fmt.Sprintf("unexpected character %q", string(c)), Pos: i}
			}
		}
	}
	out = append(out, Token{Kind: TEOF, Pos: n})
	return out, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
