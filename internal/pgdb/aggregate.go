package pgdb

import (
	"math"
	"sort"

	"hyperq/internal/pgdb/sqlparse"
)

var aggregateNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"stddev": true, "stddev_samp": true, "stddev_pop": true,
	"variance": true, "var_samp": true, "var_pop": true,
	"bool_and": true, "bool_or": true, "string_agg": true,
	// Hyper-Q toolbox extensions (paper §5: a "toolbox" of user-defined
	// functions covers kdb+ capabilities PostgreSQL lacks): positional
	// first/last over the input order, and median.
	"first": true, "last": true, "median": true,
}

// selectHasAggregate reports whether any select item or the HAVING clause
// contains a non-windowed aggregate call.
func selectHasAggregate(sel *sqlparse.SelectStmt) bool {
	for _, item := range sel.Items {
		if item.Expr != nil && exprHasAggregate(item.Expr) {
			return true
		}
	}
	return sel.Having != nil && exprHasAggregate(sel.Having)
}

func exprHasAggregate(e sqlparse.Expr) bool {
	found := false
	walkExpr(e, func(x sqlparse.Expr) {
		if fc, ok := x.(*sqlparse.FuncCall); ok && fc.Over == nil && aggregateNames[fc.Name] {
			found = true
		}
	})
	return found
}

// walkExpr visits every sub-expression.
func walkExpr(e sqlparse.Expr, fn func(sqlparse.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *sqlparse.BinaryExpr:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *sqlparse.UnaryExpr:
		walkExpr(x.X, fn)
	case *sqlparse.IsNullExpr:
		walkExpr(x.X, fn)
	case *sqlparse.InExpr:
		walkExpr(x.X, fn)
		for _, l := range x.List {
			walkExpr(l, fn)
		}
	case *sqlparse.BetweenExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *sqlparse.CaseExpr:
		walkExpr(x.Operand, fn)
		for _, w := range x.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Then, fn)
		}
		walkExpr(x.Else, fn)
	case *sqlparse.CastExpr:
		walkExpr(x.X, fn)
	case *sqlparse.FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
		if x.Over != nil {
			for _, p := range x.Over.PartitionBy {
				walkExpr(p, fn)
			}
			for _, o := range x.Over.OrderBy {
				walkExpr(o.Expr, fn)
			}
		}
	}
}

// execGrouped runs the GROUP BY / aggregate path: group rows by the GROUP BY
// expressions (one global group when absent), evaluate each select item per
// group with aggregate calls bound to the group's rows, then apply HAVING.
func (s *Session) execGrouped(sel *sqlparse.SelectStmt, rel *relation) (*Result, error) {
	rel.rowsView() // row-at-a-time grouping
	items, err := expandStars(sel.Items, rel.schema)
	if err != nil {
		return nil, err
	}
	type group struct {
		keyVals []any
		rows    [][]any
	}
	var order []string
	groups := map[string]*group{}
	if len(sel.GroupBy) == 0 {
		g := &group{rows: rel.rows}
		groups[""] = g
		order = append(order, "")
	} else {
		for _, row := range rel.rows {
			keyVals := make([]any, len(sel.GroupBy))
			for i, ge := range sel.GroupBy {
				v, err := s.evalExpr(ge, rel.schema, row)
				if err != nil {
					return nil, err
				}
				keyVals[i] = v
			}
			k := keyString(keyVals)
			g, ok := groups[k]
			if !ok {
				g = &group{keyVals: keyVals}
				groups[k] = g
				order = append(order, k)
			}
			g.rows = append(g.rows, row)
		}
	}
	res := &Result{}
	for _, item := range items {
		res.Cols = append(res.Cols, Column{
			Name: itemName(item, rel.schema),
			Type: s.inferType(item.Expr, rel.schema),
		})
	}
	for _, k := range order {
		g := groups[k]
		if len(sel.GroupBy) == 0 && len(g.rows) == 0 {
			// global aggregate over empty input still yields one row
			g.rows = nil
		}
		out := make([]any, len(items))
		for i, item := range items {
			v, err := s.evalAggExpr(item.Expr, rel.schema, g.rows)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		if sel.Having != nil {
			hv, err := s.evalAggExpr(sel.Having, rel.schema, g.rows)
			if err != nil {
				return nil, err
			}
			if b, ok := hv.(bool); !ok || !b {
				continue
			}
		}
		res.Rows = append(res.Rows, out)
	}
	refineTypes(res)
	return res, nil
}

// evalAggExpr evaluates an expression in group context: aggregate calls
// consume the group's rows; everything else evaluates against the group's
// first row (the PostgreSQL requirement that non-aggregated columns be
// grouping columns makes this well-defined for valid queries).
func (s *Session) evalAggExpr(e sqlparse.Expr, schema []colBinding, rows [][]any) (any, error) {
	switch x := e.(type) {
	case *sqlparse.FuncCall:
		if x.Over == nil && aggregateNames[x.Name] {
			return s.computeAggregate(x, schema, rows)
		}
		// scalar function over aggregate results, e.g. COALESCE(SUM(x), 0)
		// or NULLIF(SUM(w), 0) — the shapes Hyper-Q emits to impose Q's
		// aggregate identities
		if exprHasAggregate(x) {
			lits := make([]sqlparse.Expr, len(x.Args))
			for i, a := range x.Args {
				v, err := s.evalAggExpr(a, schema, rows)
				if err != nil {
					return nil, err
				}
				lits[i] = litFor(v)
			}
			return s.evalScalarFunc(&sqlparse.FuncCall{Name: x.Name, Args: lits}, nil, nil, -1, nil)
		}
	case *sqlparse.CaseExpr:
		if exprHasAggregate(x) {
			for _, w := range x.Whens {
				var hit bool
				if x.Operand != nil {
					ov, err := s.evalAggExpr(x.Operand, schema, rows)
					if err != nil {
						return nil, err
					}
					cv, err := s.evalAggExpr(w.Cond, schema, rows)
					if err != nil {
						return nil, err
					}
					hit = ov != nil && cv != nil && equalVals(ov, cv)
				} else {
					cv, err := s.evalAggExpr(w.Cond, schema, rows)
					if err != nil {
						return nil, err
					}
					b, ok := cv.(bool)
					hit = ok && b
				}
				if hit {
					return s.evalAggExpr(w.Then, schema, rows)
				}
			}
			if x.Else != nil {
				return s.evalAggExpr(x.Else, schema, rows)
			}
			return nil, nil
		}
	case *sqlparse.IsNullExpr:
		if exprHasAggregate(x) {
			v, err := s.evalAggExpr(x.X, schema, rows)
			if err != nil {
				return nil, err
			}
			if x.Not {
				return v != nil, nil
			}
			return v == nil, nil
		}
	case *sqlparse.BinaryExpr:
		if exprHasAggregate(x) {
			l, err := s.evalAggExpr(x.L, schema, rows)
			if err != nil {
				return nil, err
			}
			r, err := s.evalAggExpr(x.R, schema, rows)
			if err != nil {
				return nil, err
			}
			return s.evalBinary(&sqlparse.BinaryExpr{Op: x.Op, L: litFor(l), R: litFor(r)}, nil, nil, -1, nil)
		}
	case *sqlparse.CastExpr:
		if exprHasAggregate(x) {
			v, err := s.evalAggExpr(x.X, schema, rows)
			if err != nil {
				return nil, err
			}
			return castValue(v, normalizeType(x.Type))
		}
	case *sqlparse.UnaryExpr:
		if exprHasAggregate(x) {
			v, err := s.evalAggExpr(x.X, schema, rows)
			if err != nil {
				return nil, err
			}
			return s.evalExpr(&sqlparse.UnaryExpr{Op: x.Op, X: litFor(v)}, nil, nil)
		}
	}
	if len(rows) == 0 {
		// row-independent expressions (literals, arithmetic on literals)
		// still have a value over an empty group — COALESCE(SUM(x), 0)
		// relies on the 0 surviving
		if exprHasColRef(e) {
			return nil, nil
		}
		return s.evalExpr(e, schema, nil)
	}
	return s.evalExpr(e, schema, rows[0])
}

func exprHasColRef(e sqlparse.Expr) bool {
	found := false
	walkExpr(e, func(x sqlparse.Expr) {
		if _, ok := x.(*sqlparse.ColRef); ok {
			found = true
		}
	})
	return found
}

// litFor wraps a computed value as a literal for re-evaluation.
func litFor(v any) sqlparse.Expr {
	switch x := v.(type) {
	case nil:
		return &sqlparse.NullLit{}
	case bool:
		return &sqlparse.BoolLit{V: x}
	case int64:
		return &sqlparse.NumberLit{Text: FormatValue(x, "bigint")}
	case float64:
		return &sqlparse.ValueLit{V: x}
	case string:
		return &sqlparse.StringLit{V: x}
	default:
		return &sqlparse.ValueLit{V: v}
	}
}

// computeAggregate evaluates one aggregate call over the group's rows,
// skipping NULL inputs per SQL.
func (s *Session) computeAggregate(fc *sqlparse.FuncCall, schema []colBinding, rows [][]any) (any, error) {
	if fc.Star { // COUNT(*)
		return int64(len(rows)), nil
	}
	if len(fc.Args) == 0 {
		return nil, errf("42883", "%s requires an argument", fc.Name)
	}
	// first/last are positional over the group's input order and do not
	// skip NULLs, matching q's first/last.
	if fc.Name == "first" || fc.Name == "last" {
		if len(rows) == 0 {
			return nil, nil
		}
		row := rows[0]
		if fc.Name == "last" {
			row = rows[len(rows)-1]
		}
		return s.evalExpr(fc.Args[0], schema, row)
	}
	var vals []any
	seen := map[string]bool{}
	for _, row := range rows {
		v, err := s.evalExpr(fc.Args[0], schema, row)
		if err != nil {
			return nil, err
		}
		if v == nil {
			continue
		}
		if fc.Distinct {
			k := keyString([]any{v})
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	return finalizeAggregate(fc, vals)
}

// finalizeAggregate computes an aggregate from its collected non-null input
// values. Shared by the interpreter and the compiled engine (compileagg.go)
// so numeric results are bit-identical between the two.
func finalizeAggregate(fc *sqlparse.FuncCall, vals []any) (any, error) {
	switch fc.Name {
	case "count":
		return int64(len(vals)), nil
	case "sum":
		if len(vals) == 0 {
			return nil, nil
		}
		allInt := true
		var fsum float64
		var isum int64
		for _, v := range vals {
			if n, ok := v.(int64); ok {
				isum += n
				fsum += float64(n)
				continue
			}
			allInt = false
			f, ok := toFloat(v)
			if !ok {
				return nil, errf("42804", "sum of non-number")
			}
			fsum += f
		}
		if allInt {
			return isum, nil
		}
		return fsum, nil
	case "avg":
		if len(vals) == 0 {
			return nil, nil
		}
		var sum float64
		for _, v := range vals {
			f, ok := toFloat(v)
			if !ok {
				return nil, errf("42804", "avg of non-number")
			}
			sum += f
		}
		return sum / float64(len(vals)), nil
	case "min", "max":
		if len(vals) == 0 {
			return nil, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := compareVals(v, best)
			if (fc.Name == "min" && c < 0) || (fc.Name == "max" && c > 0) {
				best = v
			}
		}
		return best, nil
	case "stddev", "stddev_samp", "variance", "var_samp", "stddev_pop", "var_pop":
		if len(vals) == 0 {
			return nil, nil
		}
		pop := fc.Name == "stddev_pop" || fc.Name == "var_pop"
		if !pop && len(vals) < 2 {
			return nil, nil
		}
		var sum float64
		fs := make([]float64, len(vals))
		for i, v := range vals {
			f, ok := toFloat(v)
			if !ok {
				return nil, errf("42804", "%s of non-number", fc.Name)
			}
			fs[i] = f
			sum += f
		}
		mean := sum / float64(len(fs))
		var ss float64
		for _, f := range fs {
			ss += (f - mean) * (f - mean)
		}
		den := float64(len(fs) - 1)
		if pop {
			den = float64(len(fs))
		}
		v := ss / den
		switch fc.Name {
		case "stddev", "stddev_samp", "stddev_pop":
			return math.Sqrt(v), nil
		default:
			return v, nil
		}
	case "bool_and", "bool_or":
		if len(vals) == 0 {
			return nil, nil
		}
		acc := fc.Name == "bool_and"
		for _, v := range vals {
			b, ok := v.(bool)
			if !ok {
				return nil, errf("42804", "%s of non-boolean", fc.Name)
			}
			if fc.Name == "bool_and" {
				acc = acc && b
			} else {
				acc = acc || b
			}
		}
		return acc, nil
	case "median":
		if len(vals) == 0 {
			return nil, nil
		}
		fs := make([]float64, len(vals))
		for i, v := range vals {
			f, ok := toFloat(v)
			if !ok {
				return nil, errf("42804", "median of non-number")
			}
			fs[i] = f
		}
		sort.Float64s(fs)
		m := len(fs) / 2
		if len(fs)%2 == 1 {
			return fs[m], nil
		}
		return (fs[m-1] + fs[m]) / 2, nil
	case "string_agg":
		if len(vals) == 0 {
			return nil, nil
		}
		sep := ","
		if len(fc.Args) > 1 {
			if sl, ok := fc.Args[1].(*sqlparse.StringLit); ok {
				sep = sl.V
			}
		}
		out := ""
		for i, v := range vals {
			if i > 0 {
				out += sep
			}
			out += FormatValue(v, "varchar")
		}
		return out, nil
	default:
		return nil, errf("42883", "aggregate %s does not exist", fc.Name)
	}
}

// computeWindows precomputes all window-function values referenced by the
// select items, keyed by the FuncCall node. Supported: row_number, rank,
// dense_rank, lag, lead, first_value, last_value, and the aggregates
// sum/avg/min/max/count over a partition (running when ordered, whole
// partition otherwise — the frames Hyper-Q's order-column injection emits).
func (s *Session) computeWindows(items []sqlparse.SelectItem, rel *relation) (map[*sqlparse.FuncCall][]any, error) {
	var calls []*sqlparse.FuncCall
	for _, item := range items {
		walkExpr(item.Expr, func(e sqlparse.Expr) {
			if fc, ok := e.(*sqlparse.FuncCall); ok && fc.Over != nil {
				calls = append(calls, fc)
			}
		})
	}
	if len(calls) == 0 {
		return nil, nil
	}
	out := make(map[*sqlparse.FuncCall][]any, len(calls))
	n := len(rel.rows)
	for _, fc := range calls {
		vals := make([]any, n)
		// partition rows
		parts := map[string][]int{}
		var order []string
		for i, row := range rel.rows {
			kv := make([]any, len(fc.Over.PartitionBy))
			for k, pe := range fc.Over.PartitionBy {
				v, err := s.evalExpr(pe, rel.schema, row)
				if err != nil {
					return nil, err
				}
				kv[k] = v
			}
			key := keyString(kv)
			if _, ok := parts[key]; !ok {
				order = append(order, key)
			}
			parts[key] = append(parts[key], i)
		}
		for _, key := range order {
			idx := parts[key]
			// order within partition
			if len(fc.Over.OrderBy) > 0 {
				keys := make([][]any, len(idx))
				for k, ri := range idx {
					keys[k] = make([]any, len(fc.Over.OrderBy))
					for j, ob := range fc.Over.OrderBy {
						v, err := s.evalExpr(ob.Expr, rel.schema, rel.rows[ri])
						if err != nil {
							return nil, err
						}
						keys[k][j] = v
					}
				}
				perm := make([]int, len(idx))
				for i := range perm {
					perm[i] = i
				}
				sort.SliceStable(perm, func(a, b int) bool {
					for j, ob := range fc.Over.OrderBy {
						av, bv := keys[perm[a]][j], keys[perm[b]][j]
						if av == nil && bv == nil {
							continue
						}
						if av == nil {
							return ob.Desc
						}
						if bv == nil {
							return !ob.Desc
						}
						c := compareVals(av, bv)
						if c == 0 {
							continue
						}
						if ob.Desc {
							return c > 0
						}
						return c < 0
					}
					return false
				})
				sorted := make([]int, len(idx))
				for i, p := range perm {
					sorted[i] = idx[p]
				}
				idx = sorted
			}
			if err := s.fillWindow(fc, rel, idx, vals); err != nil {
				return nil, err
			}
		}
		out[fc] = vals
	}
	return out, nil
}

func (s *Session) fillWindow(fc *sqlparse.FuncCall, rel *relation, idx []int, vals []any) error {
	argVal := func(ri int) (any, error) {
		if len(fc.Args) == 0 {
			return nil, nil
		}
		return s.evalExpr(fc.Args[0], rel.schema, rel.rows[ri])
	}
	switch fc.Name {
	case "row_number":
		for k, ri := range idx {
			vals[ri] = int64(k + 1)
		}
	case "rank", "dense_rank":
		rank := int64(0)
		dense := int64(0)
		var prevKeys []any
		for k, ri := range idx {
			cur := make([]any, len(fc.Over.OrderBy))
			for j, ob := range fc.Over.OrderBy {
				v, err := s.evalExpr(ob.Expr, rel.schema, rel.rows[ri])
				if err != nil {
					return err
				}
				cur[j] = v
			}
			if k == 0 || keyString(cur) != keyString(prevKeys) {
				rank = int64(k + 1)
				dense++
			}
			prevKeys = cur
			if fc.Name == "rank" {
				vals[ri] = rank
			} else {
				vals[ri] = dense
			}
		}
	case "lag", "lead":
		off := 1
		if len(fc.Args) > 1 {
			if n, ok := fc.Args[1].(*sqlparse.NumberLit); ok {
				fmtSscan(n.Text, &off)
			}
		}
		for k, ri := range idx {
			src := k - off
			if fc.Name == "lead" {
				src = k + off
			}
			if src < 0 || src >= len(idx) {
				vals[ri] = nil
				continue
			}
			v, err := argVal(idx[src])
			if err != nil {
				return err
			}
			vals[ri] = v
		}
	case "first_value", "last_value":
		for k, ri := range idx {
			src := 0
			if fc.Name == "last_value" {
				// default frame: up to current row
				src = k
			}
			v, err := argVal(idx[src])
			if err != nil {
				return err
			}
			vals[ri] = v
		}
	case "count", "sum", "avg", "min", "max":
		running := len(fc.Over.OrderBy) > 0
		var window [][]any
		for k, ri := range idx {
			if running {
				window = append(window, rel.rows[ri])
			} else if k == 0 {
				for _, rj := range idx {
					window = append(window, rel.rows[rj])
				}
			}
			v, err := s.computeAggregate(fc, rel.schema, window)
			if err != nil {
				return err
			}
			vals[ri] = v
		}
	default:
		return errf("42883", "window function %s does not exist", fc.Name)
	}
	return nil
}

func fmtSscan(s string, out *int) {
	n := 0
	for i := 0; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		n = n*10 + int(s[i]-'0')
	}
	*out = n
}
