package pgdb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// indexedDB returns a database with lazy indexing forced on (no row
// threshold), so small test tables exercise every access path.
func indexedDB(t *testing.T) (*DB, *Session) {
	t.Helper()
	db := NewDB()
	db.SetIndexMinRows(0)
	return db, db.NewSession()
}

func storeOf(t *testing.T, db *DB, name string) *colStore {
	t.Helper()
	tab, ok := db.tables[name]
	if !ok {
		t.Fatalf("no table %s", name)
	}
	return tab.store
}

// TestSortedAttrMaintenance drives the sorted attribute through appends and
// in-place updates: kept while order holds, dropped on the first violation
// or NULL, and never resurrected without a rebuild (compact).
func TestSortedAttrMaintenance(t *testing.T) {
	db, s := indexedDB(t)
	mustExec(t, s, "CREATE TABLE st (k bigint, v varchar)")
	mustExec(t, s, "INSERT INTO st VALUES (1,'c'),(2,'b'),(2,'d'),(5,'a')")
	st := storeOf(t, db, "st")
	if !st.sortedCol(0) {
		t.Fatalf("ascending k should be sorted")
	}
	if st.sortedCol(1) {
		t.Fatalf("shuffled v should not be sorted")
	}

	// an in-place update that keeps the neighborhood ordered keeps the flag
	mustExec(t, s, "UPDATE st SET k = 3 WHERE v = 'd'")
	if !st.sortedCol(0) {
		t.Fatalf("order-preserving update dropped the sorted attribute")
	}
	// tail update keeps the append anchor correct: the next in-order insert
	// must still be accepted
	mustExec(t, s, "UPDATE st SET k = 4 WHERE v = 'a'")
	mustExec(t, s, "INSERT INTO st VALUES (4,'e')")
	if !st.sortedCol(0) {
		t.Fatalf("tail update broke the append anchor")
	}
	// out-of-order append invalidates
	mustExec(t, s, "INSERT INTO st VALUES (0,'f')")
	if st.sortedCol(0) {
		t.Fatalf("out-of-order append kept the sorted attribute")
	}
	// DELETE compacts the store and re-appends survivors, re-deriving flags
	mustExec(t, s, "DELETE FROM st WHERE k = 0")
	if !st.sortedCol(0) {
		t.Fatalf("compact should rebuild the sorted attribute")
	}
	// NULL kills it
	mustExec(t, s, "INSERT INTO st VALUES (NULL,'g')")
	if st.sortedCol(0) {
		t.Fatalf("NULL append kept the sorted attribute")
	}
}

// TestSortedUpdateNeighborViolation: an in-place overwrite that breaks order
// against either neighbor must invalidate the attribute.
func TestSortedUpdateNeighborViolation(t *testing.T) {
	for _, tc := range []struct{ set, cond string }{
		{"k = 9", "k = 2"}, // larger than right neighbor
		{"k = 0", "k = 5"}, // smaller than left neighbor
	} {
		db, s := indexedDB(t)
		mustExec(t, s, "CREATE TABLE st (k bigint)")
		mustExec(t, s, "INSERT INTO st VALUES (1),(2),(5),(7)")
		st := storeOf(t, db, "st")
		mustExec(t, s, "UPDATE st SET "+tc.set+" WHERE "+tc.cond)
		if st.sortedCol(0) {
			t.Fatalf("UPDATE %s WHERE %s kept the sorted attribute", tc.set, tc.cond)
		}
	}
}

// TestSortedRangeParity: every comparison shape over a sorted column must
// return the same rows in all three engines — the vectorized one answering
// from binary search, the others scanning.
func TestSortedRangeParity(t *testing.T) {
	db, s := indexedDB(t)
	mustExec(t, s, "CREATE TABLE big (k bigint, f double precision, txt varchar)")
	// two full segments plus change, sorted k with long duplicate runs
	rng := rand.New(rand.NewSource(7))
	n := 2*SegmentSize + 300
	for lo := 0; lo < n; lo += 1000 {
		hi := lo + 1000
		if hi > n {
			hi = n
		}
		sql := "INSERT INTO big VALUES "
		for i := lo; i < hi; i++ {
			if i > lo {
				sql += ","
			}
			sql += fmt.Sprintf("(%d,%g,'s%d')", i/7, float64(rng.Intn(100))/4, rng.Intn(50))
		}
		mustExec(t, s, sql)
	}
	if !storeOf(t, db, "big").sortedCol(0) {
		t.Fatalf("k should be sorted")
	}

	queries := []string{
		"SELECT count(*), sum(k) FROM big WHERE k = 100",
		"SELECT count(*), sum(k) FROM big WHERE k = -5",
		"SELECT count(*), sum(k) FROM big WHERE k = 1000000",
		"SELECT count(*), sum(k) FROM big WHERE k < 300",
		"SELECT count(*), sum(k) FROM big WHERE k <= 300",
		"SELECT count(*), sum(k) FROM big WHERE k > 1100",
		"SELECT count(*), sum(k) FROM big WHERE k >= 1100",
		"SELECT count(*), sum(k) FROM big WHERE k <> 0",
		"SELECT count(*), sum(k) FROM big WHERE k <> 500",
		"SELECT count(*), sum(k) FROM big WHERE k >= 100 AND k < 200",
		"SELECT count(*), sum(k) FROM big WHERE k < 100 OR k <= 150",
		"SELECT count(*), sum(k) FROM big WHERE k = 100.0",
		"SELECT count(*), sum(k) FROM big WHERE k = 100.5",
		"SELECT count(*), sum(f) FROM big WHERE k BETWEEN 50 AND 60",
		"SELECT count(*) FROM big WHERE k IS NULL",
		"SELECT count(*) FROM big WHERE k IS NOT NULL",
	}
	for _, q := range queries {
		var ref [][]any
		for _, mode := range []ExecMode{ExecInterpreted, ExecCompiled, ExecVectorized} {
			db.SetExecMode(mode)
			res := mustExec(t, s, q)
			if ref == nil {
				ref = res.Rows
				continue
			}
			if !reflect.DeepEqual(res.Rows, ref) {
				t.Fatalf("%s: mode %d rows %v != interpreted %v", q, mode, res.Rows, ref)
			}
		}
	}
	if hits := db.IndexStats().Hits.Load(); hits == 0 {
		t.Fatalf("sorted-range queries never hit an access path")
	}
}

// TestHashIndexDMLParity runs the same statement stream — with lookups
// interleaved so indexes build early and DML then maintains them — against
// an indexed and an index-free database, requiring identical results after
// every step.
func TestHashIndexDMLParity(t *testing.T) {
	dbi := NewDB()
	dbi.SetIndexMinRows(0)
	dbn := NewDB()
	dbn.SetIndexMinRows(-1)
	si, sn := dbi.NewSession(), dbn.NewSession()
	dbi.SetExecMode(ExecVectorized)
	dbn.SetExecMode(ExecVectorized)

	probes := []string{
		"SELECT count(*), sum(n) FROM kv WHERE k = 'a'",
		"SELECT count(*), sum(n) FROM kv WHERE k = 'b'",
		"SELECT count(*), sum(n) FROM kv WHERE k IN ('a','c','zz')",
		"SELECT count(*), sum(n) FROM kv WHERE n = 5",
		"SELECT count(*), sum(n) FROM kv WHERE n IN (1,2,3)",
		"SELECT count(*) FROM kv a JOIN kv b ON a.k = b.k",
		"SELECT k, count(*) FROM kv GROUP BY k ORDER BY k",
	}
	steps := []string{
		"CREATE TABLE kv (k varchar, n bigint)",
		"INSERT INTO kv VALUES ('a',1),('b',2),('a',3),('c',4),('b',5),(NULL,6)",
		"INSERT INTO kv VALUES ('a',7),('d',8)",
		"UPDATE kv SET k = 'b' WHERE n = 4",
		"UPDATE kv SET n = 50 WHERE k = 'b'",
		"DELETE FROM kv WHERE n = 1",
		"INSERT INTO kv VALUES ('a',9),(NULL,10)",
		"UPDATE kv SET k = NULL WHERE n = 8",
		"UPDATE kv SET k = 'e' WHERE k IS NULL",
		"DELETE FROM kv WHERE k = 'e'",
	}
	for _, step := range steps {
		mustExec(t, si, step)
		mustExec(t, sn, step)
		for _, q := range probes {
			ri := mustExec(t, si, q)
			rn := mustExec(t, sn, q)
			if !reflect.DeepEqual(ri.Rows, rn.Rows) {
				t.Fatalf("after %q: %s\n  indexed:   %v\n  unindexed: %v", step, q, ri.Rows, rn.Rows)
			}
		}
	}
	stats := dbi.IndexStats()
	if stats.Builds.Load() == 0 {
		t.Fatalf("the indexed database never built an index")
	}
	if dbn.IndexStats().Builds.Load() != 0 {
		t.Fatalf("the disabled database built an index")
	}
}

// TestIndexTypeDegradation: DML that writes a value outside the index's kind
// drops the index (sticky), and results stay correct through the fallback.
func TestIndexTypeDegradation(t *testing.T) {
	db, s := indexedDB(t)
	db.SetExecMode(ExecVectorized)
	// unsorted, so the equality lookup routes to the hash index rather than
	// the sorted attribute's binary search
	mustExec(t, s, "CREATE TABLE mix (k bigint)")
	mustExec(t, s, "INSERT INTO mix VALUES (3),(1),(2),(2)")
	mustExec(t, s, "SELECT count(*) FROM mix WHERE k = 2") // builds
	if db.IndexStats().Builds.Load() != 1 {
		t.Fatalf("expected one build, got %d", db.IndexStats().Builds.Load())
	}
	// SQL coerces writes to the column type, so reach below it: a raw float
	// write is the kind-mixing mutation the maintenance hook must survive
	st := storeOf(t, db, "mix")
	st.setCell(0, 0, 2.5)
	st.cache.Store(nil)
	res := mustExec(t, s, "SELECT count(*) FROM mix WHERE k = 2")
	if res.Rows[0][0].(int64) != 2 {
		t.Fatalf("post-degradation count = %v", res.Rows[0][0])
	}
	if db.IndexStats().Invalidations.Load() == 0 {
		t.Fatalf("type degradation did not invalidate")
	}
	// bytes accounting returns to zero once every index is gone
	mustExec(t, s, "DELETE FROM mix WHERE k = 1")
	if b := db.IndexStats().BytesResident.Load(); b != 0 {
		t.Fatalf("BytesResident = %d after all indexes dropped", b)
	}
}

// TestIndexConcurrentLookups hammers one table with concurrent point lookups
// (shared statement lock) so the lazy build, the hit path, and the postings
// reads race against each other; run under -race.
func TestIndexConcurrentLookups(t *testing.T) {
	db, s := indexedDB(t)
	db.SetExecMode(ExecVectorized)
	mustExec(t, s, "CREATE TABLE c (k bigint, v varchar)")
	for lo := 0; lo < 4000; lo += 500 {
		sql := "INSERT INTO c VALUES "
		for i := lo; i < lo+500; i++ {
			if i > lo {
				sql += ","
			}
			sql += fmt.Sprintf("(%d,'s%d')", i%97, i%13)
		}
		mustExec(t, s, sql)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.NewSession()
			for i := 0; i < 40; i++ {
				q := fmt.Sprintf("SELECT count(*) FROM c WHERE k = %d", (g*7+i)%97)
				if i%3 == 0 {
					q = fmt.Sprintf("SELECT count(*) FROM c WHERE v = 's%d'", (g+i)%13)
				}
				if _, err := sess.Exec(q); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent lookup: %v", err)
	}
	st := db.IndexStats()
	if st.Builds.Load() == 0 || st.Hits.Load() == 0 {
		t.Fatalf("concurrent run built %d indexes, hit %d", st.Builds.Load(), st.Hits.Load())
	}
}

// TestAsofBucketCache: repeated fused as-of joins against an unchanged right
// table reuse the cached bucket index; any mutation invalidates it.
func TestAsofBucketCache(t *testing.T) {
	db, s := indexedDB(t)
	mustExec(t, s, "CREATE TABLE lt (id bigint, sym varchar, tm bigint)")
	mustExec(t, s, "CREATE TABLE rt (sym varchar, tm bigint, px double precision)")
	mustExec(t, s, "INSERT INTO lt VALUES (0,'a',10),(1,'a',20),(2,'b',15)")
	mustExec(t, s, "INSERT INTO rt VALUES ('a',5,1.0),('a',15,2.0),('b',12,3.0)")
	asof := `SELECT sym, tm, px FROM (
		SELECT a.id, a.sym, a.tm, b.px,
		       ROW_NUMBER() OVER (PARTITION BY a.id ORDER BY b.tm DESC) AS rn
		FROM lt a LEFT JOIN rt b ON a.sym IS NOT DISTINCT FROM b.sym AND b.tm <= a.tm
	) x WHERE rn = 1 ORDER BY id`

	want := mustExec(t, s, asof).Rows
	stats := db.IndexStats()
	builds0 := stats.AsofBuilds.Load()
	if builds0 == 0 {
		t.Fatalf("fused as-of did not build a bucket index")
	}
	again := mustExec(t, s, asof).Rows
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("cached as-of diverged: %v vs %v", again, want)
	}
	if stats.AsofHits.Load() == 0 {
		t.Fatalf("repeat as-of missed the cache")
	}
	if stats.AsofBuilds.Load() != builds0 {
		t.Fatalf("repeat as-of rebuilt the bucket index")
	}

	// mutating the right side must invalidate: new row visible immediately
	mustExec(t, s, "INSERT INTO rt VALUES ('a',18,9.0)")
	res := mustExec(t, s, asof).Rows
	if stats.AsofBuilds.Load() == builds0 {
		t.Fatalf("as-of cache survived a mutation")
	}
	if res[1][2].(float64) != 9.0 {
		t.Fatalf("post-insert as-of row = %v, want px 9.0", res[1])
	}

	// parity: all three engines agree on the post-mutation result
	for _, mode := range []ExecMode{ExecInterpreted, ExecCompiled, ExecVectorized} {
		db.SetExecMode(mode)
		got := mustExec(t, s, asof).Rows
		if !reflect.DeepEqual(got, res) {
			t.Fatalf("mode %d as-of rows %v != %v", mode, got, res)
		}
	}
}

// TestOrderBySingleKeyTyped checks the typed single-key ORDER BY fast path
// against the boxed multi-key path: appending a redundant second key forces
// the generic comparator, and a stable sort over identical keys must yield
// the identical permutation.
func TestOrderBySingleKeyTyped(t *testing.T) {
	_, s := indexedDB(t)
	mustExec(t, s, "CREATE TABLE ob (i bigint, f double precision, v varchar)")
	mustExec(t, s, `INSERT INTO ob VALUES
		(3, 2.5, 'b'), (1, 'NaN'::double precision, 'a'), (NULL, -0.5, NULL),
		(2, NULL, 'c'), (3, 2.5, 'a'), (-7, 'Infinity'::double precision, ''),
		(9223372036854775807, -1e308, 'zz'), (0, 0.0, 'b')`)
	for _, key := range []string{"i", "f", "v", "i DESC", "f DESC", "v DESC",
		"i ASC NULLS FIRST", "f DESC NULLS LAST", "v NULLS FIRST"} {
		single := mustExec(t, s, "SELECT i, f, v FROM ob ORDER BY "+key).Rows
		double := mustExec(t, s, "SELECT i, f, v FROM ob ORDER BY "+key+", "+key).Rows
		// fmt.Sprint instead of DeepEqual: the NaN row must compare equal to itself
		if fmt.Sprint(single) != fmt.Sprint(double) {
			t.Fatalf("ORDER BY %s: typed %v != boxed %v", key, single, double)
		}
	}
	// the already-sorted pre-check: ordering a sorted relation is a no-op
	// that must still produce exactly the sorted rows
	sorted := mustExec(t, s, "SELECT i FROM ob WHERE i IS NOT NULL ORDER BY i").Rows
	resorted := mustExec(t, s, "SELECT * FROM (SELECT i FROM ob WHERE i IS NOT NULL ORDER BY i) x ORDER BY i").Rows
	if !reflect.DeepEqual(sorted, resorted) {
		t.Fatalf("re-sorting a sorted relation changed it: %v vs %v", resorted, sorted)
	}
}

// TestIndexedJoinParity: equi-joins using the prebuilt index build side must
// match the generic hash join (index off) across join types.
func TestIndexedJoinParity(t *testing.T) {
	dbi := NewDB()
	dbi.SetIndexMinRows(0)
	dbn := NewDB()
	dbn.SetIndexMinRows(-1)
	for _, stmt := range []string{
		"CREATE TABLE f (k varchar, x bigint)",
		"CREATE TABLE dim (k varchar, y bigint)",
		"INSERT INTO f VALUES ('a',1),('b',2),(NULL,3),('a',4),('zz',5)",
		"INSERT INTO dim VALUES ('a',10),('b',20),(NULL,30),('c',40)",
	} {
		mustExec(t, dbi.NewSession(), stmt)
		mustExec(t, dbn.NewSession(), stmt)
	}
	queries := []string{
		"SELECT f.k, x, y FROM f JOIN dim ON f.k = dim.k ORDER BY x, y",
		"SELECT f.k, x, y FROM f LEFT JOIN dim ON f.k = dim.k ORDER BY x, y",
		"SELECT f.k, x, y FROM f JOIN dim ON f.k IS NOT DISTINCT FROM dim.k ORDER BY x, y",
		"SELECT f.k, x, y FROM f JOIN dim ON f.k = dim.k WHERE y > 10 ORDER BY x, y",
	}
	for _, mode := range []ExecMode{ExecCompiled, ExecVectorized} {
		dbi.SetExecMode(mode)
		dbn.SetExecMode(mode)
		for _, q := range queries {
			ri := mustExec(t, dbi.NewSession(), q)
			rn := mustExec(t, dbn.NewSession(), q)
			if !reflect.DeepEqual(ri.Rows, rn.Rows) {
				t.Fatalf("mode %d %s:\n  indexed:   %v\n  unindexed: %v", mode, q, ri.Rows, rn.Rows)
			}
		}
	}
	if dbi.IndexStats().Builds.Load() == 0 {
		t.Fatalf("joins never built an index")
	}
}

// TestTranslatedShapeIndexPaths drives the exact SQL shapes the Hyper-Q
// translator emits — null-safe equality predicates and as-of joins whose
// sides are wrapped in bare pass-through projections — and checks they reach
// the same index-backed fast paths as hand-written SQL.
func TestTranslatedShapeIndexPaths(t *testing.T) {
	db, s := indexedDB(t)
	mustExec(t, s, "CREATE TABLE tr (sym varchar, tm bigint, px double precision)")
	mustExec(t, s, `INSERT INTO tr VALUES
		('GOOG',10,1.0),('IBM',11,2.0),('GOOG',20,3.0),(NULL,30,4.0),('IBM',21,5.0)`)
	mustExec(t, s, "CREATE TABLE qt (sym varchar, tm bigint, bid double precision, ask double precision)")
	mustExec(t, s, `INSERT INTO qt VALUES
		('GOOG',5,0.9,1.1),('GOOG',15,2.9,3.1),('IBM',8,1.9,2.1),(NULL,25,3.9,4.1)`)
	stats := db.IndexStats()

	// translated equality: IS [NOT] DISTINCT FROM must lower to the
	// vectorized kernels and consult the index, with NULL cells handled per
	// null-safe semantics (matched by the plain variant, not by NOT)
	preds := []struct {
		where string
		want  int
	}{
		{"sym IS NOT DISTINCT FROM 'GOOG'::varchar", 2},
		{"'IBM'::varchar IS NOT DISTINCT FROM sym", 2},
		{"sym IS DISTINCT FROM 'GOOG'", 3}, // includes the NULL row
		{"sym IS NOT DISTINCT FROM NULL", 1},
		{"sym IS DISTINCT FROM NULL", 4},
	}
	for _, p := range preds {
		q := "SELECT COUNT(*) FROM tr WHERE " + p.where
		var rows [][]any
		for _, mode := range []ExecMode{ExecVectorized, ExecCompiled, ExecInterpreted} {
			db.SetExecMode(mode)
			got := mustExec(t, s, q).Rows
			if got[0][0].(int64) != int64(p.want) {
				t.Fatalf("mode %d WHERE %s = %v, want %d", mode, p.where, got[0][0], p.want)
			}
			if rows != nil && !reflect.DeepEqual(got, rows) {
				t.Fatalf("mode %d WHERE %s diverged: %v vs %v", mode, p.where, got, rows)
			}
			rows = got
		}
	}
	if stats.Hits.Load()+stats.Builds.Load() == 0 {
		t.Fatalf("translated equality predicates never touched an index")
	}

	// translated as-of: both sides behind pass-through projections; the
	// bucket cache must key on the base store and survive the wrapper
	db.SetExecMode(ExecVectorized)
	asofWrapped := `SELECT sym, tm, px, bid, ask FROM (
		SELECT a.sym, a.tm, a.px, b.bid, b.ask,
		       ROW_NUMBER() OVER (PARTITION BY a.tm ORDER BY b.tm DESC) AS rn
		FROM (SELECT sym AS sym, tm AS tm, px AS px FROM tr) a
		LEFT JOIN (SELECT sym AS sym, tm AS tm, bid AS bid, ask AS ask FROM qt) b
		  ON a.sym IS NOT DISTINCT FROM b.sym AND b.tm <= a.tm
	) x WHERE rn = 1 ORDER BY tm`
	asofDirect := `SELECT sym, tm, px, bid, ask FROM (
		SELECT a.sym, a.tm, a.px, b.bid, b.ask,
		       ROW_NUMBER() OVER (PARTITION BY a.tm ORDER BY b.tm DESC) AS rn
		FROM tr a LEFT JOIN qt b
		  ON a.sym IS NOT DISTINCT FROM b.sym AND b.tm <= a.tm
	) x WHERE rn = 1 ORDER BY tm`
	builds0 := stats.AsofBuilds.Load()
	want := mustExec(t, s, asofWrapped).Rows
	if stats.AsofBuilds.Load() != builds0+1 {
		t.Fatalf("wrapped as-of did not build the bucket cache (builds %d -> %d)",
			builds0, stats.AsofBuilds.Load())
	}
	hits0 := stats.AsofHits.Load()
	again := mustExec(t, s, asofWrapped).Rows
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("cached wrapped as-of diverged: %v vs %v", again, want)
	}
	if stats.AsofHits.Load() != hits0+1 {
		t.Fatalf("repeat wrapped as-of missed the cache")
	}
	// the direct shape shares the entry: same base columns, same cache key
	direct := mustExec(t, s, asofDirect).Rows
	if fmt.Sprint(direct) != fmt.Sprint(want) {
		t.Fatalf("direct as-of %v != wrapped %v", direct, want)
	}
	if stats.AsofHits.Load() != hits0+2 {
		t.Fatalf("direct as-of did not share the wrapped shape's cache entry")
	}
	for _, mode := range []ExecMode{ExecInterpreted, ExecCompiled} {
		db.SetExecMode(mode)
		got := mustExec(t, s, asofWrapped).Rows
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mode %d wrapped as-of rows %v != %v", mode, got, want)
		}
	}

	// equi-join through a pass-through wrapper probes the prebuilt side
	db.SetExecMode(ExecVectorized)
	jb0 := stats.Builds.Load() + stats.Hits.Load()
	joinWrapped := `SELECT a.sym, a.px, b.bid FROM tr a
		JOIN (SELECT sym AS sym, tm AS tm, bid AS bid FROM qt) b ON a.sym = b.sym
		ORDER BY a.tm, b.tm`
	jw := mustExec(t, s, joinWrapped).Rows
	if stats.Builds.Load()+stats.Hits.Load() == jb0 {
		t.Fatalf("wrapped join build side never consulted the index")
	}
	for _, mode := range []ExecMode{ExecInterpreted, ExecCompiled} {
		db.SetExecMode(mode)
		got := mustExec(t, s, joinWrapped).Rows
		if !reflect.DeepEqual(got, jw) {
			t.Fatalf("mode %d wrapped join rows %v != %v", mode, got, jw)
		}
	}

	// a mutation through the wrapper still invalidates: new quote visible
	db.SetExecMode(ExecVectorized)
	mustExec(t, s, "INSERT INTO qt VALUES ('GOOG',19,8.9,9.1)")
	post := mustExec(t, s, asofWrapped).Rows
	if reflect.DeepEqual(post, want) {
		t.Fatalf("as-of cache served stale buckets after INSERT")
	}
	for _, mode := range []ExecMode{ExecInterpreted, ExecCompiled} {
		db.SetExecMode(mode)
		got := mustExec(t, s, asofWrapped).Rows
		if !reflect.DeepEqual(got, post) {
			t.Fatalf("mode %d post-insert as-of rows %v != %v", mode, got, post)
		}
	}
}
