package pgdb

import (
	"strconv"
	"strings"

	"hyperq/internal/pgdb/sqlparse"
)

// This file is the expression compiler of the compiled execution engine: it
// lowers a sqlparse.Expr bound to a schema into a chain of Go closures once
// per query, so the per-row work is only the data-dependent part. Literal
// decoding, column resolution, operator dispatch and null-safe comparison
// selection all happen at compile time. The compiled engine must be
// semantically indistinguishable from the retained interpreter (eval.go) —
// both share applyBinary/applyAndOr/applyScalarFunc for value-level
// semantics, and the qdiff corpus is replayed through both (see
// internal/sidebyside).

// evalCtx carries the per-statement state a compiled expression may need at
// run time: the session (for subqueries and interpreter fallbacks), the
// current row index plus window values (projection only), and the lazy
// aggregate accumulator of the group being evaluated (grouped execution
// only). Pure closures never touch it — that is what makes them safe to run
// on parallel worker goroutines.
type evalCtx struct {
	s       *Session
	rowIdx  int
	winVals map[*sqlparse.FuncCall][]any
	agg     *groupAgg
}

// exprFn is a compiled expression, evaluated against one row.
type exprFn func(ec *evalCtx, row []any) (any, error)

// compiled pairs an exprFn with the static properties the planner uses.
type compiled struct {
	fn exprFn
	// pure: the closure touches neither the evalCtx nor any session state,
	// so it may run on worker goroutines (intra-query parallelism).
	pure bool
	// konst: the value is row-independent, so a successful evaluation may
	// be folded to a constant at compile time.
	konst bool
}

func constExpr(v any) compiled {
	return compiled{fn: func(*evalCtx, []any) (any, error) { return v, nil }, pure: true, konst: true}
}

// errExpr lowers to a closure that fails at run time. Errors stay lazy so a
// query over zero rows behaves exactly like the interpreter, which only
// raises evaluation errors when a row loop actually runs.
func errExpr(err error) compiled {
	return compiled{fn: func(*evalCtx, []any) (any, error) { return nil, err }, pure: true}
}

// fold evaluates a row-independent pure expression once at compile time and
// replaces it with its constant. Evaluation errors keep the lazy closure:
// SELECT 1/0 over an empty table must not raise.
func fold(c compiled) compiled {
	if !c.konst || !c.pure {
		return c
	}
	v, err := c.fn(nil, nil)
	if err != nil {
		return c
	}
	return constExpr(v)
}

// compileExpr lowers an expression bound to a schema into a closure chain.
// Compilation never fails: unresolvable columns and unsupported shapes lower
// to lazy errors (or interpreter fallbacks), surfacing exactly the
// interpreter's behavior at exactly the interpreter's time.
func compileExpr(e sqlparse.Expr, schema []colBinding) compiled {
	switch x := e.(type) {
	case *sqlparse.NumberLit:
		// decoded once here — never again inside a row loop
		if strings.ContainsAny(x.Text, ".eE") {
			f, err := strconv.ParseFloat(x.Text, 64)
			if err != nil {
				return errExpr(errf("22P02", "bad number %q", x.Text))
			}
			return constExpr(f)
		}
		n, err := strconv.ParseInt(x.Text, 10, 64)
		if err != nil {
			return errExpr(errf("22P02", "bad number %q", x.Text))
		}
		return constExpr(n)
	case *sqlparse.StringLit:
		return constExpr(x.V)
	case *sqlparse.BoolLit:
		return constExpr(x.V)
	case *sqlparse.NullLit:
		return constExpr(nil)
	case *sqlparse.ValueLit:
		return constExpr(x.V)
	case *sqlparse.ParamRef:
		return errExpr(errf("0A000", "parameters are not supported in direct execution"))
	case *sqlparse.ColRef:
		i, err := findCol(schema, x)
		if err != nil {
			return errExpr(err)
		}
		return compiled{fn: func(_ *evalCtx, row []any) (any, error) { return row[i], nil }, pure: true}
	case *sqlparse.UnaryExpr:
		cx := compileExpr(x.X, schema)
		switch x.Op {
		case "NOT":
			return fold(compiled{fn: func(ec *evalCtx, row []any) (any, error) {
				v, err := cx.fn(ec, row)
				if err != nil || v == nil {
					return nil, err
				}
				b, ok := v.(bool)
				if !ok {
					return nil, errf("42804", "argument of NOT must be boolean")
				}
				return !b, nil
			}, pure: cx.pure, konst: cx.konst})
		case "-":
			return fold(compiled{fn: func(ec *evalCtx, row []any) (any, error) {
				v, err := cx.fn(ec, row)
				if err != nil {
					return nil, err
				}
				switch n := v.(type) {
				case nil:
					return nil, nil
				case int64:
					return -n, nil
				case float64:
					return -n, nil
				default:
					return nil, errf("42804", "cannot negate %T", v)
				}
			}, pure: cx.pure, konst: cx.konst})
		}
		return errExpr(errf("0A000", "unsupported unary %s", x.Op))
	case *sqlparse.BinaryExpr:
		return compileBinary(x, schema)
	case *sqlparse.IsNullExpr:
		cx := compileExpr(x.X, schema)
		not := x.Not
		return fold(compiled{fn: func(ec *evalCtx, row []any) (any, error) {
			v, err := cx.fn(ec, row)
			if err != nil {
				return nil, err
			}
			isNull := v == nil
			if not {
				return !isNull, nil
			}
			return isNull, nil
		}, pure: cx.pure, konst: cx.konst})
	case *sqlparse.InExpr:
		cx := compileExpr(x.X, schema)
		pure, konst := cx.pure, cx.konst
		list := make([]exprFn, len(x.List))
		for i, le := range x.List {
			c := compileExpr(le, schema)
			list[i] = c.fn
			pure, konst = pure && c.pure, konst && c.konst
		}
		not := x.Not
		return fold(compiled{fn: func(ec *evalCtx, row []any) (any, error) {
			v, err := cx.fn(ec, row)
			if err != nil {
				return nil, err
			}
			if v == nil {
				return nil, nil
			}
			sawNull := false
			for _, fn := range list {
				lv, err := fn(ec, row)
				if err != nil {
					return nil, err
				}
				if lv == nil {
					sawNull = true
					continue
				}
				if equalVals(v, lv) {
					return !not, nil
				}
			}
			if sawNull {
				return nil, nil // unknown per 3VL
			}
			return not, nil
		}, pure: pure, konst: konst})
	case *sqlparse.BetweenExpr:
		cx := compileExpr(x.X, schema)
		clo := compileExpr(x.Lo, schema)
		chi := compileExpr(x.Hi, schema)
		not := x.Not
		return fold(compiled{fn: func(ec *evalCtx, row []any) (any, error) {
			v, err := cx.fn(ec, row)
			if err != nil {
				return nil, err
			}
			lo, err := clo.fn(ec, row)
			if err != nil {
				return nil, err
			}
			hi, err := chi.fn(ec, row)
			if err != nil {
				return nil, err
			}
			if v == nil || lo == nil || hi == nil {
				return nil, nil
			}
			in := compareVals(v, lo) >= 0 && compareVals(v, hi) <= 0
			if not {
				return !in, nil
			}
			return in, nil
		}, pure: cx.pure && clo.pure && chi.pure, konst: cx.konst && clo.konst && chi.konst})
	case *sqlparse.CaseExpr:
		return compileCase(x, schema)
	case *sqlparse.CastExpr:
		cx := compileExpr(x.X, schema)
		typ := normalizeType(x.Type)
		return fold(compiled{fn: func(ec *evalCtx, row []any) (any, error) {
			v, err := cx.fn(ec, row)
			if err != nil {
				return nil, err
			}
			return castValue(v, typ)
		}, pure: cx.pure, konst: cx.konst})
	case *sqlparse.FuncCall:
		if x.Over != nil {
			fc := x
			// window values are precomputed per statement (computeWindows)
			// and looked up by node identity and row index
			return compiled{fn: func(ec *evalCtx, row []any) (any, error) {
				if ec == nil || ec.winVals == nil || ec.rowIdx < 0 {
					return nil, errf("42P20", "window function %s outside projection", fc.Name)
				}
				vals, ok := ec.winVals[fc]
				if !ok {
					return nil, errf("XX000", "window values missing for %s", fc.Name)
				}
				return vals[ec.rowIdx], nil
			}}
		}
		args := make([]exprFn, len(x.Args))
		pure, konst := true, true
		for i, a := range x.Args {
			c := compileExpr(a, schema)
			args[i] = c.fn
			pure, konst = pure && c.pure, konst && c.konst
		}
		name := x.Name
		return fold(compiled{fn: func(ec *evalCtx, row []any) (any, error) {
			vals := make([]any, len(args))
			for i, fn := range args {
				v, err := fn(ec, row)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			return applyScalarFunc(name, vals)
		}, pure: pure, konst: konst})
	case *sqlparse.SubqueryExpr:
		q := x.Query
		// executed per evaluation, like the interpreter: no memoization, so
		// statements that observe their own writes (UPDATE) stay identical
		return compiled{fn: func(ec *evalCtx, row []any) (any, error) {
			res, err := ec.s.execSelect(q, nil)
			if err != nil {
				return nil, err
			}
			if len(res.Rows) == 0 {
				return nil, nil
			}
			if len(res.Rows) > 1 {
				return nil, errf("21000", "scalar subquery returned more than one row")
			}
			return res.Rows[0][0], nil
		}}
	default:
		// unknown node: defer to the interpreter so both engines share the
		// same error surface
		expr := e
		sch := schema
		return compiled{fn: func(ec *evalCtx, row []any) (any, error) {
			return ec.s.evalExprWin(expr, sch, row, ec.rowIdx, ec.winVals)
		}}
	}
}

func compileBinary(x *sqlparse.BinaryExpr, schema []colBinding) compiled {
	cl := compileExpr(x.L, schema)
	cr := compileExpr(x.R, schema)
	pure, konst := cl.pure && cr.pure, cl.konst && cr.konst
	op := x.Op
	if op == "AND" || op == "OR" {
		return fold(compiled{fn: func(ec *evalCtx, row []any) (any, error) {
			l, err := cl.fn(ec, row)
			if err != nil {
				return nil, err
			}
			if v, done := andOrShortCircuit(op, l); done {
				return v, nil
			}
			r, err := cr.fn(ec, row)
			if err != nil {
				return nil, err
			}
			return applyAndOr(op, l, r), nil
		}, pure: pure, konst: konst})
	}
	// comparisons specialize the operator dispatch away from the row loop
	switch op {
	case "=", "<>", "<", ">", "<=", ">=":
		var test func(int) bool
		switch op {
		case "=":
			test = func(c int) bool { return c == 0 }
		case "<>":
			test = func(c int) bool { return c != 0 }
		case "<":
			test = func(c int) bool { return c < 0 }
		case ">":
			test = func(c int) bool { return c > 0 }
		case "<=":
			test = func(c int) bool { return c <= 0 }
		default:
			test = func(c int) bool { return c >= 0 }
		}
		return fold(compiled{fn: func(ec *evalCtx, row []any) (any, error) {
			l, err := cl.fn(ec, row)
			if err != nil {
				return nil, err
			}
			r, err := cr.fn(ec, row)
			if err != nil {
				return nil, err
			}
			if l == nil || r == nil {
				return nil, nil
			}
			return test(compareVals(l, r)), nil
		}, pure: pure, konst: konst})
	}
	return fold(compiled{fn: func(ec *evalCtx, row []any) (any, error) {
		l, err := cl.fn(ec, row)
		if err != nil {
			return nil, err
		}
		r, err := cr.fn(ec, row)
		if err != nil {
			return nil, err
		}
		return applyBinary(op, l, r)
	}, pure: pure, konst: konst})
}

func compileCase(x *sqlparse.CaseExpr, schema []colBinding) compiled {
	pure, konst := true, true
	var operand *compiled
	if x.Operand != nil {
		c := compileExpr(x.Operand, schema)
		operand = &c
		pure, konst = pure && c.pure, konst && c.konst
	}
	conds := make([]exprFn, len(x.Whens))
	thens := make([]exprFn, len(x.Whens))
	for i, w := range x.Whens {
		cc := compileExpr(w.Cond, schema)
		ct := compileExpr(w.Then, schema)
		conds[i], thens[i] = cc.fn, ct.fn
		pure = pure && cc.pure && ct.pure
		konst = konst && cc.konst && ct.konst
	}
	var elseFn exprFn
	if x.Else != nil {
		c := compileExpr(x.Else, schema)
		elseFn = c.fn
		pure, konst = pure && c.pure, konst && c.konst
	}
	return fold(compiled{fn: func(ec *evalCtx, row []any) (any, error) {
		for i := range conds {
			var hit bool
			if operand != nil {
				// the interpreter evaluates the operand once per arm;
				// preserved so error ordering is identical
				ov, err := operand.fn(ec, row)
				if err != nil {
					return nil, err
				}
				cv, err := conds[i](ec, row)
				if err != nil {
					return nil, err
				}
				hit = ov != nil && cv != nil && equalVals(ov, cv)
			} else {
				cv, err := conds[i](ec, row)
				if err != nil {
					return nil, err
				}
				b, ok := cv.(bool)
				hit = ok && b
			}
			if hit {
				return thens[i](ec, row)
			}
		}
		if elseFn != nil {
			return elseFn(ec, row)
		}
		return nil, nil
	}, pure: pure, konst: konst})
}
