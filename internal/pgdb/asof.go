package pgdb

import (
	"hyperq/internal/pgdb/sqlparse"
)

// This file implements a top-1-per-partition pushdown: the query shape
// Hyper-Q emits for Q's as-of join —
//
//	SELECT cols FROM (
//	    SELECT ..., ROW_NUMBER() OVER (PARTITION BY l.id ORDER BY r.t DESC) AS hq_rn
//	    FROM (left) a LEFT JOIN (right) b
//	      ON a.k IS NOT DISTINCT FROM b.k AND b.t <= a.t
//	) sub WHERE hq_rn = 1
//
// — would otherwise materialize every (trade, earlier-quote) pair before the
// window discards all but the latest. Production MPP optimizers (e.g. Orca,
// the Greenplum optimizer built by the Hyper-Q authors) recognize such
// rank-filter patterns and fuse them into the join; this engine does the
// same, turning the quadratic intermediate into a per-key sort plus binary
// search. Results are identical to the naive plan.

// asOfPattern captures a recognized rank-filter join.
type asOfPattern struct {
	inner    *sqlparse.SelectStmt
	join     *sqlparse.JoinRef
	rnAlias  string
	eqL, eqR []*sqlparse.ColRef // equality key columns (left, right)
	timeL    *sqlparse.ColRef   // bound columns: right.time <= left.time
	timeR    *sqlparse.ColRef
}

// matchAsOfPattern inspects an outer select for the fused shape. It returns
// nil when the query does not match (the generic pipeline then runs).
func matchAsOfPattern(sel *sqlparse.SelectStmt) *asOfPattern {
	// outer: single subquery source, WHERE <rn> = 1
	if len(sel.From) != 1 || sel.Where == nil {
		return nil
	}
	sub, ok := sel.From[0].(*sqlparse.SubqueryRef)
	if !ok {
		return nil
	}
	w, ok := sel.Where.(*sqlparse.BinaryExpr)
	if !ok || w.Op != "=" {
		return nil
	}
	rnRef, ok := w.L.(*sqlparse.ColRef)
	if !ok {
		return nil
	}
	one, ok := w.R.(*sqlparse.NumberLit)
	if !ok || one.Text != "1" {
		return nil
	}
	inner := sub.Query
	if len(inner.GroupBy) != 0 || inner.Having != nil || inner.Union != nil ||
		len(inner.OrderBy) != 0 || inner.Limit != nil || inner.Where != nil || inner.Distinct {
		return nil
	}
	if len(inner.From) != 1 {
		return nil
	}
	join, ok := inner.From[0].(*sqlparse.JoinRef)
	if !ok || join.Type != sqlparse.LeftJoin {
		return nil
	}
	// exactly one window item: ROW_NUMBER() OVER (PARTITION BY ? ORDER BY ? DESC) AS rn
	var rn *sqlparse.FuncCall
	for _, item := range inner.Items {
		fc, isFn := item.Expr.(*sqlparse.FuncCall)
		if !isFn || fc.Over == nil {
			continue
		}
		if rn != nil {
			return nil // more than one window function: bail
		}
		if fc.Name != "row_number" || item.Alias != rnRef.Name {
			return nil
		}
		if len(fc.Over.PartitionBy) != 1 || len(fc.Over.OrderBy) != 1 || !fc.Over.OrderBy[0].Desc {
			return nil
		}
		rn = fc
	}
	if rn == nil {
		return nil
	}
	p := &asOfPattern{inner: inner, join: join, rnAlias: rnRef.Name}
	// decompose the ON clause: null-safe equalities + one <= bound
	var conj []sqlparse.Expr
	var flatten func(e sqlparse.Expr)
	flatten = func(e sqlparse.Expr) {
		if b, isBin := e.(*sqlparse.BinaryExpr); isBin && b.Op == "AND" {
			flatten(b.L)
			flatten(b.R)
			return
		}
		conj = append(conj, e)
	}
	flatten(join.On)
	for _, c := range conj {
		b, isBin := c.(*sqlparse.BinaryExpr)
		if !isBin {
			return nil
		}
		lc, lok := b.L.(*sqlparse.ColRef)
		rc, rok := b.R.(*sqlparse.ColRef)
		if !lok || !rok {
			return nil
		}
		switch b.Op {
		case "IS NOT DISTINCT FROM", "=":
			p.eqL = append(p.eqL, lc)
			p.eqR = append(p.eqR, rc)
		case "<=":
			if p.timeR != nil {
				return nil
			}
			p.timeR, p.timeL = lc, rc // b.t <= a.t
		default:
			return nil
		}
	}
	if p.timeR == nil {
		return nil
	}
	return p
}

// execAsOfFused executes the fused plan, producing the same relation the
// inner subquery + rn=1 filter would: one output row per left row, joined to
// the latest right row with equal keys and time at or before the left time.
func (s *Session) execAsOfFused(p *asOfPattern) (*relation, error) {
	left, err := s.buildRef(p.join.Left)
	if err != nil {
		return nil, err
	}
	right, err := s.buildRef(p.join.Right)
	if err != nil {
		return nil, err
	}
	// resolve key/time columns against each side
	lKeys := make([]int, len(p.eqL))
	rKeys := make([]int, len(p.eqR))
	for i := range p.eqL {
		li, lerr := findCol(left.schema, p.eqL[i])
		ri, rerr := findCol(right.schema, p.eqR[i])
		if lerr != nil || rerr != nil {
			// reversed sides in the equality
			li, lerr = findCol(left.schema, p.eqR[i])
			ri, rerr = findCol(right.schema, p.eqL[i])
			if lerr != nil || rerr != nil {
				return nil, errf("42703", "as-of keys do not resolve")
			}
		}
		lKeys[i], rKeys[i] = li, ri
	}
	lt, err := findCol(left.schema, p.timeL)
	if err != nil {
		return nil, err
	}
	rt, err := findCol(right.schema, p.timeR)
	if err != nil {
		return nil, err
	}
	left.rowsView()
	right.rowsView()
	// bucket right rows by key, each bucket sorted by time ascending. When
	// the right side is an unfiltered base scan, the store caches the bucket
	// index keyed on (rKeys, rt) and its mutation version, so repeated as-of
	// joins skip the per-query re-sort; subqueries rebuild per query.
	var buckets map[string][]int
	cacheable := !s.interpretedMode() && s.db.IndexMinRows() >= 0
	switch {
	case cacheable && right.store != nil:
		buckets = right.store.asofBuckets(rKeys, rt, right.rows)
	case cacheable && right.base != nil:
		// the translated shape wraps the build side in a pass-through
		// projection; cache on the base store, keyed in base column space so
		// differently-shaped wrappers over the same table share the entry
		baseKeys := make([]int, len(rKeys))
		for i, k := range rKeys {
			baseKeys[i] = right.baseCols[k]
		}
		buckets = right.base.asofBucketsKeyed(baseKeys, right.baseCols[rt], right.rows, rKeys, rt)
	default:
		buckets = buildAsofBuckets(right.rows, rKeys, rt)
	}
	joined := &relation{schema: append(append([]colBinding{}, left.schema...), right.schema...)}
	for _, lr := range left.rows {
		key, _ := hashKey(lr, lKeys)
		idx := buckets[key]
		t := lr[lt]
		match := -1
		if t != nil {
			lo, hi := 0, len(idx)
			for lo < hi {
				mid := (lo + hi) / 2
				mv := right.rows[idx[mid]][rt]
				if mv != nil && compareVals(mv, t) <= 0 {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo > 0 {
				match = idx[lo-1]
			}
		}
		if match >= 0 {
			joined.rows = append(joined.rows, append(append(make([]any, 0, len(lr)+len(right.rows[match])), lr...), right.rows[match]...))
		} else {
			joined.rows = append(joined.rows, padRight(lr, len(right.schema)))
		}
	}
	// evaluate the inner select list over the fused rows; the rank column
	// is 1 by construction
	items, err := expandStars(p.inner.Items, joined.schema)
	if err != nil {
		return nil, err
	}
	out := &relation{}
	for _, item := range items {
		name := itemName(item, joined.schema)
		typ := s.inferType(item.Expr, joined.schema)
		if fc, isFn := item.Expr.(*sqlparse.FuncCall); isFn && fc.Over != nil {
			typ = "bigint"
		}
		out.schema = append(out.schema, colBinding{name: name, typ: typ})
	}
	if s.interpretedMode() {
		for _, row := range joined.rows {
			or := make([]any, len(items))
			for i, item := range items {
				if fc, isFn := item.Expr.(*sqlparse.FuncCall); isFn && fc.Over != nil {
					or[i] = int64(1)
					continue
				}
				v, err := s.evalExpr(item.Expr, joined.schema, row)
				if err != nil {
					return nil, err
				}
				or[i] = v
			}
			out.rows = append(out.rows, or)
		}
		return out, nil
	}
	// compiled: items lower once; the rank item is 1 by construction
	fns := make([]exprFn, len(items))
	for i, item := range items {
		if fc, isFn := item.Expr.(*sqlparse.FuncCall); isFn && fc.Over != nil {
			fns[i] = func(*evalCtx, []any) (any, error) { return int64(1), nil }
			continue
		}
		fns[i] = compileExpr(item.Expr, joined.schema).fn
	}
	ec := &evalCtx{s: s, rowIdx: -1}
	out.rows = make([][]any, 0, len(joined.rows))
	for _, row := range joined.rows {
		if err := s.tick(); err != nil {
			return nil, err
		}
		or := make([]any, len(items))
		for i, fn := range fns {
			v, err := fn(ec, row)
			if err != nil {
				return nil, err
			}
			or[i] = v
		}
		out.rows = append(out.rows, or)
	}
	return out, nil
}
