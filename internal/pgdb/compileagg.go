package pgdb

import (
	"hyperq/internal/pgdb/sqlparse"
)

// Aggregate-mode compilation: select items of a grouped query are lowered
// once, with each distinct aggregate call bound to a slot of a per-group
// lazy accumulator. Laziness mirrors the interpreter exactly — an aggregate
// inside a CASE arm that is never taken is never computed, so its errors
// never surface; and a slot that is referenced twice is computed once and
// memoized, which is where hash aggregation beats the interpreter's
// re-scan-per-reference strategy.

// aggSlot is one distinct aggregate call of a grouped select, with its
// argument compiled against the input schema.
type aggSlot struct {
	fc  *sqlparse.FuncCall
	arg exprFn // nil when the call has no arguments (or is COUNT(*))
}

// groupAgg lazily computes aggregate values for one group.
type groupAgg struct {
	slots []aggSlot
	rows  [][]any
	vals  []any
	errs  []error
	done  []bool
}

func newGroupAgg(slots []aggSlot, rows [][]any) *groupAgg {
	return &groupAgg{
		slots: slots,
		rows:  rows,
		vals:  make([]any, len(slots)),
		errs:  make([]error, len(slots)),
		done:  make([]bool, len(slots)),
	}
}

func (g *groupAgg) value(ec *evalCtx, i int) (any, error) {
	if !g.done[i] {
		g.done[i] = true
		g.vals[i], g.errs[i] = computeAggSlot(ec, g.slots[i], g.rows)
	}
	return g.vals[i], g.errs[i]
}

// computeAggSlot evaluates one aggregate over the group's rows. The hot
// aggregates fold incrementally in a single pass; the long tail collects
// values and shares the interpreter's finalizer so numeric results are
// bit-identical between engines.
func computeAggSlot(ec *evalCtx, slot aggSlot, rows [][]any) (any, error) {
	fc := slot.fc
	if fc.Star { // COUNT(*)
		return int64(len(rows)), nil
	}
	if slot.arg == nil {
		return nil, errf("42883", "%s requires an argument", fc.Name)
	}
	// first/last are positional over the group's input order and do not
	// skip NULLs, matching q's first/last — the argument is evaluated only
	// on the chosen row, like the interpreter.
	if fc.Name == "first" || fc.Name == "last" {
		if len(rows) == 0 {
			return nil, nil
		}
		row := rows[0]
		if fc.Name == "last" {
			row = rows[len(rows)-1]
		}
		return slot.arg(ec, row)
	}
	var seen map[string]bool
	if fc.Distinct {
		seen = map[string]bool{}
	}
	// each yields the non-null (and, under DISTINCT, first-occurrence)
	// argument values in row order — the same stream computeAggregate
	// collects.
	each := func(f func(v any) error) error {
		for _, row := range rows {
			v, err := slot.arg(ec, row)
			if err != nil {
				return err
			}
			if v == nil {
				continue
			}
			if seen != nil {
				k := keyString([]any{v})
				if seen[k] {
					continue
				}
				seen[k] = true
			}
			if err := f(v); err != nil {
				return err
			}
		}
		return nil
	}
	switch fc.Name {
	case "count":
		var n int64
		if err := each(func(any) error { n++; return nil }); err != nil {
			return nil, err
		}
		return n, nil
	case "sum":
		// identical accumulation order to the interpreter: isum and fsum
		// advance together so the all-int and mixed cases agree exactly
		var isum int64
		var fsum float64
		allInt := true
		n := 0
		if err := each(func(v any) error {
			n++
			if x, ok := v.(int64); ok {
				isum += x
				fsum += float64(x)
				return nil
			}
			allInt = false
			f, ok := toFloat(v)
			if !ok {
				return errf("42804", "sum of non-number")
			}
			fsum += f
			return nil
		}); err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, nil
		}
		if allInt {
			return isum, nil
		}
		return fsum, nil
	case "avg":
		var sum float64
		n := 0
		if err := each(func(v any) error {
			f, ok := toFloat(v)
			if !ok {
				return errf("42804", "avg of non-number")
			}
			sum += f
			n++
			return nil
		}); err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, nil
		}
		return sum / float64(n), nil
	case "min", "max":
		isMin := fc.Name == "min"
		var best any
		if err := each(func(v any) error {
			if best == nil {
				best = v
				return nil
			}
			c := compareVals(v, best)
			if (isMin && c < 0) || (!isMin && c > 0) {
				best = v
			}
			return nil
		}); err != nil {
			return nil, err
		}
		return best, nil
	case "bool_and", "bool_or":
		isAnd := fc.Name == "bool_and"
		acc := isAnd
		n := 0
		if err := each(func(v any) error {
			b, ok := v.(bool)
			if !ok {
				return errf("42804", "%s of non-boolean", fc.Name)
			}
			n++
			if isAnd {
				acc = acc && b
			} else {
				acc = acc || b
			}
			return nil
		}); err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, nil
		}
		return acc, nil
	default:
		// stddev family, median, string_agg: collect then share the
		// interpreter's finalizer
		var vals []any
		if err := each(func(v any) error { vals = append(vals, v); return nil }); err != nil {
			return nil, err
		}
		return finalizeAggregate(fc, vals)
	}
}

// collectAggSlots walks the select items and HAVING clause in evaluation
// order and assigns each distinct aggregate call a slot, compiling its
// argument once.
func collectAggSlots(items []sqlparse.SelectItem, having sqlparse.Expr, schema []colBinding) ([]aggSlot, map[*sqlparse.FuncCall]int) {
	var slots []aggSlot
	index := map[*sqlparse.FuncCall]int{}
	add := func(e sqlparse.Expr) {
		walkExpr(e, func(x sqlparse.Expr) {
			fc, ok := x.(*sqlparse.FuncCall)
			if !ok || fc.Over != nil || !aggregateNames[fc.Name] {
				return
			}
			if _, dup := index[fc]; dup {
				return
			}
			slot := aggSlot{fc: fc}
			if len(fc.Args) > 0 {
				slot.arg = compileExpr(fc.Args[0], schema).fn
			}
			index[fc] = len(slots)
			slots = append(slots, slot)
		})
	}
	for _, item := range items {
		add(item.Expr)
	}
	if having != nil {
		add(having)
	}
	return slots, index
}

// compileAggExpr lowers an expression in group context: aggregate calls read
// their lazily computed slot, scalar structure above them applies to those
// values, and aggregate-free subtrees evaluate against the group's
// representative row — over an empty group, column-referencing subtrees
// yield NULL while row-independent ones still evaluate, exactly as the
// interpreter's evalAggExpr. The representative row is passed as row (nil
// for an empty group).
func compileAggExpr(e sqlparse.Expr, schema []colBinding, index map[*sqlparse.FuncCall]int) exprFn {
	if fc, ok := e.(*sqlparse.FuncCall); ok && fc.Over == nil && aggregateNames[fc.Name] {
		slot := index[fc]
		return func(ec *evalCtx, row []any) (any, error) {
			return ec.agg.value(ec, slot)
		}
	}
	if !exprHasAggregate(e) {
		return repRowFn(e, schema)
	}
	switch x := e.(type) {
	case *sqlparse.FuncCall:
		// scalar function over aggregate results, e.g. COALESCE(SUM(x), 0)
		args := make([]exprFn, len(x.Args))
		for i, a := range x.Args {
			args[i] = compileAggExpr(a, schema, index)
		}
		name := x.Name
		return func(ec *evalCtx, row []any) (any, error) {
			vals := make([]any, len(args))
			for i, fn := range args {
				v, err := fn(ec, row)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			return applyScalarFunc(name, vals)
		}
	case *sqlparse.CaseExpr:
		var operandFn exprFn
		if x.Operand != nil {
			operandFn = compileAggExpr(x.Operand, schema, index)
		}
		conds := make([]exprFn, len(x.Whens))
		thens := make([]exprFn, len(x.Whens))
		for i, w := range x.Whens {
			conds[i] = compileAggExpr(w.Cond, schema, index)
			thens[i] = compileAggExpr(w.Then, schema, index)
		}
		var elseFn exprFn
		if x.Else != nil {
			elseFn = compileAggExpr(x.Else, schema, index)
		}
		return func(ec *evalCtx, row []any) (any, error) {
			for i := range conds {
				var hit bool
				if operandFn != nil {
					ov, err := operandFn(ec, row)
					if err != nil {
						return nil, err
					}
					cv, err := conds[i](ec, row)
					if err != nil {
						return nil, err
					}
					hit = ov != nil && cv != nil && equalVals(ov, cv)
				} else {
					cv, err := conds[i](ec, row)
					if err != nil {
						return nil, err
					}
					b, ok := cv.(bool)
					hit = ok && b
				}
				if hit {
					return thens[i](ec, row)
				}
			}
			if elseFn != nil {
				return elseFn(ec, row)
			}
			return nil, nil
		}
	case *sqlparse.IsNullExpr:
		inner := compileAggExpr(x.X, schema, index)
		not := x.Not
		return func(ec *evalCtx, row []any) (any, error) {
			v, err := inner(ec, row)
			if err != nil {
				return nil, err
			}
			if not {
				return v != nil, nil
			}
			return v == nil, nil
		}
	case *sqlparse.BinaryExpr:
		cl := compileAggExpr(x.L, schema, index)
		cr := compileAggExpr(x.R, schema, index)
		op := x.Op
		return func(ec *evalCtx, row []any) (any, error) {
			// the interpreter evaluates both sides before applying AND/OR
			// in group context (no short circuit); preserved here
			l, err := cl(ec, row)
			if err != nil {
				return nil, err
			}
			r, err := cr(ec, row)
			if err != nil {
				return nil, err
			}
			if op == "AND" || op == "OR" {
				return applyAndOr(op, l, r), nil
			}
			return applyBinary(op, l, r)
		}
	case *sqlparse.CastExpr:
		inner := compileAggExpr(x.X, schema, index)
		typ := normalizeType(x.Type)
		return func(ec *evalCtx, row []any) (any, error) {
			v, err := inner(ec, row)
			if err != nil {
				return nil, err
			}
			return castValue(v, typ)
		}
	case *sqlparse.UnaryExpr:
		inner := compileAggExpr(x.X, schema, index)
		op := x.Op
		return func(ec *evalCtx, row []any) (any, error) {
			v, err := inner(ec, row)
			if err != nil {
				return nil, err
			}
			switch op {
			case "NOT":
				if v == nil {
					return nil, nil
				}
				b, ok := v.(bool)
				if !ok {
					return nil, errf("42804", "argument of NOT must be boolean")
				}
				return !b, nil
			case "-":
				switch n := v.(type) {
				case nil:
					return nil, nil
				case int64:
					return -n, nil
				case float64:
					return -n, nil
				default:
					return nil, errf("42804", "cannot negate %T", v)
				}
			}
			return nil, errf("0A000", "unsupported unary %s", op)
		}
	default:
		// shapes evalAggExpr does not descend into (IN, BETWEEN, scalar
		// subqueries, ...) evaluate against the representative row
		return repRowFn(e, schema)
	}
}

// repRowFn evaluates an aggregate-free expression against the group's
// representative row, with the interpreter's empty-group rule: column
// references yield NULL, row-independent expressions still have a value
// (COALESCE(SUM(x), 0) relies on the 0 surviving an empty input).
func repRowFn(e sqlparse.Expr, schema []colBinding) exprFn {
	inner := compileExpr(e, schema)
	hasCol := exprHasColRef(e)
	return func(ec *evalCtx, row []any) (any, error) {
		if row == nil && hasCol {
			return nil, nil
		}
		return inner.fn(ec, row)
	}
}

// execGroupedCompiled is the compiled GROUP BY / aggregate path: group rows
// by compiled key extractors in one hash pass, then evaluate the compiled
// items per group against the lazy aggregate slots.
func (s *Session) execGroupedCompiled(sel *sqlparse.SelectStmt, rel *relation) (*Result, error) {
	rel.rowsView() // row-at-a-time grouping
	items, err := expandStars(sel.Items, rel.schema)
	if err != nil {
		return nil, err
	}
	ec := &evalCtx{s: s, rowIdx: -1}
	type group struct {
		rows [][]any
	}
	var order []string
	groups := map[string]*group{}
	if len(sel.GroupBy) == 0 {
		rows := rel.rows
		if len(rows) == 0 {
			rows = nil // global aggregate over empty input still yields one row
		}
		groups[""] = &group{rows: rows}
		order = append(order, "")
	} else {
		keyFns := make([]exprFn, len(sel.GroupBy))
		for i, ge := range sel.GroupBy {
			keyFns[i] = compileExpr(ge, rel.schema).fn
		}
		keyVals := make([]any, len(keyFns))
		for _, row := range rel.rows {
			if err := s.tick(); err != nil {
				return nil, err
			}
			for i, fn := range keyFns {
				v, err := fn(ec, row)
				if err != nil {
					return nil, err
				}
				keyVals[i] = v
			}
			k := keyString(keyVals)
			g, ok := groups[k]
			if !ok {
				g = &group{}
				groups[k] = g
				order = append(order, k)
			}
			g.rows = append(g.rows, row)
		}
	}
	slots, index := collectAggSlots(items, sel.Having, rel.schema)
	itemFns := make([]exprFn, len(items))
	for i := range items {
		itemFns[i] = compileAggExpr(items[i].Expr, rel.schema, index)
	}
	var havingFn exprFn
	if sel.Having != nil {
		havingFn = compileAggExpr(sel.Having, rel.schema, index)
	}
	res := &Result{}
	for _, item := range items {
		res.Cols = append(res.Cols, Column{
			Name: itemName(item, rel.schema),
			Type: s.inferType(item.Expr, rel.schema),
		})
	}
	res.Rows = make([][]any, 0, len(order))
	for _, k := range order {
		g := groups[k]
		gec := &evalCtx{s: s, rowIdx: -1, agg: newGroupAgg(slots, g.rows)}
		var rep []any
		if len(g.rows) > 0 {
			rep = g.rows[0]
		}
		out := make([]any, len(items))
		for i, fn := range itemFns {
			v, err := fn(gec, rep)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		if havingFn != nil {
			hv, err := havingFn(gec, rep)
			if err != nil {
				return nil, err
			}
			if b, ok := hv.(bool); !ok || !b {
				continue
			}
		}
		res.Rows = append(res.Rows, out)
	}
	refineTypes(res)
	return res, nil
}
