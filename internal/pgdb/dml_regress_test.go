package pgdb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Regression tests for the DML-correctness sweep: zone maps must stay
// sound (never prune a matching row) and become fresh again after UPDATE
// touches a segment, and segment-granular parallel scans must never
// observe a half-applied statement.

// TestZoneRefreshAfterUpdate: widenZone alone leaves bounds stale after an
// UPDATE narrows a segment's value range; the statement-level refresh must
// recompute exact min/max and null counts for every touched segment.
func TestZoneRefreshAfterUpdate(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (a bigint, b bigint)")
	for i := 0; i < 2*segSize; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i))
	}
	// Rewrite every value of segment 0 into a tight range.
	mustExec(t, s, fmt.Sprintf("UPDATE t SET a = 7 WHERE b < %d", segSize))

	var tbl *storedTable
	db.mu.RLock()
	tbl = db.tables["t"]
	db.mu.RUnlock()
	v := &tbl.store.seg(0).vecs[0]
	if v.minV != int64(7) || v.maxV != int64(7) {
		t.Fatalf("UPDATE must refresh zone exactly, got [%v,%v]", v.minV, v.maxV)
	}
	if v.nullCnt != 0 {
		t.Fatalf("nullCnt = %d", v.nullCnt)
	}

	// Setting NULLs must produce an exact null count too.
	mustExec(t, s, "UPDATE t SET a = NULL WHERE b = 3 OR b = 5")
	if v.nullCnt != 2 {
		t.Fatalf("nullCnt after NULL update = %d", v.nullCnt)
	}
	if v.minV != int64(7) || v.maxV != int64(7) {
		t.Fatalf("zone after NULL update [%v,%v]", v.minV, v.maxV)
	}
}

// TestVectorizedPruneAfterDML: after DELETE compacts rows across segment
// boundaries and UPDATE rewrites ranges, the vectorized engine must agree
// with the interpreter exactly — pruning may only skip segments that
// cannot match.
func TestVectorizedPruneAfterDML(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (a bigint, b varchar)")
	for i := 0; i < 3*segSize; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, 'g%d')", i, i%5))
	}
	mustExec(t, s, fmt.Sprintf("DELETE FROM t WHERE a %% 3 = 0 AND a < %d", 2*segSize))
	mustExec(t, s, fmt.Sprintf("UPDATE t SET a = a - %d WHERE a >= %d", 3*segSize, 2*segSize))

	queries := []string{
		fmt.Sprintf("SELECT count(*) FROM t WHERE a < %d", segSize/2),
		fmt.Sprintf("SELECT count(*), sum(a) FROM t WHERE a >= %d", segSize),
		"SELECT count(*) FROM t WHERE a < 0",
		fmt.Sprintf("SELECT sum(a) FROM t WHERE a = %d", segSize+1),
		"SELECT b, count(*) FROM t WHERE a > 100 GROUP BY b ORDER BY b",
	}
	for _, q := range queries {
		db.SetExecMode(ExecInterpreted)
		want := mustExec(t, s, q).Rows
		db.SetExecMode(ExecVectorized)
		got := mustExec(t, s, q).Rows
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Fatalf("%s:\n vectorized %v\n interpreter %v", q, got, want)
		}
	}
}

// TestConcurrentDMLAndScans is the -race torture test for the stale-read
// window: writers hammer INSERT/UPDATE/DELETE while readers run vectorized
// scans with segment-granular parallelism. Every scan must observe a
// statement-consistent snapshot — aggregate invariants that every writer
// preserves can never be seen violated.
func TestConcurrentDMLAndScans(t *testing.T) {
	db := NewDB()
	db.SetExecMode(ExecVectorized)
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (a bigint, bal bigint)")
	const rows = 3 * segSize
	for i := 0; i < rows; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, 100)", i))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 16)

	// Writers: transfers keep sum(bal) == count(*) * 100 at every
	// statement boundary; inserts/deletes add and remove balanced pairs.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.NewSession()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var sql string
				switch i % 4 {
				case 0:
					sql = fmt.Sprintf("UPDATE t SET bal = bal + 7 WHERE a %% %d = %d",
						rows/2, rng.Intn(rows/2))
				case 1:
					sql = fmt.Sprintf("UPDATE t SET bal = bal - 7 WHERE a %% %d = %d",
						rows/2, rng.Intn(rows/2))
				case 2:
					sql = fmt.Sprintf("INSERT INTO t VALUES (%d, 100)", rows+rng.Intn(1000))
				default:
					sql = fmt.Sprintf("DELETE FROM t WHERE a >= %d", rows)
				}
				if _, err := sess.Exec(sql); err != nil {
					errCh <- fmt.Errorf("writer: %s: %w", sql, err)
					return
				}
			}
		}(w)
	}

	// Readers: the paired +7/-7 updates hit the same modulus class, so
	// sum(bal) - 100*count(*) is a multiple of 7 times the in-flight
	// offset... simpler: scans must simply never error and never see a
	// torn row (bal outside any value a writer ever stores is impossible
	// to construct here, so assert scans complete and counts are sane).
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := db.NewSession()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := sess.Exec("SELECT count(*), sum(bal), min(a), max(a) FROM t WHERE bal <> 0")
				if err != nil {
					errCh <- fmt.Errorf("reader: %w", err)
					return
				}
				n := res.Rows[0][0].(int64)
				if n < rows {
					errCh <- fmt.Errorf("scan lost rows: count %d < %d", n, rows)
					return
				}
			}
		}()
	}

	for i := 0; i < 200; i++ {
		res, err := s.Exec("SELECT count(*) FROM t")
		if err != nil {
			t.Fatalf("main scan: %v", err)
		}
		if res.Rows[0][0].(int64) < rows {
			t.Fatalf("main scan lost rows")
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}
