package pgdb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Columnar table storage: a storedTable keeps its data as typed column
// vectors organized into fixed-size segments, each column carrying a null
// bitmap and a per-segment min/max zone map. The vectorized executor
// (vector.go, vecagg.go) scans these vectors batch-at-a-time; every other
// consumer — the interpreter, the compiled row engine, joins, DML — reads
// through a memoized row-view adapter (rows()), which materializes boxed
// rows once and keeps them write-through-coherent with the vectors.

// segSize is the number of rows per segment. It is a multiple of 64 so a
// segment's slice of the global selection bitmap is word-aligned, and it
// matches parallelMinRows so parallel scans chunk on segment boundaries.
const segSize = 4096

// vecKind is the storage class of one column vector within a segment.
type vecKind uint8

const (
	vkEmpty vecKind = iota // no non-null value appended yet
	vkInt
	vkFloat
	vkStr
	vkBool
	vkAny // mixed value types: boxed storage, no zone map
)

// vecKindName returns the %T name compareVals sees for values of a kind,
// so constant-result mixed-type comparisons match the row engines exactly.
func vecKindName(k vecKind) string {
	switch k {
	case vkInt:
		return "int64"
	case vkFloat:
		return "float64"
	case vkStr:
		return "string"
	case vkBool:
		return "bool"
	default:
		return ""
	}
}

// colVec is one column of one segment: a typed vector chosen from the first
// non-null value, with dynamic degradation to boxed storage on a type
// mismatch, a null bitmap, and a conservative min/max zone map.
type colVec struct {
	kind vecKind
	// stub marks an evicted column: the metadata below (kind, null count,
	// zone bounds) is valid but the data slices are absent; touching its
	// cells must fault this column back in through the store's loader.
	stub   bool
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	anys   []any
	nulls  []uint64 // bit i set ⇒ row i is NULL
	// nullCnt is exact: appends and in-place updates maintain it.
	nullCnt int
	// minV/maxV bound the non-null values in compareVals order. They only
	// widen (appends, updates), so after deletes rebuild the bounds may be
	// wider than the data — sound for pruning, never narrower. nil when the
	// vector holds no non-null values or has degraded to vkAny.
	minV, maxV any
}

func (v *colVec) isNull(i int) bool {
	w := i >> 6
	return w < len(v.nulls) && v.nulls[w]&(1<<(uint(i)&63)) != 0
}

// nullWord returns word w of the null bitmap (0 if never allocated).
func (v *colVec) nullWord(w int) uint64 {
	if w < len(v.nulls) {
		return v.nulls[w]
	}
	return 0
}

func (v *colVec) setNullBit(i int) {
	w := i >> 6
	for len(v.nulls) <= w {
		v.nulls = append(v.nulls, 0)
	}
	v.nulls[w] |= 1 << (uint(i) & 63)
}

func (v *colVec) clearNullBit(i int) {
	w := i >> 6
	if w < len(v.nulls) {
		v.nulls[w] &^= 1 << (uint(i) & 63)
	}
}

// pad extends the typed storage with one zero placeholder (for a NULL row).
func (v *colVec) pad() {
	switch v.kind {
	case vkInt:
		v.ints = append(v.ints, 0)
	case vkFloat:
		v.floats = append(v.floats, 0)
	case vkStr:
		v.strs = append(v.strs, "")
	case vkBool:
		v.bools = append(v.bools, false)
	case vkAny:
		v.anys = append(v.anys, nil)
	}
}

// degrade converts the vector to boxed storage (n values appended so far);
// the zone map is dropped — mixed-type bounds cannot prune soundly.
func (v *colVec) degrade(n int) {
	anys := make([]any, n)
	for i := 0; i < n; i++ {
		if v.isNull(i) {
			continue
		}
		switch v.kind {
		case vkInt:
			anys[i] = v.ints[i]
		case vkFloat:
			anys[i] = v.floats[i]
		case vkStr:
			anys[i] = v.strs[i]
		case vkBool:
			anys[i] = v.bools[i]
		}
	}
	v.kind = vkAny
	v.ints, v.floats, v.strs, v.bools = nil, nil, nil, nil
	v.anys = anys
	v.minV, v.maxV = nil, nil
}

// widenZone extends the min/max bounds to cover a new non-null value.
func (v *colVec) widenZone(val any) {
	if v.kind == vkAny {
		return
	}
	if v.minV == nil {
		v.minV, v.maxV = val, val
		return
	}
	if compareVals(val, v.minV) < 0 {
		v.minV = val
	}
	if compareVals(val, v.maxV) > 0 {
		v.maxV = val
	}
}

// recomputeZone rebuilds the exact min/max bounds and null count from the
// first n values. widenZone only ever widens, so this is the narrow-again
// counterpart the UPDATE path runs once per statement on touched vectors.
func (v *colVec) recomputeZone(n int) {
	nulls := 0
	for w := 0; w*64 < n; w++ {
		word := v.nullWord(w)
		if rem := n - w*64; rem < 64 {
			word &= 1<<uint(rem) - 1
		}
		nulls += popCount([]uint64{word})
	}
	v.nullCnt = nulls
	v.minV, v.maxV = nil, nil
	if v.kind == vkAny || v.kind == vkEmpty {
		return
	}
	for i := 0; i < n; i++ {
		if v.isNull(i) {
			continue
		}
		switch v.kind {
		case vkInt:
			v.widenZone(v.ints[i])
		case vkFloat:
			v.widenZone(v.floats[i])
		case vkStr:
			v.widenZone(v.strs[i])
		case vkBool:
			v.widenZone(v.bools[i])
		}
	}
}

// appendVal appends one value at position pos (== values appended so far).
func (v *colVec) appendVal(val any, pos int) {
	if val == nil {
		v.setNullBit(pos)
		v.nullCnt++
		v.pad()
		return
	}
	switch x := val.(type) {
	case int64:
		switch v.kind {
		case vkEmpty:
			v.kind = vkInt
			v.ints = append(make([]int64, pos, pos+1), x)
		case vkInt:
			v.ints = append(v.ints, x)
		case vkAny:
			v.anys = append(v.anys, x)
		default:
			v.degrade(pos)
			v.anys = append(v.anys, x)
		}
	case float64:
		switch v.kind {
		case vkEmpty:
			v.kind = vkFloat
			v.floats = append(make([]float64, pos, pos+1), x)
		case vkFloat:
			v.floats = append(v.floats, x)
		case vkAny:
			v.anys = append(v.anys, x)
		default:
			v.degrade(pos)
			v.anys = append(v.anys, x)
		}
	case string:
		switch v.kind {
		case vkEmpty:
			v.kind = vkStr
			v.strs = append(make([]string, pos, pos+1), x)
		case vkStr:
			v.strs = append(v.strs, x)
		case vkAny:
			v.anys = append(v.anys, x)
		default:
			v.degrade(pos)
			v.anys = append(v.anys, x)
		}
	case bool:
		switch v.kind {
		case vkEmpty:
			v.kind = vkBool
			v.bools = append(make([]bool, pos, pos+1), x)
		case vkBool:
			v.bools = append(v.bools, x)
		case vkAny:
			v.anys = append(v.anys, x)
		default:
			v.degrade(pos)
			v.anys = append(v.anys, x)
		}
	default:
		// a value outside the engine's domain: store boxed
		if v.kind != vkAny {
			v.degrade(pos)
		}
		v.anys = append(v.anys, val)
	}
	v.widenZone(val)
}

// setVal overwrites the value at position i in place (UPDATE write-through).
// segN is the segment's row count, needed if the vector must degrade.
func (v *colVec) setVal(i int, val any, segN int) {
	if v.isNull(i) {
		if val == nil {
			return
		}
		v.clearNullBit(i)
		v.nullCnt--
	} else if val == nil {
		v.setNullBit(i)
		v.nullCnt++
		// leave the stale typed cell in place; the null bit masks it
		if v.kind == vkAny {
			v.anys[i] = nil
		}
		return
	}
	stored := false
	switch x := val.(type) {
	case int64:
		if v.kind == vkInt {
			v.ints[i] = x
			stored = true
		}
	case float64:
		if v.kind == vkFloat {
			v.floats[i] = x
			stored = true
		}
	case string:
		if v.kind == vkStr {
			v.strs[i] = x
			stored = true
		}
	case bool:
		if v.kind == vkBool {
			v.bools[i] = x
			stored = true
		}
	}
	if !stored {
		if v.kind != vkAny {
			v.degrade(segN)
		}
		v.anys[i] = val
	}
	v.widenZone(val)
}

// get boxes the value at position i.
func (v *colVec) get(i int) any {
	if v.isNull(i) {
		return nil
	}
	switch v.kind {
	case vkInt:
		return v.ints[i]
	case vkFloat:
		return v.floats[i]
	case vkStr:
		return v.strs[i]
	case vkBool:
		return v.bools[i]
	case vkAny:
		return v.anys[i]
	default:
		return nil
	}
}

// segment holds up to segSize rows of every column. Residency is tracked
// per column: each colVec carries its own stub flag, and the segment-level
// stub flag is the OR of them — set when at least one column is evicted.
// A fully evicted segment keeps only the per-vector metadata the planner
// prunes on (kind, null count, zone bounds); touching a stub column's cells
// faults that column back in through the store's loader. Segments are
// immutable once published through the slot pointer while stubbed; faults
// install a copy-on-write replacement, so readers never observe a
// half-built column.
type segment struct {
	n    int
	stub bool
	vecs []colVec
}

// storeFault carries an I/O error out of a cold-segment fault. Segment reads
// happen deep inside scan loops with no error return path, so the fault
// panics and the statement boundary (ExecStmt, parallel scan workers)
// recovers it into a statement error.
type storeFault struct{ err error }

func (f *storeFault) Error() string { return f.err.Error() }

// segSlot is one segment position; the pointer swaps atomically between the
// resident segment and its (possibly partially) evicted form, so concurrent
// readers never observe a half-built segment.
type segSlot struct {
	p atomic.Pointer[segment]
	// mu serializes segment installs (the copy-on-write pointer swap) so
	// concurrent faults of disjoint column sets compose instead of losing
	// each other's columns.
	mu sync.Mutex
	// colMu serializes faults per column, so parallel scan workers can
	// reload distinct columns of the same segment concurrently while two
	// faults of the same column do the I/O only once.
	colMu []sync.Mutex
}

// colStore is the columnar storage of one table.
type colStore struct {
	cols  []Column
	slots []*segSlot
	n     int

	// loader faults evicted (stub) segments back in; nil for memory-only
	// stores, which never evict. Faults of the same segment serialize on
	// the slot's own mutex.
	loader SegLoader

	// cache is the memoized row-view adapter: boxed rows materialized once
	// and kept coherent with the vectors (appends extend it, UPDATE writes
	// through, DELETE replaces it). Readers load it lock-free; the build is
	// serialized by cacheMu so concurrent first readers do not race.
	cacheMu sync.Mutex
	cache   atomic.Pointer[[][]any]

	// ix holds the table's access paths: per-column sorted attributes, lazy
	// hash indexes, and the as-of bucket cache (index.go).
	ix indexState
}

func newColStore(cols []Column) *colStore {
	st := &colStore{cols: cols}
	st.ix.init(len(cols))
	return st
}

func (st *colStore) numRows() int { return st.n }
func (st *colStore) numSegs() int { return len(st.slots) }

// peekSeg returns the segment as resident in memory — possibly a stub — for
// metadata-only inspection (zone pruning, row counts). It never faults.
func (st *colStore) peekSeg(si int) *segment { return st.slots[si].p.Load() }

// seg returns segment si with every column resident, faulting missing ones
// in from the loader. I/O failures surface as a storeFault panic, recovered
// at the statement boundary.
func (st *colStore) seg(si int) *segment {
	if s := st.slots[si].p.Load(); !s.stub {
		return s
	}
	return st.fault(si, nil)
}

// segCols returns segment si with at least the given columns resident
// (nil ⇒ all columns). The vectorized scan paths pass their referenced
// column set here so a pruned cold scan faults only the WHERE + projected
// columns of each segment.
func (st *colStore) segCols(si int, cols []int) *segment {
	s := st.slots[si].p.Load()
	if !s.stub {
		return s
	}
	if cols == nil {
		return st.fault(si, nil)
	}
	for _, c := range cols {
		if s.vecs[c].stub {
			return st.fault(si, cols)
		}
	}
	return s
}

// fault loads the stub columns among cols (nil ⇒ all columns) of segment si
// and installs a copy-on-write replacement segment. Per-column mutexes are
// taken in ascending column order (deadlock-free); the brief install section
// under slot.mu composes concurrent faults of disjoint column sets.
func (st *colStore) fault(si int, cols []int) *segment {
	slot := st.slots[si]
	var req []int
	if cols == nil {
		req = make([]int, len(st.cols))
		for c := range req {
			req[c] = c
		}
	} else {
		req = append([]int(nil), cols...)
		sort.Ints(req)
		// drop duplicates so a column's mutex is not locked twice
		w := 0
		for i, c := range req {
			if i == 0 || c != req[w-1] {
				req[w] = c
				w++
			}
		}
		req = req[:w]
	}
	for _, c := range req {
		slot.colMu[c].Lock()
	}
	defer func() {
		for _, c := range req {
			slot.colMu[c].Unlock()
		}
	}()
	s := slot.p.Load()
	missing := make([]int, 0, len(req))
	for _, c := range req {
		if s.vecs[c].stub {
			missing = append(missing, c)
		}
	}
	if len(missing) == 0 {
		return s // concurrent faults won every requested column
	}
	if st.loader == nil {
		panic(&storeFault{err: fmt.Errorf("segment %d is evicted and the store has no loader", si)})
	}
	data, err := st.loader(si, missing)
	if err != nil {
		panic(&storeFault{err: fmt.Errorf("reloading segment %d: %w", si, err)})
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	cur := slot.p.Load()
	ns := &segment{n: cur.n, vecs: make([]colVec, len(cur.vecs))}
	copy(ns.vecs, cur.vecs)
	for _, c := range missing {
		if c >= len(data.Vecs) {
			panic(&storeFault{err: fmt.Errorf("reloading segment %d: loader returned %d vectors, need column %d", si, len(data.Vecs), c)})
		}
		ns.vecs[c] = vecFromData(data.Vecs[c])
	}
	for c := range ns.vecs {
		if ns.vecs[c].stub {
			ns.stub = true
			break
		}
	}
	slot.p.Store(ns)
	return ns
}

// addSeg appends a fresh segment slot holding seg.
func (st *colStore) addSeg(seg *segment) {
	slot := &segSlot{colMu: make([]sync.Mutex, len(st.cols))}
	slot.p.Store(seg)
	st.slots = append(st.slots, slot)
}

// lastSeg returns the open segment, appending a new one when full.
func (st *colStore) lastSeg() *segment {
	if n := len(st.slots); n > 0 {
		if seg := st.seg(n - 1); seg.n < segSize {
			return seg
		}
	}
	seg := &segment{vecs: make([]colVec, len(st.cols))}
	st.addSeg(seg)
	return seg
}

// appendVecs appends one row to the vectors only (no cache maintenance).
func (st *colStore) appendVecs(row []any) {
	seg := st.lastSeg()
	pos := seg.n
	for c := range st.cols {
		var v any
		if c < len(row) {
			v = row[c]
		}
		seg.vecs[c].appendVal(v, pos)
		st.noteAppend(c, v)
	}
	seg.n++
	st.n++
	st.noteMutation()
}

// appendRow appends one row; a materialized row cache extends with the same
// slice so handed-out row views stay coherent, like the former [][]any
// storage did.
func (st *colStore) appendRow(row []any) {
	st.appendVecs(row)
	if p := st.cache.Load(); p != nil {
		rows := append(*p, row)
		st.cache.Store(&rows)
	}
}

// rows materializes the boxed row view, memoized across calls. The first
// call boxes every cell; later calls return the cached slice, so row-at-a-
// time consumers (interpreter, joins, DML, as-of) pay materialization once
// per table lifetime.
func (st *colStore) rows() [][]any {
	if p := st.cache.Load(); p != nil {
		return *p
	}
	st.cacheMu.Lock()
	defer st.cacheMu.Unlock()
	if p := st.cache.Load(); p != nil {
		return *p
	}
	out := make([][]any, 0, st.n)
	for si := range st.slots {
		seg := st.seg(si)
		for i := 0; i < seg.n; i++ {
			row := make([]any, len(st.cols))
			for c := range seg.vecs {
				row[c] = seg.vecs[c].get(i)
			}
			out = append(out, row)
		}
	}
	st.cache.Store(&out)
	return out
}

// cellAt boxes the value at a global row index, faulting in only that
// column of the segment when it is evicted.
func (st *colStore) cellAt(i, col int) any {
	si := i / segSize
	s := st.slots[si].p.Load()
	if s.stub && s.vecs[col].stub {
		s = st.fault(si, []int{col})
	}
	return s.vecs[col].get(i % segSize)
}

// rowAt boxes one full row at a global row index (lazy scans use this in
// place of the materialized row view).
func (st *colStore) rowAt(i int) []any {
	seg := st.seg(i / segSize)
	pos := i % segSize
	row := make([]any, len(st.cols))
	for c := range seg.vecs {
		row[c] = seg.vecs[c].get(pos)
	}
	return row
}

// rowAtCols boxes the given columns of one row (others stay nil), faulting
// only those columns. Aggregate finalization uses this for the group's
// representative row when the referenced-column analysis succeeds.
func (st *colStore) rowAtCols(i int, cols []int) []any {
	seg := st.segCols(i/segSize, cols)
	pos := i % segSize
	row := make([]any, len(st.cols))
	for _, c := range cols {
		row[c] = seg.vecs[c].get(pos)
	}
	return row
}

// setCell overwrites one cell in the vectors (UPDATE write-through; the
// caller mutates the cached row itself, keeping both views coherent).
func (st *colStore) setCell(rowIdx, col int, val any) {
	seg := st.seg(rowIdx / segSize)
	var old any
	ix := st.ix.idx[col].Load()
	if ix != nil && ix != notIndexable {
		old = seg.vecs[col].get(rowIdx % segSize)
	}
	seg.vecs[col].setVal(rowIdx%segSize, val, seg.n)
	st.noteMutation()
	st.noteSet(rowIdx, col, val, old, ix)
}

// compact rebuilds the store from the kept rows (DELETE): segments are
// re-packed densely and zone maps recomputed from the survivors, and the
// row cache becomes exactly the kept slice.
func (st *colStore) compact(kept [][]any) {
	st.slots = nil
	st.n = 0
	st.resetAccessPaths()
	for _, row := range kept {
		st.appendVecs(row)
	}
	st.cache.Store(&kept)
}

// refreshZones recomputes exact zone bounds and null counts for the given
// (segment, column) pairs. UPDATE write-through only widens bounds (setVal →
// widenZone), so after a successful UPDATE the touched vectors' bounds can
// be arbitrarily loose — still sound for pruning, but they would also be
// serialized loose by a checkpoint and never tighten again. The DML paths
// call this once per statement over the touched pairs.
func (st *colStore) refreshZones(touched map[[2]int]struct{}) {
	for sc := range touched {
		seg := st.seg(sc[0])
		seg.vecs[sc[1]].recomputeZone(seg.n)
	}
}

// evictSeg swaps segment si for a metadata-only stub, dropping the data of
// every resident column (partially resident segments evict their remaining
// columns). The caller (the persistence layer) must guarantee the segment is
// durable and clean, and must hold the database's exclusive statement lock.
// Returns the number of columns whose data was dropped (0 if the segment was
// already fully evicted).
func (st *colStore) evictSeg(si int) int {
	s := st.slots[si].p.Load()
	dropped := 0
	for c := range s.vecs {
		if !s.vecs[c].stub {
			dropped++
		}
	}
	if dropped == 0 {
		return 0
	}
	stub := &segment{n: s.n, stub: true, vecs: make([]colVec, len(s.vecs))}
	for c := range s.vecs {
		v := &s.vecs[c]
		stub.vecs[c] = colVec{kind: v.kind, stub: true, nullCnt: v.nullCnt, minV: v.minV, maxV: v.maxV}
	}
	st.slots[si].p.Store(stub)
	return dropped
}

// residentBytes estimates the heap footprint of the resident segment data,
// the quantity the -mem-budget eviction policy bounds. Stub columns carry no
// data slices, so partially resident segments are accounted at column
// granularity for free.
func (st *colStore) residentBytes() int64 {
	var b int64
	for _, sl := range st.slots {
		s := sl.p.Load()
		for c := range s.vecs {
			b += s.vecs[c].memBytes()
		}
	}
	return b
}

func (v *colVec) memBytes() int64 {
	b := int64(len(v.nulls) * 8)
	switch v.kind {
	case vkInt:
		b += int64(len(v.ints) * 8)
	case vkFloat:
		b += int64(len(v.floats) * 8)
	case vkStr:
		for _, s := range v.strs {
			b += int64(len(s)) + 16
		}
	case vkBool:
		b += int64(len(v.bools))
	case vkAny:
		b += int64(len(v.anys) * 16)
	}
	return b
}
