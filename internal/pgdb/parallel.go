package pgdb

import (
	"fmt"
	"sync"

	"hyperq/internal/pgdb/sqlparse"
)

// parallelMinRows is the input size below which a parallel scan is not worth
// the goroutine fan-out; small inputs run the sequential loop.
const parallelMinRows = 4096

// wherePred compiles a join/DML predicate once and returns a per-row keep
// test with 3VL semantics (only TRUE keeps). In interpreted mode it defers
// to rowMatches; both paths poll the statement context per row batch.
func (s *Session) wherePred(e sqlparse.Expr, schema []colBinding) func(row []any) (bool, error) {
	if s.interpretedMode() || e == nil {
		return func(row []any) (bool, error) { return s.rowMatches(e, schema, row) }
	}
	pred := compileExpr(e, schema).fn
	ec := &evalCtx{s: s, rowIdx: -1}
	return func(row []any) (bool, error) {
		if err := s.tick(); err != nil {
			return false, err
		}
		v, err := pred(ec, row)
		if err != nil {
			return false, err
		}
		b, ok := v.(bool)
		return ok && b, nil
	}
}

// filterRows is the compiled WHERE operator: the predicate compiles once,
// the keep buffer is preallocated to the input size, and large scans with a
// pure predicate fan out across the database's configured parallelism.
func (s *Session) filterRows(where sqlparse.Expr, schema []colBinding, rows [][]any) ([][]any, error) {
	pred := compileExpr(where, schema)
	if workers := s.db.Parallelism(); pred.pure && workers > 1 && len(rows) >= parallelMinRows {
		return s.filterParallel(pred.fn, rows, workers)
	}
	ec := &evalCtx{s: s, rowIdx: -1}
	kept := make([][]any, 0, len(rows))
	for _, row := range rows {
		if err := s.tick(); err != nil {
			return nil, err
		}
		v, err := pred.fn(ec, row)
		if err != nil {
			return nil, err
		}
		if b, ok := v.(bool); ok && b {
			kept = append(kept, row)
		}
	}
	return kept, nil
}

// filterParallel partitions the input across workers, each filling a private
// range of a shared keep-bitmap — no synchronization on the hot path. Only
// pure predicates reach here (they touch no session state), so the scan is
// race-free; workers poll the statement context directly at batch
// boundaries instead of the session tick counter. Errors are reported
// deterministically: the error of the lowest failing row index wins, which
// is the row the sequential scan would have failed on.
func (s *Session) filterParallel(pred exprFn, rows [][]any, workers int) ([][]any, error) {
	n := len(rows)
	keep := make([]bool, n)
	// Chunks round up to segment multiples so each worker's row range maps to
	// whole segments of the columnar store the rows were materialized from.
	chunk := (n + workers - 1) / workers
	if rem := chunk % segSize; rem != 0 {
		chunk += segSize - rem
	}
	errs := make([]error, workers)
	errRows := make([]int, workers)
	ctx := s.ctx
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			errRows[w] = -1
			continue
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errRows[w] = -1
			for i := lo; i < hi; i++ {
				if ctx != nil && (i-lo)%ctxCheckRows == ctxCheckRows-1 {
					if err := ctx.Err(); err != nil {
						errs[w] = fmt.Errorf("pgdb: query aborted: %w", err)
						errRows[w] = i
						return
					}
				}
				v, err := pred(nil, rows[i])
				if err != nil {
					errs[w] = err
					errRows[w] = i
					return
				}
				if b, ok := v.(bool); ok && b {
					keep[i] = true
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	firstErr := -1
	for w := range errs {
		if errs[w] != nil && (firstErr < 0 || errRows[w] < errRows[firstErr]) {
			firstErr = w
		}
	}
	if firstErr >= 0 {
		return nil, errs[firstErr]
	}
	cnt := 0
	for _, k := range keep {
		if k {
			cnt++
		}
	}
	kept := make([][]any, 0, cnt)
	for i, k := range keep {
		if k {
			kept = append(kept, rows[i])
		}
	}
	return kept, nil
}

// evalVecPred runs a lowered predicate over every segment of a column store,
// returning the global selection bitmap. Large multi-segment stores fan out
// across the configured parallelism; segment windows of the bitmap are
// disjoint word ranges, so workers never share a word.
//
// Evicted (stub) segments answer from metadata when the predicate's
// stubSeg verdict is decisive — a zone-pruned cold segment costs no I/O —
// and fault their data in only when a per-row scan is unavoidable.
func (s *Session) evalVecPred(p vecPred, st *colStore) ([]uint64, error) {
	n := st.numRows()
	out := make([]uint64, (n+63)/64)
	// access-path pre-pass: a predicate over sorted columns resolves to one
	// contiguous range by binary search, and a top-level equality or IN on an
	// indexed column reads its postings — either way no segment is scanned
	var idxErr error
	var idxDone bool
	func() {
		defer trapFault(&idxErr)
		idxDone = s.tryIndexPred(p, st, out)
	}()
	if idxErr != nil {
		return nil, idxErr
	}
	if idxDone {
		return out, nil
	}
	pcols := predCols(p)
	if workers := s.db.Parallelism(); workers > 1 && n >= parallelMinRows && st.numSegs() > 1 {
		if err := s.evalVecPredParallel(p, pcols, st, out, workers); err != nil {
			return nil, err
		}
		return out, nil
	}
	ctx := s.ctx
	var err error
	func() {
		defer trapFault(&err)
		for si := 0; si < st.numSegs(); si++ {
			if ctx != nil {
				if cerr := ctx.Err(); cerr != nil {
					err = fmt.Errorf("pgdb: query aborted: %w", cerr)
					return
				}
			}
			evalPredSeg(p, pcols, st, si, out)
		}
	}()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// evalPredSeg evaluates the predicate over one segment's bitmap window,
// trying the metadata-only stub path first so pruned cold segments stay on
// disk; when a per-row scan is unavoidable it faults in only the predicate's
// referenced columns (pcols).
func evalPredSeg(p vecPred, pcols []int, st *colStore, si int, out []uint64) {
	seg := st.peekSeg(si)
	base := si * segWords
	window := out[base : base+(seg.n+63)/64]
	if seg.stub {
		if done := p.stubSeg(seg, window); done {
			return
		}
		seg = st.segCols(si, pcols)
	}
	p.evalSeg(seg, window)
}

// evalVecPredParallel assigns segments round-robin to workers. Lowered
// kernels cannot error, so the failures are statement cancellation — every
// worker reports the same error class, no ordering needed — and cold-
// segment reload faults, which the workers trap locally (a panic would
// escape the goroutine and kill the process). Workers fault distinct
// segments' columns concurrently: fault serialization is per (segment,
// column), so a cold parallel scan keeps the I/O paths of different
// partitions independent.
func (s *Session) evalVecPredParallel(p vecPred, pcols []int, st *colStore, out []uint64, workers int) error {
	ctx := s.ctx
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer trapFault(&errs[w])
			for si := w; si < st.numSegs(); si += workers {
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						errs[w] = fmt.Errorf("pgdb: query aborted: %w", err)
						return
					}
				}
				evalPredSeg(p, pcols, st, si, out)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
