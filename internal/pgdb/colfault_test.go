package pgdb

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// recordingLoader is a fake SegLoader over an in-memory dataset that logs
// every (segment, requested columns) pair, so tests can assert exactly what
// the engine faulted.
type recordingLoader struct {
	mu    sync.Mutex
	calls []struct {
		si   int
		cols []int
	}
	data [][][]int64 // [segment][column][row]
}

func (r *recordingLoader) loader() SegLoader {
	return func(si int, cols []int) (SegmentData, error) {
		r.mu.Lock()
		r.calls = append(r.calls, struct {
			si   int
			cols []int
		}{si, append([]int(nil), cols...)})
		r.mu.Unlock()
		seg := r.data[si]
		sd := SegmentData{N: len(seg[0]), Vecs: make([]VecData, len(seg))}
		req := cols
		if req == nil {
			req = make([]int, len(seg))
			for c := range req {
				req[c] = c
			}
		}
		for _, c := range req {
			vals := seg[c]
			minV, maxV := vals[0], vals[0]
			for _, v := range vals {
				if v < minV {
					minV = v
				}
				if v > maxV {
					maxV = v
				}
			}
			sd.Vecs[c] = VecData{
				Kind: uint8(vkInt), Ints: vals,
				Nulls: make([]uint64, (len(vals)+63)/64),
				Min:   minV, Max: maxV,
			}
		}
		return sd, nil
	}
}

// lazyIntTable registers an nSegs × nCols all-stub table where cell (seg,
// col, row) = base pattern values, and returns the recording loader.
func lazyIntTable(t *testing.T, db *DB, name string, nSegs, nCols int) *recordingLoader {
	t.Helper()
	rl := &recordingLoader{}
	cols := make([]Column, nCols)
	segs := make([]SegMeta, nSegs)
	for si := 0; si < nSegs; si++ {
		seg := make([][]int64, nCols)
		vms := make([]VecMeta, nCols)
		for c := 0; c < nCols; c++ {
			vals := make([]int64, segSize)
			for i := range vals {
				// column c's values ≡ c mod nCols: distinguishable, and every
				// segment's zone range overlaps any small constant.
				vals[i] = int64(i*nCols + c)
			}
			seg[c] = vals
			vms[c] = VecMeta{Kind: uint8(vkInt), Min: vals[0], Max: vals[len(vals)-1]}
		}
		rl.data = append(rl.data, seg)
		segs[si] = SegMeta{N: segSize, Vecs: vms}
	}
	for c := range cols {
		cols[c] = Column{Name: fmt.Sprintf("c%d", c), Type: "bigint"}
	}
	db.RestoreTableLazy(name, cols, segs, rl.loader())
	return rl
}

// requestedCols flattens the loader log into the distinct column sets seen.
func (r *recordingLoader) requested() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]int{}
	for _, call := range r.calls {
		out[fmt.Sprint(call.cols)]++
	}
	return out
}

// TestFaultRequestsOnlyReferencedColumns: a vectorized pruned aggregate over
// a 6-column lazy table asks the loader for exactly the predicate column
// and the aggregated column — never the other four.
func TestFaultRequestsOnlyReferencedColumns(t *testing.T) {
	db := NewDB()
	db.SetExecMode(ExecVectorized)
	rl := lazyIntTable(t, db, "t", 3, 6)
	s := db.NewSession()

	res, err := s.Exec("SELECT sum(c2) FROM t WHERE c1 > 100")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	_ = res
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if len(rl.calls) == 0 {
		t.Fatalf("no loader calls")
	}
	for _, call := range rl.calls {
		if call.cols == nil {
			t.Fatalf("segment %d faulted ALL columns for a 2-column query", call.si)
		}
		for _, c := range call.cols {
			if c != 1 && c != 2 {
				t.Fatalf("segment %d faulted unreferenced column %d (call %v)", call.si, c, call.cols)
			}
		}
	}
}

// TestFaultFallbackRequestsAllColumns: a full-width scan (SELECT *) on a
// stub table ends up requesting every column of every segment, whether the
// engine spells that as nil (all) or as the explicit complete set.
func TestFaultFallbackRequestsAllColumns(t *testing.T) {
	db := NewDB()
	rl := lazyIntTable(t, db, "t", 2, 4)
	s := db.NewSession()
	if _, err := s.Exec("SELECT * FROM t"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	got := map[int]map[int]bool{} // segment → columns requested
	for _, call := range rl.calls {
		cols := call.cols
		if cols == nil {
			cols = []int{0, 1, 2, 3}
		}
		if got[call.si] == nil {
			got[call.si] = map[int]bool{}
		}
		for _, c := range cols {
			got[call.si][c] = true
		}
	}
	if len(got) != 2 {
		t.Fatalf("full scan faulted %d of 2 segments", len(got))
	}
	for si, cols := range got {
		if len(cols) != 4 {
			t.Fatalf("segment %d: full scan materialized %d of 4 columns", si, len(cols))
		}
	}
}

// TestConcurrentDisjointColumnFaults: goroutines faulting different columns
// of the same segment must all see their own column's data — the
// copy-on-write install must compose, not clobber.
func TestConcurrentDisjointColumnFaults(t *testing.T) {
	db := NewDB()
	nCols := 8
	rl := lazyIntTable(t, db, "t", 1, nCols)
	_ = rl
	tbl := db.tables["t"]

	var wg sync.WaitGroup
	errs := make([]error, nCols)
	for c := 0; c < nCols; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer trapFault(&errs[c])
			for i := 0; i < segSize; i += 777 {
				got := tbl.store.cellAt(i, c)
				want := int64(i*nCols + c)
				if got != want {
					errs[c] = fmt.Errorf("cell (%d,%d) = %v, want %d", i, c, got, want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("column %d: %v", c, err)
		}
	}
	// After all faults the segment must be fully resident — no stub bit left.
	seg := tbl.store.peekSeg(0)
	if seg.stub {
		t.Fatalf("segment still marked stub after all columns faulted")
	}
}

// TestEvictionIsColumnGranular: evicting a partially resident segment
// reports only the resident columns dropped, and the refault reloads only
// what the next query needs.
func TestEvictionIsColumnGranular(t *testing.T) {
	db := NewDB()
	db.SetExecMode(ExecVectorized)
	rl := lazyIntTable(t, db, "t", 2, 5)
	s := db.NewSession()

	if _, err := s.Exec("SELECT sum(c3) FROM t WHERE c0 > 100"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	// Only c0 and c3 are resident in each of the 2 segments.
	var freed int64
	var ncols int
	db.Exclusive(func() {
		freed, ncols = db.EvictSegments("t", 0, 2)
	})
	if ncols != 4 {
		t.Fatalf("evicted %d column vectors, want 4 (2 cols × 2 segs)", ncols)
	}
	if freed == 0 {
		t.Fatalf("eviction reported zero bytes freed")
	}
	db.Exclusive(func() {
		if _, n2 := db.EvictSegments("t", 0, 2); n2 != 0 {
			t.Fatalf("second eviction dropped %d columns from stub segments", n2)
		}
	})

	before := len(rl.calls)
	if _, err := s.Exec("SELECT sum(c1) FROM t WHERE c1 > 100"); err != nil {
		t.Fatalf("refault: %v", err)
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	for _, call := range rl.calls[before:] {
		if !reflect.DeepEqual(call.cols, []int{1}) {
			t.Fatalf("refault requested %v, want [1]", call.cols)
		}
	}
}

// TestZoneSkippedSegmentsNeverFault: when zone metadata alone refutes the
// predicate for a segment, that segment's loader is never called.
func TestZoneSkippedSegmentsNeverFault(t *testing.T) {
	db := NewDB()
	db.SetExecMode(ExecVectorized)
	rl := lazyIntTable(t, db, "t", 4, 3)
	s := db.NewSession()

	// Values of c0 run 0·3+0 … within segment-sized windows; every segment
	// holds [c, (segSize-1)*nCols+c], so a negative constant is outside all
	// zones and the scan must answer without any loader call.
	res, err := s.Exec("SELECT count(*) FROM t WHERE c0 < 0")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.Rows[0][0].(int64) != 0 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if len(rl.calls) != 0 {
		t.Fatalf("zone-refuted scan faulted %d segments: %v", len(rl.calls), rl.requested())
	}
}
