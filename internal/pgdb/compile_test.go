package pgdb

import (
	"reflect"
	"runtime"
	"testing"

	"hyperq/internal/pgdb/sqlparse"
)

// execBothModes runs one statement on two identical databases, one per
// execution engine, and returns both outcomes.
func execBothModes(t *testing.T, setup []string, sql string) (comp, interp *Result, compErr, interpErr error) {
	t.Helper()
	run := func(mode ExecMode) (*Result, error) {
		db := NewDB()
		db.SetExecMode(mode)
		s := db.NewSession()
		for _, stmt := range setup {
			if _, err := s.Exec(stmt); err != nil {
				t.Fatalf("setup %q under mode %d: %v", stmt, mode, err)
			}
		}
		return s.Exec(sql)
	}
	comp, compErr = run(ExecCompiled)
	interp, interpErr = run(ExecInterpreted)
	return
}

// requireModeParity asserts the compiled and interpreted engines produce
// identical results (or identical errors) for one statement.
func requireModeParity(t *testing.T, setup []string, sql string) *Result {
	t.Helper()
	comp, interp, compErr, interpErr := execBothModes(t, setup, sql)
	if (compErr == nil) != (interpErr == nil) {
		t.Fatalf("%s:\n  compiled err:    %v\n  interpreted err: %v", sql, compErr, interpErr)
	}
	if compErr != nil {
		if compErr.Error() != interpErr.Error() {
			t.Fatalf("%s: error text diverges:\n  compiled:    %v\n  interpreted: %v", sql, compErr, interpErr)
		}
		return nil
	}
	if !reflect.DeepEqual(comp.Cols, interp.Cols) {
		t.Fatalf("%s: column divergence:\n  compiled:    %+v\n  interpreted: %+v", sql, comp.Cols, interp.Cols)
	}
	if len(comp.Rows) != len(interp.Rows) {
		t.Fatalf("%s: row count %d vs %d", sql, len(comp.Rows), len(interp.Rows))
	}
	for i := range comp.Rows {
		if !reflect.DeepEqual(comp.Rows[i], interp.Rows[i]) {
			t.Fatalf("%s: row %d divergence:\n  compiled:    %v\n  interpreted: %v", sql, i, comp.Rows[i], interp.Rows[i])
		}
	}
	return comp
}

var paritySetup = []string{
	"CREATE TABLE t (sym varchar, price double precision, size bigint, flag boolean)",
	`INSERT INTO t VALUES
		('GOOG', 100.5, 10, true),
		('IBM',  NULL,  20, false),
		('GOOG', 101.5, NULL, NULL),
		(NULL,   150.0, 40, true),
		('MSFT', 150.0, 10, false)`,
}

// TestCompiledNullSafeComparisons covers the null-safe forms the Xformer
// emits (IS [NOT] DISTINCT FROM) plus plain 3VL comparisons, on both
// engines.
func TestCompiledNullSafeComparisons(t *testing.T) {
	queries := []string{
		"SELECT * FROM t WHERE sym IS NOT DISTINCT FROM NULL",
		"SELECT * FROM t WHERE price IS DISTINCT FROM 150.0",
		"SELECT * FROM t WHERE price IS NOT DISTINCT FROM NULL",
		"SELECT * FROM t WHERE sym = NULL",
		"SELECT sym, price IS NULL, size IS NOT NULL FROM t",
		"SELECT * FROM t WHERE NOT (price > 100.0)",
		"SELECT * FROM t WHERE price > 100.0 AND size < 30",
		"SELECT * FROM t WHERE price > 100.0 OR flag",
		"SELECT * FROM t WHERE size IN (10, NULL, 40)",
		"SELECT * FROM t WHERE size NOT IN (10, 20)",
		"SELECT * FROM t WHERE price BETWEEN 100.0 AND 150.0",
	}
	for _, q := range queries {
		requireModeParity(t, paritySetup, q)
	}
	// null-safe equality keeps the NULL-keyed row; plain equality drops it
	res := requireModeParity(t, paritySetup, "SELECT count(*) FROM t WHERE sym IS NOT DISTINCT FROM NULL")
	if res.Rows[0][0].(int64) != 1 {
		t.Fatalf("IS NOT DISTINCT FROM NULL matched %v rows", res.Rows[0][0])
	}
	res = requireModeParity(t, paritySetup, "SELECT count(*) FROM t WHERE sym = NULL")
	if res.Rows[0][0].(int64) != 0 {
		t.Fatalf("= NULL matched %v rows", res.Rows[0][0])
	}
}

// TestCompiledConstantFolding checks that row-independent expressions fold
// at compile time without changing semantics — in particular that erroring
// constants stay lazy: over an empty input the error must not surface, over
// a non-empty input it must.
func TestCompiledConstantFolding(t *testing.T) {
	c := compileExpr(parseExprOrDie(t, "1 + 2 * 3"), nil)
	if !c.konst || !c.pure {
		t.Fatalf("1+2*3 did not compile constant: %+v", c)
	}
	v, err := c.fn(nil, nil)
	if err != nil || v.(int64) != 7 {
		t.Fatalf("folded value = %v, %v", v, err)
	}
	// a folding failure must stay lazy, not raise at compile time: the
	// closure still errors per evaluation instead of holding a value
	c = compileExpr(parseExprOrDie(t, "1 / 0"), nil)
	if _, err := c.fn(nil, nil); err == nil {
		t.Fatalf("1/0 folded to a value instead of staying lazy")
	}
	setup := []string{"CREATE TABLE e (a bigint)"}
	res := requireModeParity(t, setup, "SELECT a / 0 FROM e")
	if len(res.Rows) != 0 {
		t.Fatalf("division over empty table returned rows")
	}
	requireModeParity(t, setup, "SELECT 1 / 0 FROM e") // no error: zero rows
	withRow := append(setup, "INSERT INTO e VALUES (1)")
	_, _, compErr, _ := execBothModes(t, withRow, "SELECT 1 / 0 FROM e")
	if compErr == nil {
		t.Fatalf("1/0 over a row did not error")
	}
	requireModeParity(t, withRow, "SELECT 1 / 0 FROM e") // identical error both engines
}

// TestCompiledTypeWidening verifies the static inference plus refineTypes
// promotion behaves identically across engines: integer columns that hold
// float values widen to double precision.
func TestCompiledTypeWidening(t *testing.T) {
	setup := []string{
		"CREATE TABLE w (i bigint, f double precision)",
		"INSERT INTO w VALUES (1, 0.5), (2, 1.5)",
	}
	cases := []struct {
		sql     string
		wantTyp string
	}{
		{"SELECT i + 1 FROM w", "bigint"},
		{"SELECT i + 0.5 FROM w", "double precision"},
		{"SELECT i / 2 FROM w", "double precision"}, // "/" is statically double
		{"SELECT f * i FROM w", "double precision"},
		{"SELECT least(i, 0.5) FROM w", "double precision"},
		{"SELECT greatest(i, f) FROM w", "double precision"},
		{"SELECT coalesce(NULL, f, i) FROM w", "double precision"},
		{"SELECT sum(i) FROM w", "bigint"},
		{"SELECT avg(i) FROM w", "double precision"},
	}
	for _, c := range cases {
		res := requireModeParity(t, setup, c.sql)
		if res.Cols[0].Type != c.wantTyp {
			t.Errorf("%s: type = %q, want %q", c.sql, res.Cols[0].Type, c.wantTyp)
		}
	}
}

// TestHashJoinNestedLoopParity compares the hash-join path (col = col /
// IS NOT DISTINCT FROM conjuncts) against the nested-loop fallback on the
// same data, including duplicate keys and NULL join keys, for inner and
// left joins — on both engines.
func TestHashJoinNestedLoopParity(t *testing.T) {
	setup := []string{
		"CREATE TABLE l (k bigint, lv varchar)",
		"CREATE TABLE r (k bigint, rv varchar)",
		// duplicate keys on both sides, NULL keys on both sides
		`INSERT INTO l VALUES (1, 'a'), (1, 'b'), (2, 'c'), (NULL, 'd'), (4, 'e')`,
		`INSERT INTO r VALUES (1, 'x'), (1, 'y'), (3, 'z'), (NULL, 'w'), (NULL, 'v')`,
	}
	// l.k + 0 = r.k is not col=col, so extractHashKeys rejects it and the
	// nested loop runs; the result must match the hash path of l.k = r.k
	pairs := []struct{ hash, nested string }{
		{
			"SELECT lv, rv FROM l JOIN r ON l.k = r.k",
			"SELECT lv, rv FROM l JOIN r ON l.k + 0 = r.k",
		},
		{
			"SELECT lv, rv FROM l LEFT JOIN r ON l.k = r.k",
			"SELECT lv, rv FROM l LEFT JOIN r ON l.k + 0 = r.k",
		},
		{
			"SELECT lv, rv FROM l JOIN r ON l.k IS NOT DISTINCT FROM r.k",
			"SELECT lv, rv FROM l JOIN r ON (l.k IS NOT DISTINCT FROM r.k) OR FALSE",
		},
		{
			"SELECT lv, rv FROM l LEFT JOIN r ON l.k IS NOT DISTINCT FROM r.k",
			"SELECT lv, rv FROM l LEFT JOIN r ON (l.k IS NOT DISTINCT FROM r.k) OR FALSE",
		},
	}
	for _, p := range pairs {
		hres := requireModeParity(t, setup, p.hash)
		nres := requireModeParity(t, setup, p.nested)
		if !reflect.DeepEqual(hres.Rows, nres.Rows) {
			t.Errorf("hash vs nested loop divergence:\n  %s -> %v\n  %s -> %v",
				p.hash, hres.Rows, p.nested, nres.Rows)
		}
	}
	// NULL keys never match under plain equality but do under null-safe
	nullSafe := requireModeParity(t, setup,
		"SELECT count(*) FROM l JOIN r ON l.k IS NOT DISTINCT FROM r.k")
	plain := requireModeParity(t, setup,
		"SELECT count(*) FROM l JOIN r ON l.k = r.k")
	// 1x1 dups: 2*2=4 matches; null-safe adds 1 left NULL x 2 right NULLs
	if plain.Rows[0][0].(int64) != 4 || nullSafe.Rows[0][0].(int64) != 6 {
		t.Errorf("join counts: plain=%v nullSafe=%v, want 4 and 6",
			plain.Rows[0][0], nullSafe.Rows[0][0])
	}
}

// TestCompiledEngineBattery runs a battery of query shapes through both
// engines and requires identical results — the DB-level complement of the
// qdiff corpus replay in internal/sidebyside.
func TestCompiledEngineBattery(t *testing.T) {
	queries := []string{
		"SELECT sym, price, size FROM t ORDER BY sym, price",
		"SELECT DISTINCT sym FROM t",
		"SELECT sym, count(*), sum(size), avg(price), min(price), max(price) FROM t GROUP BY sym",
		"SELECT sym FROM t GROUP BY sym HAVING count(*) > 1",
		"SELECT coalesce(sum(size), 0) FROM t WHERE price > 1000.0",
		"SELECT CASE WHEN price > 120.0 THEN 'hi' WHEN price > 100.0 THEN 'mid' ELSE 'lo' END FROM t",
		"SELECT CASE sym WHEN 'GOOG' THEN 1 WHEN 'IBM' THEN 2 ELSE 0 END FROM t",
		"SELECT upper(sym), length(sym), substring(sym, 1, 2) FROM t",
		"SELECT CAST(price AS bigint), CAST(size AS double precision) FROM t",
		"SELECT sym || '_x' FROM t",
		"SELECT * FROM t WHERE sym LIKE 'G%'",
		"SELECT price, row_number() OVER (PARTITION BY sym ORDER BY price) FROM t",
		"SELECT abs(0.0 - price), floor(price), round(price) FROM t",
		"SELECT sum(price * size) / nullif(sum(size), 0) FROM t",
		"SELECT count(DISTINCT sym) FROM t",
		"SELECT stddev(price), variance(price), median(price) FROM t",
		"SELECT first(price), last(price) FROM t",
		"SELECT bool_and(flag), bool_or(flag) FROM t",
		"SELECT string_agg(sym, ',') FROM t",
		"SELECT (SELECT max(price) FROM t) - price FROM t",
		"SELECT sym, sum(size) FROM t GROUP BY sym ORDER BY 2 DESC LIMIT 2",
		"SELECT * FROM t WHERE price > 100.0 UNION ALL SELECT * FROM t WHERE price <= 100.0",
		"SELECT CASE WHEN count(*) > 0 THEN sum(size) ELSE 0 END FROM t",
		"SELECT sym FROM t GROUP BY sym HAVING sum(size) IS NOT NULL",
		"SELECT -price, NOT flag FROM t",
	}
	for _, q := range queries {
		requireModeParity(t, paritySetup, q)
	}
}

// TestCompiledDMLParity exercises the compiled UPDATE/DELETE predicate and
// SET expression paths.
func TestCompiledDMLParity(t *testing.T) {
	setup := append(append([]string{}, paritySetup...),
		"UPDATE t SET size = size * 2 WHERE price > 100.0",
		"DELETE FROM t WHERE size IS NULL",
	)
	res := requireModeParity(t, setup, "SELECT sym, price, size FROM t ORDER BY sym, size")
	if len(res.Rows) != 4 {
		t.Fatalf("rows after DML = %d, want 4", len(res.Rows))
	}
}

// TestParallelFilterMatchesSequential runs the same large filter query with
// parallelism off and on; results must be identical and in input order.
func TestParallelFilterMatchesSequential(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8)) // un-clamp on 1-CPU machines
	const n = 20000
	build := func(workers int) *Result {
		db := NewDB()
		db.SetParallelism(workers)
		s := db.NewSession()
		mustExec(t, s, "CREATE TABLE big (id bigint, v double precision)")
		rows := make([][]any, n)
		for i := range rows {
			rows[i] = []any{int64(i), float64(i%997) / 10}
		}
		if err := db.InsertRows("big", rows); err != nil {
			t.Fatal(err)
		}
		return mustExec(t, s, "SELECT id FROM big WHERE v > 42.0 AND id % 3 = 0")
	}
	seq := build(1)
	par := build(8)
	if len(seq.Rows) == 0 {
		t.Fatal("filter selected no rows; test is vacuous")
	}
	if !reflect.DeepEqual(seq.Rows, par.Rows) {
		t.Fatalf("parallel filter diverged: %d vs %d rows", len(seq.Rows), len(par.Rows))
	}
}

// TestParallelFilterErrorDeterminism: the parallel scan must surface the
// same error the sequential scan hits, i.e. the lowest failing row's error.
func TestParallelFilterErrorDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8)) // un-clamp on 1-CPU machines
	const n = 20000
	runErr := func(workers int) error {
		db := NewDB()
		db.SetParallelism(workers)
		s := db.NewSession()
		mustExec(t, s, "CREATE TABLE big (id bigint, d bigint)")
		rows := make([][]any, n)
		for i := range rows {
			d := int64(1)
			if i >= 7000 { // rows 7000.. all divide by zero
				d = 0
			}
			rows[i] = []any{int64(i), d}
		}
		if err := db.InsertRows("big", rows); err != nil {
			t.Fatal(err)
		}
		_, err := s.Exec("SELECT id FROM big WHERE id % d = 0")
		return err
	}
	seqErr := runErr(1)
	parErr := runErr(8)
	if seqErr == nil || parErr == nil {
		t.Fatalf("expected errors, got seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("error divergence:\n  sequential: %v\n  parallel:   %v", seqErr, parErr)
	}
}

// TestSetParallelismClamps pins the clamping contract.
func TestSetParallelismClamps(t *testing.T) {
	db := NewDB()
	if db.Parallelism() != 1 {
		t.Fatalf("default parallelism = %d", db.Parallelism())
	}
	db.SetParallelism(0)
	if db.Parallelism() != 1 {
		t.Fatalf("parallelism after Set(0) = %d", db.Parallelism())
	}
	db.SetParallelism(1 << 20)
	if got := db.Parallelism(); got < 1 || got > 1<<20 {
		t.Fatalf("parallelism after huge Set = %d", got)
	}
}

// TestCompiledPurity pins which expression classes are safe for worker
// goroutines: subqueries and window lookups touch the session, so they must
// not be marked pure.
func TestCompiledPurity(t *testing.T) {
	schema := []colBinding{{name: "a", typ: "bigint"}}
	pure := []string{"a + 1", "a > 2 AND a < 10", "abs(a)", "a IN (1, 2, 3)",
		"CASE WHEN a > 0 THEN 'p' ELSE 'n' END", "a IS NOT DISTINCT FROM 3"}
	for _, src := range pure {
		if c := compileExpr(parseExprOrDie(t, src), schema); !c.pure {
			t.Errorf("%q compiled impure", src)
		}
	}
	impure := []string{"(SELECT 1)", "a + (SELECT 1)"}
	for _, src := range impure {
		if c := compileExpr(parseExprOrDie(t, src), schema); c.pure {
			t.Errorf("%q compiled pure; would race on session state", src)
		}
	}
}

// parseExprOrDie parses the first select item of SELECT <src>.
func parseExprOrDie(t *testing.T, src string) sqlparse.Expr {
	t.Helper()
	stmt, err := sqlparse.Parse("SELECT " + src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return stmt.(*sqlparse.SelectStmt).Items[0].Expr
}
