package binder

import (
	"context"

	"hyperq/internal/qlang/ast"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/xtra"
)

// aggVerbs maps Q aggregate verbs to their SQL counterparts (type given by
// deriveAggType).
var aggVerbs = map[string]string{
	"sum": "sum", "avg": "avg", "min": "min", "max": "max",
	"count": "count", "first": "first", "last": "last",
	"med": "median", "dev": "stddev_pop", "var": "var_pop",
	"wavg": "wavg", "wsum": "wsum",
}

// scalarVerbs are monadic Q verbs with direct SQL scalar equivalents.
var scalarVerbs = map[string]bool{
	"abs": true, "neg": true, "sqrt": true, "exp": true, "log": true,
	"floor": true, "ceiling": true, "signum": true, "not": true,
	"null": true, "lower": true, "upper": true,
}

// bindScalar binds a scalar Q expression. in supplies the available input
// columns (nil outside a table context). Property derivation follows
// §3.2.2: each scalar derives its output type; property checks reject
// ill-typed applications.
func (b *Binder) bindScalar(ctx context.Context, n ast.Node, in *xtra.Props) (xtra.Scalar, error) {
	switch x := n.(type) {
	case *ast.Lit:
		return &xtra.ConstExpr{Val: x.Val}, nil
	case *ast.Var:
		// column first (paper: template expressions see table columns)
		if in != nil {
			if c, ok := in.Col(x.Name); ok {
				return &xtra.ColRef{Name: c.Name, Typ: c.QType}, nil
			}
		}
		def, err := b.Scopes.Lookup(ctx, x.Name)
		if err != nil {
			return nil, err
		}
		if def == nil {
			// verbose diagnostics on purpose: one of the places Hyper-Q
			// improves on kdb+'s terse 'name errors (paper §5)
			if in != nil {
				return nil, berr(x.Name, "%q is neither a column of the input (%v) nor a defined variable", x.Name, in.ColNames())
			}
			return nil, berr(x.Name, "%q is not a defined variable", x.Name)
		}
		switch def.Kind {
		case KindScalar:
			return &xtra.ConstExpr{Val: def.Value}, nil
		default:
			return nil, berr("type", "%s is not a scalar in this context", x.Name)
		}
	case *ast.Monad:
		arg, err := b.bindScalar(ctx, x.X, in)
		if err != nil {
			return nil, err
		}
		return b.bindScalarOp(x.Op, []xtra.Scalar{arg})
	case *ast.Dyad:
		// right-to-left is irrelevant for pure scalars, but we bind right
		// first to surface errors in Q's evaluation order
		r, err := b.bindScalar(ctx, x.R, in)
		if err != nil {
			return nil, err
		}
		l, err := b.bindScalar(ctx, x.L, in)
		if err != nil {
			return nil, err
		}
		return b.bindScalarOp(x.Op, []xtra.Scalar{l, r})
	case *ast.Apply:
		v, ok := x.Fn.(*ast.Var)
		if !ok {
			return nil, berr("type", "cannot bind %s as a scalar", x.QString())
		}
		if v.Name == "$" && len(x.Args) == 3 {
			// cond -> CASE WHEN
			args := make([]xtra.Scalar, 3)
			for i, a := range x.Args {
				s, err := b.bindScalar(ctx, a, in)
				if err != nil {
					return nil, err
				}
				args[i] = s
			}
			return &xtra.FnApp{Op: "cond", Args: args, Typ: args[1].QType()}, nil
		}
		args := make([]xtra.Scalar, 0, len(x.Args))
		for _, a := range x.Args {
			if a == nil {
				return nil, berr("nyi", "projection in scalar context")
			}
			s, err := b.bindScalar(ctx, a, in)
			if err != nil {
				return nil, err
			}
			args = append(args, s)
		}
		return b.bindScalarOp(v.Name, args)
	case *ast.ListExpr:
		items := make([]xtra.Scalar, len(x.Items))
		for i, it := range x.Items {
			s, err := b.bindScalar(ctx, it, in)
			if err != nil {
				return nil, err
			}
			items[i] = s
		}
		return &xtra.ListExpr{Items: items}, nil
	default:
		return nil, berr("type", "cannot bind %s as a scalar", n.QString())
	}
}

// bindScalarOp maps a Q operator/verb application to an XTRA scalar with a
// derived type, performing the §3.2.2 property checks.
func (b *Binder) bindScalarOp(op string, args []xtra.Scalar) (xtra.Scalar, error) {
	// aggregates
	if sqlFn, isAgg := aggVerbs[op]; isAgg {
		switch len(args) {
		case 1:
			return &xtra.AggCall{Fn: sqlFn, Arg: args[0], Typ: deriveAggType(sqlFn, args[0])}, nil
		case 2: // wavg/wsum bind both operands
			if op == "wavg" || op == "wsum" {
				return &xtra.AggCall{
					Fn:  sqlFn,
					Arg: &xtra.FnApp{Op: "pair", Args: args, Typ: qval.KFloat},
					Typ: qval.KFloat,
				}, nil
			}
		}
		return nil, berr("rank", "%s takes 1 argument", op)
	}
	switch op {
	case "+", "-", "*", "%", "mod", "div", "xbar", "&", "|":
		if len(args) == 1 && op == "-" {
			return &xtra.FnApp{Op: "neg", Args: args, Typ: args[0].QType()}, nil
		}
		if len(args) != 2 {
			return nil, berr("rank", "%s takes 2 arguments", op)
		}
		lt, rt := args[0].QType(), args[1].QType()
		if !numericOrTemporal(lt) || !numericOrTemporal(rt) {
			if !(op == "&" || op == "|") || lt != qval.KBool || rt != qval.KBool {
				return nil, berr("type", "%s on %s and %s", op, qval.TypeName(lt), qval.TypeName(rt))
			}
		}
		return &xtra.FnApp{Op: op, Args: args, Typ: deriveArithType(op, lt, rt)}, nil
	case "=", "<>", "<", ">", "<=", ">=", "~":
		if len(args) != 2 {
			return nil, berr("rank", "%s takes 2 arguments", op)
		}
		return &xtra.FnApp{Op: op, Args: args, Typ: qval.KBool}, nil
	case "in", "within", "like":
		if len(args) != 2 {
			return nil, berr("rank", "%s takes 2 arguments", op)
		}
		return &xtra.FnApp{Op: op, Args: args, Typ: qval.KBool}, nil
	case "and", "or", "not":
		for _, a := range args {
			if a.QType() != qval.KBool {
				return nil, berr("type", "%s on %s", op, qval.TypeName(a.QType()))
			}
		}
		return &xtra.FnApp{Op: op, Args: args, Typ: qval.KBool}, nil
	case "$":
		if len(args) == 2 {
			// cast: `type$x
			c, ok := args[0].(*xtra.ConstExpr)
			if !ok {
				return nil, berr("type", "cast target must be a symbol literal")
			}
			sym, ok := c.Val.(qval.Symbol)
			if !ok {
				return nil, berr("type", "cast target must be a symbol")
			}
			t := typeNamed(string(sym))
			if t == 0 {
				return nil, berr("type", "unknown cast target %s", sym)
			}
			return &xtra.FnApp{Op: "cast", Args: []xtra.Scalar{args[1], &xtra.ConstExpr{Val: sym}}, Typ: t}, nil
		}
		return nil, berr("rank", "$ takes 2 arguments")
	case "^":
		if len(args) != 2 {
			return nil, berr("rank", "^ takes 2 arguments")
		}
		return &xtra.FnApp{Op: "fill", Args: args, Typ: args[1].QType()}, nil
	case ",":
		return &xtra.ListExpr{Items: args}, nil
	}
	if scalarVerbs[op] && len(args) == 1 {
		typ := args[0].QType()
		switch op {
		case "sqrt", "exp", "log":
			typ = qval.KFloat
		case "not", "null":
			typ = qval.KBool
		}
		return &xtra.FnApp{Op: op, Args: args, Typ: typ}, nil
	}
	return nil, berr("nyi", "no SQL mapping for %s", op)
}

func numericOrTemporal(t qval.Type) bool {
	return qval.IsNumeric(t) || qval.IsTemporal(t)
}

func deriveArithType(op string, lt, rt qval.Type) qval.Type {
	if op == "%" { // q divide is float
		return qval.KFloat
	}
	if qval.IsTemporal(lt) {
		return lt
	}
	if qval.IsTemporal(rt) {
		return rt
	}
	rank := func(t qval.Type) int {
		switch t {
		case qval.KBool:
			return 1
		case qval.KByte:
			return 2
		case qval.KShort:
			return 3
		case qval.KInt:
			return 4
		case qval.KLong:
			return 5
		case qval.KReal:
			return 6
		default:
			return 7
		}
	}
	if rank(lt) >= 6 || rank(rt) >= 6 {
		return qval.KFloat
	}
	return qval.KLong
}

func deriveAggType(fn string, arg xtra.Scalar) qval.Type {
	switch fn {
	case "count":
		return qval.KLong
	case "avg", "median", "stddev", "variance", "wavg", "wsum":
		return qval.KFloat
	case "sum":
		// q's sum promotes: integral inputs widen to long, real stays
		// real-family, float stays float, temporal keeps its type
		if arg == nil {
			return qval.KLong
		}
		t := arg.QType()
		if t < 0 {
			t = -t
		}
		switch {
		case t == qval.KReal || t == qval.KFloat:
			return qval.KFloat
		case qval.IsTemporal(t):
			return t
		default:
			return qval.KLong
		}
	default:
		if arg != nil {
			return arg.QType()
		}
		return qval.KLong
	}
}

func typeNamed(s string) qval.Type {
	switch s {
	case "boolean":
		return qval.KBool
	case "short":
		return qval.KShort
	case "int":
		return qval.KInt
	case "long":
		return qval.KLong
	case "real":
		return qval.KReal
	case "float":
		return qval.KFloat
	case "symbol":
		return qval.KSymbol
	case "date":
		return qval.KDate
	case "time":
		return qval.KTime
	case "timestamp":
		return qval.KTimestamp
	default:
		return 0
	}
}
