package binder

import (
	"context"
	"strings"
	"testing"

	"hyperq/internal/mdi"
	"hyperq/internal/qlang/parse"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/xtra"
)

// fakeCatalog serves the MDI with a canned schema.
type fakeCatalog struct {
	tables map[string][][2]string // name -> (col, sqltype)
	calls  int
}

func (f *fakeCatalog) QueryCatalog(_ context.Context, sql string) ([][]string, error) {
	f.calls++
	for name, cols := range f.tables {
		if strings.Contains(sql, "'"+name+"'") {
			out := make([][]string, len(cols))
			for i, c := range cols {
				out[i] = []string{c[0], c[1]}
			}
			return out, nil
		}
	}
	return nil, nil
}

func testScopes() (*Scopes, *fakeCatalog) {
	cat := &fakeCatalog{tables: map[string][][2]string{
		"trades": {
			{"ordcol", "bigint"}, {"Symbol", "varchar"}, {"Time", "time"},
			{"Price", "double precision"}, {"Size", "bigint"},
		},
		"quotes": {
			{"ordcol", "bigint"}, {"Symbol", "varchar"}, {"Time", "time"},
			{"Bid", "double precision"}, {"Ask", "double precision"},
		},
	}}
	m := mdi.New(cat)
	return NewScopes(NewServerStore(), m), cat
}

func bindQ(t *testing.T, b *Binder, src string) *Bound {
	t.Helper()
	n, err := parse.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	bound, err := b.BindStatement(context.Background(), n)
	if err != nil {
		t.Fatalf("bind %q: %v", src, err)
	}
	return bound
}

func TestBindSelectToProjectOverFilter(t *testing.T) {
	scopes, _ := testScopes()
	b := New(scopes)
	bound := bindQ(t, b, "select Price from trades where Symbol=`GOOG")
	p, ok := bound.Rel.(*xtra.Project)
	if !ok {
		t.Fatalf("root = %T", bound.Rel)
	}
	f, ok := p.Input.(*xtra.Filter)
	if !ok {
		t.Fatalf("project input = %T", p.Input)
	}
	if _, ok := f.Input.(*xtra.Get); !ok {
		t.Fatalf("filter input = %T", f.Input)
	}
	if _, exists := p.P.Col("Price"); !exists {
		t.Fatalf("project cols = %v", p.P.ColNames())
	}
}

func TestBindVarToGetWithDerivedProps(t *testing.T) {
	// Figure 2: q_var(trades) binds to xtra_get(trades) with metadata props
	scopes, _ := testScopes()
	b := New(scopes)
	bound := bindQ(t, b, "select from trades")
	var get *xtra.Get
	xtra.Walk(bound.Rel, func(n xtra.Node) bool {
		if g, ok := n.(*xtra.Get); ok {
			get = g
		}
		return true
	})
	if get == nil || get.Table != "trades" {
		t.Fatalf("get = %v", get)
	}
	c, ok := get.P.Col("Price")
	if !ok || c.QType != qval.KFloat {
		t.Fatalf("Price prop = %v", c)
	}
	if get.P.OrderCol != xtra.OrdCol {
		t.Fatalf("order col = %q", get.P.OrderCol)
	}
}

func TestBindAjToAsOfJoin(t *testing.T) {
	// Figure 2: aj binds to a left outer join with a window on the right
	scopes, _ := testScopes()
	b := New(scopes)
	bound := bindQ(t, b, "aj[`Symbol`Time; trades; quotes]")
	j, ok := bound.Rel.(*xtra.AsOfJoin)
	if !ok {
		t.Fatalf("root = %T", bound.Rel)
	}
	if len(j.EqCols) != 1 || j.EqCols[0] != "Symbol" || j.TimeCol != "Time" {
		t.Fatalf("join cols = %v %v", j.EqCols, j.TimeCol)
	}
	// output has left cols then right-only cols
	if _, ok := j.P.Col("Bid"); !ok {
		t.Fatalf("output cols = %v", j.P.ColNames())
	}
}

func TestAjPropertyChecks(t *testing.T) {
	scopes, _ := testScopes()
	b := New(scopes)
	n, _ := parse.ParseExpr("aj[`Nope`Time; trades; quotes]")
	if _, err := b.BindStatement(context.Background(), n); err == nil {
		t.Fatal("aj with missing join column should fail the §3.2.2 property check")
	}
	n, _ = parse.ParseExpr("aj[`Symbol`Time; trades]")
	if _, err := b.BindStatement(context.Background(), n); err == nil {
		t.Fatal("aj with 2 args should fail the rank check")
	}
}

func TestBindGroupBy(t *testing.T) {
	scopes, _ := testScopes()
	b := New(scopes)
	bound := bindQ(t, b, "select mx:max Price by Symbol from trades")
	g, ok := bound.Rel.(*xtra.GroupAgg)
	if !ok {
		t.Fatalf("root = %T", bound.Rel)
	}
	if len(g.Keys) != 1 || g.Keys[0].Name != "Symbol" {
		t.Fatalf("keys = %v", g.Keys)
	}
	if len(g.Aggs) != 1 || g.Aggs[0].Name != "mx" {
		t.Fatalf("aggs = %v", g.Aggs)
	}
	agg, ok := g.Aggs[0].Expr.(*xtra.AggCall)
	if !ok || agg.Fn != "max" {
		t.Fatalf("agg expr = %#v", g.Aggs[0].Expr)
	}
}

func TestBindTypeErrors(t *testing.T) {
	scopes, _ := testScopes()
	b := New(scopes)
	for _, src := range []string{
		"select Price+Symbol from trades",     // arithmetic on symbol
		"select from trades where Price",      // non-boolean where
		"select from trades where Nope=`GOOG", // unknown column
		"select from nosuchtable",             // unknown table
	} {
		n, err := parse.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := b.BindStatement(context.Background(), n); err == nil {
			t.Errorf("bind %q should fail", src)
		}
	}
}

func TestScalarStatementsBindWithoutBackend(t *testing.T) {
	scopes, _ := testScopes()
	b := New(scopes)
	bound := bindQ(t, b, "1+2")
	if bound.Scalar == nil || !qval.EqualValues(bound.Scalar, qval.Long(3)) {
		// constant folding is not required; a const expr is also fine
		if bound.Rel != nil {
			t.Fatalf("1+2 bound to relation")
		}
	}
	bound = bindQ(t, b, "SYMS:`A`B")
	if bound.Assign != "SYMS" || bound.Scalar == nil {
		t.Fatalf("assignment bound = %+v", bound)
	}
}

func TestScopeLookupOrder(t *testing.T) {
	scopes, cat := testScopes()
	// session definition shadows the catalog
	scopes.Upsert(&VarDef{Name: "trades", Kind: KindScalar, Value: qval.Long(1)})
	def, err := scopes.Lookup(context.Background(), "trades")
	if err != nil || def.Kind != KindScalar {
		t.Fatalf("session shadow failed: %v %v", def, err)
	}
	// local shadows session
	scopes.PushLocal()
	scopes.Upsert(&VarDef{Name: "trades", Kind: KindScalar, Value: qval.Long(2)})
	def, _ = scopes.Lookup(context.Background(), "trades")
	if !qval.EqualValues(def.Value, qval.Long(2)) {
		t.Fatal("local should shadow session")
	}
	scopes.PopLocal()
	def, _ = scopes.Lookup(context.Background(), "trades")
	if !qval.EqualValues(def.Value, qval.Long(1)) {
		t.Fatal("pop should restore session definition")
	}
	_ = cat
}

func TestSessionPromotionToServer(t *testing.T) {
	server := NewServerStore()
	scopes := NewScopes(server, nil)
	scopes.Upsert(&VarDef{Name: "f", Kind: KindFunction, Source: "{x}"})
	if _, ok := server.Get("f"); ok {
		t.Fatal("session var visible at server before destruction")
	}
	scopes.DestroySession()
	if _, ok := server.Get("f"); !ok {
		t.Fatal("session var not promoted on destruction (paper §3.2.3)")
	}
}

func TestLocalNeverPromoted(t *testing.T) {
	server := NewServerStore()
	scopes := NewScopes(server, nil)
	scopes.PushLocal()
	scopes.Upsert(&VarDef{Name: "loc", Kind: KindScalar, Value: qval.Long(1)})
	scopes.PopLocal()
	scopes.DestroySession()
	if _, ok := server.Get("loc"); ok {
		t.Fatal("local variable must never be promoted (paper §3.2.3)")
	}
}

func TestGlobalAmendBypassesSession(t *testing.T) {
	server := NewServerStore()
	scopes := NewScopes(server, nil)
	scopes.PushLocal()
	scopes.UpsertGlobal(&VarDef{Name: "g", Kind: KindScalar, Value: qval.Long(7)})
	scopes.PopLocal()
	if _, ok := server.Get("g"); !ok {
		t.Fatal(":: amend should hit the server scope directly")
	}
}

func TestUpdateBindsConditionalReplacement(t *testing.T) {
	scopes, _ := testScopes()
	b := New(scopes)
	bound := bindQ(t, b, "update Price:2*Price from trades where Symbol=`IBM")
	p, ok := bound.Rel.(*xtra.Project)
	if !ok {
		t.Fatalf("update root = %T", bound.Rel)
	}
	// all input columns survive, Price becomes a CASE
	if len(p.Exprs) != 5 {
		t.Fatalf("update exprs = %d (%v)", len(p.Exprs), p.P.ColNames())
	}
	var cond *xtra.FnApp
	for _, e := range p.Exprs {
		if e.Name == "Price" {
			cond, _ = e.Expr.(*xtra.FnApp)
		}
	}
	if cond == nil || cond.Op != "cond" {
		t.Fatalf("Price expr should be conditional, got %#v", cond)
	}
}

func TestScopeFingerprint(t *testing.T) {
	server := NewServerStore()
	s1 := NewScopes(server, nil)
	s2 := NewScopes(server, nil)

	// fresh sessions over the same server scope share a fingerprint — they
	// can only see shared state, so cache entries are shareable
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Fatal("fresh sessions should share a fingerprint")
	}

	fp0 := s1.Fingerprint()
	s1.Upsert(&VarDef{Name: "x", Kind: KindScalar})
	if s1.Fingerprint() == fp0 {
		t.Fatal("session upsert must change the fingerprint")
	}
	// identical-looking private histories must NOT collide: each session's
	// variables bind to its own backing state
	s2.Upsert(&VarDef{Name: "x", Kind: KindScalar})
	if s1.Fingerprint() == s2.Fingerprint() {
		t.Fatal("two sessions with private state must have distinct fingerprints")
	}

	// server-scope mutation changes every session's fingerprint
	a, b := s1.Fingerprint(), s2.Fingerprint()
	server.Put(&VarDef{Name: "g", Kind: KindScalar})
	if s1.Fingerprint() == a || s2.Fingerprint() == b {
		t.Fatal("server-scope mutation must change all fingerprints")
	}

	// destroying the session mutates both scopes (promotion) and keeps the
	// fingerprint moving
	c := s1.Fingerprint()
	s1.DestroySession()
	if s1.Fingerprint() == c {
		t.Fatal("session destruction must change the fingerprint")
	}
}

func TestServerStoreGeneration(t *testing.T) {
	server := NewServerStore()
	g0 := server.Generation()
	server.Put(&VarDef{Name: "a", Kind: KindScalar})
	if server.Generation() != g0+1 {
		t.Fatal("Put should bump the generation")
	}
}
