package binder

import (
	"context"

	"hyperq/internal/qlang/ast"
	"hyperq/internal/qlang/parse"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/xtra"
)

// bindTemplate binds the q-sql templates into XTRA (paper §3.2.2). The
// general shape is Filter over the bound From input, then Project or
// GroupAgg depending on aggregation, mirroring Figure 2's algebrization of
// nested select templates.
func (b *Binder) bindTemplate(ctx context.Context, t *ast.SQLTemplate) (xtra.Node, error) {
	input, err := b.BindRel(ctx, t.From)
	if err != nil {
		return nil, err
	}
	// Where: q applies conditions sequentially; without aggregates in the
	// conditions this is equivalent to a conjunction, which is what SQL's
	// WHERE expresses.
	var pred xtra.Scalar
	if len(t.Where) > 0 {
		for _, w := range t.Where {
			s, err := b.bindScalar(ctx, w, input.Props())
			if err != nil {
				return nil, err
			}
			if s.QType() != qval.KBool {
				return nil, berr("type", "where condition %s is not boolean", w.QString())
			}
			if pred == nil {
				pred = s
			} else {
				pred = &xtra.FnApp{Op: "and", Args: []xtra.Scalar{pred, s}, Typ: qval.KBool}
			}
		}
	}
	// update keeps every row and applies new values only where the
	// predicate holds (q semantics), so its predicate folds into CASE
	// expressions instead of a Filter
	if t.Kind == ast.Update {
		return b.bindUpdateCols(ctx, t, input, pred)
	}
	if pred != nil {
		f := &xtra.Filter{Input: input, Pred: pred}
		f.P = *input.Props()
		f.P.PreservesOrder = true
		input = f
	}
	switch t.Kind {
	case ast.Select, ast.Exec:
		return b.bindSelectCols(ctx, t, input)
	case ast.Delete:
		return b.bindDeleteCols(t, input)
	}
	return nil, berr("nyi", "template %v", t.Kind)
}

func (b *Binder) bindSelectCols(ctx context.Context, t *ast.SQLTemplate, input xtra.Node) (xtra.Node, error) {
	inProps := input.Props()
	// select from t — all columns, order preserved
	if len(t.Cols) == 0 && len(t.By) == 0 {
		p := &xtra.Project{Input: input}
		for _, c := range inProps.Cols {
			p.Exprs = append(p.Exprs, xtra.NamedExpr{Name: c.Name, Expr: &xtra.ColRef{Name: c.Name, Typ: c.QType}})
			p.P.Cols = append(p.P.Cols, c)
		}
		p.P.OrderCol = inProps.OrderCol
		p.P.PreservesOrder = true
		return p, nil
	}
	// bind the column expressions
	type boundCol struct {
		name string
		expr xtra.Scalar
	}
	var cols []boundCol
	agg := len(t.By) > 0
	for _, spec := range t.Cols {
		s, err := b.bindScalar(ctx, spec.Expr, inProps)
		if err != nil {
			return nil, err
		}
		name := spec.Name
		if name == "" {
			name = parse.InferColName(spec.Expr)
		}
		cols = append(cols, boundCol{name: name, expr: s})
		if scalarHasAgg(s) {
			agg = true
		}
	}
	if !agg {
		p := &xtra.Project{Input: input}
		for _, c := range cols {
			p.Exprs = append(p.Exprs, xtra.NamedExpr{Name: c.name, Expr: c.expr})
			p.P.Cols = append(p.P.Cols, xtra.Col{Name: c.name, QType: c.expr.QType(), SQLType: xtra.SQLTypeFor(c.expr.QType())})
		}
		// keep the implicit order column flowing through projections
		if oc := inProps.OrderCol; oc != "" {
			if _, exists := p.P.Col(oc); !exists {
				if c, ok := inProps.Col(oc); ok {
					p.Exprs = append(p.Exprs, xtra.NamedExpr{Name: oc, Expr: &xtra.ColRef{Name: oc, Typ: c.QType}})
					p.P.Cols = append(p.P.Cols, c)
				}
			}
			p.P.OrderCol = oc
		}
		p.P.PreservesOrder = true
		return p, nil
	}
	// grouped or scalar aggregation
	g := &xtra.GroupAgg{Input: input}
	for _, spec := range t.By {
		s, err := b.bindScalar(ctx, spec.Expr, inProps)
		if err != nil {
			return nil, err
		}
		name := spec.Name
		if name == "" {
			name = parse.InferColName(spec.Expr)
		}
		g.Keys = append(g.Keys, xtra.NamedExpr{Name: name, Expr: s})
		g.P.Cols = append(g.P.Cols, xtra.Col{Name: name, QType: s.QType(), SQLType: xtra.SQLTypeFor(s.QType())})
	}
	for _, c := range cols {
		if !scalarHasAgg(c.expr) {
			// q implicitly takes last per group for bare columns
			c.expr = &xtra.AggCall{Fn: "last", Arg: c.expr, Typ: c.expr.QType()}
		}
		g.Aggs = append(g.Aggs, xtra.NamedExpr{Name: c.name, Expr: c.expr})
		g.P.Cols = append(g.P.Cols, xtra.Col{Name: c.name, QType: c.expr.QType(), SQLType: xtra.SQLTypeFor(c.expr.QType())})
	}
	// grouping destroys the input order; by-groups are ordered by first
	// appearance in q, which the serializer expresses by ordering on the
	// minimum input order column when available
	if oc := inProps.OrderCol; oc != "" && len(g.Keys) > 0 {
		g.P.OrderCol = ""
	}
	return g, nil
}

func (b *Binder) bindUpdateCols(ctx context.Context, t *ast.SQLTemplate, input xtra.Node, pred xtra.Scalar) (xtra.Node, error) {
	if len(t.By) > 0 {
		return nil, berr("nyi", "update ... by is not supported")
	}
	inProps := input.Props()
	p := &xtra.Project{Input: input}
	replaced := map[string]xtra.Scalar{}
	var added []xtra.NamedExpr
	for _, spec := range t.Cols {
		s, err := b.bindScalar(ctx, spec.Expr, inProps)
		if err != nil {
			return nil, err
		}
		name := spec.Name
		if name == "" {
			name = parse.InferColName(spec.Expr)
		}
		if old, ok := inProps.Col(name); ok {
			if pred != nil {
				// conditional update: CASE WHEN pred THEN new ELSE old END
				s = &xtra.FnApp{Op: "cond", Typ: s.QType(), Args: []xtra.Scalar{
					pred, s, &xtra.ColRef{Name: name, Typ: old.QType},
				}}
			}
			replaced[name] = s
		} else {
			if pred != nil {
				s = &xtra.FnApp{Op: "cond", Typ: s.QType(), Args: []xtra.Scalar{
					pred, s, &xtra.ConstExpr{Val: qval.Null(s.QType())},
				}}
			}
			added = append(added, xtra.NamedExpr{Name: name, Expr: s})
		}
	}
	for _, c := range inProps.Cols {
		if s, ok := replaced[c.Name]; ok {
			p.Exprs = append(p.Exprs, xtra.NamedExpr{Name: c.Name, Expr: s})
			p.P.Cols = append(p.P.Cols, xtra.Col{Name: c.Name, QType: s.QType(), SQLType: xtra.SQLTypeFor(s.QType())})
		} else {
			p.Exprs = append(p.Exprs, xtra.NamedExpr{Name: c.Name, Expr: &xtra.ColRef{Name: c.Name, Typ: c.QType}})
			p.P.Cols = append(p.P.Cols, c)
		}
	}
	for _, a := range added {
		p.Exprs = append(p.Exprs, a)
		p.P.Cols = append(p.P.Cols, xtra.Col{Name: a.Name, QType: a.Expr.QType(), SQLType: xtra.SQLTypeFor(a.Expr.QType())})
	}
	p.P.OrderCol = inProps.OrderCol
	p.P.PreservesOrder = true
	return p, nil
}

// bindDeleteCols handles delete: with a where clause the Filter bound by
// bindTemplate has already been applied — but deletion keeps the complement,
// so we rebuild with a negated predicate; with column names it projects the
// remaining columns.
func (b *Binder) bindDeleteCols(t *ast.SQLTemplate, input xtra.Node) (xtra.Node, error) {
	if len(t.Cols) > 0 && len(t.Where) == 0 {
		drop := map[string]bool{}
		for _, spec := range t.Cols {
			v, ok := spec.Expr.(*ast.Var)
			if !ok {
				return nil, berr("type", "delete expects column names")
			}
			if _, exists := input.Props().Col(v.Name); !exists {
				return nil, berr(v.Name, "delete of unknown column")
			}
			drop[v.Name] = true
		}
		p := &xtra.Project{Input: input}
		for _, c := range input.Props().Cols {
			if drop[c.Name] {
				continue
			}
			p.Exprs = append(p.Exprs, xtra.NamedExpr{Name: c.Name, Expr: &xtra.ColRef{Name: c.Name, Typ: c.QType}})
			p.P.Cols = append(p.P.Cols, c)
		}
		p.P.OrderCol = input.Props().OrderCol
		p.P.PreservesOrder = true
		return p, nil
	}
	// delete rows: input is Filter(pred); deletion = Filter(not pred)
	f, ok := input.(*xtra.Filter)
	if !ok {
		// delete from t with no where: empty result
		lim := &xtra.Limit{Input: input, N: 0}
		lim.P = *input.Props()
		return lim, nil
	}
	neg := &xtra.Filter{
		Input: f.Input,
		Pred:  &xtra.FnApp{Op: "not", Args: []xtra.Scalar{f.Pred}, Typ: qval.KBool},
	}
	neg.P = f.P
	return neg, nil
}

func scalarHasAgg(s xtra.Scalar) bool {
	switch x := s.(type) {
	case *xtra.AggCall:
		return true
	case *xtra.FnApp:
		for _, a := range x.Args {
			if scalarHasAgg(a) {
				return true
			}
		}
	case *xtra.ListExpr:
		for _, a := range x.Items {
			if scalarHasAgg(a) {
				return true
			}
		}
	}
	return false
}
