// Package binder performs the second step of algebrization (paper §3.2.2):
// semantic analysis of the Q AST and bottom-up binding into XTRA. Variable
// references are resolved through a hierarchy of variable scopes — local,
// session, server (Figure 3) — with the backend catalog (MDI) at the bottom.
package binder

import (
	"context"
	"sync"
	"sync/atomic"

	"hyperq/internal/mdi"
	"hyperq/internal/qlang/qval"
)

// VarKind classifies what a variable denotes.
type VarKind int

// Variable kinds.
const (
	// KindTable is a variable backed by a backend table (or temp table).
	KindTable VarKind = iota
	// KindView is a table variable backed by a backend view (logical
	// materialization, paper §4.3).
	KindView
	// KindScalar is an in-memory scalar (or small list) value.
	KindScalar
	// KindFunction is a Q function stored as text and re-algebrized on
	// invocation (paper §4.3).
	KindFunction
)

// VarDef is one variable definition in a scope.
type VarDef struct {
	Name    string
	Kind    VarKind
	Meta    *mdi.TableMeta // table/view: backend schema
	Backing string         // table/view: backend object name
	Value   qval.Value     // scalar: the value
	Source  string         // function: original "{...}" text
}

// scope is one level of the hierarchy.
type scope struct {
	vars map[string]*VarDef
}

func newScope() *scope { return &scope{vars: map[string]*VarDef{}} }

// ServerStore is the server-level variable registry shared by all sessions,
// standing in for the "publicly accessible schemas" Hyper-Q uses to store
// global variables in the backend (paper §3.2.3).
type ServerStore struct {
	mu   sync.RWMutex
	vars map[string]*VarDef
	// gen counts mutations; part of the query-cache key, so any
	// server-scope change invalidates translations that bound against it.
	gen atomic.Uint64
}

// NewServerStore creates an empty server-scope store.
func NewServerStore() *ServerStore {
	return &ServerStore{vars: map[string]*VarDef{}}
}

// Get looks up a server variable.
func (s *ServerStore) Get(name string) (*VarDef, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.vars[name]
	return v, ok
}

// Put installs or replaces a server variable.
func (s *ServerStore) Put(v *VarDef) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vars[v.Name] = v
	s.gen.Add(1)
}

// Generation returns the store's mutation counter.
func (s *ServerStore) Generation() uint64 { return s.gen.Load() }

// Names lists defined server variables.
func (s *ServerStore) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.vars))
	for n := range s.vars {
		out = append(out, n)
	}
	return out
}

// Scopes implements the paper's Figure 3: a stack of local scopes over a
// session scope over the server scope, with the MDI at the bottom.
//
// Lookup starts at the innermost applicable scope and walks outward; upserts
// inside a function stay local (never promoted), upserts outside a function
// go to the session scope, and session variables are promoted to the server
// scope when the session is destroyed.
type Scopes struct {
	server  *ServerStore
	mdi     *mdi.MDI
	session *scope
	locals  []*scope
	// id is process-unique and gen counts session-scope mutations; both
	// feed Fingerprint so the query cache never conflates two sessions'
	// private state.
	id  uint64
	gen uint64
}

// scopesID hands out process-unique session-scope identities.
var scopesID atomic.Uint64

// NewScopes builds the hierarchy for one session.
func NewScopes(server *ServerStore, m *mdi.MDI) *Scopes {
	return &Scopes{server: server, mdi: m, session: newScope(), id: scopesID.Add(1)}
}

// Fingerprint identifies the variable-visibility state top-level statements
// bind against; it changes whenever the session scope or the shared server
// scope mutates. Sessions whose session scope is empty share a fingerprint
// (their bindings can only see shared state), so identical queries from
// fresh sessions share query-cache entries; once a session holds private
// variables its fingerprint mixes in its unique identity — two sessions
// with identical-looking histories still bind to different backing temp
// tables and must never collide.
func (s *Scopes) Fingerprint() uint64 {
	fp := s.server.Generation()
	if len(s.session.vars) > 0 || s.gen > 0 {
		const mix = 0x9e3779b97f4a7c15 // golden-ratio multiplier disperses counter bits
		fp ^= (s.id*mix ^ s.gen) * mix
	}
	return fp
}

// PushLocal enters a function body (a new local scope).
func (s *Scopes) PushLocal() { s.locals = append(s.locals, newScope()) }

// PopLocal leaves a function body, discarding its local variables — local
// upserts never get promoted (paper §3.2.3).
func (s *Scopes) PopLocal() {
	if len(s.locals) > 0 {
		s.locals = s.locals[:len(s.locals)-1]
	}
}

// InFunction reports whether a local scope is active.
func (s *Scopes) InFunction() bool { return len(s.locals) > 0 }

// Lookup resolves a name: local scopes innermost-first, then session, then
// server, then the backend catalog via MDI (a table known only to the
// database). The context bounds the catalog round trip a cold MDI lookup
// issues. It returns nil when nothing is found.
func (s *Scopes) Lookup(ctx context.Context, name string) (*VarDef, error) {
	for i := len(s.locals) - 1; i >= 0; i-- {
		if v, ok := s.locals[i].vars[name]; ok {
			return v, nil
		}
	}
	if v, ok := s.session.vars[name]; ok {
		return v, nil
	}
	if v, ok := s.server.Get(name); ok {
		return v, nil
	}
	if s.mdi != nil {
		meta, err := s.mdi.LookupTable(ctx, name)
		if err == nil {
			return &VarDef{Name: name, Kind: KindTable, Meta: meta, Backing: name}, nil
		}
		// a context abort is a hard failure, not "name unknown"
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
	}
	return nil, nil
}

// Upsert defines or redefines a variable according to the paper's rules:
// inside a function the write lands in the innermost local scope; outside
// it lands in the session scope.
func (s *Scopes) Upsert(v *VarDef) {
	if len(s.locals) > 0 {
		s.locals[len(s.locals)-1].vars[v.Name] = v
		return
	}
	s.session.vars[v.Name] = v
	s.gen++
}

// UpsertGlobal writes directly to the server scope (Q's :: amend).
func (s *Scopes) UpsertGlobal(v *VarDef) { s.server.Put(v) }

// DestroySession promotes session variables to the server scope and clears
// the session — the promotion the paper describes as part of session scope
// destruction (§3.2.3).
func (s *Scopes) DestroySession() {
	for _, v := range s.session.vars {
		s.server.Put(v)
	}
	s.session = newScope()
	s.locals = nil
	s.gen++
}

// SessionNames lists variables currently defined at session level.
func (s *Scopes) SessionNames() []string {
	out := make([]string, 0, len(s.session.vars))
	for n := range s.session.vars {
		out = append(out, n)
	}
	return out
}
