package binder

import (
	"context"
	"fmt"

	"hyperq/internal/qlang/ast"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/xtra"
)

// Bound is the result of binding one Q statement.
type Bound struct {
	// Rel is the relational plan when the statement produces a table (or a
	// one-row table for scalar results executed on the backend).
	Rel xtra.Node
	// Scalar is set instead of Rel when the statement is a pure constant
	// expression the middleware can evaluate without the backend.
	Scalar qval.Value
	// ScalarExpr is set for non-constant scalar statements (e.g. "1+2"),
	// which translate to a single-row SELECT on the backend.
	ScalarExpr xtra.Scalar
	// Assign names the variable this statement assigns to ("" otherwise).
	Assign string
	// Global marks a :: assignment.
	Global bool
	// FuncDef is set when the statement defines a function; the definition
	// is stored as text and re-algebrized on invocation (paper §4.3).
	FuncDef *VarDef
}

// Binder binds Q ASTs to XTRA using the scope hierarchy for name
// resolution (paper §3.2.2–3.2.3).
type Binder struct {
	Scopes *Scopes
}

// New builds a binder over a scope hierarchy.
func New(scopes *Scopes) *Binder { return &Binder{Scopes: scopes} }

// BindError is a semantic error discovered during binding; Code mimics
// kdb+'s terse error names ('type, 'length, 'rank, or the missing name).
type BindError struct {
	Code string
	Ctx  string
}

func (e *BindError) Error() string {
	if e.Ctx == "" {
		return "'" + e.Code
	}
	return "'" + e.Code + " (" + e.Ctx + ")"
}

func berr(code, ctxFormat string, args ...any) *BindError {
	return &BindError{Code: code, Ctx: fmt.Sprintf(ctxFormat, args...)}
}

// BindStatement binds one top-level statement.
func (b *Binder) BindStatement(ctx context.Context, n ast.Node) (*Bound, error) {
	switch x := n.(type) {
	case *ast.Assign:
		inner, err := b.BindStatement(ctx, x.Expr)
		if err != nil {
			return nil, err
		}
		inner.Assign = x.Name
		inner.Global = x.Global
		return inner, nil
	case *ast.Lambda:
		return &Bound{FuncDef: &VarDef{Kind: KindFunction, Source: x.Source}}, nil
	case *ast.Return:
		return b.BindStatement(ctx, x.Expr)
	default:
		// try relational first; fall back to constant scalar
		rel, relErr := b.BindRel(ctx, n)
		if relErr == nil {
			return &Bound{Rel: rel}, nil
		}
		sc, scErr := b.bindScalar(ctx, n, nil)
		if scErr == nil {
			if c, ok := sc.(*xtra.ConstExpr); ok {
				return &Bound{Scalar: c.Val}, nil
			}
			if l, ok := sc.(*xtra.ListExpr); ok {
				if v, ok2 := constantList(l); ok2 {
					return &Bound{Scalar: v}, nil
				}
			}
			// non-constant scalar: executed as a one-row SELECT
			return &Bound{ScalarExpr: sc}, nil
		}
		return nil, relErr
	}
}

func constantList(l *xtra.ListExpr) (qval.Value, bool) {
	atoms := make([]qval.Value, len(l.Items))
	for i, it := range l.Items {
		c, ok := it.(*xtra.ConstExpr)
		if !ok {
			return nil, false
		}
		atoms[i] = c.Val
	}
	return qval.FromAtoms(atoms), true
}

// BindRel binds an expression that must produce a table (a relational
// property check, §3.2.2).
func (b *Binder) BindRel(ctx context.Context, n ast.Node) (xtra.Node, error) {
	switch x := n.(type) {
	case *ast.Var:
		def, err := b.Scopes.Lookup(ctx, x.Name)
		if err != nil {
			return nil, err
		}
		if def == nil {
			return nil, berr(x.Name, "")
		}
		switch def.Kind {
		case KindTable, KindView:
			return b.getFor(def), nil
		default:
			return nil, berr("type", "%s is not a table expression", x.Name)
		}
	case *ast.SQLTemplate:
		return b.bindTemplate(ctx, x)
	case *ast.Dyad:
		switch x.Op {
		case "lj", "ij":
			return b.bindKeyedJoin(ctx, x.Op, x.L, x.R)
		case "uj":
			return b.bindUnionJoin(ctx, x.L, x.R)
		case "xasc", "xdesc":
			return b.bindSortVerb(ctx, x.Op, x.L, x.R)
		case "#":
			return b.bindTakeRel(ctx, x.L, x.R)
		}
		return nil, berr("type", "dyad %s does not yield a table", x.Op)
	case *ast.Apply:
		if v, ok := x.Fn.(*ast.Var); ok {
			switch v.Name {
			case "aj":
				return b.bindAj(ctx, x.Args)
			case "lj", "ij":
				if len(x.Args) == 2 {
					return b.bindKeyedJoin(ctx, v.Name, x.Args[0], x.Args[1])
				}
			case "select", "exec":
				// not produced by the parser; defensive
			}
			// monadic verb over a table: distinct t, etc.
			if len(x.Args) == 1 {
				if inner, err := b.BindRel(ctx, x.Args[0]); err == nil {
					return b.bindTableVerb(v.Name, inner)
				}
			}
		}
		return nil, berr("type", "%s does not yield a table", x.QString())
	default:
		return nil, berr("type", "%s is not a table expression", n.QString())
	}
}

// getFor builds an xtra_get with derived properties from table metadata.
func (b *Binder) getFor(def *VarDef) *xtra.Get {
	g := &xtra.Get{Table: def.Backing, QName: def.Name}
	for _, c := range def.Meta.Cols {
		g.P.Cols = append(g.P.Cols, xtra.Col{Name: c.Name, QType: c.QType, SQLType: c.SQLType})
	}
	if def.Meta.HasOrdCol {
		g.P.OrderCol = xtra.OrdCol
	}
	g.P.PreservesOrder = true
	return g
}

// bindAj binds Q's as-of join (paper Example 2, Figure 2): property checks
// per §3.2.2, then a left-outer-join-with-window XTRA operator.
func (b *Binder) bindAj(ctx context.Context, args []ast.Node) (xtra.Node, error) {
	if len(args) != 3 {
		return nil, berr("rank", "aj takes 3 arguments, got %d", len(args))
	}
	colsLit, ok := args[0].(*ast.Lit)
	if !ok {
		return nil, berr("type", "aj join columns must be a symbol list literal")
	}
	var joinCols []string
	switch v := colsLit.Val.(type) {
	case qval.SymbolVec:
		joinCols = v
	case qval.Symbol:
		joinCols = []string{string(v)}
	default:
		return nil, berr("type", "aj join columns must be symbols")
	}
	if len(joinCols) < 1 {
		return nil, berr("length", "aj needs at least one join column")
	}
	left, err := b.BindRel(ctx, args[1])
	if err != nil {
		return nil, err
	}
	right, err := b.BindRel(ctx, args[2])
	if err != nil {
		return nil, err
	}
	// property check: join columns must be in the output of both inputs
	for _, c := range joinCols {
		if _, ok := left.Props().Col(c); !ok {
			return nil, berr(c, "aj join column missing from left input")
		}
		if _, ok := right.Props().Col(c); !ok {
			return nil, berr(c, "aj join column missing from right input")
		}
	}
	j := &xtra.AsOfJoin{
		L:       left,
		R:       right,
		EqCols:  joinCols[:len(joinCols)-1],
		TimeCol: joinCols[len(joinCols)-1],
	}
	// output: all left columns, then right columns not already present
	j.P.Cols = append(j.P.Cols, left.Props().Cols...)
	for _, c := range right.Props().Cols {
		if _, dup := left.Props().Col(c.Name); !dup && c.Name != xtra.OrdCol {
			j.P.Cols = append(j.P.Cols, c)
		}
	}
	j.P.OrderCol = left.Props().OrderCol
	j.P.PreservesOrder = true
	return j, nil
}

// bindKeyedJoin binds lj/ij. In q the right operand is a keyed table; in the
// SQL mapping the key columns are the shared columns of both inputs.
func (b *Binder) bindKeyedJoin(ctx context.Context, op string, ln, rn ast.Node) (xtra.Node, error) {
	left, err := b.BindRel(ctx, ln)
	if err != nil {
		return nil, err
	}
	right, err := b.BindRel(ctx, rn)
	if err != nil {
		return nil, err
	}
	var shared []string
	for _, c := range left.Props().Cols {
		if c.Name == xtra.OrdCol {
			continue
		}
		if _, ok := right.Props().Col(c.Name); ok {
			shared = append(shared, c.Name)
		}
	}
	if len(shared) == 0 {
		return nil, berr("type", "%s requires shared key columns", op)
	}
	kind := xtra.LeftOuterJoin
	if op == "ij" {
		kind = xtra.InnerJoin
	}
	j := &xtra.Join{Kind: kind, L: left, R: right, EqCols: shared}
	j.P.Cols = append(j.P.Cols, left.Props().Cols...)
	for _, c := range right.Props().Cols {
		if _, dup := left.Props().Col(c.Name); !dup && c.Name != xtra.OrdCol {
			j.P.Cols = append(j.P.Cols, c)
		}
	}
	j.P.OrderCol = left.Props().OrderCol
	j.P.PreservesOrder = kind == xtra.LeftOuterJoin
	return j, nil
}

func (b *Binder) bindSortVerb(ctx context.Context, op string, ln, rn ast.Node) (xtra.Node, error) {
	colsLit, ok := ln.(*ast.Lit)
	if !ok {
		return nil, berr("type", "%s sort columns must be symbols", op)
	}
	var cols []string
	switch v := colsLit.Val.(type) {
	case qval.SymbolVec:
		cols = v
	case qval.Symbol:
		cols = []string{string(v)}
	default:
		return nil, berr("type", "%s sort columns must be symbols", op)
	}
	input, err := b.BindRel(ctx, rn)
	if err != nil {
		return nil, err
	}
	srt := &xtra.Sort{Input: input}
	for _, c := range cols {
		if _, ok := input.Props().Col(c); !ok {
			return nil, berr(c, "sort column missing")
		}
		srt.Keys = append(srt.Keys, xtra.SortKey{Col: c, Desc: op == "xdesc"})
	}
	srt.P = *input.Props()
	srt.P.PreservesOrder = false // establishes a new order
	srt.P.OrderCol = ""          // explicit sort replaces implicit order
	return srt, nil
}

func (b *Binder) bindTakeRel(ctx context.Context, ln, rn ast.Node) (xtra.Node, error) {
	nLit, ok := ln.(*ast.Lit)
	if !ok {
		return nil, berr("type", "take count must be a literal")
	}
	n, ok := qval.AsLong(nLit.Val)
	if !ok {
		return nil, berr("type", "take count must be an integer")
	}
	input, err := b.BindRel(ctx, rn)
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, berr("nyi", "negative take over tables is not supported in SQL translation")
	}
	l := &xtra.Limit{Input: input, N: n}
	l.P = *input.Props()
	l.P.PreservesOrder = true
	return l, nil
}

// bindTableVerb binds monadic verbs applied to whole tables.
func (b *Binder) bindTableVerb(name string, input xtra.Node) (xtra.Node, error) {
	switch name {
	case "distinct":
		g := &xtra.GroupAgg{Input: input}
		for _, c := range input.Props().Cols {
			if c.Name == xtra.OrdCol {
				continue
			}
			g.Keys = append(g.Keys, xtra.NamedExpr{Name: c.Name, Expr: &xtra.ColRef{Name: c.Name, Typ: c.QType}})
			g.P.Cols = append(g.P.Cols, c)
		}
		return g, nil
	case "count":
		g := &xtra.GroupAgg{Input: input}
		g.Aggs = append(g.Aggs, xtra.NamedExpr{Name: "count", Expr: &xtra.AggCall{Fn: "count", Typ: qval.KLong}})
		g.P.Cols = []xtra.Col{{Name: "count", QType: qval.KLong, SQLType: "bigint"}}
		return g, nil
	case "reverse":
		ord := input.Props().OrderCol
		if ord == "" {
			return nil, berr("type", "reverse requires an ordered input")
		}
		srt := &xtra.Sort{Input: input, Keys: []xtra.SortKey{{Col: ord, Desc: true}}}
		srt.P = *input.Props()
		return srt, nil
	default:
		return nil, berr("type", "%s does not apply to tables", name)
	}
}

// bindUnionJoin binds uj: rows of both tables over the union of columns,
// null-padding the columns missing on either side.
func (b *Binder) bindUnionJoin(ctx context.Context, ln, rn ast.Node) (xtra.Node, error) {
	left, err := b.BindRel(ctx, ln)
	if err != nil {
		return nil, err
	}
	right, err := b.BindRel(ctx, rn)
	if err != nil {
		return nil, err
	}
	u := &xtra.Union{L: left, R: right}
	u.P.Cols = append(u.P.Cols, left.Props().Cols...)
	for _, c := range right.Props().Cols {
		if _, dup := left.Props().Col(c.Name); !dup && c.Name != xtra.OrdCol {
			u.P.Cols = append(u.P.Cols, c)
		}
	}
	return u, nil
}
