// Package persist gives the embedded pgdb engine kdb+-style durable
// storage: a date-partitioned splayed on-disk layout (one directory per
// partition, one file per column) written straight from the columnar
// store's segments, a write-ahead log for DML with fsync batching, crash
// recovery via replay-on-open, and bounded-memory eviction that drops cold
// segments and reloads them on demand through the engine's segment read
// path.
package persist

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"hyperq/internal/pgdb"
)

// hostLE reports whether the host stores multi-byte integers little-endian,
// which is the on-disk byte order; on such hosts typed vectors decode by
// bulk copy instead of a per-element loop.
var hostLE = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Value domain: pgdb cells are nil, int64, float64, string or bool — the
// SQL literal domain. Everything on disk (WAL rows, vkAny cells, zone
// bounds) uses one tagged encoding for them.

const (
	tagNil byte = iota
	tagInt
	tagFloat
	tagStr
	tagBool
)

func appendValue(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, tagNil), nil
	case int64:
		buf = append(buf, tagInt)
		return binary.LittleEndian.AppendUint64(buf, uint64(x)), nil
	case float64:
		buf = append(buf, tagFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(x)), nil
	case string:
		buf = append(buf, tagStr)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		return append(buf, x...), nil
	case bool:
		buf = append(buf, tagBool)
		if x {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	default:
		return nil, fmt.Errorf("persist: value %T outside the storable domain", v)
	}
}

func readValue(b []byte, off int) (any, int, error) {
	if off >= len(b) {
		return nil, 0, fmt.Errorf("persist: truncated value")
	}
	tag := b[off]
	off++
	switch tag {
	case tagNil:
		return nil, off, nil
	case tagInt:
		if off+8 > len(b) {
			return nil, 0, fmt.Errorf("persist: truncated int")
		}
		return int64(binary.LittleEndian.Uint64(b[off:])), off + 8, nil
	case tagFloat:
		if off+8 > len(b) {
			return nil, 0, fmt.Errorf("persist: truncated float")
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[off:])), off + 8, nil
	case tagStr:
		if off+4 > len(b) {
			return nil, 0, fmt.Errorf("persist: truncated string header")
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if off+n > len(b) {
			return nil, 0, fmt.Errorf("persist: truncated string")
		}
		return string(b[off : off+n]), off + n, nil
	case tagBool:
		if off >= len(b) {
			return nil, 0, fmt.Errorf("persist: truncated bool")
		}
		return b[off] != 0, off + 1, nil
	default:
		return nil, 0, fmt.Errorf("persist: unknown value tag %d", tag)
	}
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func readString(b []byte, off int) (string, int, error) {
	if off+4 > len(b) {
		return "", 0, fmt.Errorf("persist: truncated string header")
	}
	n := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+n > len(b) {
		return "", 0, fmt.Errorf("persist: truncated string")
	}
	return string(b[off : off+n]), off + n, nil
}

// --- column files ---
//
// One file per (partition, column), holding the partition's slice of that
// column as a sequence of chunks. A chunk is the part of one global store
// segment that falls inside the partition, so a segment reload splices the
// chunks with its segment index — possibly from two partitions when a
// partition boundary crosses a segment. Layout:
//
//	"HQP2" | u32 chunkCount
//	chunk directory: chunkCount × { u32 segIdx | u32 startInSeg | u32 rows |
//	                                u64 offset | u64 size }
//	chunk payloads (offset is absolute within the file)
//
// chunk payload:
//
//	u8 kind | u32 rows | u8 nullEnc | null section | u8 dataEnc | data
//
// null section (bits re-based to chunk-local positions):
//
//	nullNone: nothing (no null rows in the chunk)
//	nullRaw:  u32 words | words × u64
//	nullRLE:  u32 runs  | runs × { u32 start | u32 len } of set-bit ranges
//
// data section:
//
//	dataRaw — the kind's natural layout:
//	  vkInt/vkFloat: rows × u64 (LE; floats as IEEE bits)
//	  vkBool:        rows bytes
//	  vkStr:         (rows+1) × u64 offsets | bytes
//	  vkAny:         (rows+1) × u64 offsets | tagged cells
//	  vkEmpty:       nothing
//	dataForInt  (vkInt):  u64 frame | u8 width | rows × width bits
//	dataDeltaInt(vkInt):  u64 first | u64 frame | u8 width | (rows-1) × width bits
//	dataDictStr (vkStr):  u32 dictN | dictN × { u32 len | bytes } |
//	                      u8 width | rows × width bits (dict indexes)
//	dataRLEBool (vkBool): u32 runs | runs × { u8 val | u32 len }
//
// Compressed encodings are chosen per chunk, only when smaller than raw;
// the decoder accepts every encoding regardless of the store's compression
// option, so compressed checkpoints reopen losslessly anywhere. Typed
// vectors, null bitmaps and (manifest-held) zone maps round-trip without
// re-inference.

var colMagic = [4]byte{'H', 'Q', 'P', '2'}

// null-section encodings
const (
	nullNone byte = iota
	nullRaw
	nullRLE
)

// data-section encodings
const (
	dataRaw byte = iota
	dataForInt
	dataDeltaInt
	dataDictStr
	dataRLEBool
)

// vec kinds mirror pgdb's storage classes (persist only sees them as the
// Kind byte of pgdb.VecData).
const (
	vkEmpty uint8 = iota
	vkInt
	vkFloat
	vkStr
	vkBool
	vkAny
)

// chunkRef is one chunk directory entry.
type chunkRef struct {
	SegIdx     int
	StartInSeg int
	Rows       int
	Offset     int64
	Size       int64
}

// encodeChunk serializes rows [lo, hi) of one segment's vector. With
// compress set, int, string and bool sections (and null bitmaps) use the
// lightweight encodings above whenever they come out smaller than raw;
// floats and boxed cells always stay raw.
func encodeChunk(v pgdb.VecData, segN, lo, hi int, compress bool) ([]byte, error) {
	rows := hi - lo
	buf := make([]byte, 0, 16+rows*8)
	buf = append(buf, v.Kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rows))

	// re-base null bits to chunk-local positions
	words := make([]uint64, (rows+63)/64)
	anyNull := false
	for i := 0; i < rows; i++ {
		gi := lo + i
		w := gi >> 6
		if w < len(v.Nulls) && v.Nulls[w]&(1<<(uint(gi)&63)) != 0 {
			words[i>>6] |= 1 << (uint(i) & 63)
			anyNull = true
		}
	}
	switch {
	case !anyNull:
		buf = append(buf, nullNone)
	case compress:
		if rle := encodeNullRLE(words, rows); len(rle) < 4+len(words)*8 {
			buf = append(buf, nullRLE)
			buf = append(buf, rle...)
			break
		}
		fallthrough
	default:
		buf = append(buf, nullRaw)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(words)))
		for _, w := range words {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}

	raw, err := encodeDataRaw(v, lo, hi)
	if err != nil {
		return nil, err
	}
	if compress {
		if enc, body := encodeDataCompressed(v, lo, hi); body != nil && len(body) < len(raw) {
			buf = append(buf, enc)
			return append(buf, body...), nil
		}
	}
	buf = append(buf, dataRaw)
	return append(buf, raw...), nil
}

// encodeDataRaw serializes the data section in the kind's natural layout.
func encodeDataRaw(v pgdb.VecData, lo, hi int) ([]byte, error) {
	rows := hi - lo
	var buf []byte
	switch v.Kind {
	case vkEmpty:
	case vkInt:
		buf = make([]byte, 0, rows*8)
		for _, x := range v.Ints[lo:hi] {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
		}
	case vkFloat:
		buf = make([]byte, 0, rows*8)
		for _, f := range v.Floats[lo:hi] {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
	case vkBool:
		buf = make([]byte, 0, rows)
		for _, b := range v.Bools[lo:hi] {
			if b {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	case vkStr:
		offs := make([]uint64, 0, rows+1)
		var data []byte
		for _, s := range v.Strs[lo:hi] {
			offs = append(offs, uint64(len(data)))
			data = append(data, s...)
		}
		offs = append(offs, uint64(len(data)))
		buf = make([]byte, 0, len(offs)*8+len(data))
		for _, o := range offs {
			buf = binary.LittleEndian.AppendUint64(buf, o)
		}
		buf = append(buf, data...)
	case vkAny:
		offs := make([]uint64, 0, rows+1)
		var data []byte
		var err error
		for _, cell := range v.Anys[lo:hi] {
			offs = append(offs, uint64(len(data)))
			data, err = appendValue(data, cell)
			if err != nil {
				return nil, err
			}
		}
		offs = append(offs, uint64(len(data)))
		buf = make([]byte, 0, len(offs)*8+len(data))
		for _, o := range offs {
			buf = binary.LittleEndian.AppendUint64(buf, o)
		}
		buf = append(buf, data...)
	default:
		return nil, fmt.Errorf("persist: unknown vector kind %d", v.Kind)
	}
	return buf, nil
}

// decodeChunkInto parses one chunk payload directly into dst's segment
// slices at row offset start — no intermediate chunk-local vectors, so a
// segment reload is one read and one decode pass per chunk. rows is the
// chunk's expected row count from the directory entry. With zeroCopy set,
// b is an immutable mmap-backed region that outlives the store, so string
// cells alias it directly instead of copying the blob.
func decodeChunkInto(dst *pgdb.VecData, start, rows int, b []byte, zeroCopy bool) error {
	if len(b) < 7 {
		return fmt.Errorf("persist: chunk too short")
	}
	if b[0] != dst.Kind {
		return fmt.Errorf("persist: chunk kind %d != segment kind %d", b[0], dst.Kind)
	}
	if int(binary.LittleEndian.Uint32(b[1:])) != rows {
		return fmt.Errorf("persist: chunk row count mismatch")
	}
	off := 6
	setNull := func(ri int) error {
		if ri >= rows {
			return fmt.Errorf("persist: null bit beyond chunk rows")
		}
		gi := start + ri
		if gi>>6 >= len(dst.Nulls) {
			return fmt.Errorf("persist: null bit beyond segment")
		}
		dst.Nulls[gi>>6] |= 1 << (uint(gi) & 63)
		return nil
	}
	switch b[5] {
	case nullNone:
	case nullRaw:
		if off+4 > len(b) {
			return fmt.Errorf("persist: truncated null bitmap")
		}
		nullWords := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if off+nullWords*8 > len(b) {
			return fmt.Errorf("persist: truncated null bitmap")
		}
		for w := 0; w < nullWords; w++ {
			word := binary.LittleEndian.Uint64(b[off:])
			off += 8
			if word == 0 {
				continue
			}
			for i := 0; i < 64; i++ {
				if word&(1<<uint(i)) == 0 {
					continue
				}
				if err := setNull(w*64 + i); err != nil {
					return err
				}
			}
		}
	case nullRLE:
		if off+4 > len(b) {
			return fmt.Errorf("persist: truncated null runs")
		}
		runs := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if off+runs*8 > len(b) {
			return fmt.Errorf("persist: truncated null runs")
		}
		for r := 0; r < runs; r++ {
			rs := int(binary.LittleEndian.Uint32(b[off:]))
			rl := int(binary.LittleEndian.Uint32(b[off+4:]))
			off += 8
			for i := 0; i < rl; i++ {
				if err := setNull(rs + i); err != nil {
					return err
				}
			}
		}
	default:
		return fmt.Errorf("persist: unknown null encoding %d", b[5])
	}
	if off >= len(b) {
		return fmt.Errorf("persist: missing data encoding byte")
	}
	dataEnc := b[off]
	off++
	data := b[off:]
	switch dst.Kind {
	case vkEmpty:
		if dataEnc != dataRaw {
			return fmt.Errorf("persist: encoding %d invalid for empty vector", dataEnc)
		}
	case vkInt:
		if start+rows > len(dst.Ints) {
			return fmt.Errorf("persist: chunk shape mismatch")
		}
		out := dst.Ints[start : start+rows]
		switch dataEnc {
		case dataRaw:
			if rows*8 > len(data) {
				return fmt.Errorf("persist: truncated chunk data")
			}
			if hostLE && rows > 0 {
				copy(unsafe.Slice((*byte)(unsafe.Pointer(&out[0])), rows*8), data[:rows*8])
			} else {
				for i := 0; i < rows; i++ {
					out[i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
				}
			}
		case dataForInt:
			return decodeForInt(out, data)
		case dataDeltaInt:
			return decodeDeltaInt(out, data)
		default:
			return fmt.Errorf("persist: encoding %d invalid for int vector", dataEnc)
		}
	case vkFloat:
		if dataEnc != dataRaw {
			return fmt.Errorf("persist: encoding %d invalid for float vector", dataEnc)
		}
		if rows*8 > len(data) {
			return fmt.Errorf("persist: truncated chunk data")
		}
		if start+rows > len(dst.Floats) {
			return fmt.Errorf("persist: chunk shape mismatch")
		}
		out := dst.Floats[start : start+rows]
		if hostLE && rows > 0 {
			copy(unsafe.Slice((*byte)(unsafe.Pointer(&out[0])), rows*8), data[:rows*8])
		} else {
			for i := 0; i < rows; i++ {
				out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
			}
		}
	case vkBool:
		if start+rows > len(dst.Bools) {
			return fmt.Errorf("persist: chunk shape mismatch")
		}
		out := dst.Bools[start : start+rows]
		switch dataEnc {
		case dataRaw:
			if rows > len(data) {
				return fmt.Errorf("persist: truncated chunk data")
			}
			for i := 0; i < rows; i++ {
				out[i] = data[i] != 0
			}
		case dataRLEBool:
			return decodeRLEBool(out, data)
		default:
			return fmt.Errorf("persist: encoding %d invalid for bool vector", dataEnc)
		}
	case vkStr:
		if start+rows > len(dst.Strs) {
			return fmt.Errorf("persist: chunk shape mismatch")
		}
		out := dst.Strs[start : start+rows]
		switch dataEnc {
		case dataRaw:
			if (rows+1)*8 > len(data) {
				return fmt.Errorf("persist: truncated chunk data")
			}
			offs := data[: (rows+1)*8 : (rows+1)*8]
			body := data[(rows+1)*8:]
			// One backing allocation for the whole chunk: every cell is a
			// substring of blob, so the loop allocates string headers only.
			// Run-length deduplication on top keeps repeated values (date
			// columns are constant within a partition) sharing one header.
			// Zero-copy decode skips even that allocation: blob aliases the
			// mapped file bytes.
			blob := blobString(body, zeroCopy)
			var last string
			for i := 0; i < rows; i++ {
				lo := binary.LittleEndian.Uint64(offs[i*8:])
				hi := binary.LittleEndian.Uint64(offs[(i+1)*8:])
				if hi < lo || hi > uint64(len(body)) {
					return fmt.Errorf("persist: bad string offsets")
				}
				if cell := blob[lo:hi]; i == 0 || cell != last {
					last = cell
				}
				out[i] = last
			}
		case dataDictStr:
			return decodeDictStr(out, data, zeroCopy)
		default:
			return fmt.Errorf("persist: encoding %d invalid for string vector", dataEnc)
		}
	case vkAny:
		if dataEnc != dataRaw {
			return fmt.Errorf("persist: encoding %d invalid for boxed vector", dataEnc)
		}
		if (rows+1)*8 > len(data) {
			return fmt.Errorf("persist: truncated chunk data")
		}
		if start+rows > len(dst.Anys) {
			return fmt.Errorf("persist: chunk shape mismatch")
		}
		offs := data[: (rows+1)*8 : (rows+1)*8]
		body := data[(rows+1)*8:]
		for i := 0; i < rows; i++ {
			lo := binary.LittleEndian.Uint64(offs[i*8:])
			hi := binary.LittleEndian.Uint64(offs[(i+1)*8:])
			if hi < lo || hi > uint64(len(body)) {
				return fmt.Errorf("persist: bad cell offsets")
			}
			cell, _, err := readValue(body[lo:hi], 0)
			if err != nil {
				return err
			}
			dst.Anys[start+i] = cell
		}
	default:
		return fmt.Errorf("persist: unknown vector kind %d", dst.Kind)
	}
	return nil
}

// blobString turns a decoded blob region into the string cells alias. With
// zeroCopy the returned string shares the mmap-backed bytes (immutable for
// the process lifetime — checkpoint files are never rewritten in place);
// otherwise it copies so the chunk buffer can be released.
func blobString(b []byte, zeroCopy bool) string {
	if len(b) == 0 {
		return ""
	}
	if zeroCopy {
		return unsafe.String(&b[0], len(b))
	}
	return string(b)
}

// encodeColFile assembles a whole column file from chunks (payloads aligned
// with refs; refs' Offset/Size are filled in here).
func encodeColFile(refs []chunkRef, payloads [][]byte) []byte {
	const dirEntry = 4 + 4 + 4 + 8 + 8
	hdr := 4 + 4 + len(refs)*dirEntry
	size := hdr
	for _, p := range payloads {
		size += len(p)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, colMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(refs)))
	off := int64(hdr)
	for i := range refs {
		refs[i].Offset = off
		refs[i].Size = int64(len(payloads[i]))
		off += refs[i].Size
		buf = binary.LittleEndian.AppendUint32(buf, uint32(refs[i].SegIdx))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(refs[i].StartInSeg))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(refs[i].Rows))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(refs[i].Offset))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(refs[i].Size))
	}
	for _, p := range payloads {
		buf = append(buf, p...)
	}
	return buf
}

// readColDir parses a column file's chunk directory from its head bytes.
func readColDir(b []byte) ([]chunkRef, error) {
	if len(b) < 8 || [4]byte(b[:4]) != colMagic {
		return nil, fmt.Errorf("persist: bad column file magic")
	}
	n := int(binary.LittleEndian.Uint32(b[4:]))
	const dirEntry = 4 + 4 + 4 + 8 + 8
	if 8+n*dirEntry > len(b) {
		return nil, fmt.Errorf("persist: truncated chunk directory")
	}
	refs := make([]chunkRef, n)
	off := 8
	for i := range refs {
		refs[i].SegIdx = int(binary.LittleEndian.Uint32(b[off:]))
		refs[i].StartInSeg = int(binary.LittleEndian.Uint32(b[off+4:]))
		refs[i].Rows = int(binary.LittleEndian.Uint32(b[off+8:]))
		refs[i].Offset = int64(binary.LittleEndian.Uint64(b[off+12:]))
		refs[i].Size = int64(binary.LittleEndian.Uint64(b[off+20:]))
		off += dirEntry
	}
	return refs, nil
}
