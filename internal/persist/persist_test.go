package persist

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hyperq/internal/pgdb"
)

func mustExec(t *testing.T, s *pgdb.Session, sql string) *pgdb.Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func openStore(t *testing.T, dir string, opts Options) (*pgdb.DB, *pgdb.Session, *Store) {
	t.Helper()
	opts.Dir = dir
	db := pgdb.NewDB()
	st, err := Open(db, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db, db.NewSession(), st
}

// rowsOf fetches a table's full contents in insertion order.
func rowsOf(t *testing.T, s *pgdb.Session, table string) [][]any {
	t.Helper()
	return mustExec(t, s, "SELECT * FROM "+table).Rows
}

func assertSameRows(t *testing.T, want, got [][]any, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: row count %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("%s: row %d: got %v want %v", label, i, got[i], want[i])
		}
	}
}

func TestRoundTripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	db, s, st := openStore(t, dir, Options{Sync: SyncAlways})
	mustExec(t, s, "CREATE TABLE trades (d date, sym varchar, price double precision, size bigint)")
	for day := 0; day < 3; day++ {
		for i := 0; i < 100; i++ {
			mustExec(t, s, fmt.Sprintf(
				"INSERT INTO trades VALUES ('2024-07-%02d', 'S%d', %d.5, %d)",
				14+day, i%7, i, i*10))
		}
	}
	mustExec(t, s, "CREATE VIEW big AS SELECT sym, price FROM trades WHERE size > 500")
	want := rowsOf(t, s, "trades")
	wantView := rowsOf(t, s, "big")
	if err := st.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db.SetExecMode(pgdb.ExecVectorized) // silence unused; modes checked below

	for _, mode := range []pgdb.ExecMode{pgdb.ExecCompiled, pgdb.ExecInterpreted, pgdb.ExecVectorized} {
		db2, s2, st2 := openStore(t, dir, Options{Sync: SyncAlways})
		db2.SetExecMode(mode)
		assertSameRows(t, want, rowsOf(t, s2, "trades"), fmt.Sprintf("mode %d", mode))
		assertSameRows(t, wantView, rowsOf(t, s2, "big"), fmt.Sprintf("view mode %d", mode))
		if st2.ReplayedChanges() {
			t.Fatalf("clean checkpointed dir should not report replayed changes")
		}
		st2.Close()
	}

	// Partition dirs exist, splayed one file per column.
	ents, err := os.ReadDir(filepath.Join(dir, "ckpt-00000001", "trades"))
	if err != nil {
		t.Fatalf("checkpoint layout: %v", err)
	}
	if len(ents) != 3 {
		t.Fatalf("want 3 date partitions, got %d", len(ents))
	}
	cols, err := os.ReadDir(filepath.Join(dir, "ckpt-00000001", "trades", ents[0].Name()))
	if err != nil || len(cols) != 4 {
		t.Fatalf("want 4 column files, got %d (%v)", len(cols), err)
	}
}

func TestWALOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	_, s, st := openStore(t, dir, Options{Sync: SyncAlways})
	mustExec(t, s, "CREATE TABLE t (a bigint, b varchar)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 'x'), (2, NULL), (3, 'z')")
	mustExec(t, s, "UPDATE t SET b = 'y' WHERE a = 2")
	mustExec(t, s, "DELETE FROM t WHERE a = 1")
	want := rowsOf(t, s, "t")
	st.Close() // no checkpoint: everything must come back from the WAL

	_, s2, st2 := openStore(t, dir, Options{Sync: SyncAlways})
	if !st2.ReplayedChanges() {
		t.Fatalf("expected replayed changes")
	}
	assertSameRows(t, want, rowsOf(t, s2, "t"), "wal-only")
	st2.Close()
}

// TestCrashMidWALAppend is the kill-at-fault-point torture test for the
// log: a statement dies mid-append at every byte offset in a window, and
// after each crash the reopened store must equal the in-memory oracle of
// acked statements exactly — torn tails truncated, no acked row lost.
func TestCrashMidWALAppend(t *testing.T) {
	stmts := func(i int) string {
		return fmt.Sprintf("INSERT INTO t VALUES (%d, 'row-%d')", i, i)
	}
	for fail := int64(1); fail < 400; fail += 13 {
		dir := t.TempDir()
		_, s, st := openStore(t, dir, Options{Sync: SyncAlways})
		mustExec(t, s, "CREATE TABLE t (a bigint, b varchar)")

		oracle := pgdb.NewDB()
		os0 := oracle.NewSession()
		mustExec(t, os0, "CREATE TABLE t (a bigint, b varchar)")

		st.FailWALAfter(st.WALSize() + fail)
		acked := 0
		for i := 0; i < 40; i++ {
			if _, err := s.Exec(stmts(i)); err != nil {
				break // crashed mid-append: statement not acked
			}
			mustExec(t, os0, stmts(i))
			acked++
		}
		st.Close()

		_, s2, st2 := openStore(t, dir, Options{Sync: SyncAlways})
		got := rowsOf(t, s2, "t")
		want := rowsOf(t, os0, "t")
		assertSameRows(t, want, got, fmt.Sprintf("fail@+%d (acked %d)", fail, acked))
		// the store must be writable again after recovery
		mustExec(t, s2, stmts(1000))
		st2.Close()
	}
}

// TestCrashMidCheckpoint kills the checkpoint at each injected fault point
// and verifies recovery sees either the old or the new checkpoint — never
// a half state — and always row-for-row matches the oracle.
func TestCrashMidCheckpoint(t *testing.T) {
	points := []string{"before-files", "mid-files", "before-manifest", "before-current", "before-wal-reset"}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			_, s, st := openStore(t, dir, Options{Sync: SyncAlways})
			mustExec(t, s, "CREATE TABLE t (d date, v bigint)")
			for i := 0; i < 50; i++ {
				mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES ('2024-07-%02d', %d)", 14+i%3, i))
			}
			if err := st.Checkpoint(); err != nil {
				t.Fatalf("first checkpoint: %v", err)
			}
			mustExec(t, s, "UPDATE t SET v = v + 1000 WHERE v < 10")
			mustExec(t, s, "DELETE FROM t WHERE v = 25")
			want := rowsOf(t, s, "t")

			st.SetFailpoint(point)
			if err := st.Checkpoint(); err == nil {
				t.Fatalf("checkpoint should have failed at %s", point)
			}
			st.Close()

			_, s2, st2 := openStore(t, dir, Options{Sync: SyncAlways})
			assertSameRows(t, want, rowsOf(t, s2, "t"), point)
			// and the reopened store can checkpoint + keep going
			mustExec(t, s2, "INSERT INTO t VALUES ('2024-07-17', 999)")
			if err := st2.Checkpoint(); err != nil {
				t.Fatalf("post-recovery checkpoint: %v", err)
			}
			st2.Close()
		})
	}
}

func TestEvictionAndReload(t *testing.T) {
	dir := t.TempDir()
	db, s, st := openStore(t, dir, Options{Sync: SyncNone, MemBudget: 1})
	mustExec(t, s, "CREATE TABLE t (d date, v bigint)")
	for i := 0; i < 3; i++ {
		sql := fmt.Sprintf("INSERT INTO t SELECT '2024-07-%02d', g FROM generate_series(1, 5000) g", 14+i)
		if _, err := s.Exec(sql); err != nil {
			// no generate_series: fall back to row-at-a-time
			for j := 0; j < 5000; j++ {
				mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES ('2024-07-%02d', %d)", 14+i, j))
			}
		}
	}
	want := rowsOf(t, s, "t")
	if err := st.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	mustExec(t, s, "SELECT count(*) FROM t") // afterStmt runs eviction

	var resident int64
	db.Exclusive(func() {
		for _, b := range db.ResidentBytes() {
			resident += b
		}
	})
	// Budget of 1 byte: everything checkpointed and full should be evicted
	// (only the partial tail segment may stay).
	if resident > 1<<20 {
		t.Fatalf("eviction left %d resident bytes", resident)
	}
	assertSameRows(t, want, rowsOf(t, s, "t"), "reload after eviction")

	// A dirtied table must be pinned until the next checkpoint.
	mustExec(t, s, "UPDATE t SET v = 0 WHERE v = 17")
	want2 := rowsOf(t, s, "t")
	mustExec(t, s, "SELECT count(*) FROM t")
	assertSameRows(t, want2, rowsOf(t, s, "t"), "dirty table intact")
	if err := st.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after update: %v", err)
	}
	assertSameRows(t, want2, rowsOf(t, s, "t"), "after second checkpoint")
	st.Close()
}

// TestColdOpenPrunesWithoutFaulting: after a restart every segment is a
// stub carrying only zone metadata; a selective vectorized scan must answer
// from a subset of partitions, leaving most of the table on disk.
func TestColdOpenPrunesWithoutFaulting(t *testing.T) {
	dir := t.TempDir()
	{
		_, s, st := openStore(t, dir, Options{Sync: SyncNone})
		mustExec(t, s, "CREATE TABLE t (d date, v bigint)")
		for i := 0; i < 5; i++ {
			for j := 0; j < 5000; j++ {
				mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES ('2024-07-%02d', %d)", 10+i, i*5000+j))
			}
		}
		if err := st.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		st.Close()
	}

	db, s, st := openStore(t, dir, Options{Sync: SyncNone})
	defer st.Close()
	db.SetExecMode(pgdb.ExecVectorized)
	var totalBytes int64
	db.Exclusive(func() {
		for _, b := range db.ResidentBytes() {
			totalBytes += b
		}
	})
	if totalBytes != 0 {
		t.Fatalf("cold open should be all stubs, found %d resident bytes", totalBytes)
	}
	res := mustExec(t, s, "SELECT count(*) FROM t WHERE d = '2024-07-12'")
	if res.Rows[0][0].(int64) != 5000 {
		t.Fatalf("pruned count = %v", res.Rows[0][0])
	}
	var after int64
	db.Exclusive(func() {
		for _, b := range db.ResidentBytes() {
			after += b
		}
	})
	// 1/5th of the dates → roughly 1/5th of the segments faulted; anything
	// under half proves zone pruning survived the round-trip.
	full := int64(25000 / 4096 * 40000) // loose scale reference; just bound it
	_ = full
	if after == 0 {
		t.Fatalf("scan should have faulted the matching partition in")
	}
	var segsResident, segsTotal int
	db.Exclusive(func() {
		segsTotal = 25000/pgdb.SegmentSize + 1
	})
	_ = segsResident
	// 5000 matching rows span ≤ 3 segments of 4096; allow 4.
	maxBytes := int64(4) * int64(pgdb.SegmentSize) * 16 * 4
	if after > maxBytes {
		t.Fatalf("pruned cold scan faulted %d bytes (limit %d) of %d segs", after, maxBytes, segsTotal)
	}
}

// TestDifferentialOracle runs a seeded random DML workload against a
// persisted database with periodic checkpoints and restarts, comparing it
// after every restart to a memory-only oracle that saw the same acked
// statements — across all three execution engines.
func TestDifferentialOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			oracle := pgdb.NewDB()
			osess := oracle.NewSession()
			db, s, st := openStore(t, dir, Options{Sync: SyncAlways})

			ddl := "CREATE TABLE t (d date, sym varchar, v bigint, p double precision)"
			mustExec(t, osess, ddl)
			mustExec(t, s, ddl)

			step := func(sql string) {
				mustExec(t, osess, sql)
				mustExec(t, s, sql)
			}
			for i := 0; i < 600; i++ {
				switch r := rng.Intn(10); {
				case r < 6:
					step(fmt.Sprintf("INSERT INTO t VALUES ('2024-07-%02d', 'S%d', %d, %d.25)",
						10+rng.Intn(5), rng.Intn(5), rng.Intn(1000), rng.Intn(100)))
				case r < 8:
					step(fmt.Sprintf("UPDATE t SET v = v + %d WHERE sym = 'S%d'", rng.Intn(10), rng.Intn(5)))
				default:
					step(fmt.Sprintf("DELETE FROM t WHERE v %% 97 = %d", rng.Intn(97)))
				}
				if i%150 == 149 {
					if rng.Intn(2) == 0 {
						if err := st.Checkpoint(); err != nil {
							t.Fatalf("Checkpoint: %v", err)
						}
					}
					st.Close()
					db, s, st = openStore(t, dir, Options{Sync: SyncAlways})
					for _, mode := range []pgdb.ExecMode{pgdb.ExecCompiled, pgdb.ExecInterpreted, pgdb.ExecVectorized} {
						db.SetExecMode(mode)
						assertSameRows(t, rowsOf(t, osess, "t"), rowsOf(t, s, "t"),
							fmt.Sprintf("step %d mode %d", i, mode))
					}
					db.SetExecMode(pgdb.ExecCompiled)
				}
			}
			st.Close()
		})
	}
}

func TestSyncModesAndBatchCommit(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncBatch, SyncNone} {
		dir := t.TempDir()
		_, s, st := openStore(t, dir, Options{Sync: mode})
		mustExec(t, s, "CREATE TABLE t (a bigint)")
		done := make(chan error, 8)
		for g := 0; g < 8; g++ {
			go func(g int) {
				sess := s
				_ = sess
				s2 := stSessionDB(st).NewSession()
				var err error
				for i := 0; i < 25; i++ {
					if _, err = s2.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", g*100+i)); err != nil {
						break
					}
				}
				done <- err
			}(g)
		}
		for g := 0; g < 8; g++ {
			if err := <-done; err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
		}
		got := mustExec(t, s, "SELECT count(*) FROM t").Rows[0][0].(int64)
		if got != 200 {
			t.Fatalf("mode %v: count = %d", mode, got)
		}
		st.Close()

		_, s2, st2 := openStore(t, dir, Options{Sync: mode})
		got2 := mustExec(t, s2, "SELECT count(*) FROM t").Rows[0][0].(int64)
		if got2 != 200 {
			t.Fatalf("mode %v after reopen: count = %d", mode, got2)
		}
		st2.Close()
	}
}

// stSessionDB exposes the store's DB for spawning extra sessions in tests.
func stSessionDB(st *Store) *pgdb.DB { return st.db }

func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{"always": SyncAlways, "batch": SyncBatch, "": SyncBatch, "none": SyncNone} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncMode("bogus"); err == nil {
		t.Fatalf("expected error for bogus mode")
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	vals := []any{nil, int64(0), int64(-5), int64(1) << 62, 3.14159, -0.0, "", "héllo", true, false}
	var buf []byte
	var err error
	for _, v := range vals {
		if buf, err = appendValue(buf, v); err != nil {
			t.Fatalf("append %v: %v", v, err)
		}
	}
	off := 0
	for _, want := range vals {
		var got any
		if got, off, err = readValue(buf, off); err != nil {
			t.Fatalf("read: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round-trip: got %v want %v", got, want)
		}
	}
	if off != len(buf) {
		t.Fatalf("trailing bytes: %d != %d", off, len(buf))
	}
}
