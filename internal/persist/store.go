package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hyperq/internal/pgdb"
)

// On-disk layout:
//
//	dataDir/
//	  CURRENT              → name of the live checkpoint dir ("ckpt-%08d")
//	  wal.log              → records since that checkpoint
//	  ckpt-00000003/
//	    manifest.json      → schema, views, per-segment metadata, LSN
//	    trades/
//	      2024-07-14/      → one dir per date partition ("all" if none)
//	        c0.col c1.col …  one splayed file per column
//
// A checkpoint becomes live only when CURRENT is atomically renamed over;
// anything not referenced by CURRENT is garbage and removed at open.

// Options configures a Store.
type Options struct {
	Dir  string
	Sync SyncMode
	// MemBudget caps resident column-vector bytes; 0 disables eviction.
	MemBudget int64
	// CheckpointBytes triggers an automatic checkpoint once the WAL grows
	// past it; 0 means the 64 MB default. Negative disables auto-checkpoint.
	CheckpointBytes int64
	// Compress enables lightweight per-chunk column encodings (FOR/delta
	// bitpacking, string dictionaries, bool RLE) in checkpoint files. The
	// read path decodes every encoding regardless, so stores with and
	// without Compress open each other's checkpoints.
	Compress bool
	// MMap serves cold chunk reads from read-only memory maps of the column
	// files instead of per-fault pread, decoding string chunks zero-copy.
	// Falls back to file reads when mapping fails.
	MMap bool
}

const defaultCheckpointBytes = 64 << 20

// Store is the durable backend for one pgdb.DB: it implements pgdb.Journal,
// owns the WAL and checkpoints, and drives bounded-memory eviction.
type Store struct {
	db    *pgdb.DB
	opts  Options
	wal   *walWriter
	stats Stats
	fds   *fdCache

	warmMu sync.Mutex
	warmed map[string]bool // column files already streamed for read-ahead

	mu            sync.Mutex
	ckptSeq       uint64
	ckptDir       string // live checkpoint dir name, "" when none
	tables        map[string]*tableState
	checkpointing bool
	broken        error
	failAt        string // checkpoint fault-injection point

	replayed bool
}

// tableState tracks how one table relates to the live checkpoint.
type tableState struct {
	cols     []pgdb.Column
	ckptRows int            // rows covered by the live checkpoint
	segs     []pgdb.SegMeta // checkpoint-time metadata, indexed by segment
	chunks   [][]chunkLoc   // per column, sorted by (SegIdx, StartInSeg)
	dirty    bool           // UPDATE since checkpoint: eviction disabled
	invalid  bool           // DELETE since checkpoint: row numbering moved
}

type chunkLoc struct {
	path string
	ref  chunkRef
}

// Open attaches durable storage rooted at opts.Dir to an (empty) database:
// it restores the catalog from the live checkpoint with every segment
// evicted (cold open does no column I/O), replays the WAL tail, truncates
// any torn record, and installs itself as the database's journal.
func Open(db *pgdb.DB, opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("persist: empty data dir")
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = defaultCheckpointBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{db: db, opts: opts, tables: make(map[string]*tableState), fds: newFDCache()}

	var m *manifest
	cur, err := os.ReadFile(filepath.Join(opts.Dir, "CURRENT"))
	if err == nil {
		name := strings.TrimSpace(string(cur))
		mb, err := os.ReadFile(filepath.Join(opts.Dir, name, "manifest.json"))
		if err != nil {
			return nil, fmt.Errorf("persist: CURRENT points at %s but: %w", name, err)
		}
		m = &manifest{}
		if err := json.Unmarshal(mb, m); err != nil {
			return nil, fmt.Errorf("persist: manifest: %w", err)
		}
		st.ckptSeq = m.Seq
		st.ckptDir = name
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	st.removeStaleCheckpoints()

	var minLSN uint64
	if m != nil {
		minLSN = m.LSN
		if err := st.restoreManifest(m); err != nil {
			return nil, err
		}
	}

	// Replay the WAL tail over the restored catalog, then truncate any torn
	// record so the next append starts on a clean boundary.
	walPath := filepath.Join(opts.Dir, "wal.log")
	applied := 0
	lastLSN, goodSize, err := replayWAL(walPath, minLSN, func(rec walRecord) error {
		applied++
		return st.applyRecord(rec)
	})
	if err != nil {
		return nil, fmt.Errorf("persist: wal replay: %w", err)
	}
	if err := truncateWAL(walPath, goodSize); err != nil {
		return nil, err
	}
	st.replayed = applied > 0

	next := minLSN
	if lastLSN > next {
		next = lastLSN
	}
	st.wal, err = openWAL(walPath, opts.Sync, next+1)
	if err != nil {
		return nil, err
	}

	db.SetJournal(st)
	db.SetAfterStmt(st.maintain)
	return st, nil
}

func (st *Store) restoreManifest(m *manifest) error {
	for _, tm := range m.Tables {
		cols := make([]pgdb.Column, len(tm.Cols))
		for i, c := range tm.Cols {
			cols[i] = pgdb.Column{Name: c.Name, Type: c.Type}
		}
		segs := make([]pgdb.SegMeta, len(tm.Segs))
		for i, sm := range tm.Segs {
			vecs := make([]pgdb.VecMeta, len(sm.Vecs))
			for c, vm := range sm.Vecs {
				minV, err := valFromJSON(vm.Min)
				if err != nil {
					return err
				}
				maxV, err := valFromJSON(vm.Max)
				if err != nil {
					return err
				}
				vecs[c] = pgdb.VecMeta{Kind: vm.Kind, NullCnt: vm.NullCnt, Min: minV, Max: maxV}
			}
			segs[i] = pgdb.SegMeta{N: sm.N, Vecs: vecs}
		}
		ts := &tableState{cols: cols, ckptRows: tm.Rows, segs: segs}
		ts.chunks = make([][]chunkLoc, len(cols))
		for _, p := range tm.Parts {
			pdir := filepath.Join(st.opts.Dir, st.ckptDir, dirNameOf(tm.Name), p.Name)
			for c := range cols {
				path := filepath.Join(pdir, fmt.Sprintf("c%d.col", c))
				refs, err := readColFileDir(path)
				if err != nil {
					return fmt.Errorf("persist: %s: %w", path, err)
				}
				for _, r := range refs {
					ts.chunks[c] = append(ts.chunks[c], chunkLoc{path: path, ref: r})
				}
			}
		}
		for c := range ts.chunks {
			sortChunks(ts.chunks[c])
		}
		st.tables[tm.Name] = ts
		st.db.RestoreTableLazy(tm.Name, cols, segs, st.loaderFor(tm.Name))
		if tm.Sorted != nil || tm.Indexed != nil {
			st.db.RestoreAccessMeta(tm.Name, tm.Sorted, tm.Indexed)
		}
	}
	viewNames := make([]string, 0, len(m.Views))
	for n := range m.Views {
		viewNames = append(viewNames, n)
	}
	sort.Strings(viewNames)
	for _, n := range viewNames {
		if err := st.db.ApplyCreateView(n, m.Views[n]); err != nil {
			return err
		}
	}
	return nil
}

func (st *Store) applyRecord(rec walRecord) error {
	switch rec.typ {
	case recCreateTable:
		name, cols, err := decodeCreateTable(rec.body)
		if err != nil {
			return err
		}
		if err := st.db.ApplyCreateTable(name, cols); err != nil {
			return err
		}
		st.tables[name] = &tableState{cols: cols, chunks: make([][]chunkLoc, len(cols))}
		return nil
	case recDrop:
		name, view, err := decodeDrop(rec.body)
		if err != nil {
			return err
		}
		if err := st.db.ApplyDrop(name, view); err != nil {
			return err
		}
		if !view {
			delete(st.tables, name)
		}
		return nil
	case recCreateView:
		name, sql, err := decodeCreateView(rec.body)
		if err != nil {
			return err
		}
		return st.db.ApplyCreateView(name, sql)
	case recAppend:
		name, rows, err := decodeAppend(rec.body)
		if err != nil {
			return err
		}
		return st.db.ApplyAppend(name, rows)
	case recUpdate:
		name, cells, err := decodeUpdate(rec.body)
		if err != nil {
			return err
		}
		if err := st.db.ApplyUpdate(name, cells); err != nil {
			return err
		}
		if ts := st.tables[name]; ts != nil {
			ts.dirty = true
		}
		return nil
	case recDelete:
		name, removed, err := decodeDelete(rec.body)
		if err != nil {
			return err
		}
		if err := st.db.ApplyDelete(name, removed); err != nil {
			return err
		}
		if ts := st.tables[name]; ts != nil {
			ts.invalid = true
		}
		return nil
	}
	return fmt.Errorf("persist: unknown wal record type %d", rec.typ)
}

// ReplayedChanges reports whether open applied any WAL records — the
// catalog differs from the last checkpoint, so query caches keyed on it
// must be invalidated.
func (st *Store) ReplayedChanges() bool { return st.replayed }

// Close syncs and closes the WAL and drops cached column descriptors. The
// database keeps running in memory; memory maps stay in place because
// zero-copy cells decoded from them may still be referenced.
func (st *Store) Close() error {
	st.fds.closeAll()
	return st.wal.close()
}

// --- pgdb.Journal ---

func (st *Store) appendRec(typ byte, body []byte, err error) error {
	if err != nil {
		return err
	}
	st.mu.Lock()
	if b := st.broken; b != nil {
		st.mu.Unlock()
		return b
	}
	st.mu.Unlock()
	_, werr := st.wal.append(typ, body)
	return werr
}

func (st *Store) JournalCreateTable(name string, cols []pgdb.Column) error {
	if err := st.appendRec(recCreateTable, encodeCreateTable(name, cols), nil); err != nil {
		return err
	}
	st.mu.Lock()
	st.tables[name] = &tableState{cols: cols, chunks: make([][]chunkLoc, len(cols))}
	st.mu.Unlock()
	return nil
}

func (st *Store) JournalDrop(name string, view bool) error {
	if err := st.appendRec(recDrop, encodeDrop(name, view), nil); err != nil {
		return err
	}
	if !view {
		st.mu.Lock()
		delete(st.tables, name)
		st.mu.Unlock()
	}
	return nil
}

func (st *Store) JournalCreateView(name, sql string) error {
	return st.appendRec(recCreateView, encodeCreateView(name, sql), nil)
}

func (st *Store) JournalAppend(table string, rows [][]any) error {
	body, err := encodeAppend(table, rows)
	return st.appendRec(recAppend, body, err)
}

func (st *Store) JournalUpdate(table string, cells []pgdb.CellUpdate) error {
	body, err := encodeUpdate(table, cells)
	if err := st.appendRec(recUpdate, body, err); err != nil {
		return err
	}
	st.mu.Lock()
	if ts := st.tables[table]; ts != nil {
		ts.dirty = true
	}
	st.mu.Unlock()
	return nil
}

func (st *Store) JournalDelete(table string, removed []int) error {
	if err := st.appendRec(recDelete, encodeDelete(table, removed), nil); err != nil {
		return err
	}
	st.mu.Lock()
	if ts := st.tables[table]; ts != nil {
		ts.invalid = true
	}
	st.mu.Unlock()
	return nil
}

// --- segment fault-in ---

func (st *Store) loaderFor(name string) pgdb.SegLoader {
	return func(si int, cols []int) (pgdb.SegmentData, error) {
		st.mu.Lock()
		ts := st.tables[name]
		st.mu.Unlock()
		if ts == nil {
			return pgdb.SegmentData{}, fmt.Errorf("persist: no state for table %s", name)
		}
		return st.loadSegment(ts, si, cols)
	}
}

// loadSegment materializes the requested columns (all when cols is nil) of
// one checkpointed segment. Each column decodes independently from its own
// chunks, so a pruned scan's I/O is proportional to the columns it touches,
// and concurrent faults of different columns never contend on a shared
// descriptor: chunk reads go through the store-wide bounded fd cache, or
// zero-copy through the per-path memory map when MMap is on.
func (st *Store) loadSegment(ts *tableState, si int, cols []int) (pgdb.SegmentData, error) {
	if si >= len(ts.segs) {
		return pgdb.SegmentData{}, fmt.Errorf("persist: segment %d beyond checkpoint", si)
	}
	meta := ts.segs[si]
	sd := pgdb.SegmentData{N: meta.N, Vecs: make([]pgdb.VecData, len(ts.cols))}
	if cols == nil {
		cols = make([]int, len(ts.cols))
		for c := range cols {
			cols[c] = c
		}
	}
	st.stats.SegmentsFaulted.Add(1)
	var buf []byte // chunk read buffer, reused across columns
	for _, c := range cols {
		if c < 0 || c >= len(ts.cols) {
			return sd, fmt.Errorf("persist: segment %d: column %d out of range", si, c)
		}
		vm := meta.Vecs[c]
		dst := pgdb.VecData{
			Kind:    vm.Kind,
			NullCnt: vm.NullCnt,
			Min:     vm.Min,
			Max:     vm.Max,
			Nulls:   make([]uint64, (meta.N+63)/64),
		}
		switch vm.Kind {
		case vkInt:
			dst.Ints = make([]int64, meta.N)
		case vkFloat:
			dst.Floats = make([]float64, meta.N)
		case vkStr:
			dst.Strs = make([]string, meta.N)
		case vkBool:
			dst.Bools = make([]bool, meta.N)
		case vkAny:
			dst.Anys = make([]any, meta.N)
		}
		covered := 0
		for _, loc := range chunksForSeg(ts.chunks[c], si) {
			payload, zeroCopy, err := st.readChunk(loc, &buf)
			if err != nil {
				return sd, err
			}
			if err := decodeChunkInto(&dst, loc.ref.StartInSeg, loc.ref.Rows, payload, zeroCopy); err != nil {
				return sd, err
			}
			st.stats.ChunksDecoded.Add(1)
			covered += loc.ref.Rows
		}
		if covered != meta.N {
			return sd, fmt.Errorf("persist: segment %d column %d: chunks cover %d of %d rows", si, c, covered, meta.N)
		}
		sd.Vecs[c] = dst
		st.stats.ColumnsFaulted.Add(1)
	}
	return sd, nil
}

// readChunk returns one chunk payload: a slice of the path's memory map
// (zeroCopy=true) when MMap is on and the file maps, else a read into the
// caller's reusable buffer through the bounded fd cache.
func (st *Store) readChunk(loc chunkLoc, buf *[]byte) ([]byte, bool, error) {
	if st.opts.MMap {
		if data, ok := mappedFile(loc.path, &st.stats); ok {
			if loc.ref.Offset < 0 || loc.ref.Offset+loc.ref.Size > int64(len(data)) {
				return nil, false, fmt.Errorf("persist: chunk beyond mapped file %s", loc.path)
			}
			st.stats.MMapHits.Add(1)
			return data[loc.ref.Offset : loc.ref.Offset+loc.ref.Size], true, nil
		}
	}
	st.warmFile(loc.path)
	if int64(cap(*buf)) < loc.ref.Size {
		*buf = make([]byte, loc.ref.Size)
	}
	payload := (*buf)[:loc.ref.Size]
	e, err := st.fds.acquire(loc.path)
	if err != nil {
		return nil, false, err
	}
	_, err = e.f.ReadAt(payload, loc.ref.Offset)
	st.fds.release(e)
	if err != nil {
		return nil, false, err
	}
	st.stats.BytesRead.Add(loc.ref.Size)
	return payload, false, nil
}

// mmapPool caches read-only mappings by path for the process lifetime.
// Mappings are deliberately never unmapped: zero-copy string cells decoded
// from them escape into table vectors that can outlive the Store, and a
// checkpoint switch only unlinks superseded files (whose pages stay valid
// under an existing map). Checkpoint sequence numbers only move forward
// within a data dir, so a path that was ever mapped is never rewritten.
var mmapPool = struct {
	mu     sync.Mutex
	m      map[string][]byte
	failed map[string]bool
}{m: make(map[string][]byte), failed: make(map[string]bool)}

// mappedFile returns the cached mapping for path, mapping it on first use.
// A path that failed to map once is not retried (the store falls back to
// file reads for it permanently).
func mappedFile(path string, stats *Stats) ([]byte, bool) {
	mmapPool.mu.Lock()
	if data, ok := mmapPool.m[path]; ok {
		mmapPool.mu.Unlock()
		return data, true
	}
	failed := mmapPool.failed[path]
	mmapPool.mu.Unlock()
	if failed {
		return nil, false
	}
	data, err := mmapFile(path)
	mmapPool.mu.Lock()
	defer mmapPool.mu.Unlock()
	if err != nil {
		mmapPool.failed[path] = true
		return nil, false
	}
	if prev, ok := mmapPool.m[path]; ok {
		// A concurrent fault mapped the same file first; both mappings view
		// identical immutable bytes, ours is simply redundant.
		return prev, true
	}
	mmapPool.m[path] = data
	// Read-ahead: a first chunk access to a partition's column predicts the
	// scan will want the rest of the file shortly.
	madviseWillNeed(data)
	if stats != nil {
		stats.ReadAheads.Add(1)
	}
	return data, true
}

// warmFile streams a column file through the OS page cache in the
// background the first time the pread path touches it — partition-level
// read-ahead, so a parallel chunked scan faulting distinct partitions'
// columns finds warm pages instead of seeking per chunk.
func (st *Store) warmFile(path string) {
	st.warmMu.Lock()
	if st.warmed == nil {
		st.warmed = make(map[string]bool)
	}
	if st.warmed[path] {
		st.warmMu.Unlock()
		return
	}
	st.warmed[path] = true
	st.warmMu.Unlock()
	st.stats.ReadAheads.Add(1)
	go func() {
		f, err := os.Open(path)
		if err != nil {
			return
		}
		defer f.Close()
		buf := make([]byte, 256<<10)
		for {
			if _, err := f.Read(buf); err != nil {
				return
			}
		}
	}()
}

func chunksForSeg(chunks []chunkLoc, si int) []chunkLoc {
	lo := sort.Search(len(chunks), func(i int) bool { return chunks[i].ref.SegIdx >= si })
	hi := lo
	for hi < len(chunks) && chunks[hi].ref.SegIdx == si {
		hi++
	}
	return chunks[lo:hi]
}

// readColFileDir reads only the header and chunk directory of a column
// file — never the data section, so opening a catalog stays proportional to
// the number of chunks, not the number of bytes on disk.
func readColFileDir(path string) ([]chunkRef, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("persist: column header: %w", err)
	}
	if [4]byte(hdr[:4]) != colMagic {
		return nil, fmt.Errorf("persist: bad column file magic")
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	const dirEntry = 4 + 4 + 4 + 8 + 8
	if n < 0 || n > 1<<24 {
		return nil, fmt.Errorf("persist: implausible chunk count %d", n)
	}
	buf := make([]byte, 8+n*dirEntry)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(f, buf[8:]); err != nil {
		return nil, fmt.Errorf("persist: chunk directory: %w", err)
	}
	return readColDir(buf)
}

func sortChunks(chunks []chunkLoc) {
	sort.Slice(chunks, func(i, j int) bool {
		a, b := chunks[i].ref, chunks[j].ref
		if a.SegIdx != b.SegIdx {
			return a.SegIdx < b.SegIdx
		}
		return a.StartInSeg < b.StartInSeg
	})
}

// --- maintenance: auto-checkpoint + eviction ---

func (st *Store) maintain() {
	st.mu.Lock()
	broken := st.broken != nil
	st.mu.Unlock()
	if broken {
		return
	}
	if st.opts.CheckpointBytes > 0 && st.wal.sizeBytes() > st.opts.CheckpointBytes {
		st.Checkpoint() // error already recorded in st.broken
	}
	if st.opts.MemBudget > 0 {
		st.evictToBudget()
	}
}

// evictToBudget drops cold checkpointed segments, oldest partitions first,
// until resident vector bytes fit the budget. Tables touched by UPDATE or
// DELETE since the last checkpoint are pinned until the next one.
func (st *Store) evictToBudget() {
	budget := st.opts.MemBudget
	st.db.Exclusive(func() {
		resident := st.db.ResidentBytes()
		var total int64
		for _, b := range resident {
			total += b
		}
		if total <= budget {
			return
		}
		st.mu.Lock()
		names := make([]string, 0, len(st.tables))
		for n := range st.tables {
			names = append(names, n)
		}
		sort.Strings(names)
		type cand struct {
			name string
			segs int
		}
		var cands []cand
		for _, n := range names {
			ts := st.tables[n]
			if ts.dirty || ts.invalid {
				continue
			}
			if full := ts.ckptRows / pgdb.SegmentSize; full > 0 {
				cands = append(cands, cand{n, full})
			}
		}
		st.mu.Unlock()
		for _, c := range cands {
			for lo := 0; lo < c.segs && total > budget; lo += 64 {
				hi := lo + 64
				if hi > c.segs {
					hi = c.segs
				}
				freed, ncols := st.db.EvictSegments(c.name, lo, hi)
				total -= freed
				if ncols > 0 {
					st.stats.Evictions.Add(int64(ncols))
				}
			}
			if total <= budget {
				break
			}
		}
	})
}

// --- checkpoint ---

// SetFailpoint arms checkpoint fault injection: the next Checkpoint fails
// at the named step ("before-files", "mid-files", "before-manifest",
// "before-current", "before-wal-reset"), leaving the directory exactly as a
// crash there would. Tests reopen the directory afterwards.
func (st *Store) SetFailpoint(name string) {
	st.mu.Lock()
	st.failAt = name
	st.mu.Unlock()
}

// FailWALAfter arms WAL fault injection: once the log would exceed n bytes,
// the append writes only the remaining budget (a torn record) and the store
// fails permanently — simulating a crash mid-append.
func (st *Store) FailWALAfter(n int64) {
	st.wal.mu.Lock()
	st.wal.failAfterBytes = n
	st.wal.mu.Unlock()
}

// WALSize reports the current WAL length in bytes.
func (st *Store) WALSize() int64 { return st.wal.sizeBytes() }

func (st *Store) failpoint(name string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failAt == name {
		st.broken = fmt.Errorf("persist: injected checkpoint failure at %s", name)
		return st.broken
	}
	return nil
}

// Checkpoint writes a full splayed snapshot, switches CURRENT to it, and
// resets the WAL. It runs under the database's exclusive lock, so the
// snapshot and the WAL position are mutually consistent; an acked
// statement is therefore either in the snapshot or ahead of manifest.LSN
// in the log.
func (st *Store) Checkpoint() error {
	st.mu.Lock()
	if st.broken != nil {
		defer st.mu.Unlock()
		return st.broken
	}
	if st.checkpointing {
		st.mu.Unlock()
		return nil
	}
	st.checkpointing = true
	seq := st.ckptSeq + 1
	oldDir := st.ckptDir
	st.mu.Unlock()
	defer func() {
		st.mu.Lock()
		st.checkpointing = false
		st.mu.Unlock()
	}()

	var err error
	st.db.Exclusive(func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("persist: checkpoint snapshot: %v", r)
			}
		}()
		err = st.checkpointLocked(seq, oldDir)
	})
	if err != nil {
		st.mu.Lock()
		if st.broken == nil {
			st.broken = err
		}
		st.mu.Unlock()
	}
	return err
}

func (st *Store) checkpointLocked(seq uint64, oldDir string) error {
	dirName := fmt.Sprintf("ckpt-%08d", seq)
	ckDir := filepath.Join(st.opts.Dir, dirName)
	if err := os.MkdirAll(ckDir, 0o755); err != nil {
		return err
	}
	if err := st.failpoint("before-files"); err != nil {
		return err
	}

	var lsn uint64
	if st.wal != nil {
		lsn = st.wal.lastLSN()
	}
	m := manifest{Seq: seq, LSN: lsn, Views: st.db.SnapshotViews()}
	newStates := make(map[string]*tableState)

	first := true
	for _, name := range st.db.TableNames() {
		cols, segs, ok := st.db.SnapshotTable(name)
		if !ok {
			continue
		}
		nrows := 0
		for _, s := range segs {
			nrows += s.N
		}
		partCol, parts := partitionRanges(cols, segs, nrows)

		tm := manifestTable{Name: name, Rows: nrows, PartCol: partCol}
		if sorted, indexed, ok := st.db.TableAccessMeta(name); ok {
			tm.Sorted, tm.Indexed = sorted, indexed
		}
		for _, c := range cols {
			tm.Cols = append(tm.Cols, manifestCol{Name: c.Name, Type: c.Type})
		}
		ts := &tableState{cols: cols, ckptRows: nrows}
		ts.chunks = make([][]chunkLoc, len(cols))
		ts.segs = make([]pgdb.SegMeta, len(segs))
		for si, s := range segs {
			sm := manifestSeg{N: s.N}
			vecs := make([]pgdb.VecMeta, len(s.Vecs))
			for c, v := range s.Vecs {
				sm.Vecs = append(sm.Vecs, manifestVec{
					Kind: v.Kind, NullCnt: v.NullCnt,
					Min: valToJSON(v.Min), Max: valToJSON(v.Max),
				})
				vecs[c] = pgdb.VecMeta{Kind: v.Kind, NullCnt: v.NullCnt, Min: v.Min, Max: v.Max}
			}
			tm.Segs = append(tm.Segs, sm)
			ts.segs[si] = pgdb.SegMeta{N: s.N, Vecs: vecs}
		}

		tdir := filepath.Join(ckDir, dirNameOf(name))
		for _, p := range parts {
			pdir := filepath.Join(tdir, p.name)
			if err := os.MkdirAll(pdir, 0o755); err != nil {
				return err
			}
			tm.Parts = append(tm.Parts, manifestPart{Name: p.name, Key: p.key, Start: p.start, Rows: p.rows})
			for c := range cols {
				refs, payloads, err := buildColChunks(segs, c, p.start, p.start+p.rows, st.opts.Compress)
				if err != nil {
					return err
				}
				path := filepath.Join(pdir, fmt.Sprintf("c%d.col", c))
				if err := writeFileSync(path, encodeColFile(refs, payloads)); err != nil {
					return err
				}
				for _, r := range refs {
					ts.chunks[c] = append(ts.chunks[c], chunkLoc{path: path, ref: r})
				}
				if first {
					first = false
					if err := st.failpoint("mid-files"); err != nil {
						return err
					}
				}
			}
		}
		for c := range ts.chunks {
			sortChunks(ts.chunks[c])
		}
		m.Tables = append(m.Tables, tm)
		newStates[name] = ts
	}

	if err := st.failpoint("before-manifest"); err != nil {
		return err
	}
	mb, err := json.MarshalIndent(&m, "", " ")
	if err != nil {
		return err
	}
	if err := writeFileSync(filepath.Join(ckDir, "manifest.json"), mb); err != nil {
		return err
	}
	if err := st.failpoint("before-current"); err != nil {
		return err
	}

	// The atomic switch: once CURRENT names the new dir, recovery uses it.
	curTmp := filepath.Join(st.opts.Dir, "CURRENT.tmp")
	if err := writeFileSync(curTmp, []byte(dirName+"\n")); err != nil {
		return err
	}
	if err := os.Rename(curTmp, filepath.Join(st.opts.Dir, "CURRENT")); err != nil {
		return err
	}
	syncDir(st.opts.Dir)
	if err := st.failpoint("before-wal-reset"); err != nil {
		return err
	}
	if st.wal != nil {
		if err := st.wal.reset(); err != nil {
			return err
		}
	}

	st.mu.Lock()
	st.ckptSeq = seq
	st.ckptDir = dirName
	st.tables = newStates
	st.mu.Unlock()
	for name := range newStates {
		st.db.SetTableLoader(name, st.loaderFor(name))
	}
	if oldDir != "" && oldDir != dirName {
		os.RemoveAll(filepath.Join(st.opts.Dir, oldDir))
	}
	return nil
}

// buildColChunks slices column c of the snapshot into the chunks that fall
// inside partition rows [pstart, pend).
func buildColChunks(segs []pgdb.SegmentData, c, pstart, pend int, compress bool) ([]chunkRef, [][]byte, error) {
	var refs []chunkRef
	var payloads [][]byte
	for si := pstart / pgdb.SegmentSize; si*pgdb.SegmentSize < pend && si < len(segs); si++ {
		segBase := si * pgdb.SegmentSize
		lo := pstart - segBase
		if lo < 0 {
			lo = 0
		}
		hi := pend - segBase
		if hi > segs[si].N {
			hi = segs[si].N
		}
		if hi <= lo {
			continue
		}
		payload, err := encodeChunk(segs[si].Vecs[c], segs[si].N, lo, hi, compress)
		if err != nil {
			return nil, nil, err
		}
		refs = append(refs, chunkRef{SegIdx: si, StartInSeg: lo, Rows: hi - lo})
		payloads = append(payloads, payload)
	}
	return refs, payloads, nil
}

// --- date partitioning ---

type partRange struct {
	name  string
	key   string
	start int
	rows  int
}

// partitionRanges finds the table's date-partition column — the first
// "date" column whose values are non-null and non-decreasing in insertion
// order — and splits the row space at value changes, kdb+-style. Tables
// without such a column (or with pathologically many distinct dates) get a
// single "all" partition.
func partitionRanges(cols []pgdb.Column, segs []pgdb.SegmentData, nrows int) (int, []partRange) {
	if nrows == 0 {
		return -1, nil
	}
	single := func() (int, []partRange) {
		return -1, []partRange{{name: "all", start: 0, rows: nrows}}
	}
	dateCol := -1
	for c, col := range cols {
		if col.Type == "date" {
			dateCol = c
			break
		}
	}
	if dateCol < 0 {
		return single()
	}
	const maxParts = 4096
	var parts []partRange
	var prev any
	base := 0
	start := 0
	for _, s := range segs {
		v := s.Vecs[dateCol]
		// dates live either as ISO strings (which sort chronologically) or
		// as day numbers; anything else falls back to one partition.
		if s.N > 0 && (v.NullCnt != 0 || (v.Kind != vkInt && v.Kind != vkStr)) {
			return single()
		}
		for i := 0; i < s.N; i++ {
			var d any
			if v.Kind == vkInt {
				d = v.Ints[i]
			} else {
				d = v.Strs[i]
			}
			if prev != nil && dateLess(d, prev) {
				return single() // out of order: not partitionable
			}
			if d != prev {
				if prev != nil {
					parts = append(parts, partRange{
						name: dateName(prev), key: dateKey(prev),
						start: start, rows: base + i - start,
					})
					if len(parts) >= maxParts {
						return single()
					}
					start = base + i
				}
				prev = d
			}
		}
		base += s.N
	}
	parts = append(parts, partRange{
		name: dateName(prev), key: dateKey(prev),
		start: start, rows: nrows - start,
	})
	return dateCol, parts
}

func dateLess(a, b any) bool {
	switch x := a.(type) {
	case int64:
		y, ok := b.(int64)
		return ok && x < y
	case string:
		y, ok := b.(string)
		return ok && x < y
	}
	return false
}

func dateKey(d any) string {
	switch x := d.(type) {
	case int64:
		return strconv.FormatInt(x, 10)
	case string:
		return x
	}
	return ""
}

// dateName renders a date cell as a directory name: ISO strings pass
// through (hex-escaped if unsafe), day numbers since 2000-01-01 render as
// ISO, e.g. 8961 → "2024-07-14".
func dateName(d any) string {
	switch x := d.(type) {
	case string:
		return dirNameSafe(x)
	case int64:
		return time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC).
			AddDate(0, 0, int(x)).Format("2006-01-02")
	}
	return "all"
}

func dirNameSafe(name string) string {
	for _, r := range name {
		if !(r == '_' || r == '-' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return "d" + fmt.Sprintf("%x", []byte(name))
		}
	}
	if name == "" {
		return "d-empty"
	}
	return name
}

// --- small file helpers ---

func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}

// dirNameOf maps a table name to a safe directory name (SQL identifiers
// are almost always already safe; anything else is hex-escaped).
func dirNameOf(name string) string {
	safe := true
	for _, r := range name {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= '0' && r <= '9') {
			safe = false
			break
		}
	}
	if safe && name != "" {
		return name
	}
	return "t" + fmt.Sprintf("%x", []byte(name))
}

func (st *Store) removeStaleCheckpoints() {
	entries, err := os.ReadDir(st.opts.Dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "ckpt-") && e.Name() != st.ckptDir {
			os.RemoveAll(filepath.Join(st.opts.Dir, e.Name()))
		}
	}
	os.Remove(filepath.Join(st.opts.Dir, "CURRENT.tmp"))
}

// --- manifest ---

type manifest struct {
	Seq    uint64            `json:"seq"`
	LSN    uint64            `json:"lsn"`
	Tables []manifestTable   `json:"tables,omitempty"`
	Views  map[string]string `json:"views,omitempty"`
}

type manifestTable struct {
	Name    string         `json:"name"`
	Cols    []manifestCol  `json:"cols"`
	Rows    int            `json:"rows"`
	PartCol int            `json:"part_col"`
	Parts   []manifestPart `json:"parts,omitempty"`
	Segs    []manifestSeg  `json:"segs,omitempty"`
	// Sorted/Indexed record each column's access paths at checkpoint time:
	// Sorted columns restore their sorted attribute without a scan, Indexed
	// columns are rebuilt on the first qualifying lookup after a cold open.
	// Absent in old manifests (nil → all false), which is always sound.
	Sorted  []bool `json:"sorted,omitempty"`
	Indexed []bool `json:"indexed,omitempty"`
}

type manifestCol struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type manifestPart struct {
	Name  string `json:"name"`
	Key   string `json:"key,omitempty"`
	Start int    `json:"start"`
	Rows  int    `json:"rows"`
}

type manifestSeg struct {
	N    int           `json:"n"`
	Vecs []manifestVec `json:"vecs"`
}

type manifestVec struct {
	Kind    uint8 `json:"kind"`
	NullCnt int   `json:"nulls"`
	Min     *jval `json:"min,omitempty"`
	Max     *jval `json:"max,omitempty"`
}

// jval is a tagged JSON value: int64 travels as a string so it survives
// JSON's float64 round-trip losslessly.
type jval struct {
	T string `json:"t"`
	V string `json:"v,omitempty"`
}

func valToJSON(v any) *jval {
	switch x := v.(type) {
	case nil:
		return nil
	case int64:
		return &jval{T: "i", V: strconv.FormatInt(x, 10)}
	case float64:
		return &jval{T: "f", V: strconv.FormatFloat(x, 'g', -1, 64)}
	case string:
		return &jval{T: "s", V: x}
	case bool:
		if x {
			return &jval{T: "b", V: "1"}
		}
		return &jval{T: "b", V: "0"}
	}
	return nil // unreachable for the storable domain
}

func valFromJSON(j *jval) (any, error) {
	if j == nil {
		return nil, nil
	}
	switch j.T {
	case "i":
		return strconv.ParseInt(j.V, 10, 64)
	case "f":
		return strconv.ParseFloat(j.V, 64)
	case "s":
		return j.V, nil
	case "b":
		return j.V == "1", nil
	}
	return nil, fmt.Errorf("persist: unknown value tag %q", j.T)
}
