package persist

import (
	"os"
	"sync"
)

// fdCacheSize bounds the open descriptors the read path holds. Column
// faults under a tight memory budget reopen the same few checkpoint files
// over and over; caching the descriptors removes the per-fault open/close
// syscall pair without letting a wide table exhaust the process fd limit.
const fdCacheSize = 16

// fdCache is a bounded, refcounted cache of read-only column files shared
// by every concurrent fault. Entries are pinned while a read is in flight
// (refs > 0) and evicted LRU among the unpinned when the cache is full; if
// every slot is pinned the overflow descriptor is returned uncached and
// closed on release.
type fdCache struct {
	mu      sync.Mutex
	entries map[string]*fdEntry
	tick    int64
}

type fdEntry struct {
	f        *os.File
	refs     int
	lastUsed int64
	uncached bool
}

func newFDCache() *fdCache {
	return &fdCache{entries: make(map[string]*fdEntry)}
}

// acquire returns an open descriptor for path, pinned until release.
func (c *fdCache) acquire(path string) (*fdEntry, error) {
	c.mu.Lock()
	if e, ok := c.entries[path]; ok {
		e.refs++
		c.tick++
		e.lastUsed = c.tick
		c.mu.Unlock()
		return e, nil
	}
	c.mu.Unlock()

	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	// A concurrent fault may have cached the same path while we were in
	// os.Open; join its entry and drop our duplicate descriptor.
	if e, ok := c.entries[path]; ok {
		f.Close()
		e.refs++
		c.tick++
		e.lastUsed = c.tick
		return e, nil
	}
	if len(c.entries) >= fdCacheSize && !c.evictOneLocked() {
		// Every cached descriptor is pinned by an in-flight read: hand out
		// an uncached one that closes on release.
		return &fdEntry{f: f, refs: 1, uncached: true}, nil
	}
	c.tick++
	e := &fdEntry{f: f, refs: 1, lastUsed: c.tick}
	c.entries[path] = e
	return e, nil
}

// evictOneLocked drops the least-recently-used unpinned entry.
func (c *fdCache) evictOneLocked() bool {
	var victimPath string
	var victim *fdEntry
	for p, e := range c.entries {
		if e.refs > 0 {
			continue
		}
		if victim == nil || e.lastUsed < victim.lastUsed {
			victim, victimPath = e, p
		}
	}
	if victim == nil {
		return false
	}
	victim.f.Close()
	delete(c.entries, victimPath)
	return true
}

// release unpins an entry returned by acquire.
func (c *fdCache) release(e *fdEntry) {
	if e.uncached {
		e.f.Close()
		return
	}
	c.mu.Lock()
	e.refs--
	c.mu.Unlock()
}

// closeAll closes every unpinned descriptor; pinned ones close on release.
// The cache stays usable afterwards.
func (c *fdCache) closeAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for p, e := range c.entries {
		if e.refs == 0 {
			e.f.Close()
			delete(c.entries, p)
		}
	}
}
