package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"hyperq/internal/pgdb"
)

// Write-ahead log. Every DML/DDL statement on a permanent relation appends
// one record before the statement acknowledges. Record framing:
//
//	u32 len | u32 crc32(payload) | payload
//	payload: u64 lsn | u8 type | body
//
// Replay-on-open reads sequentially until the first short read or CRC
// mismatch — a torn tail from a crash mid-append — and truncates there.
// LSNs are monotonic across checkpoints (the log is reset after a
// checkpoint but the sequence continues), so replay filters records with
// lsn <= the manifest's lsn and stays idempotent even when a crash lands
// between the CURRENT switch and the log reset.

// SyncMode controls when WAL appends reach stable storage.
type SyncMode int

const (
	// SyncAlways fsyncs on every append before acknowledging.
	SyncAlways SyncMode = iota
	// SyncBatch group-commits: concurrent appenders share one fsync —
	// each append still waits for a sync covering its record, but a
	// single syscall can cover many records.
	SyncBatch
	// SyncNone never fsyncs (crash may lose acked statements).
	SyncNone
)

// ParseSyncMode maps the -wal-sync flag values to a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch", "":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("persist: unknown wal sync mode %q (want always, batch or none)", s)
}

const (
	recCreateTable byte = iota + 1
	recDrop
	recCreateView
	recAppend
	recUpdate
	recDelete
)

type walRecord struct {
	lsn  uint64
	typ  byte
	body []byte
}

type walWriter struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	nextLSN uint64
	size    int64

	mode SyncMode
	// group-commit state (SyncBatch)
	cond        *sync.Cond
	syncing     bool
	appendedLSN uint64 // highest LSN written to the OS
	syncedLSN   uint64 // highest LSN known durable

	// fault injection: once cumulative bytes written would exceed
	// failAfterBytes, write only the remaining budget (a torn record)
	// and fail permanently — simulating a crash mid-append.
	failAfterBytes int64 // < 0: disabled
	failed         error
}

func openWAL(path string, mode SyncMode, nextLSN uint64) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &walWriter{
		f:              f,
		path:           path,
		nextLSN:        nextLSN,
		size:           st.Size(),
		mode:           mode,
		failAfterBytes: -1,
	}
	w.cond = sync.NewCond(&w.mu)
	if nextLSN > 0 {
		w.appendedLSN = nextLSN - 1
		w.syncedLSN = nextLSN - 1
	}
	return w, nil
}

// append frames, writes and (per mode) syncs one record. Returns its LSN.
func (w *walWriter) append(typ byte, body []byte) (uint64, error) {
	payload := make([]byte, 0, 9+len(body))
	w.mu.Lock()
	if w.failed != nil {
		w.mu.Unlock()
		return 0, w.failed
	}
	lsn := w.nextLSN
	w.nextLSN++
	payload = binary.LittleEndian.AppendUint64(payload, lsn)
	payload = append(payload, typ)
	payload = append(payload, body...)
	rec := make([]byte, 0, 8+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)

	if w.failAfterBytes >= 0 && w.size+int64(len(rec)) > w.failAfterBytes {
		// torn write: emit only the byte budget left, then die.
		keep := w.failAfterBytes - w.size
		if keep < 0 {
			keep = 0
		}
		if keep > 0 {
			w.f.Write(rec[:keep])
			w.f.Sync()
			w.size += keep
		}
		w.failed = fmt.Errorf("persist: injected wal failure at %d bytes", w.failAfterBytes)
		w.mu.Unlock()
		return 0, w.failed
	}

	if _, err := w.f.Write(rec); err != nil {
		w.failed = err
		w.mu.Unlock()
		return 0, err
	}
	w.size += int64(len(rec))
	w.appendedLSN = lsn

	switch w.mode {
	case SyncNone:
		w.mu.Unlock()
		return lsn, nil
	case SyncAlways:
		err := w.f.Sync()
		if err != nil {
			w.failed = err
		} else {
			w.syncedLSN = lsn
		}
		w.mu.Unlock()
		return lsn, err
	}

	// SyncBatch group commit: wait until some syncer covers our LSN; if
	// nobody is syncing, become the syncer for everything appended so far.
	for w.syncedLSN < lsn && w.failed == nil {
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.syncing = true
		high := w.appendedLSN
		w.mu.Unlock()
		err := w.f.Sync()
		w.mu.Lock()
		w.syncing = false
		if err != nil {
			w.failed = err
		} else if high > w.syncedLSN {
			w.syncedLSN = high
		}
		w.cond.Broadcast()
	}
	err := w.failed
	w.mu.Unlock()
	return lsn, err
}

// lastLSN reports the most recently assigned LSN (0 if none ever).
func (w *walWriter) lastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

func (w *walWriter) sizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// reset truncates the log after a checkpoint made its contents redundant.
// The LSN sequence keeps counting.
func (w *walWriter) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	if err := w.f.Truncate(0); err != nil {
		w.failed = err
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		w.failed = err
		return err
	}
	w.size = 0
	return w.f.Sync()
}

func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// replayWAL scans a log, invoking apply for every intact record with
// lsn > minLSN. It returns the highest LSN seen (0 if none) and the byte
// offset of the first torn or corrupt record, which the caller truncates
// to so the next append starts on a clean tail.
func replayWAL(path string, minLSN uint64, apply func(walRecord) error) (lastLSN uint64, goodSize int64, err error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	off := 0
	for {
		if off+8 > len(b) {
			break
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		crc := binary.LittleEndian.Uint32(b[off+4:])
		if n < 9 || off+8+n > len(b) {
			break // torn tail
		}
		payload := b[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt tail
		}
		rec := walRecord{
			lsn:  binary.LittleEndian.Uint64(payload),
			typ:  payload[8],
			body: payload[9:],
		}
		off += 8 + n
		if rec.lsn > lastLSN {
			lastLSN = rec.lsn
		}
		if rec.lsn > minLSN {
			if err := apply(rec); err != nil {
				return lastLSN, int64(off), err
			}
		}
	}
	return lastLSN, int64(off), nil
}

// truncateWAL drops a torn tail in place.
func truncateWAL(path string, goodSize int64) error {
	st, err := os.Stat(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if st.Size() <= goodSize {
		return nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(goodSize); err != nil {
		return err
	}
	return f.Sync()
}

// --- record bodies ---

func encodeCreateTable(name string, cols []pgdb.Column) []byte {
	b := appendString(nil, name)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cols)))
	for _, c := range cols {
		b = appendString(b, c.Name)
		b = appendString(b, c.Type)
	}
	return b
}

func decodeCreateTable(b []byte) (string, []pgdb.Column, error) {
	name, off, err := readString(b, 0)
	if err != nil {
		return "", nil, err
	}
	if off+4 > len(b) {
		return "", nil, fmt.Errorf("persist: truncated create_table record")
	}
	n := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	cols := make([]pgdb.Column, n)
	for i := range cols {
		if cols[i].Name, off, err = readString(b, off); err != nil {
			return "", nil, err
		}
		if cols[i].Type, off, err = readString(b, off); err != nil {
			return "", nil, err
		}
	}
	return name, cols, nil
}

func encodeDrop(name string, view bool) []byte {
	b := appendString(nil, name)
	if view {
		return append(b, 1)
	}
	return append(b, 0)
}

func decodeDrop(b []byte) (string, bool, error) {
	name, off, err := readString(b, 0)
	if err != nil {
		return "", false, err
	}
	if off >= len(b) {
		return "", false, fmt.Errorf("persist: truncated drop record")
	}
	return name, b[off] != 0, nil
}

func encodeCreateView(name, sql string) []byte {
	return appendString(appendString(nil, name), sql)
}

func decodeCreateView(b []byte) (string, string, error) {
	name, off, err := readString(b, 0)
	if err != nil {
		return "", "", err
	}
	sql, _, err := readString(b, off)
	return name, sql, err
}

func encodeAppend(table string, rows [][]any) ([]byte, error) {
	b := appendString(nil, table)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(rows)))
	ncols := 0
	if len(rows) > 0 {
		ncols = len(rows[0])
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(ncols))
	var err error
	for _, r := range rows {
		for _, cell := range r {
			if b, err = appendValue(b, cell); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

func decodeAppend(b []byte) (string, [][]any, error) {
	table, off, err := readString(b, 0)
	if err != nil {
		return "", nil, err
	}
	if off+8 > len(b) {
		return "", nil, fmt.Errorf("persist: truncated append record")
	}
	nrows := int(binary.LittleEndian.Uint32(b[off:]))
	ncols := int(binary.LittleEndian.Uint32(b[off+4:]))
	off += 8
	rows := make([][]any, nrows)
	for i := range rows {
		rows[i] = make([]any, ncols)
		for c := 0; c < ncols; c++ {
			if rows[i][c], off, err = readValue(b, off); err != nil {
				return "", nil, err
			}
		}
	}
	return table, rows, nil
}

func encodeUpdate(table string, cells []pgdb.CellUpdate) ([]byte, error) {
	b := appendString(nil, table)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cells)))
	var err error
	for _, c := range cells {
		b = binary.LittleEndian.AppendUint32(b, uint32(c.Row))
		b = binary.LittleEndian.AppendUint32(b, uint32(c.Col))
		if b, err = appendValue(b, c.Val); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func decodeUpdate(b []byte) (string, []pgdb.CellUpdate, error) {
	table, off, err := readString(b, 0)
	if err != nil {
		return "", nil, err
	}
	if off+4 > len(b) {
		return "", nil, fmt.Errorf("persist: truncated update record")
	}
	n := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	cells := make([]pgdb.CellUpdate, n)
	for i := range cells {
		if off+8 > len(b) {
			return "", nil, fmt.Errorf("persist: truncated update record")
		}
		cells[i].Row = int(binary.LittleEndian.Uint32(b[off:]))
		cells[i].Col = int(binary.LittleEndian.Uint32(b[off+4:]))
		off += 8
		if cells[i].Val, off, err = readValue(b, off); err != nil {
			return "", nil, err
		}
	}
	return table, cells, nil
}

func encodeDelete(table string, removed []int) []byte {
	b := appendString(nil, table)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(removed)))
	for _, r := range removed {
		b = binary.LittleEndian.AppendUint32(b, uint32(r))
	}
	return b
}

func decodeDelete(b []byte) (string, []int, error) {
	table, off, err := readString(b, 0)
	if err != nil {
		return "", nil, err
	}
	if off+4 > len(b) {
		return "", nil, fmt.Errorf("persist: truncated delete record")
	}
	n := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+n*4 > len(b) {
		return "", nil, fmt.Errorf("persist: truncated delete record")
	}
	removed := make([]int, n)
	for i := range removed {
		removed[i] = int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
	}
	return table, removed, nil
}

// syncWait is a tiny helper for tests that want the batch syncer drained.
func (w *walWriter) syncWait(d time.Duration) {
	deadline := time.Now().Add(d)
	w.mu.Lock()
	for w.syncing && time.Now().Before(deadline) {
		w.mu.Unlock()
		time.Sleep(100 * time.Microsecond)
		w.mu.Lock()
	}
	w.mu.Unlock()
}
