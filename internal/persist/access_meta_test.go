package persist

import (
	"fmt"
	"testing"

	"hyperq/internal/pgdb"
)

// TestAccessMetaRoundTrip: sorted attributes and index hints survive a
// checkpoint and cold reopen. The reopened database is left at the default
// index row threshold — far above this table's size — so the only way a
// hash index can build after restart is the manifest's hint, and the only
// way a range scan can hit an access path is the restored sorted attribute.
func TestAccessMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, s, st := openStore(t, dir, Options{Sync: SyncAlways})
	db.SetExecMode(pgdb.ExecVectorized)
	db.SetIndexMinRows(0)
	mustExec(t, s, "CREATE TABLE kv (k bigint, s varchar, v bigint)")
	for lo := 0; lo < 600; lo += 200 {
		sql := "INSERT INTO kv VALUES "
		for i := lo; i < lo+200; i++ {
			if i > lo {
				sql += ","
			}
			// k ascending keeps its sorted attribute; s cycles so it is
			// unsorted and the point lookup below must build a hash index
			sql += fmt.Sprintf("(%d,'s%d',%d)", i, i%7, i*3)
		}
		mustExec(t, s, sql)
	}
	mustExec(t, s, "SELECT count(*) FROM kv WHERE s = 's3'")
	if db.IndexStats().Builds.Load() == 0 {
		t.Fatalf("seed lookup did not build an index")
	}
	wantPoint := mustExec(t, s, "SELECT count(*) FROM kv WHERE s = 's3'").Rows[0][0]
	wantRange := mustExec(t, s, "SELECT count(*) FROM kv WHERE k >= 550").Rows[0][0]
	wantRows := rowsOf(t, s, "kv")
	if err := st.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, s2, st2 := openStore(t, dir, Options{Sync: SyncAlways})
	defer st2.Close()
	db2.SetExecMode(pgdb.ExecVectorized)
	stats := db2.IndexStats()

	// restored sorted attribute answers the range predicate with no build
	if got := mustExec(t, s2, "SELECT count(*) FROM kv WHERE k >= 550").Rows[0][0]; got != wantRange {
		t.Fatalf("cold range count = %v, want %v", got, wantRange)
	}
	if stats.Hits.Load() == 0 {
		t.Fatalf("range scan after reopen did not hit the restored sorted attribute")
	}
	if stats.Builds.Load() != 0 {
		t.Fatalf("range scan built an index (builds=%d)", stats.Builds.Load())
	}

	// the hint rebuilds the hash index even though 600 rows is far below
	// the default threshold
	if got := mustExec(t, s2, "SELECT count(*) FROM kv WHERE s = 's3'").Rows[0][0]; got != wantPoint {
		t.Fatalf("cold point count = %v, want %v", got, wantPoint)
	}
	if stats.Builds.Load() != 1 {
		t.Fatalf("hinted point lookup builds = %d, want 1", stats.Builds.Load())
	}

	// incremental maintenance on the rebuilt index: one more matching row,
	// no rebuild
	mustExec(t, s2, "INSERT INTO kv VALUES (600,'s3',1800)")
	got := mustExec(t, s2, "SELECT count(*) FROM kv WHERE s = 's3'").Rows[0][0]
	if got != wantPoint.(int64)+1 {
		t.Fatalf("post-insert point count = %v, want %v", got, wantPoint.(int64)+1)
	}
	if stats.Builds.Load() != 1 {
		t.Fatalf("insert forced a rebuild (builds=%d)", stats.Builds.Load())
	}

	// full-table parity across every engine
	for _, mode := range []pgdb.ExecMode{pgdb.ExecCompiled, pgdb.ExecInterpreted, pgdb.ExecVectorized} {
		db2.SetExecMode(mode)
		got := rowsOf(t, s2, "kv")
		assertSameRows(t, wantRows, got[:len(wantRows)], fmt.Sprintf("mode %d", mode))
	}
}
