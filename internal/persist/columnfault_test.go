package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hyperq/internal/pgdb"
)

// loadWideTable builds an 8-column table spread over several segments and
// two date partitions, checkpoints it, and closes the store. c1 alternates
// 0/1 (zone-indecisive everywhere), the others are distinct per column so a
// decode mix-up can't go unnoticed.
func loadWideTable(t *testing.T, dir string, opts Options) [][]any {
	t.Helper()
	opts.Dir = dir
	db := pgdb.NewDB()
	st, err := Open(db, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE w (d date, c1 bigint, c2 bigint, c3 double precision,
		c4 varchar, c5 boolean, c6 bigint, c7 varchar)`)
	for day := 0; day < 2; day++ {
		for j := 0; j < 5000; j++ {
			mustExec(t, s, fmt.Sprintf(
				"INSERT INTO w VALUES ('2024-07-%02d', %d, %d, %d.5, 'sym%d', %v, %d, 'x%d')",
				14+day, j%2, j, j, j%5, j%3 == 0, j*7, j))
		}
	}
	want := rowsOf(t, s, "w")
	if err := st.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return want
}

// TestColumnGranularFaultStats: a pruned cold aggregate reading k of the
// table's N columns performs exactly k column faults per scanned segment —
// the predicate faults only its own column, the fused aggregate only the
// aggregated one — and a zone-skipped predicate faults nothing at all.
func TestColumnGranularFaultStats(t *testing.T) {
	for _, mm := range []bool{false, true} {
		t.Run(fmt.Sprintf("mmap=%v", mm), func(t *testing.T) {
			dir := t.TempDir()
			loadWideTable(t, dir, Options{Sync: SyncNone})

			db := pgdb.NewDB()
			st, err := Open(db, Options{Dir: dir, Sync: SyncNone, MMap: mm})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer st.Close()
			db.SetExecMode(pgdb.ExecVectorized)
			s := db.NewSession()
			stats := st.Stats()

			// Zone-map miss: no partition holds that date, so the whole scan
			// answers from stub metadata with zero I/O.
			res := mustExec(t, s, "SELECT count(*) FROM w WHERE d = '2031-01-01'")
			if res.Rows[0][0].(int64) != 0 {
				t.Fatalf("phantom rows: %v", res.Rows[0][0])
			}
			if snap := stats.Snapshot(); snap.SegmentsFaulted != 0 || snap.ColumnsFaulted != 0 {
				t.Fatalf("zone-skipped scan faulted: %+v", snap)
			}

			// Pruned aggregate: WHERE touches c1, SUM touches c2. 10000 rows
			// = 3 segments; c1's zones (0..1) are indecisive everywhere, so
			// the scan faults exactly columns {c1, c2} × 3 segments of the
			// 8-column table.
			res = mustExec(t, s, "SELECT sum(c2) FROM w WHERE c1 = 1")
			wantSum := int64(0)
			for j := 0; j < 5000; j++ {
				if j%2 == 1 {
					wantSum += int64(j) * 2 // both days
				}
			}
			if res.Rows[0][0].(int64) != wantSum {
				t.Fatalf("sum = %v, want %d", res.Rows[0][0], wantSum)
			}
			snap := stats.Snapshot()
			segs := (10000 + pgdb.SegmentSize - 1) / pgdb.SegmentSize
			if snap.ColumnsFaulted != int64(2*segs) {
				t.Fatalf("pruned scan faulted %d columns, want %d (2 cols × %d segs)",
					snap.ColumnsFaulted, 2*segs, segs)
			}
			if snap.ChunksDecoded == 0 {
				t.Fatalf("no chunks decoded: %+v", snap)
			}
			if mm {
				if snap.MMapHits == 0 || snap.BytesRead != 0 {
					t.Fatalf("mmap run should serve all chunks zero-copy: %+v", snap)
				}
			} else {
				if snap.BytesRead == 0 || snap.MMapHits != 0 {
					t.Fatalf("pread run counters off: %+v", snap)
				}
			}

			// Re-running the same query faults nothing: both columns resident.
			mustExec(t, s, "SELECT sum(c2) FROM w WHERE c1 = 1")
			if again := stats.Snapshot(); again.ColumnsFaulted != snap.ColumnsFaulted {
				t.Fatalf("warm rerun faulted %d more columns",
					again.ColumnsFaulted-snap.ColumnsFaulted)
			}
		})
	}
}

// TestPartialResidencyCorrectness: after a column-granular fault leaves a
// segment split between resident and stub columns, row-oriented access
// (SELECT *) must materialize the rest and see exactly the original rows.
func TestPartialResidencyCorrectness(t *testing.T) {
	dir := t.TempDir()
	want := loadWideTable(t, dir, Options{Sync: SyncNone, Compress: true})

	db := pgdb.NewDB()
	st, err := Open(db, Options{Dir: dir, Sync: SyncNone, MMap: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st.Close()
	db.SetExecMode(pgdb.ExecVectorized)
	s := db.NewSession()

	mustExec(t, s, "SELECT sum(c2) FROM w WHERE c1 = 1") // partial residency
	assertSameRows(t, want, rowsOf(t, s, "w"), "full scan over partial segments")

	for _, mode := range []pgdb.ExecMode{pgdb.ExecCompiled, pgdb.ExecInterpreted} {
		db.SetExecMode(mode)
		assertSameRows(t, want, rowsOf(t, s, "w"), fmt.Sprintf("mode %d", mode))
	}
}

// TestCompressedCheckpointRoundTrip writes the same data set with and
// without chunk compression and requires (a) identical query results either
// way, including from a store whose own Compress option differs from the
// writer's, and (b) a strictly smaller on-disk footprint compressed.
func TestCompressedCheckpointRoundTrip(t *testing.T) {
	dirRaw, dirComp := t.TempDir(), t.TempDir()
	want := loadWideTable(t, dirRaw, Options{Sync: SyncNone})
	wantC := loadWideTable(t, dirComp, Options{Sync: SyncNone, Compress: true})
	assertSameRows(t, want, wantC, "pre-checkpoint")

	sizeOf := func(dir string) int64 {
		var total int64
		filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
			if err == nil && !info.IsDir() && strings.HasSuffix(p, ".col") {
				total += info.Size()
			}
			return nil
		})
		return total
	}
	raw, comp := sizeOf(dirRaw), sizeOf(dirComp)
	if comp >= raw {
		t.Fatalf("compressed checkpoint %d B not smaller than raw %d B", comp, raw)
	}

	// A non-compressing, non-mmap store reads the compressed checkpoint.
	for _, opts := range []Options{
		{Dir: dirComp, Sync: SyncNone},
		{Dir: dirComp, Sync: SyncNone, MMap: true},
		{Dir: dirRaw, Sync: SyncNone, Compress: true},
	} {
		db := pgdb.NewDB()
		st, err := Open(db, opts)
		if err != nil {
			t.Fatalf("reopen %+v: %v", opts, err)
		}
		assertSameRows(t, want, rowsOf(t, db.NewSession(), "w"),
			fmt.Sprintf("mmap=%v dir=%s", opts.MMap, opts.Dir))
		st.Close()
	}
}

// TestChunkCodecRoundTrip drives encodeChunk/decodeChunkInto directly over
// every vector kind and the patterns each compressed encoding targets,
// in all four {compress} × {zeroCopy} combinations.
func TestChunkCodecRoundTrip(t *testing.T) {
	const n = 1000
	nulls := make([]uint64, (n+63)/64)
	for i := 0; i < n; i += 97 {
		nulls[i>>6] |= 1 << (uint(i) & 63)
	}
	sorted := make([]int64, n)
	clustered := make([]int64, n)
	wild := make([]int64, n)
	for i := range sorted {
		sorted[i] = 1_000_000 + int64(i)*3
		clustered[i] = 42 + int64(i%7)
		wild[i] = int64(uint64(i) * 0x9E3779B97F4A7C15) // wraps: exercises uint64 FOR
	}
	floats := make([]float64, n)
	for i := range floats {
		floats[i] = float64(i) * 1.5
	}
	floats[3] = math.NaN()
	floats[4] = math.Inf(-1)
	lowCard := make([]string, n)
	uniq := make([]string, n)
	for i := range lowCard {
		lowCard[i] = fmt.Sprintf("sym%d", i%5)
		uniq[i] = fmt.Sprintf("val-%d-%d", i, i*i)
	}
	bools := make([]bool, n)
	for i := range bools {
		bools[i] = i%100 < 90
	}
	anys := make([]any, n)
	for i := range anys {
		switch i % 4 {
		case 0:
			anys[i] = int64(i)
		case 1:
			anys[i] = fmt.Sprintf("a%d", i)
		case 2:
			anys[i] = i%8 == 1
		default:
			anys[i] = nil
		}
	}

	cases := []struct {
		name      string
		v         pgdb.VecData
		wantSmall bool // compressed payload must beat raw
	}{
		{"int-sorted", pgdb.VecData{Kind: 1, Ints: sorted, Nulls: nulls}, true},
		{"int-clustered", pgdb.VecData{Kind: 1, Ints: clustered, Nulls: nulls}, true},
		{"int-wild", pgdb.VecData{Kind: 1, Ints: wild, Nulls: make([]uint64, len(nulls))}, false},
		{"float", pgdb.VecData{Kind: 2, Floats: floats, Nulls: nulls}, false},
		{"str-lowcard", pgdb.VecData{Kind: 3, Strs: lowCard, Nulls: nulls}, true},
		{"str-unique", pgdb.VecData{Kind: 3, Strs: uniq, Nulls: make([]uint64, len(nulls))}, false},
		{"bool-runs", pgdb.VecData{Kind: 4, Bools: bools, Nulls: nulls}, true},
		{"any", pgdb.VecData{Kind: 5, Anys: anys, Nulls: nulls}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rawBuf, err := encodeChunk(tc.v, n, 0, n, false)
			if err != nil {
				t.Fatalf("encode raw: %v", err)
			}
			compBuf, err := encodeChunk(tc.v, n, 0, n, true)
			if err != nil {
				t.Fatalf("encode compressed: %v", err)
			}
			if tc.wantSmall && len(compBuf) >= len(rawBuf) {
				t.Fatalf("compressed %d B >= raw %d B", len(compBuf), len(rawBuf))
			}
			for _, enc := range [][]byte{rawBuf, compBuf} {
				for _, zc := range []bool{false, true} {
					dst := pgdb.VecData{Kind: tc.v.Kind, Nulls: make([]uint64, len(tc.v.Nulls))}
					switch tc.v.Kind {
					case vkInt:
						dst.Ints = make([]int64, n)
					case vkFloat:
						dst.Floats = make([]float64, n)
					case vkStr:
						dst.Strs = make([]string, n)
					case vkBool:
						dst.Bools = make([]bool, n)
					case vkAny:
						dst.Anys = make([]any, n)
					}
					if err := decodeChunkInto(&dst, 0, n, enc, zc); err != nil {
						t.Fatalf("decode (zc=%v): %v", zc, err)
					}
					if !reflect.DeepEqual(dst.Nulls, tc.v.Nulls) {
						t.Fatalf("nulls diverge (zc=%v)", zc)
					}
					var got, want any
					switch tc.v.Kind {
					case vkInt:
						got, want = dst.Ints, tc.v.Ints
					case vkFloat:
						// NaN != NaN under DeepEqual on purpose: compare bits.
						gb := make([]uint64, n)
						wb := make([]uint64, n)
						for i := range gb {
							gb[i] = math.Float64bits(dst.Floats[i])
							wb[i] = math.Float64bits(tc.v.Floats[i])
						}
						got, want = gb, wb
					case vkStr:
						got, want = dst.Strs, tc.v.Strs
					case vkBool:
						got, want = dst.Bools, tc.v.Bools
					case vkAny:
						got, want = dst.Anys, tc.v.Anys
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("data diverges (zc=%v, compressed=%v)", zc, len(enc) == len(compBuf))
					}
				}
			}
		})
	}
}

// TestCorruptColumnFileFault flips the first payload byte of one column
// file and requires a fault through it to fail as a clean statement error
// (SQLSTATE 58030 surface) without installing a partial segment, while
// reads of intact columns keep working.
func TestCorruptColumnFileFault(t *testing.T) {
	dir := t.TempDir()
	loadWideTable(t, dir, Options{Sync: SyncNone})

	// Corrupt c2's file in the first partition: flip the kind byte of the
	// first chunk payload so decoding fails deterministically.
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*", "w", "*", "c2.col"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no c2 column files: %v", err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatalf("read column file: %v", err)
	}
	nChunks := int(binary.LittleEndian.Uint32(raw[4:]))
	payloadOff := 8 + nChunks*28
	raw[payloadOff] ^= 0xFF
	if err := os.WriteFile(matches[0], raw, 0o644); err != nil {
		t.Fatalf("write corrupted file: %v", err)
	}

	db := pgdb.NewDB()
	st, err := Open(db, Options{Dir: dir, Sync: SyncNone})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st.Close()
	db.SetExecMode(pgdb.ExecVectorized)
	s := db.NewSession()

	// Intact columns still serve.
	res := mustExec(t, s, "SELECT sum(c6) FROM w WHERE c1 = 1")
	if res.Rows[0][0] == nil {
		t.Fatalf("intact column scan returned nil")
	}

	// The corrupted column errors cleanly — a statement error, not a panic,
	// and not silently wrong data.
	if _, err := s.Exec("SELECT sum(c2) FROM w WHERE c1 = 1"); err == nil {
		t.Fatalf("corrupted column fault should error")
	} else if !strings.Contains(err.Error(), "chunk kind") {
		t.Fatalf("unexpected error: %v", err)
	}

	// The failed fault must not have installed a partial segment: the same
	// statement over intact columns still answers, and retrying the broken
	// one fails the same way instead of serving half-decoded data.
	res2 := mustExec(t, s, "SELECT sum(c6) FROM w WHERE c1 = 1")
	if !reflect.DeepEqual(res.Rows, res2.Rows) {
		t.Fatalf("post-failure scan diverged: %v vs %v", res2.Rows, res.Rows)
	}
	if _, err := s.Exec("SELECT sum(c2) FROM w WHERE c1 = 1"); err == nil {
		t.Fatalf("retry over corrupted column should error again")
	}
}

// TestCompressedCrashRecovery reruns the checkpoint kill-points with chunk
// compression on and reopens each crash state with mmap on — the torn
// compressed checkpoint must never be visible.
func TestCompressedCrashRecovery(t *testing.T) {
	points := []string{"before-files", "mid-files", "before-manifest", "before-current", "before-wal-reset"}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			_, s, st := openStore(t, dir, Options{Sync: SyncAlways, Compress: true})
			mustExec(t, s, "CREATE TABLE t (d date, v bigint, s varchar)")
			for i := 0; i < 60; i++ {
				mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES ('2024-07-%02d', %d, 'sym%d')", 14+i%3, i, i%4))
			}
			if err := st.Checkpoint(); err != nil {
				t.Fatalf("first checkpoint: %v", err)
			}
			mustExec(t, s, "UPDATE t SET v = v + 1000 WHERE v < 10")
			want := rowsOf(t, s, "t")

			st.SetFailpoint(point)
			if err := st.Checkpoint(); err == nil {
				t.Fatalf("checkpoint should have failed at %s", point)
			}
			st.Close()

			db2, s2, st2 := openStore(t, dir, Options{Sync: SyncAlways, Compress: true, MMap: true})
			db2.SetExecMode(pgdb.ExecVectorized)
			assertSameRows(t, want, rowsOf(t, s2, "t"), point)
			mustExec(t, s2, "INSERT INTO t VALUES ('2024-07-17', 999, 'z')")
			if err := st2.Checkpoint(); err != nil {
				t.Fatalf("post-recovery checkpoint: %v", err)
			}
			st2.Close()
		})
	}
}

// TestEvictionChurnCompressedMMap drives eviction-and-refault cycles with
// compression and mmap on, checking the stats counters move and results
// stay exact.
func TestEvictionChurnCompressedMMap(t *testing.T) {
	dir := t.TempDir()
	want := loadWideTable(t, dir, Options{Sync: SyncNone, Compress: true})

	db := pgdb.NewDB()
	st, err := Open(db, Options{Dir: dir, Sync: SyncNone, Compress: true, MMap: true, MemBudget: 1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st.Close()
	db.SetExecMode(pgdb.ExecVectorized)
	s := db.NewSession()
	for i := 0; i < 3; i++ {
		assertSameRows(t, want, rowsOf(t, s, "w"), fmt.Sprintf("churn %d", i))
	}
	snap := st.Stats().Snapshot()
	if snap.Evictions == 0 {
		t.Fatalf("budget of 1 byte never evicted: %+v", snap)
	}
	if snap.ColumnsFaulted == 0 || snap.MMapHits == 0 {
		t.Fatalf("churn did not refault through mmap: %+v", snap)
	}
}

// TestServeStats exposes the counters over HTTP and checks the expvar-style
// document reflects a fault.
func TestServeStats(t *testing.T) {
	dir := t.TempDir()
	loadWideTable(t, dir, Options{Sync: SyncNone})
	db := pgdb.NewDB()
	st, err := Open(db, Options{Dir: dir, Sync: SyncNone})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st.Close()
	addr, err := ServeStats("127.0.0.1:0", st.Stats())
	if err != nil {
		t.Fatalf("ServeStats: %v", err)
	}
	mustExec(t, db.NewSession(), "SELECT count(*) FROM w WHERE c1 = 1")

	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var vars map[string]int64
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("unmarshal %q: %v", body, err)
	}
	if vars["persist.columns_faulted"] == 0 || vars["persist.chunks_decoded"] == 0 {
		t.Fatalf("endpoint shows no activity: %v", vars)
	}
}
