//go:build !unix

package persist

import "fmt"

// mmapFile is unavailable off unix; the store falls back to file reads.
func mmapFile(path string) ([]byte, error) {
	return nil, fmt.Errorf("persist: mmap unsupported on this platform")
}

func madviseWillNeed(data []byte) {}
