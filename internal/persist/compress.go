package persist

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"unsafe"

	"hyperq/internal/pgdb"
)

// Lightweight per-chunk column encodings. All arithmetic is uint64
// wraparound, so frame-of-reference and delta packing are lossless for the
// whole int64 domain including overflow-spanning ranges. Bitpacked values
// are LSB-first within the byte stream.

// dictMaxEntries bounds dictionary encoding: past this cardinality the
// directory overhead can't win against the raw offset layout anyway, and
// the encoder shouldn't burn time hashing a near-unique column.
const dictMaxEntries = 1 << 12

// packBits appends len(vals) values of the given bit width, LSB-first.
func packBits(vals []uint64, width int) []byte {
	out := make([]byte, (len(vals)*width+7)/8)
	bit := 0
	for _, v := range vals {
		rem := width
		for rem > 0 {
			byteIdx := bit >> 3
			bitOff := bit & 7
			take := 8 - bitOff
			if take > rem {
				take = rem
			}
			out[byteIdx] |= byte(v&((1<<uint(take))-1)) << uint(bitOff)
			v >>= uint(take)
			bit += take
			rem -= take
		}
	}
	return out
}

// bitsAt reads one width-bit value at bit position bitPos. Callers bound
// data beforehand: bitPos+width must not run past len(data)*8.
func bitsAt(data []byte, bitPos, width int) uint64 {
	var v uint64
	shift := 0
	byteIdx := bitPos >> 3
	bitOff := bitPos & 7
	rem := width
	for rem > 0 {
		cur := uint64(data[byteIdx]) >> uint(bitOff)
		take := 8 - bitOff
		if take > rem {
			take = rem
		}
		v |= (cur & ((1 << uint(take)) - 1)) << uint(shift)
		shift += take
		rem -= take
		bitOff = 0
		byteIdx++
	}
	return v
}

// packedLen is the byte size of n width-bit packed values.
func packedLen(n, width int) int {
	return (n*width + 7) / 8
}

// encodeNullRLE emits the set-bit ranges of a chunk-local null bitmap:
// u32 runs | runs × { u32 start | u32 len }.
func encodeNullRLE(words []uint64, rows int) []byte {
	type run struct{ start, n int }
	var runs []run
	for i := 0; i < rows; i++ {
		if words[i>>6]&(1<<(uint(i)&63)) == 0 {
			continue
		}
		if len(runs) > 0 && runs[len(runs)-1].start+runs[len(runs)-1].n == i {
			runs[len(runs)-1].n++
		} else {
			runs = append(runs, run{i, 1})
		}
	}
	buf := make([]byte, 0, 4+len(runs)*8)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(runs)))
	for _, r := range runs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.start))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.n))
	}
	return buf
}

// encodeDataCompressed tries the kind's compressed encodings for rows
// [lo, hi) and returns the best candidate, or (0, nil) when the kind has
// none or the candidate is degenerate. The caller compares against raw.
func encodeDataCompressed(v pgdb.VecData, lo, hi int) (byte, []byte) {
	switch v.Kind {
	case vkInt:
		return encodeIntPacked(v.Ints[lo:hi])
	case vkStr:
		return encodeDictStr(v.Strs[lo:hi])
	case vkBool:
		return encodeRLEBool(v.Bools[lo:hi])
	}
	return 0, nil
}

// encodeIntPacked picks the smaller of frame-of-reference and delta
// packing. Frames and deltas are uint64-wraparound, so any value range
// round-trips exactly.
func encodeIntPacked(vals []int64) (byte, []byte) {
	if len(vals) == 0 {
		return 0, nil
	}
	minV, maxV := vals[0], vals[0]
	for _, x := range vals[1:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	forWidth := bits.Len64(uint64(maxV) - uint64(minV))
	forSize := 9 + packedLen(len(vals), forWidth)

	deltaSize := -1
	var minD, maxD int64
	if len(vals) >= 2 {
		minD = int64(uint64(vals[1]) - uint64(vals[0]))
		maxD = minD
		for i := 2; i < len(vals); i++ {
			d := int64(uint64(vals[i]) - uint64(vals[i-1]))
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
		deltaWidth := bits.Len64(uint64(maxD) - uint64(minD))
		deltaSize = 17 + packedLen(len(vals)-1, deltaWidth)
	}

	if deltaSize >= 0 && deltaSize < forSize {
		deltas := make([]uint64, len(vals)-1)
		for i := range deltas {
			d := uint64(vals[i+1]) - uint64(vals[i])
			deltas[i] = d - uint64(minD)
		}
		width := bits.Len64(uint64(maxD) - uint64(minD))
		buf := make([]byte, 0, deltaSize)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(vals[0]))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(minD))
		buf = append(buf, byte(width))
		return dataDeltaInt, append(buf, packBits(deltas, width)...)
	}
	packed := make([]uint64, len(vals))
	for i, x := range vals {
		packed[i] = uint64(x) - uint64(minV)
	}
	buf := make([]byte, 0, forSize)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(minV))
	buf = append(buf, byte(forWidth))
	return dataForInt, append(buf, packBits(packed, forWidth)...)
}

func decodeForInt(out []int64, data []byte) error {
	if len(data) < 9 {
		return fmt.Errorf("persist: truncated FOR header")
	}
	frame := binary.LittleEndian.Uint64(data)
	width := int(data[8])
	if width > 64 {
		return fmt.Errorf("persist: FOR width %d out of range", width)
	}
	body := data[9:]
	if packedLen(len(out), width) > len(body) {
		return fmt.Errorf("persist: truncated FOR data")
	}
	for i := range out {
		out[i] = int64(frame + bitsAt(body, i*width, width))
	}
	return nil
}

func decodeDeltaInt(out []int64, data []byte) error {
	if len(data) < 17 {
		return fmt.Errorf("persist: truncated delta header")
	}
	if len(out) == 0 {
		return nil
	}
	cur := binary.LittleEndian.Uint64(data)
	frame := binary.LittleEndian.Uint64(data[8:])
	width := int(data[16])
	if width > 64 {
		return fmt.Errorf("persist: delta width %d out of range", width)
	}
	body := data[17:]
	if packedLen(len(out)-1, width) > len(body) {
		return fmt.Errorf("persist: truncated delta data")
	}
	out[0] = int64(cur)
	for i := 1; i < len(out); i++ {
		cur += frame + bitsAt(body, (i-1)*width, width)
		out[i] = int64(cur)
	}
	return nil
}

// encodeDictStr dictionary-encodes a low-cardinality string column:
// u32 dictN | dictN × { u32 len | bytes } | u8 width | packed indexes.
// Bails (nil) past dictMaxEntries distinct values.
func encodeDictStr(vals []string) (byte, []byte) {
	if len(vals) == 0 {
		return 0, nil
	}
	dict := make(map[string]uint64, 16)
	var order []string
	idx := make([]uint64, len(vals))
	for i, s := range vals {
		id, ok := dict[s]
		if !ok {
			if len(order) >= dictMaxEntries {
				return 0, nil
			}
			id = uint64(len(order))
			dict[s] = id
			order = append(order, s)
		}
		idx[i] = id
	}
	width := bits.Len64(uint64(len(order) - 1))
	buf := make([]byte, 0, 5+len(vals))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(order)))
	for _, s := range order {
		buf = appendString(buf, s)
	}
	buf = append(buf, byte(width))
	return dataDictStr, append(buf, packBits(idx, width)...)
}

func decodeDictStr(out []string, data []byte, zeroCopy bool) error {
	if len(data) < 4 {
		return fmt.Errorf("persist: truncated dictionary")
	}
	dictN := int(binary.LittleEndian.Uint32(data))
	if dictN < 0 || dictN > dictMaxEntries {
		return fmt.Errorf("persist: dictionary size %d out of range", dictN)
	}
	off := 4
	dict := make([]string, dictN)
	for i := range dict {
		if off+4 > len(data) {
			return fmt.Errorf("persist: truncated dictionary entry")
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if n < 0 || off+n > len(data) {
			return fmt.Errorf("persist: truncated dictionary entry")
		}
		if zeroCopy && n > 0 {
			dict[i] = unsafe.String(&data[off], n)
		} else {
			dict[i] = string(data[off : off+n])
		}
		off += n
	}
	if off >= len(data) {
		return fmt.Errorf("persist: missing dictionary index width")
	}
	width := int(data[off])
	off++
	if width > 64 {
		return fmt.Errorf("persist: dictionary width %d out of range", width)
	}
	body := data[off:]
	if packedLen(len(out), width) > len(body) {
		return fmt.Errorf("persist: truncated dictionary indexes")
	}
	for i := range out {
		id := bitsAt(body, i*width, width)
		if id >= uint64(dictN) {
			return fmt.Errorf("persist: dictionary index %d out of range", id)
		}
		out[i] = dict[id]
	}
	return nil
}

// encodeRLEBool run-length encodes a bool column:
// u32 runs | runs × { u8 val | u32 len }.
func encodeRLEBool(vals []bool) (byte, []byte) {
	if len(vals) == 0 {
		return 0, nil
	}
	type run struct {
		val bool
		n   int
	}
	var runs []run
	for _, v := range vals {
		if len(runs) > 0 && runs[len(runs)-1].val == v {
			runs[len(runs)-1].n++
		} else {
			runs = append(runs, run{v, 1})
		}
	}
	buf := make([]byte, 0, 4+len(runs)*5)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(runs)))
	for _, r := range runs {
		if r.val {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.n))
	}
	return dataRLEBool, buf
}

func decodeRLEBool(out []bool, data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("persist: truncated bool runs")
	}
	runs := int(binary.LittleEndian.Uint32(data))
	off := 4
	pos := 0
	for r := 0; r < runs; r++ {
		if off+5 > len(data) {
			return fmt.Errorf("persist: truncated bool run")
		}
		val := data[off] != 0
		n := int(binary.LittleEndian.Uint32(data[off+1:]))
		off += 5
		if n < 0 || pos+n > len(out) {
			return fmt.Errorf("persist: bool runs beyond chunk rows")
		}
		for i := 0; i < n; i++ {
			out[pos+i] = val
		}
		pos += n
	}
	if pos != len(out) {
		return fmt.Errorf("persist: bool runs cover %d of %d rows", pos, len(out))
	}
	return nil
}
