package persist

import (
	"encoding/json"
	"net"
	"net/http"
	"sync/atomic"
)

// Stats counts the store's cold-read activity. All fields are updated with
// atomics so concurrent faulting scans account without contention; read a
// coherent-enough view with Snapshot.
type Stats struct {
	SegmentsFaulted atomic.Int64 // loader calls (one per faulting segment)
	ColumnsFaulted  atomic.Int64 // (segment, column) pairs materialized
	BytesRead       atomic.Int64 // chunk payload bytes read via file I/O
	ChunksDecoded   atomic.Int64 // chunk payloads decoded
	MMapHits        atomic.Int64 // chunk payloads served zero-copy from mmap
	ReadAheads      atomic.Int64 // column files warmed ahead of demand
	Evictions       atomic.Int64 // columns dropped by the memory budget
}

// StatsSnapshot is a plain-value copy of Stats at one instant.
type StatsSnapshot struct {
	SegmentsFaulted int64
	ColumnsFaulted  int64
	BytesRead       int64
	ChunksDecoded   int64
	MMapHits        int64
	ReadAheads      int64
	Evictions       int64
}

// Snapshot reads every counter once.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		SegmentsFaulted: s.SegmentsFaulted.Load(),
		ColumnsFaulted:  s.ColumnsFaulted.Load(),
		BytesRead:       s.BytesRead.Load(),
		ChunksDecoded:   s.ChunksDecoded.Load(),
		MMapHits:        s.MMapHits.Load(),
		ReadAheads:      s.ReadAheads.Load(),
		Evictions:       s.Evictions.Load(),
	}
}

// Stats exposes the store's I/O counters; the pointer stays valid for the
// store's lifetime and past Close.
func (st *Store) Stats() *Stats { return &st.stats }

// ServeStats serves the counters expvar-style as a flat JSON object at
// /debug/vars on addr. It binds synchronously (so address errors surface
// to the caller and ":0" resolves to a concrete port in the returned
// address) and serves in the background for the process lifetime. Extra
// counter sources (e.g. the engine's index stats) merge into the same
// document; later sources win on key collisions.
func ServeStats(addr string, s *Stats, extras ...func() map[string]int64) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		vars := map[string]int64{}
		if s != nil { // nil when serving a memory-only engine's counters
			snap := s.Snapshot()
			vars = map[string]int64{
				"persist.segments_faulted": snap.SegmentsFaulted,
				"persist.columns_faulted":  snap.ColumnsFaulted,
				"persist.bytes_read":       snap.BytesRead,
				"persist.chunks_decoded":   snap.ChunksDecoded,
				"persist.mmap_hits":        snap.MMapHits,
				"persist.read_aheads":      snap.ReadAheads,
				"persist.evictions":        snap.Evictions,
			}
		}
		for _, fn := range extras {
			for k, v := range fn() {
				vars[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(vars)
	})
	go http.Serve(l, mux)
	return l.Addr().String(), nil
}
