//go:build unix

package persist

import (
	"os"
	"syscall"
)

// mmapFile maps path read-only. The mapping is intentionally never
// unmapped: zero-copy string cells decoded from it escape into table
// vectors that outlive the Store, and checkpoint switchover only unlinks
// superseded files — POSIX keeps the pages of an unlinked mapped file
// valid, and checkpoints never rewrite a file in place.
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() == 0 {
		return []byte{}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return data, nil
}

// madviseWillNeed hints the kernel to read the mapping ahead of the
// first faulting access; errors are advisory-only and ignored.
func madviseWillNeed(data []byte) {
	if len(data) > 0 {
		syscall.Madvise(data, syscall.MADV_WILLNEED)
	}
}
