package pool

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperq/internal/core"
	"hyperq/internal/wire/pgv3"
)

// ctx for pool operations that should never block on the context.
var ctx = context.Background()

// fakeConn is an in-memory pool.Conn that records activity.
type fakeConn struct {
	id        int
	mu        sync.Mutex
	execs     []string
	closed    bool
	pingErr   error
	execErr   error
	deadlines []bool // whether each Exec's ctx carried a deadline
}

func (f *fakeConn) Exec(ctx context.Context, sql string) (*core.BackendResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, hasDeadline := ctx.Deadline()
	f.deadlines = append(f.deadlines, hasDeadline)
	f.execs = append(f.execs, sql)
	if f.execErr != nil {
		return nil, f.execErr
	}
	return &core.BackendResult{Tag: "OK"}, nil
}

func (f *fakeConn) QueryCatalog(ctx context.Context, sql string) ([][]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.execs = append(f.execs, sql)
	return [][]string{{"col", "bigint"}}, nil
}

func (f *fakeConn) Ping() error { return f.pingErr }

func (f *fakeConn) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

func (f *fakeConn) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// dialer produces fakeConns and counts dials.
type dialer struct {
	mu    sync.Mutex
	conns []*fakeConn
	fails int // fail this many dials before succeeding
}

func (d *dialer) dial(ctx context.Context) (Conn, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fails > 0 {
		d.fails--
		return nil, errors.New("dial refused")
	}
	c := &fakeConn{id: len(d.conns)}
	d.conns = append(d.conns, c)
	return c, nil
}

func (d *dialer) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.conns)
}

func TestLazyDialAndReuse(t *testing.T) {
	d := &dialer{}
	p := New(Config{Size: 4, Dial: d.dial})
	if d.count() != 0 {
		t.Fatal("pool must not dial before first checkout")
	}
	c, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d.count() != 1 {
		t.Fatalf("dials = %d, want 1", d.count())
	}
	p.Put(c, true)
	c2, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c {
		t.Fatal("idle connection should be reused")
	}
	if d.count() != 1 {
		t.Fatalf("dials = %d, want 1 (reuse)", d.count())
	}
	p.Put(c2, true)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if !c.(*fakeConn).isClosed() {
		t.Fatal("Close should close idle connections")
	}
}

func TestBoundAndCheckoutTimeout(t *testing.T) {
	d := &dialer{}
	p := New(Config{Size: 2, Dial: d.dial, CheckoutTimeout: 50 * time.Millisecond})
	a, _ := p.Get(ctx)
	b, _ := p.Get(ctx)
	if _, err := p.Get(ctx); !errors.Is(err, ErrCheckoutTimeout) {
		t.Fatalf("err = %v, want ErrCheckoutTimeout", err)
	}
	if p.Stats().WaitTimeouts != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
	p.Put(a, true)
	p.Put(b, true)
	if d.count() != 2 {
		t.Fatalf("dials = %d, want 2 (bounded)", d.count())
	}
}

func TestBlockedCheckoutUnblocksOnPut(t *testing.T) {
	d := &dialer{}
	p := New(Config{Size: 1, Dial: d.dial, CheckoutTimeout: 2 * time.Second})
	a, _ := p.Get(ctx)
	got := make(chan Conn)
	go func() {
		c, err := p.Get(ctx)
		if err != nil {
			t.Error(err)
		}
		got <- c
	}()
	time.Sleep(20 * time.Millisecond)
	p.Put(a, true)
	select {
	case c := <-got:
		p.Put(c, true)
	case <-time.After(time.Second):
		t.Fatal("waiter never unblocked")
	}
}

func TestHealthCheckDiscardsDeadIdle(t *testing.T) {
	d := &dialer{}
	// a nanosecond health window forces a real ping on every checkout
	p := New(Config{Size: 2, Dial: d.dial, HealthCheck: true, HealthCheckInterval: time.Nanosecond})
	c, _ := p.Get(ctx)
	c.(*fakeConn).pingErr = errors.New("gone")
	p.Put(c, true)
	c2, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c {
		t.Fatal("dead idle connection should have been replaced")
	}
	if !c.(*fakeConn).isClosed() {
		t.Fatal("dead connection should be closed")
	}
	st := p.Stats()
	if st.HealthFailures != 1 {
		t.Fatalf("stats = %+v", st)
	}
	p.Put(c2, true)
}

func TestDialRetryWithBackoff(t *testing.T) {
	d := &dialer{fails: 2}
	p := New(Config{Size: 1, Dial: d.dial, DialAttempts: 3, DialBackoff: time.Millisecond})
	start := time.Now()
	c, err := p.Get(ctx)
	if err != nil {
		t.Fatalf("Get after retries: %v", err)
	}
	// two failures with 1ms then 2ms backoff
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("backoff not applied (elapsed %v)", elapsed)
	}
	st := p.Stats()
	if st.Dials != 3 || st.DialErrors != 2 {
		t.Fatalf("stats = %+v", st)
	}
	p.Put(c, true)
}

func TestDialExhaustedReleasesSlot(t *testing.T) {
	d := &dialer{fails: 100}
	p := New(Config{Size: 1, Dial: d.dial, DialAttempts: 2, DialBackoff: time.Millisecond})
	if _, err := p.Get(ctx); err == nil {
		t.Fatal("Get should fail when dialing is impossible")
	}
	// the slot must have been released: a now-working dial succeeds
	d.mu.Lock()
	d.fails = 0
	d.mu.Unlock()
	c, err := p.Get(ctx)
	if err != nil {
		t.Fatalf("slot leaked: %v", err)
	}
	p.Put(c, true)
}

func TestPutDiscard(t *testing.T) {
	d := &dialer{}
	p := New(Config{Size: 2, Dial: d.dial})
	c, _ := p.Get(ctx)
	p.Put(c, false)
	if !c.(*fakeConn).isClosed() {
		t.Fatal("discarded connection should be closed")
	}
	c2, _ := p.Get(ctx)
	if c2 == c {
		t.Fatal("discarded connection must not be reused")
	}
	p.Put(c2, true)
}

func TestGracefulDrain(t *testing.T) {
	d := &dialer{}
	p := New(Config{Size: 2, Dial: d.dial, DrainTimeout: time.Second})
	c, _ := p.Get(ctx)
	go func() {
		time.Sleep(30 * time.Millisecond)
		p.Put(c, true)
	}()
	if err := p.Close(); err != nil {
		t.Fatalf("drain should succeed once the connection returns: %v", err)
	}
	if !c.(*fakeConn).isClosed() {
		t.Fatal("connection should be closed after drain")
	}
	if _, err := p.Get(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
}

func TestDrainTimeout(t *testing.T) {
	d := &dialer{}
	p := New(Config{Size: 1, Dial: d.dial, DrainTimeout: 30 * time.Millisecond})
	c, _ := p.Get(ctx) // never returned
	if err := p.Close(); err == nil {
		t.Fatal("Close should report the timed-out drain")
	}
	p.Put(c, true) // late return: discarded without blocking
	if !c.(*fakeConn).isClosed() {
		t.Fatal("late-returned connection should be closed")
	}
}

func TestPerQueryDeadline(t *testing.T) {
	d := &dialer{}
	p := New(Config{Size: 1, Dial: d.dial, QueryTimeout: time.Second})
	b := p.SessionBackend()
	if _, err := b.Exec(ctx, "SELECT 1"); err != nil {
		t.Fatal(err)
	}
	fc := d.conns[0]
	fc.mu.Lock()
	defer fc.mu.Unlock()
	// the query's context must carry the pool's per-query deadline
	if len(fc.deadlines) != 1 || !fc.deadlines[0] {
		t.Fatalf("deadlines = %v, want one deadline-bearing context", fc.deadlines)
	}
}

func TestSessionBackendPerStatementCheckout(t *testing.T) {
	d := &dialer{}
	p := New(Config{Size: 2, Dial: d.dial})
	b := p.SessionBackend()
	for i := 0; i < 5; i++ {
		if _, err := b.Exec(ctx, fmt.Sprintf("SELECT %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if d.count() != 1 {
		t.Fatalf("dials = %d, want 1 (checkout/checkin reuse)", d.count())
	}
	if st := p.Stats(); st.InUse != 0 || st.Idle != 1 {
		t.Fatalf("stats after statements = %+v (connection held?)", st)
	}
	b.Close()
}

func TestSessionBackendPinsOnTempTable(t *testing.T) {
	d := &dialer{}
	p := New(Config{Size: 2, Dial: d.dial})
	b := p.SessionBackend()
	if _, err := b.Exec(ctx, "SELECT 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec(ctx, "CREATE TEMPORARY TABLE hq_temp_1 AS SELECT 1"); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.InUse != 1 {
		t.Fatalf("temp DDL should pin the connection: %+v", st)
	}
	// subsequent statements run on the pinned connection
	if _, err := b.Exec(ctx, "SELECT * FROM hq_temp_1"); err != nil {
		t.Fatal(err)
	}
	pinned := d.conns[len(d.conns)-1]
	pinned.mu.Lock()
	last := pinned.execs[len(pinned.execs)-1]
	pinned.mu.Unlock()
	if last != "SELECT * FROM hq_temp_1" {
		t.Fatalf("follow-up statement ran elsewhere: %q", last)
	}
	// closing the session retires (closes) the pinned connection
	b.Close()
	if !pinned.isClosed() {
		t.Fatal("pinned connection must be retired on session close, not recycled")
	}
	if st := p.Stats(); st.InUse != 0 {
		t.Fatalf("slot not released on close: %+v", st)
	}
}

func TestSessionBackendLostPinnedConn(t *testing.T) {
	d := &dialer{}
	p := New(Config{Size: 2, Dial: d.dial})
	b := p.SessionBackend()
	if _, err := b.Exec(ctx, "CREATE TEMP TABLE t AS SELECT 1"); err != nil {
		t.Fatal(err)
	}
	pinned := d.conns[0]
	pinned.mu.Lock()
	pinned.execErr = &net.OpError{Op: "read", Err: io.EOF}
	pinned.mu.Unlock()
	if _, err := b.Exec(ctx, "SELECT * FROM t"); err == nil {
		t.Fatal("broken transport should surface")
	}
	if _, err := b.Exec(ctx, "SELECT 1"); !errors.Is(err, ErrSessionConnLost) {
		t.Fatalf("err = %v, want ErrSessionConnLost", err)
	}
	if st := p.Stats(); st.InUse != 0 {
		t.Fatalf("broken pinned connection should release its slot: %+v", st)
	}
	b.Close()
}

func TestConnBrokenClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&pgv3.ServerError{Severity: "ERROR", Code: "42P01", Message: "no such table"}, false},
		{errors.New("pgdb: syntax error"), false},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{net.ErrClosed, true},
		{&net.OpError{Op: "read", Err: errors.New("reset")}, true},
		{fmt.Errorf("query: %w", io.EOF), true},
	}
	for _, tc := range cases {
		if got := connBroken(tc.err); got != tc.want {
			t.Errorf("connBroken(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestConcurrentSessionsShareBoundedPool(t *testing.T) {
	d := &dialer{}
	p := New(Config{Size: 3, Dial: d.dial, CheckoutTimeout: 5 * time.Second})
	var wg sync.WaitGroup
	var errs atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := p.SessionBackend()
			defer b.Close()
			for i := 0; i < 50; i++ {
				if _, err := b.Exec(ctx, "SELECT 1"); err != nil {
					errs.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	if errs.Load() != 0 {
		t.Fatalf("%d sessions failed", errs.Load())
	}
	if d.count() > 3 {
		t.Fatalf("dials = %d, bound %d violated", d.count(), 3)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
