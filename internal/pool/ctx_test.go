package pool

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hyperq/internal/core"
)

// ctxConn is a pool.Conn that counts pings and records whether each
// statement's context carried a deadline.
type ctxConn struct {
	mu        sync.Mutex
	pings     int
	deadlines []bool
	closed    bool
}

func (c *ctxConn) Exec(ctx context.Context, sql string) (*core.BackendResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, has := ctx.Deadline()
	c.deadlines = append(c.deadlines, has)
	return &core.BackendResult{Tag: "OK"}, nil
}

func (c *ctxConn) QueryCatalog(ctx context.Context, sql string) ([][]string, error) {
	return [][]string{{"col", "bigint"}}, nil
}

func (c *ctxConn) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pings++
	return nil
}

func (c *ctxConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *ctxConn) pingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pings
}

func TestGetCtxCancelAbortsCheckoutWait(t *testing.T) {
	d := &dialer{}
	p := New(Config{Size: 1, Dial: d.dial, CheckoutTimeout: time.Minute})
	held, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := p.Get(gctx)
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // waiter parks on the exhausted pool
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("canceled checkout stayed blocked (CheckoutTimeout is 1m)")
	}
	p.Put(held, true)
	// the canceled waiter must not have consumed the slot
	c, err := p.Get(ctx)
	if err != nil {
		t.Fatalf("slot leaked to the canceled waiter: %v", err)
	}
	p.Put(c, true)
}

func TestGetCtxCancelAbortsDialBackoff(t *testing.T) {
	d := &dialer{fails: 100}
	p := New(Config{Size: 1, Dial: d.dial, DialAttempts: 10, DialBackoff: time.Minute})
	gctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := p.Get(gctx)
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // first dial fails; waiter sits in backoff
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("canceled dial backoff stayed blocked (backoff is 1m)")
	}
}

func TestHealthCheckSkippedWithinWindow(t *testing.T) {
	conn := &ctxConn{}
	p := New(Config{
		Size:        1,
		Dial:        func(ctx context.Context) (Conn, error) { return conn, nil },
		HealthCheck: true,
		// default HealthCheckInterval (1s) is far wider than this test
	})
	for i := 0; i < 3; i++ {
		c, err := p.Get(ctx)
		if err != nil {
			t.Fatal(err)
		}
		p.Put(c, true)
	}
	if n := conn.pingCount(); n != 0 {
		t.Fatalf("pings = %d, want 0 (returned healthy within the window)", n)
	}
	// checkouts 2 and 3 found the idle conn recently healthy
	if st := p.Stats(); st.HealthChecksSkipped != 2 {
		t.Fatalf("HealthChecksSkipped = %d, want 2 (stats %+v)", st.HealthChecksSkipped, st)
	}
}

func TestHealthCheckRunsOutsideWindow(t *testing.T) {
	conn := &ctxConn{}
	p := New(Config{
		Size:                1,
		Dial:                func(ctx context.Context) (Conn, error) { return conn, nil },
		HealthCheck:         true,
		HealthCheckInterval: time.Nanosecond,
	})
	for i := 0; i < 3; i++ {
		c, err := p.Get(ctx)
		if err != nil {
			t.Fatal(err)
		}
		p.Put(c, true)
	}
	if n := conn.pingCount(); n != 2 {
		t.Fatalf("pings = %d, want 2 (every idle checkout outside the window)", n)
	}
	if st := p.Stats(); st.HealthChecksSkipped != 0 {
		t.Fatalf("HealthChecksSkipped = %d, want 0", st.HealthChecksSkipped)
	}
}

// TestPinnedConnKeepsPerQueryDeadline covers the temp-table pinning path: a
// pinned connection's statements must run under the same ctx-derived
// per-query deadline as pooled checkouts.
func TestPinnedConnKeepsPerQueryDeadline(t *testing.T) {
	conn := &ctxConn{}
	p := New(Config{
		Size:         1,
		Dial:         func(ctx context.Context) (Conn, error) { return conn, nil },
		QueryTimeout: time.Second,
	})
	b := p.SessionBackend()
	defer b.Close()
	if _, err := b.Exec(ctx, "CREATE TEMPORARY TABLE hq_temp_1 AS SELECT 1"); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.InUse != 1 {
		t.Fatalf("temp DDL should pin the connection: %+v", st)
	}
	if _, err := b.Exec(ctx, "SELECT * FROM hq_temp_1"); err != nil {
		t.Fatal(err)
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if len(conn.deadlines) != 2 {
		t.Fatalf("execs = %d, want 2", len(conn.deadlines))
	}
	for i, has := range conn.deadlines {
		if !has {
			t.Fatalf("statement %d ran without the per-query deadline (pinned=%v)", i, i > 0)
		}
	}
}

// TestExecCtxCancellationSurfaces ensures a dead request context aborts the
// statement before it reaches the backend and leaves the pool intact.
func TestExecCtxCancellationSurfaces(t *testing.T) {
	conn := &ctxConn{}
	p := New(Config{Size: 1, Dial: func(ctx context.Context) (Conn, error) { return conn, nil }})
	b := p.SessionBackend()
	defer b.Close()
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Exec(dead, "SELECT 1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := p.Stats(); st.InUse != 0 {
		t.Fatalf("canceled statement leaked its slot: %+v", st)
	}
	// the pool remains serviceable for live requests
	if _, err := b.Exec(ctx, "SELECT 1"); err != nil {
		t.Fatal(err)
	}
}
