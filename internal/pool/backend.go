package pool

import (
	"context"
	"errors"
	"strings"
	"sync"

	"hyperq/internal/core"
)

// ErrSessionConnLost is returned once a session's pinned connection broke:
// the temporary state that lived on it (temp tables backing materialized
// variables) is gone, so the session cannot transparently continue.
var ErrSessionConnLost = errors.New("pool: session's pinned backend connection was lost (temporary state dropped)")

// SessionBackend is the core.Backend handed to one Hyper-Q session. Each
// statement checks a connection out of the shared pool and returns it
// immediately, so idle sessions hold no backend resources.
//
// Temporary tables are connection-local on the backend, so a statement that
// creates one (physical materialization of a variable, §4.3) pins the
// checked-out connection to this session for its remaining lifetime — later
// statements must observe that state in situ. A pinned connection is
// retired (closed, not recycled) when the session closes, so temp state
// never leaks into another session. Views are backend-global and need no
// pinning.
type SessionBackend struct {
	pool *Pool

	mu     sync.Mutex
	pinned Conn
	lost   bool // pinned connection broke; session state unrecoverable
	closed bool
}

// SessionBackend returns a fresh per-session wrapper over the pool.
func (p *Pool) SessionBackend() *SessionBackend {
	return &SessionBackend{pool: p}
}

// Exec implements core.Backend. The request context bounds the checkout
// wait and the statement itself; a pinned connection runs under the same
// ctx-derived per-query deadline as a pooled one.
func (b *SessionBackend) Exec(ctx context.Context, sql string) (*core.BackendResult, error) {
	c, pinned, err := b.checkout(ctx, pinsConnection(sql))
	if err != nil {
		return nil, err
	}
	res, err := b.pool.Exec(ctx, c, sql)
	b.checkin(c, pinned, err)
	return res, err
}

// ExecStream implements core.StreamBackend with the same checkout, pinning
// and checkin rules as Exec — a statement that creates a temp table pins the
// connection whichever result path delivered it.
func (b *SessionBackend) ExecStream(ctx context.Context, sql string, sink core.RowSink) error {
	c, pinned, err := b.checkout(ctx, pinsConnection(sql))
	if err != nil {
		return err
	}
	err = b.pool.ExecStream(ctx, c, sql, sink)
	b.checkin(c, pinned, err)
	return err
}

// QueryCatalog implements core.Backend. Catalog queries never pin, but a
// session that already pinned keeps using its connection — its temp tables
// are only visible there.
func (b *SessionBackend) QueryCatalog(ctx context.Context, sql string) ([][]string, error) {
	c, pinned, err := b.checkout(ctx, false)
	if err != nil {
		return nil, err
	}
	rows, err := b.pool.QueryCatalog(ctx, c, sql)
	b.checkin(c, pinned, err)
	return rows, err
}

// Close implements core.Backend: the pinned connection, if any, is retired.
func (b *SessionBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	if b.pinned != nil {
		b.pool.Put(b.pinned, false)
		b.pinned = nil
	}
	return nil
}

// checkout obtains the connection for one statement: the pinned connection
// when present, else a pool checkout (pinning it when pin is set).
func (b *SessionBackend) checkout(ctx context.Context, pin bool) (c Conn, pinned bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.closed:
		return nil, false, ErrClosed
	case b.lost:
		return nil, false, ErrSessionConnLost
	case b.pinned != nil:
		return b.pinned, true, nil
	}
	c, err = b.pool.Get(ctx)
	if err != nil {
		return nil, false, err
	}
	if pin {
		b.pinned = c
		pinned = true
	}
	return c, pinned, nil
}

// checkin returns a per-statement connection to the pool, or handles the
// loss of a pinned one.
func (b *SessionBackend) checkin(c Conn, pinned bool, execErr error) {
	broken := connBroken(execErr)
	if !pinned {
		b.pool.Put(c, !broken)
		return
	}
	if broken {
		b.mu.Lock()
		if b.pinned == c {
			b.pinned = nil
			b.lost = true
		}
		b.mu.Unlock()
		b.pool.Put(c, false)
	}
}

// pinsConnection reports whether sql creates connection-local backend state
// (a temporary table).
func pinsConnection(sql string) bool {
	s := strings.TrimSpace(sql)
	const create = "CREATE"
	if len(s) < len(create) || !strings.EqualFold(s[:len(create)], create) {
		return false
	}
	rest := strings.TrimSpace(s[len(create):])
	for _, kw := range []string{"TEMPORARY", "TEMP"} {
		if len(rest) > len(kw) && strings.EqualFold(rest[:len(kw)], kw) {
			return true
		}
	}
	return false
}
