// Package pool implements the backend half of the concurrent serving
// runtime: a bounded pool of backend connections (PG v3 gateways in the
// networked deployment, embedded-engine sessions in demo mode) shared by
// every Hyper-Q session of a process. The seed opened one dedicated backend
// connection per Q client; under heavy concurrent traffic the dial cost and
// the unbounded backend fan-out dominate, so sessions now check connections
// out per statement and return them immediately.
//
// Features: lazy dialing (connections are created on demand up to Size),
// health checks on checkout, dial retry with exponential backoff, per-query
// deadlines on connections that support them, and graceful drain on
// shutdown. See SessionBackend for the session-facing core.Backend wrapper
// and its temp-table connection-pinning rules.
package pool

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hyperq/internal/core"
	"hyperq/internal/wire/pgv3"
)

// Conn is a pooled backend connection: a core.Backend that can also answer
// a liveness probe.
type Conn interface {
	core.Backend
	// Ping performs a cheap round trip, reporting whether the connection
	// is still usable.
	Ping() error
}

// deadliner is implemented by connections whose I/O can be bounded (the
// networked Gateway); in-process backends have no transport to time out.
type deadliner interface {
	SetDeadline(t time.Time) error
}

// Config tunes a pool.
type Config struct {
	// Size bounds the number of live backend connections (default 4).
	Size int
	// Dial opens a new backend connection; called lazily when a checkout
	// finds no idle connection.
	Dial func() (Conn, error)
	// DialAttempts is the number of dial tries per checkout (default 3);
	// DialBackoff is the initial retry delay, doubling per attempt
	// (default 50ms).
	DialAttempts int
	DialBackoff  time.Duration
	// CheckoutTimeout bounds how long a checkout waits for a free slot
	// when all connections are in use (default 30s).
	CheckoutTimeout time.Duration
	// QueryTimeout is the per-query I/O deadline applied to connections
	// that support deadlines (0 disables).
	QueryTimeout time.Duration
	// HealthCheck pings idle connections on checkout, discarding dead
	// ones and dialing replacements.
	HealthCheck bool
	// DrainTimeout bounds how long Close waits for checked-out
	// connections to come back (default 5s).
	DrainTimeout time.Duration
	// Logf, when set, receives pool diagnostics.
	Logf func(format string, args ...any)
}

// Stats reports pool activity.
type Stats struct {
	Dials          int64
	DialErrors     int64
	Checkouts      int64
	HealthFailures int64
	Discards       int64
	WaitTimeouts   int64
	InUse          int
	Idle           int
}

// Pool errors.
var (
	ErrClosed          = errors.New("pool: closed")
	ErrCheckoutTimeout = errors.New("pool: timed out waiting for a free backend connection")
)

// Pool is a bounded backend-connection pool. Safe for concurrent use.
type Pool struct {
	cfg Config
	// sem holds one token per checked-out connection; its capacity is the
	// pool bound. idle buffers connections not currently checked out.
	sem       chan struct{}
	idle      chan Conn
	closed    chan struct{}
	closeOnce sync.Once

	dials, dialErrors, checkouts, healthFailures, discards, waitTimeouts atomic.Int64
}

// New creates a pool; no connection is dialed until the first checkout.
func New(cfg Config) *Pool {
	if cfg.Size <= 0 {
		cfg.Size = 4
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = 3
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 50 * time.Millisecond
	}
	if cfg.CheckoutTimeout <= 0 {
		cfg.CheckoutTimeout = 30 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Pool{
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.Size),
		idle:   make(chan Conn, cfg.Size),
		closed: make(chan struct{}),
	}
}

// Get checks a connection out of the pool, dialing one if no idle
// connection is available and the bound permits. It blocks up to
// CheckoutTimeout when the pool is exhausted.
func (p *Pool) Get() (Conn, error) {
	select {
	case <-p.closed:
		return nil, ErrClosed
	default:
	}
	timer := time.NewTimer(p.cfg.CheckoutTimeout)
	defer timer.Stop()
	select {
	case p.sem <- struct{}{}:
	case <-p.closed:
		return nil, ErrClosed
	case <-timer.C:
		p.waitTimeouts.Add(1)
		return nil, ErrCheckoutTimeout
	}
	// slot acquired: prefer an idle connection, else dial
	for {
		select {
		case c := <-p.idle:
			if p.cfg.HealthCheck {
				if err := c.Ping(); err != nil {
					p.healthFailures.Add(1)
					p.discards.Add(1)
					c.Close()
					p.cfg.Logf("pool: discarding unhealthy connection: %v", err)
					continue
				}
			}
			p.checkouts.Add(1)
			return c, nil
		default:
			c, err := p.dialWithRetry()
			if err != nil {
				<-p.sem
				return nil, err
			}
			p.checkouts.Add(1)
			return c, nil
		}
	}
}

// Put returns a checked-out connection. reusable=false discards it (broken
// transport, or connection-local backend state that must not leak into
// another session).
func (p *Pool) Put(c Conn, reusable bool) {
	if c != nil {
		select {
		case <-p.closed:
			reusable = false
		default:
		}
		if reusable {
			select {
			case p.idle <- c:
				c = nil
			default:
				// cannot happen (idle capacity == slot capacity), but never
				// block or leak if it somehow does
			}
		}
		if c != nil {
			p.discards.Add(1)
			c.Close()
		}
	}
	<-p.sem
}

// Exec runs one statement on conn, applying the per-query deadline when the
// connection supports one.
func (p *Pool) Exec(c Conn, sql string) (*core.BackendResult, error) {
	p.applyDeadline(c)
	res, err := c.Exec(sql)
	p.clearDeadline(c)
	return res, err
}

// QueryCatalog runs one catalog query on conn under the per-query deadline.
func (p *Pool) QueryCatalog(c Conn, sql string) ([][]string, error) {
	p.applyDeadline(c)
	rows, err := c.QueryCatalog(sql)
	p.clearDeadline(c)
	return rows, err
}

func (p *Pool) applyDeadline(c Conn) {
	if p.cfg.QueryTimeout > 0 {
		if d, ok := c.(deadliner); ok {
			d.SetDeadline(time.Now().Add(p.cfg.QueryTimeout))
		}
	}
}

func (p *Pool) clearDeadline(c Conn) {
	if p.cfg.QueryTimeout > 0 {
		if d, ok := c.(deadliner); ok {
			d.SetDeadline(time.Time{})
		}
	}
}

// Close drains the pool gracefully: new checkouts fail immediately,
// checked-out connections are awaited up to DrainTimeout, and every
// connection is closed. It returns an error if the drain timed out with
// connections still in use.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() { close(p.closed) })
	timer := time.NewTimer(p.cfg.DrainTimeout)
	defer timer.Stop()
	drained := 0
	var timedOut bool
	for drained < cap(p.sem) && !timedOut {
		select {
		case p.sem <- struct{}{}:
			drained++
		case <-timer.C:
			timedOut = true
		}
	}
	for {
		select {
		case c := <-p.idle:
			c.Close()
		default:
			if timedOut {
				inUse := cap(p.sem) - drained
				p.cfg.Logf("pool: drain timed out with %d connection(s) still checked out", inUse)
				return fmt.Errorf("pool: drain timed out with %d connection(s) still checked out", inUse)
			}
			return nil
		}
	}
}

// Stats returns a snapshot of pool statistics.
func (p *Pool) Stats() Stats {
	return Stats{
		Dials:          p.dials.Load(),
		DialErrors:     p.dialErrors.Load(),
		Checkouts:      p.checkouts.Load(),
		HealthFailures: p.healthFailures.Load(),
		Discards:       p.discards.Load(),
		WaitTimeouts:   p.waitTimeouts.Load(),
		InUse:          len(p.sem),
		Idle:           len(p.idle),
	}
}

func (p *Pool) dialWithRetry() (Conn, error) {
	backoff := p.cfg.DialBackoff
	var lastErr error
	for attempt := 1; attempt <= p.cfg.DialAttempts; attempt++ {
		if attempt > 1 {
			select {
			case <-time.After(backoff):
			case <-p.closed:
				return nil, ErrClosed
			}
			backoff *= 2
		}
		p.dials.Add(1)
		c, err := p.cfg.Dial()
		if err == nil {
			return c, nil
		}
		p.dialErrors.Add(1)
		lastErr = err
		p.cfg.Logf("pool: dial attempt %d/%d failed: %v", attempt, p.cfg.DialAttempts, err)
	}
	return nil, fmt.Errorf("pool: dial failed after %d attempts: %w", p.cfg.DialAttempts, lastErr)
}

// connBroken classifies an Exec error: transport-level failures poison the
// connection; clean server errors (a SQL error over a healthy connection)
// and embedded-engine errors leave it reusable.
func connBroken(err error) bool {
	if err == nil {
		return false
	}
	var se *pgv3.ServerError
	if errors.As(err, &se) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}
