// Package pool implements the backend half of the concurrent serving
// runtime: a bounded pool of backend connections (PG v3 gateways in the
// networked deployment, embedded-engine sessions in demo mode) shared by
// every Hyper-Q session of a process. The seed opened one dedicated backend
// connection per Q client; under heavy concurrent traffic the dial cost and
// the unbounded backend fan-out dominate, so sessions now check connections
// out per statement and return them immediately.
//
// Features: lazy dialing (connections are created on demand up to Size),
// health checks on checkout with a skip window for recently-healthy
// connections, dial retry with exponential backoff, per-query deadlines
// derived from the request context, and graceful drain on shutdown. All
// blocking operations — checkout waits, dial backoff, query execution — are
// bounded by the caller's context; the pool itself never touches socket
// deadlines (that mapping lives in the wire client). See SessionBackend for
// the session-facing core.Backend wrapper and its temp-table
// connection-pinning rules.
package pool

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hyperq/internal/core"
	"hyperq/internal/wire/pgv3"
)

// Conn is a pooled backend connection: a core.Backend that can also answer
// a liveness probe.
type Conn interface {
	core.Backend
	// Ping performs a cheap round trip, reporting whether the connection
	// is still usable.
	Ping() error
}

// Config tunes a pool.
type Config struct {
	// Size bounds the number of live backend connections (default 4).
	Size int
	// Dial opens a new backend connection; called lazily when a checkout
	// finds no idle connection. The context is the checking-out request's:
	// its cancellation aborts the dial.
	Dial func(ctx context.Context) (Conn, error)
	// DialAttempts is the number of dial tries per checkout (default 3);
	// DialBackoff is the initial retry delay, doubling per attempt
	// (default 50ms).
	DialAttempts int
	DialBackoff  time.Duration
	// CheckoutTimeout bounds how long a checkout waits for a free slot
	// when all connections are in use (default 30s). The request context
	// can cut the wait shorter but never extends it.
	CheckoutTimeout time.Duration
	// QueryTimeout bounds each statement run through Exec/QueryCatalog:
	// the pool derives a per-query deadline from the request context,
	// tightening it to now+QueryTimeout when set (0 disables).
	QueryTimeout time.Duration
	// HealthCheck pings idle connections on checkout, discarding dead
	// ones and dialing replacements.
	HealthCheck bool
	// HealthCheckInterval suppresses the checkout ping for a connection
	// that proved healthy within the interval — returned from a successful
	// statement or pinged — avoiding a ping round trip per checkout under
	// steady traffic (default 1s).
	HealthCheckInterval time.Duration
	// DrainTimeout bounds how long Close waits for checked-out
	// connections to come back (default 5s).
	DrainTimeout time.Duration
	// Logf, when set, receives pool diagnostics.
	Logf func(format string, args ...any)
}

// Stats reports pool activity.
type Stats struct {
	Dials               int64
	DialErrors          int64
	Checkouts           int64
	HealthFailures      int64
	HealthChecksSkipped int64
	Discards            int64
	WaitTimeouts        int64
	InUse               int
	Idle                int
}

// Pool errors.
var (
	ErrClosed          = errors.New("pool: closed")
	ErrCheckoutTimeout = errors.New("pool: timed out waiting for a free backend connection")
)

// Pool is a bounded backend-connection pool. Safe for concurrent use.
type Pool struct {
	cfg Config
	// sem holds one token per checked-out connection; its capacity is the
	// pool bound. idle buffers connections not currently checked out.
	sem       chan struct{}
	idle      chan Conn
	closed    chan struct{}
	closeOnce sync.Once

	// lastHealthy records when each live connection last proved healthy,
	// keyed by identity; entries are dropped when connections are discarded.
	mu          sync.Mutex
	lastHealthy map[Conn]time.Time

	dials, dialErrors, checkouts, healthFailures, healthSkips, discards, waitTimeouts atomic.Int64
}

// New creates a pool; no connection is dialed until the first checkout.
func New(cfg Config) *Pool {
	if cfg.Size <= 0 {
		cfg.Size = 4
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = 3
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 50 * time.Millisecond
	}
	if cfg.CheckoutTimeout <= 0 {
		cfg.CheckoutTimeout = 30 * time.Second
	}
	if cfg.HealthCheckInterval <= 0 {
		cfg.HealthCheckInterval = time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Pool{
		cfg:         cfg,
		sem:         make(chan struct{}, cfg.Size),
		idle:        make(chan Conn, cfg.Size),
		closed:      make(chan struct{}),
		lastHealthy: make(map[Conn]time.Time),
	}
}

// Get checks a connection out of the pool, dialing one if no idle
// connection is available and the bound permits. It blocks up to
// CheckoutTimeout when the pool is exhausted; canceling ctx aborts the wait
// (and any dial backoff) immediately with ctx.Err().
func (p *Pool) Get(ctx context.Context) (Conn, error) {
	select {
	case <-p.closed:
		return nil, ErrClosed
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	timer := time.NewTimer(p.cfg.CheckoutTimeout)
	defer timer.Stop()
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.closed:
		return nil, ErrClosed
	case <-timer.C:
		p.waitTimeouts.Add(1)
		return nil, ErrCheckoutTimeout
	}
	// slot acquired: prefer an idle connection, else dial
	for {
		select {
		case c := <-p.idle:
			if p.cfg.HealthCheck && !p.recentlyHealthy(c) {
				if err := c.Ping(); err != nil {
					p.healthFailures.Add(1)
					p.discard(c)
					p.cfg.Logf("pool: discarding unhealthy connection: %v", err)
					continue
				}
				p.markHealthy(c)
			}
			p.checkouts.Add(1)
			return c, nil
		default:
			c, err := p.dialWithRetry(ctx)
			if err != nil {
				<-p.sem
				return nil, err
			}
			p.markHealthy(c)
			p.checkouts.Add(1)
			return c, nil
		}
	}
}

// Put returns a checked-out connection. reusable=false discards it (broken
// transport, or connection-local backend state that must not leak into
// another session). A reusable return counts as proof of health, feeding
// the checkout skip window.
func (p *Pool) Put(c Conn, reusable bool) {
	if c != nil {
		select {
		case <-p.closed:
			reusable = false
		default:
		}
		if reusable {
			p.markHealthy(c)
			select {
			case p.idle <- c:
				c = nil
			default:
				// cannot happen (idle capacity == slot capacity), but never
				// block or leak if it somehow does
			}
		}
		if c != nil {
			p.discard(c)
		}
	}
	<-p.sem
}

// Exec runs one statement on conn under a context derived from the
// request's: QueryTimeout, when set, tightens the deadline. The wire client
// maps the resulting deadline onto socket I/O.
func (p *Pool) Exec(ctx context.Context, c Conn, sql string) (*core.BackendResult, error) {
	ctx, cancel := p.queryContext(ctx)
	defer cancel()
	return c.Exec(ctx, sql)
}

// ExecStream runs one statement on conn, streaming the result into sink,
// under the same per-query context as Exec. A connection that does not
// implement core.StreamBackend is bridged: its materialized text result is
// replayed into the sink.
func (p *Pool) ExecStream(ctx context.Context, c Conn, sql string, sink core.RowSink) error {
	ctx, cancel := p.queryContext(ctx)
	defer cancel()
	if sb, ok := c.(core.StreamBackend); ok {
		return sb.ExecStream(ctx, sql, sink)
	}
	res, err := c.Exec(ctx, sql)
	if err != nil {
		return err
	}
	return core.ReplayResult(res, sink)
}

// QueryCatalog runs one catalog query on conn under the per-query context.
func (p *Pool) QueryCatalog(ctx context.Context, c Conn, sql string) ([][]string, error) {
	ctx, cancel := p.queryContext(ctx)
	defer cancel()
	return c.QueryCatalog(ctx, sql)
}

// queryContext derives the per-query context: the caller's, tightened by
// QueryTimeout when configured.
func (p *Pool) queryContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.cfg.QueryTimeout > 0 {
		return context.WithTimeout(ctx, p.cfg.QueryTimeout)
	}
	return ctx, func() {}
}

// recentlyHealthy reports whether c proved healthy within
// HealthCheckInterval, counting a skipped checkout ping when so.
func (p *Pool) recentlyHealthy(c Conn) bool {
	p.mu.Lock()
	t, ok := p.lastHealthy[c]
	p.mu.Unlock()
	if ok && time.Since(t) < p.cfg.HealthCheckInterval {
		p.healthSkips.Add(1)
		return true
	}
	return false
}

func (p *Pool) markHealthy(c Conn) {
	p.mu.Lock()
	p.lastHealthy[c] = time.Now()
	p.mu.Unlock()
}

// discard closes a connection and forgets its health record.
func (p *Pool) discard(c Conn) {
	p.mu.Lock()
	delete(p.lastHealthy, c)
	p.mu.Unlock()
	p.discards.Add(1)
	c.Close()
}

// Close drains the pool gracefully: new checkouts fail immediately,
// checked-out connections are awaited up to DrainTimeout, and every
// connection is closed. It returns an error if the drain timed out with
// connections still in use.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() { close(p.closed) })
	timer := time.NewTimer(p.cfg.DrainTimeout)
	defer timer.Stop()
	drained := 0
	var timedOut bool
	for drained < cap(p.sem) && !timedOut {
		select {
		case p.sem <- struct{}{}:
			drained++
		case <-timer.C:
			timedOut = true
		}
	}
	for {
		select {
		case c := <-p.idle:
			p.mu.Lock()
			delete(p.lastHealthy, c)
			p.mu.Unlock()
			c.Close()
		default:
			if timedOut {
				inUse := cap(p.sem) - drained
				p.cfg.Logf("pool: drain timed out with %d connection(s) still checked out", inUse)
				return fmt.Errorf("pool: drain timed out with %d connection(s) still checked out", inUse)
			}
			return nil
		}
	}
}

// Stats returns a snapshot of pool statistics.
func (p *Pool) Stats() Stats {
	return Stats{
		Dials:               p.dials.Load(),
		DialErrors:          p.dialErrors.Load(),
		Checkouts:           p.checkouts.Load(),
		HealthFailures:      p.healthFailures.Load(),
		HealthChecksSkipped: p.healthSkips.Load(),
		Discards:            p.discards.Load(),
		WaitTimeouts:        p.waitTimeouts.Load(),
		InUse:               len(p.sem),
		Idle:                len(p.idle),
	}
}

func (p *Pool) dialWithRetry(ctx context.Context) (Conn, error) {
	backoff := p.cfg.DialBackoff
	var lastErr error
	for attempt := 1; attempt <= p.cfg.DialAttempts; attempt++ {
		if attempt > 1 {
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-p.closed:
				timer.Stop()
				return nil, ErrClosed
			}
			backoff *= 2
		}
		p.dials.Add(1)
		c, err := p.cfg.Dial(ctx)
		if err == nil {
			return c, nil
		}
		p.dialErrors.Add(1)
		lastErr = err
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		p.cfg.Logf("pool: dial attempt %d/%d failed: %v", attempt, p.cfg.DialAttempts, err)
	}
	return nil, fmt.Errorf("pool: dial failed after %d attempts: %w", p.cfg.DialAttempts, lastErr)
}

// connBroken classifies an Exec error: transport-level failures poison the
// connection; clean server errors (a SQL error over a healthy connection)
// and embedded-engine errors leave it reusable. A context abort mid-protocol
// surfaces as a pgv3.AbortError whose transport error keeps it in the broken
// class; a pure context error (embedded backend, pre-I/O cancellation)
// leaves the connection intact.
func connBroken(err error) bool {
	if err == nil {
		return false
	}
	var se *pgv3.ServerError
	if errors.As(err, &se) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}
