// Package serializer turns transformed XTRA expressions into PostgreSQL SQL
// text (paper §3.3/§3.4). Analytical plans routinely serialize to multi-
// level subqueries — exactly the effect the paper measures in Figure 7,
// where serialization is one of the two dominant translation stages.
package serializer

import (
	"fmt"
	"math"
	"strings"

	"hyperq/internal/qlang/qval"
	"hyperq/internal/xtra"
)

// SerializeScalarSelect renders a scalar expression as a single-row SELECT,
// used for stand-alone scalar Q statements such as "1+2".
func SerializeScalarSelect(e xtra.Scalar) (string, error) {
	s := &sz{}
	sql, err := s.scalar(e)
	if err != nil {
		return "", err
	}
	return "SELECT " + sql + " AS value", nil
}

// Serialize renders an XTRA tree as one SQL SELECT statement.
func Serialize(n xtra.Node) (string, error) {
	s := &sz{}
	sql, err := s.rel(n)
	if err != nil {
		return "", err
	}
	return sql, nil
}

type sz struct {
	aliasN int
}

func (s *sz) alias() string {
	s.aliasN++
	return fmt.Sprintf("hq_t%d", s.aliasN)
}

// rel renders a relational operator as a complete SELECT.
func (s *sz) rel(n xtra.Node) (string, error) {
	switch op := n.(type) {
	case *xtra.Get:
		return "SELECT " + colList(op.P.Cols, "") + " FROM " + ident(op.Table), nil
	case *xtra.ConstTable:
		return s.constTable(op)
	case *xtra.Filter:
		pred, err := s.scalar(op.Pred)
		if err != nil {
			return "", err
		}
		// fuse onto a bare Get to avoid gratuitous nesting
		if g, ok := op.Input.(*xtra.Get); ok {
			return "SELECT " + colList(op.P.Cols, "") + " FROM " + ident(g.Table) + " WHERE " + pred, nil
		}
		sub, err := s.rel(op.Input)
		if err != nil {
			return "", err
		}
		a := s.alias()
		return "SELECT " + colList(op.P.Cols, "") + " FROM (" + sub + ") " + a + " WHERE " + pred, nil
	case *xtra.Project:
		items, err := s.namedExprs(op.Exprs)
		if err != nil {
			return "", err
		}
		switch in := op.Input.(type) {
		case *xtra.Get:
			return "SELECT " + items + " FROM " + ident(in.Table), nil
		case *xtra.Filter:
			if g, ok := in.Input.(*xtra.Get); ok {
				pred, err := s.scalar(in.Pred)
				if err != nil {
					return "", err
				}
				return "SELECT " + items + " FROM " + ident(g.Table) + " WHERE " + pred, nil
			}
		}
		sub, err := s.rel(op.Input)
		if err != nil {
			return "", err
		}
		a := s.alias()
		return "SELECT " + items + " FROM (" + sub + ") " + a, nil
	case *xtra.GroupAgg:
		return s.groupAgg(op)
	case *xtra.Join:
		return s.join(op)
	case *xtra.AsOfJoin:
		return s.asofJoin(op)
	case *xtra.Window:
		sub, err := s.rel(op.Input)
		if err != nil {
			return "", err
		}
		a := s.alias()
		var items []string
		items = append(items, a+".*")
		for _, f := range op.Funcs {
			w, err := s.windowFunc(f)
			if err != nil {
				return "", err
			}
			items = append(items, w+" AS "+ident(f.Name))
		}
		return "SELECT " + strings.Join(items, ", ") + " FROM (" + sub + ") " + a, nil
	case *xtra.Union:
		return s.union(op)
	case *xtra.Sort:
		sub, err := s.rel(op.Input)
		if err != nil {
			return "", err
		}
		var keys []string
		for _, k := range op.Keys {
			dir := ""
			if k.Desc {
				dir = " DESC"
			}
			keys = append(keys, ident(k.Col)+dir)
		}
		a := s.alias()
		return "SELECT " + colList(op.P.Cols, "") + " FROM (" + sub + ") " + a + " ORDER BY " + strings.Join(keys, ", "), nil
	case *xtra.Limit:
		sub, err := s.rel(op.Input)
		if err != nil {
			return "", err
		}
		a := s.alias()
		return "SELECT " + colList(op.P.Cols, "") + " FROM (" + sub + ") " + a + " LIMIT " + fmt.Sprint(op.N), nil
	default:
		return "", fmt.Errorf("serializer: unsupported operator %s", n.OpName())
	}
}

func (s *sz) constTable(op *xtra.ConstTable) (string, error) {
	var selects []string
	for _, row := range op.Rows {
		var items []string
		for i, v := range row {
			lit, err := constSQL(v)
			if err != nil {
				return "", err
			}
			items = append(items, lit+" AS "+ident(op.P.Cols[i].Name))
		}
		selects = append(selects, "SELECT "+strings.Join(items, ", "))
	}
	return strings.Join(selects, " UNION ALL "), nil
}

func (s *sz) groupAgg(op *xtra.GroupAgg) (string, error) {
	var items, groupBy []string
	for _, k := range op.Keys {
		e, err := s.scalar(k.Expr)
		if err != nil {
			return "", err
		}
		items = append(items, e+" AS "+ident(k.Name))
		groupBy = append(groupBy, e)
	}
	for _, a := range op.Aggs {
		e, err := s.scalar(a.Expr)
		if err != nil {
			return "", err
		}
		items = append(items, e+" AS "+ident(a.Name))
	}
	var from string
	switch in := op.Input.(type) {
	case *xtra.Get:
		from = ident(in.Table)
	case *xtra.Filter:
		if g, ok := in.Input.(*xtra.Get); ok {
			pred, err := s.scalar(in.Pred)
			if err != nil {
				return "", err
			}
			from = ident(g.Table) + " WHERE " + pred
		}
	}
	if from == "" {
		sub, err := s.rel(op.Input)
		if err != nil {
			return "", err
		}
		from = "(" + sub + ") " + s.alias()
	}
	sql := "SELECT " + strings.Join(items, ", ") + " FROM " + from
	if len(groupBy) > 0 {
		sql += " GROUP BY " + strings.Join(groupBy, ", ")
	}
	return sql, nil
}

func (s *sz) join(op *xtra.Join) (string, error) {
	lsub, err := s.rel(op.L)
	if err != nil {
		return "", err
	}
	rsub, err := s.rel(op.R)
	if err != nil {
		return "", err
	}
	la, ra := s.alias(), s.alias()
	kw := "JOIN"
	if op.Kind == xtra.LeftOuterJoin {
		kw = "LEFT JOIN"
	}
	if op.Kind == xtra.CrossJoinKind {
		kw = "CROSS JOIN"
	}
	var conds []string
	for _, c := range op.EqCols {
		// null-safe equality: Q's lj matches nulls as equal keys
		conds = append(conds, la+"."+ident(c)+" IS NOT DISTINCT FROM "+ra+"."+ident(c))
	}
	if op.Extra != nil {
		e, err := s.scalar(op.Extra)
		if err != nil {
			return "", err
		}
		conds = append(conds, e)
	}
	// output columns: left side columns from la, right-only from ra
	var items []string
	leftCols := map[string]bool{}
	for _, c := range op.L.Props().Cols {
		leftCols[c.Name] = true
	}
	for _, c := range op.P.Cols {
		if leftCols[c.Name] {
			items = append(items, la+"."+ident(c.Name))
		} else {
			items = append(items, ra+"."+ident(c.Name))
		}
	}
	sql := "SELECT " + strings.Join(items, ", ") +
		" FROM (" + lsub + ") " + la + " " + kw + " (" + rsub + ") " + ra
	if len(conds) > 0 {
		sql += " ON " + strings.Join(conds, " AND ")
	}
	return sql, nil
}

// asofJoin serializes the as-of join into the left-outer-join-plus-window
// shape of the paper's Figure 2: join right rows at-or-before the left time,
// then keep the most recent via ROW_NUMBER() ... ORDER BY time DESC.
func (s *sz) asofJoin(op *xtra.AsOfJoin) (string, error) {
	lsub, err := s.rel(op.L)
	if err != nil {
		return "", err
	}
	rsub, err := s.rel(op.R)
	if err != nil {
		return "", err
	}
	la, ra := s.alias(), s.alias()
	ord := op.L.Props().OrderCol
	if ord == "" {
		return "", fmt.Errorf("serializer: as-of join requires an ordered left input")
	}
	var conds []string
	for _, c := range op.EqCols {
		conds = append(conds, la+"."+ident(c)+" IS NOT DISTINCT FROM "+ra+"."+ident(c))
	}
	conds = append(conds, ra+"."+ident(op.TimeCol)+" <= "+la+"."+ident(op.TimeCol))

	leftCols := map[string]bool{}
	var inner []string
	for _, c := range op.L.Props().Cols {
		leftCols[c.Name] = true
		inner = append(inner, la+"."+ident(c.Name))
	}
	var outCols []string
	for _, c := range op.P.Cols {
		outCols = append(outCols, ident(c.Name))
		if !leftCols[c.Name] {
			inner = append(inner, ra+"."+ident(c.Name))
		}
	}
	inner = append(inner,
		"ROW_NUMBER() OVER (PARTITION BY "+la+"."+ident(ord)+
			" ORDER BY "+ra+"."+ident(op.TimeCol)+" DESC) AS hq_rn")
	innerSQL := "SELECT " + strings.Join(inner, ", ") +
		" FROM (" + lsub + ") " + la +
		" LEFT JOIN (" + rsub + ") " + ra +
		" ON " + strings.Join(conds, " AND ")
	outer := s.alias()
	return "SELECT " + strings.Join(outCols, ", ") +
		" FROM (" + innerSQL + ") " + outer + " WHERE hq_rn = 1", nil
}

func (s *sz) windowFunc(f xtra.WindowFunc) (string, error) {
	var arg string
	if f.Arg != nil {
		a, err := s.scalar(f.Arg)
		if err != nil {
			return "", err
		}
		arg = a
	}
	var over []string
	if len(f.PartitionBy) > 0 {
		cols := make([]string, len(f.PartitionBy))
		for i, c := range f.PartitionBy {
			cols[i] = ident(c)
		}
		over = append(over, "PARTITION BY "+strings.Join(cols, ", "))
	}
	if len(f.OrderBy) > 0 {
		keys := make([]string, len(f.OrderBy))
		for i, k := range f.OrderBy {
			keys[i] = ident(k.Col)
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		over = append(over, "ORDER BY "+strings.Join(keys, ", "))
	}
	return strings.ToUpper(f.Fn) + "(" + arg + ") OVER (" + strings.Join(over, " ") + ")", nil
}

func (s *sz) namedExprs(exprs []xtra.NamedExpr) (string, error) {
	items := make([]string, len(exprs))
	for i, e := range exprs {
		sql, err := s.scalar(e.Expr)
		if err != nil {
			return "", err
		}
		items[i] = sql + " AS " + ident(e.Name)
	}
	return strings.Join(items, ", "), nil
}

// scalar renders a scalar XTRA expression as SQL.
func (s *sz) scalar(e xtra.Scalar) (string, error) {
	switch x := e.(type) {
	case *xtra.ConstExpr:
		return constSQL(x.Val)
	case *xtra.ColRef:
		return ident(x.Name), nil
	case *xtra.AggCall:
		return s.aggSQL(x)
	case *xtra.ListExpr:
		items := make([]string, len(x.Items))
		for i, it := range x.Items {
			sql, err := s.scalar(it)
			if err != nil {
				return "", err
			}
			items[i] = sql
		}
		return "(" + strings.Join(items, ", ") + ")", nil
	case *xtra.FnApp:
		return s.fnSQL(x)
	default:
		return "", fmt.Errorf("serializer: unsupported scalar %T", e)
	}
}

func (s *sz) aggSQL(a *xtra.AggCall) (string, error) {
	switch a.Fn {
	case "count":
		// Q's count is the group size: unlike SQL's COUNT(col) it does NOT
		// skip nulls, so the argument (if any) is ignored.
		return "COUNT(*)", nil
	case "sum":
		// Q's sum over an empty or all-null input is a typed zero, never
		// null; SQL's SUM yields NULL there.
		arg, err := s.scalar(a.Arg)
		if err != nil {
			return "", err
		}
		return "COALESCE(SUM(" + arg + "), 0)", nil
	case "wavg", "wsum":
		pair, ok := a.Arg.(*xtra.FnApp)
		if !ok || pair.Op != "pair" || len(pair.Args) != 2 {
			return "", fmt.Errorf("serializer: malformed %s", a.Fn)
		}
		w, err := s.scalar(pair.Args[0])
		if err != nil {
			return "", err
		}
		v, err := s.scalar(pair.Args[1])
		if err != nil {
			return "", err
		}
		// a NaN product (0 * 0w) is q's null and must not poison the sum
		prod := nanNull("((" + w + ") * (" + v + "))")
		if a.Fn == "wsum" {
			// wsum is sum of products: typed zero over empty input
			return "COALESCE(SUM(" + prod + "), 0)", nil
		}
		// zero total weight yields 0n in Q, not a division-by-zero error;
		// the numerator casts to float so integer weights do not truncate,
		// and an all-null product sum counts as 0 as q's sum does
		return "(CAST(COALESCE(SUM(" + prod + "), 0) AS double precision) / NULLIF(SUM(" + w + "), 0))", nil
	default:
		arg, err := s.scalar(a.Arg)
		if err != nil {
			return "", err
		}
		return strings.ToUpper(a.Fn) + "(" + arg + ")", nil
	}
}

// nonNullConst reports whether e is a non-null atom literal, letting the
// null-safe spellings below fall back to plain SQL operators.
func nonNullConst(e xtra.Scalar) bool {
	c, ok := e.(*xtra.ConstExpr)
	return ok && c.Val.Len() < 0 && !qval.IsNull(c.Val)
}

// nonZeroConst reports whether e is a non-null numeric literal other than 0,
// in which case division guards are unnecessary.
func nonZeroConst(e xtra.Scalar) bool {
	c, ok := e.(*xtra.ConstExpr)
	if !ok || qval.IsNull(c.Val) {
		return false
	}
	f, isNum := qval.AsFloat(c.Val)
	return isNum && f != 0
}

// nanNull maps a float NaN back to SQL NULL. In q the float null 0n IS NaN,
// so any expression that can produce NaN (0%0, 0w%0w, 0w+-0w, 0*0w, ...)
// must yield NULL on the SQL side or aggregates diverge: q's avg skips 0n
// while SQL's AVG would let a NaN value poison the whole group.
func nanNull(expr string) string {
	return "NULLIF(" + expr + ", 'NaN'::double precision)"
}

// integralType reports whether t (a vector code or its negation) denotes an
// integral numeric type, whose values have no signed zero.
func integralType(t qval.Type) bool {
	if t < 0 {
		t = -t
	}
	switch t {
	case qval.KBool, qval.KByte, qval.KShort, qval.KInt, qval.KLong:
		return true
	}
	return false
}

// floatDivide renders Q's float division. The backend divides floats by
// IEEE 754 rules (x%0 is 0w, -x%0 is -0w, division by -0.0 flips the sign),
// so the only correction needed is NaN -> NULL for the 0%0 and 0w%0w cases.
func floatDivide(l, r string) string {
	return nanNull("(CAST(" + l + " AS double precision) / " + r + ")")
}

func (s *sz) fnSQL(f *xtra.FnApp) (string, error) {
	bin := func(op string) (string, error) {
		l, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		r, err := s.scalar(f.Args[1])
		if err != nil {
			return "", err
		}
		return "(" + l + " " + op + " " + r + ")", nil
	}
	switch f.Op {
	case "+", "-", "*":
		out, err := bin(f.Op)
		if err != nil {
			return "", err
		}
		// float sums and products can produce NaN (0w + -0w, 0 * 0w) which
		// q treats as the null 0n
		if f.Typ == qval.KFloat || f.Typ == qval.KReal {
			return nanNull(out), nil
		}
		return out, nil
	case "%":
		l, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		r, err := s.scalar(f.Args[1])
		if err != nil {
			return "", err
		}
		// q divide is float division; x%0 yields signed infinity / 0n
		if nonZeroConst(f.Args[1]) {
			return "(CAST(" + l + " AS double precision) / " + r + ")", nil
		}
		return floatDivide(l, r), nil
	case "mod":
		l, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		r, err := s.scalar(f.Args[1])
		if err != nil {
			return "", err
		}
		// q mod is floored — the result takes the divisor's sign — while
		// SQL % truncates toward zero. Spell out the same correction the
		// kdb+ kernel applies (add the divisor when the signs disagree) so
		// infinite divisors agree too: -2 mod 0w is 0w, -2 mod -0w is -2.
		// Mod-by-zero is a typed null, not an error.
		rg := r
		if !nonZeroConst(f.Args[1]) {
			rg = "NULLIF(" + r + ", 0)"
		}
		m := "(" + l + " % " + rg + ")"
		expr := "(CASE WHEN (" + m + " <> 0) AND ((" + m + " < 0) <> (" + rg + " < 0))" +
			" THEN (" + m + " + " + rg + ") ELSE " + m + " END)"
		if f.Typ == qval.KFloat || f.Typ == qval.KReal {
			return nanNull(expr), nil
		}
		return expr, nil
	case "div":
		l, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		r, err := s.scalar(f.Args[1])
		if err != nil {
			return "", err
		}
		if nonZeroConst(f.Args[1]) {
			expr := "FLOOR(CAST(" + l + " AS double precision) / " + r + ")"
			if f.Typ == qval.KFloat || f.Typ == qval.KReal {
				return expr, nil
			}
			// integral results must repack like the kdb+ kernel does: FLOOR
			// can yield IEEE -0.0 (e.g. 0 div -1), and a downstream division
			// by that float would flip the infinity sign q produces
			return "CAST(" + expr + " AS bigint)", nil
		}
		if f.Typ == qval.KFloat || f.Typ == qval.KReal {
			// float div keeps the signed infinity of the divide; the inner
			// NULLIF already turned any NaN into NULL, which FLOOR keeps
			return "FLOOR(" + floatDivide(l, r) + ")", nil
		}
		// integral div by zero is a typed null (infinity has no integral
		// representation); the CAST back to bigint collapses IEEE -0.0 to 0
		// the way the kdb+ kernel's integral repack does, so a downstream
		// division by this result keeps the infinity sign q produces
		return "CAST(FLOOR(CAST(" + l + " AS double precision) / NULLIF(" + r + ", 0)) AS bigint)", nil
	case "xbar":
		b, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		x, err := s.scalar(f.Args[1])
		if err != nil {
			return "", err
		}
		expr := "((" + b + ") * FLOOR(CAST(" + x + " AS double precision) / (" + b + ")))"
		if f.Typ == qval.KFloat || f.Typ == qval.KReal {
			// an infinite bucket makes 0w * 0 = NaN, q's null
			expr = nanNull(expr)
		}
		if !nonZeroConst(f.Args[0]) {
			// q: 0 xbar x is x, not a division error
			expr = "(CASE WHEN " + b + " = 0 THEN " + x + " ELSE " + expr + " END)"
		}
		// bucketing a temporal column keeps the temporal type
		if qval.IsTemporal(f.Typ) {
			return "CAST(" + expr + " AS " + xtra.SQLTypeFor(f.Typ) + ")", nil
		}
		if integralType(f.Typ) {
			// the bucket multiply runs in double and -2 * 0.0 is IEEE -0.0;
			// q types this node long and its repack collapses the signed
			// zero, so cast back to bigint for divisor-sign parity
			return "CAST(" + expr + " AS bigint)", nil
		}
		return expr, nil
	case "&":
		l, _ := s.scalar(f.Args[0])
		r, _ := s.scalar(f.Args[1])
		if f.Typ == qval.KBool {
			return "(" + l + " AND " + r + ")", nil
		}
		// q propagates nulls through min/max; LEAST/GREATEST skip them
		return "(CASE WHEN (" + l + " IS NULL) OR (" + r + " IS NULL) THEN NULL ELSE LEAST(" + l + ", " + r + ") END)", nil
	case "|":
		l, _ := s.scalar(f.Args[0])
		r, _ := s.scalar(f.Args[1])
		if f.Typ == qval.KBool {
			return "(" + l + " OR " + r + ")", nil
		}
		return "(CASE WHEN (" + l + " IS NULL) OR (" + r + " IS NULL) THEN NULL ELSE GREATEST(" + l + ", " + r + ") END)", nil
	case "=", "<>", "<", ">", "<=", ">=":
		// bare SQL operators; the Xformer's NullSemantics rule rewrites
		// these to the null-safe q* forms unless ablated
		return bin(f.Op)
	case "qlt", "qgt", "qle", "qge":
		return s.cmpSQL(f)
	case "indf", "~":
		return bin("IS NOT DISTINCT FROM")
	case "idf":
		return bin("IS DISTINCT FROM")
	case "and":
		return bin("AND")
	case "or":
		return bin("OR")
	case "not":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return "(NOT " + a + ")", nil
	case "neg":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return "(- " + a + ")", nil
	case "in":
		l, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		items, err := s.inItems(f.Args[1])
		if err != nil {
			return "", err
		}
		if len(items) == 0 {
			return "FALSE", nil
		}
		// null-safe membership: Q's in matches nulls as equal values, where
		// SQL's IN turns unknown as soon as a NULL is involved
		parts := make([]string, len(items))
		for i, it := range items {
			parts[i] = "(" + l + " IS NOT DISTINCT FROM " + it + ")"
		}
		return "(" + strings.Join(parts, " OR ") + ")", nil
	case "within":
		x, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		bounds, ok := f.Args[1].(*xtra.ListExpr)
		var lo, hi string
		loNN, hiNN := false, false
		if ok && len(bounds.Items) == 2 {
			lo, err = s.scalar(bounds.Items[0])
			if err != nil {
				return "", err
			}
			hi, err = s.scalar(bounds.Items[1])
			if err != nil {
				return "", err
			}
			loNN, hiNN = nonNullConst(bounds.Items[0]), nonNullConst(bounds.Items[1])
		} else if c, isConst := f.Args[1].(*xtra.ConstExpr); isConst && c.Val.Len() == 2 {
			loV, hiV := qval.Index(c.Val, 0), qval.Index(c.Val, 1)
			lo, err = constSQL(loV)
			if err != nil {
				return "", err
			}
			hi, err = constSQL(hiV)
			if err != nil {
				return "", err
			}
			loNN, hiNN = !qval.IsNull(loV), !qval.IsNull(hiV)
		} else {
			return "", fmt.Errorf("serializer: within requires a 2-element bound")
		}
		if loNN && hiNN {
			// non-null bounds: only a null operand diverges from BETWEEN,
			// and under Q's null-smallest order it falls below lo
			return "((" + x + " IS NOT NULL) AND (" + x + " BETWEEN " + lo + " AND " + hi + "))", nil
		}
		ge := "(CASE WHEN " + lo + " IS NULL THEN TRUE WHEN " + x + " IS NULL THEN FALSE ELSE (" + lo + " <= " + x + ") END)"
		le := "(CASE WHEN " + x + " IS NULL THEN TRUE WHEN " + hi + " IS NULL THEN FALSE ELSE (" + x + " <= " + hi + ") END)"
		return "(" + ge + " AND " + le + ")", nil
	case "like":
		l, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		pat, ok := f.Args[1].(*xtra.ConstExpr)
		if !ok {
			return "", fmt.Errorf("serializer: like requires a constant pattern")
		}
		// a null symbol is the empty string to Q's like, not an unknown:
		// resolve the NULL case to whether the pattern matches ""
		fallback := "FALSE"
		if patternMatchesEmpty(pat.Val) {
			fallback = "TRUE"
		}
		return "COALESCE((" + l + " LIKE " + qPatternToSQL(pat.Val) + "), " + fallback + ")", nil
	case "cond":
		c, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		t, err := s.scalar(f.Args[1])
		if err != nil {
			return "", err
		}
		el, err := s.scalar(f.Args[2])
		if err != nil {
			return "", err
		}
		return "(CASE WHEN " + c + " THEN " + t + " ELSE " + el + " END)", nil
	case "fill":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		b, err := s.scalar(f.Args[1])
		if err != nil {
			return "", err
		}
		return "COALESCE(" + b + ", " + a + ")", nil
	case "cast":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return "CAST(" + a + " AS " + xtra.SQLTypeFor(f.Typ) + ")", nil
	case "abs", "sqrt", "exp", "floor", "upper", "lower":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return strings.ToUpper(f.Op) + "(" + a + ")", nil
	case "log":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return "LN(" + a + ")", nil
	case "ceiling":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return "CEIL(" + a + ")", nil
	case "signum":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return "(CASE WHEN " + a + " IS NULL THEN NULL WHEN " + a + " > 0 THEN 1 WHEN " + a + " < 0 THEN -1 ELSE 0 END)", nil
	case "null":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return "(" + a + " IS NULL)", nil
	default:
		return "", fmt.Errorf("serializer: no SQL spelling for %q", f.Op)
	}
}

// cmpSQL renders a Q comparison under two-valued logic: nulls compare as the
// smallest value of their type and null = null is true (paper §2.2/§3.3),
// where the bare SQL operators would go unknown and silently drop rows.
func (s *sz) cmpSQL(f *xtra.FnApp) (string, error) {
	l, err := s.scalar(f.Args[0])
	if err != nil {
		return "", err
	}
	r, err := s.scalar(f.Args[1])
	if err != nil {
		return "", err
	}
	op := map[string]string{"qlt": "<", "qgt": ">", "qle": "<=", "qge": ">="}[f.Op]
	if nonNullConst(f.Args[0]) && nonNullConst(f.Args[1]) {
		return "(" + l + " " + op + " " + r + ")", nil
	}
	switch f.Op {
	case "qlt":
		return "(CASE WHEN " + l + " IS NULL THEN (" + r + " IS NOT NULL) WHEN " + r + " IS NULL THEN FALSE ELSE (" + l + " < " + r + ") END)", nil
	case "qgt":
		return "(CASE WHEN " + r + " IS NULL THEN (" + l + " IS NOT NULL) WHEN " + l + " IS NULL THEN FALSE ELSE (" + l + " > " + r + ") END)", nil
	case "qle":
		return "(CASE WHEN " + l + " IS NULL THEN TRUE WHEN " + r + " IS NULL THEN FALSE ELSE (" + l + " <= " + r + ") END)", nil
	default: // qge
		return "(CASE WHEN " + r + " IS NULL THEN TRUE WHEN " + l + " IS NULL THEN FALSE ELSE (" + l + " >= " + r + ") END)", nil
	}
}

// inItems renders the right operand of Q's in as a slice of SQL literals.
func (s *sz) inItems(e xtra.Scalar) ([]string, error) {
	switch x := e.(type) {
	case *xtra.ListExpr:
		items := make([]string, len(x.Items))
		for i, it := range x.Items {
			sql, err := s.scalar(it)
			if err != nil {
				return nil, err
			}
			items[i] = sql
		}
		return items, nil
	case *xtra.ConstExpr:
		n := x.Val.Len()
		if n < 0 {
			lit, err := constSQL(x.Val)
			if err != nil {
				return nil, err
			}
			return []string{lit}, nil
		}
		items := make([]string, n)
		for i := 0; i < n; i++ {
			lit, err := constSQL(qval.Index(x.Val, i))
			if err != nil {
				return nil, err
			}
			items[i] = lit
		}
		return items, nil
	default:
		return nil, fmt.Errorf("serializer: IN requires a list")
	}
}

// patternMatchesEmpty reports whether a Q glob pattern matches the empty
// string (i.e. consists only of '*' wildcards).
func patternMatchesEmpty(v qval.Value) bool {
	var src string
	switch x := v.(type) {
	case qval.CharVec:
		src = string(x)
	case qval.Symbol:
		src = string(x)
	}
	for i := 0; i < len(src); i++ {
		if src[i] != '*' {
			return false
		}
	}
	return true
}

// qPatternToSQL converts a Q glob pattern (*, ?) to a SQL LIKE pattern.
func qPatternToSQL(v qval.Value) string {
	var src string
	switch x := v.(type) {
	case qval.CharVec:
		src = string(x)
	case qval.Symbol:
		src = string(x)
	}
	src = strings.ReplaceAll(src, "%", `\%`)
	src = strings.ReplaceAll(src, "_", `\_`)
	src = strings.ReplaceAll(src, "*", "%")
	src = strings.ReplaceAll(src, "?", "_")
	return "'" + strings.ReplaceAll(src, "'", "''") + "'"
}

// constSQL renders a Q literal as a typed SQL literal (paper §3.2.2: symbol
// maps to varchar, ints to integer types, strings to text).
func constSQL(v qval.Value) (string, error) {
	if qval.IsNull(v) {
		return "NULL", nil
	}
	switch x := v.(type) {
	case qval.Bool:
		if x {
			return "TRUE", nil
		}
		return "FALSE", nil
	case qval.Byte:
		return fmt.Sprint(byte(x)), nil
	case qval.Short:
		return fmt.Sprint(int16(x)), nil
	case qval.Int:
		return fmt.Sprint(int32(x)), nil
	case qval.Long:
		return fmt.Sprint(int64(x)), nil
	case qval.Real:
		return floatLit(float64(x)), nil
	case qval.Float:
		return floatLit(float64(x)), nil
	case qval.Symbol:
		return "'" + strings.ReplaceAll(string(x), "'", "''") + "'::varchar", nil
	case qval.CharVec:
		return "'" + strings.ReplaceAll(string(x), "'", "''") + "'", nil
	case qval.Char:
		return "'" + string(rune(x)) + "'", nil
	case qval.Temporal:
		return temporalSQL(x)
	case qval.Datetime:
		t := qval.TimeFromTimestamp(int64(float64(x) * 24 * 3600 * 1e9))
		return "'" + t.Format("2006-01-02 15:04:05.999999999") + "'::timestamp", nil
	default:
		return "", fmt.Errorf("serializer: cannot render %s literal", qval.TypeName(v.Type()))
	}
}

// floatLit renders a float literal; Q's ±0w infinities need PostgreSQL's
// quoted spelling ('Infinity'), bare tokens are a syntax error.
func floatLit(f float64) string {
	if math.IsInf(f, 1) {
		return "'Infinity'::double precision"
	}
	if math.IsInf(f, -1) {
		return "'-Infinity'::double precision"
	}
	s := fmt.Sprint(f)
	// keep the literal float-typed: a bare "0" would make i*0f integer
	// arithmetic, losing IEEE signed zeros (-1*0.0 is -0.0, -1*0 is 0)
	if !strings.ContainsAny(s, ".eE") && !math.IsNaN(f) {
		s += ".0"
	}
	return s
}

func temporalSQL(t qval.Temporal) (string, error) {
	switch t.T {
	case qval.KDate:
		d := qval.TimeFromDate(t.V)
		return "'" + d.Format("2006-01-02") + "'::date", nil
	case qval.KTime:
		ms := t.V
		return fmt.Sprintf("'%02d:%02d:%02d.%03d'::time", ms/3600000, ms/60000%60, ms/1000%60, ms%1000), nil
	case qval.KTimestamp:
		w := qval.TimeFromTimestamp(t.V)
		return "'" + w.Format("2006-01-02 15:04:05.999999999") + "'::timestamp", nil
	case qval.KMinute:
		return fmt.Sprint(t.V), nil
	case qval.KSecond:
		return fmt.Sprint(t.V), nil
	case qval.KMonth:
		return fmt.Sprint(t.V), nil
	case qval.KTimespan:
		return fmt.Sprint(t.V), nil
	default:
		return "", fmt.Errorf("serializer: cannot render %s literal", qval.TypeName(-t.T))
	}
}

// colList renders a column list, optionally qualified.
func colList(cols []xtra.Col, qual string) string {
	items := make([]string, len(cols))
	for i, c := range cols {
		if qual != "" {
			items[i] = qual + "." + ident(c.Name)
		} else {
			items[i] = ident(c.Name)
		}
	}
	return strings.Join(items, ", ")
}

// ident quotes an identifier when it contains upper-case letters or other
// characters the backend would fold or reject.
func ident(s string) string {
	plain := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c == '_' || (i > 0 && c >= '0' && c <= '9') {
			continue
		}
		plain = false
		break
	}
	if plain {
		return s
	}
	return `"` + s + `"`
}

// union serializes uj as UNION ALL over the union of columns, null-padding
// the side that lacks a column. When both inputs carry order columns, the
// right side's order values are offset past the left's so the combined
// ordcol preserves q's left-rows-then-right-rows order.
func (s *sz) union(op *xtra.Union) (string, error) {
	lsub, err := s.rel(op.L)
	if err != nil {
		return "", err
	}
	rsub, err := s.rel(op.R)
	if err != nil {
		return "", err
	}
	side := func(sub string, props *xtra.Props, offsetOrd bool) string {
		a := s.alias()
		items := make([]string, 0, len(op.P.Cols))
		for _, c := range op.P.Cols {
			switch {
			case c.Name == op.P.OrderCol && offsetOrd:
				items = append(items, "("+ident(c.Name)+" + 1000000000000) AS "+ident(c.Name))
			default:
				if _, ok := props.Col(c.Name); ok {
					items = append(items, ident(c.Name))
				} else {
					items = append(items, "NULL AS "+ident(c.Name))
				}
			}
		}
		return "SELECT " + strings.Join(items, ", ") + " FROM (" + sub + ") " + a
	}
	return side(lsub, op.L.Props(), false) + " UNION ALL " + side(rsub, op.R.Props(), true), nil
}
