// Package serializer turns transformed XTRA expressions into PostgreSQL SQL
// text (paper §3.3/§3.4). Analytical plans routinely serialize to multi-
// level subqueries — exactly the effect the paper measures in Figure 7,
// where serialization is one of the two dominant translation stages.
package serializer

import (
	"fmt"
	"strings"

	"hyperq/internal/qlang/qval"
	"hyperq/internal/xtra"
)

// SerializeScalarSelect renders a scalar expression as a single-row SELECT,
// used for stand-alone scalar Q statements such as "1+2".
func SerializeScalarSelect(e xtra.Scalar) (string, error) {
	s := &sz{}
	sql, err := s.scalar(e)
	if err != nil {
		return "", err
	}
	return "SELECT " + sql + " AS value", nil
}

// Serialize renders an XTRA tree as one SQL SELECT statement.
func Serialize(n xtra.Node) (string, error) {
	s := &sz{}
	sql, err := s.rel(n)
	if err != nil {
		return "", err
	}
	return sql, nil
}

type sz struct {
	aliasN int
}

func (s *sz) alias() string {
	s.aliasN++
	return fmt.Sprintf("hq_t%d", s.aliasN)
}

// rel renders a relational operator as a complete SELECT.
func (s *sz) rel(n xtra.Node) (string, error) {
	switch op := n.(type) {
	case *xtra.Get:
		return "SELECT " + colList(op.P.Cols, "") + " FROM " + ident(op.Table), nil
	case *xtra.ConstTable:
		return s.constTable(op)
	case *xtra.Filter:
		pred, err := s.scalar(op.Pred)
		if err != nil {
			return "", err
		}
		// fuse onto a bare Get to avoid gratuitous nesting
		if g, ok := op.Input.(*xtra.Get); ok {
			return "SELECT " + colList(op.P.Cols, "") + " FROM " + ident(g.Table) + " WHERE " + pred, nil
		}
		sub, err := s.rel(op.Input)
		if err != nil {
			return "", err
		}
		a := s.alias()
		return "SELECT " + colList(op.P.Cols, "") + " FROM (" + sub + ") " + a + " WHERE " + pred, nil
	case *xtra.Project:
		items, err := s.namedExprs(op.Exprs)
		if err != nil {
			return "", err
		}
		switch in := op.Input.(type) {
		case *xtra.Get:
			return "SELECT " + items + " FROM " + ident(in.Table), nil
		case *xtra.Filter:
			if g, ok := in.Input.(*xtra.Get); ok {
				pred, err := s.scalar(in.Pred)
				if err != nil {
					return "", err
				}
				return "SELECT " + items + " FROM " + ident(g.Table) + " WHERE " + pred, nil
			}
		}
		sub, err := s.rel(op.Input)
		if err != nil {
			return "", err
		}
		a := s.alias()
		return "SELECT " + items + " FROM (" + sub + ") " + a, nil
	case *xtra.GroupAgg:
		return s.groupAgg(op)
	case *xtra.Join:
		return s.join(op)
	case *xtra.AsOfJoin:
		return s.asofJoin(op)
	case *xtra.Window:
		sub, err := s.rel(op.Input)
		if err != nil {
			return "", err
		}
		a := s.alias()
		var items []string
		items = append(items, a+".*")
		for _, f := range op.Funcs {
			w, err := s.windowFunc(f)
			if err != nil {
				return "", err
			}
			items = append(items, w+" AS "+ident(f.Name))
		}
		return "SELECT " + strings.Join(items, ", ") + " FROM (" + sub + ") " + a, nil
	case *xtra.Union:
		return s.union(op)
	case *xtra.Sort:
		sub, err := s.rel(op.Input)
		if err != nil {
			return "", err
		}
		var keys []string
		for _, k := range op.Keys {
			dir := ""
			if k.Desc {
				dir = " DESC"
			}
			keys = append(keys, ident(k.Col)+dir)
		}
		a := s.alias()
		return "SELECT " + colList(op.P.Cols, "") + " FROM (" + sub + ") " + a + " ORDER BY " + strings.Join(keys, ", "), nil
	case *xtra.Limit:
		sub, err := s.rel(op.Input)
		if err != nil {
			return "", err
		}
		a := s.alias()
		return "SELECT " + colList(op.P.Cols, "") + " FROM (" + sub + ") " + a + " LIMIT " + fmt.Sprint(op.N), nil
	default:
		return "", fmt.Errorf("serializer: unsupported operator %s", n.OpName())
	}
}

func (s *sz) constTable(op *xtra.ConstTable) (string, error) {
	var selects []string
	for _, row := range op.Rows {
		var items []string
		for i, v := range row {
			lit, err := constSQL(v)
			if err != nil {
				return "", err
			}
			items = append(items, lit+" AS "+ident(op.P.Cols[i].Name))
		}
		selects = append(selects, "SELECT "+strings.Join(items, ", "))
	}
	return strings.Join(selects, " UNION ALL "), nil
}

func (s *sz) groupAgg(op *xtra.GroupAgg) (string, error) {
	var items, groupBy []string
	for _, k := range op.Keys {
		e, err := s.scalar(k.Expr)
		if err != nil {
			return "", err
		}
		items = append(items, e+" AS "+ident(k.Name))
		groupBy = append(groupBy, e)
	}
	for _, a := range op.Aggs {
		e, err := s.scalar(a.Expr)
		if err != nil {
			return "", err
		}
		items = append(items, e+" AS "+ident(a.Name))
	}
	var from string
	switch in := op.Input.(type) {
	case *xtra.Get:
		from = ident(in.Table)
	case *xtra.Filter:
		if g, ok := in.Input.(*xtra.Get); ok {
			pred, err := s.scalar(in.Pred)
			if err != nil {
				return "", err
			}
			from = ident(g.Table) + " WHERE " + pred
		}
	}
	if from == "" {
		sub, err := s.rel(op.Input)
		if err != nil {
			return "", err
		}
		from = "(" + sub + ") " + s.alias()
	}
	sql := "SELECT " + strings.Join(items, ", ") + " FROM " + from
	if len(groupBy) > 0 {
		sql += " GROUP BY " + strings.Join(groupBy, ", ")
	}
	return sql, nil
}

func (s *sz) join(op *xtra.Join) (string, error) {
	lsub, err := s.rel(op.L)
	if err != nil {
		return "", err
	}
	rsub, err := s.rel(op.R)
	if err != nil {
		return "", err
	}
	la, ra := s.alias(), s.alias()
	kw := "JOIN"
	if op.Kind == xtra.LeftOuterJoin {
		kw = "LEFT JOIN"
	}
	if op.Kind == xtra.CrossJoinKind {
		kw = "CROSS JOIN"
	}
	var conds []string
	for _, c := range op.EqCols {
		// null-safe equality: Q's lj matches nulls as equal keys
		conds = append(conds, la+"."+ident(c)+" IS NOT DISTINCT FROM "+ra+"."+ident(c))
	}
	if op.Extra != nil {
		e, err := s.scalar(op.Extra)
		if err != nil {
			return "", err
		}
		conds = append(conds, e)
	}
	// output columns: left side columns from la, right-only from ra
	var items []string
	leftCols := map[string]bool{}
	for _, c := range op.L.Props().Cols {
		leftCols[c.Name] = true
	}
	for _, c := range op.P.Cols {
		if leftCols[c.Name] {
			items = append(items, la+"."+ident(c.Name))
		} else {
			items = append(items, ra+"."+ident(c.Name))
		}
	}
	sql := "SELECT " + strings.Join(items, ", ") +
		" FROM (" + lsub + ") " + la + " " + kw + " (" + rsub + ") " + ra
	if len(conds) > 0 {
		sql += " ON " + strings.Join(conds, " AND ")
	}
	return sql, nil
}

// asofJoin serializes the as-of join into the left-outer-join-plus-window
// shape of the paper's Figure 2: join right rows at-or-before the left time,
// then keep the most recent via ROW_NUMBER() ... ORDER BY time DESC.
func (s *sz) asofJoin(op *xtra.AsOfJoin) (string, error) {
	lsub, err := s.rel(op.L)
	if err != nil {
		return "", err
	}
	rsub, err := s.rel(op.R)
	if err != nil {
		return "", err
	}
	la, ra := s.alias(), s.alias()
	ord := op.L.Props().OrderCol
	if ord == "" {
		return "", fmt.Errorf("serializer: as-of join requires an ordered left input")
	}
	var conds []string
	for _, c := range op.EqCols {
		conds = append(conds, la+"."+ident(c)+" IS NOT DISTINCT FROM "+ra+"."+ident(c))
	}
	conds = append(conds, ra+"."+ident(op.TimeCol)+" <= "+la+"."+ident(op.TimeCol))

	leftCols := map[string]bool{}
	var inner []string
	for _, c := range op.L.Props().Cols {
		leftCols[c.Name] = true
		inner = append(inner, la+"."+ident(c.Name))
	}
	var outCols []string
	for _, c := range op.P.Cols {
		outCols = append(outCols, ident(c.Name))
		if !leftCols[c.Name] {
			inner = append(inner, ra+"."+ident(c.Name))
		}
	}
	inner = append(inner,
		"ROW_NUMBER() OVER (PARTITION BY "+la+"."+ident(ord)+
			" ORDER BY "+ra+"."+ident(op.TimeCol)+" DESC) AS hq_rn")
	innerSQL := "SELECT " + strings.Join(inner, ", ") +
		" FROM (" + lsub + ") " + la +
		" LEFT JOIN (" + rsub + ") " + ra +
		" ON " + strings.Join(conds, " AND ")
	outer := s.alias()
	return "SELECT " + strings.Join(outCols, ", ") +
		" FROM (" + innerSQL + ") " + outer + " WHERE hq_rn = 1", nil
}

func (s *sz) windowFunc(f xtra.WindowFunc) (string, error) {
	var arg string
	if f.Arg != nil {
		a, err := s.scalar(f.Arg)
		if err != nil {
			return "", err
		}
		arg = a
	}
	var over []string
	if len(f.PartitionBy) > 0 {
		cols := make([]string, len(f.PartitionBy))
		for i, c := range f.PartitionBy {
			cols[i] = ident(c)
		}
		over = append(over, "PARTITION BY "+strings.Join(cols, ", "))
	}
	if len(f.OrderBy) > 0 {
		keys := make([]string, len(f.OrderBy))
		for i, k := range f.OrderBy {
			keys[i] = ident(k.Col)
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		over = append(over, "ORDER BY "+strings.Join(keys, ", "))
	}
	return strings.ToUpper(f.Fn) + "(" + arg + ") OVER (" + strings.Join(over, " ") + ")", nil
}

func (s *sz) namedExprs(exprs []xtra.NamedExpr) (string, error) {
	items := make([]string, len(exprs))
	for i, e := range exprs {
		sql, err := s.scalar(e.Expr)
		if err != nil {
			return "", err
		}
		items[i] = sql + " AS " + ident(e.Name)
	}
	return strings.Join(items, ", "), nil
}

// scalar renders a scalar XTRA expression as SQL.
func (s *sz) scalar(e xtra.Scalar) (string, error) {
	switch x := e.(type) {
	case *xtra.ConstExpr:
		return constSQL(x.Val)
	case *xtra.ColRef:
		return ident(x.Name), nil
	case *xtra.AggCall:
		return s.aggSQL(x)
	case *xtra.ListExpr:
		items := make([]string, len(x.Items))
		for i, it := range x.Items {
			sql, err := s.scalar(it)
			if err != nil {
				return "", err
			}
			items[i] = sql
		}
		return "(" + strings.Join(items, ", ") + ")", nil
	case *xtra.FnApp:
		return s.fnSQL(x)
	default:
		return "", fmt.Errorf("serializer: unsupported scalar %T", e)
	}
}

func (s *sz) aggSQL(a *xtra.AggCall) (string, error) {
	switch a.Fn {
	case "count":
		if a.Arg == nil {
			return "COUNT(*)", nil
		}
		arg, err := s.scalar(a.Arg)
		if err != nil {
			return "", err
		}
		return "COUNT(" + arg + ")", nil
	case "wavg", "wsum":
		pair, ok := a.Arg.(*xtra.FnApp)
		if !ok || pair.Op != "pair" || len(pair.Args) != 2 {
			return "", fmt.Errorf("serializer: malformed %s", a.Fn)
		}
		w, err := s.scalar(pair.Args[0])
		if err != nil {
			return "", err
		}
		v, err := s.scalar(pair.Args[1])
		if err != nil {
			return "", err
		}
		if a.Fn == "wsum" {
			return "SUM((" + w + ") * (" + v + "))", nil
		}
		return "(SUM((" + w + ") * (" + v + ")) / SUM(" + w + "))", nil
	default:
		arg, err := s.scalar(a.Arg)
		if err != nil {
			return "", err
		}
		return strings.ToUpper(a.Fn) + "(" + arg + ")", nil
	}
}

func (s *sz) fnSQL(f *xtra.FnApp) (string, error) {
	bin := func(op string) (string, error) {
		l, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		r, err := s.scalar(f.Args[1])
		if err != nil {
			return "", err
		}
		return "(" + l + " " + op + " " + r + ")", nil
	}
	switch f.Op {
	case "+", "-", "*":
		return bin(f.Op)
	case "%":
		l, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		r, err := s.scalar(f.Args[1])
		if err != nil {
			return "", err
		}
		// q divide is float division
		return "(CAST(" + l + " AS double precision) / " + r + ")", nil
	case "mod":
		return bin("%")
	case "div":
		l, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		r, err := s.scalar(f.Args[1])
		if err != nil {
			return "", err
		}
		return "FLOOR(CAST(" + l + " AS double precision) / " + r + ")", nil
	case "xbar":
		b, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		x, err := s.scalar(f.Args[1])
		if err != nil {
			return "", err
		}
		expr := "((" + b + ") * FLOOR(CAST(" + x + " AS double precision) / (" + b + ")))"
		// bucketing a temporal column keeps the temporal type
		if qval.IsTemporal(f.Typ) {
			return "CAST(" + expr + " AS " + xtra.SQLTypeFor(f.Typ) + ")", nil
		}
		return expr, nil
	case "&":
		l, _ := s.scalar(f.Args[0])
		r, _ := s.scalar(f.Args[1])
		if f.Typ == qval.KBool {
			return "(" + l + " AND " + r + ")", nil
		}
		return "LEAST(" + l + ", " + r + ")", nil
	case "|":
		l, _ := s.scalar(f.Args[0])
		r, _ := s.scalar(f.Args[1])
		if f.Typ == qval.KBool {
			return "(" + l + " OR " + r + ")", nil
		}
		return "GREATEST(" + l + ", " + r + ")", nil
	case "=":
		return bin("=")
	case "<>":
		return bin("<>")
	case "<", ">", "<=", ">=":
		return bin(f.Op)
	case "indf", "~":
		return bin("IS NOT DISTINCT FROM")
	case "idf":
		return bin("IS DISTINCT FROM")
	case "and":
		return bin("AND")
	case "or":
		return bin("OR")
	case "not":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return "(NOT " + a + ")", nil
	case "neg":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return "(- " + a + ")", nil
	case "in":
		l, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		r, err := s.inList(f.Args[1])
		if err != nil {
			return "", err
		}
		return "(" + l + " IN " + r + ")", nil
	case "within":
		x, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		bounds, ok := f.Args[1].(*xtra.ListExpr)
		var lo, hi string
		if ok && len(bounds.Items) == 2 {
			lo, err = s.scalar(bounds.Items[0])
			if err != nil {
				return "", err
			}
			hi, err = s.scalar(bounds.Items[1])
			if err != nil {
				return "", err
			}
		} else if c, isConst := f.Args[1].(*xtra.ConstExpr); isConst && c.Val.Len() == 2 {
			lo, err = constSQL(qval.Index(c.Val, 0))
			if err != nil {
				return "", err
			}
			hi, err = constSQL(qval.Index(c.Val, 1))
			if err != nil {
				return "", err
			}
		} else {
			return "", fmt.Errorf("serializer: within requires a 2-element bound")
		}
		return "(" + x + " BETWEEN " + lo + " AND " + hi + ")", nil
	case "like":
		l, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		pat, ok := f.Args[1].(*xtra.ConstExpr)
		if !ok {
			return "", fmt.Errorf("serializer: like requires a constant pattern")
		}
		return "(" + l + " LIKE " + qPatternToSQL(pat.Val) + ")", nil
	case "cond":
		c, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		t, err := s.scalar(f.Args[1])
		if err != nil {
			return "", err
		}
		el, err := s.scalar(f.Args[2])
		if err != nil {
			return "", err
		}
		return "(CASE WHEN " + c + " THEN " + t + " ELSE " + el + " END)", nil
	case "fill":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		b, err := s.scalar(f.Args[1])
		if err != nil {
			return "", err
		}
		return "COALESCE(" + b + ", " + a + ")", nil
	case "cast":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return "CAST(" + a + " AS " + xtra.SQLTypeFor(f.Typ) + ")", nil
	case "abs", "sqrt", "exp", "floor", "upper", "lower":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return strings.ToUpper(f.Op) + "(" + a + ")", nil
	case "log":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return "LN(" + a + ")", nil
	case "ceiling":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return "CEIL(" + a + ")", nil
	case "signum":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return "(CASE WHEN " + a + " > 0 THEN 1 WHEN " + a + " < 0 THEN -1 ELSE 0 END)", nil
	case "null":
		a, err := s.scalar(f.Args[0])
		if err != nil {
			return "", err
		}
		return "(" + a + " IS NULL)", nil
	default:
		return "", fmt.Errorf("serializer: no SQL spelling for %q", f.Op)
	}
}

// inList renders the right operand of IN: a list literal or list expression.
func (s *sz) inList(e xtra.Scalar) (string, error) {
	switch x := e.(type) {
	case *xtra.ListExpr:
		return s.scalar(x)
	case *xtra.ConstExpr:
		n := x.Val.Len()
		if n < 0 {
			lit, err := constSQL(x.Val)
			if err != nil {
				return "", err
			}
			return "(" + lit + ")", nil
		}
		items := make([]string, n)
		for i := 0; i < n; i++ {
			lit, err := constSQL(qval.Index(x.Val, i))
			if err != nil {
				return "", err
			}
			items[i] = lit
		}
		return "(" + strings.Join(items, ", ") + ")", nil
	default:
		return "", fmt.Errorf("serializer: IN requires a list")
	}
}

// qPatternToSQL converts a Q glob pattern (*, ?) to a SQL LIKE pattern.
func qPatternToSQL(v qval.Value) string {
	var src string
	switch x := v.(type) {
	case qval.CharVec:
		src = string(x)
	case qval.Symbol:
		src = string(x)
	}
	src = strings.ReplaceAll(src, "%", `\%`)
	src = strings.ReplaceAll(src, "_", `\_`)
	src = strings.ReplaceAll(src, "*", "%")
	src = strings.ReplaceAll(src, "?", "_")
	return "'" + strings.ReplaceAll(src, "'", "''") + "'"
}

// constSQL renders a Q literal as a typed SQL literal (paper §3.2.2: symbol
// maps to varchar, ints to integer types, strings to text).
func constSQL(v qval.Value) (string, error) {
	if qval.IsNull(v) {
		return "NULL", nil
	}
	switch x := v.(type) {
	case qval.Bool:
		if x {
			return "TRUE", nil
		}
		return "FALSE", nil
	case qval.Byte:
		return fmt.Sprint(byte(x)), nil
	case qval.Short:
		return fmt.Sprint(int16(x)), nil
	case qval.Int:
		return fmt.Sprint(int32(x)), nil
	case qval.Long:
		return fmt.Sprint(int64(x)), nil
	case qval.Real:
		return fmt.Sprint(float32(x)), nil
	case qval.Float:
		return fmt.Sprint(float64(x)), nil
	case qval.Symbol:
		return "'" + strings.ReplaceAll(string(x), "'", "''") + "'::varchar", nil
	case qval.CharVec:
		return "'" + strings.ReplaceAll(string(x), "'", "''") + "'", nil
	case qval.Char:
		return "'" + string(rune(x)) + "'", nil
	case qval.Temporal:
		return temporalSQL(x)
	case qval.Datetime:
		t := qval.TimeFromTimestamp(int64(float64(x) * 24 * 3600 * 1e9))
		return "'" + t.Format("2006-01-02 15:04:05.999999999") + "'::timestamp", nil
	default:
		return "", fmt.Errorf("serializer: cannot render %s literal", qval.TypeName(v.Type()))
	}
}

func temporalSQL(t qval.Temporal) (string, error) {
	switch t.T {
	case qval.KDate:
		d := qval.TimeFromDate(t.V)
		return "'" + d.Format("2006-01-02") + "'::date", nil
	case qval.KTime:
		ms := t.V
		return fmt.Sprintf("'%02d:%02d:%02d.%03d'::time", ms/3600000, ms/60000%60, ms/1000%60, ms%1000), nil
	case qval.KTimestamp:
		w := qval.TimeFromTimestamp(t.V)
		return "'" + w.Format("2006-01-02 15:04:05.999999999") + "'::timestamp", nil
	case qval.KMinute:
		return fmt.Sprint(t.V), nil
	case qval.KSecond:
		return fmt.Sprint(t.V), nil
	case qval.KMonth:
		return fmt.Sprint(t.V), nil
	case qval.KTimespan:
		return fmt.Sprint(t.V), nil
	default:
		return "", fmt.Errorf("serializer: cannot render %s literal", qval.TypeName(-t.T))
	}
}

// colList renders a column list, optionally qualified.
func colList(cols []xtra.Col, qual string) string {
	items := make([]string, len(cols))
	for i, c := range cols {
		if qual != "" {
			items[i] = qual + "." + ident(c.Name)
		} else {
			items[i] = ident(c.Name)
		}
	}
	return strings.Join(items, ", ")
}

// ident quotes an identifier when it contains upper-case letters or other
// characters the backend would fold or reject.
func ident(s string) string {
	plain := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c == '_' || (i > 0 && c >= '0' && c <= '9') {
			continue
		}
		plain = false
		break
	}
	if plain {
		return s
	}
	return `"` + s + `"`
}

// union serializes uj as UNION ALL over the union of columns, null-padding
// the side that lacks a column. When both inputs carry order columns, the
// right side's order values are offset past the left's so the combined
// ordcol preserves q's left-rows-then-right-rows order.
func (s *sz) union(op *xtra.Union) (string, error) {
	lsub, err := s.rel(op.L)
	if err != nil {
		return "", err
	}
	rsub, err := s.rel(op.R)
	if err != nil {
		return "", err
	}
	side := func(sub string, props *xtra.Props, offsetOrd bool) string {
		a := s.alias()
		items := make([]string, 0, len(op.P.Cols))
		for _, c := range op.P.Cols {
			switch {
			case c.Name == op.P.OrderCol && offsetOrd:
				items = append(items, "("+ident(c.Name)+" + 1000000000000) AS "+ident(c.Name))
			default:
				if _, ok := props.Col(c.Name); ok {
					items = append(items, ident(c.Name))
				} else {
					items = append(items, "NULL AS "+ident(c.Name))
				}
			}
		}
		return "SELECT " + strings.Join(items, ", ") + " FROM (" + sub + ") " + a
	}
	return side(lsub, op.L.Props(), false) + " UNION ALL " + side(rsub, op.R.Props(), true), nil
}
