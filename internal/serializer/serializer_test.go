package serializer

import (
	"strings"
	"testing"

	"hyperq/internal/qlang/qval"
	"hyperq/internal/xtra"
)

func getNode() *xtra.Get {
	g := &xtra.Get{Table: "trades"}
	g.P.Cols = []xtra.Col{
		{Name: xtra.OrdCol, QType: qval.KLong, SQLType: "bigint"},
		{Name: "Symbol", QType: qval.KSymbol, SQLType: "varchar"},
		{Name: "Price", QType: qval.KFloat, SQLType: "double precision"},
	}
	g.P.OrderCol = xtra.OrdCol
	return g
}

func TestSerializeGet(t *testing.T) {
	sql, err := Serialize(getNode())
	if err != nil {
		t.Fatal(err)
	}
	want := `SELECT ordcol, "Symbol", "Price" FROM trades`
	if sql != want {
		t.Fatalf("sql = %q, want %q", sql, want)
	}
}

func TestSerializeFilterFusesOntoGet(t *testing.T) {
	g := getNode()
	f := &xtra.Filter{Input: g, Pred: &xtra.FnApp{Op: "indf", Typ: qval.KBool, Args: []xtra.Scalar{
		&xtra.ColRef{Name: "Symbol", Typ: qval.KSymbol},
		&xtra.ConstExpr{Val: qval.Symbol("GOOG")},
	}}}
	f.P = g.P
	sql, err := Serialize(f)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sql, "(SELECT") {
		t.Fatalf("filter over get should fuse, got %q", sql)
	}
	if !strings.Contains(sql, `WHERE ("Symbol" IS NOT DISTINCT FROM 'GOOG'::varchar)`) {
		t.Fatalf("sql = %q", sql)
	}
}

func TestSerializeGroupAgg(t *testing.T) {
	g := getNode()
	agg := &xtra.GroupAgg{Input: g}
	agg.Keys = []xtra.NamedExpr{{Name: "Symbol", Expr: &xtra.ColRef{Name: "Symbol", Typ: qval.KSymbol}}}
	agg.Aggs = []xtra.NamedExpr{
		{Name: "mx", Expr: &xtra.AggCall{Fn: "max", Arg: &xtra.ColRef{Name: "Price", Typ: qval.KFloat}, Typ: qval.KFloat}},
		{Name: "n", Expr: &xtra.AggCall{Fn: "count", Typ: qval.KLong}},
	}
	sql, err := Serialize(agg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GROUP BY", `MAX("Price")`, "COUNT(*)", "AS mx"} {
		if !strings.Contains(sql, want) {
			t.Fatalf("sql %q missing %q", sql, want)
		}
	}
}

func TestSerializeAsOfJoinShape(t *testing.T) {
	l := getNode()
	r := &xtra.Get{Table: "quotes"}
	r.P.Cols = []xtra.Col{
		{Name: "Symbol", QType: qval.KSymbol, SQLType: "varchar"},
		{Name: "Time", QType: qval.KTime, SQLType: "time"},
		{Name: "Bid", QType: qval.KFloat, SQLType: "double precision"},
	}
	l.P.Cols = append(l.P.Cols, xtra.Col{Name: "Time", QType: qval.KTime, SQLType: "time"})
	j := &xtra.AsOfJoin{L: l, R: r, EqCols: []string{"Symbol"}, TimeCol: "Time"}
	j.P.Cols = append(j.P.Cols, l.P.Cols...)
	j.P.Cols = append(j.P.Cols, xtra.Col{Name: "Bid", QType: qval.KFloat, SQLType: "double precision"})
	j.P.OrderCol = xtra.OrdCol
	sql, err := Serialize(j)
	if err != nil {
		t.Fatal(err)
	}
	// the Figure 2 shape: left outer join + window + rank filter
	for _, want := range []string{
		"LEFT JOIN", "ROW_NUMBER() OVER (PARTITION BY", "DESC) AS hq_rn",
		"WHERE hq_rn = 1", `"Time" <= `, "IS NOT DISTINCT FROM",
	} {
		if !strings.Contains(sql, want) {
			t.Fatalf("as-of SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestSerializeSortAndLimit(t *testing.T) {
	g := getNode()
	srt := &xtra.Sort{Input: g, Keys: []xtra.SortKey{{Col: xtra.OrdCol}, {Col: "Price", Desc: true}}}
	srt.P = g.P
	lim := &xtra.Limit{Input: srt, N: 10}
	lim.P = g.P
	sql, err := Serialize(lim)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`ORDER BY ordcol, "Price" DESC`, "LIMIT 10"} {
		if !strings.Contains(sql, want) {
			t.Fatalf("sql %q missing %q", sql, want)
		}
	}
}

func TestSerializeWindow(t *testing.T) {
	g := getNode()
	g.P.OrderCol = ""
	w := &xtra.Window{Input: g, Funcs: []xtra.WindowFunc{{Name: xtra.OrdCol, Fn: "row_number"}}}
	w.P.Cols = append(w.P.Cols, g.P.Cols...)
	sql, err := Serialize(w)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "ROW_NUMBER() OVER () AS ordcol") {
		t.Fatalf("sql = %q", sql)
	}
}

func TestScalarSpellings(t *testing.T) {
	cases := []struct {
		s    xtra.Scalar
		want string
	}{
		{&xtra.ConstExpr{Val: qval.Long(5)}, "5"},
		{&xtra.ConstExpr{Val: qval.Symbol("GOOG")}, "'GOOG'::varchar"},
		{&xtra.ConstExpr{Val: qval.Float(2.5)}, "2.5"},
		{&xtra.ConstExpr{Val: qval.Bool(true)}, "TRUE"},
		{&xtra.ConstExpr{Val: qval.Null(qval.KLong)}, "NULL"},
		{&xtra.ConstExpr{Val: qval.MkDate(2016, 6, 26)}, "'2016-06-26'::date"},
		{&xtra.ConstExpr{Val: qval.MkTime(9, 30, 0, 0)}, "'09:30:00.000'::time"},
		{&xtra.FnApp{Op: "%", Typ: qval.KFloat, Args: []xtra.Scalar{
			&xtra.ColRef{Name: "a", Typ: qval.KLong}, &xtra.ConstExpr{Val: qval.Long(4)}}},
			"(CAST(a AS double precision) / 4)"},
		{&xtra.FnApp{Op: "fill", Typ: qval.KFloat, Args: []xtra.Scalar{
			&xtra.ConstExpr{Val: qval.Long(0)}, &xtra.ColRef{Name: "x", Typ: qval.KFloat}}},
			"COALESCE(x, 0)"},
		{&xtra.FnApp{Op: "in", Typ: qval.KBool, Args: []xtra.Scalar{
			&xtra.ColRef{Name: "s", Typ: qval.KSymbol},
			&xtra.ConstExpr{Val: qval.SymbolVec{"A", "B"}}}},
			"((s IS NOT DISTINCT FROM 'A'::varchar) OR (s IS NOT DISTINCT FROM 'B'::varchar))"},
		{&xtra.FnApp{Op: "within", Typ: qval.KBool, Args: []xtra.Scalar{
			&xtra.ColRef{Name: "p", Typ: qval.KFloat},
			&xtra.ConstExpr{Val: qval.LongVec{1, 9}}}},
			"((p IS NOT NULL) AND (p BETWEEN 1 AND 9))"},
		{&xtra.FnApp{Op: "cond", Typ: qval.KSymbol, Args: []xtra.Scalar{
			&xtra.ColRef{Name: "c", Typ: qval.KBool},
			&xtra.ConstExpr{Val: qval.Symbol("y")},
			&xtra.ConstExpr{Val: qval.Symbol("n")}}},
			"(CASE WHEN c THEN 'y'::varchar ELSE 'n'::varchar END)"},
	}
	for _, c := range cases {
		s := &sz{}
		got, err := s.scalar(c.s)
		if err != nil {
			t.Errorf("scalar(%v): %v", c.s.SString(), err)
			continue
		}
		if got != c.want {
			t.Errorf("scalar(%v) = %q, want %q", c.s.SString(), got, c.want)
		}
	}
}

func TestIdentifierQuoting(t *testing.T) {
	if ident("lower_case") != "lower_case" {
		t.Error("plain identifier should not be quoted")
	}
	if ident("Symbol") != `"Symbol"` {
		t.Error("mixed-case identifier must be quoted")
	}
	if ident("2col") != `"2col"` {
		t.Error("digit-leading identifier must be quoted")
	}
}

func TestWavgSerialization(t *testing.T) {
	agg := &xtra.AggCall{Fn: "wavg", Typ: qval.KFloat,
		Arg: &xtra.FnApp{Op: "pair", Typ: qval.KFloat, Args: []xtra.Scalar{
			&xtra.ColRef{Name: "Size", Typ: qval.KLong},
			&xtra.ColRef{Name: "Price", Typ: qval.KFloat}}}}
	s := &sz{}
	got, err := s.aggSQL(agg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, `SUM(NULLIF((("Size") * ("Price")), 'NaN'::double precision))`) ||
		!strings.Contains(got, `NULLIF(SUM("Size"), 0)`) {
		t.Fatalf("wavg sql = %q", got)
	}
}

func TestQPatternToSQL(t *testing.T) {
	if got := qPatternToSQL(qval.CharVec("GO*G?")); got != `'GO%G_'` {
		t.Errorf("pattern = %q", got)
	}
	// SQL wildcards in the source must be escaped
	if got := qPatternToSQL(qval.CharVec("50%_x")); got != `'50\%\_x'` {
		t.Errorf("escaped = %q", got)
	}
}

func TestSerializeScalarSelect(t *testing.T) {
	sql, err := SerializeScalarSelect(&xtra.FnApp{Op: "+", Typ: qval.KLong, Args: []xtra.Scalar{
		&xtra.ConstExpr{Val: qval.Long(1)}, &xtra.ConstExpr{Val: qval.Long(2)}}})
	if err != nil {
		t.Fatal(err)
	}
	if sql != "SELECT (1 + 2) AS value" {
		t.Fatalf("sql = %q", sql)
	}
}

func TestMoreScalarSpellings(t *testing.T) {
	long := func(n int64) xtra.Scalar { return &xtra.ConstExpr{Val: qval.Long(n)} }
	col := func(n string) xtra.Scalar { return &xtra.ColRef{Name: n, Typ: qval.KLong} }
	boolCol := func(n string) xtra.Scalar { return &xtra.ColRef{Name: n, Typ: qval.KBool} }
	cases := []struct {
		s    xtra.Scalar
		want string
	}{
		// floored modulo: the truncated remainder is corrected toward the
		// divisor's sign exactly as the kdb+ kernel does, which also covers
		// infinite divisors (-2 mod 0w is 0w)
		{&xtra.FnApp{Op: "mod", Typ: qval.KLong, Args: []xtra.Scalar{col("a"), long(3)}},
			"(CASE WHEN ((a % 3) <> 0) AND (((a % 3) < 0) <> (3 < 0)) THEN ((a % 3) + 3) ELSE (a % 3) END)"},
		{&xtra.FnApp{Op: "div", Typ: qval.KLong, Args: []xtra.Scalar{col("a"), long(3)}},
			"CAST(FLOOR(CAST(a AS double precision) / 3) AS bigint)"},
		{&xtra.FnApp{Op: "div", Typ: qval.KLong, Args: []xtra.Scalar{col("a"), col("b")}},
			"CAST(FLOOR(CAST(a AS double precision) / NULLIF(b, 0)) AS bigint)"},
		{&xtra.FnApp{Op: "and", Typ: qval.KBool, Args: []xtra.Scalar{boolCol("p"), boolCol("q")}}, "(p AND q)"},
		{&xtra.FnApp{Op: "or", Typ: qval.KBool, Args: []xtra.Scalar{boolCol("p"), boolCol("q")}}, "(p OR q)"},
		{&xtra.FnApp{Op: "not", Typ: qval.KBool, Args: []xtra.Scalar{boolCol("p")}}, "(NOT p)"},
		{&xtra.FnApp{Op: "neg", Typ: qval.KLong, Args: []xtra.Scalar{col("a")}}, "(- a)"},
		{&xtra.FnApp{Op: "abs", Typ: qval.KLong, Args: []xtra.Scalar{col("a")}}, "ABS(a)"},
		{&xtra.FnApp{Op: "log", Typ: qval.KFloat, Args: []xtra.Scalar{col("a")}}, "LN(a)"},
		{&xtra.FnApp{Op: "ceiling", Typ: qval.KLong, Args: []xtra.Scalar{col("a")}}, "CEIL(a)"},
		{&xtra.FnApp{Op: "null", Typ: qval.KBool, Args: []xtra.Scalar{col("a")}}, "(a IS NULL)"},
		{&xtra.FnApp{Op: "cast", Typ: qval.KFloat, Args: []xtra.Scalar{col("a"), &xtra.ConstExpr{Val: qval.Symbol("float")}}},
			"CAST(a AS double precision)"},
		// null-propagating min/max: LEAST/GREATEST alone would skip NULLs
		{&xtra.FnApp{Op: "&", Typ: qval.KLong, Args: []xtra.Scalar{col("a"), col("b")}},
			"(CASE WHEN (a IS NULL) OR (b IS NULL) THEN NULL ELSE LEAST(a, b) END)"},
		{&xtra.FnApp{Op: "|", Typ: qval.KLong, Args: []xtra.Scalar{col("a"), col("b")}},
			"(CASE WHEN (a IS NULL) OR (b IS NULL) THEN NULL ELSE GREATEST(a, b) END)"},
		// a NULL operand is the empty string to q's like, never unknown
		{&xtra.FnApp{Op: "like", Typ: qval.KBool, Args: []xtra.Scalar{col("s"), &xtra.ConstExpr{Val: qval.CharVec("G*")}}},
			"COALESCE((s LIKE 'G%'), FALSE)"},
		// bare ops serialize as-is; the Xformer rewrites them to indf/q* forms
		{&xtra.FnApp{Op: "=", Typ: qval.KBool, Args: []xtra.Scalar{col("a"), long(3)}}, "(a = 3)"},
		{&xtra.FnApp{Op: "indf", Typ: qval.KBool, Args: []xtra.Scalar{col("a"), long(3)}},
			"(a IS NOT DISTINCT FROM 3)"},
		{&xtra.FnApp{Op: "qlt", Typ: qval.KBool, Args: []xtra.Scalar{col("a"), long(3)}},
			"(CASE WHEN a IS NULL THEN (3 IS NOT NULL) WHEN 3 IS NULL THEN FALSE ELSE (a < 3) END)"},
		// both sides non-null literals: null-safe spelling is unnecessary
		{&xtra.FnApp{Op: "qge", Typ: qval.KBool, Args: []xtra.Scalar{long(5), long(3)}}, "(5 >= 3)"},
		// IEEE division in the backend supplies the signed infinities for
		// x%0; only NaN (0%0, 0w%0w) needs mapping back to q's null
		{&xtra.FnApp{Op: "%", Typ: qval.KFloat, Args: []xtra.Scalar{col("a"), col("b")}},
			"NULLIF((CAST(a AS double precision) / b), 'NaN'::double precision)"},
	}
	for _, c := range cases {
		z := &sz{}
		got, err := z.scalar(c.s)
		if err != nil {
			t.Errorf("scalar(%s): %v", c.s.SString(), err)
			continue
		}
		if got != c.want {
			t.Errorf("scalar(%s) = %q, want %q", c.s.SString(), got, c.want)
		}
	}
}

func TestXbarTemporalCast(t *testing.T) {
	z := &sz{}
	got, err := z.scalar(&xtra.FnApp{Op: "xbar", Typ: qval.KTime, Args: []xtra.Scalar{
		&xtra.ConstExpr{Val: qval.Long(900000)},
		&xtra.ColRef{Name: "Time", Typ: qval.KTime},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "AS time)") {
		t.Fatalf("temporal xbar should cast back to time: %q", got)
	}
}

func TestUnionSerialization(t *testing.T) {
	l := getNode()
	r := &xtra.Get{Table: "extra"}
	r.P.Cols = []xtra.Col{
		{Name: xtra.OrdCol, QType: qval.KLong, SQLType: "bigint"},
		{Name: "Symbol", QType: qval.KSymbol, SQLType: "varchar"},
		{Name: "Venue", QType: qval.KSymbol, SQLType: "varchar"},
	}
	r.P.OrderCol = xtra.OrdCol
	u := &xtra.Union{L: l, R: r}
	u.P.Cols = append(u.P.Cols, l.P.Cols...)
	u.P.Cols = append(u.P.Cols, xtra.Col{Name: "Venue", QType: qval.KSymbol, SQLType: "varchar"})
	u.P.OrderCol = xtra.OrdCol
	sql, err := Serialize(u)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"UNION ALL", "NULL AS \"Venue\"", "NULL AS \"Price\"", "+ 1000000000000"} {
		if !strings.Contains(sql, want) {
			t.Fatalf("union sql missing %q:\n%s", want, sql)
		}
	}
}
