// Package qgen generates random typed tables and random q-sql queries for
// differential testing (qdiff). The side-by-side framework (paper §5) runs
// each generated query through both the kdb+ substrate and the Hyper-Q →
// SQL pipeline; qgen's job is to cover the semantic corners where the two
// dialects disagree — nulls, infinities, empty inputs, duplicates — while
// staying inside the grammar both engines implement.
package qgen

import (
	"fmt"
	"strings"
)

// Kind is the coarse type of a generated expression, enough to keep the
// grammar well-typed without re-implementing the binder.
type Kind int

const (
	Num  Kind = iota // long or float
	Sym              // symbol
	Time             // time-of-day
	Bool             // comparison result
)

// Expr is a generated scalar expression.
type Expr interface {
	// Q renders the expression as q source, fully parenthesized so q's
	// right-to-left evaluation cannot regroup it.
	Q() string
	Kind() Kind
	// Children returns direct sub-expressions (for shrinking).
	Children() []Expr
}

// Col references a column of the query's input table.
type Col struct {
	Name string
	T    Kind
}

func (c *Col) Q() string        { return c.Name }
func (c *Col) Kind() Kind       { return c.T }
func (c *Col) Children() []Expr { return nil }

// ConstInt is an integer literal.
type ConstInt struct{ V int64 }

func (c *ConstInt) Q() string        { return fmt.Sprint(c.V) }
func (c *ConstInt) Kind() Kind       { return Num }
func (c *ConstInt) Children() []Expr { return nil }

// ConstFloat is a finite float literal.
type ConstFloat struct{ V float64 }

func (c *ConstFloat) Q() string {
	s := fmt.Sprint(c.V)
	if !strings.ContainsAny(s, ".e") {
		s += "f" // keep the literal a float even when integral
	}
	return s
}
func (c *ConstFloat) Kind() Kind       { return Num }
func (c *ConstFloat) Children() []Expr { return nil }

// ConstSym is a symbol literal.
type ConstSym struct{ V string }

func (c *ConstSym) Q() string        { return "`" + c.V }
func (c *ConstSym) Kind() Kind       { return Sym }
func (c *ConstSym) Children() []Expr { return nil }

// ConstTime is a time-of-day literal (milliseconds since midnight).
type ConstTime struct{ Ms int64 }

func (c *ConstTime) Q() string {
	ms := c.Ms
	return fmt.Sprintf("%02d:%02d:%02d.%03d", ms/3600000, ms/60000%60, ms/1000%60, ms%1000)
}
func (c *ConstTime) Kind() Kind       { return Time }
func (c *ConstTime) Children() []Expr { return nil }

// Bin applies a dyadic operator: arithmetic (+ - * % mod div xbar & |) on
// Num operands, comparisons (= <> < > <= >=) yielding Bool.
type Bin struct {
	Op   string
	L, R Expr
	T    Kind
}

func (b *Bin) Q() string        { return "(" + b.L.Q() + " " + b.Op + " " + b.R.Q() + ")" }
func (b *Bin) Kind() Kind       { return b.T }
func (b *Bin) Children() []Expr { return []Expr{b.L, b.R} }

// Agg applies an aggregate verb. W is non-nil only for the dyadic wavg/wsum.
type Agg struct {
	Fn string
	X  Expr
	W  Expr
}

func (a *Agg) Q() string {
	if a.W != nil {
		return "(" + a.W.Q() + " " + a.Fn + " " + a.X.Q() + ")"
	}
	return "(" + a.Fn + " " + a.X.Q() + ")"
}
func (a *Agg) Kind() Kind { return Num }
func (a *Agg) Children() []Expr {
	if a.W != nil {
		return []Expr{a.X, a.W}
	}
	return []Expr{a.X}
}

// In tests membership against a literal list.
type In struct {
	X     Expr
	Items []Expr
}

func (n *In) Q() string {
	parts := make([]string, len(n.Items))
	for i, it := range n.Items {
		parts[i] = it.Q()
	}
	if n.X.Kind() == Sym {
		// symbol lists juxtapose: `a`b`c
		return "(" + n.X.Q() + " in " + strings.Join(parts, "") + ")"
	}
	return "(" + n.X.Q() + " in (" + strings.Join(parts, ";") + "))"
}
func (n *In) Kind() Kind       { return Bool }
func (n *In) Children() []Expr { return append([]Expr{n.X}, n.Items...) }

// Within tests inclusion in a closed interval.
type Within struct {
	X      Expr
	Lo, Hi Expr
}

func (w *Within) Q() string {
	return "(" + w.X.Q() + " within (" + w.Lo.Q() + ";" + w.Hi.Q() + "))"
}
func (w *Within) Kind() Kind       { return Bool }
func (w *Within) Children() []Expr { return []Expr{w.X, w.Lo, w.Hi} }

// Like glob-matches a symbol column against a constant pattern.
type Like struct {
	X   Expr
	Pat string
}

func (l *Like) Q() string        { return "(" + l.X.Q() + " like \"" + l.Pat + "\")" }
func (l *Like) Kind() Kind       { return Bool }
func (l *Like) Children() []Expr { return []Expr{l.X} }

// refsColumn reports whether e references at least one column; q collapses a
// select whose expressions are all atoms to a single row, so the generator
// requires every non-aggregate select column to pass this.
func refsColumn(e Expr) bool {
	if _, ok := e.(*Col); ok {
		return true
	}
	for _, c := range e.Children() {
		if refsColumn(c) {
			return true
		}
	}
	return false
}
