package qgen

import (
	"encoding/json"
	"strings"
	"testing"

	"hyperq/internal/qlang/qval"
)

func TestGeneratorIsDeterministic(t *testing.T) {
	a, b := New(Config{Seed: 7}), New(Config{Seed: 7})
	for i := 0; i < 50; i++ {
		qa, qb := a.Query().Q(), b.Query().Q()
		if qa != qb {
			t.Fatalf("iteration %d diverged:\n%s\n%s", i, qa, qb)
		}
	}
	da, db := a.Dataset(), b.Dataset()
	for _, name := range da.Names() {
		if da.Tables[name].String() != db.Tables[name].String() {
			t.Fatalf("table %s diverged", name)
		}
	}
}

func TestGeneratedQueriesAreWellFormed(t *testing.T) {
	g := New(Config{Seed: 3})
	for i := 0; i < 200; i++ {
		q := g.Query()
		text := q.Q()
		if !strings.HasPrefix(text, "select") && !strings.HasPrefix(text, "exec") {
			t.Fatalf("bad query kind: %s", text)
		}
		if !strings.Contains(text, " from ") {
			t.Fatalf("missing from: %s", text)
		}
		// every non-aggregate select column must reference a column,
		// otherwise q collapses the result to a single row
		for _, sc := range q.Cols {
			if _, isAgg := sc.Expr.(*Agg); !isAgg && !refsColumn(sc.Expr) {
				t.Fatalf("column-free select expr in %s", text)
			}
		}
		// grouped queries must aggregate every select column
		if len(q.By) > 0 {
			for _, sc := range q.Cols {
				if _, isAgg := sc.Expr.(*Agg); !isAgg {
					t.Fatalf("non-aggregate column under by: %s", text)
				}
			}
		}
	}
}

func TestDatasetShape(t *testing.T) {
	g := New(Config{Seed: 11})
	sawEmpty := false
	for i := 0; i < 40; i++ {
		d := g.Dataset()
		fact := d.Tables["t"]
		if fact.NumCols() != 4 {
			t.Fatalf("fact table has %d cols", fact.NumCols())
		}
		if fact.Len() == 0 {
			sawEmpty = true
		}
		// dim keys must be unique: lj takes the first match in q while SQL
		// fans out, so duplicate keys would be an uninteresting divergence
		dim := d.Tables["d"]
		seen := map[string]bool{}
		for j := 0; j < dim.Len(); j++ {
			k := string(qval.Index(dim.Data[0], j).(qval.Symbol))
			if seen[k] {
				t.Fatalf("duplicate dim key %q", k)
			}
			seen[k] = true
		}
		// quote times must be strictly increasing per symbol (aj ties
		// resolve differently in the two engines)
		qts := d.Tables["qts"]
		last := map[string]int64{}
		for j := 0; j < qts.Len(); j++ {
			s := string(qval.Index(qts.Data[0], j).(qval.Symbol))
			tm := qval.Index(qts.Data[1], j).(qval.Temporal).V
			if prev, ok := last[s]; ok && tm <= prev {
				t.Fatalf("non-increasing quote time for %q", s)
			}
			last[s] = tm
		}
	}
	if !sawEmpty {
		t.Error("empty fact table never generated in 40 datasets")
	}
}

func TestTableCodecRoundTrip(t *testing.T) {
	g := New(Config{Seed: 5})
	for i := 0; i < 10; i++ {
		d := g.Dataset()
		encoded, err := EncodeDataset(d)
		if err != nil {
			t.Fatal(err)
		}
		// through JSON text, as the corpus stores it
		text, err := json.Marshal(encoded)
		if err != nil {
			t.Fatal(err)
		}
		var back []TableJSON
		if err := json.Unmarshal(text, &back); err != nil {
			t.Fatal(err)
		}
		d2, err := DecodeDataset(back)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range d.Names() {
			a, b := d.Tables[name], d2.Tables[name]
			if a.String() != b.String() {
				t.Fatalf("%s did not round-trip:\n%s\n%s", name, a, b)
			}
		}
	}
}

func TestShrinksAreSmallerOrEqual(t *testing.T) {
	g := New(Config{Seed: 9})
	for i := 0; i < 100; i++ {
		q := g.Query()
		for _, s := range q.Shrinks() {
			if len(s.Q()) > len(q.Q()) {
				t.Fatalf("shrink grew: %q -> %q", q.Q(), s.Q())
			}
		}
	}
}
