package qgen

import "strings"

// SelCol is one select or by column: Name is empty for bare expressions
// (exec columns and wildcard selects).
type SelCol struct {
	Name string
	Expr Expr
}

// Query is a structured q-sql query. Keeping the structure (rather than
// generating text directly) is what makes shrinking possible: the shrinker
// deletes where-conjuncts, select columns, the by clause or the join and
// re-renders.
type Query struct {
	Kind  string // "select" or "exec"
	Cols  []SelCol
	By    []SelCol
	From  string // "t", "t lj d" or "aj[`s`tm; t; qts]"
	Where []Expr // conjuncts
}

// Q renders the query as q source.
func (q *Query) Q() string {
	var b strings.Builder
	b.WriteString(q.Kind)
	for i, c := range q.Cols {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(" ")
		if c.Name != "" {
			b.WriteString(c.Name)
			b.WriteString(":")
		}
		b.WriteString(c.Expr.Q())
	}
	if len(q.By) > 0 {
		b.WriteString(" by ")
		for i, c := range q.By {
			if i > 0 {
				b.WriteString(", ")
			}
			if c.Name != "" {
				b.WriteString(c.Name)
				b.WriteString(":")
			}
			b.WriteString(c.Expr.Q())
		}
	}
	b.WriteString(" from ")
	b.WriteString(q.From)
	for i, w := range q.Where {
		if i == 0 {
			b.WriteString(" where ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(w.Q())
	}
	return b.String()
}

// Clone deep-copies the query structure (expressions are immutable once
// generated, so sharing them is safe).
func (q *Query) Clone() *Query {
	c := &Query{Kind: q.Kind, From: q.From}
	c.Cols = append([]SelCol(nil), q.Cols...)
	c.By = append([]SelCol(nil), q.By...)
	c.Where = append([]Expr(nil), q.Where...)
	return c
}

// Shrinks proposes structurally smaller variants of the query, most
// aggressive first. The caller keeps a variant if it still reproduces the
// divergence.
func (q *Query) Shrinks() []*Query {
	var out []*Query
	// drop the whole where clause, then individual conjuncts
	if len(q.Where) > 0 {
		c := q.Clone()
		c.Where = nil
		out = append(out, c)
		if len(q.Where) > 1 {
			for i := range q.Where {
				c := q.Clone()
				c.Where = append(append([]Expr(nil), q.Where[:i]...), q.Where[i+1:]...)
				out = append(out, c)
			}
		}
	}
	// drop the by clause (global aggregate keeps the same column exprs)
	if len(q.By) > 0 {
		c := q.Clone()
		c.By = nil
		out = append(out, c)
	}
	// drop select columns one at a time (keep at least one)
	if len(q.Cols) > 1 {
		for i := range q.Cols {
			c := q.Clone()
			c.Cols = append(append([]SelCol(nil), q.Cols[:i]...), q.Cols[i+1:]...)
			out = append(out, c)
		}
	}
	// simplify the from clause to the bare fact table
	if q.From != "t" {
		c := q.Clone()
		c.From = "t"
		out = append(out, c)
	}
	// replace each column expression by a child subtree that still
	// references a column (keeps the query valid under q's shape rules)
	for i, sc := range q.Cols {
		for _, sub := range subExprs(sc.Expr) {
			if !refsColumn(sub) {
				continue
			}
			if _, isAgg := sc.Expr.(*Agg); isAgg {
				// aggregate columns must stay aggregates under a by clause
				if _, subAgg := sub.(*Agg); !subAgg && len(q.By) > 0 {
					continue
				}
			}
			c := q.Clone()
			c.Cols = append([]SelCol(nil), q.Cols...)
			c.Cols[i] = SelCol{Name: sc.Name, Expr: sub}
			out = append(out, c)
		}
	}
	// simplify where conjuncts to child predicates
	for i, w := range q.Where {
		for _, sub := range subExprs(w) {
			if sub.Kind() != Bool {
				continue
			}
			c := q.Clone()
			c.Where = append([]Expr(nil), q.Where...)
			c.Where[i] = sub
			out = append(out, c)
		}
	}
	return out
}

// subExprs lists all proper sub-expressions of e.
func subExprs(e Expr) []Expr {
	var out []Expr
	for _, c := range e.Children() {
		out = append(out, c)
		out = append(out, subExprs(c)...)
	}
	return out
}
