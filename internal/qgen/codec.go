package qgen

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"hyperq/internal/qlang/qval"
)

// TableJSON is the persisted form of one table in a qdiff reproducer: every
// cell is q literal text ("0N", "0n", "0w", "-0w", "09:30:00.000", bare
// symbols), keeping the regression corpus readable and diffable.
type TableJSON struct {
	Name string       `json:"name"`
	Cols []ColumnJSON `json:"cols"`
}

// ColumnJSON is one column: Type is the q type name (long/float/symbol/time).
type ColumnJSON struct {
	Name  string   `json:"name"`
	Type  string   `json:"type"`
	Cells []string `json:"cells"`
}

// EncodeTable renders a table into its JSON form.
func EncodeTable(name string, t *qval.Table) (TableJSON, error) {
	out := TableJSON{Name: name}
	for ci, cn := range t.Cols {
		col := t.Data[ci]
		cj := ColumnJSON{Name: cn, Type: qTypeName(col.Type()), Cells: []string{}}
		n := t.Len()
		for i := 0; i < n; i++ {
			cell, err := encodeCell(qval.Index(col, i))
			if err != nil {
				return TableJSON{}, fmt.Errorf("%s.%s[%d]: %w", name, cn, i, err)
			}
			cj.Cells = append(cj.Cells, cell)
		}
		out.Cols = append(out.Cols, cj)
	}
	return out, nil
}

// DecodeTable rebuilds a table from its JSON form.
func DecodeTable(tj TableJSON) (*qval.Table, error) {
	var names []string
	var data []qval.Value
	for _, cj := range tj.Cols {
		names = append(names, cj.Name)
		col, err := decodeColumn(cj)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: %w", tj.Name, cj.Name, err)
		}
		data = append(data, col)
	}
	return qval.NewTable(names, data), nil
}

func qTypeName(t qval.Type) string {
	switch t {
	case qval.KLong:
		return "long"
	case qval.KFloat:
		return "float"
	case qval.KSymbol:
		return "symbol"
	case qval.KTime:
		return "time"
	case qval.KBool:
		return "boolean"
	default:
		return qval.TypeName(t)
	}
}

func encodeCell(v qval.Value) (string, error) {
	switch x := v.(type) {
	case qval.Long:
		if int64(x) == qval.NullLong {
			return "0N", nil
		}
		return strconv.FormatInt(int64(x), 10), nil
	case qval.Float:
		f := float64(x)
		switch {
		case math.IsNaN(f):
			return "0n", nil
		case math.IsInf(f, 1):
			return "0w", nil
		case math.IsInf(f, -1):
			return "-0w", nil
		default:
			return strconv.FormatFloat(f, 'g', -1, 64), nil
		}
	case qval.Symbol:
		return string(x), nil
	case qval.Bool:
		if x {
			return "1b", nil
		}
		return "0b", nil
	case qval.Temporal:
		if x.T != qval.KTime {
			return "", fmt.Errorf("unsupported temporal type %s", qval.TypeName(x.T))
		}
		if x.V == qval.NullLong {
			return "0N", nil
		}
		ms := x.V
		return fmt.Sprintf("%02d:%02d:%02d.%03d", ms/3600000, ms/60000%60, ms/1000%60, ms%1000), nil
	default:
		return "", fmt.Errorf("unsupported cell type %T", v)
	}
}

func decodeColumn(cj ColumnJSON) (qval.Value, error) {
	n := len(cj.Cells)
	switch cj.Type {
	case "long":
		out := make(qval.LongVec, n)
		for i, c := range cj.Cells {
			if c == "0N" {
				out[i] = qval.NullLong
				continue
			}
			v, err := strconv.ParseInt(c, 10, 64)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case "float":
		out := make(qval.FloatVec, n)
		for i, c := range cj.Cells {
			switch c {
			case "0n":
				out[i] = math.NaN()
			case "0w":
				out[i] = math.Inf(1)
			case "-0w":
				out[i] = math.Inf(-1)
			default:
				v, err := strconv.ParseFloat(c, 64)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
		}
		return out, nil
	case "symbol":
		out := make(qval.SymbolVec, n)
		for i, c := range cj.Cells {
			out[i] = c
		}
		return out, nil
	case "boolean":
		out := make(qval.BoolVec, n)
		for i, c := range cj.Cells {
			out[i] = c == "1b" || c == "1" || c == "true"
		}
		return out, nil
	case "time":
		out := make([]int64, n)
		for i, c := range cj.Cells {
			if c == "0N" || c == "0Nt" {
				out[i] = qval.NullLong
				continue
			}
			ms, err := parseTimeCell(c)
			if err != nil {
				return nil, err
			}
			out[i] = ms
		}
		return qval.TemporalVec{T: qval.KTime, V: out}, nil
	default:
		return nil, fmt.Errorf("unsupported column type %q", cj.Type)
	}
}

func parseTimeCell(s string) (int64, error) {
	frac := int64(0)
	if dot := strings.IndexByte(s, '.'); dot >= 0 {
		fs := s[dot+1:]
		for len(fs) < 3 {
			fs += "0"
		}
		n, err := strconv.Atoi(fs[:3])
		if err != nil {
			return 0, err
		}
		frac = int64(n)
		s = s[:dot]
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("bad time %q", s)
	}
	h, e1 := strconv.Atoi(parts[0])
	m, e2 := strconv.Atoi(parts[1])
	sec, e3 := strconv.Atoi(parts[2])
	if e1 != nil || e2 != nil || e3 != nil {
		return 0, fmt.Errorf("bad time %q", s)
	}
	return int64(h)*3600000 + int64(m)*60000 + int64(sec)*1000 + frac, nil
}

// EncodeDataset renders all tables of a dataset.
func EncodeDataset(d *Dataset) ([]TableJSON, error) {
	var out []TableJSON
	for _, name := range d.Names() {
		tj, err := EncodeTable(name, d.Tables[name])
		if err != nil {
			return nil, err
		}
		out = append(out, tj)
	}
	return out, nil
}

// DecodeDataset rebuilds a dataset from its JSON tables.
func DecodeDataset(tjs []TableJSON) (*Dataset, error) {
	d := &Dataset{Tables: map[string]*qval.Table{}}
	for _, tj := range tjs {
		t, err := DecodeTable(tj)
		if err != nil {
			return nil, err
		}
		d.Tables[tj.Name] = t
	}
	return d, nil
}
