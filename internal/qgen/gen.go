package qgen

import (
	"math"
	"math/rand"

	"hyperq/internal/qlang/qval"
)

// Config seeds a Generator.
type Config struct {
	Seed int64
	// MaxRows bounds the fact table's row count (default 12). Small tables
	// keep shrunk reproducers readable while still covering empty inputs,
	// duplicates and null-heavy columns.
	MaxRows int
}

// Generator produces random datasets and queries. All randomness flows from
// the seeded source, so a (seed, iteration) pair replays exactly.
type Generator struct {
	rng *rand.Rand
	max int
}

// New builds a Generator.
func New(cfg Config) *Generator {
	if cfg.MaxRows <= 0 {
		cfg.MaxRows = 12
	}
	return &Generator{rng: rand.New(rand.NewSource(cfg.Seed)), max: cfg.MaxRows}
}

// symDomain is the symbol universe; the empty symbol is q's null.
var symDomain = []string{"a", "b", "c", ""}

// hiDupDomain is the shrunk symbol universe of high-duplicate datasets: a
// couple of distinct keys spread over every row, the distribution where a
// secondary index's postings lists grow long and equality predicates select
// large fractions of the table.
var hiDupDomain = []string{"a", ""}

// floatDomain seeds float columns with the adversarial values: zeros for
// division, null (0n), both infinities (±0w), and negatives.
var floatDomain = []float64{-2.5, 0, 0, 1.5, 3.25, 100,
	math.NaN(), math.Inf(1), math.Inf(-1)}

// Dataset is the fixed schema every generated query runs against:
//
//	t   (fact):   s sym, i long, f float, tm time — nulls, dups, ±0w
//	d   (dim):    s sym (unique), v long, w float — lj right side
//	qts (quotes): s sym, tm time (strictly increasing per sym), p float — aj
type Dataset struct {
	Tables map[string]*qval.Table
}

// Names returns the table names in load order.
func (d *Dataset) Names() []string { return []string{"t", "d", "qts"} }

// Dataset generates one random dataset.
func (g *Generator) Dataset() *Dataset {
	r := g.rng
	n := r.Intn(g.max + 1)
	if r.Intn(8) == 0 {
		n = 0 // force the empty-table corner regularly
	}
	// occasionally shrink the key domain so the fact and quote tables carry
	// high-duplicate keys (the dim table keeps its unique full-domain keys)
	pool := symDomain
	if r.Intn(4) == 0 {
		pool = hiDupDomain
	}
	syms := make(qval.SymbolVec, n)
	is := make(qval.LongVec, n)
	fs := make(qval.FloatVec, n)
	tms := make([]int64, n)
	tm := int64(9 * 3600000)
	for j := 0; j < n; j++ {
		syms[j] = pool[r.Intn(len(pool))]
		if r.Intn(5) == 0 {
			is[j] = qval.NullLong
		} else {
			is[j] = int64(r.Intn(8) - 2) // small ints with duplicates
		}
		fs[j] = floatDomain[r.Intn(len(floatDomain))]
		tm += int64(r.Intn(60000)) // non-decreasing, may tie
		tms[j] = tm
	}
	t := qval.NewTable([]string{"s", "i", "f", "tm"}, []qval.Value{
		syms, is, fs, qval.TemporalVec{T: qval.KTime, V: tms},
	})

	// dim table: unique symbol keys so lj's first-match and SQL's join
	// fan-out agree; cover a subset of the domain plus a stranger
	dsyms := qval.SymbolVec{}
	for _, s := range []string{"a", "b", "c", "", "z"} {
		if r.Intn(4) > 0 {
			dsyms = append(dsyms, s)
		}
	}
	dvs := make(qval.LongVec, len(dsyms))
	dws := make(qval.FloatVec, len(dsyms))
	for j := range dsyms {
		if r.Intn(6) == 0 {
			dvs[j] = qval.NullLong
		} else {
			dvs[j] = int64(10 * (j + 1))
		}
		dws[j] = floatDomain[r.Intn(len(floatDomain))]
	}
	d := qval.NewTable([]string{"s", "v", "w"}, []qval.Value{dsyms, dvs, dws})

	// quote table: per-symbol strictly increasing times — q's aj resolves
	// ties to the rightmost row, SQL's window rank to an arbitrary one, so
	// ties are excluded by construction (catalogued divergence)
	qn := r.Intn(8)
	qsyms := make(qval.SymbolVec, qn)
	qtms := make([]int64, qn)
	qps := make(qval.FloatVec, qn)
	last := map[string]int64{}
	for j := 0; j < qn; j++ {
		s := pool[r.Intn(len(pool))]
		base, ok := last[s]
		if !ok {
			base = 9 * 3600000
		}
		base += int64(1 + r.Intn(120000))
		last[s] = base
		qsyms[j] = s
		qtms[j] = base
		qps[j] = floatDomain[r.Intn(len(floatDomain))]
	}
	qts := qval.NewTable([]string{"s", "tm", "p"}, []qval.Value{
		qsyms, qval.TemporalVec{T: qval.KTime, V: qtms}, qps,
	})

	return &Dataset{Tables: map[string]*qval.Table{"t": t, "d": d, "qts": qts}}
}

// fromInfo describes a from-clause variant and the columns it exposes.
type fromInfo struct {
	src  string
	cols []*Col
}

var fromVariants = []fromInfo{
	{"t", []*Col{{"s", Sym}, {"i", Num}, {"f", Num}, {"tm", Time}}},
	{"t lj d", []*Col{{"s", Sym}, {"i", Num}, {"f", Num}, {"tm", Time}, {"v", Num}, {"w", Num}}},
	{"aj[`s`tm; t; qts]", []*Col{{"s", Sym}, {"i", Num}, {"f", Num}, {"tm", Time}, {"p", Num}}},
}

// Query generates one random query against the Dataset schema.
func (g *Generator) Query() *Query {
	r := g.rng
	var from fromInfo
	switch r.Intn(10) {
	case 0, 1, 2:
		from = fromVariants[1] // lj
	case 3:
		from = fromVariants[2] // aj
	default:
		from = fromVariants[0]
	}
	q := &Query{From: from.src}
	cols := from.cols

	mode := r.Intn(10)
	switch {
	case mode < 2: // exec of a single column expression -> bare vector
		q.Kind = "exec"
		q.Cols = []SelCol{{Expr: g.colExpr(cols, 2)}}
	case mode < 4: // global aggregate
		q.Kind = "select"
		nc := 1 + r.Intn(2)
		for j := 0; j < nc; j++ {
			q.Cols = append(q.Cols, SelCol{Name: colName(j), Expr: g.aggExpr(cols)})
		}
	case mode < 7: // grouped aggregate
		q.Kind = "select"
		q.By = []SelCol{{Name: "g", Expr: g.byKey(cols)}}
		nc := 1 + r.Intn(2)
		for j := 0; j < nc; j++ {
			q.Cols = append(q.Cols, SelCol{Name: colName(j), Expr: g.aggExpr(cols)})
		}
	default: // plain select; sometimes the bare wildcard form
		q.Kind = "select"
		if r.Intn(4) > 0 {
			nc := 1 + r.Intn(3)
			for j := 0; j < nc; j++ {
				q.Cols = append(q.Cols, SelCol{Name: colName(j), Expr: g.colExpr(cols, 2)})
			}
		}
	}

	nw := r.Intn(3)
	for j := 0; j < nw; j++ {
		q.Where = append(q.Where, g.predicate(cols))
	}
	return q
}

func colName(j int) string { return string(rune('x' + j)) }

// pick returns a random column of the wanted kind (nil if none).
func (g *Generator) pick(cols []*Col, k Kind) *Col {
	var of []*Col
	for _, c := range cols {
		if c.T == k {
			of = append(of, c)
		}
	}
	if len(of) == 0 {
		return nil
	}
	return of[g.rng.Intn(len(of))]
}

// numAtom yields a Num leaf: a numeric column or a small constant.
func (g *Generator) numAtom(cols []*Col, mustCol bool) Expr {
	if !mustCol && g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			return &ConstInt{V: int64(g.rng.Intn(7) - 2)}
		}
		return &ConstFloat{V: []float64{-2.5, 0, 0.5, 1.5, 3}[g.rng.Intn(5)]}
	}
	if c := g.pick(cols, Num); c != nil {
		return c
	}
	return &ConstInt{V: int64(g.rng.Intn(5))}
}

var arithOps = []string{"+", "-", "*", "%", "mod", "div", "xbar", "&", "|"}

// colExpr yields a column-referencing expression for a select column:
// either a direct column of any type or a Num arithmetic tree.
func (g *Generator) colExpr(cols []*Col, depth int) Expr {
	r := g.rng
	if r.Intn(3) == 0 {
		return cols[r.Intn(len(cols))]
	}
	return g.numTree(cols, depth, true)
}

// numTree builds a Num expression tree; mustCol forces at least one column
// reference into the tree.
func (g *Generator) numTree(cols []*Col, depth int, mustCol bool) Expr {
	r := g.rng
	if depth <= 0 || r.Intn(3) == 0 {
		return g.numAtom(cols, mustCol)
	}
	op := arithOps[r.Intn(len(arithOps))]
	colSide := r.Intn(2)
	l := g.numTree(cols, depth-1, mustCol && colSide == 0)
	rr := g.numTree(cols, depth-1, mustCol && colSide == 1)
	return &Bin{Op: op, L: l, R: rr, T: Num}
}

var aggFns = []string{"sum", "avg", "min", "max", "count", "first", "last"}

// aggExpr yields one aggregate call over a Num expression.
func (g *Generator) aggExpr(cols []*Col) Expr {
	r := g.rng
	if r.Intn(8) == 0 {
		x := g.numAtom(cols, true)
		w := g.numAtom(cols, true)
		fn := "wavg"
		if r.Intn(2) == 0 {
			fn = "wsum"
		}
		return &Agg{Fn: fn, X: x, W: w}
	}
	fn := aggFns[r.Intn(len(aggFns))]
	return &Agg{Fn: fn, X: g.numTree(cols, 1, true)}
}

// byKey yields a grouping key: a symbol column or an xbar bucket.
func (g *Generator) byKey(cols []*Col) Expr {
	r := g.rng
	if c := g.pick(cols, Sym); c != nil && r.Intn(3) > 0 {
		return c
	}
	if c := g.pick(cols, Num); c != nil {
		return &Bin{Op: "xbar", L: &ConstInt{V: int64(1 + r.Intn(4))}, R: c, T: Num}
	}
	return cols[0]
}

var cmpOps = []string{"=", "<>", "<", ">", "<=", ">="}

// predicate yields one where-clause conjunct. The symbol arms (membership
// and equality) double as partition-key predicates in sharded qdiff runs:
// the fact tables hash on their symbol column, so these conjuncts drive the
// shard planner's pruning path — equality and IN lists route to owning
// shards only — while the remaining arms keep the scatter path covered.
func (g *Generator) predicate(cols []*Col) Expr {
	r := g.rng
	switch r.Intn(9) {
	case 0: // symbol membership
		if c := g.pick(cols, Sym); c != nil {
			k := 1 + r.Intn(3)
			items := make([]Expr, k)
			for j := range items {
				items[j] = &ConstSym{V: symDomain[r.Intn(len(symDomain))]}
			}
			return &In{X: c, Items: items}
		}
	case 1: // numeric interval
		if c := g.pick(cols, Num); c != nil {
			lo := int64(r.Intn(4) - 2)
			return &Within{X: c, Lo: &ConstInt{V: lo}, Hi: &ConstInt{V: lo + int64(r.Intn(5))}}
		}
	case 2: // glob match
		if c := g.pick(cols, Sym); c != nil {
			pats := []string{"a*", "*", "?", "[ab]*", "c*"}
			return &Like{X: c, Pat: pats[r.Intn(len(pats))]}
		}
	case 3: // symbol equality
		if c := g.pick(cols, Sym); c != nil {
			op := cmpOps[r.Intn(2)] // = or <>
			return &Bin{Op: op, L: c, R: &ConstSym{V: symDomain[r.Intn(len(symDomain))]}, T: Bool}
		}
	case 4: // time bound
		if c := g.pick(cols, Time); c != nil {
			op := cmpOps[2+r.Intn(4)]
			ms := int64(9*3600000 + r.Intn(3600000))
			return &Bin{Op: op, L: c, R: &ConstTime{Ms: ms}, T: Bool}
		}
	case 5: // zone-map probe: boundary and out-of-range constants, so the
		// vectorized engine's segment skip / all-true verdicts fire against
		// the data domain (i ∈ [-2,5], f ∈ [-2.5,100]∪{±0w}, tm ≥ 09:00)
		// and must agree with the row engines' per-row answers
		if c := g.pick(cols, Time); c != nil && r.Intn(4) == 0 {
			op := cmpOps[2+r.Intn(4)]
			probes := []int64{0, 8 * 3600000, 23*3600000 + 3599999}
			return &Bin{Op: op, L: c, R: &ConstTime{Ms: probes[r.Intn(len(probes))]}, T: Bool}
		}
		if c := g.pick(cols, Num); c != nil {
			op := cmpOps[r.Intn(len(cmpOps))]
			probes := []Expr{
				&ConstInt{V: -50}, &ConstInt{V: 100}, &ConstInt{V: -2}, &ConstInt{V: 5},
				&ConstFloat{V: -1e9}, &ConstFloat{V: 1e9}, &ConstFloat{V: 100}, &ConstFloat{V: -2.5},
			}
			return &Bin{Op: op, L: c, R: probes[r.Intn(len(probes))], T: Bool}
		}
	case 6: // numeric membership: the IN-list shape a hash index answers by
		// unioning postings, mixing in-domain, boundary and absent keys
		if c := g.pick(cols, Num); c != nil {
			k := 1 + r.Intn(3)
			items := make([]Expr, k)
			for j := range items {
				items[j] = &ConstInt{V: int64(r.Intn(10) - 3)}
			}
			return &In{X: c, Items: items}
		}
	}
	// numeric comparison, possibly column vs column
	l := g.numAtom(cols, true)
	var rhs Expr
	if r.Intn(3) == 0 {
		rhs = g.numAtom(cols, true)
	} else {
		rhs = g.numAtom(cols, false)
	}
	return &Bin{Op: cmpOps[r.Intn(len(cmpOps))], L: l, R: rhs, T: Bool}
}
