// Package endpoint is Hyper-Q's kdb+-specific plugin (paper §3.1, Figure 1):
// it listens on the port the original kdb+ server used, performs the QIPC
// handshake, parses incoming messages, extracts the query text and passes it
// on for algebrization; responses flow back as QIPC messages. Q applications
// run unchanged while their network packets are routed here instead of kdb+.
package endpoint

import (
	"bufio"
	"errors"
	"log"
	"net"

	"hyperq/internal/qlang/qval"
	"hyperq/internal/wire/qipc"
)

// Handler processes one extracted Q query and returns its result value.
// The cross compiler (internal/xc) is the production handler.
type Handler interface {
	HandleQuery(q string) (qval.Value, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(q string) (qval.Value, error)

// HandleQuery implements Handler.
func (f HandlerFunc) HandleQuery(q string) (qval.Value, error) { return f(q) }

// Config configures the endpoint listener.
type Config struct {
	// Auth validates handshake credentials; nil accepts everyone (kdb+'s
	// historical default, paper §2.2).
	Auth func(user, password string) bool
	// NewHandler builds a per-connection handler (one Hyper-Q session per
	// client connection).
	NewHandler func(creds *qipc.Credentials) (Handler, func(), error)
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// Serve accepts QIPC connections until the listener closes.
func Serve(l net.Listener, cfg Config) error {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go serveConn(conn, cfg, logf)
	}
}

func serveConn(conn net.Conn, cfg Config, logf func(string, ...any)) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	creds, err := qipc.ServerHandshake(br, conn, cfg.Auth)
	if err != nil {
		// kdb+ closes the connection without replying on bad credentials
		logf("endpoint: handshake failed: %v", err)
		return
	}
	handler, cleanup, err := cfg.NewHandler(creds)
	if err != nil {
		logf("endpoint: no handler: %v", err)
		return
	}
	if cleanup != nil {
		defer cleanup()
	}
	for {
		msg, err := qipc.ReadMessage(br)
		if err != nil {
			return // disconnect
		}
		qtext, ok := extractQuery(msg.Value)
		if !ok {
			if msg.Type == qipc.Sync {
				respondErr(conn, "type")
			}
			continue
		}
		result, err := handler.HandleQuery(qtext)
		if msg.Type != qipc.Sync {
			// async: execute, no response — but a failure would otherwise
			// vanish silently; surface the dropped work in the log
			if err != nil {
				logf("endpoint: async query %q failed (no response sent): %v", qtext, err)
			}
			continue
		}
		if err != nil {
			respondErr(conn, err.Error())
			continue
		}
		if err := qipc.WriteMessage(conn, qipc.Response, result); err != nil {
			logf("endpoint: write response: %v", err)
			return
		}
	}
}

// extractQuery pulls the query text out of an incoming message: a char
// vector is raw query text (the common case, §4.2).
func extractQuery(v qval.Value) (string, bool) {
	switch x := v.(type) {
	case qval.CharVec:
		return string(x), true
	case qval.Symbol:
		return string(x), true
	default:
		return "", false
	}
}

func respondErr(conn net.Conn, msg string) {
	for len(msg) > 0 && msg[0] == '\'' {
		msg = msg[1:]
	}
	if err := qipc.WriteMessage(conn, qipc.Response, &qval.QError{Msg: msg}); err != nil {
		log.Printf("endpoint: failed to send error: %v", err)
	}
}
