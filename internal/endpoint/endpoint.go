// Package endpoint is Hyper-Q's kdb+-specific plugin (paper §3.1, Figure 1):
// it listens on the port the original kdb+ server used, performs the QIPC
// handshake, parses incoming messages, extracts the query text and passes it
// on for algebrization; responses flow back as QIPC messages. Q applications
// run unchanged while their network packets are routed here instead of kdb+.
//
// The endpoint is the origin of the request life cycle: every query runs
// under a context derived from its client connection — canceled when the
// client disconnects mid-query or when the server drains — and bounded by
// the configured per-request timeout. The context flows through the cross
// compiler into binding, pooling and backend I/O; context failures come back
// as typed errors and are rendered to the client as kdb+-style terse errors
// ('timeout, 'canceled).
package endpoint

import (
	"bufio"
	"context"
	"errors"
	"log"
	"net"
	"sync"
	"time"

	"hyperq/internal/qlang/qval"
	"hyperq/internal/wire/qipc"
)

// Handler processes one extracted Q query and returns its result value. The
// context is the per-request context: it is canceled when the client
// disconnects or the server drains, and carries the request deadline.
// The cross compiler (internal/xc) is the production handler.
type Handler interface {
	HandleQuery(ctx context.Context, q string) (qval.Value, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, q string) (qval.Value, error)

// HandleQuery implements Handler.
func (f HandlerFunc) HandleQuery(ctx context.Context, q string) (qval.Value, error) {
	return f(ctx, q)
}

// Config configures the endpoint listener.
type Config struct {
	// Auth validates handshake credentials; nil accepts everyone (kdb+'s
	// historical default, paper §2.2).
	Auth func(user, password string) bool
	// NewHandler builds a per-connection handler (one Hyper-Q session per
	// client connection).
	NewHandler func(creds *qipc.Credentials) (Handler, func(), error)
	// RequestTimeout bounds each query's end-to-end life cycle (0 disables);
	// expiry surfaces to the client as 'timeout.
	RequestTimeout time.Duration
	// DrainTimeout is the grace window after shutdown begins: new
	// connections are refused immediately, in-flight requests may finish
	// within the window, then their contexts are hard-canceled and the
	// connections closed (default 5s).
	DrainTimeout time.Duration
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// Serve accepts QIPC connections until the listener closes or ctx is
// canceled. Cancellation triggers a graceful drain: the listener closes at
// once, in-flight requests get DrainTimeout to finish, stragglers are
// canceled and their connections closed. Serve returns after every
// connection goroutine has exited.
func Serve(ctx context.Context, l net.Listener, cfg Config) error {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	// reqParent is the parent of every per-request context. It deliberately
	// detaches from ctx's cancellation: shutdown must not kill in-flight
	// requests until the drain window lapses.
	reqParent, hardCancel := context.WithCancel(context.WithoutCancel(ctx))
	defer hardCancel()
	stopAccept := context.AfterFunc(ctx, func() { l.Close() })
	defer stopAccept()
	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				break // shutdown requested: drain below
			}
			wg.Wait() // listener closed externally: legacy exit, no grace window
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			serveConn(reqParent, conn, cfg, logf)
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
		logf("endpoint: drain window lapsed; canceling in-flight requests")
		hardCancel()
	}
	<-done
	return nil
}

func serveConn(ctx context.Context, conn net.Conn, cfg Config, logf func(string, ...any)) {
	defer conn.Close()
	// connCtx is the connection's life: canceled when the client disconnects
	// (the reader goroutine sees EOF) or when the server hard-cancels.
	connCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// a hard-cancel must also unblock a reader waiting in ReadMessage
	stopClose := context.AfterFunc(connCtx, func() { conn.Close() })
	defer stopClose()

	br := bufio.NewReader(conn)
	creds, err := qipc.ServerHandshake(br, conn, cfg.Auth)
	if err != nil {
		// kdb+ closes the connection without replying on bad credentials
		logf("endpoint: handshake failed: %v", err)
		return
	}
	handler, cleanup, err := cfg.NewHandler(creds)
	if err != nil {
		logf("endpoint: no handler: %v", err)
		return
	}
	if cleanup != nil {
		defer cleanup()
	}

	// The reader goroutine owns the inbound stream. The channel is
	// unbuffered, so while a query is being handled the reader sits blocked
	// in ReadMessage on the *next* message — which is exactly where it
	// observes a mid-query client disconnect and cancels the connection
	// context, aborting the in-flight query.
	msgs := make(chan *qipc.Message)
	go func() {
		defer cancel()
		defer close(msgs)
		for {
			msg, err := qipc.ReadMessage(br)
			if err != nil {
				return // disconnect (or conn closed by hard-cancel)
			}
			select {
			case msgs <- msg:
			case <-connCtx.Done():
				return
			}
		}
	}()

	for {
		var msg *qipc.Message
		var ok bool
		select {
		case msg, ok = <-msgs:
			if !ok {
				return // client gone
			}
		case <-connCtx.Done():
			return
		}
		qtext, extracted := extractQuery(msg.Value)
		if !extracted {
			if msg.Type == qipc.Sync {
				respondErr(conn, "type")
			}
			continue
		}
		result, err := handleOne(connCtx, handler, cfg.RequestTimeout, qtext)
		if msg.Type != qipc.Sync {
			// async: execute, no response — but a failure would otherwise
			// vanish silently; surface the dropped work in the log
			if err != nil {
				logf("endpoint: async query %q failed (no response sent): %v", qtext, err)
			}
			continue
		}
		if err != nil {
			if connCtx.Err() != nil {
				return // client disconnected or server hard-canceled: no one to answer
			}
			respondErr(conn, renderError(err))
			continue
		}
		if err := qipc.WriteMessage(conn, qipc.Response, result); err != nil {
			logf("endpoint: write response: %v", err)
			return
		}
	}
}

// handleOne runs a single query under its per-request context.
func handleOne(connCtx context.Context, h Handler, timeout time.Duration, qtext string) (qval.Value, error) {
	ctx := connCtx
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(connCtx, timeout)
		defer cancel()
	}
	return h.HandleQuery(ctx, qtext)
}

// renderError maps an error to the terse kdb+-style message sent to the
// client; context failures get stable names a Q client can dispatch on.
func renderError(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return err.Error()
}

// extractQuery pulls the query text out of an incoming message: a char
// vector is raw query text (the common case, §4.2).
func extractQuery(v qval.Value) (string, bool) {
	switch x := v.(type) {
	case qval.CharVec:
		return string(x), true
	case qval.Symbol:
		return string(x), true
	default:
		return "", false
	}
}

func respondErr(conn net.Conn, msg string) {
	for len(msg) > 0 && msg[0] == '\'' {
		msg = msg[1:]
	}
	if err := qipc.WriteMessage(conn, qipc.Response, &qval.QError{Msg: msg}); err != nil {
		log.Printf("endpoint: failed to send error: %v", err)
	}
}
