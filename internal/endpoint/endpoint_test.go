// Integration tests for the full Figure 1 deployment: a Q application
// speaking QIPC over TCP to the Hyper-Q endpoint, the cross compiler
// translating, and the Gateway speaking PG v3 over TCP to the backend
// database server. Every byte crosses real sockets.
package endpoint

import (
	"context"
	"net"
	"testing"

	"hyperq/internal/core"
	"hyperq/internal/gateway"
	"hyperq/internal/pgdb"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/taq"
	"hyperq/internal/wire/pgv3"
	"hyperq/internal/wire/qipc"
	"hyperq/internal/xc"
)

// startStack launches pgserver + hyperq endpoint on loopback and returns the
// QIPC address.
func startStack(t *testing.T, auth func(u, p string) bool) string {
	t.Helper()
	db := pgdb.NewDB()
	loader := core.NewDirectBackend(db)
	data := taq.Generate(taq.Config{Seed: 3, Trades: 500, Quotes: 1000, WideCols: 4,
		Symbols: []string{"AAPL", "IBM"}})
	for _, tb := range []struct {
		name string
		tbl  *qval.Table
	}{{"trades", data.Trades}, {"quotes", data.Quotes}, {"daily", data.Daily}} {
		if err := core.LoadQTable(context.Background(), loader, tb.name, tb.tbl); err != nil {
			t.Fatal(err)
		}
	}
	pgL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pgL.Close() })
	go pgdb.Serve(context.Background(), pgL, db, pgdb.AuthConfig{
		Method: pgv3.AuthMethodMD5,
		Users:  map[string]string{"hq": "pw"},
	})

	platform := core.NewPlatform()
	qL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { qL.Close() })
	go Serve(context.Background(), qL, Config{
		Auth: auth,
		NewHandler: func(creds *qipc.Credentials) (Handler, func(), error) {
			gw, err := gateway.Dial(context.Background(), pgL.Addr().String(), "hq", "pw", "db")
			if err != nil {
				return nil, nil, err
			}
			session := platform.NewSession(gw, core.Config{})
			compiler := xc.New(session)
			return HandlerFunc(func(ctx context.Context, q string) (qval.Value, error) {
				v, _, err := compiler.HandleQuery(ctx, q)
				return v, err
			}), func() { session.Close() }, nil
		},
	})
	return qL.Addr().String()
}

func dialQ(t *testing.T, addr, user, pass string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := qipc.ClientHandshake(conn, user, pass); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	return conn
}

func query(t *testing.T, conn net.Conn, q string) qval.Value {
	t.Helper()
	if err := qipc.WriteMessage(conn, qipc.Sync, qval.CharVec(q)); err != nil {
		t.Fatal(err)
	}
	msg, err := qipc.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != qipc.Response {
		t.Fatalf("message type = %v", msg.Type)
	}
	return msg.Value
}

func TestEndToEndSelect(t *testing.T) {
	addr := startStack(t, nil)
	conn := dialQ(t, addr, "app", "")
	v := query(t, conn, "select Price from trades where Symbol=`AAPL")
	tbl, ok := v.(*qval.Table)
	if !ok {
		t.Fatalf("result = %T (%v)", v, v)
	}
	if tbl.Len() == 0 {
		t.Fatal("no rows")
	}
	if _, ok := tbl.Column("Price"); !ok {
		t.Fatalf("cols = %v", tbl.Cols)
	}
}

func TestEndToEndAsOfJoin(t *testing.T) {
	addr := startStack(t, nil)
	conn := dialQ(t, addr, "app", "")
	v := query(t, conn, "aj[`Symbol`Time; select Symbol, Time, Price from trades; select Symbol, Time, Bid, Ask from quotes]")
	tbl, ok := v.(*qval.Table)
	if !ok {
		t.Fatalf("result = %T", v)
	}
	if _, ok := tbl.Column("Bid"); !ok {
		t.Fatalf("cols = %v", tbl.Cols)
	}
}

func TestEndToEndErrorsAsQErrors(t *testing.T) {
	addr := startStack(t, nil)
	conn := dialQ(t, addr, "app", "")
	v := query(t, conn, "select from nosuchtable")
	qe, ok := v.(*qval.QError)
	if !ok {
		t.Fatalf("result = %T, want QError", v)
	}
	if qe.Msg == "" {
		t.Fatal("empty error message")
	}
}

func TestEndToEndAuthRejected(t *testing.T) {
	addr := startStack(t, func(u, p string) bool { return u == "good" })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := qipc.ClientHandshake(conn, "bad", "x"); err == nil {
		t.Fatal("bad credentials should be rejected (connection closed)")
	}
}

func TestEndToEndStateAcrossQueries(t *testing.T) {
	// variables persist within a connection's session
	addr := startStack(t, nil)
	conn := dialQ(t, addr, "app", "")
	query(t, conn, "cutoff:100.0")
	v := query(t, conn, "select from trades where Price>cutoff")
	if _, ok := v.(*qval.Table); !ok {
		t.Fatalf("session variable lost: %v", v)
	}
}

func TestEndToEndFunctionDefinitionAndCall(t *testing.T) {
	addr := startStack(t, nil)
	conn := dialQ(t, addr, "app", "")
	query(t, conn, "f:{[s] :select max Price from trades where Symbol=s;}")
	v := query(t, conn, "f[`IBM]")
	tbl, ok := v.(*qval.Table)
	if !ok || tbl.Len() != 1 {
		t.Fatalf("f[`IBM] = %v", v)
	}
}

func TestEndToEndAsyncMessages(t *testing.T) {
	addr := startStack(t, nil)
	conn := dialQ(t, addr, "app", "")
	// async: no response expected
	if err := qipc.WriteMessage(conn, qipc.Async, qval.CharVec("asyncvar:1.5")); err != nil {
		t.Fatal(err)
	}
	// sync query sees the async statement's effect (serialized per conn)
	v := query(t, conn, "select from trades where Price>asyncvar")
	if _, ok := v.(*qval.Table); !ok {
		t.Fatalf("async statement lost: %v", v)
	}
}

func TestTwoConnectionsShareServerScope(t *testing.T) {
	// paper §3.2.3: session vars promote to server scope on session close,
	// making functions visible to later sessions
	addr := startStack(t, nil)
	conn1 := dialQ(t, addr, "one", "")
	query(t, conn1, "shared:{[s] :select from trades where Symbol=s;}")
	conn1.Close()
	// closing tears down the session asynchronously; retry via fresh conn
	conn2 := dialQ(t, addr, "two", "")
	deadline := 50
	for i := 0; i < deadline; i++ {
		v := query(t, conn2, "shared[`AAPL]")
		if _, ok := v.(*qval.Table); ok {
			return
		}
	}
	t.Fatal("promoted function never became visible to the second session")
}
