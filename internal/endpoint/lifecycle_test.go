// Request-lifecycle tests over real TCP: mid-query client disconnects,
// per-request timeouts and graceful drain, exercising the context chain from
// the accepted socket down to the pooled backend connection.
package endpoint

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"hyperq/internal/core"
	"hyperq/internal/pool"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/wire/qipc"
)

// blockingConn is a pool.Conn whose Exec parks until the request context
// dies, standing in for a long-running backend query.
type blockingConn struct {
	started chan struct{} // receives one token per Exec that begins
}

func (c *blockingConn) Exec(ctx context.Context, sql string) (*core.BackendResult, error) {
	c.started <- struct{}{}
	<-ctx.Done()
	return nil, ctx.Err()
}

func (c *blockingConn) QueryCatalog(ctx context.Context, sql string) ([][]string, error) {
	return nil, nil
}

func (c *blockingConn) Ping() error  { return nil }
func (c *blockingConn) Close() error { return nil }

// startLifecycleStack serves the endpoint with a handler that runs every
// query on a pooled blocking backend, reporting each request's final error.
func startLifecycleStack(t *testing.T, ctx context.Context, cfg Config, p *pool.Pool) (string, chan error) {
	t.Helper()
	handlerErr := make(chan error, 8)
	cfg.NewHandler = func(*qipc.Credentials) (Handler, func(), error) {
		b := p.SessionBackend()
		return HandlerFunc(func(ctx context.Context, q string) (qval.Value, error) {
			_, err := b.Exec(ctx, q)
			handlerErr <- err
			if err != nil {
				return nil, err
			}
			return qval.Long(1), nil
		}), func() { b.Close() }, nil
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(ctx, l, cfg)
	return l.Addr().String(), handlerErr
}

// TestMidQueryClientDisconnectCancelsAndReleasesBackend is the
// client-disconnect half of the request lifecycle: a Q client that vanishes
// mid-query must cancel the in-flight request context, and the backend
// connection it was holding must come back to the pool.
func TestMidQueryClientDisconnectCancelsAndReleasesBackend(t *testing.T) {
	backend := &blockingConn{started: make(chan struct{}, 8)}
	p := pool.New(pool.Config{
		Size: 1,
		Dial: func(ctx context.Context) (pool.Conn, error) { return backend, nil },
	})
	t.Cleanup(func() { p.Close() })
	addr, handlerErr := startLifecycleStack(t, context.Background(), Config{}, p)

	conn := dialQ(t, addr, "app", "")
	if err := qipc.WriteMessage(conn, qipc.Sync, qval.CharVec("select from slow")); err != nil {
		t.Fatal(err)
	}
	<-backend.started // the query is executing on the backend
	conn.Close()      // the client vanishes mid-query

	select {
	case err := <-handlerErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("in-flight request err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("client disconnect never canceled the in-flight request")
	}
	// the backend connection must return to the pool (context aborts are not
	// transport failures; the connection is intact)
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().InUse != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("backend connection never released: %+v", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// a second client gets the (sole) recycled connection and full service
	conn2 := dialQ(t, addr, "app2", "")
	if err := qipc.WriteMessage(conn2, qipc.Sync, qval.CharVec("select from slow")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-backend.started:
	case <-time.After(2 * time.Second):
		t.Fatal("recycled backend connection never served the next client")
	}
}

// TestRequestTimeoutRendersAsTimeoutError covers the deadline half: a query
// exceeding RequestTimeout is aborted and the client receives kdb+'s terse
// 'timeout error while the connection stays usable.
func TestRequestTimeoutRendersAsTimeoutError(t *testing.T) {
	backend := &blockingConn{started: make(chan struct{}, 8)}
	p := pool.New(pool.Config{
		Size: 1,
		Dial: func(ctx context.Context) (pool.Conn, error) { return backend, nil },
	})
	t.Cleanup(func() { p.Close() })
	addr, _ := startLifecycleStack(t, context.Background(),
		Config{RequestTimeout: 50 * time.Millisecond}, p)

	conn := dialQ(t, addr, "app", "")
	if err := qipc.WriteMessage(conn, qipc.Sync, qval.CharVec("select from slow")); err != nil {
		t.Fatal(err)
	}
	msg, err := qipc.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	qe, ok := msg.Value.(*qval.QError)
	if !ok {
		t.Fatalf("response = %T (%v), want QError", msg.Value, msg.Value)
	}
	if qe.Msg != "timeout" {
		t.Fatalf("error = %q, want %q", qe.Msg, "timeout")
	}
}

// TestGracefulDrainCancelsStragglers covers shutdown: canceling the serve
// context refuses new connections at once, and a request still running when
// DrainTimeout lapses is hard-canceled so Serve returns.
func TestGracefulDrainCancelsStragglers(t *testing.T) {
	backend := &blockingConn{started: make(chan struct{}, 8)}
	p := pool.New(pool.Config{
		Size: 1,
		Dial: func(ctx context.Context) (pool.Conn, error) { return backend, nil },
	})
	t.Cleanup(func() { p.Close() })

	serveCtx, shutdown := context.WithCancel(context.Background())
	defer shutdown()
	handlerErr := make(chan error, 8)
	cfg := Config{
		DrainTimeout: 50 * time.Millisecond,
		NewHandler: func(*qipc.Credentials) (Handler, func(), error) {
			b := p.SessionBackend()
			return HandlerFunc(func(ctx context.Context, q string) (qval.Value, error) {
				_, err := b.Exec(ctx, q)
				handlerErr <- err
				return nil, err
			}), func() { b.Close() }, nil
		},
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	served := make(chan error, 1)
	go func() { served <- Serve(serveCtx, l, cfg) }()

	conn := dialQ(t, addr(t, l), "app", "")
	if err := qipc.WriteMessage(conn, qipc.Sync, qval.CharVec("select from slow")); err != nil {
		t.Fatal(err)
	}
	<-backend.started // the straggler is mid-query
	shutdown()

	// new connections are refused immediately (listener closed)
	if c, err := net.DialTimeout("tcp", l.Addr().String(), time.Second); err == nil {
		// the dial may land in the OS backlog; the handshake must still die
		if herr := qipc.ClientHandshake(c, "late", ""); herr == nil {
			c.Close()
			t.Fatal("draining server accepted a new session")
		}
		c.Close()
	}
	select {
	case err := <-handlerErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("straggler err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drain window never canceled the straggler")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve never returned after the drain")
	}
}

func addr(t *testing.T, l net.Listener) string {
	t.Helper()
	return l.Addr().String()
}
