// Concurrent serving-runtime integration test: many QIPC clients in
// parallel through the endpoint, the cross compiler, and a *pooled* PG v3
// gateway to the backend database — every byte over real TCP sockets, all
// sessions sharing one process-wide translation cache and MDI. Results are
// verified side by side against the Q interpreter (paper §5).
package endpoint

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"hyperq/internal/core"
	"hyperq/internal/gateway"
	"hyperq/internal/mdi"
	"hyperq/internal/pgdb"
	"hyperq/internal/pool"
	"hyperq/internal/qcache"
	"hyperq/internal/qlang/interp"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/sidebyside"
	"hyperq/internal/taq"
	"hyperq/internal/wire/pgv3"
	"hyperq/internal/wire/qipc"
	"hyperq/internal/xc"
)

// startPooledStack is startStack with the production serving runtime: the
// per-connection sessions share a bounded gateway pool, one translation
// cache and one MDI instead of dialing a dedicated backend connection each.
func startPooledStack(t *testing.T, data *taq.Data, poolSize int) (addr string, p *pool.Pool, cache *qcache.Cache) {
	t.Helper()
	db := pgdb.NewDB()
	loader := core.NewDirectBackend(db)
	for _, tb := range []struct {
		name string
		tbl  *qval.Table
	}{{"trades", data.Trades}, {"quotes", data.Quotes}, {"daily", data.Daily}} {
		if err := core.LoadQTable(context.Background(), loader, tb.name, tb.tbl); err != nil {
			t.Fatal(err)
		}
	}
	pgL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pgL.Close() })
	go pgdb.Serve(context.Background(), pgL, db, pgdb.AuthConfig{
		Method: pgv3.AuthMethodMD5,
		Users:  map[string]string{"hq": "pw"},
	})

	p = pool.New(pool.Config{
		Size: poolSize,
		Dial: func(ctx context.Context) (pool.Conn, error) {
			return gateway.Dial(ctx, pgL.Addr().String(), "hq", "pw", "db")
		},
		HealthCheck:  true,
		QueryTimeout: 10 * time.Second,
		Logf:         t.Logf,
	})
	cache = qcache.New(256)
	sharedMDI := mdi.New(p.SessionBackend(), mdi.WithTTL(time.Minute))

	platform := core.NewPlatform()
	qL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { qL.Close() })
	go Serve(context.Background(), qL, Config{
		NewHandler: func(creds *qipc.Credentials) (Handler, func(), error) {
			session := platform.NewSession(p.SessionBackend(), core.Config{
				MDI:   sharedMDI,
				Cache: cache,
			})
			compiler := xc.New(session)
			return HandlerFunc(func(ctx context.Context, q string) (qval.Value, error) {
				v, _, err := compiler.HandleQuery(ctx, q)
				return v, err
			}), func() { session.Close() }, nil
		},
	})
	return qL.Addr().String(), p, cache
}

// TestConcurrentClientsPooledGateway drives 16 parallel QIPC clients
// through the shared serving runtime (pool smaller than the client count,
// so checkouts contend) and verifies every wire result against the Q
// interpreter evaluating the same query over the same data.
func TestConcurrentClientsPooledGateway(t *testing.T) {
	data := taq.Generate(taq.Config{Seed: 11, Trades: 300, Quotes: 600, WideCols: 4,
		Symbols: []string{"AAPL", "IBM", "GOOG"}})
	const clients = 16
	const poolSize = 4
	addr, p, cache := startPooledStack(t, data, poolSize)

	// deterministic, side-effect-free queries: plain selects preserve row
	// order, by-aggregations group identically in both engines
	queries := []string{
		"select from trades",
		"select Price, Size from trades where Symbol=`AAPL",
		"select from trades where Price>100, Size>2000",
		"select from quotes where Symbol=`IBM",
		"select sum Size from trades",
		"select max Price, min Price from trades",
		"select avg Price from trades where Symbol=`GOOG",
		"select n:count Price by Symbol from trades",
		"select h:max Price, l:min Price by Symbol from trades",
	}

	// reference results, computed serially with the Q interpreter
	kdb := interp.New()
	kdb.SetGlobal("trades", data.Trades)
	kdb.SetGlobal("quotes", data.Quotes)
	kdb.SetGlobal("daily", data.Daily)
	expected := make([]qval.Value, len(queries))
	for i, q := range queries {
		v, err := kdb.Eval(q)
		if err != nil {
			t.Fatalf("interpreter rejects %q: %v", q, err)
		}
		expected[i] = v
	}

	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %v", c, err)
				return
			}
			defer conn.Close()
			if err := qipc.ClientHandshake(conn, fmt.Sprintf("app%d", c), ""); err != nil {
				errs <- fmt.Errorf("client %d: handshake: %v", c, err)
				return
			}
			// stagger starting offsets so distinct queries overlap in flight
			for r := 0; r < rounds; r++ {
				for i := range queries {
					qi := (c + r + i) % len(queries)
					if err := qipc.WriteMessage(conn, qipc.Sync, qval.CharVec(queries[qi])); err != nil {
						errs <- fmt.Errorf("client %d: write: %v", c, err)
						return
					}
					msg, err := qipc.ReadMessage(conn)
					if err != nil {
						errs <- fmt.Errorf("client %d: read: %v", c, err)
						return
					}
					if msg.Type != qipc.Response {
						errs <- fmt.Errorf("client %d: message type %v", c, msg.Type)
						return
					}
					if qe, ok := msg.Value.(*qval.QError); ok {
						errs <- fmt.Errorf("client %d: query %q returned error %q", c, queries[qi], qe.Msg)
						return
					}
					if diffs := sidebyside.Diff(expected[qi], msg.Value, 1e-9); len(diffs) > 0 {
						errs <- fmt.Errorf("client %d: query %q diverges from interpreter: %v", c, queries[qi], diffs)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// the shared cache translated each distinct query once; everything else
	// was a hit or a deduplicated in-flight share
	cst := cache.Stats()
	if cst.Misses != int64(len(queries)) {
		t.Errorf("cache misses = %d, want %d (one per distinct query)", cst.Misses, len(queries))
	}
	want := int64(clients*rounds*len(queries) - len(queries))
	if cst.Hits+cst.Dedups != want {
		t.Errorf("hits+dedups = %d+%d, want %d", cst.Hits, cst.Dedups, want)
	}
	if cst.Entries != len(queries) {
		t.Errorf("cache entries = %d, want %d", cst.Entries, len(queries))
	}

	// the backend fan-out stayed bounded: 16 clients never grew more than
	// poolSize connections
	pst := p.Stats()
	if pst.Dials > int64(poolSize) {
		t.Errorf("pool dialed %d connections, bound is %d", pst.Dials, poolSize)
	}
	if pst.Dials == 0 {
		t.Error("pool never dialed — queries did not reach the gateway")
	}

	// graceful drain: sessions hold no connection between statements, so
	// Close must succeed once in-flight work finishes
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := p.Close(); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("pool drain: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
