// Package colbuf provides pooled, typed column builders for the result
// pipeline (paper §4.2): backend rows stream cell-by-cell into preallocated
// typed slices, which finish directly as qval vectors — no per-cell atom
// boxing and no text round-trip. A sync.Pool recycles builder scratch
// (the builder struct, per-column headers, decode buffers) across results;
// the column data slices themselves are handed off to the finished vectors
// by Build and are never pooled, so a served table can never alias a later
// result.
package colbuf

import (
	"fmt"
	"math"
	"sync"

	"hyperq/internal/qlang/qval"
)

// Spec describes one result column to build: its name, the Q type the
// finished vector gets (the caller maps SQL types via xtra.QTypeForSQL), and
// whether the column is translation plumbing to drop from the result (the
// implicit order column).
type Spec struct {
	Name    string
	QType   qval.Type
	Discard bool
}

// column is one column under construction. Exactly one storage slice is
// active, selected by the spec's Q type; Build transfers it to the finished
// vector and nils it here.
type column struct {
	bools []bool
	i16   []int16
	i32   []int32
	i64   []int64 // long and the integer-backed temporals
	f32   []float32
	f64   []float64
	syms  []string
}

// TableBuilder accumulates one result set column-wise. Obtain with Get,
// configure with Reset, feed with the Append methods (column index j follows
// the Spec order, discarded columns included), finish with Build, and return
// the scratch with Release.
type TableBuilder struct {
	specs []Spec
	cols  []column
	rows  int
}

// pool recycles builder scratch. Column data slices never return here: Build
// transfers their ownership to the produced vectors (see Release).
var pool = sync.Pool{New: func() any { return &TableBuilder{} }}

// Get returns a builder from the pool. Call Reset before use and Release
// when done.
func Get() *TableBuilder {
	return pool.Get().(*TableBuilder)
}

// Release returns the builder's scratch to the pool. Any column data not
// taken by Build is dropped (the references are cleared so pooled builders
// cannot pin large results).
func (b *TableBuilder) Release() {
	for i := range b.cols {
		b.cols[i] = column{}
	}
	b.cols = b.cols[:0]
	b.specs = nil
	b.rows = 0
	pool.Put(b)
}

// Reset configures the builder for a new result. capHint, when positive,
// preallocates each kept column for that many rows (the Direct backend knows
// the exact count; wire backends pass the running estimate of the first
// batch or 0).
func (b *TableBuilder) Reset(specs []Spec, capHint int) {
	b.specs = specs
	b.rows = 0
	if cap(b.cols) < len(specs) {
		b.cols = make([]column, len(specs))
	} else {
		b.cols = b.cols[:len(specs)]
		for i := range b.cols {
			b.cols[i] = column{}
		}
	}
	if capHint <= 0 {
		return
	}
	for j, sp := range specs {
		if sp.Discard {
			continue
		}
		c := &b.cols[j]
		switch sp.QType {
		case qval.KBool:
			c.bools = make([]bool, 0, capHint)
		case qval.KShort:
			c.i16 = make([]int16, 0, capHint)
		case qval.KInt:
			c.i32 = make([]int32, 0, capHint)
		case qval.KReal:
			c.f32 = make([]float32, 0, capHint)
		case qval.KFloat:
			c.f64 = make([]float64, 0, capHint)
		case qval.KLong, qval.KDate, qval.KTime, qval.KTimestamp:
			c.i64 = make([]int64, 0, capHint)
		default:
			c.syms = make([]string, 0, capHint)
		}
	}
}

// NumCols returns the configured column count (kept and discarded).
func (b *TableBuilder) NumCols() int { return len(b.specs) }

// Rows returns how many rows FinishRow has sealed.
func (b *TableBuilder) Rows() int { return b.rows }

// FinishRow marks the end of one appended row (row accounting only; cells
// are stored as they arrive).
func (b *TableBuilder) FinishRow() { b.rows++ }

// AppendNull appends the per-type null to column j: integer minimums, NaN
// for floats, the empty symbol, false for booleans — kdb+ null conventions
// (qval.Null).
func (b *TableBuilder) AppendNull(j int) {
	sp := b.specs[j]
	if sp.Discard {
		return
	}
	c := &b.cols[j]
	switch sp.QType {
	case qval.KBool:
		c.bools = append(c.bools, false)
	case qval.KShort:
		c.i16 = append(c.i16, qval.NullShort)
	case qval.KInt:
		c.i32 = append(c.i32, qval.NullInt)
	case qval.KReal:
		c.f32 = append(c.f32, float32(math.NaN()))
	case qval.KFloat:
		c.f64 = append(c.f64, math.NaN())
	case qval.KLong, qval.KDate, qval.KTime, qval.KTimestamp:
		c.i64 = append(c.i64, qval.NullLong)
	default:
		c.syms = append(c.syms, "")
	}
}

// AppendBool appends a boolean cell to column j (which must be KBool).
func (b *TableBuilder) AppendBool(j int, v bool) {
	if b.specs[j].Discard {
		return
	}
	b.cols[j].bools = append(b.cols[j].bools, v)
}

// AppendInt appends an integral cell to column j, narrowing with the same
// range checks the text path's ParseInt applies. Temporal columns take the
// raw magnitude: the embedded engine stores temporals in exactly the kdb+
// units (days / ms / ns), so the copy is unit-exact.
func (b *TableBuilder) AppendInt(j int, v int64) error {
	sp := b.specs[j]
	if sp.Discard {
		return nil
	}
	c := &b.cols[j]
	switch sp.QType {
	case qval.KShort:
		if v < math.MinInt16 || v > math.MaxInt16 {
			return fmt.Errorf("value %d out of range for smallint", v)
		}
		c.i16 = append(c.i16, int16(v))
	case qval.KInt:
		if v < math.MinInt32 || v > math.MaxInt32 {
			return fmt.Errorf("value %d out of range for integer", v)
		}
		c.i32 = append(c.i32, int32(v))
	case qval.KLong, qval.KDate, qval.KTime, qval.KTimestamp:
		c.i64 = append(c.i64, v)
	case qval.KReal:
		c.f32 = append(c.f32, float32(v))
	case qval.KFloat:
		c.f64 = append(c.f64, float64(v))
	default:
		return fmt.Errorf("integer value in %s column", qval.TypeName(sp.QType))
	}
	return nil
}

// AppendFloat appends a float cell to column j (KReal narrows to float32).
// NaN is canonicalized to the float null bit pattern, matching what the text
// path produces when it re-parses "NaN".
func (b *TableBuilder) AppendFloat(j int, v float64) error {
	sp := b.specs[j]
	if sp.Discard {
		return nil
	}
	c := &b.cols[j]
	switch sp.QType {
	case qval.KReal:
		if math.IsNaN(v) {
			c.f32 = append(c.f32, float32(math.NaN()))
		} else {
			c.f32 = append(c.f32, float32(v))
		}
	case qval.KFloat:
		if math.IsNaN(v) {
			c.f64 = append(c.f64, math.NaN())
		} else {
			c.f64 = append(c.f64, v)
		}
	default:
		return fmt.Errorf("float value in %s column", qval.TypeName(sp.QType))
	}
	return nil
}

// AppendSym appends a symbol cell to column j (which must be KSymbol or any
// type colbuf does not model numerically).
func (b *TableBuilder) AppendSym(j int, s string) {
	if b.specs[j].Discard {
		return
	}
	b.cols[j].syms = append(b.cols[j].syms, s)
}

// AppendText decodes a PG text-format cell into column j with the same
// semantics as core.parseQAtom — the typed decode the pgv3 wire path uses,
// chosen once per column from the row description. field must be non-nil
// (NULL cells go through AppendNull).
func (b *TableBuilder) AppendText(j int, field []byte) error {
	sp := b.specs[j]
	if sp.Discard {
		return nil
	}
	c := &b.cols[j]
	switch sp.QType {
	case qval.KBool:
		c.bools = append(c.bools, textIsTrue(field))
	case qval.KShort:
		n, err := ParseIntText(field, 16)
		if err != nil {
			return err
		}
		c.i16 = append(c.i16, int16(n))
	case qval.KInt:
		n, err := ParseIntText(field, 32)
		if err != nil {
			return err
		}
		c.i32 = append(c.i32, int32(n))
	case qval.KLong:
		n, err := ParseIntText(field, 64)
		if err != nil {
			return err
		}
		c.i64 = append(c.i64, n)
	case qval.KReal:
		f, err := parseFloatText(field, 32)
		if err != nil {
			return err
		}
		c.f32 = append(c.f32, float32(f))
	case qval.KFloat:
		f, err := parseFloatText(field, 64)
		if err != nil {
			return err
		}
		c.f64 = append(c.f64, f)
	case qval.KDate:
		d, err := ParseDateText(field)
		if err != nil {
			return err
		}
		c.i64 = append(c.i64, d)
	case qval.KTime:
		ms, err := ParseTimeText(field)
		if err != nil {
			return err
		}
		c.i64 = append(c.i64, ms)
	case qval.KTimestamp:
		ns, err := ParseTimestampText(field)
		if err != nil {
			return err
		}
		c.i64 = append(c.i64, ns)
	default:
		c.syms = append(c.syms, string(field))
	}
	return nil
}

// Build finishes the kept columns as qval vectors, transferring ownership of
// the storage slices: the builder drops its references, so Release cannot
// recycle memory a served table still points at. Column order follows the
// specs with discarded columns removed; with no kept columns both returns
// are nil, mirroring core.ResultToQ on a column-free result.
func (b *TableBuilder) Build() (names []string, data []qval.Value) {
	for j := range b.specs {
		sp := b.specs[j]
		if sp.Discard {
			b.cols[j] = column{}
			continue
		}
		names = append(names, sp.Name)
		data = append(data, b.take(j, sp.QType))
	}
	return names, data
}

// take finishes column j as a typed vector and clears the builder's
// reference to its storage.
func (b *TableBuilder) take(j int, qt qval.Type) qval.Value {
	c := &b.cols[j]
	defer func() { *c = column{} }()
	switch qt {
	case qval.KBool:
		if c.bools == nil {
			return qval.BoolVec{}
		}
		return qval.BoolVec(c.bools)
	case qval.KShort:
		if c.i16 == nil {
			return qval.ShortVec{}
		}
		return qval.ShortVec(c.i16)
	case qval.KInt:
		if c.i32 == nil {
			return qval.IntVec{}
		}
		return qval.IntVec(c.i32)
	case qval.KReal:
		if c.f32 == nil {
			return qval.RealVec{}
		}
		return qval.RealVec(c.f32)
	case qval.KFloat:
		if c.f64 == nil {
			return qval.FloatVec{}
		}
		return qval.FloatVec(c.f64)
	case qval.KLong:
		if c.i64 == nil {
			return qval.LongVec{}
		}
		return qval.LongVec(c.i64)
	case qval.KDate, qval.KTime, qval.KTimestamp:
		v := c.i64
		if v == nil {
			v = []int64{}
		}
		return qval.TemporalVec{T: qt, V: v}
	default:
		if c.syms == nil {
			return qval.SymbolVec{}
		}
		return qval.SymbolVec(c.syms)
	}
}
