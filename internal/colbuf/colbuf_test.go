package colbuf

import (
	"fmt"
	"math"
	"strconv"
	"testing"
	"time"

	"hyperq/internal/qlang/qval"
)

func TestBuildTypedVectors(t *testing.T) {
	b := Get()
	defer b.Release()
	specs := []Spec{
		{Name: "ord", QType: qval.KLong, Discard: true},
		{Name: "b", QType: qval.KBool},
		{Name: "h", QType: qval.KShort},
		{Name: "i", QType: qval.KInt},
		{Name: "j", QType: qval.KLong},
		{Name: "e", QType: qval.KReal},
		{Name: "f", QType: qval.KFloat},
		{Name: "s", QType: qval.KSymbol},
		{Name: "d", QType: qval.KDate},
		{Name: "t", QType: qval.KTime},
		{Name: "p", QType: qval.KTimestamp},
	}
	b.Reset(specs, 4)
	for r := 0; r < 2; r++ {
		if err := b.AppendInt(0, int64(r)); err != nil {
			t.Fatal(err)
		}
		b.AppendBool(1, r == 0)
		if err := b.AppendInt(2, int64(10+r)); err != nil {
			t.Fatal(err)
		}
		if err := b.AppendInt(3, int64(100+r)); err != nil {
			t.Fatal(err)
		}
		if err := b.AppendInt(4, int64(1000+r)); err != nil {
			t.Fatal(err)
		}
		if err := b.AppendFloat(5, 1.5+float64(r)); err != nil {
			t.Fatal(err)
		}
		if err := b.AppendFloat(6, 2.5+float64(r)); err != nil {
			t.Fatal(err)
		}
		b.AppendSym(7, fmt.Sprintf("s%d", r))
		if err := b.AppendInt(8, int64(r)); err != nil {
			t.Fatal(err)
		}
		if err := b.AppendInt(9, int64(r)*1000); err != nil {
			t.Fatal(err)
		}
		if err := b.AppendInt(10, int64(r)*1e9); err != nil {
			t.Fatal(err)
		}
		b.FinishRow()
	}
	names, data := b.Build()
	if len(names) != 10 || len(data) != 10 {
		t.Fatalf("got %d names %d cols, want 10", len(names), len(data))
	}
	if names[0] != "b" || names[9] != "p" {
		t.Fatalf("names = %v", names)
	}
	if v, ok := data[0].(qval.BoolVec); !ok || len(v) != 2 || !v[0] || v[1] {
		t.Fatalf("bool col = %#v", data[0])
	}
	if v, ok := data[1].(qval.ShortVec); !ok || v[1] != 11 {
		t.Fatalf("short col = %#v", data[1])
	}
	if v, ok := data[2].(qval.IntVec); !ok || v[0] != 100 {
		t.Fatalf("int col = %#v", data[2])
	}
	if v, ok := data[3].(qval.LongVec); !ok || v[1] != 1001 {
		t.Fatalf("long col = %#v", data[3])
	}
	if v, ok := data[4].(qval.RealVec); !ok || v[0] != 1.5 {
		t.Fatalf("real col = %#v", data[4])
	}
	if v, ok := data[5].(qval.FloatVec); !ok || v[1] != 3.5 {
		t.Fatalf("float col = %#v", data[5])
	}
	if v, ok := data[6].(qval.SymbolVec); !ok || v[0] != "s0" {
		t.Fatalf("sym col = %#v", data[6])
	}
	if v, ok := data[7].(qval.TemporalVec); !ok || v.T != qval.KDate || v.V[1] != 1 {
		t.Fatalf("date col = %#v", data[7])
	}
	if v, ok := data[8].(qval.TemporalVec); !ok || v.T != qval.KTime || v.V[1] != 1000 {
		t.Fatalf("time col = %#v", data[8])
	}
	if v, ok := data[9].(qval.TemporalVec); !ok || v.T != qval.KTimestamp || v.V[1] != 1e9 {
		t.Fatalf("timestamp col = %#v", data[9])
	}
	if b.Rows() != 2 {
		t.Fatalf("rows = %d", b.Rows())
	}
}

func TestAppendNull(t *testing.T) {
	b := Get()
	defer b.Release()
	specs := []Spec{
		{Name: "b", QType: qval.KBool},
		{Name: "h", QType: qval.KShort},
		{Name: "i", QType: qval.KInt},
		{Name: "j", QType: qval.KLong},
		{Name: "e", QType: qval.KReal},
		{Name: "f", QType: qval.KFloat},
		{Name: "s", QType: qval.KSymbol},
		{Name: "p", QType: qval.KTimestamp},
	}
	b.Reset(specs, 0)
	for j := range specs {
		b.AppendNull(j)
	}
	b.FinishRow()
	_, data := b.Build()
	for k, col := range data {
		if specs[k].QType == qval.KBool {
			// booleans have no null; the convention is false
			if v := col.(qval.BoolVec); v[0] {
				t.Errorf("bool null should be false")
			}
			continue
		}
		if !qval.NullAt(col, 0) {
			t.Errorf("column %s row 0 not null: %#v", specs[k].Name, col)
		}
	}
}

// TestEmptyColumnsMatchEmptyVec pins the zero-row shape against what the
// text path produces via qval.EmptyVec.
func TestEmptyColumnsMatchEmptyVec(t *testing.T) {
	for _, qt := range []qval.Type{qval.KBool, qval.KShort, qval.KInt, qval.KLong,
		qval.KReal, qval.KFloat, qval.KSymbol, qval.KDate, qval.KTime, qval.KTimestamp} {
		b := Get()
		b.Reset([]Spec{{Name: "c", QType: qt}}, 0)
		_, data := b.Build()
		want := qval.EmptyVec(qt)
		if fmt.Sprintf("%#v", data[0]) != fmt.Sprintf("%#v", want) {
			t.Errorf("type %d: got %#v want %#v", qt, data[0], want)
		}
		b.Release()
	}
}

func TestBuildAllDiscardedIsNil(t *testing.T) {
	b := Get()
	defer b.Release()
	b.Reset([]Spec{{Name: "ord", QType: qval.KLong, Discard: true}}, 0)
	if err := b.AppendInt(0, 7); err != nil {
		t.Fatal(err)
	}
	b.FinishRow()
	names, data := b.Build()
	if names != nil || data != nil {
		t.Fatalf("all-discarded build: names=%v data=%v", names, data)
	}
}

func TestAppendIntRange(t *testing.T) {
	b := Get()
	defer b.Release()
	b.Reset([]Spec{{Name: "h", QType: qval.KShort}, {Name: "i", QType: qval.KInt}}, 0)
	if err := b.AppendInt(0, math.MaxInt16+1); err == nil {
		t.Error("short overflow not detected")
	}
	if err := b.AppendInt(1, math.MinInt32-1); err == nil {
		t.Error("int underflow not detected")
	}
	if err := b.AppendInt(0, math.MinInt16); err != nil {
		t.Error(err)
	}
	if err := b.AppendInt(1, math.MaxInt32); err != nil {
		t.Error(err)
	}
}

func TestAppendFloatNaNCanonical(t *testing.T) {
	b := Get()
	defer b.Release()
	b.Reset([]Spec{{Name: "f", QType: qval.KFloat}}, 0)
	// an arithmetic NaN with a different payload from math.NaN()
	weird := math.Float64frombits(0x7FF8000000000000)
	if err := b.AppendFloat(0, weird); err != nil {
		t.Fatal(err)
	}
	_, data := b.Build()
	got := math.Float64bits(float64(data[0].(qval.FloatVec)[0]))
	want := math.Float64bits(math.NaN())
	if got != want {
		t.Fatalf("NaN bits %#x, want canonical %#x", got, want)
	}
}

func TestParseIntTextMatchesStrconv(t *testing.T) {
	cases := []string{
		"0", "1", "-1", "+7", "32767", "32768", "-32768", "-32769",
		"2147483647", "2147483648", "-2147483648", "-2147483649",
		"9223372036854775807", "9223372036854775808",
		"-9223372036854775808", "-9223372036854775809",
		"", "-", "+", "1.5", "1e3", " 1", "1 ", "007", "99999999999999999999999",
	}
	for _, bits := range []int{16, 32, 64} {
		for _, s := range cases {
			want, werr := strconv.ParseInt(s, 10, bits)
			got, gerr := ParseIntText(s, bits)
			if (werr == nil) != (gerr == nil) {
				t.Errorf("ParseIntText(%q,%d): err=%v, strconv err=%v", s, bits, gerr, werr)
				continue
			}
			if werr == nil && got != want {
				t.Errorf("ParseIntText(%q,%d) = %d, want %d", s, bits, got, want)
			}
		}
	}
}

func TestParseDateTextMatchesTimeParse(t *testing.T) {
	cases := []string{
		"2000-01-01", "1999-12-31", "2024-02-29", "2023-02-29", "2023-02-28",
		"0001-01-01", "9999-12-31", "2024-13-01", "2024-00-10", "2024-06-31",
		"2024-6-01", "24-06-01", "2024-06-1", "garbage", "", "2024-06-015",
	}
	for _, s := range cases {
		tm, werr := time.Parse("2006-01-02", s)
		got, gerr := ParseDateText(s)
		if (werr == nil) != (gerr == nil) {
			t.Errorf("ParseDateText(%q): err=%v, time.Parse err=%v", s, gerr, werr)
			continue
		}
		if werr == nil {
			if want := qval.DateFromTime(tm); got != want {
				t.Errorf("ParseDateText(%q) = %d, want %d", s, got, want)
			}
		}
	}
}

func TestParseTimestampTextMatchesTimeParse(t *testing.T) {
	layouts := []string{"2006-01-02 15:04:05.999999999", "2006-01-02T15:04:05.999999999", "2006-01-02"}
	ref := func(s string) (int64, bool) {
		for _, l := range layouts {
			if tm, err := time.Parse(l, s); err == nil {
				return qval.TimestampFromTime(tm), true
			}
		}
		return 0, false
	}
	cases := []string{
		"2000-01-01 00:00:00", "2000-01-01", "1999-12-31 23:59:59.999999999",
		"2024-02-29T12:34:56.5", "2024-06-15 06:07:08.123456",
		"2024-06-15 6:07:08", "2024-06-15 23:59:59", "2024-06-15 24:00:00",
		"2024-06-15 12:60:00", "2024-06-15 12:00:60", "2024-06-15 12:00",
		"2024-06-15 12:00:00.", "2024-06-15 12:00:00.1234567891",
		"2024-06-15x12:00:00", "2024-06-15 12:0:00", "2024-06-15 12:00:0",
		"", "2024-06-15 ", "not-a-timestamp",
	}
	for _, s := range cases {
		want, wok := ref(s)
		got, gerr := ParseTimestampText(s)
		if wok != (gerr == nil) {
			t.Errorf("ParseTimestampText(%q): err=%v, time.Parse ok=%v", s, gerr, wok)
			continue
		}
		if wok && got != want {
			t.Errorf("ParseTimestampText(%q) = %d, want %d", s, got, want)
		}
	}
}

func TestParseTimeTextVariants(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"00:00:00", 0, false},
		{"00:00:00.000", 0, false},
		{"23:59:59.999", 86399999, false},
		{"12:34:56.5", 45296500, false},
		{"12:34:56.50", 45296500, false},
		{"12:34:56.500999", 45296500, false},
		{"1:2:3", 3723000, false},
		{"12:34", 0, true},
		{"::", 0, true},
		{"ab:cd:ef", 0, true},
		{"", 0, true},
	}
	for _, c := range cases {
		got, err := ParseTimeText(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseTimeText(%q) err=%v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseTimeText(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	// []byte instantiation decodes identically
	if got, err := ParseTimeText([]byte("09:08:07.123")); err != nil || got != 32887123 {
		t.Errorf("ParseTimeText([]byte) = %d, %v", got, err)
	}
}

func TestAppendTextPerColumnDecode(t *testing.T) {
	b := Get()
	defer b.Release()
	specs := []Spec{
		{Name: "b", QType: qval.KBool},
		{Name: "j", QType: qval.KLong},
		{Name: "f", QType: qval.KFloat},
		{Name: "s", QType: qval.KSymbol},
		{Name: "d", QType: qval.KDate},
	}
	b.Reset(specs, 1)
	for j, cell := range []string{"t", "42", "-Infinity", "hello", "2000-01-02"} {
		if err := b.AppendText(j, []byte(cell)); err != nil {
			t.Fatalf("col %d: %v", j, err)
		}
	}
	b.FinishRow()
	_, data := b.Build()
	if v := data[0].(qval.BoolVec); !v[0] {
		t.Error("bool decode")
	}
	if v := data[1].(qval.LongVec); v[0] != 42 {
		t.Error("long decode")
	}
	if v := data[2].(qval.FloatVec); !math.IsInf(v[0], -1) {
		t.Error("float decode")
	}
	if v := data[3].(qval.SymbolVec); v[0] != "hello" {
		t.Error("symbol decode")
	}
	if v := data[4].(qval.TemporalVec); v.V[0] != 1 {
		t.Error("date decode")
	}
}

// TestPoolReuseIsolation: building, releasing, and rebuilding must not let
// the second result alias the first result's storage.
func TestPoolReuseIsolation(t *testing.T) {
	b := Get()
	b.Reset([]Spec{{Name: "j", QType: qval.KLong}}, 2)
	if err := b.AppendInt(0, 1); err != nil {
		t.Fatal(err)
	}
	b.FinishRow()
	_, first := b.Build()
	b.Release()

	b2 := Get()
	b2.Reset([]Spec{{Name: "j", QType: qval.KLong}}, 2)
	if err := b2.AppendInt(0, 99); err != nil {
		t.Fatal(err)
	}
	b2.FinishRow()
	_, second := b2.Build()
	b2.Release()

	if v := first[0].(qval.LongVec); v[0] != 1 {
		t.Fatalf("first result mutated: %v", v)
	}
	if v := second[0].(qval.LongVec); v[0] != 99 {
		t.Fatalf("second result wrong: %v", v)
	}
}
