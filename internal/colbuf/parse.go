package colbuf

import (
	"fmt"
	"math"
	"strconv"
	"time"
	"unsafe"

	"hyperq/internal/qlang/qval"
)

// Text abstracts over string and []byte cell payloads so the wire path can
// decode straight out of the DataRow read buffer while the fallback text
// path shares the identical parser over strings. Both paths going through
// one implementation is what makes columnar-vs-text parity hold by
// construction for temporal and integer decoding.
type Text interface {
	~string | ~[]byte
}

// textIsTrue reports the PostgreSQL boolean text forms the text path
// accepts: "t", "true", "1" (anything else, including "f", is false).
func textIsTrue[T Text](s T) bool {
	switch len(s) {
	case 1:
		return s[0] == 't' || s[0] == '1'
	case 4:
		return s[0] == 't' && s[1] == 'r' && s[2] == 'u' && s[3] == 'e'
	}
	return false
}

// ParseIntText parses a base-10 integer with the same accept/reject set as
// strconv.ParseInt(s, 10, bits): optional sign, one or more digits, signed
// range check at the requested width.
func ParseIntText[T Text](s T, bits int) (int64, error) {
	i := 0
	neg := false
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		neg = s[0] == '-'
		i = 1
	}
	if i == len(s) {
		return 0, fmt.Errorf("invalid integer %q", string(s))
	}
	var un uint64
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid integer %q", string(s))
		}
		d := uint64(c - '0')
		if un > (math.MaxUint64-d)/10 {
			return 0, fmt.Errorf("integer %q out of range", string(s))
		}
		un = un*10 + d
	}
	cutoff := uint64(1) << uint(bits-1)
	if neg {
		if un > cutoff {
			return 0, fmt.Errorf("integer %q out of range", string(s))
		}
		return -int64(un), nil
	}
	if un >= cutoff {
		return 0, fmt.Errorf("integer %q out of range", string(s))
	}
	return int64(un), nil
}

// parseFloatText parses a float with strconv.ParseFloat semantics (accepts
// "NaN", "Infinity", "-Infinity", scientific notation; range errors
// propagate like the text path's).
func parseFloatText[T Text](s T, bits int) (float64, error) {
	return strconv.ParseFloat(asString(s), bits)
}

// asString views s as a string without copying. The returned string aliases
// s's bytes, so it must only be passed to calls that do not retain their
// argument (the strconv parsers); []byte callers own the buffer for the
// duration of the call.
func asString[T Text](s T) string {
	switch v := any(s).(type) {
	case string:
		return v
	case []byte:
		return unsafe.String(unsafe.SliceData(v), len(v))
	default:
		return string(s)
	}
}

// atoiText mirrors strconv.Atoi for the time-of-day parser: optional sign,
// digits, int range (practically unbounded for the widths involved).
func atoiText[T Text](s T) (int, error) {
	n, err := ParseIntText(s, 64)
	return int(n), err
}

func daysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if y%4 == 0 && (y%100 != 0 || y%400 == 0) {
			return 29
		}
		return 28
	}
}

// parseYMD parses the strict "YYYY-MM-DD" prefix time.Parse("2006-01-02")
// accepts: exactly 4-2-2 digits, month 1-12, day within the month.
func parseYMD[T Text](s T) (y, m, d int, err error) {
	bad := func() (int, int, int, error) {
		return 0, 0, 0, fmt.Errorf("bad date %q", string(s))
	}
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return bad()
	}
	num := func(lo, hi int) (int, bool) {
		n := 0
		for i := lo; i < hi; i++ {
			c := s[i]
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + int(c-'0')
		}
		return n, true
	}
	var ok bool
	if y, ok = num(0, 4); !ok {
		return bad()
	}
	if m, ok = num(5, 7); !ok || m < 1 || m > 12 {
		return bad()
	}
	if d, ok = num(8, 10); !ok || d < 1 || d > daysInMonth(y, m) {
		return bad()
	}
	return y, m, d, nil
}

// ParseDateText parses "YYYY-MM-DD" into days since the kdb+ epoch
// (2000-01-01), matching the text path's time.Parse + qval.DateFromTime.
func ParseDateText[T Text](s T) (int64, error) {
	y, m, d, err := parseYMD(s)
	if err != nil {
		return 0, err
	}
	return qval.DateFromTime(time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)), nil
}

// ParseTimeText parses "HH:MM:SS[.FFF...]" into milliseconds since
// midnight, mirroring the text path's parser exactly: the fraction is the
// first three characters after the dot (zero-padded when shorter, parsed
// with Atoi semantics), the remainder splits on ':' into exactly three
// Atoi-parsed fields with no range validation.
func ParseTimeText[T Text](s T) (int64, error) {
	frac := int64(0)
	for i := 0; i < len(s); i++ {
		if s[i] != '.' {
			continue
		}
		var fs [3]byte
		for k := 0; k < 3; k++ {
			if i+1+k < len(s) {
				fs[k] = s[i+1+k]
			} else {
				fs[k] = '0'
			}
		}
		n, err := atoiText(fs[:])
		if err != nil {
			return 0, err
		}
		frac = int64(n)
		s = s[:i]
		break
	}
	var c1, c2 int
	colons := 0
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			colons++
			switch colons {
			case 1:
				c1 = i
			case 2:
				c2 = i
			}
		}
	}
	if colons != 2 {
		return 0, fmt.Errorf("bad time %q", string(s))
	}
	h, e1 := atoiText(s[:c1])
	m, e2 := atoiText(s[c1+1 : c2])
	sec, e3 := atoiText(s[c2+1:])
	if e1 != nil || e2 != nil || e3 != nil {
		return 0, fmt.Errorf("bad time %q", string(s))
	}
	return int64(h)*3600000 + int64(m)*60000 + int64(sec)*1000 + frac, nil
}

// ParseTimestampText parses the timestamp layouts the text path tries
// ("2006-01-02 15:04:05.999999999", the 'T' separator variant, and the bare
// date) into nanoseconds since the kdb+ epoch.
func ParseTimestampText[T Text](s T) (int64, error) {
	bad := func() (int64, error) {
		return 0, fmt.Errorf("bad timestamp %q", string(s))
	}
	if len(s) < 10 {
		return bad()
	}
	y, m, d, err := parseYMD(s[:10])
	if err != nil {
		return bad()
	}
	if len(s) == 10 {
		return qval.TimestampFromTime(time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)), nil
	}
	if s[10] != ' ' && s[10] != 'T' {
		return bad()
	}
	rest := s[11:]
	// hour: one or two digits (time.Parse's "15" accepts both), < 24
	hl := 0
	for hl < len(rest) && hl < 2 && rest[hl] >= '0' && rest[hl] <= '9' {
		hl++
	}
	if hl == 0 || len(rest) < hl+6 || rest[hl] != ':' || rest[hl+3] != ':' {
		return bad()
	}
	num2 := func(i int) (int, bool) {
		if rest[i] < '0' || rest[i] > '9' || rest[i+1] < '0' || rest[i+1] > '9' {
			return 0, false
		}
		return int(rest[i]-'0')*10 + int(rest[i+1]-'0'), true
	}
	h := 0
	for i := 0; i < hl; i++ {
		h = h*10 + int(rest[i]-'0')
	}
	mi, ok1 := num2(hl + 1)
	sec, ok2 := num2(hl + 4)
	if !ok1 || !ok2 || h > 23 || mi > 59 || sec > 59 {
		return bad()
	}
	ns := 0
	if len(rest) > hl+6 {
		if rest[hl+6] != '.' || len(rest) == hl+7 {
			return bad()
		}
		digits := 0
		for i := hl + 7; i < len(rest); i++ {
			c := rest[i]
			if c < '0' || c > '9' {
				return bad()
			}
			// time.Parse truncates fractions beyond nanosecond precision
			if digits < 9 {
				ns = ns*10 + int(c-'0')
				digits++
			}
		}
		if digits == 0 {
			return bad()
		}
		for ; digits < 9; digits++ {
			ns *= 10
		}
	}
	t := time.Date(y, time.Month(m), d, h, mi, sec, ns, time.UTC)
	return qval.TimestampFromTime(t), nil
}
