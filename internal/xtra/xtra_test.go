package xtra

import (
	"strings"
	"testing"

	"hyperq/internal/qlang/qval"
)

func sampleGet() *Get {
	g := &Get{Table: "trades", QName: "trades"}
	g.P.Cols = []Col{
		{Name: OrdCol, QType: qval.KLong, SQLType: "bigint"},
		{Name: "Symbol", QType: qval.KSymbol, SQLType: "varchar"},
		{Name: "Price", QType: qval.KFloat, SQLType: "double precision"},
	}
	g.P.OrderCol = OrdCol
	g.P.PreservesOrder = true
	return g
}

func TestPropsLookup(t *testing.T) {
	g := sampleGet()
	c, ok := g.P.Col("Price")
	if !ok || c.QType != qval.KFloat {
		t.Fatalf("Col(Price) = %v %v", c, ok)
	}
	if _, ok := g.P.Col("nope"); ok {
		t.Fatal("Col(nope) should miss")
	}
	names := g.P.ColNames()
	if len(names) != 3 || names[1] != "Symbol" {
		t.Fatalf("ColNames = %v", names)
	}
}

func TestOpNamesAndChildren(t *testing.T) {
	g := sampleGet()
	f := &Filter{Input: g, Pred: &FnApp{Op: "=", Typ: qval.KBool}}
	f.P = g.P
	p := &Project{Input: f}
	p.P.Cols = []Col{{Name: "Price", QType: qval.KFloat}}
	if g.OpName() != "xtra_get(trades)" {
		t.Errorf("get name = %q", g.OpName())
	}
	if len(f.Children()) != 1 || f.Children()[0] != Node(g) {
		t.Error("filter children wrong")
	}
	if len(g.Children()) != 0 {
		t.Error("get should be a leaf")
	}
	count := 0
	Walk(p, func(Node) bool { count++; return true })
	if count != 3 {
		t.Errorf("walk visited %d, want 3", count)
	}
}

func TestScalarTypesAndStrings(t *testing.T) {
	c := &ConstExpr{Val: qval.Long(5)}
	if c.QType() != qval.KLong {
		t.Errorf("const type = %v", c.QType())
	}
	cr := &ColRef{Name: "Price", Typ: qval.KFloat}
	if cr.QType() != qval.KFloat || cr.SString() != "Price" {
		t.Errorf("colref = %v %q", cr.QType(), cr.SString())
	}
	fn := &FnApp{Op: "+", Args: []Scalar{c, cr}, Typ: qval.KFloat}
	if fn.SString() != "+(5;Price)" {
		t.Errorf("fnapp sstring = %q", fn.SString())
	}
	agg := &AggCall{Fn: "max", Arg: cr, Typ: qval.KFloat}
	if agg.SString() != "max(Price)" {
		t.Errorf("agg sstring = %q", agg.SString())
	}
	star := &AggCall{Fn: "count", Typ: qval.KLong}
	if star.SString() != "count(*)" {
		t.Errorf("count sstring = %q", star.SString())
	}
}

func TestPlanString(t *testing.T) {
	g := sampleGet()
	srt := &Sort{Input: g, Keys: []SortKey{{Col: OrdCol}}}
	srt.P = g.P
	s := PlanString(srt)
	for _, want := range []string{"xtra_sort", "xtra_get(trades)", "ord=ordcol", "Price"} {
		if !strings.Contains(s, want) {
			t.Errorf("PlanString missing %q:\n%s", want, s)
		}
	}
}

func TestSQLTypeMappingRoundTrip(t *testing.T) {
	// paper §3.2.2: int types -> integer types, symbol -> varchar
	cases := map[qval.Type]string{
		qval.KBool:      "boolean",
		qval.KShort:     "smallint",
		qval.KInt:       "integer",
		qval.KLong:      "bigint",
		qval.KReal:      "real",
		qval.KFloat:     "double precision",
		qval.KSymbol:    "varchar",
		qval.KDate:      "date",
		qval.KTime:      "time",
		qval.KTimestamp: "timestamp",
	}
	for qt, sql := range cases {
		if got := SQLTypeFor(qt); got != sql {
			t.Errorf("SQLTypeFor(%s) = %q, want %q", qval.TypeName(qt), got, sql)
		}
	}
	// round trip through QTypeForSQL for the distinct mappings
	for _, qt := range []qval.Type{qval.KBool, qval.KShort, qval.KInt, qval.KLong,
		qval.KReal, qval.KFloat, qval.KSymbol, qval.KDate, qval.KTime, qval.KTimestamp} {
		if got := QTypeForSQL(SQLTypeFor(qt)); got != qt {
			t.Errorf("round trip %s -> %s -> %s", qval.TypeName(qt), SQLTypeFor(qt), qval.TypeName(got))
		}
	}
}

func TestJoinKindStrings(t *testing.T) {
	if InnerJoin.String() != "inner" || LeftOuterJoin.String() != "leftouter" || CrossJoinKind.String() != "cross" {
		t.Error("join kind strings wrong")
	}
}
