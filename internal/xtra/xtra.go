// Package xtra implements the eXTended Relational Algebra — Hyper-Q's
// internal query representation (paper §3.2). Q queries are bound into XTRA
// trees by the binder, transformed by the Xformer, and serialized to SQL.
//
// Every relational operator derives properties (§3.2.2): its output columns
// with names and Q types, its key columns, its implicit order column, and
// whether it preserves the order of its input — the property the Xformer
// uses to elide unnecessary ORDER BY clauses (§3.3).
package xtra

import (
	"fmt"
	"strings"

	"hyperq/internal/qlang/qval"
)

// Col describes one output column of a relational operator: its Q name, its
// Q type, and the SQL type it maps to.
type Col struct {
	Name    string
	QType   qval.Type // vector type code
	SQLType string
}

// Props are the derived relational properties of an XTRA operator (paper
// §3.2.2): output columns, keys, ordering.
type Props struct {
	Cols []Col
	// Keys lists columns that uniquely identify rows (empty when unknown).
	Keys []string
	// OrderCol names the implicit order column when the operator's output
	// carries one ("" when none). Q's ordered-list semantics require every
	// table to have one; the Xformer injects it when missing (§3.3).
	OrderCol string
	// PreservesOrder indicates the operator emits rows in its input's
	// order, letting the Xformer skip explicit ordering.
	PreservesOrder bool
}

// Col returns the column with the given name and whether it exists.
func (p *Props) Col(name string) (Col, bool) {
	for _, c := range p.Cols {
		if c.Name == name {
			return c, true
		}
	}
	return Col{}, false
}

// ColNames lists the output column names in order.
func (p *Props) ColNames() []string {
	out := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		out[i] = c.Name
	}
	return out
}

// Node is a relational XTRA operator.
type Node interface {
	// Props returns the operator's derived properties.
	Props() *Props
	// Children returns the relational inputs.
	Children() []Node
	// OpName names the operator for debugging and plan display.
	OpName() string
}

// Scalar is a scalar XTRA expression.
type Scalar interface {
	// QType returns the derived Q type of the expression.
	QType() qval.Type
	// SString renders the scalar for plan display.
	SString() string
}

// ---------- Scalar operators ----------

// ConstExpr is xtra_const: a literal value (paper §3.2.2).
type ConstExpr struct {
	Val qval.Value
}

// QType implements Scalar.
func (c *ConstExpr) QType() qval.Type {
	t := c.Val.Type()
	if t < 0 {
		return -t
	}
	return t
}

// SString implements Scalar.
func (c *ConstExpr) SString() string { return c.Val.String() }

// ColRef references a column of the operator's input by name.
type ColRef struct {
	Name string
	Typ  qval.Type
}

// QType implements Scalar.
func (c *ColRef) QType() qval.Type { return c.Typ }

// SString implements Scalar.
func (c *ColRef) SString() string { return c.Name }

// FnApp applies a scalar function or operator to arguments. Op uses Q
// operator spellings ("+", "=", "in", "like", "not", ...); the serializer
// maps them to SQL.
type FnApp struct {
	Op   string
	Args []Scalar
	Typ  qval.Type
}

// QType implements Scalar.
func (f *FnApp) QType() qval.Type { return f.Typ }

// SString implements Scalar.
func (f *FnApp) SString() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.SString()
	}
	return f.Op + "(" + strings.Join(parts, ";") + ")"
}

// AggCall is an aggregate function over an input column expression.
type AggCall struct {
	Fn  string // sum, avg, min, max, count, first, last, dev, var, med
	Arg Scalar // nil for count(*)
	Typ qval.Type
}

// QType implements Scalar.
func (a *AggCall) QType() qval.Type { return a.Typ }

// SString implements Scalar.
func (a *AggCall) SString() string {
	if a.Arg == nil {
		return a.Fn + "(*)"
	}
	return a.Fn + "(" + a.Arg.SString() + ")"
}

// ListExpr is a list-valued scalar (for IN lists).
type ListExpr struct {
	Items []Scalar
}

// QType implements Scalar.
func (l *ListExpr) QType() qval.Type { return qval.KList }

// SString implements Scalar.
func (l *ListExpr) SString() string {
	parts := make([]string, len(l.Items))
	for i, x := range l.Items {
		parts[i] = x.SString()
	}
	return "(" + strings.Join(parts, ";") + ")"
}

// NamedExpr pairs an output column name with its defining scalar.
type NamedExpr struct {
	Name string
	Expr Scalar
}

// ---------- Relational operators ----------

// Get is xtra_get: a scan of a backend table resolved through metadata
// (paper §3.2.2, Figure 2).
type Get struct {
	Table string // backend (SQL) table name
	QName string // the Q variable name it was bound from
	P     Props
}

// Props implements Node.
func (g *Get) Props() *Props { return &g.P }

// Children implements Node.
func (g *Get) Children() []Node { return nil }

// OpName implements Node.
func (g *Get) OpName() string { return fmt.Sprintf("xtra_get(%s)", g.Table) }

// ConstTable is an inline table of literal rows (e.g. enlisted values).
type ConstTable struct {
	P    Props
	Rows [][]qval.Value
}

// Props implements Node.
func (c *ConstTable) Props() *Props { return &c.P }

// Children implements Node.
func (c *ConstTable) Children() []Node { return nil }

// OpName implements Node.
func (c *ConstTable) OpName() string { return "xtra_const_table" }

// Project computes named expressions over its input (select columns).
type Project struct {
	Input Node
	Exprs []NamedExpr
	P     Props
}

// Props implements Node.
func (p *Project) Props() *Props { return &p.P }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// OpName implements Node.
func (p *Project) OpName() string { return "xtra_project" }

// Filter keeps rows satisfying a predicate.
type Filter struct {
	Input Node
	Pred  Scalar
	P     Props
}

// Props implements Node.
func (f *Filter) Props() *Props { return &f.P }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Input} }

// OpName implements Node.
func (f *Filter) OpName() string { return "xtra_filter" }

// JoinKind enumerates join operators.
type JoinKind int

// Join kinds.
const (
	InnerJoin JoinKind = iota
	LeftOuterJoin
	CrossJoinKind
)

func (k JoinKind) String() string {
	switch k {
	case InnerJoin:
		return "inner"
	case LeftOuterJoin:
		return "leftouter"
	default:
		return "cross"
	}
}

// Join is a binary join with an optional predicate.
type Join struct {
	Kind JoinKind
	L, R Node
	// EqCols are equality join columns present on both sides.
	EqCols []string
	// Extra is an additional join predicate (may be nil).
	Extra Scalar
	P     Props
}

// Props implements Node.
func (j *Join) Props() *Props { return &j.P }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.L, j.R} }

// OpName implements Node.
func (j *Join) OpName() string { return "xtra_join(" + j.Kind.String() + ")" }

// AsOfJoin is the algebraic form of Q's aj: a left outer join whose match is
// "most recent right row with equal EqCols and TimeCol <= left TimeCol".
// The binder produces it directly from aj (paper Figure 2 binds aj to a left
// outer join computing a window function on its right input); the serializer
// expands it into exactly that SQL shape.
type AsOfJoin struct {
	L, R    Node
	EqCols  []string
	TimeCol string
	P       Props
}

// Props implements Node.
func (j *AsOfJoin) Props() *Props { return &j.P }

// Children implements Node.
func (j *AsOfJoin) Children() []Node { return []Node{j.L, j.R} }

// OpName implements Node.
func (j *AsOfJoin) OpName() string { return "xtra_asofjoin" }

// GroupAgg groups by key columns and computes aggregate expressions.
type GroupAgg struct {
	Input Node
	Keys  []NamedExpr // grouping expressions with output names
	Aggs  []NamedExpr // aggregate expressions with output names
	P     Props
}

// Props implements Node.
func (g *GroupAgg) Props() *Props { return &g.P }

// Children implements Node.
func (g *GroupAgg) Children() []Node { return []Node{g.Input} }

// OpName implements Node.
func (g *GroupAgg) OpName() string { return "xtra_groupagg" }

// WindowFunc is one windowed computation added by the Window operator.
type WindowFunc struct {
	Name        string   // output column
	Fn          string   // row_number, last_value, sum, ...
	Arg         Scalar   // may be nil (row_number)
	PartitionBy []string // column names
	OrderBy     []SortKey
}

// Window appends window-function columns to its input — the operator the
// Xformer injects to generate implicit order columns (paper §3.3).
type Window struct {
	Input Node
	Funcs []WindowFunc
	P     Props
}

// Props implements Node.
func (w *Window) Props() *Props { return &w.P }

// Children implements Node.
func (w *Window) Children() []Node { return []Node{w.Input} }

// OpName implements Node.
func (w *Window) OpName() string { return "xtra_window" }

// SortKey is one ordering criterion.
type SortKey struct {
	Col  string
	Desc bool
}

// Sort orders rows. The Xformer adds Sort on ordcol at plan roots to
// maintain Q's ordered-list semantics, and removes it where an enclosing
// operator is order-insensitive (§3.3).
type Sort struct {
	Input Node
	Keys  []SortKey
	P     Props
}

// Props implements Node.
func (s *Sort) Props() *Props { return &s.P }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Input} }

// OpName implements Node.
func (s *Sort) OpName() string { return "xtra_sort" }

// Limit caps the row count (head/take).
type Limit struct {
	Input Node
	N     int64
	P     Props
}

// Props implements Node.
func (l *Limit) Props() *Props { return &l.P }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Input} }

// OpName implements Node.
func (l *Limit) OpName() string { return "xtra_limit" }

// Walk visits the relational tree depth-first pre-order.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// PlanString renders the operator tree with properties, for debugging and
// tests.
func PlanString(n Node) string {
	var b strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.OpName())
		p := n.Props()
		b.WriteString(" [")
		for i, c := range p.Cols {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Name)
		}
		b.WriteString("]")
		if p.OrderCol != "" {
			b.WriteString(" ord=" + p.OrderCol)
		}
		b.WriteString("\n")
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}

// SQLTypeFor maps a Q type to its backend SQL type (paper §3.2.2: int types
// map to integer types, symbol to varchar, strings to text).
func SQLTypeFor(t qval.Type) string {
	if t < 0 {
		t = -t
	}
	switch t {
	case qval.KBool:
		return "boolean"
	case qval.KByte, qval.KShort:
		return "smallint"
	case qval.KInt:
		return "integer"
	case qval.KLong:
		return "bigint"
	case qval.KReal:
		return "real"
	case qval.KFloat:
		return "double precision"
	case qval.KChar:
		return "varchar"
	case qval.KSymbol:
		return "varchar"
	case qval.KTimestamp, qval.KDatetime:
		return "timestamp"
	case qval.KMonth:
		return "integer"
	case qval.KDate:
		return "date"
	case qval.KTimespan:
		return "bigint"
	case qval.KMinute, qval.KSecond:
		return "integer"
	case qval.KTime:
		return "time"
	default:
		return "text"
	}
}

// QTypeForSQL maps a backend SQL type back to a Q type.
func QTypeForSQL(t string) qval.Type {
	switch t {
	case "boolean", "bool":
		return qval.KBool
	case "smallint", "int2":
		return qval.KShort
	case "integer", "int", "int4":
		return qval.KInt
	case "bigint", "int8":
		return qval.KLong
	case "real", "float4":
		return qval.KReal
	case "double precision", "float8", "numeric", "decimal":
		return qval.KFloat
	case "date":
		return qval.KDate
	case "time":
		return qval.KTime
	case "timestamp", "timestamptz":
		return qval.KTimestamp
	default:
		return qval.KSymbol
	}
}

// OrdCol is the reserved name of the implicit order column Hyper-Q plumbs
// through generated SQL (paper §4.3 shows it as "ordcol").
const OrdCol = "ordcol"

// Union is a bag union of two inputs over the union of their columns;
// columns missing on one side are null-padded. It serializes to UNION ALL
// and implements Q's uj (union join).
type Union struct {
	L, R Node
	P    Props
}

// Props implements Node.
func (u *Union) Props() *Props { return &u.P }

// Children implements Node.
func (u *Union) Children() []Node { return []Node{u.L, u.R} }

// OpName implements Node.
func (u *Union) OpName() string { return "xtra_union" }
