package qcache

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDoWaiterCancelDetachesWithoutPoisoning(t *testing.T) {
	c := New(8)
	release := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan *Entry, 1)
	go func() {
		e, _, err := c.Do(ctx, key("w"), func(context.Context) (*Entry, error) {
			close(started)
			<-release
			return entry("SELECT w"), nil
		})
		if err != nil {
			t.Error(err)
		}
		leaderDone <- e
	}()
	<-started

	wctx, wcancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(wctx, key("w"), func(context.Context) (*Entry, error) {
			t.Error("canceled waiter must not translate")
			return nil, nil
		})
		waiterErr <- err
	}()
	waitFor(t, func() bool { return c.Stats().Dedups == 1 }, "waiter never joined the flight")

	// the waiter detaches immediately on cancellation, before the flight ends
	wcancel()
	select {
	case err := <-waiterErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter stayed blocked on the flight")
	}

	// the flight carries on undisturbed and its result is cached
	close(release)
	if e := <-leaderDone; e == nil || e.SQL != "SELECT w" {
		t.Fatalf("leader entry = %v", e)
	}
	if e, ok := c.Get(key("w")); !ok || e.SQL != "SELECT w" {
		t.Fatal("waiter cancellation poisoned the cache")
	}
}

func TestDoCanceledLeaderHandsOffToWaiter(t *testing.T) {
	c := New(8)
	lctx, lcancel := context.WithCancel(context.Background())
	inTranslate := make(chan struct{})
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(lctx, key("h"), func(ctx context.Context) (*Entry, error) {
			close(inTranslate)
			<-ctx.Done()
			return nil, ctx.Err()
		})
		leaderErr <- err
	}()
	<-inTranslate

	type res struct {
		e      *Entry
		shared bool
		err    error
	}
	waiterDone := make(chan res, 1)
	go func() {
		e, shared, err := c.Do(context.Background(), key("h"), func(context.Context) (*Entry, error) {
			return entry("SELECT h"), nil
		})
		waiterDone <- res{e, shared, err}
	}()
	waitFor(t, func() bool { return c.Stats().Dedups == 1 }, "waiter never joined the flight")

	// kill the leader: its failure is its own, the waiter retries as leader
	lcancel()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	select {
	case r := <-waiterDone:
		if r.err != nil || r.e == nil || r.e.SQL != "SELECT h" {
			t.Fatalf("waiter after handoff = %+v", r)
		}
		if r.shared {
			t.Fatal("waiter should have retranslated as the new leader, not shared")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never took over the aborted flight")
	}
	if e, ok := c.Get(key("h")); !ok || e.SQL != "SELECT h" {
		t.Fatal("handed-off translation was not cached")
	}
}

// TestDoConcurrentCancellationTorture is the serving-runtime cancellation
// stress test: many clients pile onto one single-flight translation while
// half of them are canceled mid-wait, repeatedly. Survivors must always get
// the entry, canceled clients must get context.Canceled, the cache must end
// each round warm (never poisoned), and no goroutine may leak. Run under
// -race.
func TestDoConcurrentCancellationTorture(t *testing.T) {
	c := New(64)
	base := runtime.NumGoroutine()
	const clients = 32
	for round := 0; round < 20; round++ {
		k := key(fmt.Sprintf("torture%d", round))
		release := make(chan struct{})
		var arrivals atomic.Int64
		translate := func(ctx context.Context) (*Entry, error) {
			select {
			case <-release:
				return entry("SELECT torture"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		ctxs := make([]context.Context, clients)
		cancels := make([]context.CancelFunc, clients)
		for i := range ctxs {
			ctxs[i], cancels[i] = context.WithCancel(context.Background())
		}
		entries := make([]*Entry, clients)
		errs := make([]error, clients)
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				arrivals.Add(1)
				entries[i], _, errs[i] = c.Do(ctxs[i], k, translate)
			}(i)
		}
		// let the herd pile up, cancel the odd half mid-wait, then finish
		waitFor(t, func() bool { return arrivals.Load() == clients }, "clients never started")
		time.Sleep(time.Millisecond)
		for i := 1; i < clients; i += 2 {
			cancels[i]()
		}
		time.Sleep(time.Millisecond)
		close(release)
		wg.Wait()
		for _, cancel := range cancels {
			cancel()
		}

		for i := 0; i < clients; i++ {
			switch {
			case errs[i] == nil:
				if entries[i] == nil || entries[i].SQL != "SELECT torture" {
					t.Fatalf("round %d client %d: entry = %v", round, i, entries[i])
				}
			case errors.Is(errs[i], context.Canceled):
				// canceled client: detached cleanly
			default:
				t.Fatalf("round %d client %d: err = %v", round, i, errs[i])
			}
		}
		if e, ok := c.Get(k); !ok || e.SQL != "SELECT torture" {
			t.Fatalf("round %d: cache poisoned by cancellations", round)
		}
	}
	// all flights resolved: nothing may still be parked on a done channel
	waitFor(t, func() bool { return runtime.NumGoroutine() <= base+2 },
		fmt.Sprintf("goroutines leaked: started with %d, now %d", base, runtime.NumGoroutine()))
}
