package qcache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var ctx = context.Background()

func key(q string) Key { return Key{Query: q} }

func entry(sql string) *Entry {
	return &Entry{SQL: sql, Cost: Cost{Parse: time.Microsecond}}
}

func TestGetPut(t *testing.T) {
	c := New(4)
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key("a"), entry("SELECT a"))
	e, ok := c.Get(key("a"))
	if !ok || e.SQL != "SELECT a" {
		t.Fatalf("Get = %v, %v", e, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKeyComponentsDistinguish(t *testing.T) {
	c := New(8)
	c.Put(Key{Query: "q", Scope: 1, Meta: 1}, entry("one"))
	for _, k := range []Key{
		{Query: "q", Scope: 1, Meta: 2},
		{Query: "q", Scope: 2, Meta: 1},
		{Query: "q2", Scope: 1, Meta: 1},
	} {
		if _, ok := c.Get(k); ok {
			t.Fatalf("key %+v should not hit", k)
		}
	}
	if _, ok := c.Get(Key{Query: "q", Scope: 1, Meta: 1}); !ok {
		t.Fatal("exact key should hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put(key("a"), entry("a"))
	c.Put(key("b"), entry("b"))
	c.Get(key("a")) // a is now most recently used
	c.Put(key("c"), entry("c"))
	if _, ok := c.Get(key("b")); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	if _, ok := c.Get(key("a")); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get(key("c")); !ok {
		t.Fatal("c should be present")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestPutReplaces(t *testing.T) {
	c := New(2)
	c.Put(key("a"), entry("v1"))
	c.Put(key("a"), entry("v2"))
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	e, _ := c.Get(key("a"))
	if e.SQL != "v2" {
		t.Fatalf("SQL = %q, want v2", e.SQL)
	}
}

func TestDoSingleFlight(t *testing.T) {
	c := New(8)
	var translations atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]*Entry, waiters)
	sharedCount := atomic.Int64{}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, shared, err := c.Do(ctx, key("hot"), func(context.Context) (*Entry, error) {
				close(started)
				translations.Add(1)
				<-release
				return entry("SELECT hot"), nil
			})
			if err != nil {
				t.Error(err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = e
		}(i)
	}
	<-started
	// give the other goroutines a moment to pile up on the flight
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := translations.Load(); n != 1 {
		t.Fatalf("translate ran %d times, want 1", n)
	}
	for i, e := range results {
		if e == nil || e.SQL != "SELECT hot" {
			t.Fatalf("caller %d got %v", i, e)
		}
	}
	if sc := sharedCount.Load(); sc != waiters-1 {
		t.Fatalf("shared count = %d, want %d", sc, waiters-1)
	}
	// flight result was cached
	if _, ok := c.Get(key("hot")); !ok {
		t.Fatal("flight result should have been cached")
	}
}

func TestDoNotCacheable(t *testing.T) {
	c := New(8)
	e, shared, err := c.Do(ctx, key("assign"), func(context.Context) (*Entry, error) { return nil, nil })
	if e != nil || shared || err != nil {
		t.Fatalf("Do = %v, %v, %v", e, shared, err)
	}
	if c.Len() != 0 {
		t.Fatal("nil entry must not be stored")
	}
	// a later Do runs translate again (nothing was cached)
	ran := false
	c.Do(ctx, key("assign"), func(context.Context) (*Entry, error) { ran = true; return nil, nil })
	if !ran {
		t.Fatal("translate should run again for uncacheable keys")
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(8)
	boom := fmt.Errorf("boom")
	_, _, err := c.Do(ctx, key("bad"), func(context.Context) (*Entry, error) { return nil, boom })
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("errors must not be cached")
	}
}

func TestClear(t *testing.T) {
	c := New(8)
	c.Put(key("a"), entry("a"))
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("Clear should drop all entries")
	}
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("hit after Clear")
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	c := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprintf("q%d", i%50))
				switch i % 4 {
				case 0:
					c.Put(k, entry(k.Query))
				case 1:
					c.Get(k)
				case 2:
					c.Do(ctx, k, func(context.Context) (*Entry, error) { return entry(k.Query), nil })
				case 3:
					if i%40 == 3 {
						c.Clear()
					} else {
						c.Stats()
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"select from trades", "select from trades"},
		{"  select   from\ttrades  ", "select from trades"},
		{"a:1;  b : 2", "a:1; b : 2"},
		// newlines are statement-ish separators: preserved, runs collapsed
		{"a:1\n\nb:2", "a:1\nb:2"},
		{"a:1\r\nb:2", "a:1\nb:2"},
		// string literals keep their exact spacing
		{`x: "two  spaces"`, `x: "two  spaces"`},
		{`x: "esc \"  q"   `, `x: "esc \"  q"`},
		// leading space after newline is preserved (continuation lines)
		{"a:1\n  +2", "a:1\n +2"},
	}
	for _, tc := range cases {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	// distinct programs must stay distinct
	if Normalize("a:1\nb:2") == Normalize("a:1 b:2") {
		t.Error("newline and space must not normalize to the same key")
	}
}
