// Package qcache implements the query-translation cache of the concurrent
// serving runtime: a bounded LRU of translated plans shared by every session
// of a Hyper-Q process. The paper's value proposition is that translation
// overhead is negligible (~0.5% mean, Figure 6); once many concurrent
// clients replay the same workload queries, even that cost is dominated by
// repetition, so a warm hit skips parse/bind/xform/serialize entirely.
//
// Correctness rests on the key: a translation is only valid for the exact
// variable-visibility and metadata state it was produced under, so the key
// combines the normalized Q text with a scope fingerprint (session + server
// variable stores, see binder.Scopes.Fingerprint) and the metadata
// generation (mdi.MDI.Generation). A DDL or variable-store mutation bumps
// the respective generation, which orphans every dependent entry — stale
// entries are never served and age out of the LRU.
//
// Concurrent identical queries are deduplicated with single-flight
// semantics: the first caller translates, the rest wait and share the
// result, so a thundering herd of N identical queries costs one
// translation.
package qcache

import (
	"container/list"
	"context"
	"errors"
	"strings"
	"sync"
	"time"
)

// Key identifies one cached translation.
type Key struct {
	// Query is the normalized Q source text (see Normalize).
	Query string
	// Scope fingerprints the variable-visibility state the translation
	// bound against (session + server scopes).
	Scope uint64
	// Meta is the metadata generation of the MDI the translation used;
	// DDL bumps it, invalidating dependent entries.
	Meta uint64
}

// Kind classifies how a cached statement's backend result is converted.
type Kind int

// Entry kinds.
const (
	// Select is a relational statement: the result is a Q table.
	Select Kind = iota
	// ScalarSelect is a non-constant scalar statement executed as a
	// single-row SELECT; a 1x1 result unwraps to an atom.
	ScalarSelect
)

// Cost is the per-stage translation time the entry's producer paid — what a
// cache hit saves, reported as RunStats.Saved.
type Cost struct {
	Parse     time.Duration
	Bind      time.Duration
	Xform     time.Duration
	Serialize time.Duration
}

// Total returns the summed translation cost.
func (c Cost) Total() time.Duration {
	return c.Parse + c.Bind + c.Xform + c.Serialize
}

// Entry is one cached translation: everything needed to execute the
// statement without re-running any pipeline stage.
type Entry struct {
	SQL  string
	Kind Kind
	// IsExec marks q's exec template, whose single-column results unwrap
	// to a bare vector.
	IsExec bool
	Cost   Cost
}

// Stats reports cache effectiveness.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Dedups counts callers that waited on another caller's in-flight
	// translation instead of translating themselves.
	Dedups  int64
	Entries int
}

// Cache is a bounded LRU of translated plans with single-flight
// deduplication. Safe for concurrent use.
type Cache struct {
	max int

	mu      sync.Mutex
	lru     *list.List // front = most recently used; elements hold *item
	items   map[Key]*list.Element
	flights map[Key]*flight

	hits, misses, evictions, dedups int64
}

type item struct {
	key Key
	e   *Entry
}

type flight struct {
	done chan struct{}
	e    *Entry
	err  error
	// aborted marks a flight whose leader's own context died mid-translate:
	// the outcome is specific to the leader, so waiters retry instead of
	// inheriting a foreign cancellation. Written before done closes.
	aborted bool
}

// New creates a cache bounded to maxEntries (minimum 1).
func New(maxEntries int) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache{
		max:     maxEntries,
		lru:     list.New(),
		items:   map[Key]*list.Element{},
		flights: map[Key]*flight{},
	}
}

// Get returns the cached entry for k, if any, marking it most recently
// used.
func (c *Cache) Get(k Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*item).e, true
	}
	c.misses++
	return nil, false
}

// Put inserts or replaces the entry for k, evicting the least recently used
// entry when the cache is full.
func (c *Cache) Put(k Key, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(k, e)
}

func (c *Cache) put(k Key, e *Entry) {
	if el, ok := c.items[k]; ok {
		el.Value.(*item).e = e
		c.lru.MoveToFront(el)
		return
	}
	c.items[k] = c.lru.PushFront(&item{key: k, e: e})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.items, oldest.Value.(*item).key)
		c.evictions++
	}
}

// Do returns the cached entry for k or produces one with translate,
// deduplicating concurrent callers: while one caller (the leader) runs
// translate, others asking for the same key wait and share its outcome. The
// shared return is true when the entry came from the cache or another
// caller's flight (i.e. this caller skipped translation).
//
// The wait is cancellable: a waiter whose ctx is canceled detaches with
// ctx.Err() while the flight continues undisturbed for everyone else. A
// leader whose own ctx dies mid-translate hands the flight off — its
// failure is not stored or propagated; surviving waiters race to become the
// new leader and retry. Other translate errors propagate to all waiters and
// are not stored.
//
// translate may return (nil, nil) to signal "not cacheable": nothing is
// stored, and every caller receives a nil entry to fall back on its own
// uncached path.
func (c *Cache) Do(ctx context.Context, k Key, translate func(ctx context.Context) (*Entry, error)) (e *Entry, shared bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[k]; ok {
			c.lru.MoveToFront(el)
			c.hits++
			e := el.Value.(*item).e
			c.mu.Unlock()
			return e, true, nil
		}
		if f, ok := c.flights[k]; ok {
			c.dedups++
			c.mu.Unlock()
			select {
			case <-f.done:
				if f.aborted {
					continue // leader bailed on its own ctx; retry as leader
				}
				return f.e, true, f.err
			case <-ctx.Done():
				return nil, false, ctx.Err() // detach; flight carries on
			}
		}
		c.misses++
		f := &flight{done: make(chan struct{})}
		c.flights[k] = f
		c.mu.Unlock()

		f.e, f.err = translate(ctx)
		// A failure caused by the leader's own context is the leader's alone:
		// mark the flight aborted so live waiters retry rather than inherit it.
		f.aborted = f.err != nil && ctx.Err() != nil && errors.Is(f.err, ctx.Err())
		c.mu.Lock()
		if f.err == nil && f.e != nil {
			c.put(k, f.e)
		}
		delete(c.flights, k)
		c.mu.Unlock()
		close(f.done)
		return f.e, false, f.err
	}
}

// Clear drops every entry (explicit invalidation; generation-keyed
// invalidation normally makes this unnecessary).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.items = map[Key]*list.Element{}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of cache statistics.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Dedups:    c.dedups,
		Entries:   c.lru.Len(),
	}
}

// Normalize canonicalizes Q source for use as a cache key: runs of spaces
// and tabs outside string literals collapse to a single space, and leading/
// trailing whitespace is trimmed. Newlines are preserved — the Q lexer
// treats a newline differently from a space (it resets juxtaposition
// context), so conflating them could collide two semantically different
// programs under one key.
func Normalize(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	inStr := false
	pendingSpace := false
	for i := 0; i < len(q); i++ {
		ch := q[i]
		if inStr {
			b.WriteByte(ch)
			if ch == '\\' && i+1 < len(q) {
				i++
				b.WriteByte(q[i])
				continue
			}
			if ch == '"' {
				inStr = false
			}
			continue
		}
		switch ch {
		case ' ', '\t':
			pendingSpace = true
		case '\n', '\r':
			// collapse newline runs (and \r\n pairs): blank lines carry no
			// tokens and reset nothing beyond what one newline resets
			pendingSpace = false
			if s := b.String(); len(s) > 0 && s[len(s)-1] != '\n' {
				b.WriteByte('\n')
			}
		default:
			if pendingSpace {
				b.WriteByte(' ')
				pendingSpace = false
			}
			if ch == '"' {
				inStr = true
			}
			b.WriteByte(ch)
		}
	}
	return strings.Trim(b.String(), " \n")
}
