package workload

import (
	"context"
	"testing"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/taq"
)

func smallStack(t *testing.T) *core.Session {
	t.Helper()
	db := pgdb.NewDB()
	b := core.NewDirectBackend(db)
	if _, err := Setup(context.Background(), b, taq.Config{Seed: 1, Trades: 400, Quotes: 800, WideCols: 500}); err != nil {
		t.Fatal(err)
	}
	p := core.NewPlatform()
	s := p.NewSession(b, core.Config{})
	t.Cleanup(func() { s.Close() })
	return s
}

func TestWorkloadHas25Queries(t *testing.T) {
	qs := Queries()
	if len(qs) != 25 {
		t.Fatalf("workload has %d queries, want 25 (paper §6)", len(qs))
	}
	seen := map[int]bool{}
	for i, q := range qs {
		if q.ID != i+1 {
			t.Errorf("query %d has ID %d", i+1, q.ID)
		}
		if seen[q.ID] {
			t.Errorf("duplicate ID %d", q.ID)
		}
		seen[q.ID] = true
		if q.Q == "" || q.Name == "" {
			t.Errorf("query %d incomplete", q.ID)
		}
	}
}

func TestOutlierQueriesJoinMoreTables(t *testing.T) {
	// paper §6: queries 10, 18, 19, 20 involve more tables to join
	byID := map[int]Query{}
	for _, q := range Queries() {
		byID[q.ID] = q
	}
	for _, id := range []int{10, 18, 19, 20} {
		if byID[id].Tables < 3 {
			t.Errorf("query %d should join 3+ tables, has %d", id, byID[id].Tables)
		}
	}
}

func TestEveryQueryTranslates(t *testing.T) {
	s := smallStack(t)
	ms, err := TranslateAll(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 25 {
		t.Fatalf("translated %d queries", len(ms))
	}
	for _, m := range ms {
		if m.Translation.Translation() <= 0 {
			t.Errorf("query %d: zero translation time", m.Query.ID)
		}
	}
}

func TestEveryQueryExecutes(t *testing.T) {
	s := smallStack(t)
	ms, err := RunAll(context.Background(), s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 25 {
		t.Fatalf("executed %d queries", len(ms))
	}
	for _, m := range ms {
		if m.TranslationShare() < 0 || m.TranslationShare() > 1 {
			t.Errorf("query %d: share %f out of range", m.Query.ID, m.TranslationShare())
		}
	}
}

func TestWideTableIsWide(t *testing.T) {
	data := taq.Generate(taq.Config{Seed: 7})
	if data.RefData.NumCols() < 500 {
		t.Fatalf("refdata has %d columns, paper needs 500+", data.RefData.NumCols())
	}
}

func TestGenerationDeterminism(t *testing.T) {
	a := taq.Generate(taq.Config{Seed: 42, Trades: 100, Quotes: 100, WideCols: 5})
	b := taq.Generate(taq.Config{Seed: 42, Trades: 100, Quotes: 100, WideCols: 5})
	pa, _ := a.Trades.Column("Price")
	pb, _ := b.Trades.Column("Price")
	if pa.String() != pb.String() {
		t.Fatal("same seed should generate identical data")
	}
	c := taq.Generate(taq.Config{Seed: 43, Trades: 100, Quotes: 100, WideCols: 5})
	pc, _ := c.Trades.Column("Price")
	if pa.String() == pc.String() {
		t.Fatal("different seeds should differ")
	}
}

func TestTradesTimesAreMonotone(t *testing.T) {
	data := taq.Generate(taq.Config{Seed: 3, Trades: 500, Quotes: 10, WideCols: 1})
	col, ok := data.Trades.Column("Time")
	if !ok {
		t.Fatal("no Time column")
	}
	tv, ok := col.(qval.TemporalVec)
	if !ok {
		t.Fatalf("Time column is %T", col)
	}
	for i := 1; i < len(tv.V); i++ {
		if tv.V[i] < tv.V[i-1] {
			t.Fatalf("times not monotone at %d: %d < %d", i, tv.V[i], tv.V[i-1])
		}
	}
}
