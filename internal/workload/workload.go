// Package workload defines the Analytical Workload of the paper's
// evaluation (§6): 25 queries "representative of actual production settings"
// involving three or more wide tables (500+ columns), joins, and various
// kinds of analytical aggregate functions. The queries run over the
// synthetic TAQ data set (package taq): trades, quotes, the 500+-column
// refdata table, and the daily summary table.
//
// Queries 10, 18, 19 and 20 involve more tables to join than the others —
// the paper calls these out as the translation-time outliers in Figure 6.
package workload

import (
	"context"
	"fmt"
	"time"

	"hyperq/internal/core"
	"hyperq/internal/taq"
)

// Query is one workload entry.
type Query struct {
	ID   int
	Name string
	Q    string
	// Tables is the number of distinct tables the query touches; the
	// multi-join queries (10, 18, 19, 20) reference three or more.
	Tables int
}

// Queries returns the 25-query Analytical Workload.
func Queries() []Query {
	qs := []Query{
		{1, "scan_filter_symbol", "select Price, Size from trades where Symbol=`AAPL", 1},
		{2, "scan_filter_range", "select from trades where Price within 50 150, Size>1000", 1},
		{3, "total_volume", "select sum Size from trades", 1},
		{4, "ohlc_by_symbol", "select o:first Price, h:max Price, l:min Price, c:last Price by Symbol from trades", 1},
		{5, "vwap_by_symbol", "select vwap:Size wavg Price by Symbol from trades", 1},
		{6, "count_by_exchange", "select n:count Price, avgpx:avg Price by Exch from trades", 1},
		{7, "volume_buckets", "select vol:sum Size by bucket:300000 xbar Time from trades where Symbol=`MSFT", 1},
		{8, "spread_stats", "select avgspread:avg Ask-Bid, maxspread:max Ask-Bid by Symbol from quotes", 1},
		{9, "prevailing_quote", "aj[`Symbol`Time; select Symbol, Time, Price, Size from trades where Symbol=`GOOG; select Symbol, Time, Bid, Ask from quotes]", 2},
		{10, "enriched_asof_join", "select Symbol, Time, Price, Size, Bid, Ask, Close, Sector, attr_000 from aj[`Symbol`Time; select Symbol, Time, Price, Size from trades; select Symbol, Time, Bid, Ask from quotes] lj daily lj refdata", 4},
		{11, "dispersion", "select sd:dev Price, vr:var Price, md:med Price by Symbol from trades", 1},
		{12, "big_trades", "select from trades where Size>4000, Price>avgpx", 1},
		{13, "sector_volume", "select vol:sum Size by Sector from trades lj refdata", 2},
		{14, "wide_attr_filter", "select Symbol, attr_000, attr_100, attr_250, attr_499 from refdata where attr_000>50", 1},
		{15, "daily_range", "select Symbol, rng:High-Low, Volume from daily where Volume>0", 1},
		{16, "notional_by_symbol", "select notional:sum Price*Size by Symbol from trades", 1},
		{17, "quote_imbalance", "select imb:avg (BidSize-AskSize)%BidSize+AskSize by Symbol from quotes", 1},
		{18, "three_way_enrichment", "select Symbol, Price, Size, Close, Sector from trades lj daily lj refdata where Size>2000", 3},
		{19, "asof_with_daily", "aj[`Symbol`Time; select Symbol, Time, Price from trades where Size>3000; select Symbol, Time, Bid, Ask from quotes] lj daily", 3},
		{20, "full_enrichment_agg", "select big:max Price, totv:sum Size, c:last Close by Sector from trades lj daily lj refdata", 3},
		{21, "exec_prices", "exec Price from trades where Symbol=`IBM", 1},
		{22, "update_markup", "update Notional:Price*Size, Marked:Price*1.0001 from trades where Symbol=`JPM", 1},
		{23, "delete_odd_lots", "delete from trades where Size<500", 1},
		{24, "top_of_book_stats", "select mb:max Bid, ma:min Ask, n:count Bid by Symbol from quotes where Time within 09:30:00.000 12:00:00.000", 1},
		{25, "cross_sectional", "select avgclose:avg Close, hi:max High by Sector from daily lj refdata", 2},
	}
	return qs
}

// query12 needs a precomputed scalar; Setup installs it along with data.
const query12Prelude = "avgpx: 100.0"

// Setup loads the TAQ data set into a backend and installs workload
// prerequisites (the avgpx scalar used by query 12 must be defined in the
// session that runs it — see RunAll).
func Setup(ctx context.Context, b core.Backend, cfg taq.Config) (*taq.Data, error) {
	data := taq.Generate(cfg)
	if err := core.LoadQTable(ctx, b, "trades", data.Trades); err != nil {
		return nil, fmt.Errorf("loading trades: %w", err)
	}
	if err := core.LoadQTable(ctx, b, "quotes", data.Quotes); err != nil {
		return nil, fmt.Errorf("loading quotes: %w", err)
	}
	if err := core.LoadQTable(ctx, b, "refdata", data.RefData); err != nil {
		return nil, fmt.Errorf("loading refdata: %w", err)
	}
	if err := core.LoadQTable(ctx, b, "daily", data.Daily); err != nil {
		return nil, fmt.Errorf("loading daily: %w", err)
	}
	return data, nil
}

// Measurement is one query's timing breakdown, the raw material for
// Figures 6 and 7.
type Measurement struct {
	Query       Query
	Translation core.StageTiming
	Execution   time.Duration
	Rows        int
}

// TranslationShare returns translation time as a fraction of total
// (translation + execution) time — the Figure 6 metric.
func (m Measurement) TranslationShare() float64 {
	total := m.Translation.Translation() + m.Execution
	if total <= 0 {
		return 0
	}
	return float64(m.Translation.Translation()) / float64(total)
}

// RunAll executes every workload query through a Hyper-Q session, timing
// translation stages and execution separately. Each query runs `reps` times
// and keeps the median-ish (middle) sample to damp scheduler noise.
func RunAll(ctx context.Context, s *core.Session, reps int) ([]Measurement, error) {
	if reps < 1 {
		reps = 1
	}
	if _, _, err := s.Run(ctx, query12Prelude); err != nil {
		return nil, err
	}
	var out []Measurement
	for _, q := range Queries() {
		var best Measurement
		for r := 0; r < reps; r++ {
			v, stats, err := s.Run(ctx, q.Q)
			if err != nil {
				return nil, fmt.Errorf("query %d (%s): %w", q.ID, q.Name, err)
			}
			m := Measurement{Query: q, Translation: stats.Stages, Execution: stats.Execute}
			if tbl, ok := v.(interface{ Len() int }); ok {
				m.Rows = tbl.Len()
			}
			if r == 0 || m.Translation.Translation() < best.Translation.Translation() {
				best = m
			}
		}
		out = append(out, best)
	}
	return out, nil
}

// TranslateAll translates (without executing) every query, for benchmarks
// isolating translation cost.
func TranslateAll(ctx context.Context, s *core.Session) ([]Measurement, error) {
	if _, _, err := s.Run(ctx, query12Prelude); err != nil {
		return nil, err
	}
	var out []Measurement
	for _, q := range Queries() {
		_, stats, err := s.Translate(ctx, q.Q)
		if err != nil {
			return nil, fmt.Errorf("query %d (%s): %w", q.ID, q.Name, err)
		}
		out = append(out, Measurement{Query: q, Translation: stats.Stages})
	}
	return out, nil
}
