package core

import (
	"context"
	"strings"
	"testing"

	"hyperq/internal/pgdb"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/xformer"
)

// newStack builds a platform + session over a fresh embedded backend loaded
// with small trades/quotes tables.
func newStack(t *testing.T, cfg Config) (*Platform, *Session, Backend) {
	t.Helper()
	db := pgdb.NewDB()
	b := NewDirectBackend(db)
	trades := qval.NewTable(
		[]string{"Symbol", "Time", "Price", "Size"},
		[]qval.Value{
			qval.SymbolVec{"GOOG", "IBM", "GOOG", "IBM", "GOOG"},
			qval.TemporalVec{T: qval.KTime, V: []int64{34200000, 34201000, 34202000, 34203000, 34204000}},
			qval.FloatVec{100, 150, 101, 151, 102},
			qval.LongVec{10, 20, 30, 40, 50},
		})
	quotes := qval.NewTable(
		[]string{"Symbol", "Time", "Bid", "Ask"},
		[]qval.Value{
			qval.SymbolVec{"GOOG", "GOOG", "IBM", "GOOG"},
			qval.TemporalVec{T: qval.KTime, V: []int64{34199000, 34201500, 34200500, 34203500}},
			qval.FloatVec{99.5, 100.5, 149.5, 101.5},
			qval.FloatVec{100.5, 101.5, 150.5, 102.5},
		})
	if err := LoadQTable(ctx, b, "trades", trades); err != nil {
		t.Fatal(err)
	}
	if err := LoadQTable(ctx, b, "quotes", quotes); err != nil {
		t.Fatal(err)
	}
	p := NewPlatform()
	s := p.NewSession(b, cfg)
	t.Cleanup(func() { s.Close() })
	return p, s, b
}

// ctx for test queries: the happy path carries no deadline.
var ctx = context.Background()

func runQ(t *testing.T, s *Session, q string) *qval.Table {
	t.Helper()
	v, _, err := s.Run(ctx, q)
	if err != nil {
		t.Fatalf("Run(%q): %v", q, err)
	}
	tbl, ok := v.(*qval.Table)
	if !ok {
		t.Fatalf("Run(%q) = %T, want table", q, v)
	}
	return tbl
}

func TestSelectAllThroughStack(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "select from trades")
	if tbl.Len() != 5 || tbl.NumCols() != 4 {
		t.Fatalf("shape %dx%d: %v", tbl.Len(), tbl.NumCols(), tbl.Cols)
	}
	// order preserved (ordcol plumbing)
	p, _ := tbl.Column("Price")
	if !qval.EqualValues(p, qval.FloatVec{100, 150, 101, 151, 102}) {
		t.Fatalf("order lost: %v", p)
	}
	// ordcol must not leak into the application result
	if _, leaked := tbl.Column("ordcol"); leaked {
		t.Fatal("ordcol leaked into Q result")
	}
}

func TestSelectWhereThroughStack(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "select Price from trades where Symbol=`GOOG")
	p, _ := tbl.Column("Price")
	if !qval.EqualValues(p, qval.FloatVec{100, 101, 102}) {
		t.Fatalf("prices = %v", p)
	}
}

func TestColumnExpressionAndRename(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "select Notional:Price*Size, Symbol from trades where Symbol=`IBM")
	n, ok := tbl.Column("Notional")
	if !ok {
		t.Fatalf("columns = %v", tbl.Cols)
	}
	if !qval.EqualValues(n, qval.FloatVec{3000, 6040}) {
		t.Fatalf("notional = %v", n)
	}
}

func TestAggregationThroughStack(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "select max Price from trades")
	if tbl.Len() != 1 {
		t.Fatalf("agg rows = %d", tbl.Len())
	}
	p, _ := tbl.Column("Price")
	if !qval.EqualValues(qval.Index(p, 0), qval.Float(151)) {
		t.Fatalf("max = %v", qval.Index(p, 0))
	}
}

func TestGroupByThroughStack(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "select mx:max Price, tot:sum Size by Symbol from trades")
	if tbl.Len() != 2 {
		t.Fatalf("groups = %d", tbl.Len())
	}
	sym, _ := tbl.Column("Symbol")
	// q group order = first appearance: GOOG then IBM
	if !qval.EqualValues(sym, qval.SymbolVec{"GOOG", "IBM"}) {
		t.Fatalf("group order = %v", sym)
	}
	mx, _ := tbl.Column("mx")
	if !qval.EqualValues(mx, qval.FloatVec{102, 151}) {
		t.Fatalf("mx = %v", mx)
	}
}

func TestPaperExample1AsOfJoin(t *testing.T) {
	// Example 1: prevailing quote as of each trade.
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "aj[`Symbol`Time; trades; quotes]")
	if tbl.Len() != 5 {
		t.Fatalf("aj rows = %d", tbl.Len())
	}
	bid, ok := tbl.Column("Bid")
	if !ok {
		t.Fatalf("cols = %v", tbl.Cols)
	}
	// trades at 09:30:00(G),09:30:01(I),09:30:02(G),09:30:03(I),09:30:04(G)
	// GOOG quotes at 09:29:59(99.5), 09:30:01.5(100.5), 09:30:03.5(101.5)
	// IBM quote at 09:30:00.5(149.5)
	want := qval.FloatVec{99.5, 149.5, 100.5, 149.5, 101.5}
	if !qval.EqualValues(bid, want) {
		t.Fatalf("bid = %v, want %v", bid, want)
	}
}

func TestAsOfJoinUnmatchedYieldsNull(t *testing.T) {
	_, s, b := newStack(t, Config{})
	early := qval.NewTable(
		[]string{"Symbol", "Time"},
		[]qval.Value{
			qval.SymbolVec{"MSFT"},
			qval.TemporalVec{T: qval.KTime, V: []int64{34200000}},
		})
	if err := LoadQTable(ctx, b, "early", early); err != nil {
		t.Fatal(err)
	}
	tbl := runQ(t, s, "aj[`Symbol`Time; early; quotes]")
	bid, _ := tbl.Column("Bid")
	if !qval.NullAt(bid, 0) {
		t.Fatalf("unmatched bid = %v, want null", qval.Index(bid, 0))
	}
}

func TestPaperExample3FunctionUnrolling(t *testing.T) {
	// Example 3: function with a local variable, eager materialization.
	_, s, _ := newStack(t, Config{})
	src := "f:{[Sym] dt: select Price from trades where Symbol=Sym; :select max Price from dt;}"
	if _, _, err := s.Run(ctx, src); err != nil {
		t.Fatal(err)
	}
	tbl := runQ(t, s, "f[`GOOG]")
	p, _ := tbl.Column("Price")
	if !qval.EqualValues(qval.Index(p, 0), qval.Float(102)) {
		t.Fatalf("f[`GOOG] = %v", qval.Index(p, 0))
	}
	// and with the other symbol (fresh temp table)
	tbl = runQ(t, s, "f[`IBM]")
	p, _ = tbl.Column("Price")
	if !qval.EqualValues(qval.Index(p, 0), qval.Float(151)) {
		t.Fatalf("f[`IBM] = %v", qval.Index(p, 0))
	}
}

func TestEagerMaterializationEmitsTempTables(t *testing.T) {
	// paper §4.3: translating Example 3 produces CREATE TEMPORARY TABLE.
	_, s, _ := newStack(t, Config{})
	src := "f:{[Sym] dt: select Price from trades where Symbol=Sym; :select max Price from dt;}"
	if _, _, err := s.Run(ctx, src); err != nil {
		t.Fatal(err)
	}
	_, stats, err := s.Run(ctx, "f[`GOOG]")
	if err != nil {
		t.Fatal(err)
	}
	foundTemp := false
	foundINDF := false
	for _, sql := range stats.SQLs {
		if strings.Contains(sql, "CREATE TEMPORARY TABLE") {
			foundTemp = true
		}
		if strings.Contains(sql, "IS NOT DISTINCT FROM") {
			foundINDF = true
		}
	}
	if !foundTemp {
		t.Fatalf("expected temp-table materialization, SQLs: %v", stats.SQLs)
	}
	if !foundINDF {
		t.Fatalf("expected IS NOT DISTINCT FROM in generated SQL, SQLs: %v", stats.SQLs)
	}
}

func TestScalarVariableBinding(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "SOMEPRICE:150.5; select from trades where Price>SOMEPRICE")
	if tbl.Len() != 1 {
		t.Fatalf("rows = %d", tbl.Len())
	}
}

func TestSymbolListVariableWithIn(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "SYMLIST:`GOOG`MSFT; select from trades where Symbol in SYMLIST")
	if tbl.Len() != 3 {
		t.Fatalf("rows = %d", tbl.Len())
	}
}

func TestUpdateDoesNotPersistThroughStack(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "update Price:2*Price from trades where Symbol=`IBM")
	p, _ := tbl.Column("Price")
	if !qval.EqualValues(p, qval.FloatVec{100, 300, 101, 302, 102}) {
		t.Fatalf("update output = %v", p)
	}
	// persisted data unchanged
	tbl = runQ(t, s, "select from trades")
	p, _ = tbl.Column("Price")
	if !qval.EqualValues(p, qval.FloatVec{100, 150, 101, 151, 102}) {
		t.Fatalf("update leaked to storage: %v", p)
	}
}

func TestDeleteTemplateThroughStack(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "delete from trades where Symbol=`IBM")
	if tbl.Len() != 3 {
		t.Fatalf("delete rows left %d", tbl.Len())
	}
	tbl = runQ(t, s, "delete Size from trades")
	if tbl.NumCols() != 3 {
		t.Fatalf("delete col left %v", tbl.Cols)
	}
}

func TestSessionVariablePromotionOnClose(t *testing.T) {
	p, s, b := newStack(t, Config{})
	if _, _, err := s.Run(ctx, "g:{[x] :select from trades where Symbol=x;}"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// a new session sees the promoted server variable (paper §3.2.3)
	s2 := p.NewSession(b, Config{})
	tbl := runQ(t, s2, "g[`IBM]")
	if tbl.Len() != 2 {
		t.Fatalf("promoted fn rows = %d", tbl.Len())
	}
}

func TestLocalScopeShadowsGlobal(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	if _, _, err := s.Run(ctx, "cut:100.5"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Run(ctx, "h:{[cut] :select from trades where Price>cut;}"); err != nil {
		t.Fatal(err)
	}
	tbl := runQ(t, s, "h[150.5]")
	if tbl.Len() != 1 {
		t.Fatalf("shadowed arg rows = %d", tbl.Len())
	}
}

func TestKdbStyleErrors(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	_, _, err := s.Run(ctx, "select from nosuchtable")
	if err == nil || !strings.Contains(err.Error(), "nosuchtable") {
		t.Fatalf("unknown table error = %v", err)
	}
	_, _, err = s.Run(ctx, "select NoCol from trades")
	if err == nil {
		t.Fatal("unknown column should fail to bind")
	}
	// Hyper-Q errors are more verbose than kdb+'s (paper §5)
	if len(err.Error()) <= len("'NoCol") {
		t.Fatalf("error should be verbose: %q", err.Error())
	}
}

func TestTranslateOnlyTimesStages(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	sql, stats, err := s.Translate(ctx, "select mx:max Price by Symbol from trades where Size>15")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "GROUP BY") {
		t.Fatalf("sql = %s", sql)
	}
	if stats.Stages.Parse <= 0 || stats.Stages.Bind <= 0 || stats.Stages.Serialize <= 0 {
		t.Fatalf("stage timings missing: %+v", stats.Stages)
	}
	if len(stats.SQLs) != 0 {
		t.Fatalf("translate-only should not execute, ran %v", stats.SQLs)
	}
}

func TestNullSemanticsAblation(t *testing.T) {
	// with NullSemantics disabled, equality serializes as plain '='
	_, s, _ := newStack(t, Config{})
	sqlOn, _, err := s.Translate(ctx, "select from trades where Symbol=`GOOG")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sqlOn, "IS NOT DISTINCT FROM") {
		t.Fatalf("expected null-safe equality: %s", sqlOn)
	}
	db := pgdb.NewDB()
	b := NewDirectBackend(db)
	trades := qval.NewTable([]string{"Symbol"}, []qval.Value{qval.SymbolVec{"A"}})
	if err := LoadQTable(ctx, b, "trades", trades); err != nil {
		t.Fatal(err)
	}
	p2 := NewPlatform()
	s2 := p2.NewSession(b, Config{Xformer: xformerOff()})
	defer s2.Close()
	sqlOff, _, err := s2.Translate(ctx, "select from trades where Symbol=`GOOG")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sqlOff, "IS NOT DISTINCT FROM") {
		t.Fatalf("ablated null semantics still fired: %s", sqlOff)
	}
}

func TestColumnPruningShrinksSQL(t *testing.T) {
	// in a join, each input's scan serializes its full column list unless
	// pruning trims it; a 60-column left table queried for one column
	// should not drag all 60 columns through the subquery
	db := pgdb.NewDB()
	b := NewDirectBackend(db)
	cols := make([]string, 61)
	data := make([]qval.Value, 61)
	cols[0] = "k"
	data[0] = qval.LongVec{1, 2, 3}
	for i := 1; i < 61; i++ {
		cols[i] = "c" + string(rune('a'+(i-1)%26)) + string(rune('a'+(i-1)/26))
		data[i] = qval.LongVec{1, 2, 3}
	}
	wide := qval.NewTable(cols, data)
	if err := LoadQTable(ctx, b, "widet", wide); err != nil {
		t.Fatal(err)
	}
	side := qval.NewTable([]string{"k", "extra"}, []qval.Value{qval.LongVec{1, 2}, qval.LongVec{10, 20}})
	if err := LoadQTable(ctx, b, "sidet", side); err != nil {
		t.Fatal(err)
	}
	p := NewPlatform()
	s := p.NewSession(b, Config{})
	defer s.Close()
	sqlPruned, _, err := s.Translate(ctx, "select caa, extra from widet lj sidet")
	if err != nil {
		t.Fatal(err)
	}
	s2 := p.NewSession(NewDirectBackend(db), Config{Xformer: pruneOff()})
	defer s2.Close()
	sqlFull, _, err := s2.Translate(ctx, "select caa, extra from widet lj sidet")
	if err != nil {
		t.Fatal(err)
	}
	if len(sqlPruned) >= len(sqlFull) {
		t.Fatalf("pruning did not shrink SQL:\npruned (%d): %s\nfull (%d): %s",
			len(sqlPruned), sqlPruned, len(sqlFull), sqlFull)
	}
}

func TestResultPivotRoundTrip(t *testing.T) {
	// row-oriented backend result -> column-oriented Q table (paper §4.2)
	res := &BackendResult{
		Cols: []BackendCol{
			{Name: "c1", SQLType: "bigint"},
			{Name: "c2", SQLType: "varchar"},
			{Name: "c3", SQLType: "double precision"},
		},
		Rows: [][]Field{
			{{Text: "1"}, {Text: "a"}, {Text: "1.5"}},
			{{Text: "2"}, {Null: true}, {Null: true}},
		},
	}
	tbl, err := ResultToQ(res)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := tbl.Column("c1")
	if !qval.EqualValues(c1, qval.LongVec{1, 2}) {
		t.Fatalf("c1 = %v", c1)
	}
	c2, _ := tbl.Column("c2")
	if !qval.NullAt(c2, 1) {
		t.Fatalf("null pivot lost: %v", c2)
	}
}

func TestLogicalMaterializationUsesViews(t *testing.T) {
	_, s, _ := newStack(t, Config{Materialization: Logical})
	_, stats, err := s.Run(ctx, "gg: select from trades where Symbol=`GOOG; select count Price from gg")
	if err != nil {
		t.Fatal(err)
	}
	foundView := false
	for _, sql := range stats.SQLs {
		if strings.Contains(sql, "CREATE VIEW") {
			foundView = true
		}
	}
	if !foundView {
		t.Fatalf("expected CREATE VIEW, SQLs: %v", stats.SQLs)
	}
}

func xformerOff() (c xformerConfig) {
	c.DisableNullSemantics = true
	return
}

func pruneOff() (c xformerConfig) {
	c.DisableColumnPruning = true
	return
}

// xformerConfig aliases the xformer config for test helpers.
type xformerConfig = xformer.Config

func TestUnionJoinThroughStack(t *testing.T) {
	_, s, b := newStack(t, Config{})
	extra := qval.NewTable(
		[]string{"Symbol", "Venue"},
		[]qval.Value{qval.SymbolVec{"MSFT"}, qval.SymbolVec{"DARK"}})
	if err := LoadQTable(ctx, b, "extra", extra); err != nil {
		t.Fatal(err)
	}
	tbl := runQ(t, s, "trades uj extra")
	if tbl.Len() != 6 {
		t.Fatalf("uj rows = %d", tbl.Len())
	}
	if _, ok := tbl.Column("Venue"); !ok {
		t.Fatalf("uj cols = %v", tbl.Cols)
	}
	// left rows first (order preserved), right rows after
	sym, _ := tbl.Column("Symbol")
	if !qval.EqualValues(qval.Index(sym, 0), qval.Symbol("GOOG")) ||
		!qval.EqualValues(qval.Index(sym, 5), qval.Symbol("MSFT")) {
		t.Fatalf("uj order = %v", sym)
	}
	// null padding on both sides
	venue, _ := tbl.Column("Venue")
	if !qval.NullAt(venue, 0) {
		t.Fatal("left rows should have null Venue")
	}
	price, _ := tbl.Column("Price")
	if !qval.NullAt(price, 5) {
		t.Fatal("right rows should have null Price")
	}
}

func TestSortVerbThroughStack(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "`Price xasc trades")
	p, _ := tbl.Column("Price")
	if !qval.EqualValues(p, qval.FloatVec{100, 101, 102, 150, 151}) {
		t.Fatalf("xasc = %v", p)
	}
	tbl = runQ(t, s, "`Price xdesc trades")
	p, _ = tbl.Column("Price")
	if !qval.EqualValues(qval.Index(p, 0), qval.Float(151)) {
		t.Fatalf("xdesc = %v", p)
	}
}

func TestTakeThroughStack(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "3#trades")
	if tbl.Len() != 3 {
		t.Fatalf("take rows = %d", tbl.Len())
	}
	p, _ := tbl.Column("Price")
	if !qval.EqualValues(p, qval.FloatVec{100, 150, 101}) {
		t.Fatalf("take order = %v", p)
	}
}

func TestMultiColumnGroupByThroughStack(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "select n:count Price by Symbol, big:Size>25 from trades")
	if tbl.Len() != 4 { // GOOG x {small,big}, IBM x {small,big}
		t.Fatalf("groups = %d\n%v", tbl.Len(), tbl)
	}
	if _, ok := tbl.Column("big"); !ok {
		t.Fatalf("cols = %v", tbl.Cols)
	}
}

func TestDistinctTableVerbThroughStack(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "distinct select Symbol from trades")
	if tbl.Len() != 2 {
		t.Fatalf("distinct rows = %d", tbl.Len())
	}
}

func TestCountTableVerbThroughStack(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "count trades")
	n, _ := tbl.Column("count")
	if !qval.EqualValues(qval.Index(n, 0), qval.Long(5)) {
		t.Fatalf("count = %v", n)
	}
}

func TestScalarExprStatementThroughStack(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	v, stats, err := s.Run(ctx, "1+2")
	if err != nil {
		t.Fatal(err)
	}
	if !qval.EqualValues(v, qval.Long(3)) {
		t.Fatalf("1+2 = %v", v)
	}
	// executed on the backend, not folded in the middleware
	if len(stats.SQLs) != 1 || !strings.Contains(stats.SQLs[0], "SELECT") {
		t.Fatalf("SQLs = %v", stats.SQLs)
	}
}

func TestCondExpressionThroughStack(t *testing.T) {
	_, s, _ := newStack(t, Config{})
	tbl := runQ(t, s, "select Symbol, band:$[Price>120; `high; `low] from trades")
	b, _ := tbl.Column("band")
	if !qval.EqualValues(b, qval.SymbolVec{"low", "high", "low", "high", "low"}) {
		t.Fatalf("cond bands = %v", b)
	}
}
